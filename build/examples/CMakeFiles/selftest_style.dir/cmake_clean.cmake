file(REMOVE_RECURSE
  "CMakeFiles/selftest_style.dir/selftest_style.cpp.o"
  "CMakeFiles/selftest_style.dir/selftest_style.cpp.o.d"
  "selftest_style"
  "selftest_style.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selftest_style.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
