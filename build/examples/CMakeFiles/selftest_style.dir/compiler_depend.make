# Empty compiler generated dependencies file for selftest_style.
# This may be replaced when dependencies are built.
