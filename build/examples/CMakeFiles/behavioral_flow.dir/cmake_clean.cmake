file(REMOVE_RECURSE
  "CMakeFiles/behavioral_flow.dir/behavioral_flow.cpp.o"
  "CMakeFiles/behavioral_flow.dir/behavioral_flow.cpp.o.d"
  "behavioral_flow"
  "behavioral_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/behavioral_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
