# Empty compiler generated dependencies file for behavioral_flow.
# This may be replaced when dependencies are built.
