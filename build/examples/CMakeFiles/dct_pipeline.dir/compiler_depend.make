# Empty compiler generated dependencies file for dct_pipeline.
# This may be replaced when dependencies are built.
