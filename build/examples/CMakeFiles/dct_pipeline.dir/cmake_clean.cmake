file(REMOVE_RECURSE
  "CMakeFiles/dct_pipeline.dir/dct_pipeline.cpp.o"
  "CMakeFiles/dct_pipeline.dir/dct_pipeline.cpp.o.d"
  "dct_pipeline"
  "dct_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dct_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
