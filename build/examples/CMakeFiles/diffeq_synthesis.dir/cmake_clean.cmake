file(REMOVE_RECURSE
  "CMakeFiles/diffeq_synthesis.dir/diffeq_synthesis.cpp.o"
  "CMakeFiles/diffeq_synthesis.dir/diffeq_synthesis.cpp.o.d"
  "diffeq_synthesis"
  "diffeq_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffeq_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
