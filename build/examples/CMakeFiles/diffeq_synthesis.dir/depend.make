# Empty dependencies file for diffeq_synthesis.
# This may be replaced when dependencies are built.
