# Empty dependencies file for resource_mode.
# This may be replaced when dependencies are built.
