file(REMOVE_RECURSE
  "CMakeFiles/resource_mode.dir/resource_mode.cpp.o"
  "CMakeFiles/resource_mode.dir/resource_mode.cpp.o.d"
  "resource_mode"
  "resource_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
