# Empty dependencies file for pipelined_filter.
# This may be replaced when dependencies are built.
