file(REMOVE_RECURSE
  "CMakeFiles/pipelined_filter.dir/pipelined_filter.cpp.o"
  "CMakeFiles/pipelined_filter.dir/pipelined_filter.cpp.o.d"
  "pipelined_filter"
  "pipelined_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipelined_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
