
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/interconnect.cpp" "src/CMakeFiles/mframe.dir/alloc/interconnect.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/alloc/interconnect.cpp.o.d"
  "/root/repo/src/alloc/lifetimes.cpp" "src/CMakeFiles/mframe.dir/alloc/lifetimes.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/alloc/lifetimes.cpp.o.d"
  "/root/repo/src/alloc/muxopt.cpp" "src/CMakeFiles/mframe.dir/alloc/muxopt.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/alloc/muxopt.cpp.o.d"
  "/root/repo/src/alloc/regalloc.cpp" "src/CMakeFiles/mframe.dir/alloc/regalloc.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/alloc/regalloc.cpp.o.d"
  "/root/repo/src/baseline/asap_sched.cpp" "src/CMakeFiles/mframe.dir/baseline/asap_sched.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/baseline/asap_sched.cpp.o.d"
  "/root/repo/src/baseline/fds.cpp" "src/CMakeFiles/mframe.dir/baseline/fds.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/baseline/fds.cpp.o.d"
  "/root/repo/src/baseline/list_sched.cpp" "src/CMakeFiles/mframe.dir/baseline/list_sched.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/baseline/list_sched.cpp.o.d"
  "/root/repo/src/celllib/cell_library.cpp" "src/CMakeFiles/mframe.dir/celllib/cell_library.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/celllib/cell_library.cpp.o.d"
  "/root/repo/src/celllib/library_io.cpp" "src/CMakeFiles/mframe.dir/celllib/library_io.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/celllib/library_io.cpp.o.d"
  "/root/repo/src/celllib/ncr_like.cpp" "src/CMakeFiles/mframe.dir/celllib/ncr_like.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/celllib/ncr_like.cpp.o.d"
  "/root/repo/src/core/frames.cpp" "src/CMakeFiles/mframe.dir/core/frames.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/core/frames.cpp.o.d"
  "/root/repo/src/core/grid.cpp" "src/CMakeFiles/mframe.dir/core/grid.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/core/grid.cpp.o.d"
  "/root/repo/src/core/liapunov.cpp" "src/CMakeFiles/mframe.dir/core/liapunov.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/core/liapunov.cpp.o.d"
  "/root/repo/src/core/mfs.cpp" "src/CMakeFiles/mframe.dir/core/mfs.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/core/mfs.cpp.o.d"
  "/root/repo/src/core/mfsa.cpp" "src/CMakeFiles/mframe.dir/core/mfsa.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/core/mfsa.cpp.o.d"
  "/root/repo/src/dfg/builder.cpp" "src/CMakeFiles/mframe.dir/dfg/builder.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/dfg/builder.cpp.o.d"
  "/root/repo/src/dfg/dfg.cpp" "src/CMakeFiles/mframe.dir/dfg/dfg.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/dfg/dfg.cpp.o.d"
  "/root/repo/src/dfg/dot.cpp" "src/CMakeFiles/mframe.dir/dfg/dot.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/dfg/dot.cpp.o.d"
  "/root/repo/src/dfg/op.cpp" "src/CMakeFiles/mframe.dir/dfg/op.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/dfg/op.cpp.o.d"
  "/root/repo/src/dfg/parser.cpp" "src/CMakeFiles/mframe.dir/dfg/parser.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/dfg/parser.cpp.o.d"
  "/root/repo/src/dfg/stats.cpp" "src/CMakeFiles/mframe.dir/dfg/stats.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/dfg/stats.cpp.o.d"
  "/root/repo/src/dfg/transforms.cpp" "src/CMakeFiles/mframe.dir/dfg/transforms.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/dfg/transforms.cpp.o.d"
  "/root/repo/src/lang/lexer.cpp" "src/CMakeFiles/mframe.dir/lang/lexer.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/lang/lexer.cpp.o.d"
  "/root/repo/src/lang/lower.cpp" "src/CMakeFiles/mframe.dir/lang/lower.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/lang/lower.cpp.o.d"
  "/root/repo/src/lang/parser.cpp" "src/CMakeFiles/mframe.dir/lang/parser.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/lang/parser.cpp.o.d"
  "/root/repo/src/pipeline/analysis.cpp" "src/CMakeFiles/mframe.dir/pipeline/analysis.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/pipeline/analysis.cpp.o.d"
  "/root/repo/src/pipeline/functional.cpp" "src/CMakeFiles/mframe.dir/pipeline/functional.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/pipeline/functional.cpp.o.d"
  "/root/repo/src/pipeline/structural.cpp" "src/CMakeFiles/mframe.dir/pipeline/structural.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/pipeline/structural.cpp.o.d"
  "/root/repo/src/rtl/bus.cpp" "src/CMakeFiles/mframe.dir/rtl/bus.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/rtl/bus.cpp.o.d"
  "/root/repo/src/rtl/controller.cpp" "src/CMakeFiles/mframe.dir/rtl/controller.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/rtl/controller.cpp.o.d"
  "/root/repo/src/rtl/cost.cpp" "src/CMakeFiles/mframe.dir/rtl/cost.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/rtl/cost.cpp.o.d"
  "/root/repo/src/rtl/datapath.cpp" "src/CMakeFiles/mframe.dir/rtl/datapath.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/rtl/datapath.cpp.o.d"
  "/root/repo/src/rtl/microcode.cpp" "src/CMakeFiles/mframe.dir/rtl/microcode.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/rtl/microcode.cpp.o.d"
  "/root/repo/src/rtl/rtl_dot.cpp" "src/CMakeFiles/mframe.dir/rtl/rtl_dot.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/rtl/rtl_dot.cpp.o.d"
  "/root/repo/src/rtl/testability.cpp" "src/CMakeFiles/mframe.dir/rtl/testability.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/rtl/testability.cpp.o.d"
  "/root/repo/src/rtl/testbench.cpp" "src/CMakeFiles/mframe.dir/rtl/testbench.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/rtl/testbench.cpp.o.d"
  "/root/repo/src/rtl/verify.cpp" "src/CMakeFiles/mframe.dir/rtl/verify.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/rtl/verify.cpp.o.d"
  "/root/repo/src/rtl/verilog.cpp" "src/CMakeFiles/mframe.dir/rtl/verilog.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/rtl/verilog.cpp.o.d"
  "/root/repo/src/sched/clock_explorer.cpp" "src/CMakeFiles/mframe.dir/sched/clock_explorer.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/sched/clock_explorer.cpp.o.d"
  "/root/repo/src/sched/priority.cpp" "src/CMakeFiles/mframe.dir/sched/priority.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/sched/priority.cpp.o.d"
  "/root/repo/src/sched/report.cpp" "src/CMakeFiles/mframe.dir/sched/report.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/sched/report.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/CMakeFiles/mframe.dir/sched/schedule.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/sched/schedule.cpp.o.d"
  "/root/repo/src/sched/schedule_io.cpp" "src/CMakeFiles/mframe.dir/sched/schedule_io.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/sched/schedule_io.cpp.o.d"
  "/root/repo/src/sched/slack.cpp" "src/CMakeFiles/mframe.dir/sched/slack.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/sched/slack.cpp.o.d"
  "/root/repo/src/sched/timeframes.cpp" "src/CMakeFiles/mframe.dir/sched/timeframes.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/sched/timeframes.cpp.o.d"
  "/root/repo/src/sched/verify.cpp" "src/CMakeFiles/mframe.dir/sched/verify.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/sched/verify.cpp.o.d"
  "/root/repo/src/sim/dfg_eval.cpp" "src/CMakeFiles/mframe.dir/sim/dfg_eval.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/sim/dfg_eval.cpp.o.d"
  "/root/repo/src/sim/eval.cpp" "src/CMakeFiles/mframe.dir/sim/eval.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/sim/eval.cpp.o.d"
  "/root/repo/src/sim/rtl_sim.cpp" "src/CMakeFiles/mframe.dir/sim/rtl_sim.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/sim/rtl_sim.cpp.o.d"
  "/root/repo/src/sim/vcd.cpp" "src/CMakeFiles/mframe.dir/sim/vcd.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/sim/vcd.cpp.o.d"
  "/root/repo/src/util/grid_render.cpp" "src/CMakeFiles/mframe.dir/util/grid_render.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/util/grid_render.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/CMakeFiles/mframe.dir/util/strings.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/util/strings.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/mframe.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/util/table.cpp.o.d"
  "/root/repo/src/workloads/benchmarks.cpp" "src/CMakeFiles/mframe.dir/workloads/benchmarks.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/workloads/benchmarks.cpp.o.d"
  "/root/repo/src/workloads/random_dfg.cpp" "src/CMakeFiles/mframe.dir/workloads/random_dfg.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/workloads/random_dfg.cpp.o.d"
  "/root/repo/src/workloads/table_runner.cpp" "src/CMakeFiles/mframe.dir/workloads/table_runner.cpp.o" "gcc" "src/CMakeFiles/mframe.dir/workloads/table_runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
