file(REMOVE_RECURSE
  "libmframe.a"
)
