# Empty dependencies file for mframe.
# This may be replaced when dependencies are built.
