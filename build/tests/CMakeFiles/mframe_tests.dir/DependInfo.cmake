
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/mframe_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_baseline.cpp" "tests/CMakeFiles/mframe_tests.dir/test_baseline.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_baseline.cpp.o.d"
  "/root/repo/tests/test_baseline2.cpp" "tests/CMakeFiles/mframe_tests.dir/test_baseline2.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_baseline2.cpp.o.d"
  "/root/repo/tests/test_bus.cpp" "tests/CMakeFiles/mframe_tests.dir/test_bus.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_bus.cpp.o.d"
  "/root/repo/tests/test_celllib.cpp" "tests/CMakeFiles/mframe_tests.dir/test_celllib.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_celllib.cpp.o.d"
  "/root/repo/tests/test_controller.cpp" "tests/CMakeFiles/mframe_tests.dir/test_controller.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_controller.cpp.o.d"
  "/root/repo/tests/test_datapath.cpp" "tests/CMakeFiles/mframe_tests.dir/test_datapath.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_datapath.cpp.o.d"
  "/root/repo/tests/test_dct2d.cpp" "tests/CMakeFiles/mframe_tests.dir/test_dct2d.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_dct2d.cpp.o.d"
  "/root/repo/tests/test_dfg.cpp" "tests/CMakeFiles/mframe_tests.dir/test_dfg.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_dfg.cpp.o.d"
  "/root/repo/tests/test_frames.cpp" "tests/CMakeFiles/mframe_tests.dir/test_frames.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_frames.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/mframe_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_grid.cpp" "tests/CMakeFiles/mframe_tests.dir/test_grid.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_grid.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/mframe_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_interconnect.cpp" "tests/CMakeFiles/mframe_tests.dir/test_interconnect.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_interconnect.cpp.o.d"
  "/root/repo/tests/test_lang.cpp" "tests/CMakeFiles/mframe_tests.dir/test_lang.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_lang.cpp.o.d"
  "/root/repo/tests/test_liapunov.cpp" "tests/CMakeFiles/mframe_tests.dir/test_liapunov.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_liapunov.cpp.o.d"
  "/root/repo/tests/test_library_io.cpp" "tests/CMakeFiles/mframe_tests.dir/test_library_io.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_library_io.cpp.o.d"
  "/root/repo/tests/test_lifetimes.cpp" "tests/CMakeFiles/mframe_tests.dir/test_lifetimes.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_lifetimes.cpp.o.d"
  "/root/repo/tests/test_mfs.cpp" "tests/CMakeFiles/mframe_tests.dir/test_mfs.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_mfs.cpp.o.d"
  "/root/repo/tests/test_mfs_features.cpp" "tests/CMakeFiles/mframe_tests.dir/test_mfs_features.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_mfs_features.cpp.o.d"
  "/root/repo/tests/test_mfsa.cpp" "tests/CMakeFiles/mframe_tests.dir/test_mfsa.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_mfsa.cpp.o.d"
  "/root/repo/tests/test_microcode.cpp" "tests/CMakeFiles/mframe_tests.dir/test_microcode.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_microcode.cpp.o.d"
  "/root/repo/tests/test_mutation.cpp" "tests/CMakeFiles/mframe_tests.dir/test_mutation.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_mutation.cpp.o.d"
  "/root/repo/tests/test_muxopt.cpp" "tests/CMakeFiles/mframe_tests.dir/test_muxopt.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_muxopt.cpp.o.d"
  "/root/repo/tests/test_op.cpp" "tests/CMakeFiles/mframe_tests.dir/test_op.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_op.cpp.o.d"
  "/root/repo/tests/test_parser.cpp" "tests/CMakeFiles/mframe_tests.dir/test_parser.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_parser.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/mframe_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_priority.cpp" "tests/CMakeFiles/mframe_tests.dir/test_priority.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_priority.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/mframe_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_regalloc.cpp" "tests/CMakeFiles/mframe_tests.dir/test_regalloc.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_regalloc.cpp.o.d"
  "/root/repo/tests/test_render.cpp" "tests/CMakeFiles/mframe_tests.dir/test_render.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_render.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/mframe_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_rtl_export.cpp" "tests/CMakeFiles/mframe_tests.dir/test_rtl_export.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_rtl_export.cpp.o.d"
  "/root/repo/tests/test_schedule.cpp" "tests/CMakeFiles/mframe_tests.dir/test_schedule.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_schedule.cpp.o.d"
  "/root/repo/tests/test_schedule_io.cpp" "tests/CMakeFiles/mframe_tests.dir/test_schedule_io.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_schedule_io.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/mframe_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/mframe_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_strings.cpp" "tests/CMakeFiles/mframe_tests.dir/test_strings.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_strings.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/mframe_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_table_runner.cpp" "tests/CMakeFiles/mframe_tests.dir/test_table_runner.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_table_runner.cpp.o.d"
  "/root/repo/tests/test_testability.cpp" "tests/CMakeFiles/mframe_tests.dir/test_testability.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_testability.cpp.o.d"
  "/root/repo/tests/test_timeframes.cpp" "tests/CMakeFiles/mframe_tests.dir/test_timeframes.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_timeframes.cpp.o.d"
  "/root/repo/tests/test_transforms.cpp" "tests/CMakeFiles/mframe_tests.dir/test_transforms.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_transforms.cpp.o.d"
  "/root/repo/tests/test_vcd.cpp" "tests/CMakeFiles/mframe_tests.dir/test_vcd.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_vcd.cpp.o.d"
  "/root/repo/tests/test_verify.cpp" "tests/CMakeFiles/mframe_tests.dir/test_verify.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_verify.cpp.o.d"
  "/root/repo/tests/test_verilog.cpp" "tests/CMakeFiles/mframe_tests.dir/test_verilog.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_verilog.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/mframe_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/mframe_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mframe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
