# Empty dependencies file for mframe_tests.
# This may be replaced when dependencies are built.
