file(REMOVE_RECURSE
  "CMakeFiles/mframe_cli.dir/mframe_cli.cpp.o"
  "CMakeFiles/mframe_cli.dir/mframe_cli.cpp.o.d"
  "mframe"
  "mframe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mframe_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
