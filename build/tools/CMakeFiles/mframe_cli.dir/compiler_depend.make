# Empty compiler generated dependencies file for mframe_cli.
# This may be replaced when dependencies are built.
