# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_schedule_behavioral "/root/repo/build/tools/mframe" "schedule" "/root/repo/tools/designs/diffeq.mfb" "--steps" "4")
set_tests_properties(cli_schedule_behavioral PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_synth_behavioral_sim "/root/repo/build/tools/mframe" "synth" "/root/repo/tools/designs/diffeq.mfb" "--steps" "4" "--sim" "x=2,y=5,u=9,dx=1,a=30")
set_tests_properties(cli_synth_behavioral_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_schedule_dfg_chained "/root/repo/build/tools/mframe" "schedule" "/root/repo/tools/designs/chained.dfg" "--steps" "4" "--chaining" "--clock" "100")
set_tests_properties(cli_schedule_dfg_chained PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_synth_style2_verilog "/root/repo/build/tools/mframe" "synth" "/root/repo/tools/designs/diffeq.mfb" "--steps" "5" "--style" "2" "--verilog" "--controller")
set_tests_properties(cli_synth_style2_verilog PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_schedule_resource_mode "/root/repo/build/tools/mframe" "schedule" "/root/repo/tools/designs/diffeq.mfb" "--mode" "resource" "--resource" "mul=1,add=1,sub=1,cmp=1")
set_tests_properties(cli_schedule_resource_mode PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_loop_folding "/root/repo/build/tools/mframe" "schedule" "/root/repo/tools/designs/looped.mfb" "--steps" "8")
set_tests_properties(cli_loop_folding PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_custom_library "/root/repo/build/tools/mframe" "synth" "/root/repo/tools/designs/diffeq.mfb" "--steps" "4" "--library" "/root/repo/tools/designs/tiny.lib" "--sim" "x=2,y=5,u=9,dx=1,a=30")
set_tests_properties(cli_custom_library PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_reports_and_exports "/root/repo/build/tools/mframe" "synth" "/root/repo/tools/designs/diffeq.mfb" "--steps" "4" "--report" "--microcode" "--testability" "--rtl-dot" "--testbench")
set_tests_properties(cli_reports_and_exports PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_schedule_slack_report "/root/repo/build/tools/mframe" "schedule" "/root/repo/tools/designs/diffeq.mfb" "--steps" "6" "--report" "--slack")
set_tests_properties(cli_schedule_slack_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_functional_pipelining "/root/repo/build/tools/mframe" "schedule" "/root/repo/tools/designs/diffeq.mfb" "--steps" "6" "--latency" "3")
set_tests_properties(cli_functional_pipelining PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;32;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_missing_file "/root/repo/build/tools/mframe" "schedule" "/nonexistent.mfb" "--steps" "4")
set_tests_properties(cli_missing_file PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;37;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_option "/root/repo/build/tools/mframe" "schedule" "/root/repo/tools/designs/diffeq.mfb" "--wibble")
set_tests_properties(cli_bad_option PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;39;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_infeasible_constraint "/root/repo/build/tools/mframe" "schedule" "/root/repo/tools/designs/diffeq.mfb" "--steps" "2")
set_tests_properties(cli_infeasible_constraint PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;41;add_test;/root/repo/tools/CMakeLists.txt;0;")
