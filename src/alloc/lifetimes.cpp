#include "alloc/lifetimes.h"

#include <algorithm>
#include <set>

namespace mframe::alloc {

std::vector<Lifetime> computeLifetimes(const dfg::Dfg& g,
                                       const sched::Schedule& s) {
  std::vector<Lifetime> out;
  std::set<dfg::NodeId> outputSignals;
  for (const auto& [id, ext] : g.outputs()) outputSignals.insert(id);
  for (const dfg::Node& n : g.nodes()) {
    if (n.kind == dfg::OpKind::Const) continue;

    Lifetime lt;
    lt.producer = n.id;
    if (n.kind == dfg::OpKind::Input) {
      lt.birth = 0;
    } else {
      if (!s.isPlaced(n.id)) continue;  // partial schedules: skip unplaced
      lt.birth = s.stepOf(n.id) + n.cycles - 1;
    }

    lt.death = lt.birth;
    for (dfg::NodeId c : g.opSuccs(n.id)) {
      if (!s.isPlaced(c)) continue;
      // A same-step consumer (start == birth) is a chained, combinational
      // read; only later consumers need the value stored. A multicycle
      // consumer holds its operands through its *last* execution cycle, not
      // just its start step.
      if (s.stepOf(c) > lt.birth)
        lt.death = std::max(lt.death, s.endStepOf(c));
    }
    if (outputSignals.count(n.id))
      lt.death = std::max(lt.death, s.numSteps() + 1);

    lt.needsRegister = lt.death > lt.birth;
    out.push_back(lt);
  }
  return out;
}

}  // namespace mframe::alloc
