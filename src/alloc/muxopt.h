// Multiplexer optimization (Section 5.6): each ALU is fed by two
// multiplexers (MUX1 for the left port, MUX2 for the right); the operand
// signals of the operations bound to the ALU must be arranged into the two
// port lists L1/L2 so that |L1| + |L2| is minimal. The paper's constructive
// algorithm "first assigns the non-commutative operations to the appropriate
// MUXes and then checks two possibilities for arranging input signals for
// each commutative operation".
#pragma once

#include <map>
#include <vector>

#include "celllib/cell_library.h"
#include "dfg/dfg.h"

namespace mframe::alloc {

struct MuxArrangement {
  std::vector<dfg::NodeId> left;   ///< distinct signals feeding port 1 (L1)
  std::vector<dfg::NodeId> right;  ///< distinct signals feeding port 2 (L2)
  std::map<dfg::NodeId, bool> swapped;  ///< op -> operands were swapped

  std::size_t totalInputs() const { return left.size() + right.size(); }
};

/// Arrange the operand signals of `ops` (all bound to one ALU) across the
/// two ports. Unary operations use the left port only. Deterministic in the
/// order of `ops`.
MuxArrangement arrangeInputs(const dfg::Dfg& g,
                             const std::vector<dfg::NodeId>& ops);

/// Cost(MUX1) + Cost(MUX2) under the library's nonlinear mux table. A port
/// with zero or one source costs nothing (a wire).
double muxCostOf(const celllib::CellLibrary& lib, const MuxArrangement& a);

}  // namespace mframe::alloc
