// Multiplexer optimization (Section 5.6): each ALU is fed by two
// multiplexers (MUX1 for the left port, MUX2 for the right); the operand
// signals of the operations bound to the ALU must be arranged into the two
// port lists L1/L2 so that |L1| + |L2| is minimal. The paper's constructive
// algorithm "first assigns the non-commutative operations to the appropriate
// MUXes and then checks two possibilities for arranging input signals for
// each commutative operation".
#pragma once

#include <map>
#include <unordered_set>
#include <vector>

#include "celllib/cell_library.h"
#include "dfg/dfg.h"

namespace mframe::alloc {

struct MuxArrangement {
  std::vector<dfg::NodeId> left;   ///< distinct signals feeding port 1 (L1)
  std::vector<dfg::NodeId> right;  ///< distinct signals feeding port 2 (L2)
  std::map<dfg::NodeId, bool> swapped;  ///< op -> operands were swapped
  /// Signals pinned to each port by pass 1 (fixed-order operations). A
  /// subset of left/right; arrangeInputsDelta uses them to decide when a
  /// try-add is provably equivalent to a full re-arrangement.
  std::vector<dfg::NodeId> pinnedLeft;
  std::vector<dfg::NodeId> pinnedRight;

  /// Membership indexes mirroring the four lists above, maintained by
  /// arrangeInputs/appendToArrangement so the hot delta/append paths test
  /// port membership in O(1) instead of scanning the vectors.
  std::unordered_set<dfg::NodeId> leftSet, rightSet;
  std::unordered_set<dfg::NodeId> pinnedLeftSet, pinnedRightSet;

  std::size_t totalInputs() const { return left.size() + right.size(); }
};

/// Arrange the operand signals of `ops` (all bound to one ALU) across the
/// two ports. Unary operations use the left port only. Deterministic in the
/// order of `ops`.
MuxArrangement arrangeInputs(const dfg::Dfg& g,
                             const std::vector<dfg::NodeId>& ops);

/// Cost(MUX1) + Cost(MUX2) under the library's nonlinear mux table. A port
/// with zero or one source costs nothing (a wire).
double muxCostOf(const celllib::CellLibrary& lib, const MuxArrangement& a);

/// Port sizes that arrangeInputs(g, baseOps + {op}) would produce, computed
/// incrementally against `base` (the arrangement of `baseOps`) whenever that
/// is provably exact:
///  - a commutative 2-input op is decided last in pass 2, so appending it
///    never disturbs earlier decisions — pure increment;
///  - a fixed-order op whose pins are already pass-1 pinned in `base` leaves
///    the pass-1 state, and hence every pass-2 decision, unchanged.
/// Any other fixed-order op pins new signals in pass 1 *before* the batch
/// run's commutative decisions and may flip them, so the delta falls back to
/// a full re-arrangement (`rebuilt` is set). Either way the returned sizes
/// match the from-scratch result exactly.
struct MuxDelta {
  std::size_t left = 0;   ///< |L1| after adding `op`
  std::size_t right = 0;  ///< |L2| after adding `op`
  bool swapped = false;   ///< orientation `op` would take
  bool rebuilt = false;   ///< fell back to a full arrangeInputs
};

MuxDelta arrangeInputsDelta(const dfg::Dfg& g, const MuxArrangement& base,
                            const std::vector<dfg::NodeId>& baseOps,
                            dfg::NodeId op);

/// Commit `op` into `a` in place, in O(1). Returns true when the result is
/// provably identical to re-running arrangeInputs on the extended op list —
/// the same two exact cases arrangeInputsDelta proves (commutative append;
/// fixed-order op whose pins are already pass-1 pinned). A fixed-order op
/// with fresh pins is still committed (its operands join the pinned port
/// lists) but returns false: a from-scratch re-arrangement could have
/// re-oriented earlier commutative ops around the new pins, so the greedy
/// result may carry slightly larger port lists. The frontier scheduler
/// accepts that bounded drift to keep per-ALU arrangements O(1) per commit
/// — re-arranging the whole op list per commit is quadratic in ops-per-ALU,
/// which dominated 10^5-op synthesis runs. The arrangement stays valid
/// either way (every op's operands are on its ports) and its recorded mux
/// cost is always the true cost of the maintained port lists.
bool appendToArrangement(const dfg::Dfg& g, MuxArrangement& a, dfg::NodeId op);

/// Port sizes appendToArrangement(g, base-copy, op) would leave behind,
/// without mutating `base` — the O(1) probe matching the O(1) commit. Equal
/// to arrangeInputsDelta wherever that is exact; for a fixed-order op with
/// fresh pins it prices the greedy commit instead of a full rebuild.
MuxDelta appendDelta(const dfg::Dfg& g, const MuxArrangement& base,
                     dfg::NodeId op);

}  // namespace mframe::alloc
