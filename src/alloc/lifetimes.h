// Signal lifetime analysis over a complete schedule — the raw material for
// register allocation (Section 5.8) and the f_REG term of MFSA.
//
// Conventions: a value produced by an operation finishing in step b is
// written into a register at the end of step b and must stay there through
// the last step in which a *cross-step* consumer reads it. A consumer
// chained in the producer's own step (Section 5.4) reads combinationally and
// does not require storage. Primary inputs are born at step 0 (before the
// first step) and are held in registers; constants are hardwired and never
// stored. Primary outputs must survive to the end of the schedule.
#pragma once

#include <vector>

#include "sched/schedule.h"

namespace mframe::alloc {

struct Lifetime {
  dfg::NodeId producer = dfg::kNoNode;  ///< the signal (its producing node)
  int birth = 0;  ///< step at whose end the value is ready (0 = inputs)
  int death = 0;  ///< last step in which a registered consumer reads it
  bool needsRegister = false;  ///< death > birth (crosses >= 1 step boundary)

  /// Register occupation is the half-open interval (birth, death]; two
  /// signals can share a register iff their intervals do not overlap.
  bool overlaps(const Lifetime& o) const {
    return birth < o.death && o.birth < death;
  }
};

/// One Lifetime per signal-producing node (operations and primary inputs),
/// indexed position-aligned with nothing — use `producer` to match. Only
/// entries with needsRegister participate in allocation.
std::vector<Lifetime> computeLifetimes(const dfg::Dfg& g,
                                       const sched::Schedule& s);

/// The lifetime entry for `producer`, or nullptr when the node produces no
/// stored signal (e.g. constants).
inline const Lifetime* findLifetime(const std::vector<Lifetime>& lifetimes,
                                    dfg::NodeId producer) {
  for (const Lifetime& lt : lifetimes)
    if (lt.producer == producer) return &lt;
  return nullptr;
}

}  // namespace mframe::alloc
