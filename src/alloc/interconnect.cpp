#include "alloc/interconnect.h"

#include <algorithm>

#include "util/strings.h"

namespace mframe::alloc {

std::string Source::toString(const dfg::Dfg& g) const {
  switch (kind) {
    case Kind::Register: return util::format("R%d", index);
    case Kind::AluOut: return util::format("ALU%d.out", index);
    case Kind::PrimaryInput: return "in:" + g.node(node).name;
    case Kind::Constant: return util::format("const:%ld", g.node(node).constValue);
  }
  return "?";
}

SourceResolver::SourceResolver(const dfg::Dfg& g, const sched::Schedule& s,
                               const std::vector<Lifetime>& lifetimes,
                               const RegAllocation& regs,
                               const std::map<dfg::NodeId, int>& aluOf)
    : g_(&g), s_(&s), aluOf_(&aluOf) {
  for (std::size_t r = 0; r < regs.registers.size(); ++r)
    for (std::size_t i : regs.registers[r])
      regOfSignal_[lifetimes[i].producer] = static_cast<int>(r);
}

Source SourceResolver::resolve(dfg::NodeId reader, dfg::NodeId signal) const {
  const dfg::Node& sig = g_->node(signal);
  if (sig.kind == dfg::OpKind::Const)
    return {Source::Kind::Constant, 0, signal};

  auto reg = regOfSignal_.find(signal);
  if (sig.kind == dfg::OpKind::Input) {
    if (reg != regOfSignal_.end())
      return {Source::Kind::Register, reg->second, dfg::kNoNode};
    return {Source::Kind::PrimaryInput, 0, signal};  // unconsumed input port
  }

  // Chained read: the reader starts in the step where the producer finishes.
  const int producerEnd = s_->endStepOf(signal);
  if (s_->isPlaced(reader) && s_->stepOf(reader) == producerEnd) {
    auto alu = aluOf_->find(signal);
    if (alu != aluOf_->end())
      return {Source::Kind::AluOut, alu->second, dfg::kNoNode};
  }
  if (reg != regOfSignal_.end())
    return {Source::Kind::Register, reg->second, dfg::kNoNode};
  // No register and not chained: fall back to the producer's ALU output
  // (only reachable on partial designs).
  auto alu = aluOf_->find(signal);
  return {Source::Kind::AluOut, alu == aluOf_->end() ? -1 : alu->second,
          dfg::kNoNode};
}

PortWiring wirePort(const SourceResolver& resolver,
                    const std::vector<std::pair<dfg::NodeId, dfg::NodeId>>& reads) {
  PortWiring w;
  for (const auto& [reader, signal] : reads) {
    const Source src = resolver.resolve(reader, signal);
    auto it = std::find(w.sources.begin(), w.sources.end(), src);
    std::size_t idx;
    if (it == w.sources.end()) {
      idx = w.sources.size();
      w.sources.push_back(src);
    } else {
      idx = static_cast<std::size_t>(it - w.sources.begin());
    }
    w.selectOf[{reader, signal}] = idx;
  }
  return w;
}

}  // namespace mframe::alloc
