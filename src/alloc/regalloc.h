// Register allocation (Section 5.8): the paper's "expanded activity
// selection" greedy — a variant of the left-edge algorithm of REAL — packing
// compatible signal lifetimes into the minimum number of registers. For
// interval conflicts this greedy is exactly optimal.
#pragma once

#include <cstddef>
#include <vector>

#include "alloc/lifetimes.h"

namespace mframe::alloc {

struct RegAllocation {
  /// registers[r] = indices into the lifetime vector handed to allocate().
  std::vector<std::vector<std::size_t>> registers;

  std::size_t count() const { return registers.size(); }

  /// Register index holding lifetime `i`, or -1 when `i` needed no register.
  int registerOf(std::size_t lifetimeIndex) const;
};

/// Pack all lifetimes with needsRegister into registers using the left-edge
/// greedy of REAL [19] (the algorithm the paper's "expanded activity
/// selection" extends): signals sorted by birth, first-fit into the first
/// compatible register. Optimal for interval conflicts.
RegAllocation allocateRegisters(const std::vector<Lifetime>& lifetimes);

}  // namespace mframe::alloc
