// Interconnect optimization (Section 5.7): multiplexer data inputs are
// physical wires, and several operand *signals* can ride one wire — all the
// values stored in one register arrive on that register's output line, and a
// chained value arrives on its producer ALU's output line. Mapping the
// port-level signal lists onto distinct physical sources and deduplicating
// is exactly the paper's "line sharing ... has a secondary effect on
// Cost(MUX) before the Liapunov function makes its final decision".
#pragma once

#include <compare>
#include <map>
#include <string>
#include <vector>

#include "alloc/lifetimes.h"
#include "alloc/regalloc.h"
#include "sched/schedule.h"

namespace mframe::alloc {

/// A physical driver of a mux data input.
struct Source {
  enum class Kind { Register, AluOut, PrimaryInput, Constant };
  Kind kind = Kind::Register;
  int index = 0;                    ///< register index or ALU instance index
  dfg::NodeId node = dfg::kNoNode;  ///< the node for PrimaryInput/Constant

  auto operator<=>(const Source&) const = default;
  std::string toString(const dfg::Dfg& g) const;
};

/// Resolves which physical source carries a signal into a given reader.
class SourceResolver {
 public:
  SourceResolver(const dfg::Dfg& g, const sched::Schedule& s,
                 const std::vector<Lifetime>& lifetimes,
                 const RegAllocation& regs,
                 const std::map<dfg::NodeId, int>& aluOf);

  /// The source driving `signal` when consumed by operation `reader`.
  /// A consumer starting in the step where the producer finishes reads the
  /// producer's ALU output combinationally (chaining); every other consumer
  /// reads the register holding the signal.
  Source resolve(dfg::NodeId reader, dfg::NodeId signal) const;

 private:
  const dfg::Dfg* g_;
  const sched::Schedule* s_;
  std::map<dfg::NodeId, int> regOfSignal_;
  const std::map<dfg::NodeId, int>* aluOf_;
};

/// The wiring of one ALU input port after interconnect sharing.
struct PortWiring {
  std::vector<Source> sources;  ///< distinct wires into the mux, in first-use order
  /// (reader op, signal) -> index into `sources` (the mux select value).
  std::map<std::pair<dfg::NodeId, dfg::NodeId>, std::size_t> selectOf;

  /// The source wired for `reader`'s consumption of `signal`, or nullptr when
  /// this port never carries that read.
  const Source* sourceFor(dfg::NodeId reader, dfg::NodeId signal) const {
    auto it = selectOf.find({reader, signal});
    return it == selectOf.end() ? nullptr : &sources[it->second];
  }
};

/// Collapse per-operation reads into shared wires.
PortWiring wirePort(const SourceResolver& resolver,
                    const std::vector<std::pair<dfg::NodeId, dfg::NodeId>>& reads);

}  // namespace mframe::alloc
