#include "alloc/regalloc.h"

#include <algorithm>

namespace mframe::alloc {

int RegAllocation::registerOf(std::size_t lifetimeIndex) const {
  for (std::size_t r = 0; r < registers.size(); ++r)
    for (std::size_t i : registers[r])
      if (i == lifetimeIndex) return static_cast<int>(r);
  return -1;
}

RegAllocation allocateRegisters(const std::vector<Lifetime>& lifetimes) {
  // Classic left-edge: sort by left edge (birth), tie-break on death, then
  // first-fit each signal into the first register whose current occupant
  // dies no later than the signal's birth. For interval conflict graphs this
  // greedy is exactly optimal (register count == maximum overlap depth).
  std::vector<std::size_t> todo;
  for (std::size_t i = 0; i < lifetimes.size(); ++i)
    if (lifetimes[i].needsRegister) todo.push_back(i);
  std::sort(todo.begin(), todo.end(), [&](std::size_t a, std::size_t b) {
    if (lifetimes[a].birth != lifetimes[b].birth)
      return lifetimes[a].birth < lifetimes[b].birth;
    if (lifetimes[a].death != lifetimes[b].death)
      return lifetimes[a].death < lifetimes[b].death;
    return a < b;
  });

  RegAllocation out;
  std::vector<int> lastDeath;  // per register
  for (std::size_t i : todo) {
    bool placed = false;
    for (std::size_t r = 0; r < out.registers.size(); ++r) {
      if (lifetimes[i].birth >= lastDeath[r]) {  // (birth, death] intervals
        out.registers[r].push_back(i);
        lastDeath[r] = lifetimes[i].death;
        placed = true;
        break;
      }
    }
    if (!placed) {
      out.registers.push_back({i});
      lastDeath.push_back(lifetimes[i].death);
    }
  }
  return out;
}

}  // namespace mframe::alloc
