#include "alloc/muxopt.h"

#include <algorithm>

namespace mframe::alloc {

namespace {

bool contains(const std::vector<dfg::NodeId>& v, dfg::NodeId x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

void addUnique(std::vector<dfg::NodeId>& v, dfg::NodeId x) {
  if (!contains(v, x)) v.push_back(x);
}

}  // namespace

MuxArrangement arrangeInputs(const dfg::Dfg& g,
                             const std::vector<dfg::NodeId>& ops) {
  MuxArrangement a;

  // Pass 1: fixed-order operations pin their signals to their ports.
  for (dfg::NodeId id : ops) {
    const dfg::Node& n = g.node(id);
    if (dfg::isCommutative(n.kind) && n.inputs.size() == 2) continue;
    if (n.inputs.size() >= 1) addUnique(a.left, n.inputs[0]);
    if (n.inputs.size() >= 2) addUnique(a.right, n.inputs[1]);
    a.swapped[id] = false;
  }
  // Pass 2: each commutative operation picks the orientation that adds the
  // fewest new signals (ties keep the natural order).
  for (dfg::NodeId id : ops) {
    const dfg::Node& n = g.node(id);
    if (!dfg::isCommutative(n.kind) || n.inputs.size() != 2) continue;
    const dfg::NodeId x = n.inputs[0];
    const dfg::NodeId y = n.inputs[1];
    const int costNatural = (contains(a.left, x) ? 0 : 1) + (contains(a.right, y) ? 0 : 1);
    const int costSwapped = (contains(a.left, y) ? 0 : 1) + (contains(a.right, x) ? 0 : 1);
    const bool swap = costSwapped < costNatural;
    addUnique(a.left, swap ? y : x);
    addUnique(a.right, swap ? x : y);
    a.swapped[id] = swap;
  }
  return a;
}

double muxCostOf(const celllib::CellLibrary& lib, const MuxArrangement& a) {
  return lib.muxCost(static_cast<int>(a.left.size())) +
         lib.muxCost(static_cast<int>(a.right.size()));
}

}  // namespace mframe::alloc
