#include "alloc/muxopt.h"

#include <algorithm>

#include "trace/trace.h"

namespace mframe::alloc {

namespace {

bool contains(const std::vector<dfg::NodeId>& v, dfg::NodeId x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

void addUnique(std::vector<dfg::NodeId>& v, dfg::NodeId x) {
  if (!contains(v, x)) v.push_back(x);
}

}  // namespace

MuxArrangement arrangeInputs(const dfg::Dfg& g,
                             const std::vector<dfg::NodeId>& ops) {
  trace::bump(trace::Counter::MuxFullArrangements);
  MuxArrangement a;

  // Pass 1: fixed-order operations pin their signals to their ports.
  for (dfg::NodeId id : ops) {
    const dfg::Node& n = g.node(id);
    if (dfg::isCommutative(n.kind) && n.inputs.size() == 2) continue;
    if (n.inputs.size() >= 1) addUnique(a.left, n.inputs[0]);
    if (n.inputs.size() >= 2) addUnique(a.right, n.inputs[1]);
    a.swapped[id] = false;
  }
  a.pinnedLeft = a.left;
  a.pinnedRight = a.right;
  // Pass 2: each commutative operation picks the orientation that adds the
  // fewest new signals (ties keep the natural order).
  for (dfg::NodeId id : ops) {
    const dfg::Node& n = g.node(id);
    if (!dfg::isCommutative(n.kind) || n.inputs.size() != 2) continue;
    const dfg::NodeId x = n.inputs[0];
    const dfg::NodeId y = n.inputs[1];
    const int costNatural = (contains(a.left, x) ? 0 : 1) + (contains(a.right, y) ? 0 : 1);
    const int costSwapped = (contains(a.left, y) ? 0 : 1) + (contains(a.right, x) ? 0 : 1);
    const bool swap = costSwapped < costNatural;
    addUnique(a.left, swap ? y : x);
    addUnique(a.right, swap ? x : y);
    a.swapped[id] = swap;
  }
  return a;
}

MuxDelta arrangeInputsDelta(const dfg::Dfg& g, const MuxArrangement& base,
                            const std::vector<dfg::NodeId>& baseOps,
                            dfg::NodeId op) {
  const dfg::Node& n = g.node(op);
  MuxDelta d;
  if (dfg::isCommutative(n.kind) && n.inputs.size() == 2) {
    // Appended last, the op is also decided last in pass 2: the state it
    // sees is exactly `base`, and nothing after it can change. Replay the
    // orientation choice against the final port sets.
    const dfg::NodeId x = n.inputs[0];
    const dfg::NodeId y = n.inputs[1];
    const int costNatural =
        (contains(base.left, x) ? 0 : 1) + (contains(base.right, y) ? 0 : 1);
    const int costSwapped =
        (contains(base.left, y) ? 0 : 1) + (contains(base.right, x) ? 0 : 1);
    d.swapped = costSwapped < costNatural;
    const dfg::NodeId l = d.swapped ? y : x;
    const dfg::NodeId r = d.swapped ? x : y;
    d.left = base.left.size() + (contains(base.left, l) ? 0 : 1);
    d.right = base.right.size() + (contains(base.right, r) ? 0 : 1);
    trace::bump(trace::Counter::MuxDeltaIncremental);
    return d;
  }
  // Fixed-order op: exact only if its pins were already pass-1 pinned, in
  // which case the batch run's pass-1 state — and so every pass-2 decision —
  // is unchanged and the op adds no signals.
  const bool leftPinned =
      n.inputs.empty() || contains(base.pinnedLeft, n.inputs[0]);
  const bool rightPinned =
      n.inputs.size() < 2 || contains(base.pinnedRight, n.inputs[1]);
  if (leftPinned && rightPinned) {
    d.left = base.left.size();
    d.right = base.right.size();
    trace::bump(trace::Counter::MuxDeltaIncremental);
    return d;
  }
  trace::bump(trace::Counter::MuxDeltaRebuilds);
  std::vector<dfg::NodeId> after = baseOps;
  after.push_back(op);
  const MuxArrangement full = arrangeInputs(g, after);
  d.left = full.left.size();
  d.right = full.right.size();
  d.rebuilt = true;
  return d;
}

double muxCostOf(const celllib::CellLibrary& lib, const MuxArrangement& a) {
  return lib.muxCost(static_cast<int>(a.left.size())) +
         lib.muxCost(static_cast<int>(a.right.size()));
}

}  // namespace mframe::alloc
