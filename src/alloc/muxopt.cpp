#include "alloc/muxopt.h"

#include <algorithm>

#include "trace/trace.h"

namespace mframe::alloc {

namespace {

bool contains(const std::unordered_set<dfg::NodeId>& s, dfg::NodeId x) {
  return s.find(x) != s.end();
}

void addUnique(std::vector<dfg::NodeId>& v, std::unordered_set<dfg::NodeId>& s,
               dfg::NodeId x) {
  if (s.insert(x).second) v.push_back(x);
}

}  // namespace

MuxArrangement arrangeInputs(const dfg::Dfg& g,
                             const std::vector<dfg::NodeId>& ops) {
  trace::bump(trace::Counter::MuxFullArrangements);
  MuxArrangement a;

  // Pass 1: fixed-order operations pin their signals to their ports.
  for (dfg::NodeId id : ops) {
    const dfg::Node& n = g.node(id);
    if (dfg::isCommutative(n.kind) && n.inputs.size() == 2) continue;
    if (n.inputs.size() >= 1) addUnique(a.left, a.leftSet, n.inputs[0]);
    if (n.inputs.size() >= 2) addUnique(a.right, a.rightSet, n.inputs[1]);
    a.swapped[id] = false;
  }
  a.pinnedLeft = a.left;
  a.pinnedRight = a.right;
  a.pinnedLeftSet = a.leftSet;
  a.pinnedRightSet = a.rightSet;
  // Pass 2: each commutative operation picks the orientation that adds the
  // fewest new signals (ties keep the natural order).
  for (dfg::NodeId id : ops) {
    const dfg::Node& n = g.node(id);
    if (!dfg::isCommutative(n.kind) || n.inputs.size() != 2) continue;
    const dfg::NodeId x = n.inputs[0];
    const dfg::NodeId y = n.inputs[1];
    const int costNatural =
        (contains(a.leftSet, x) ? 0 : 1) + (contains(a.rightSet, y) ? 0 : 1);
    const int costSwapped =
        (contains(a.leftSet, y) ? 0 : 1) + (contains(a.rightSet, x) ? 0 : 1);
    const bool swap = costSwapped < costNatural;
    addUnique(a.left, a.leftSet, swap ? y : x);
    addUnique(a.right, a.rightSet, swap ? x : y);
    a.swapped[id] = swap;
  }
  return a;
}

MuxDelta arrangeInputsDelta(const dfg::Dfg& g, const MuxArrangement& base,
                            const std::vector<dfg::NodeId>& baseOps,
                            dfg::NodeId op) {
  const dfg::Node& n = g.node(op);
  MuxDelta d;
  if (dfg::isCommutative(n.kind) && n.inputs.size() == 2) {
    // Appended last, the op is also decided last in pass 2: the state it
    // sees is exactly `base`, and nothing after it can change. Replay the
    // orientation choice against the final port sets.
    const dfg::NodeId x = n.inputs[0];
    const dfg::NodeId y = n.inputs[1];
    const int costNatural =
        (contains(base.leftSet, x) ? 0 : 1) + (contains(base.rightSet, y) ? 0 : 1);
    const int costSwapped =
        (contains(base.leftSet, y) ? 0 : 1) + (contains(base.rightSet, x) ? 0 : 1);
    d.swapped = costSwapped < costNatural;
    const dfg::NodeId l = d.swapped ? y : x;
    const dfg::NodeId r = d.swapped ? x : y;
    d.left = base.left.size() + (contains(base.leftSet, l) ? 0 : 1);
    d.right = base.right.size() + (contains(base.rightSet, r) ? 0 : 1);
    trace::bump(trace::Counter::MuxDeltaIncremental);
    return d;
  }
  // Fixed-order op: exact only if its pins were already pass-1 pinned, in
  // which case the batch run's pass-1 state — and so every pass-2 decision —
  // is unchanged and the op adds no signals.
  const bool leftPinned =
      n.inputs.empty() || contains(base.pinnedLeftSet, n.inputs[0]);
  const bool rightPinned =
      n.inputs.size() < 2 || contains(base.pinnedRightSet, n.inputs[1]);
  if (leftPinned && rightPinned) {
    d.left = base.left.size();
    d.right = base.right.size();
    trace::bump(trace::Counter::MuxDeltaIncremental);
    return d;
  }
  trace::bump(trace::Counter::MuxDeltaRebuilds);
  std::vector<dfg::NodeId> after = baseOps;
  after.push_back(op);
  const MuxArrangement full = arrangeInputs(g, after);
  d.left = full.left.size();
  d.right = full.right.size();
  d.rebuilt = true;
  return d;
}

bool appendToArrangement(const dfg::Dfg& g, MuxArrangement& a, dfg::NodeId op) {
  const dfg::Node& n = g.node(op);
  if (dfg::isCommutative(n.kind) && n.inputs.size() == 2) {
    // Same argument as arrangeInputsDelta: appended last, the op is decided
    // last in pass 2 against exactly the current port sets, and no earlier
    // decision can change — commit its orientation choice directly.
    const dfg::NodeId x = n.inputs[0];
    const dfg::NodeId y = n.inputs[1];
    const int costNatural =
        (contains(a.leftSet, x) ? 0 : 1) + (contains(a.rightSet, y) ? 0 : 1);
    const int costSwapped =
        (contains(a.leftSet, y) ? 0 : 1) + (contains(a.rightSet, x) ? 0 : 1);
    const bool swap = costSwapped < costNatural;
    addUnique(a.left, a.leftSet, swap ? y : x);
    addUnique(a.right, a.rightSet, swap ? x : y);
    a.swapped[op] = swap;
    return true;
  }
  const bool leftPinned =
      n.inputs.empty() || contains(a.pinnedLeftSet, n.inputs[0]);
  const bool rightPinned =
      n.inputs.size() < 2 || contains(a.pinnedRightSet, n.inputs[1]);
  a.swapped[op] = false;
  if (leftPinned && rightPinned) {
    // Pass-1 state unchanged, so every pass-2 decision replays identically:
    // the op joins without moving any signal.
    return true;
  }
  // Fresh pass-1 pins: commit them greedily. A from-scratch re-arrangement
  // would have seen these pins before the batch's commutative decisions and
  // might have re-oriented some of them, so the result is valid but not
  // provably minimal (see the header contract).
  if (n.inputs.size() >= 1) {
    addUnique(a.left, a.leftSet, n.inputs[0]);
    addUnique(a.pinnedLeft, a.pinnedLeftSet, n.inputs[0]);
  }
  if (n.inputs.size() >= 2) {
    addUnique(a.right, a.rightSet, n.inputs[1]);
    addUnique(a.pinnedRight, a.pinnedRightSet, n.inputs[1]);
  }
  return false;
}

MuxDelta appendDelta(const dfg::Dfg& g, const MuxArrangement& base,
                     dfg::NodeId op) {
  const dfg::Node& n = g.node(op);
  MuxDelta d;
  trace::bump(trace::Counter::MuxDeltaIncremental);
  if (dfg::isCommutative(n.kind) && n.inputs.size() == 2) {
    const dfg::NodeId x = n.inputs[0];
    const dfg::NodeId y = n.inputs[1];
    const int costNatural =
        (contains(base.leftSet, x) ? 0 : 1) + (contains(base.rightSet, y) ? 0 : 1);
    const int costSwapped =
        (contains(base.leftSet, y) ? 0 : 1) + (contains(base.rightSet, x) ? 0 : 1);
    d.swapped = costSwapped < costNatural;
    const dfg::NodeId l = d.swapped ? y : x;
    const dfg::NodeId r = d.swapped ? x : y;
    d.left = base.left.size() + (contains(base.leftSet, l) ? 0 : 1);
    d.right = base.right.size() + (contains(base.rightSet, r) ? 0 : 1);
    return d;
  }
  d.left = base.left.size() +
           (n.inputs.empty() || contains(base.leftSet, n.inputs[0]) ? 0 : 1);
  d.right = base.right.size() +
            (n.inputs.size() < 2 || contains(base.rightSet, n.inputs[1]) ? 0 : 1);
  return d;
}

double muxCostOf(const celllib::CellLibrary& lib, const MuxArrangement& a) {
  return lib.muxCost(static_cast<int>(a.left.size())) +
         lib.muxCost(static_cast<int>(a.right.size()));
}

}  // namespace mframe::alloc
