#include "celllib/cell_library.h"

#include <algorithm>
#include <cassert>

namespace mframe::celllib {

std::string Module::signature() const {
  std::string s = "(";
  for (dfg::FuType t : caps) s += std::string(dfg::fuTypeSymbol(t));
  return s + ")";
}

ModuleId CellLibrary::addModule(Module m) {
  for (std::size_t i = 0; i < modules_.size(); ++i)
    if (modules_[i].name == m.name) {
      duplicateNames_.push_back(m.name);
      return static_cast<ModuleId>(i);
    }
  modules_.push_back(std::move(m));
  return static_cast<ModuleId>(modules_.size() - 1);
}

std::vector<ModuleId> CellLibrary::capableModules(dfg::FuType t) const {
  std::vector<ModuleId> out;
  for (std::size_t i = 0; i < modules_.size(); ++i)
    if (modules_[i].supports(t)) out.push_back(static_cast<ModuleId>(i));
  std::sort(out.begin(), out.end(), [&](ModuleId a, ModuleId b) {
    return module(a).areaUm2 < module(b).areaUm2;
  });
  return out;
}

std::optional<ModuleId> CellLibrary::cheapestFor(dfg::FuType t) const {
  const auto c = capableModules(t);
  if (c.empty()) return std::nullopt;
  return c.front();
}

void CellLibrary::setMuxCosts(std::vector<double> costByInputs) {
  assert(costByInputs.size() >= 2 && costByInputs[0] == 0.0 && costByInputs[1] == 0.0);
  muxCost_ = std::move(costByInputs);
}

double CellLibrary::muxCost(int dataInputs) const {
  if (dataInputs <= 1) return 0.0;
  const auto r = static_cast<std::size_t>(dataInputs);
  if (r < muxCost_.size()) return muxCost_[r];
  // Extrapolate with the table's last increment.
  const std::size_t last = muxCost_.size() - 1;
  const double inc = last >= 2 ? muxCost_[last] - muxCost_[last - 1] : 0.0;
  return muxCost_[last] + inc * static_cast<double>(r - last);
}

double CellLibrary::maxMuxIncrement() const {
  double mx = 0.0;
  for (int r = 1; r + 1 < static_cast<int>(muxCost_.size()) + 4; ++r)
    mx = std::max(mx, muxCost(r + 1) - muxCost(r));
  return 2.0 * mx;
}

double CellLibrary::maxModuleArea() const {
  double mx = 0.0;
  for (const Module& m : modules_) mx = std::max(mx, m.areaUm2);
  return mx;
}

std::optional<std::string> CellLibrary::checkCoverage(
    const std::set<dfg::FuType>& needed) const {
  for (dfg::FuType t : needed)
    if (capableModules(t).empty())
      return "cell library has no module for FU type '" +
             std::string(dfg::fuTypeName(t)) + "'";
  return std::nullopt;
}

}  // namespace mframe::celllib
