// Textual cell-library format, so MFSA can be driven with a customer's own
// module set instead of the built-in NCR-like library. Grammar (one
// statement per line, '#' comments):
//
//   library <name>
//   reg <areaUm2>
//   mux <cost0> <cost1> <cost2> ...     # area by data-input count (0,1 = 0)
//   module <name> area=<um2> delay=<ns> caps=<t1,t2,...> [stages=<k>]
//
// Capability tokens accept FU-type names ("adder"), symbols ("+") or short
// aliases ("add", "cmp", ...).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "celllib/cell_library.h"

namespace mframe::celllib {

class LibraryError : public std::runtime_error {
 public:
  explicit LibraryError(const std::string& what) : std::runtime_error(what) {}
};

/// Parse the textual format; throws LibraryError with a line number and the
/// library name (once the header has been seen). Every numeric token is
/// decoded strictly: trailing garbage, non-finite and negative values are
/// parse errors naming the offending token, never a silent 0.
CellLibrary parseLibrary(std::string_view text);

/// Serialize (round-trips through parseLibrary; mux table emitted up to the
/// last explicit entry). `name` overrides the library's own name; pass ""
/// (the default) to emit lib.name().
std::string serializeLibrary(const CellLibrary& lib,
                             const std::string& name = "");

}  // namespace mframe::celllib
