#include "celllib/ncr_like.h"

namespace mframe::celllib {

namespace {

using dfg::FuType;

Module mk(std::string name, std::set<FuType> caps, double area, double delay,
          int stages = 1) {
  Module m;
  m.name = std::move(name);
  m.caps = std::move(caps);
  m.areaUm2 = area;
  m.delayNs = delay;
  m.stages = stages;
  return m;
}

}  // namespace

CellLibrary ncrLike(const NcrLikeOptions& opt) {
  CellLibrary lib;
  lib.setName("ncr_like");
  const double k = opt.scale;

  lib.setRegCost(1900.0 * k);
  // Nonlinear mux area: the increment shrinks as inputs are added, which is
  // exactly the property f^MUX exploits when weighing input sharing.
  lib.setMuxCosts({0.0, 0.0, 640.0 * k, 980.0 * k, 1290.0 * k, 1580.0 * k,
                   1850.0 * k, 2100.0 * k, 2330.0 * k, 2540.0 * k});

  // Single-function units (MFS world).
  lib.addModule(mk("add16", {FuType::Adder}, 2900 * k, 40));
  lib.addModule(mk("sub16", {FuType::Subtractor}, 3000 * k, 40));
  lib.addModule(mk("inc16", {FuType::Incrementer}, 1500 * k, 25));
  lib.addModule(mk("dec16", {FuType::Decrementer}, 1500 * k, 25));
  lib.addModule(mk("and16", {FuType::AndGate}, 900 * k, 10));
  lib.addModule(mk("or16", {FuType::OrGate}, 900 * k, 10));
  lib.addModule(mk("xor16", {FuType::XorGate}, 1100 * k, 12));
  lib.addModule(mk("not16", {FuType::NotGate}, 600 * k, 5));
  lib.addModule(mk("shift16", {FuType::Shifter}, 2400 * k, 20));
  lib.addModule(mk("cmp16", {FuType::Comparator}, 1700 * k, 30));
  lib.addModule(mk("mul16", {FuType::Multiplier}, 16800 * k, 160));
  lib.addModule(mk("div16", {FuType::Divider}, 21000 * k, 200));

  if (opt.pipelinedMultiplier)
    lib.addModule(mk("mul16p2", {FuType::Multiplier}, 17500 * k, 90, 2));

  if (opt.includeMultifunction) {
    // Multifunction ALUs: area = largest member + ~55% of the rest, modeling
    // shared operand registers/carry chains in a merged datapath cell.
    lib.addModule(mk("alu_addsub", {FuType::Adder, FuType::Subtractor},
                     4550 * k, 42));
    lib.addModule(mk("alu_addcmp", {FuType::Adder, FuType::Comparator},
                     3840 * k, 42));
    lib.addModule(mk("alu_subcmp", {FuType::Subtractor, FuType::Comparator},
                     3940 * k, 42));
    lib.addModule(mk("alu_addsubcmp",
                     {FuType::Adder, FuType::Subtractor, FuType::Comparator},
                     5490 * k, 44));
    lib.addModule(mk("alu_logic", {FuType::AndGate, FuType::OrGate,
                                   FuType::XorGate, FuType::NotGate},
                     2530 * k, 14));
    lib.addModule(mk("alu_logiccmp",
                     {FuType::AndGate, FuType::OrGate, FuType::Comparator},
                     2690 * k, 32));
    lib.addModule(mk("alu_andcmp", {FuType::AndGate, FuType::Comparator},
                     2200 * k, 32));
    lib.addModule(mk("alu_arithlogic",
                     {FuType::Adder, FuType::Subtractor, FuType::AndGate,
                      FuType::OrGate},
                     5540 * k, 44));
    lib.addModule(mk("alu_full",
                     {FuType::Adder, FuType::Subtractor, FuType::Comparator,
                      FuType::AndGate, FuType::OrGate, FuType::XorGate,
                      FuType::NotGate},
                     7480 * k, 46));
    lib.addModule(mk("alu_incadd", {FuType::Adder, FuType::Incrementer},
                     3730 * k, 42));
    lib.addModule(mk("alu_inccmp", {FuType::Incrementer, FuType::Comparator},
                     2440 * k, 32));
    // Multiplier-centric combos (the paper's Table 2 shows ALUs such as
    // "(*+|)"): the array dwarfs the extra function, so the increment is
    // modest.
    lib.addModule(mk("alu_muladd", {FuType::Multiplier, FuType::Adder},
                     18400 * k, 162));
    lib.addModule(mk("alu_muladdor",
                     {FuType::Multiplier, FuType::Adder, FuType::OrGate},
                     18900 * k, 162));
    lib.addModule(mk("alu_mulsub", {FuType::Multiplier, FuType::Subtractor},
                     18450 * k, 162));
  }
  return lib;
}

}  // namespace mframe::celllib
