#include "celllib/library_io.h"

#include <sstream>

#include "util/strings.h"

namespace mframe::celllib {

namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw LibraryError(util::format("library parse error at line %d: %s", line,
                                  msg.c_str()));
}

}  // namespace

CellLibrary parseLibrary(std::string_view text) {
  CellLibrary lib;
  std::istringstream in{std::string(text)};
  std::string raw;
  int lineNo = 0;
  bool sawHeader = false;
  bool sawReg = false;
  bool sawMux = false;

  while (std::getline(in, raw)) {
    ++lineNo;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const auto tok = util::splitWs(raw);
    if (tok.empty()) continue;

    if (tok[0] == "library") {
      if (tok.size() != 2) fail(lineNo, "expected: library <name>");
      sawHeader = true;
    } else if (tok[0] == "reg") {
      if (tok.size() != 2) fail(lineNo, "expected: reg <areaUm2>");
      lib.setRegCost(std::strtod(tok[1].c_str(), nullptr));
      sawReg = true;
    } else if (tok[0] == "mux") {
      std::vector<double> costs;
      for (std::size_t i = 1; i < tok.size(); ++i)
        costs.push_back(std::strtod(tok[i].c_str(), nullptr));
      if (costs.size() < 3) fail(lineNo, "mux table needs at least 3 entries");
      if (costs[0] != 0.0 || costs[1] != 0.0)
        fail(lineNo, "mux costs for 0 and 1 inputs must be 0");
      lib.setMuxCosts(std::move(costs));
      sawMux = true;
    } else if (tok[0] == "module") {
      if (tok.size() < 2) fail(lineNo, "expected: module <name> <attrs>");
      Module m;
      m.name = tok[1];
      bool sawArea = false, sawCaps = false;
      for (std::size_t i = 2; i < tok.size(); ++i) {
        const auto eq = tok[i].find('=');
        if (eq == std::string::npos)
          fail(lineNo, "expected key=value, got '" + tok[i] + "'");
        const std::string key = tok[i].substr(0, eq);
        const std::string val = tok[i].substr(eq + 1);
        if (key == "area") {
          m.areaUm2 = std::strtod(val.c_str(), nullptr);
          sawArea = true;
        } else if (key == "delay") {
          m.delayNs = std::strtod(val.c_str(), nullptr);
        } else if (key == "stages") {
          const long s = util::parseLong(val);
          if (s < 1) fail(lineNo, "stages must be >= 1");
          m.stages = static_cast<int>(s);
        } else if (key == "caps") {
          for (const auto& cap : util::split(val, ',')) {
            dfg::FuType t;
            if (!dfg::parseFuType(cap, t))
              fail(lineNo, "unknown capability '" + cap + "'");
            m.caps.insert(t);
          }
          sawCaps = true;
        } else {
          fail(lineNo, "unknown attribute '" + key + "'");
        }
      }
      if (!sawArea) fail(lineNo, "module '" + m.name + "' needs area=");
      if (!sawCaps || m.caps.empty())
        fail(lineNo, "module '" + m.name + "' needs caps=");
      lib.addModule(std::move(m));
    } else {
      fail(lineNo, "unknown statement '" + tok[0] + "'");
    }
  }
  if (!sawHeader) throw LibraryError("library parse error: missing 'library <name>'");
  if (!sawReg) throw LibraryError("library '" + std::string("?") + "': missing 'reg'");
  if (!sawMux) throw LibraryError("library: missing 'mux' cost table");
  if (lib.modules().empty()) throw LibraryError("library has no modules");
  return lib;
}

std::string serializeLibrary(const CellLibrary& lib, const std::string& name) {
  std::string out = "library " + name + "\n";
  out += util::format("reg %g\n", lib.regCost());
  out += "mux 0 0";
  // Emit until increments become the flat extrapolation tail.
  int last = 2;
  for (int r = 3; r <= 32; ++r) {
    const double incPrev = lib.muxCost(r) - lib.muxCost(r - 1);
    const double incNext = lib.muxCost(r + 1) - lib.muxCost(r);
    last = r;
    if (incPrev == incNext && r > 4) break;
  }
  for (int r = 2; r <= last; ++r) out += util::format(" %g", lib.muxCost(r));
  out += "\n";
  for (const Module& m : lib.modules()) {
    out += util::format("module %s area=%g delay=%g caps=", m.name.c_str(),
                        m.areaUm2, m.delayNs);
    std::vector<std::string> caps;
    for (dfg::FuType t : m.caps) caps.push_back(std::string(dfg::fuTypeName(t)));
    out += util::join(caps, ",");
    if (m.stages != 1) out += util::format(" stages=%d", m.stages);
    out += "\n";
  }
  return out;
}

}  // namespace mframe::celllib
