#include "celllib/library_io.h"

#include <sstream>

#include "util/strings.h"

namespace mframe::celllib {

namespace {

/// Parser state shared by the statement handlers: the library name (once the
/// header has been seen) attributes every error to the offending library.
struct ParseState {
  std::string libName;

  [[noreturn]] void fail(int line, const std::string& msg) const {
    const std::string who =
        libName.empty() ? "library" : "library '" + libName + "'";
    throw LibraryError(
        util::format("%s: parse error at line %d: %s", who.c_str(), line,
                     msg.c_str()));
  }

  [[noreturn]] void failFile(const std::string& msg) const {
    const std::string who =
        libName.empty() ? "library" : "library '" + libName + "'";
    throw LibraryError(who + ": " + msg);
  }

  /// Strict numeric attribute: the whole token must parse and be finite. A
  /// silently zeroed cost or delay would rewrite chaining decisions and mask
  /// TIM001 downstream, so garbage is an error here. Negativity is only a
  /// *parse* error where no lint rule can see it (reg/mux costs); module
  /// area/delay stay the LIB002/LIB003 rules' business, so the broken.lib
  /// fixture still parses and lints.
  double number(int line, const std::string& what, const std::string& val,
                bool rejectNegative) const {
    double v = 0.0;
    if (!util::parseDouble(val, v))
      fail(line, "bad " + what + " value '" + val + "'");
    if (rejectNegative && v < 0.0)
      fail(line, "negative " + what + " value '" + val + "'");
    return v;
  }
};

}  // namespace

CellLibrary parseLibrary(std::string_view text) {
  CellLibrary lib;
  ParseState st;
  std::istringstream in{std::string(text)};
  std::string raw;
  int lineNo = 0;
  bool sawHeader = false;
  bool sawReg = false;
  bool sawMux = false;

  while (std::getline(in, raw)) {
    ++lineNo;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const auto tok = util::splitWs(raw);
    if (tok.empty()) continue;

    if (tok[0] == "library") {
      if (tok.size() != 2) st.fail(lineNo, "expected: library <name>");
      st.libName = tok[1];
      lib.setName(tok[1]);
      sawHeader = true;
    } else if (tok[0] == "reg") {
      if (tok.size() != 2) st.fail(lineNo, "expected: reg <areaUm2>");
      lib.setRegCost(st.number(lineNo, "reg cost", tok[1], /*rejectNegative=*/true));
      sawReg = true;
    } else if (tok[0] == "mux") {
      std::vector<double> costs;
      for (std::size_t i = 1; i < tok.size(); ++i)
        costs.push_back(st.number(lineNo, "mux cost", tok[i], /*rejectNegative=*/true));
      if (costs.size() < 3) st.fail(lineNo, "mux table needs at least 3 entries");
      if (costs[0] != 0.0 || costs[1] != 0.0)
        st.fail(lineNo, "mux costs for 0 and 1 inputs must be 0");
      lib.setMuxCosts(std::move(costs));
      sawMux = true;
    } else if (tok[0] == "module") {
      if (tok.size() < 2) st.fail(lineNo, "expected: module <name> <attrs>");
      Module m;
      m.name = tok[1];
      bool sawArea = false, sawCaps = false;
      for (std::size_t i = 2; i < tok.size(); ++i) {
        const auto eq = tok[i].find('=');
        if (eq == std::string::npos)
          st.fail(lineNo, "expected key=value, got '" + tok[i] + "'");
        const std::string key = tok[i].substr(0, eq);
        const std::string val = tok[i].substr(eq + 1);
        if (key == "area") {
          m.areaUm2 = st.number(lineNo, "area", val, /*rejectNegative=*/false);
          sawArea = true;
        } else if (key == "delay") {
          m.delayNs = st.number(lineNo, "delay", val, /*rejectNegative=*/false);
        } else if (key == "stages") {
          const long s = util::parseLong(val);
          if (s < 0) st.fail(lineNo, "bad stages value '" + val + "'");
          if (s < 1) st.fail(lineNo, "stages must be >= 1");
          m.stages = static_cast<int>(s);
        } else if (key == "caps") {
          for (const auto& cap : util::split(val, ',')) {
            dfg::FuType t;
            if (!dfg::parseFuType(cap, t))
              st.fail(lineNo, "unknown capability '" + cap + "'");
            m.caps.insert(t);
          }
          sawCaps = true;
        } else {
          st.fail(lineNo, "unknown attribute '" + key + "'");
        }
      }
      if (!sawArea) st.fail(lineNo, "module '" + m.name + "' needs area=");
      if (!sawCaps || m.caps.empty())
        st.fail(lineNo, "module '" + m.name + "' needs caps=");
      lib.addModule(std::move(m));
    } else {
      st.fail(lineNo, "unknown statement '" + tok[0] + "'");
    }
  }
  if (!sawHeader) st.failFile("missing 'library <name>' header");
  if (!sawReg) st.failFile("missing 'reg'");
  if (!sawMux) st.failFile("missing 'mux' cost table");
  if (lib.modules().empty()) st.failFile("has no modules");
  return lib;
}

std::string serializeLibrary(const CellLibrary& lib, const std::string& name) {
  std::string out =
      "library " + (name.empty() ? lib.name() : name) + "\n";
  out += util::format("reg %g\n", lib.regCost());
  out += "mux 0 0";
  // Emit until increments become the flat extrapolation tail.
  int last = 2;
  for (int r = 3; r <= 32; ++r) {
    const double incPrev = lib.muxCost(r) - lib.muxCost(r - 1);
    const double incNext = lib.muxCost(r + 1) - lib.muxCost(r);
    last = r;
    if (incPrev == incNext && r > 4) break;
  }
  for (int r = 2; r <= last; ++r) out += util::format(" %g", lib.muxCost(r));
  out += "\n";
  for (const Module& m : lib.modules()) {
    out += util::format("module %s area=%g delay=%g caps=", m.name.c_str(),
                        m.areaUm2, m.delayNs);
    std::vector<std::string> caps;
    for (dfg::FuType t : m.caps) caps.push_back(std::string(dfg::fuTypeName(t)));
    out += util::join(caps, ",");
    if (m.stages != 1) out += util::format(" stages=%d", m.stages);
    out += "\n";
  }
  return out;
}

}  // namespace mframe::celllib
