// The default "NCR-like" cell library.
//
// The paper prices Table-2 designs with the NCR ASIC Data Book (1989), which
// is not publicly available; this library substitutes plausible areas for a
// ~1.5um 1989-era standard-cell process and a 16-bit datapath (see DESIGN.md,
// "Substitutions"). MFSA's decisions depend only on relative costs — the
// multiplier/adder ratio, the mux-increment vs register trade-off — so the
// substitution preserves which designs win and the style-1 vs style-2 shape,
// while absolute um^2 rescale uniformly.
#pragma once

#include "celllib/cell_library.h"

namespace mframe::celllib {

/// Options tweaking the default library; used by the ablation benches.
struct NcrLikeOptions {
  bool includeMultifunction = true;  ///< offer multi-op ALUs (MFSA merging)
  bool pipelinedMultiplier = false;  ///< add a 2-stage pipelined multiplier
  double scale = 1.0;                ///< uniform area scale factor
};

/// Build the default library: registers, a nonlinear mux table, all
/// single-function units and (optionally) a set of multifunction ALUs.
CellLibrary ncrLike(const NcrLikeOptions& opt = {});

}  // namespace mframe::celllib
