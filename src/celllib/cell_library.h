// Cell library model: the hardware modules MFSA may allocate, with areas,
// delays and (for structural pipelining) stage counts, plus the nonlinear
// multiplexer cost table and register cost the Liapunov function of
// Section 4.1 consumes.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dfg/op.h"

namespace mframe::celllib {

/// One allocatable datapath module. A single-function unit has one
/// capability; a multifunction ALU (e.g. "(+-<)") has several. Capabilities
/// are expressed as FU types, so e.g. Comparator covers all relational op
/// kinds.
struct Module {
  std::string name;
  std::set<dfg::FuType> caps;
  double areaUm2 = 0.0;
  double delayNs = 0.0;  ///< worst-case combinational delay of any supported op
  int stages = 1;        ///< >1: structurally pipelined (one initiation per cycle)

  bool supports(dfg::FuType t) const { return caps.count(t) > 0; }

  /// The paper's "(+-<)" style signature built from FU-type symbols.
  std::string signature() const;
};

using ModuleId = int;

class CellLibrary {
 public:
  /// Library name as declared by the `library <name>` header (or set by a
  /// builder such as ncrLike). Carried through parse/serialize round-trips
  /// and used to attribute LibraryError messages.
  const std::string& name() const { return name_; }
  void setName(std::string n) { name_ = std::move(n); }

  /// Register the module; returns its id. Modules are deduplicated by name.
  ModuleId addModule(Module m);

  const std::vector<Module>& modules() const { return modules_; }
  const Module& module(ModuleId id) const { return modules_[static_cast<std::size_t>(id)]; }

  /// Ids of all modules able to perform FU type `t`, cheapest first.
  std::vector<ModuleId> capableModules(dfg::FuType t) const;

  /// The cheapest module for `t`, if any.
  std::optional<ModuleId> cheapestFor(dfg::FuType t) const;

  /// Set the multiplexer cost table: costByInputs[r] = area of an r-input
  /// mux. Entries 0 and 1 must be 0 (a wire). Beyond the table, cost grows
  /// by the last increment.
  void setMuxCosts(std::vector<double> costByInputs);
  double muxCost(int dataInputs) const;

  /// f^MUX_max of Section 4.1: 2 * max_r (Cost(MUX_{r+1}) - Cost(MUX_r)).
  double maxMuxIncrement() const;

  void setRegCost(double areaUm2) { regCost_ = areaUm2; }
  double regCost() const { return regCost_; }

  /// Largest single-module area; used to derive the time constant C.
  double maxModuleArea() const;

  /// Validation: every FU type of `needed` has at least one capable module.
  std::optional<std::string> checkCoverage(const std::set<dfg::FuType>& needed) const;

  /// Names that addModule saw more than once (the later definition was
  /// dropped), in encounter order with repeats — lint fodder.
  const std::vector<std::string>& duplicateNames() const { return duplicateNames_; }

 private:
  std::string name_;
  std::vector<Module> modules_;
  std::vector<std::string> duplicateNames_;
  std::vector<double> muxCost_{0.0, 0.0};
  double regCost_ = 0.0;
};

}  // namespace mframe::celllib
