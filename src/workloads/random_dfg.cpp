#include "workloads/random_dfg.h"

#include <random>

#include "dfg/builder.h"
#include "util/strings.h"

namespace mframe::workloads {

dfg::Dfg randomDfg(const RandomDfgOptions& opt) {
  std::mt19937 rng(opt.seed);
  auto pct = [&](int p) {
    return std::uniform_int_distribution<int>(0, 99)(rng) < p;
  };

  dfg::Builder b(util::format("rand_%u_%d", opt.seed, opt.numOps));
  std::vector<dfg::NodeId> pool;  // values usable as operands
  for (int i = 0; i < std::max(2, opt.numInputs); ++i)
    pool.push_back(b.input(util::format("in%d", i)));

  const dfg::OpKind binaryKinds[] = {dfg::OpKind::Add, dfg::OpKind::Sub,
                                     dfg::OpKind::And, dfg::OpKind::Or,
                                     dfg::OpKind::Xor, dfg::OpKind::Lt};
  int made = 0;
  int layer = 0;
  std::vector<dfg::NodeId> lastLayerOut = pool;
  while (made < opt.numOps) {
    ++layer;
    std::vector<dfg::NodeId> thisLayer;
    const int width = std::uniform_int_distribution<int>(
        1, std::max(1, opt.layerWidth))(rng);
    for (int w = 0; w < width && made < opt.numOps; ++w, ++made) {
      auto pick = [&]() {
        return pool[std::uniform_int_distribution<std::size_t>(
            0, pool.size() - 1)(rng)];
      };
      dfg::OpKind kind =
          pct(opt.mulPercent)
              ? dfg::OpKind::Mul
              : binaryKinds[std::uniform_int_distribution<int>(0, 5)(rng)];
      const int cycles =
          kind == dfg::OpKind::Mul && pct(opt.twoCyclePercent) ? 2 : 1;
      const double delay =
          opt.randomDelays && cycles == 1
              ? static_cast<double>(std::uniform_int_distribution<int>(10, 60)(rng))
              : -1.0;
      // Bias one operand to the previous layer so depth actually grows.
      dfg::NodeId x = lastLayerOut[std::uniform_int_distribution<std::size_t>(
          0, lastLayerOut.size() - 1)(rng)];
      dfg::NodeId y = pick();
      if (pct(opt.branchPercent)) {
        b.pushBranch(util::format("c%d", layer), pct(50) ? "t" : "e");
        thisLayer.push_back(
            b.op(kind, {x, y}, util::format("n%d", made), cycles, delay));
        b.popBranch();
      } else {
        thisLayer.push_back(
            b.op(kind, {x, y}, util::format("n%d", made), cycles, delay));
      }
    }
    for (dfg::NodeId id : thisLayer) pool.push_back(id);
    lastLayerOut = thisLayer.empty() ? lastLayerOut : thisLayer;
  }
  // Mark sinks as outputs so lifetimes reach the end of the schedule.
  b.output(pool.back(), "out");
  return std::move(b).build();
}

}  // namespace mframe::workloads
