#include "workloads/random_dfg.h"

#include <random>

#include "dfg/builder.h"
#include "util/strings.h"

namespace mframe::workloads {

namespace {

/// The legacy generator: random layer widths, operands from the whole pool.
dfg::Dfg layeredDfg(const RandomDfgOptions& opt) {
  std::mt19937 rng(opt.seed);
  auto pct = [&](int p) {
    return std::uniform_int_distribution<int>(0, 99)(rng) < p;
  };

  dfg::Builder b(util::format("rand_%u_%d", opt.seed, opt.numOps));
  std::vector<dfg::NodeId> pool;  // values usable as operands
  for (int i = 0; i < std::max(2, opt.numInputs); ++i)
    pool.push_back(b.input(util::format("in%d", i)));

  const dfg::OpKind binaryKinds[] = {dfg::OpKind::Add, dfg::OpKind::Sub,
                                     dfg::OpKind::And, dfg::OpKind::Or,
                                     dfg::OpKind::Xor, dfg::OpKind::Lt};
  int made = 0;
  int layer = 0;
  std::vector<dfg::NodeId> lastLayerOut = pool;
  while (made < opt.numOps) {
    ++layer;
    std::vector<dfg::NodeId> thisLayer;
    const int width = std::uniform_int_distribution<int>(
        1, std::max(1, opt.layerWidth))(rng);
    for (int w = 0; w < width && made < opt.numOps; ++w, ++made) {
      auto pick = [&]() {
        return pool[std::uniform_int_distribution<std::size_t>(
            0, pool.size() - 1)(rng)];
      };
      dfg::OpKind kind =
          pct(opt.mulPercent)
              ? dfg::OpKind::Mul
              : binaryKinds[std::uniform_int_distribution<int>(0, 5)(rng)];
      const int cycles =
          kind == dfg::OpKind::Mul && pct(opt.twoCyclePercent) ? 2 : 1;
      const double delay =
          opt.randomDelays && cycles == 1
              ? static_cast<double>(std::uniform_int_distribution<int>(10, 60)(rng))
              : -1.0;
      // Bias one operand to the previous layer so depth actually grows.
      dfg::NodeId x = lastLayerOut[std::uniform_int_distribution<std::size_t>(
          0, lastLayerOut.size() - 1)(rng)];
      dfg::NodeId y = pick();
      if (pct(opt.branchPercent)) {
        b.pushBranch(util::format("c%d", layer), pct(50) ? "t" : "e");
        thisLayer.push_back(
            b.op(kind, {x, y}, util::format("n%d", made), cycles, delay));
        b.popBranch();
      } else {
        thisLayer.push_back(
            b.op(kind, {x, y}, util::format("n%d", made), cycles, delay));
      }
    }
    for (dfg::NodeId id : thisLayer) pool.push_back(id);
    lastLayerOut = thisLayer.empty() ? lastLayerOut : thisLayer;
  }
  // Mark sinks as outputs so lifetimes reach the end of the schedule.
  b.output(pool.back(), "out");
  return std::move(b).build();
}

/// Shared per-op attribute roll for the structured topologies.
struct OpRoll {
  dfg::OpKind kind;
  int cycles;
  double delay;
};

OpRoll rollOp(const RandomDfgOptions& opt, std::mt19937& rng,
              dfg::OpKind preferred, int preferredPercent) {
  auto pct = [&](int p) {
    return std::uniform_int_distribution<int>(0, 99)(rng) < p;
  };
  const dfg::OpKind alt[] = {dfg::OpKind::Add, dfg::OpKind::Sub,
                             dfg::OpKind::And, dfg::OpKind::Xor};
  OpRoll r;
  r.kind = pct(preferredPercent)
               ? preferred
               : alt[std::uniform_int_distribution<int>(0, 3)(rng)];
  r.cycles = r.kind == dfg::OpKind::Mul && pct(opt.twoCyclePercent) ? 2 : 1;
  r.delay = opt.randomDelays && r.cycles == 1
                ? static_cast<double>(
                      std::uniform_int_distribution<int>(10, 60)(rng))
                : -1.0;
  return r;
}

/// Conv: fixed-width layers, op k of a layer reads prev[k] and prev[k+1]
/// (mod width) — every previous-layer output fans out to ~2 consumers and
/// the graph depth is numOps / width.
dfg::Dfg convDfg(const RandomDfgOptions& opt) {
  std::mt19937 rng(opt.seed);
  dfg::Builder b(util::format("conv_%u_%d", opt.seed, opt.numOps));
  const int width = std::max(1, opt.layerWidth);
  std::vector<dfg::NodeId> prev;
  for (int i = 0; i < std::max(2, opt.numInputs); ++i)
    prev.push_back(b.input(util::format("in%d", i)));

  int made = 0;
  while (made < opt.numOps) {
    std::vector<dfg::NodeId> layer;
    layer.reserve(static_cast<std::size_t>(width));
    const std::size_t pw = prev.size();
    for (int k = 0; k < width && made < opt.numOps; ++k, ++made) {
      const OpRoll r = rollOp(opt, rng, dfg::OpKind::Mul, opt.mulPercent);
      const dfg::NodeId x = prev[static_cast<std::size_t>(k) % pw];
      const dfg::NodeId y = prev[(static_cast<std::size_t>(k) + 1) % pw];
      layer.push_back(
          b.op(r.kind, {x, y}, util::format("n%d", made), r.cycles, r.delay));
    }
    prev = std::move(layer);
  }
  b.output(prev.back(), "out");
  return std::move(b).build();
}

/// Lstm: C = max(1, width/4) parallel cells, each carrying a cell chain c
/// and a hidden chain h; every timestep spends four ops per cell
/// (gate, cell update, output gate, hidden update), so the dependency
/// chains are numOps / (4*C) deep.
dfg::Dfg lstmDfg(const RandomDfgOptions& opt) {
  std::mt19937 rng(opt.seed);
  dfg::Builder b(util::format("lstm_%u_%d", opt.seed, opt.numOps));
  const int cells = std::max(1, opt.layerWidth / 4);
  std::vector<dfg::NodeId> ins;
  for (int i = 0; i < std::max(2, opt.numInputs); ++i)
    ins.push_back(b.input(util::format("in%d", i)));

  std::vector<dfg::NodeId> c(static_cast<std::size_t>(cells));
  std::vector<dfg::NodeId> h(static_cast<std::size_t>(cells));
  for (int j = 0; j < cells; ++j) {
    c[static_cast<std::size_t>(j)] = ins[static_cast<std::size_t>(j) % ins.size()];
    h[static_cast<std::size_t>(j)] =
        ins[(static_cast<std::size_t>(j) + 1) % ins.size()];
  }

  int made = 0;
  auto emit = [&](dfg::OpKind kind, dfg::NodeId x, dfg::NodeId y) {
    const OpRoll r = rollOp(opt, rng, kind, 100);
    return b.op(r.kind, {x, y}, util::format("n%d", made++), r.cycles, r.delay);
  };
  while (made < opt.numOps) {
    for (int j = 0; j < cells && made < opt.numOps; ++j) {
      const auto ji = static_cast<std::size_t>(j);
      const dfg::NodeId x = ins[static_cast<std::size_t>(
          std::uniform_int_distribution<int>(
              0, static_cast<int>(ins.size()) - 1)(rng))];
      // gate = h (+) x; cell' = cell (*) gate; out = h (^) x;
      // hidden' = cell' (+) out — the recurrence runs through cell'/hidden'.
      const dfg::NodeId gate = emit(dfg::OpKind::Add, h[ji], x);
      if (made >= opt.numOps) break;
      const dfg::NodeId cNew = emit(dfg::OpKind::Mul, c[ji], gate);
      c[ji] = cNew;
      if (made >= opt.numOps) break;
      const dfg::NodeId out = emit(dfg::OpKind::Xor, h[ji], x);
      if (made >= opt.numOps) break;
      h[ji] = emit(dfg::OpKind::Add, cNew, out);
    }
  }
  b.output(c.back(), "out");
  return std::move(b).build();
}

/// Transformer: dense width-sized blocks; every op reads two uniformly
/// random outputs of the previous block. Even blocks are mul-heavy
/// (attention-score flavor), odd blocks add-heavy (feed-forward flavor).
dfg::Dfg transformerDfg(const RandomDfgOptions& opt) {
  std::mt19937 rng(opt.seed);
  dfg::Builder b(util::format("xfmr_%u_%d", opt.seed, opt.numOps));
  const int width = std::max(1, opt.layerWidth);
  std::vector<dfg::NodeId> prev;
  for (int i = 0; i < std::max(2, opt.numInputs); ++i)
    prev.push_back(b.input(util::format("in%d", i)));

  int made = 0;
  int block = 0;
  while (made < opt.numOps) {
    const dfg::OpKind preferred =
        block % 2 == 0 ? dfg::OpKind::Mul : dfg::OpKind::Add;
    std::vector<dfg::NodeId> layer;
    layer.reserve(static_cast<std::size_t>(width));
    auto pickPrev = [&]() {
      return prev[std::uniform_int_distribution<std::size_t>(
          0, prev.size() - 1)(rng)];
    };
    for (int k = 0; k < width && made < opt.numOps; ++k, ++made) {
      const OpRoll r = rollOp(opt, rng, preferred, 70);
      layer.push_back(b.op(r.kind, {pickPrev(), pickPrev()},
                           util::format("n%d", made), r.cycles, r.delay));
    }
    prev = std::move(layer);
    ++block;
  }
  b.output(prev.back(), "out");
  return std::move(b).build();
}

}  // namespace

dfg::Dfg randomDfg(const RandomDfgOptions& opt) {
  switch (opt.topology) {
    case DfgTopology::Conv: return convDfg(opt);
    case DfgTopology::Lstm: return lstmDfg(opt);
    case DfgTopology::Transformer: return transformerDfg(opt);
    case DfgTopology::Layered: break;
  }
  return layeredDfg(opt);
}

}  // namespace mframe::workloads
