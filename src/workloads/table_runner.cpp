#include "workloads/table_runner.h"

#include <chrono>

#include "core/mfs.h"
#include "core/mfsa.h"
#include "pipeline/structural.h"
#include "rtl/verify.h"
#include "sched/verify.h"
#include "util/strings.h"

namespace mframe::workloads {

namespace {

double msSince(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

Table1Row runOne(const BenchmarkCase& bc, int cs, const std::string& variant,
                 bool structural, int latency) {
  Table1Row row;
  row.exampleId = bc.id;
  row.design = bc.graph.name();
  row.variant = variant;
  row.timeSteps = cs;

  core::MfsOptions o;
  o.constraints = bc.constraints;
  if (structural)
    o.constraints = pipeline::withStructuralPipelining(
        o.constraints, {dfg::FuType::Multiplier});
  o.constraints.timeSteps = cs;
  o.constraints.latency = latency;

  const auto t0 = std::chrono::steady_clock::now();
  const auto r = core::runMfs(bc.graph, o);
  row.milliseconds = msSince(t0);
  row.feasible = r.feasible;
  if (r.feasible) {
    row.fuCount = r.fuCount;
    row.verified = sched::verifySchedule(r.schedule, o.constraints).empty();
  }
  return row;
}

}  // namespace

std::vector<Table1Row> runTable1(const std::vector<BenchmarkCase>& suite) {
  std::vector<Table1Row> rows;
  for (const auto& bc : suite) {
    for (int cs : bc.timeSweep)
      rows.push_back(runOne(bc, cs, "plain", false, 0));
    if (bc.functionalLatency > 0)
      rows.push_back(runOne(bc, bc.timeSweep.back(),
                            util::format("F (L=%d)", bc.functionalLatency),
                            false, bc.functionalLatency));
    if (bc.structuralPipelining)
      for (int cs : bc.timeSweep) rows.push_back(runOne(bc, cs, "S", true, 0));
  }
  return rows;
}

std::vector<Table2Row> runTable2(const std::vector<BenchmarkCase>& suite,
                                 const celllib::CellLibrary& lib) {
  std::vector<Table2Row> rows;
  for (const auto& bc : suite) {
    for (int styleIdx = 1; styleIdx <= 2; ++styleIdx) {
      Table2Row row;
      row.exampleId = bc.id;
      row.design = bc.graph.name();
      row.style = styleIdx;
      row.timeSteps = bc.timeSweep.front();

      core::MfsaOptions o;
      o.constraints = bc.constraints;
      o.constraints.timeSteps = row.timeSteps;
      o.style = styleIdx == 1 ? rtl::DesignStyle::Unrestricted
                              : rtl::DesignStyle::NoSelfLoop;
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = core::runMfsa(bc.graph, lib, o);
      row.milliseconds = msSince(t0);
      row.feasible = r.feasible;
      if (r.feasible) {
        row.aluSummary = r.datapath.aluSummary();
        row.cost = r.cost;
        row.verified =
            rtl::verifyDatapath(r.datapath, o.constraints, o.style).empty();
      }
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

}  // namespace mframe::workloads
