// Deterministic random DFG generation for property tests and the runtime
// scaling bench.
#pragma once

#include <cstdint>

#include "dfg/dfg.h"

namespace mframe::workloads {

struct RandomDfgOptions {
  std::uint32_t seed = 1;
  int numOps = 20;
  int numInputs = 4;
  /// Average number of operations per dependency layer (controls width vs
  /// depth).
  int layerWidth = 4;
  /// Probability (percent) that an eligible binary op is a multiplication.
  int mulPercent = 25;
  /// Probability (percent) that a multiplication takes two cycles.
  int twoCyclePercent = 0;
  /// Probability (percent) that an op lands in one of two branch arms of a
  /// conditional (mutual exclusion coverage).
  int branchPercent = 0;
  /// When true, single-cycle ops get random combinational delays in
  /// [10, 60] ns so chaining under a 100 ns clock has real structure.
  bool randomDelays = false;
};

/// Build a random layered DAG: every op reads from earlier layers or primary
/// inputs, so the result always validates. Deterministic in the options.
dfg::Dfg randomDfg(const RandomDfgOptions& opt);

}  // namespace mframe::workloads
