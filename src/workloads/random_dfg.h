// Deterministic random DFG generation for property tests and the runtime
// scaling bench.
#pragma once

#include <cstdint>

#include "dfg/dfg.h"

namespace mframe::workloads {

/// Shape of the generated DAG. Layered is the legacy generator (random
/// layer widths, operands drawn from the whole pool). The other three are
/// NN-inspired structures for the 10^5..10^6-op scale benches:
///  * Conv — fixed-width layers where op k reads a sliding window of the
///    previous layer, giving every layer output a wide fan-out;
///  * Lstm — a few parallel cell/hidden chains updated step by step, giving
///    recurrence-deep dependency chains (graph depth ~ numOps / width);
///  * Transformer — dense blocks where each op reads two random outputs of
///    the previous block, alternating mul-heavy and add-heavy blocks.
enum class DfgTopology { Layered, Conv, Lstm, Transformer };

struct RandomDfgOptions {
  std::uint32_t seed = 1;
  int numOps = 20;
  int numInputs = 4;
  DfgTopology topology = DfgTopology::Layered;
  /// Average number of operations per dependency layer (controls width vs
  /// depth). For Conv/Transformer this is the exact layer/block width; for
  /// Lstm, the number of parallel cell chains is max(1, layerWidth / 4).
  int layerWidth = 4;
  /// Probability (percent) that an eligible binary op is a multiplication.
  int mulPercent = 25;
  /// Probability (percent) that a multiplication takes two cycles.
  int twoCyclePercent = 0;
  /// Probability (percent) that an op lands in one of two branch arms of a
  /// conditional (mutual exclusion coverage). Layered topology only.
  int branchPercent = 0;
  /// When true, single-cycle ops get random combinational delays in
  /// [10, 60] ns so chaining under a 100 ns clock has real structure.
  bool randomDelays = false;
};

/// Build a random DAG of the requested topology: every op reads from
/// earlier layers or primary inputs, so the result always validates (node
/// ids are topological by construction). Deterministic in the options.
dfg::Dfg randomDfg(const RandomDfgOptions& opt);

}  // namespace mframe::workloads
