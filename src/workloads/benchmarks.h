// The benchmark suite: reconstructions of the six "design examples from the
// literature" of Section 6 (see DESIGN.md for the mapping evidence) plus
// helpers to assemble the Table-1 sweep.
//
//   ex1  tseng      Tseng/FACET-style mixed arithmetic-logic graph
//   ex2  chained    chained additions/subtractions (Section 5.4 feature)
//   ex3  diffeq     the HAL differential-equation benchmark (Paulin)
//   ex4  fir8       8-tap FIR filter (multiplies + adder tree)
//   ex5  ar         AR-lattice-style filter, 16 mul / 12 add, 2-cycle mults
//   ex6  ewf        elliptic-wave-filter-like graph, 26 add / 8 mul,
//                   2-cycle mults (the classic T = 17/19/21 data points)
#pragma once

#include <string>
#include <vector>

#include "dfg/dfg.h"
#include "sched/schedule.h"

namespace mframe::workloads {

dfg::Dfg tseng();
dfg::Dfg chained();
dfg::Dfg diffeq(bool twoCycleMult = false);
dfg::Dfg fir8();
dfg::Dfg arLattice();   ///< multiplications take 2 cycles
dfg::Dfg ewfLike();     ///< multiplications take 2 cycles

// Extended suite (beyond the paper's six): more classic DSP designs used by
// the era's HLS literature, exercised by bench_extended and the tests.
dfg::Dfg fdctLike();    ///< 8-point DCT butterfly network (16 mul, 28 add/sub)
dfg::Dfg iirBiquads();  ///< two cascaded direct-form-II biquads (10 mul, 8 add/sub)

/// Case study: a 4x4 2-D DCT built from row transforms feeding column
/// transforms through a transpose — ~100 operations, the largest design in
/// the repository and a stress test for the whole flow.
dfg::Dfg dct2d4x4();

/// One row group of the Table-1 reproduction.
struct BenchmarkCase {
  std::string id;       ///< "ex1" .. "ex6"
  std::string feature;  ///< the paper's feature column: "1", "1C", "1FS", "2S"
  dfg::Dfg graph;
  std::vector<int> timeSweep;        ///< the T values of the Table-1 columns
  sched::Constraints constraints;    ///< chaining / clock configuration
  int functionalLatency = 0;         ///< >0: also run an F (folded) variant
  bool structuralPipelining = false; ///< also run an S variant (pipelined mult)
};

/// The six cases with their Table-1 sweeps.
std::vector<BenchmarkCase> paperSuite();

}  // namespace mframe::workloads
