#include "workloads/benchmarks.h"

#include <array>

#include "dfg/builder.h"
#include "util/strings.h"

namespace mframe::workloads {

using dfg::Builder;
using dfg::NodeId;

dfg::Dfg tseng() {
  // Mixed arithmetic/logic graph in the spirit of the FACET example: one
  // multiplication, three additions, a subtraction and the logic/relational
  // tail. Critical path 4 (m1 -> a1 -> a3 -> c1), so T=4 forces two
  // concurrent additions (two adders) while T=5 fits a single adder — the
  // paper's Table-1 ex1 shape.
  Builder b("tseng");
  const auto a = b.input("a");
  const auto b_ = b.input("b");
  const auto c = b.input("c");
  const auto d = b.input("d");
  const auto e = b.input("e");
  const auto f = b.input("f");
  const auto gg = b.input("g");
  const auto h = b.input("h");

  const auto m1 = b.mul(a, b_, "m1");
  const auto s1 = b.sub(c, d, "s1");
  const auto a1 = b.add(m1, e, "a1");
  const auto a2 = b.add(s1, f, "a2");
  const auto a3 = b.add(a1, a2, "a3");
  const auto o1 = b.bor(a1, gg, "o1");
  const auto n1 = b.band(a2, h, "n1");
  const auto c1 = b.eq(a3, gg, "c1");

  b.output(a3, "sum");
  b.output(o1, "orv");
  b.output(n1, "andv");
  b.output(c1, "flag");
  return std::move(b).build();
}

dfg::Dfg chained() {
  // Two dependent chains of cheap (40ns) adds/subs; with a 100ns control
  // step two dependent operations fit per step, so the 6-deep chain closes
  // in T=4 only when chaining is on (Section 5.4).
  Builder b("chained");
  const auto a = b.input("a");
  const auto b_ = b.input("b");
  const auto c = b.input("c");
  const auto d = b.input("d");
  const auto e = b.input("e");
  const auto f = b.input("f");
  const auto g = b.input("g");
  const auto h = b.input("h");

  const auto t1 = b.add(a, b_, "t1");
  const auto t2 = b.add(t1, c, "t2");
  const auto t3 = b.sub(t2, d, "t3");
  const auto t4 = b.sub(t3, e, "t4");
  const auto t5 = b.add(t4, f, "t5");
  const auto t6 = b.add(t5, g, "t6");
  const auto u1 = b.add(g, h, "u1");
  const auto u2 = b.sub(u1, a, "u2");

  b.output(t6, "y");
  b.output(u2, "z");
  return std::move(b).build();
}

dfg::Dfg diffeq(bool twoCycleMult) {
  // The HAL benchmark (Paulin & Knight): one Euler step of
  // y'' + 3xy' + 3y = 0 — six multiplications, two subtractions, two
  // additions and one comparison.
  const int mc = twoCycleMult ? 2 : 1;
  Builder b(twoCycleMult ? "diffeq2c" : "diffeq");
  const auto x = b.input("x");
  const auto y = b.input("y");
  const auto u = b.input("u");
  const auto dx = b.input("dx");
  const auto a = b.input("a");
  const auto three = b.constant(3, "three");

  const auto m1 = b.mul(three, x, "m1", mc);   // 3*x
  const auto m2 = b.mul(u, dx, "m2", mc);      // u*dx
  const auto m3 = b.mul(three, y, "m3", mc);   // 3*y
  const auto m4 = b.mul(m1, m2, "m4", mc);     // 3*x*u*dx
  const auto m5 = b.mul(dx, m3, "m5", mc);     // dx*3*y
  const auto m6 = b.mul(u, dx, "m6", mc);      // u*dx (second instance)
  const auto s1 = b.sub(u, m4, "s1");
  const auto u1 = b.sub(s1, m5, "u1");
  const auto y1 = b.add(y, m6, "y1");
  const auto x1 = b.add(x, dx, "x1");
  const auto c1 = b.lt(x1, a, "c1");

  b.output(u1, "u1");
  b.output(y1, "y1");
  b.output(x1, "x1");
  b.output(c1, "cont");
  return std::move(b).build();
}

dfg::Dfg fir8() {
  // 8-tap FIR: y = sum h_i * x_i, balanced adder tree (8 mul + 7 add,
  // critical path 4).
  Builder b("fir8");
  std::vector<NodeId> prods;
  for (int i = 0; i < 8; ++i) {
    const auto xi = b.input(util::format("x%d", i));
    const auto hi = b.constant(i + 1, util::format("h%d", i));
    prods.push_back(b.mul(xi, hi, util::format("m%d", i)));
  }
  int level = 0;
  while (prods.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < prods.size(); i += 2)
      next.push_back(b.add(prods[i], prods[i + 1],
                           util::format("a%d_%zu", level, i / 2)));
    if (prods.size() % 2) next.push_back(prods.back());
    prods = std::move(next);
    ++level;
  }
  b.output(prods[0], "y");
  return std::move(b).build();
}

dfg::Dfg arLattice() {
  // AR-lattice-style filter: four serial sections, each with four 2-cycle
  // multiplications and three additions (16 mul / 12 add, the classic AR
  // op mix). Section i+1 consumes section i's p/q outputs.
  Builder b("ar");
  NodeId p = b.input("p0");
  NodeId q = b.input("q0");
  for (int i = 0; i < 4; ++i) {
    const auto kA = b.constant(10 + i, util::format("kA%d", i));
    const auto kB = b.constant(20 + i, util::format("kB%d", i));
    const auto kC = b.constant(30 + i, util::format("kC%d", i));
    const auto kD = b.constant(40 + i, util::format("kD%d", i));
    const auto mA = b.mul(p, kA, util::format("mA%d", i), 2);
    const auto mB = b.mul(q, kB, util::format("mB%d", i), 2);
    const auto mC = b.mul(p, kC, util::format("mC%d", i), 2);
    const auto mD = b.mul(q, kD, util::format("mD%d", i), 2);
    const auto np = b.add(mA, mD, util::format("p%d", i + 1));
    const auto nq = b.add(mB, mC, util::format("q%d", i + 1));
    const auto tap = b.add(np, nq, util::format("y%d", i));
    b.output(tap, util::format("y%d", i));
    p = np;
    q = nq;
  }
  b.output(p, "p4o");
  b.output(q, "q4o");
  return std::move(b).build();
}

dfg::Dfg ewfLike() {
  // Elliptic-wave-filter-like graph: 26 additions and eight 2-cycle
  // multiplications. The critical path interleaves 11 additions with three
  // multiplications (11 + 3*2 = 17 steps), matching the classic EWF
  // T = 17/19/21 sweep; the remaining operations hang off the spine with
  // slack, like the filter's adaptor side-branches.
  Builder b("ewf");
  std::vector<NodeId> in;
  for (int i = 0; i < 8; ++i) in.push_back(b.input(util::format("v%d", i)));
  auto k = [&](int i) { return b.constant(i, util::format("k%d", i)); };

  int addCount = 0;
  int mulCount = 0;
  auto add = [&](NodeId x, NodeId y) {
    return b.add(x, y, util::format("sa%d", ++addCount));
  };
  auto mul = [&](NodeId x, NodeId y) {
    return b.mul(x, y, util::format("sm%d", ++mulCount), 2);
  };

  // The spine: a1 a2 M a3 a4 a5 M a6 a7 a8 M a9 a10 a11 (3 muls, 11 adds).
  NodeId spine = add(in[0], in[1]);          // sa1
  spine = add(spine, in[2]);                 // sa2
  spine = mul(spine, k(3));                  // sm1 (2 cycles)
  spine = add(spine, in[3]);                 // sa3
  spine = add(spine, in[4]);                 // sa4
  NodeId mid = add(spine, in[5]);            // sa5 (tap for side branches)
  spine = mul(mid, k(5));                    // sm2
  spine = add(spine, in[6]);                 // sa6
  spine = add(spine, in[7]);                 // sa7
  NodeId late = add(spine, in[0]);           // sa8 (tap)
  spine = mul(late, k(7));                   // sm3
  spine = add(spine, in[1]);                 // sa9
  spine = add(spine, in[2]);                 // sa10
  spine = add(spine, in[3]);                 // sa11

  // Side branches: five more multiplications and fifteen more additions
  // with generous slack, merged back near the end of the spine.
  NodeId s1 = add(in[4], in[5]);             // sa12
  s1 = mul(s1, k(11));                       // sm4
  s1 = add(s1, in[6]);                       // sa13
  NodeId s2 = add(in[7], in[0]);             // sa14
  s2 = mul(s2, k(13));                       // sm5
  s2 = add(s2, s1);                          // sa15
  NodeId s3 = add(in[1], in[3]);             // sa16
  s3 = mul(s3, k(17));                       // sm6
  s3 = add(s3, in[5]);                       // sa17
  NodeId s4 = add(mid, in[2]);               // sa18 (depends on the spine tap)
  s4 = mul(s4, k(19));                       // sm7
  s4 = add(s4, s3);                          // sa19
  NodeId s5 = add(in[6], in[7]);             // sa20
  s5 = mul(s5, k(23));                       // sm8
  s5 = add(s5, s2);                          // sa21
  NodeId merge = add(s4, s5);                // sa22
  merge = add(merge, s1);                    // sa23
  NodeId out2 = add(late, merge);            // sa24
  NodeId out3 = add(out2, in[4]);            // sa25
  NodeId side = add(s3, in[0]);              // sa26 (slack-rich side tap)

  b.output(spine, "y1");
  b.output(out3, "y2");
  b.output(side, "y3");
  return std::move(b).build();
}

dfg::Dfg fdctLike() {
  // 8-point DCT-style butterfly network (Loeffler-flavored): a first rank of
  // add/sub butterflies, rotation stages of multiplies feeding add/sub
  // combines, and a scaling rank — 16 multiplications and 28 adds/subs,
  // close to the op mix the era's "FDCT" benchmark tables quote.
  Builder b("fdct");
  std::vector<NodeId> x;
  for (int i = 0; i < 8; ++i) x.push_back(b.input(util::format("x%d", i)));
  auto k = [&](int i) { return b.constant(100 + i, util::format("c%d", i)); };

  // Rank 1: 4 butterflies (4 add + 4 sub).
  std::vector<NodeId> s(4), d(4);
  for (int i = 0; i < 4; ++i) {
    s[i] = b.add(x[i], x[7 - i], util::format("s%d", i));
    d[i] = b.sub(x[i], x[7 - i], util::format("d%d", i));
  }
  // Rank 2 even: butterflies on sums (2 add + 2 sub).
  const NodeId e0 = b.add(s[0], s[3], "e0");
  const NodeId e1 = b.add(s[1], s[2], "e1");
  const NodeId e2 = b.sub(s[0], s[3], "e2");
  const NodeId e3 = b.sub(s[1], s[2], "e3");
  // Rank 2 odd: rotations on diffs (8 mul + 4 add/sub).
  const NodeId r0 = b.add(b.mul(d[0], k(0), "m0"), b.mul(d[1], k(1), "m1"), "r0");
  const NodeId r1 = b.sub(b.mul(d[0], k(2), "m2"), b.mul(d[1], k(3), "m3"), "r1");
  const NodeId r2 = b.add(b.mul(d[2], k(4), "m4"), b.mul(d[3], k(5), "m5"), "r2");
  const NodeId r3 = b.sub(b.mul(d[2], k(6), "m6"), b.mul(d[3], k(7), "m7"), "r3");
  // Rank 3 even: rotation on (e2, e3) (4 mul + 2 add/sub) and sum/diff of
  // (e0, e1) (1 add + 1 sub).
  const NodeId y0 = b.add(e0, e1, "y0");
  const NodeId y4 = b.sub(e0, e1, "y4");
  const NodeId y2 = b.add(b.mul(e2, k(8), "m8"), b.mul(e3, k(9), "m9"), "y2");
  const NodeId y6 = b.sub(b.mul(e2, k(10), "m10"), b.mul(e3, k(11), "m11"), "y6");
  // Rank 3 odd: combine rotations (2 add + 2 sub), then a scaling rank
  // (4 mul) and final touch-ups (2 add + 2 sub).
  const NodeId o0 = b.add(r0, r2, "o0");
  const NodeId o1 = b.sub(r0, r2, "o1");
  const NodeId o2 = b.add(r1, r3, "o2");
  const NodeId o3 = b.sub(r1, r3, "o3");
  const NodeId y1 = b.add(b.mul(o0, k(12), "m12"), e0, "y1");
  const NodeId y3 = b.sub(b.mul(o1, k(13), "m13"), e1, "y3");
  const NodeId y5 = b.add(b.mul(o2, k(14), "m14"), e2, "y5");
  const NodeId y7 = b.sub(b.mul(o3, k(15), "m15"), e3, "y7");

  for (const auto& [node, name] :
       std::initializer_list<std::pair<NodeId, const char*>>{
           {y0, "y0"}, {y1, "y1"}, {y2, "y2"}, {y3, "y3"},
           {y4, "y4"}, {y5, "y5"}, {y6, "y6"}, {y7, "y7"}})
    b.output(node, name);
  return std::move(b).build();
}

dfg::Dfg iirBiquads() {
  // Two cascaded direct-form-II biquads:
  //   w  = x - a1*w1 - a2*w2;  y = b0*w + b1*w1 + b2*w2
  // with the state taps w1/w2 as primary inputs (one sample of a streaming
  // filter): 10 multiplications, 8 adds/subs.
  Builder b("iir");
  NodeId x = b.input("x");
  for (int sec = 0; sec < 2; ++sec) {
    const auto w1 = b.input(util::format("w1_%d", sec));
    const auto w2 = b.input(util::format("w2_%d", sec));
    const auto a1 = b.constant(3 + sec, util::format("a1_%d", sec));
    const auto a2 = b.constant(5 + sec, util::format("a2_%d", sec));
    const auto b0 = b.constant(7 + sec, util::format("b0_%d", sec));
    const auto b1 = b.constant(11 + sec, util::format("b1_%d", sec));
    const auto b2 = b.constant(13 + sec, util::format("b2_%d", sec));
    const auto fb1 = b.mul(a1, w1, util::format("fb1_%d", sec));
    const auto fb2 = b.mul(a2, w2, util::format("fb2_%d", sec));
    const auto t = b.sub(x, fb1, util::format("t_%d", sec));
    const auto w = b.sub(t, fb2, util::format("w_%d", sec));
    const auto ff0 = b.mul(b0, w, util::format("ff0_%d", sec));
    const auto ff1 = b.mul(b1, w1, util::format("ff1_%d", sec));
    const auto ff2 = b.mul(b2, w2, util::format("ff2_%d", sec));
    const auto p = b.add(ff0, ff1, util::format("p_%d", sec));
    const auto y = b.add(p, ff2, util::format("y_%d", sec));
    b.output(w, util::format("wnext_%d", sec));
    x = y;
  }
  b.output(x, "y");
  return std::move(b).build();
}

dfg::Dfg dct2d4x4() {
  // 4x4 2-D DCT: a 4-point DCT-II butterfly on each row, transpose, then on
  // each column. Per 1-D pass and vector: 2 add + 2 sub butterflies, 4
  // multiplies, 2 adds + 2 subs to combine (4 mul, 8 add/sub). Eight passes
  // total: 32 multiplications, 64 adds/subs, 96 operations.
  Builder b("dct2d");
  std::vector<std::vector<NodeId>> pix(4, std::vector<NodeId>(4));
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c)
      pix[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
          b.input(util::format("p%d%d", r, c));
  const NodeId c2 = b.constant(924, "k2");  // cos coefficients, scaled
  const NodeId c3 = b.constant(383, "k3");

  int uid = 0;
  // One 4-point DCT-II pass over a vector (x0..x3) -> 4 outputs.
  auto dct4 = [&](const std::array<NodeId, 4>& x) {
    const std::string p = util::format("u%d_", ++uid);
    const NodeId s0 = b.add(x[0], x[3], p + "s0");
    const NodeId s1 = b.add(x[1], x[2], p + "s1");
    const NodeId d0 = b.sub(x[0], x[3], p + "d0");
    const NodeId d1 = b.sub(x[1], x[2], p + "d1");
    const NodeId y0 = b.add(s0, s1, p + "y0");
    const NodeId y2 = b.sub(s0, s1, p + "y2");
    const NodeId m0 = b.mul(d0, c2, p + "m0");
    const NodeId m1 = b.mul(d1, c3, p + "m1");
    const NodeId m2 = b.mul(d0, c3, p + "m2");
    const NodeId m3 = b.mul(d1, c2, p + "m3");
    const NodeId y1 = b.add(m0, m1, p + "y1");
    const NodeId y3 = b.sub(m2, m3, p + "y3");
    return std::array<NodeId, 4>{y0, y1, y2, y3};
  };

  // Row passes.
  std::vector<std::array<NodeId, 4>> rows;
  for (int r = 0; r < 4; ++r)
    rows.push_back(dct4({pix[static_cast<std::size_t>(r)][0],
                         pix[static_cast<std::size_t>(r)][1],
                         pix[static_cast<std::size_t>(r)][2],
                         pix[static_cast<std::size_t>(r)][3]}));
  // Transpose + column passes.
  for (int c = 0; c < 4; ++c) {
    const auto col = dct4({rows[0][static_cast<std::size_t>(c)],
                           rows[1][static_cast<std::size_t>(c)],
                           rows[2][static_cast<std::size_t>(c)],
                           rows[3][static_cast<std::size_t>(c)]});
    for (int r = 0; r < 4; ++r)
      b.output(col[static_cast<std::size_t>(r)], util::format("q%d%d", r, c));
  }
  return std::move(b).build();
}

std::vector<BenchmarkCase> paperSuite() {
  std::vector<BenchmarkCase> suite;

  {
    BenchmarkCase c{.id = "ex1", .feature = "1", .graph = tseng(),
                    .timeSweep = {4, 5}, .constraints = {}};
    suite.push_back(std::move(c));
  }
  {
    sched::Constraints cc;
    cc.allowChaining = true;
    cc.clockNs = 100.0;
    BenchmarkCase c{.id = "ex2", .feature = "1C", .graph = chained(),
                    .timeSweep = {4}, .constraints = cc};
    suite.push_back(std::move(c));
  }
  {
    BenchmarkCase c{.id = "ex3", .feature = "1FS", .graph = diffeq(),
                    .timeSweep = {4, 6, 8}, .constraints = {},
                    .functionalLatency = 3, .structuralPipelining = true};
    suite.push_back(std::move(c));
  }
  {
    BenchmarkCase c{.id = "ex4", .feature = "1", .graph = fir8(),
                    .timeSweep = {8, 9, 13}, .constraints = {}};
    suite.push_back(std::move(c));
  }
  {
    BenchmarkCase c{.id = "ex5", .feature = "2S", .graph = arLattice(),
                    .timeSweep = {13, 14, 17}, .constraints = {},
                    .structuralPipelining = true};
    suite.push_back(std::move(c));
  }
  {
    BenchmarkCase c{.id = "ex6", .feature = "2S", .graph = ewfLike(),
                    .timeSweep = {17, 19, 21}, .constraints = {},
                    .structuralPipelining = true};
    suite.push_back(std::move(c));
  }
  return suite;
}

}  // namespace mframe::workloads
