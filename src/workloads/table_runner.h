// Programmatic Table-1/Table-2 reproduction: the same sweeps the benches
// print, exposed as data so tests can assert reproduction properties (FU
// monotonicity, verification cleanliness, style-2 relation) and downstream
// tools can consume the results.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "celllib/cell_library.h"
#include "rtl/cost.h"
#include "workloads/benchmarks.h"

namespace mframe::workloads {

struct Table1Row {
  std::string exampleId;
  std::string design;
  std::string variant;  ///< "plain", "F (L=k)", "S"
  int timeSteps = 0;
  bool feasible = false;
  bool verified = false;
  std::map<dfg::FuType, int> fuCount;
  double milliseconds = 0.0;
};

/// Run the full Table-1 sweep (plain + F + S variants per case).
std::vector<Table1Row> runTable1(const std::vector<BenchmarkCase>& suite);

struct Table2Row {
  std::string exampleId;
  std::string design;
  int style = 1;
  int timeSteps = 0;
  bool feasible = false;
  bool verified = false;
  std::string aluSummary;
  rtl::CostBreakdown cost;
  double milliseconds = 0.0;
};

/// Run the full Table-2 sweep (both styles per case).
std::vector<Table2Row> runTable2(const std::vector<BenchmarkCase>& suite,
                                 const celllib::CellLibrary& lib);

}  // namespace mframe::workloads
