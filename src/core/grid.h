// The 2-D placement tables of Section 2.3: one (FU instance x control step)
// table per FU type ("the complete space will be a 3-dimensional space where
// the third dimension represents the type").
//
// ColumnOccupancy tracks which operations sit where in one column space and
// encapsulates every co-location rule the paper defines:
//  * mutually exclusive operations may share a cell (Section 5.1);
//  * multicycle operations hold their column for `cycles` consecutive steps
//    (Section 5.3);
//  * on a structurally pipelined column, operations conflict only when they
//    start in the same step (Section 5.5.1);
//  * with functional-pipelining latency L, steps are folded mod L, because
//    "operations scheduled into control step t + k*L run concurrently"
//    (Section 5.5.2).
//
// Storage is flat: cells are keyed by a packed (column, folded step) word in
// a hash map, per-node placements live in id-indexed arrays, and the
// pipelined flag is a per-column bit — the schedulers probe canPlace()
// millions of times on large graphs and the old std::map-of-pairs layout
// spent the run chasing red-black-tree pointers.
//
// MFS composes one ColumnOccupancy per FU type (class Grid); MFSA reuses
// ColumnOccupancy with one column per allocated ALU instance.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dfg/dfg.h"
#include "sched/schedule.h"

namespace mframe::core {

class ColumnOccupancy {
 public:
  ColumnOccupancy(const dfg::Dfg& g, const sched::Constraints& c)
      : g_(&g), latency_(c.latency) {}

  /// Mark a column as structurally pipelined (start-step conflicts only).
  void setPipelined(int col, bool pipelined);
  bool isPipelined(int col) const {
    const auto i = static_cast<std::size_t>(col);
    return i < pipelined_.size() && pipelined_[i] != 0;
  }

  /// Can `n` start at `step` on `col` without an occupancy conflict?
  bool canPlace(dfg::NodeId n, int col, int step) const;

  void place(dfg::NodeId n, int col, int step);
  void remove(dfg::NodeId n);
  void clear();

  bool isPlaced(dfg::NodeId n) const {
    return n < whereCol_.size() && whereCol_[n] != 0;
  }

  /// Highest column holding at least one operation (0 when empty).
  int maxColumnUsed() const;

  /// Operations occupying (col, step) — after latency folding.
  std::vector<dfg::NodeId> at(int col, int step) const;

 private:
  static std::uint64_t key(int col, int foldedStep) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(col)) << 32) |
           static_cast<std::uint32_t>(foldedStep);
  }
  /// Cell keys this op occupies if started at `step` on `col`.
  std::vector<std::uint64_t> cellsFor(dfg::NodeId n, int col, int step) const;
  int fold(int step) const { return latency_ > 0 ? (step - 1) % latency_ : step; }
  /// True when the op's cells are (col, step)..(col, step+cycles-1) with no
  /// folding aliasing — the hot case that needs no materialized key list.
  bool plainCells(int col) const { return latency_ <= 0 && !isPipelined(col); }
  void ensureNode(dfg::NodeId n);

  const dfg::Dfg* g_;
  int latency_;
  std::vector<char> pipelined_;                              ///< by column
  std::unordered_map<std::uint64_t, std::vector<dfg::NodeId>> cell_;
  std::vector<int> whereCol_;   ///< by node; 0 = not placed
  std::vector<int> whereStep_;  ///< by node; start step when placed
  std::vector<int> opsPerCol_;  ///< ops currently resident per column
};

/// MFS's 3-D space: one column table per FU type.
class Grid {
 public:
  Grid(const dfg::Dfg& g, const sched::Constraints& c);

  ColumnOccupancy& table(dfg::FuType t) { return tables_[static_cast<std::size_t>(t)]; }
  const ColumnOccupancy& table(dfg::FuType t) const {
    return tables_[static_cast<std::size_t>(t)];
  }

  bool canPlace(dfg::NodeId n, int col, int step) const;
  void place(dfg::NodeId n, int col, int step);
  void clear();

 private:
  const dfg::Dfg* g_;
  std::vector<ColumnOccupancy> tables_;
};

}  // namespace mframe::core
