#include "core/mfs.h"

#include <algorithm>
#include <cmath>

#include "core/frames.h"
#include "core/grid.h"
#include "sched/timeframes.h"
#include "trace/trace.h"
#include "util/strings.h"

namespace mframe::core {

namespace {

using dfg::FuType;
using dfg::NodeId;

struct TypeState {
  int maxCols = 1;      ///< max_j
  int current = 1;      ///< current_j
  bool userLimited = false;
};

}  // namespace

std::optional<std::vector<NodeId>> topoConsistentOrder(
    const dfg::Dfg& g, const std::vector<NodeId>& priority,
    std::string* error) {
  std::vector<NodeId> out;
  out.reserve(priority.size());
  std::vector<bool> emitted(g.size(), false);
  std::vector<bool> taken(g.size(), false);
  while (out.size() < priority.size()) {
    bool progress = false;
    for (NodeId id : priority) {
      if (taken[id]) continue;
      bool ready = true;
      for (NodeId p : g.opPreds(id))
        if (!emitted[p]) {
          ready = false;
          break;
        }
      if (!ready) continue;
      out.push_back(id);
      emitted[id] = taken[id] = true;
      progress = true;
    }
    if (!progress) {
      // Stuck: some listed operation waits on a predecessor that is never
      // emitted (missing from the list, or part of a cycle). Returning the
      // truncated order would silently drop operations downstream.
      if (error) {
        for (NodeId id : priority) {
          if (taken[id]) continue;
          *error = util::format(
              "inconsistent priority order: '%s' waits on a predecessor "
              "missing from the list (or the graph has a cycle)",
              g.node(id).name.c_str());
          break;
        }
      }
      return std::nullopt;
    }
  }
  return out;
}

MfsResult runMfs(const dfg::Dfg& g, const MfsOptions& opt) {
  const trace::Span span("mfs");
  MfsResult res;
  if (auto err = g.validate()) {
    res.error = "invalid DFG: " + *err;
    return res;
  }
  const auto ops = g.operations();
  if (ops.empty()) {
    res.feasible = true;
    res.schedule = sched::Schedule(g);
    res.steps = 0;
    return res;
  }

  const bool timeMode = opt.mode == MfsLiapunov::Mode::TimeConstrained;
  sched::Constraints c = opt.constraints;

  // Resource mode: start at the critical path and stretch cs until feasible.
  // Time mode: cs is fixed by the user.
  std::string tfError;
  sched::Constraints probe;  // unconstrained probe to find the critical path
  probe.allowChaining = c.allowChaining;
  probe.clockNs = c.clockNs;
  auto tf0 = computeTimeFrames(g, probe, &tfError);
  if (!tf0) {
    res.error = tfError;
    return res;
  }
  int cs = timeMode ? c.timeSteps : std::max(tf0->criticalSteps(), c.timeSteps);
  if (timeMode && cs < tf0->criticalSteps()) {
    res.error = util::format("time constraint %d below critical path %d", cs,
                             tf0->criticalSteps());
    return res;
  }
  if (cs <= 0) {
    res.error = "time-constrained MFS needs constraints.timeSteps > 0";
    return res;
  }

  for (; cs <= opt.maxStepsCap; ++cs) {
    c.timeSteps = cs;
    auto tf = computeTimeFrames(g, c, &tfError);
    if (!tf) {
      res.error = tfError;
      return res;
    }

    // Step 2: per-type column bounds and initial current_j.
    std::vector<TypeState> types(dfg::kNumFuTypes);
    for (std::size_t t = 0; t < dfg::kNumFuTypes; ++t) {
      const auto ft = static_cast<FuType>(t);
      auto lim = c.fuLimit.find(ft);
      if (lim != c.fuLimit.end()) {
        types[t].maxCols = lim->second;
        types[t].userLimited = true;
      } else {
        types[t].maxCols = std::max(1, tf->upperBound(ft));
      }
      if (timeMode) {
        const auto nOps = static_cast<int>(g.countOfType(ft));
        types[t].current = std::clamp(
            static_cast<int>(std::ceil(static_cast<double>(nOps) / cs)), 1,
            types[t].maxCols);
      } else {
        // Resource mode: all allowed units are immediately usable; the
        // redundant frame is empty and V = cs*x + y discourages new columns.
        types[t].current = types[t].maxCols;
      }
    }

    std::vector<NodeId> priority =
        sched::priorityOrder(g, *tf, opt.priorityRule);
    if (!opt.priorityHint.empty()) {
      // Hinted ops jump the queue; the rest keep their computed order.
      std::vector<char> hinted(g.size(), 0);
      std::vector<NodeId> merged;
      merged.reserve(priority.size());
      for (NodeId id : opt.priorityHint) {
        if (id >= g.size() || hinted[id] ||
            !dfg::isSchedulable(g.node(id).kind))
          continue;
        hinted[id] = 1;
        merged.push_back(id);
      }
      for (NodeId id : priority)
        if (!hinted[id]) merged.push_back(id);
      priority = std::move(merged);
    }
    const auto order = topoConsistentOrder(g, priority, &res.error);
    if (!order) return res;

    bool csInfeasible = false;
    while (!csInfeasible) {  // placement attempts at this cs
      // n = Max{max_j} in the time-constrained function; recomputed per
      // attempt because an empty move frame may have grown a bound.
      int columnBound = 1;
      for (const auto& ts : types) columnBound = std::max(columnBound, ts.maxCols);
      const MfsLiapunov energy(opt.mode, columnBound, cs);

      sched::Schedule s(g);
      s.setNumSteps(cs);
      Grid grid(g, c);
      FrameCalculator fc(g, c, *tf);
      res.liapunovTrace.clear();

      double v = 0.0;
      std::vector<double> worstOf(g.size(), 0.0);
      for (NodeId id : *order) {
        const auto t = static_cast<std::size_t>(dfg::fuTypeOf(g.node(id).kind));
        worstOf[id] = energy.worstValue(types[t].maxCols, cs);
        v += worstOf[id];
      }
      if (opt.traceLiapunov) res.liapunovTrace.push_back(v);

      bool restart = false;
      for (NodeId id : *order) {
        const auto t = static_cast<std::size_t>(dfg::fuTypeOf(g.node(id).kind));
        const auto& occ = grid.table(static_cast<FuType>(t));
        const auto frames =
            fc.compute(s, occ, id, types[t].current, types[t].maxCols);

        const sched::Placement* best = nullptr;
        double bestV = 0.0;
        trace::bump(trace::Counter::LiapunovCellEvals,
                    frames.moveFrame.size());
        for (const auto& cell : frames.moveFrame) {
          const double cv = energy.value(cell.column, cell.step);
          if (!best || cv < bestV) {
            best = &cell;
            bestV = cv;
          }
        }
        if (!best) {
          // Empty/occupied move frame: widen current_j and locally
          // reschedule (Section 3.2 step 4).
          if (types[t].current < types[t].maxCols) {
            ++types[t].current;
          } else if (timeMode && !types[t].userLimited) {
            // The presumed ASAP/ALAP upper bound was too tight for this
            // priority order; the paper allows a "presummed big number", so
            // grow the bound.
            ++types[t].maxCols;
            ++types[t].current;
          } else if (!timeMode) {
            csInfeasible = true;  // try a longer schedule
            break;
          } else {
            res.error = util::format(
                "no feasible position for '%s' within %d %s units",
                g.node(id).name.c_str(), types[t].maxCols,
                std::string(dfg::fuTypeName(static_cast<FuType>(t))).c_str());
            return res;
          }
          ++res.restarts;
          if (res.restarts > opt.maxRestarts) {
            res.error = "restart budget exhausted";
            return res;
          }
          restart = true;
          break;
        }

        grid.place(id, best->column, best->step);
        s.place(id, best->step, best->column);
        fc.recordPlacement(s, id, best->step);
        trace::bump(trace::Counter::LiapunovUpdates);
        v -= worstOf[id] - bestV;  // each move strictly decreases the energy
        if (opt.traceLiapunov) res.liapunovTrace.push_back(v);
      }
      if (restart) continue;
      if (csInfeasible) break;

      res.feasible = true;
      res.schedule = std::move(s);
      res.steps = cs;
      res.fuCount = res.schedule.fuCount();
      return res;
    }
    if (timeMode) break;  // fixed cs in time mode; csInfeasible can't happen
  }
  res.error = util::format("no feasible schedule within %d steps", opt.maxStepsCap);
  return res;
}

}  // namespace mframe::core
