#include "core/mfs.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/frames.h"
#include "core/grid.h"
#include "sched/timeframes.h"
#include "trace/trace.h"
#include "util/strings.h"

namespace mframe::core {

namespace {

using dfg::FuType;
using dfg::NodeId;

struct TypeState {
  int maxCols = 1;      ///< max_j
  int current = 1;      ///< current_j
  bool userLimited = false;
};

}  // namespace

std::optional<std::vector<NodeId>> topoConsistentOrder(
    const dfg::Dfg& g, const std::vector<NodeId>& priority,
    std::string* error) {
  std::vector<NodeId> out;
  out.reserve(priority.size());
  std::vector<bool> taken(g.size(), false);
  // Un-emitted operation predecessors per node (duplicate operands counted
  // twice, mirroring the duplicate CSR edges): a node is ready exactly when
  // its count reaches zero. Replaces the per-visit O(preds) emitted[] walk.
  std::vector<int> unmet(g.size(), 0);
  for (const dfg::Node& n : g.nodes())
    unmet[n.id] = static_cast<int>(g.opPreds(n.id).size());

  // Sweep the not-yet-taken suffix in priority order, compacting it in
  // place, until the list drains. Readiness is evaluated at visit time, so
  // a node emitted earlier in the same sweep unblocks its successors within
  // that sweep — the exact semantics of the original full-list rescan,
  // without the O(n) passes over already-taken entries.
  std::vector<NodeId> remaining = priority;
  while (out.size() < priority.size()) {
    std::size_t kept = 0;
    bool progress = false;
    for (NodeId id : remaining) {
      if (taken[id]) continue;  // duplicate occurrence in the list
      if (unmet[id] != 0) {
        remaining[kept++] = id;
        continue;
      }
      out.push_back(id);
      taken[id] = true;
      progress = true;
      for (NodeId sc : g.opSuccs(id)) --unmet[sc];
    }
    remaining.resize(kept);
    if (!progress) {
      // Stuck: some listed operation waits on a predecessor that is never
      // emitted (missing from the list, or part of a cycle). Returning the
      // truncated order would silently drop operations downstream.
      if (error && !remaining.empty()) {
        *error = util::format(
            "inconsistent priority order: '%s' waits on a predecessor "
            "missing from the list (or the graph has a cycle)",
            g.node(remaining.front()).name.c_str());
      }
      return std::nullopt;
    }
  }
  return out;
}

MfsResult runMfs(const dfg::Dfg& g, const MfsOptions& opt) {
  const trace::Span span("mfs");
  MfsResult res;
  if (auto err = g.validate()) {
    res.error = "invalid DFG: " + *err;
    return res;
  }
  const auto ops = g.operations();
  if (ops.empty()) {
    res.feasible = true;
    res.schedule = sched::Schedule(g);
    res.steps = 0;
    return res;
  }
  // One graph snapshot per run, shared by every placement attempt — a fresh
  // Schedule(g) per attempt deep-copied the whole graph on each restart.
  const auto snap = std::make_shared<const dfg::Dfg>(g);
  const bool frontier =
      opt.frameMode == MoveFrameMode::Frontier ||
      (opt.frameMode == MoveFrameMode::Auto &&
       g.size() >= kFrontierAutoThreshold);

  const bool timeMode = opt.mode == MfsLiapunov::Mode::TimeConstrained;
  sched::Constraints c = opt.constraints;

  // Resource mode: start at the critical path and stretch cs until feasible.
  // Time mode: cs is fixed by the user.
  std::string tfError;
  sched::Constraints probe;  // unconstrained probe to find the critical path
  probe.allowChaining = c.allowChaining;
  probe.clockNs = c.clockNs;
  auto tf0 = computeTimeFrames(g, probe, &tfError);
  if (!tf0) {
    res.error = tfError;
    return res;
  }
  int cs = timeMode ? c.timeSteps : std::max(tf0->criticalSteps(), c.timeSteps);
  if (timeMode && cs < tf0->criticalSteps()) {
    res.error = util::format("time constraint %d below critical path %d", cs,
                             tf0->criticalSteps());
    return res;
  }
  if (cs <= 0) {
    res.error = "time-constrained MFS needs constraints.timeSteps > 0";
    return res;
  }

  for (; cs <= opt.maxStepsCap; ++cs) {
    c.timeSteps = cs;
    auto tf = computeTimeFrames(g, c, &tfError);
    if (!tf) {
      res.error = tfError;
      return res;
    }

    // Step 2: per-type column bounds and initial current_j.
    std::vector<TypeState> types(dfg::kNumFuTypes);
    for (std::size_t t = 0; t < dfg::kNumFuTypes; ++t) {
      const auto ft = static_cast<FuType>(t);
      auto lim = c.fuLimit.find(ft);
      if (lim != c.fuLimit.end()) {
        types[t].maxCols = lim->second;
        types[t].userLimited = true;
      } else {
        types[t].maxCols = std::max(1, tf->upperBound(ft));
      }
      if (timeMode) {
        const auto nOps = static_cast<int>(g.countOfType(ft));
        types[t].current = std::clamp(
            static_cast<int>(std::ceil(static_cast<double>(nOps) / cs)), 1,
            types[t].maxCols);
      } else {
        // Resource mode: all allowed units are immediately usable; the
        // redundant frame is empty and V = cs*x + y discourages new columns.
        types[t].current = types[t].maxCols;
      }
    }

    std::vector<NodeId> priority =
        sched::priorityOrder(g, *tf, opt.priorityRule);
    if (!opt.priorityHint.empty()) {
      // Hinted ops jump the queue; the rest keep their computed order.
      std::vector<char> hinted(g.size(), 0);
      std::vector<NodeId> merged;
      merged.reserve(priority.size());
      for (NodeId id : opt.priorityHint) {
        if (id >= g.size() || hinted[id] ||
            !dfg::isSchedulable(g.kindOf(id)))
          continue;
        hinted[id] = 1;
        merged.push_back(id);
      }
      for (NodeId id : priority)
        if (!hinted[id]) merged.push_back(id);
      priority = std::move(merged);
    }
    const auto order = topoConsistentOrder(g, priority, &res.error);
    if (!order) return res;

    bool csInfeasible = false;
    while (!csInfeasible) {  // placement attempts at this cs
      // n = Max{max_j} in the time-constrained function; recomputed per
      // attempt because an empty move frame may have grown a bound.
      int columnBound = 1;
      for (const auto& ts : types) columnBound = std::max(columnBound, ts.maxCols);
      const MfsLiapunov energy(opt.mode, columnBound, cs);

      sched::Schedule s(snap);
      s.setNumSteps(cs);
      Grid grid(g, c);
      FrameCalculator fc(g, c, *tf);
      res.liapunovTrace.clear();

      double v = 0.0;
      std::vector<double> worstOf(g.size(), 0.0);
      for (NodeId id : *order) {
        const auto t = static_cast<std::size_t>(dfg::fuTypeOf(g.kindOf(id)));
        worstOf[id] = energy.worstValue(types[t].maxCols, cs);
        v += worstOf[id];
      }
      if (opt.traceLiapunov) res.liapunovTrace.push_back(v);

      bool restart = false;
      for (NodeId id : *order) {
        const auto t = static_cast<std::size_t>(dfg::fuTypeOf(g.kindOf(id)));
        const auto& occ = grid.table(static_cast<FuType>(t));
        const int colHi = std::min(types[t].current, types[t].maxCols);

        // Minimum-energy cell of the move frame. Ties break toward the
        // earlier step, then the lower column — the first-wins order of the
        // exhaustive step-major scan, stated explicitly so the frontier
        // paths share the exact same selection rule.
        bool found = false;
        double bestV = 0.0;
        int bestStep = 0, bestCol = 0;
        auto consider = [&](int step, int col) {
          const double cv = energy.value(col, step);
          if (!found || cv < bestV ||
              (cv == bestV &&
               (step < bestStep || (step == bestStep && col < bestCol)))) {
            found = true;
            bestV = cv;
            bestStep = step;
            bestCol = col;
          }
        };

        if (!frontier) {
          const auto frames =
              fc.compute(s, occ, id, types[t].current, types[t].maxCols);
          trace::bump(trace::Counter::LiapunovCellEvals,
                      frames.moveFrame.size());
          for (const auto& cell : frames.moveFrame)
            consider(cell.step, cell.column);
        } else if (timeMode) {
          // V = x + n*y strictly increases with the step for any column in
          // bounds, so the earliest dependency- and occupancy-feasible step
          // dominates every later one; within it, the lowest free column.
          const auto w = fc.depWindow(s, id);
          for (int step = w.firstStep(tf->asap(id), tf->alap(id));
               step != 0 && !found; step = w.nextStep(step, tf->alap(id)))
            for (int col = 1; col <= colHi; ++col) {
              trace::bump(trace::Counter::LiapunovCellEvals);
              if (occ.canPlace(id, col, step)) {
                consider(step, col);
                break;
              }
            }
        } else {
          // V = cs*x + y strictly increases with the column for any step in
          // bounds, so the lowest column holding any feasible step
          // dominates; within it, the earliest such step.
          const auto w = fc.depWindow(s, id);
          for (int col = 1; col <= colHi && !found; ++col)
            for (int step = w.firstStep(tf->asap(id), tf->alap(id));
                 step != 0; step = w.nextStep(step, tf->alap(id))) {
              trace::bump(trace::Counter::LiapunovCellEvals);
              if (occ.canPlace(id, col, step)) {
                consider(step, col);
                break;
              }
            }
        }

        if (!found) {
          // Empty/occupied move frame: widen current_j and locally
          // reschedule (Section 3.2 step 4).
          if (types[t].current < types[t].maxCols) {
            ++types[t].current;
          } else if (timeMode && !types[t].userLimited) {
            // The presumed ASAP/ALAP upper bound was too tight for this
            // priority order; the paper allows a "presummed big number", so
            // grow the bound.
            ++types[t].maxCols;
            ++types[t].current;
          } else if (!timeMode) {
            csInfeasible = true;  // try a longer schedule
            break;
          } else {
            res.error = util::format(
                "no feasible position for '%s' within %d %s units",
                g.node(id).name.c_str(), types[t].maxCols,
                std::string(dfg::fuTypeName(static_cast<FuType>(t))).c_str());
            return res;
          }
          ++res.restarts;
          if (res.restarts > opt.maxRestarts) {
            res.error = "restart budget exhausted";
            return res;
          }
          restart = true;
          break;
        }

        grid.place(id, bestCol, bestStep);
        s.place(id, bestStep, bestCol);
        fc.recordPlacement(s, id, bestStep);
        trace::bump(trace::Counter::LiapunovUpdates);
        v -= worstOf[id] - bestV;  // each move strictly decreases the energy
        if (opt.traceLiapunov) res.liapunovTrace.push_back(v);
      }
      if (restart) continue;
      if (csInfeasible) break;

      res.feasible = true;
      res.schedule = std::move(s);
      res.steps = cs;
      res.fuCount = res.schedule.fuCount();
      return res;
    }
    if (timeMode) break;  // fixed cs in time mode; csInfeasible can't happen
  }
  res.error = util::format("no feasible schedule within %d steps", opt.maxStepsCap);
  return res;
}

}  // namespace mframe::core
