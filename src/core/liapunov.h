// Liapunov (energy) functions (Sections 3.1 and 4.1).
//
// MFS uses a *static* function over grid positions:
//   time-constrained:      V(x, y) = x + n*y   (n = max_j over all types)
//   resource-constrained:  V(x, y) = cs*x + y
// where x is the FU-instance column and y the control step. The first makes
// every cell of step t cheaper than any cell of step t+1 ("control step t is
// selected before t+1"); the second prefers reusing an existing FU in a
// later step over adding a new FU ("a position in control step t+1 performed
// by an existing FU instead of adding a new FU in control step t").
//
// MFSA uses a *dynamic* function, V = sum of per-operation contributions
//   f = w_T*f_TIME + w_A*f_ALU + w_M*f_MUX + w_R*f_REG,
// updated at each iteration from the partially built design; the terms are
// produced by the MFSA engine and combined here.
#pragma once

#include <algorithm>
#include <cstddef>

#include "celllib/cell_library.h"

namespace mframe::core {

/// How the schedulers search a move frame for its minimum-energy cell.
///
/// Exhaustive enumerates every legal (step, column) cell — the paper's
/// formulation, O(steps x columns) candidate evaluations per operation.
/// Frontier exploits the energy functions' monotonicity in the step axis
/// (MFS: V strictly increases with the step for any fixed column, and ties
/// across distinct cells are impossible within the table bounds; MFSA: for a
/// fixed ALU and module, f_TIME grows with the step, f_REG is non-decreasing
/// and f_ALU/f_MUX are step-independent under mux interconnect and
/// non-negative weights) to visit only each column's earliest feasible step
/// — the provable argmin — so results stay bit-identical at a fraction of
/// the probes. Auto keeps small graphs on Exhaustive (preserving the legacy
/// candidate/cell counters on the paper benchmarks) and switches to Frontier
/// at kFrontierAutoThreshold nodes; MFSA configurations outside the proof
/// (bus interconnect, negative weights) always run Exhaustive.
enum class MoveFrameMode { Auto, Exhaustive, Frontier };

/// Node count at which MoveFrameMode::Auto flips to the frontier search.
inline constexpr std::size_t kFrontierAutoThreshold = 2048;

/// The static MFS energy function.
class MfsLiapunov {
 public:
  enum class Mode { TimeConstrained, ResourceConstrained };

  MfsLiapunov(Mode mode, int columnBound, int stepBound)
      : mode_(mode), n_(std::max(1, columnBound)), cs_(std::max(1, stepBound)) {}

  Mode mode() const { return mode_; }

  /// V at position (col, step) — x and y of the paper.
  double value(int col, int step) const {
    return mode_ == Mode::TimeConstrained
               ? static_cast<double>(col) + static_cast<double>(n_) * step
               : static_cast<double>(cs_) * col + static_cast<double>(step);
  }

  /// Energy of the nominal initial position (bottom-right corner of the
  /// table): operations conceptually start there and every legal move is
  /// energy-decreasing, which is what the monotone-trace property test
  /// asserts.
  double worstValue(int maxCol, int maxStep) const {
    return value(std::max(1, maxCol), std::max(1, maxStep));
  }

 private:
  Mode mode_;
  int n_;   ///< Max{max_j}: the column bound across types
  int cs_;  ///< control-step upper bound
};

/// Weights of the MFSA function (Section 4.1: "a weighted Liapunov
/// function"; all-ones is "an overall optimizer").
struct MfsaWeights {
  double time = 1.0;
  double alu = 1.0;
  double mux = 1.0;
  double reg = 1.0;
};

/// One candidate's term breakdown, for tracing and tests.
struct MfsaTerms {
  double fTime = 0.0;
  double fAlu = 0.0;
  double fMux = 0.0;
  double fReg = 0.0;

  double weighted(const MfsaWeights& w) const {
    return w.time * fTime + w.alu * fAlu + w.mux * fMux + w.reg * fReg;
  }
};

/// The constant C of f_TIME = C*y. Section 4.1 requires
///   C > [f^ALU_max + f^MUX_max + f^REG_max] - [f^ALU_min + f^MUX_min + f^REG_min]
/// (all minima are 0), so that a later control step can never be bought by
/// cheaper hardware. With weights, C must dominate in the weighted sum.
double mfsaTimeConstant(const celllib::CellLibrary& lib, const MfsaWeights& w);

}  // namespace mframe::core
