#include "core/mfsa.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>

#include "alloc/muxopt.h"
#include "core/frames.h"
#include "rtl/controller.h"
#include "core/grid.h"
#include "core/mfs.h"
#include "sched/timeframes.h"
#include "trace/trace.h"
#include "util/strings.h"

namespace mframe::core {

namespace {

using dfg::FuType;
using dfg::NodeId;

/// One allocated ALU during the search. Its module can be *upgraded* to a
/// multifunction superset when a later operation of another type is merged
/// into it ("an addition may be assigned to single or multifunction ALUs
/// such as (+), (+-), (+>) or (+->), based on the cell library").
struct AluState {
  celllib::ModuleId module = 0;
  int index = 0;  ///< 0-based instance index == occupancy column - 1
  std::vector<NodeId> ops;
  alloc::MuxArrangement arrangement;
  double muxCost = 0.0;
  /// Memoized f_MUX of try-adding an op to this ALU (the mux delta is
  /// step-independent, so one value serves every candidate step).
  /// Invalidated whenever an op commits to this ALU.
  std::map<NodeId, double> muxDeltaMemo;
};

/// Cheapest library module covering `caps` with the given stage count;
/// nullopt when the library has none.
std::optional<celllib::ModuleId> cheapestCovering(const celllib::CellLibrary& lib,
                                                  const std::set<FuType>& caps,
                                                  int stages) {
  std::optional<celllib::ModuleId> best;
  for (std::size_t i = 0; i < lib.modules().size(); ++i) {
    const celllib::Module& m = lib.modules()[i];
    if (m.stages != stages) continue;
    if (!std::includes(m.caps.begin(), m.caps.end(), caps.begin(), caps.end()))
      continue;
    if (!best || m.areaUm2 < lib.module(*best).areaUm2)
      best = static_cast<celllib::ModuleId>(i);
  }
  return best;
}

}  // namespace

MfsaResult runMfsa(const dfg::Dfg& g, const celllib::CellLibrary& lib,
                   const MfsaOptions& opt) {
  const trace::Span span("mfsa");
  trace::bump(trace::Counter::MfsaRuns);
  MfsaResult res;
  if (auto err = g.validate()) {
    res.error = "invalid DFG: " + *err;
    return res;
  }

  std::set<FuType> neededTypes;
  for (NodeId id : g.operations()) neededTypes.insert(dfg::fuTypeOf(g.node(id).kind));
  if (auto err = lib.checkCoverage(neededTypes)) {
    res.error = *err;
    return res;
  }

  sched::Constraints c = opt.constraints;
  if (c.timeSteps <= 0) {
    res.error = "MFSA needs constraints.timeSteps > 0";
    return res;
  }
  std::string tfError;
  const auto tf = computeTimeFrames(g, c, &tfError);
  if (!tf) {
    res.error = tfError;
    return res;
  }
  const int cs = c.timeSteps;

  // Worst per-operation interconnect contribution: the mux table's largest
  // two increments, or (bus mode) two new bus wires plus two taps.
  const double fMuxMax =
      opt.interconnect == InterconnectStyle::Mux
          ? lib.maxMuxIncrement()
          : 2.0 * (opt.busModel.busWireUm2 + opt.busModel.receiverUm2);
  const double C = mfsaTimeConstant(lib, opt.weights) +
                   opt.weights.mux * fMuxMax / std::max(opt.weights.time, 1e-9);
  const double worstContribution =
      opt.weights.time * C * cs + opt.weights.alu * lib.maxModuleArea() +
      opt.weights.mux * fMuxMax + opt.weights.reg * 2.0 * lib.regCost();

  const auto order = topoConsistentOrder(
      g, sched::priorityOrder(g, *tf, opt.priorityRule), &res.error);
  if (!order) return res;

  // One graph snapshot shared by every restart's Schedule — deep-copying a
  // large graph per local-rescheduling round dominated big runs.
  const auto snap = std::make_shared<const dfg::Dfg>(g);
  // Frontier search is exact only where the per-(ALU, module) contribution
  // is non-decreasing in the step: f_MUX/f_ALU step-independent (mux
  // interconnect), f_TIME and f_REG non-decreasing (non-negative weights
  // and costs). Anything else keeps the exhaustive scan.
  const bool frontier =
      (opt.frameMode == MoveFrameMode::Frontier ||
       (opt.frameMode == MoveFrameMode::Auto &&
        g.size() >= kFrontierAutoThreshold)) &&
      opt.interconnect == InterconnectStyle::Mux && opt.weights.time >= 0.0 &&
      opt.weights.alu >= 0.0 && opt.weights.mux >= 0.0 &&
      opt.weights.reg >= 0.0 && C >= 0.0 && lib.regCost() >= 0.0;

  // Steps 2-3 of MFS, shared by MFSA: per-type column budgets. current_j
  // starts at the balanced minimum ceil(N_j / cs) and grows only when a move
  // frame comes up empty (local rescheduling).
  std::vector<int> maxCols(dfg::kNumFuTypes, 1);
  std::vector<int> current(dfg::kNumFuTypes, 1);
  std::vector<bool> userLimited(dfg::kNumFuTypes, false);
  for (std::size_t t = 0; t < dfg::kNumFuTypes; ++t) {
    const auto ft = static_cast<FuType>(t);
    auto lim = c.fuLimit.find(ft);
    if (lim != c.fuLimit.end()) {
      maxCols[t] = lim->second;
      userLimited[t] = true;
    } else {
      maxCols[t] = std::max(1, tf->upperBound(ft));
    }
    const auto nOps = static_cast<int>(g.countOfType(ft));
    current[t] = std::clamp(
        static_cast<int>(std::ceil(static_cast<double>(nOps) / cs)), 1,
        maxCols[t]);
  }

  const int maxRestarts =
      static_cast<int>(g.size()) * static_cast<int>(dfg::kNumFuTypes) * 8 + 64;
  int restarts = 0;

  // f_REG bookkeeping: latest cross-step consumer seen per signal, 0 = none
  // recorded yet (placed steps are >= 1, so 0 is free as the sentinel).
  std::vector<int> maxUse(g.size(), 0);

  while (true) {  // local-rescheduling loop
    sched::Schedule s(snap);
    s.setNumSteps(cs);
    ColumnOccupancy occ(g, c);
    FrameCalculator fc(g, c, *tf);
    std::vector<AluState> alus;
    res.termsOf.clear();
    res.liapunovTrace.clear();

    maxUse.assign(g.size(), 0);
    auto producerEnd = [&](NodeId sig) {
      if (!dfg::isSchedulable(g.kindOf(sig))) return 0;  // inputs: before step 1
      return s.isPlaced(sig) ? s.stepOf(sig) + g.cyclesOf(sig) - 1 : 0;
    };
    // Per-input (producerEnd, latest-use) pairs for the operation under
    // consideration, computed once before the candidate loops; neither value
    // changes until the move commits, so every (ALU × step) candidate reads
    // the cached pair instead of redoing the map lookups.
    struct InputState {
      int pe = 0;    ///< producer's last execution step (0 = before step 1)
      int used = 0;  ///< latest cross-step consumer recorded so far
    };
    std::vector<InputState> inState;

    // Instances supporting each FU type, maintained incrementally on commit
    // (fresh ALUs and multifunction upgrades) instead of rescanning `alus`
    // for every operation.
    std::vector<int> support(dfg::kNumFuTypes, 0);
    auto addSupport = [&](celllib::ModuleId m, int sign) {
      for (std::size_t t = 0; t < dfg::kNumFuTypes; ++t)
        if (lib.module(m).supports(static_cast<FuType>(t)))
          support[t] += sign;
    };

    // Bus-mode interconnect bookkeeping: transfers per step and their peak
    // (== bus count). An operand transfers when it is not a hardwired
    // constant; chained reads ride bus wires from the producer ALU too.
    std::vector<int> busTransfers(static_cast<std::size_t>(cs) + 1, 0);
    int busPeak = 0;
    auto busedOperands = [&](NodeId op) {
      int k = 0;
      for (NodeId in : g.node(op).inputs)
        if (g.node(in).kind != dfg::OpKind::Const) ++k;
      return k;
    };
    auto busDelta = [&](NodeId op, int step) {
      const int k = busedOperands(op);
      const int after =
          std::max(busPeak, busTransfers[static_cast<std::size_t>(step)] + k);
      return opt.busModel.busWireUm2 * (after - busPeak) +
             opt.busModel.receiverUm2 * k;
    };

    double v = worstContribution * static_cast<double>(order->size());
    if (opt.traceLiapunov) res.liapunovTrace.push_back(v);

    bool restart = false;
    for (NodeId id : *order) {
      const dfg::Node& n = g.node(id);
      const FuType type = dfg::fuTypeOf(n.kind);
      const auto ti = static_cast<std::size_t>(type);

      inState.clear();
      for (NodeId in : n.inputs) {
        if (g.node(in).kind == dfg::OpKind::Const) continue;  // hardwired
        const int pe = producerEnd(in);
        const int used = maxUse[in];
        inState.push_back({pe, used == 0 ? pe : used});
      }
      auto newRegsAt = [&](int step) {
        int count = 0;
        for (const InputState& is : inState)
          // First cross-step consumer of a signal implies a new register;
          // chained / same-step reads need no storage yet.
          if (step > is.pe && is.used <= is.pe) ++count;
        return count;
      };

      // f_MUX of a fresh ALU is the same for every capable module: the
      // arrangement of {id} alone — one signal per populated port. Frontier
      // mode prices it arithmetically; exhaustive mode keeps the literal
      // single-op arrangement (and its mux.fullArrangements bump).
      const double freshMux =
          opt.interconnect != InterconnectStyle::Mux ? 0.0
          : frontier ? lib.muxCost(n.inputs.empty() ? 0 : 1) +
                           lib.muxCost(n.inputs.size() < 2 ? 0 : 1)
                     : alloc::muxCostOf(lib, alloc::arrangeInputs(g, {id}));

      struct Candidate {
        int alu = -1;                 ///< existing ALU index, or -1 = fresh
        celllib::ModuleId module = 0; ///< module after placement (upgrades!)
        int step = 0;
        MfsaTerms terms;
        double f = 0.0;
      };
      std::vector<Candidate> cands;

      // Frontier mode: one dependency window per op replaces the per-step
      // depOk pred walks across every candidate ALU.
      const auto dw = frontier ? fc.depWindow(s, id)
                               : FrameCalculator::DepWindow{};

      auto pushSteps = [&](AluState* owner, celllib::ModuleId module,
                           double fAlu) {
        // Interconnect term: mux-cost delta under the best arrangement, or
        // the bus-cost delta when building a bus architecture. The mux delta
        // is step-independent; the bus delta depends on the chosen step.
        // For an existing ALU the delta comes from the incremental
        // arrangeInputsDelta against the cached arrangement, memoized per
        // (ALU, op) so upgrade and same-module probes share one evaluation.
        const int aluIdx = owner ? owner->index : -1;
        double fMux = 0.0;
        if (opt.interconnect == InterconnectStyle::Mux) {
          if (owner == nullptr) {
            fMux = freshMux;
          } else if (frontier) {
            // O(1) probe pricing the O(1) greedy commit below; no memo —
            // each op probes an ALU at most once per pass, so the map was
            // pure allocation churn at scale.
            const auto d = alloc::appendDelta(g, owner->arrangement, id);
            fMux = lib.muxCost(static_cast<int>(d.left)) +
                   lib.muxCost(static_cast<int>(d.right)) - owner->muxCost;
          } else if (!opt.incrementalMux) {
            std::vector<NodeId> after = owner->ops;
            after.push_back(id);
            fMux = alloc::muxCostOf(lib, alloc::arrangeInputs(g, after)) -
                   owner->muxCost;
          } else if (auto memo = owner->muxDeltaMemo.find(id);
                     memo != owner->muxDeltaMemo.end()) {
            trace::bump(trace::Counter::MuxMemoHits);
            fMux = memo->second;
          } else {
            trace::bump(trace::Counter::MuxMemoMisses);
            const auto d =
                alloc::arrangeInputsDelta(g, owner->arrangement, owner->ops, id);
            fMux = lib.muxCost(static_cast<int>(d.left)) +
                   lib.muxCost(static_cast<int>(d.right)) - owner->muxCost;
            owner->muxDeltaMemo.emplace(id, fMux);
          }
        }
        auto pushOne = [&](int step) {
          Candidate cd;
          cd.alu = aluIdx;
          cd.module = module;
          cd.step = step;
          cd.terms.fTime = C * step;
          cd.terms.fAlu = fAlu;
          cd.terms.fMux = opt.interconnect == InterconnectStyle::Mux
                              ? fMux
                              : busDelta(id, step);
          cd.terms.fReg = lib.regCost() * newRegsAt(step);
          cd.f = cd.terms.weighted(opt.weights);
          cands.push_back(cd);
        };
        if (frontier) {
          // The contribution is non-decreasing in the step for this fixed
          // (ALU, module) and the tie-break prefers the earlier step, so
          // the earliest feasible step dominates all later ones.
          for (int step = dw.firstStep(tf->asap(id), tf->alap(id)); step != 0;
               step = dw.nextStep(step, tf->alap(id))) {
            if (aluIdx >= 0 && !occ.canPlace(id, aluIdx + 1, step)) continue;
            pushOne(step);
            break;
          }
          return;
        }
        for (int step = tf->asap(id); step <= tf->alap(id); ++step) {
          if (!fc.depOk(s, id, step).ok) continue;
          if (aluIdx >= 0 && !occ.canPlace(id, aluIdx + 1, step)) continue;
          pushOne(step);
        }
      };

      auto generate = [&] {
        cands.clear();
        const bool budgetOpen = support[ti] < current[ti];
        for (AluState& a : alus) {
          const celllib::Module& m = lib.module(a.module);
          if (opt.style == rtl::DesignStyle::NoSelfLoop) {
            // Section 4.2 style 2: an operation may not share an ALU with a
            // predecessor or successor.
            bool clash = false;
            for (NodeId p : g.opPreds(id))
              if (std::find(a.ops.begin(), a.ops.end(), p) != a.ops.end())
                clash = true;
            for (NodeId sc : g.opSuccs(id))
              if (std::find(a.ops.begin(), a.ops.end(), sc) != a.ops.end())
                clash = true;
            if (clash) continue;
          }
          if (m.supports(type)) {
            pushSteps(&a, a.module, /*fAlu=*/0.0);
          } else if (budgetOpen) {
            // Merge by upgrading the ALU to a multifunction superset:
            // f_ALU = the area increment of the richer module.
            std::set<FuType> caps = m.caps;
            caps.insert(type);
            if (auto up = cheapestCovering(lib, caps, m.stages)) {
              const double delta = lib.module(*up).areaUm2 - m.areaUm2;
              pushSteps(&a, *up, delta);
            }
          }
        }
        if (budgetOpen) {
          for (celllib::ModuleId m : lib.capableModules(type))
            pushSteps(nullptr, m, lib.module(m).areaUm2);
        }
        trace::bump(trace::Counter::MfsaCandidates, cands.size());
      };

      // On an exact Liapunov tie, prefer the earlier step, then *reuse* —
      // an existing instance (lowest index) beats opening a fresh ALU.
      // (Ranking fresh candidates, alu == -1, ahead of existing ones used to
      // open a needless instance whenever costs tie, e.g. under w_A = 0.)
      // Equal ranks keep the first-encountered candidate, preserving the
      // library order among fresh modules.
      auto rankOf = [](const Candidate& cd) {
        return std::make_tuple(cd.step, cd.alu < 0 ? 1 : 0,
                               cd.alu < 0 ? 0 : cd.alu);
      };
      auto pick = [&]() -> const Candidate* {
        const Candidate* best = nullptr;
        for (const Candidate& cd : cands)
          if (!best || cd.f < best->f ||
              (cd.f == best->f && rankOf(cd) < rankOf(*best)))
            best = &cd;
        return best;
      };

      generate();
      const Candidate* chosen = pick();
      if (!chosen && frontier &&
          (current[ti] < maxCols[ti] || !userLimited[ti])) {
        // Frontier local rescheduling: widen the column budget in place and
        // retry this one operation — the widening opens a fresh-ALU
        // candidate at the dependency window's first step, so earlier
        // placements stay valid and the pass never re-runs from scratch.
        // (The exhaustive path below keeps the full restart: re-placing
        // every op from scratch is what the small-benchmark goldens pin
        // down, but it multiplies total work by the restart count, which
        // dominated 10^5-op runs.) If even a fresh ALU has no feasible
        // step, the dependency window itself is empty and only a full
        // restart can help, so fall through.
        if (++restarts > maxRestarts) {
          res.error = "MFSA restart budget exhausted";
          return res;
        }
        trace::bump(trace::Counter::MfsaRestarts);
        if (current[ti] < maxCols[ti]) {
          ++current[ti];
        } else {
          ++maxCols[ti];
          ++current[ti];
        }
        generate();
        chosen = pick();
      }

      if (!chosen) {
        // Empty move frame: widen the type's column budget and reschedule
        // locally (Section 3.2 step 4 / Section 4.2).
        if (current[ti] < maxCols[ti]) {
          ++current[ti];
        } else if (!userLimited[ti]) {
          ++maxCols[ti];
          ++current[ti];
        } else {
          res.error = util::format(
              "no feasible MFSA position for '%s' within %d %s ALUs",
              n.name.c_str(), maxCols[ti],
              std::string(dfg::fuTypeName(type)).c_str());
          return res;
        }
        if (++restarts > maxRestarts) {
          res.error = "MFSA restart budget exhausted";
          return res;
        }
        trace::bump(trace::Counter::MfsaRestarts);
        restart = true;
        break;
      }

      // Commit the move.
      int aluIdx = chosen->alu;
      if (aluIdx < 0) {
        AluState a;
        a.index = static_cast<int>(alus.size());
        alus.push_back(std::move(a));
        aluIdx = alus.back().index;
        if (lib.module(chosen->module).stages > 1)
          occ.setPipelined(aluIdx + 1, true);
        addSupport(chosen->module, +1);
      } else if (alus[static_cast<std::size_t>(aluIdx)].module !=
                 chosen->module) {
        // Multifunction upgrade: swap the instance's capability set.
        addSupport(alus[static_cast<std::size_t>(aluIdx)].module, -1);
        addSupport(chosen->module, +1);
      }
      AluState& a = alus[static_cast<std::size_t>(aluIdx)];
      a.module = chosen->module;  // fresh assignment or upgrade
      // Frontier mode commits the op into the cached arrangement in O(1)
      // (exact in the commutative / already-pinned cases, greedy with
      // bounded drift otherwise — re-arranging the whole op list per commit
      // is quadratic in ops-per-ALU). Exhaustive mode rebuilds from the
      // complete op list, keeping the legacy mux.fullArrangements counter
      // and the provably minimal arrangement.
      a.ops.push_back(id);
      if (frontier) {
        alloc::appendToArrangement(g, a.arrangement, id);
      } else {
        a.arrangement = alloc::arrangeInputs(g, a.ops);
      }
      a.muxCost = alloc::muxCostOf(lib, a.arrangement);
      if (!a.muxDeltaMemo.empty())
        trace::bump(trace::Counter::MuxMemoInvalidations);
      a.muxDeltaMemo.clear();  // the cached deltas were against the old ops
      trace::bump(trace::Counter::MfsaCommits);

      occ.place(id, aluIdx + 1, chosen->step);
      s.place(id, chosen->step, aluIdx + 1);
      fc.recordPlacement(s, id, chosen->step);
      if (opt.interconnect == InterconnectStyle::Bus) {
        busTransfers[static_cast<std::size_t>(chosen->step)] += busedOperands(id);
        busPeak = std::max(busPeak,
                           busTransfers[static_cast<std::size_t>(chosen->step)]);
      }
      for (NodeId in : n.inputs) {
        if (g.node(in).kind == dfg::OpKind::Const) continue;
        if (chosen->step > producerEnd(in))
          maxUse[in] = std::max(maxUse[in], chosen->step);
      }

      res.termsOf[id] = chosen->terms;
      trace::bump(trace::Counter::LiapunovUpdates);
      v -= worstContribution - chosen->f;
      if (opt.traceLiapunov) res.liapunovTrace.push_back(v);
    }
    if (restart) continue;

    // Assemble the RTL structure and its cost.
    std::vector<rtl::AluInstance> insts;
    insts.reserve(alus.size());
    for (const AluState& a : alus) insts.push_back({a.module, a.index, a.ops});
    res.datapath = rtl::buildDatapath(g, lib, s, std::move(insts));
    res.cost = rtl::evaluateCost(res.datapath);
    if (opt.interconnect == InterconnectStyle::Bus) {
      // Replace the mux interconnect area by the final shared-bus plan.
      const auto fsm = rtl::buildController(res.datapath);
      res.busPlan = rtl::planBuses(res.datapath, fsm, opt.busModel);
      res.cost.muxArea = res.busPlan->totalCost;
      res.cost.total = res.cost.aluArea + res.cost.regArea + res.cost.muxArea;
    }
    res.steps = cs;
    res.restarts = restarts;
    res.feasible = true;
    return res;
  }
}

MfsaResult runMfsaResourceConstrained(const dfg::Dfg& g,
                                      const celllib::CellLibrary& lib,
                                      MfsaOptions opt, int maxStepsCap) {
  MfsaResult last;
  std::string tfError;
  sched::Constraints probe = opt.constraints;
  probe.timeSteps = 0;
  const auto tf = computeTimeFrames(g, probe, &tfError);
  if (!tf) {
    last.error = tfError;
    return last;
  }
  int cs = std::max(opt.constraints.timeSteps, tf->criticalSteps());
  for (; cs <= maxStepsCap; ++cs) {
    opt.constraints.timeSteps = cs;
    last = runMfsa(g, lib, opt);
    if (last.feasible) return last;
    // Infeasibility under hard budgets surfaces as an exhausted column
    // budget; any other error will not improve with more steps.
    if (last.error.find("no feasible MFSA position") == std::string::npos)
      return last;
  }
  last.error = util::format("no feasible design within %d steps", maxStepsCap);
  return last;
}

}  // namespace mframe::core
