// Move Frame Scheduling-Allocation (Section 4): simultaneous scheduling and
// allocation of multifunction ALUs, registers and interconnect, driven by
// the dynamic Liapunov function
//   f_{i,j,k} = w_T*f_TIME + w_A*f_ALU + w_M*f_MUX + w_R*f_REG.
//
// Candidates for each operation are every empty, dependency-legal position
// in the move frame of every capable ALU — existing instances plus one fresh
// instance of each capable library module. The contribution terms follow
// Section 4.1 exactly:
//   f_TIME = C*y with C large enough that a later step can never be bought
//            by cheaper hardware;
//   f_ALU  = Cost(module) for a fresh ALU, 0 for an existing one;
//   f_MUX  = Cost(MUX1,MUX2 after) - Cost(MUX1,MUX2 before), evaluated under
//            the best input-sharing arrangement (Section 5.6) and shared
//            interconnect (Section 5.7);
//   f_REG  = Cost(REG) * (new registers implied by this operation's input
//            signals living to the chosen step) in {0, 1, 2} registers.
#pragma once

#include <map>
#include <string>
#include <vector>

#include <optional>

#include "celllib/cell_library.h"
#include "core/liapunov.h"
#include "rtl/bus.h"
#include "rtl/cost.h"
#include "rtl/datapath.h"
#include "sched/priority.h"
#include "sched/schedule.h"

namespace mframe::core {

/// Interconnect architecture the f_MUX term models (Section 4.1 allows
/// "multiplexers (or buses)"). Mux: two private multiplexers per ALU, priced
/// by the library's nonlinear table. Bus: operand transfers ride shared
/// buses; the term prices the increase in peak concurrent transfers (new bus
/// wires) plus the port taps.
enum class InterconnectStyle { Mux, Bus };

struct MfsaOptions {
  /// Time constraint and feature switches; timeSteps must be set.
  sched::Constraints constraints;

  MfsaWeights weights;
  rtl::DesignStyle style = rtl::DesignStyle::Unrestricted;
  sched::PriorityRule priorityRule = sched::PriorityRule::Mobility;

  InterconnectStyle interconnect = InterconnectStyle::Mux;
  rtl::BusCostModel busModel;  ///< consulted when interconnect == Bus

  /// Move-frame search strategy. Frontier (earliest feasible step per ALU ×
  /// module, provably the argmin) only applies under mux interconnect with
  /// non-negative weights — the bus term is not monotone in the step — and
  /// otherwise silently falls back to Exhaustive.
  MoveFrameMode frameMode = MoveFrameMode::Auto;

  /// Evaluate each candidate's f_MUX with the incremental
  /// alloc::arrangeInputsDelta against the ALU's cached arrangement
  /// (memoized per ALU × op) instead of re-running the full two-pass
  /// arrangement per candidate. The delta is exact, so results are
  /// identical either way; the switch exists for differential testing.
  bool incrementalMux = true;

  bool traceLiapunov = true;
};

struct MfsaResult {
  bool feasible = false;
  std::string error;

  rtl::Datapath datapath;      ///< the complete RTL structure
  rtl::CostBreakdown cost;     ///< Table-2 style cost summary
  int steps = 0;

  /// Filled when interconnect == Bus: the final shared-bus plan (the cost
  /// summary's interconnect area is taken from it instead of the muxes).
  std::optional<rtl::BusPlan> busPlan;

  /// Term breakdown of each operation's chosen position.
  std::map<dfg::NodeId, MfsaTerms> termsOf;

  /// Local-rescheduling restarts (Section 3.2 step 4 / 4.2): how often an
  /// empty move frame forced a column-budget increase.
  int restarts = 0;

  /// V(X(k)) after every move (strictly decreasing, per the theorem).
  std::vector<double> liapunovTrace;
};

MfsaResult runMfsa(const dfg::Dfg& g, const celllib::CellLibrary& lib,
                   const MfsaOptions& opt);

/// Resource-constrained MFSA: find the smallest schedule length at which a
/// design meeting opt.constraints.fuLimit exists, by growing cs from the
/// critical path (the dual the paper's "under time and resource constraints"
/// promises for both algorithms). opt.constraints.timeSteps, if set, is the
/// starting point; `maxStepsCap` bounds the search.
MfsaResult runMfsaResourceConstrained(const dfg::Dfg& g,
                                      const celllib::CellLibrary& lib,
                                      MfsaOptions opt, int maxStepsCap = 4096);

}  // namespace mframe::core
