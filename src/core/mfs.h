// Move Frame Scheduling (Section 3): a fast balanced scheduler under a time
// constraint, or a latency minimizer under resource constraints, driven by
// the static Liapunov function over the 2-D placement tables.
//
// Supports every Section-5 scheduling feature through sched::Constraints:
// mutually exclusive (conditional) operations, multicycle operations,
// chaining, structural pipelining and functional pipelining; loops are
// handled by folding the DFG first (dfg::foldLoopNest).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/liapunov.h"
#include "sched/priority.h"
#include "sched/schedule.h"

namespace mframe::core {

struct MfsOptions {
  sched::Constraints constraints;

  /// Time-constrained (fixed cs, minimize/balance FUs) or
  /// resource-constrained (fixed FU limits, minimize cs).
  MfsLiapunov::Mode mode = MfsLiapunov::Mode::TimeConstrained;

  sched::PriorityRule priorityRule = sched::PriorityRule::Mobility;

  /// Move-frame search strategy; Auto = Exhaustive on small graphs,
  /// Frontier (same result, far fewer probes) on large ones.
  MoveFrameMode frameMode = MoveFrameMode::Auto;

  /// Operations to place first, ahead of the computed priority order (the
  /// tune loop seeds this with its criticality ranking so the critical cone
  /// ops grab the best grid slots). Unknown/duplicate ids are ignored; the
  /// combined list is still made topologically consistent before use.
  std::vector<dfg::NodeId> priorityHint;

  /// Safety bound on "local rescheduling" restarts (Section 3.2: on an empty
  /// move frame, current_j is increased and placement redone).
  int maxRestarts = 10000;

  /// Resource-constrained mode: upper bound on the schedule length searched.
  int maxStepsCap = 4096;

  /// Record the Liapunov trace (one value per move) for the monotonicity
  /// property tests; costs a little memory.
  bool traceLiapunov = true;
};

struct MfsResult {
  bool feasible = false;
  std::string error;

  sched::Schedule schedule;
  int steps = 0;                        ///< achieved control steps
  std::map<dfg::FuType, int> fuCount;   ///< FU instances used per type
  int restarts = 0;                     ///< local-rescheduling count

  /// V(X(k)) after every move, starting with the initial energy. The
  /// Liapunov theorem demands this sequence be strictly decreasing.
  std::vector<double> liapunovTrace;
};

/// Run MFS on `g`. The graph must validate; in time-constrained mode
/// opt.constraints.timeSteps must be >= the critical path.
MfsResult runMfs(const dfg::Dfg& g, const MfsOptions& opt);

/// Convenience: topologically consistent priority order — the paper's
/// priority list, refined so no operation precedes one of its predecessors
/// (required once chaining/multicycle frames let priorities cross
/// dependencies). Exposed for tests.
///
/// Returns nullopt (with a message in `error`, when given) if the list can
/// never be completed — the priority list omits a predecessor of a listed
/// operation, or the graph has a cycle. Previously this was only an assert,
/// so release builds silently emitted a truncated order.
std::optional<std::vector<dfg::NodeId>> topoConsistentOrder(
    const dfg::Dfg& g, const std::vector<dfg::NodeId>& priority,
    std::string* error = nullptr);

}  // namespace mframe::core
