#include "core/frames.h"

#include <algorithm>

namespace mframe::core {

FrameCalculator::DepCheck FrameCalculator::depOk(const sched::Schedule& s,
                                                 dfg::NodeId n, int step) const {
  const dfg::Node& node = g_->node(n);
  DepCheck out;
  double off = 0.0;
  for (dfg::NodeId p : g_->opPreds(n)) {
    if (!s.isPlaced(p)) continue;  // scheduled later; ASAP already bounds us
    const dfg::Node& pn = g_->node(p);
    const int pEnd = s.stepOf(p) + pn.cycles - 1;
    if (pEnd < step) continue;
    if (pEnd > step) return {};  // predecessor still busy after our start
    // Predecessor finishes exactly in our step: only a chain can save this.
    if (!c_->allowChaining || pn.cycles > 1 || node.cycles > 1) return {};
    off = std::max(off, chainOffsetOf(p));
  }
  if (c_->allowChaining && node.cycles == 1) {
    if (off + node.effectiveDelayNs() > c_->clockNs) return {};
  } else if (off > 0.0) {
    return {};  // multicycle ops start on step boundaries
  }
  out.ok = true;
  out.startOffsetNs = off;
  return out;
}

void FrameCalculator::recordPlacement(const sched::Schedule& s, dfg::NodeId n,
                                      int step) {
  const dfg::Node& node = g_->node(n);
  const DepCheck d = depOk(s, n, step);
  if (c_->allowChaining && node.cycles == 1)
    chainOff_[n] = d.startOffsetNs + node.effectiveDelayNs();
  else
    chainOff_[n] = 0.0;  // result lands on a step boundary
}

double FrameCalculator::chainOffsetOf(dfg::NodeId n) const {
  auto it = chainOff_.find(n);
  return it == chainOff_.end() ? 0.0 : it->second;
}

FrameCalculator::Frames FrameCalculator::compute(const sched::Schedule& s,
                                                 const ColumnOccupancy& occ,
                                                 dfg::NodeId n, int currentCols,
                                                 int maxCols) const {
  Frames f;
  f.pfStepLo = tf_->asap(n);
  f.pfStepHi = tf_->alap(n);
  f.pfColLo = 1;
  f.pfColHi = maxCols;
  f.rfColLo = currentCols + 1;

  // FF lower bound from placed predecessors, before the chaining relaxation:
  // "exclude those positions whose control steps are less than or equal to
  // the predecessors' control step".
  int below = f.pfStepLo;
  for (dfg::NodeId p : g_->opPreds(n))
    if (s.isPlaced(p))
      below = std::max(below, s.stepOf(p) + g_->node(p).cycles - 1 +
                                  (c_->allowChaining ? 0 : 1));
  f.ffBelowStep = below;

  const int colHi = std::min(currentCols, maxCols);
  for (int step = f.pfStepLo; step <= f.pfStepHi; ++step) {
    if (!depOk(s, n, step).ok) continue;
    for (int col = 1; col <= colHi; ++col)
      if (occ.canPlace(n, col, step)) f.moveFrame.push_back({step, col});
  }
  return f;
}

}  // namespace mframe::core
