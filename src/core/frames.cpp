#include "core/frames.h"

#include <algorithm>

namespace mframe::core {

FrameCalculator::DepCheck FrameCalculator::depOk(const sched::Schedule& s,
                                                 dfg::NodeId n, int step) const {
  const int cycles = g_->cyclesOf(n);
  DepCheck out;
  double off = 0.0;
  for (dfg::NodeId p : g_->opPreds(n)) {
    if (!s.isPlaced(p)) continue;  // scheduled later; ASAP already bounds us
    const int pEnd = s.stepOf(p) + g_->cyclesOf(p) - 1;
    if (pEnd < step) continue;
    if (pEnd > step) return {};  // predecessor still busy after our start
    // Predecessor finishes exactly in our step: only a chain can save this.
    if (!c_->allowChaining || g_->cyclesOf(p) > 1 || cycles > 1) return {};
    off = std::max(off, chainOffsetOf(p));
  }
  if (c_->allowChaining && cycles == 1) {
    if (off + g_->delayOf(n) > c_->clockNs) return {};
  } else if (off > 0.0) {
    return {};  // multicycle ops start on step boundaries
  }
  out.ok = true;
  out.startOffsetNs = off;
  return out;
}

FrameCalculator::DepWindow FrameCalculator::depWindow(const sched::Schedule& s,
                                                      dfg::NodeId n) const {
  const int cycles = g_->cyclesOf(n);
  DepWindow w;
  bool boundaryChainable = true;  // every pred ending at the boundary chains
  for (dfg::NodeId p : g_->opPreds(n)) {
    if (!s.isPlaced(p)) continue;
    const int pEnd = s.stepOf(p) + g_->cyclesOf(p) - 1;
    if (pEnd > w.boundaryStep) {
      w.boundaryStep = pEnd;
      w.boundaryOff = 0.0;
      boundaryChainable = true;
    }
    if (pEnd == w.boundaryStep) {
      if (g_->cyclesOf(p) > 1)
        boundaryChainable = false;
      else
        w.boundaryOff = std::max(w.boundaryOff, chainOffsetOf(p));
    }
  }
  const bool chainable = c_->allowChaining && cycles == 1;
  // Above the boundary no pred constrains the start; only an op whose own
  // delay never fits the clock stays infeasible.
  w.aboveOk = !chainable || g_->delayOf(n) <= c_->clockNs;
  if (w.boundaryStep == 0) {
    // No placed predecessor: there is no boundary case, every step behaves
    // like the "above" zone.
    w.boundaryOk = false;
    return w;
  }
  w.boundaryOk = c_->allowChaining && boundaryChainable && cycles == 1 &&
                 w.boundaryOff + g_->delayOf(n) <= c_->clockNs;
  if (!w.boundaryOk) w.boundaryOff = 0.0;
  return w;
}

void FrameCalculator::recordPlacement(const sched::Schedule& s, dfg::NodeId n,
                                      int step) {
  const DepCheck d = depOk(s, n, step);
  if (n >= chainOff_.size()) chainOff_.resize(g_->size(), 0.0);
  if (c_->allowChaining && g_->cyclesOf(n) == 1)
    chainOff_[n] = d.startOffsetNs + g_->delayOf(n);
  else
    chainOff_[n] = 0.0;  // result lands on a step boundary
}

FrameCalculator::Frames FrameCalculator::compute(const sched::Schedule& s,
                                                 const ColumnOccupancy& occ,
                                                 dfg::NodeId n, int currentCols,
                                                 int maxCols) const {
  Frames f;
  f.pfStepLo = tf_->asap(n);
  f.pfStepHi = tf_->alap(n);
  f.pfColLo = 1;
  f.pfColHi = maxCols;
  f.rfColLo = currentCols + 1;

  // FF lower bound from placed predecessors, before the chaining relaxation:
  // "exclude those positions whose control steps are less than or equal to
  // the predecessors' control step".
  int below = f.pfStepLo;
  for (dfg::NodeId p : g_->opPreds(n))
    if (s.isPlaced(p))
      below = std::max(below, s.stepOf(p) + g_->node(p).cycles - 1 +
                                  (c_->allowChaining ? 0 : 1));
  f.ffBelowStep = below;

  const int colHi = std::min(currentCols, maxCols);
  for (int step = f.pfStepLo; step <= f.pfStepHi; ++step) {
    if (!depOk(s, n, step).ok) continue;
    for (int col = 1; col <= colHi; ++col)
      if (occ.canPlace(n, col, step)) f.moveFrame.push_back({step, col});
  }
  return f;
}

}  // namespace mframe::core
