#include "core/liapunov.h"

namespace mframe::core {

double mfsaTimeConstant(const celllib::CellLibrary& lib, const MfsaWeights& w) {
  const double fAluMax = lib.maxModuleArea();
  const double fMuxMax = lib.maxMuxIncrement();  // already 2 * max increment
  const double fRegMax = 2.0 * lib.regCost();
  const double dominated = w.alu * fAluMax + w.mux * fMuxMax + w.reg * fRegMax;
  const double wt = std::max(w.time, 1e-9);
  return dominated / wt + 1.0;
}

}  // namespace mframe::core
