#include "core/grid.h"

#include <algorithm>
#include <cassert>

namespace mframe::core {

void ColumnOccupancy::setPipelined(int col, bool pipelined) {
  if (pipelined)
    pipelined_.insert(col);
  else
    pipelined_.erase(col);
}

std::vector<std::pair<int, int>> ColumnOccupancy::cellsFor(dfg::NodeId n,
                                                           int col,
                                                           int step) const {
  std::vector<std::pair<int, int>> cells;
  if (isPipelined(col)) {
    // One initiation per (folded) step; later stages overlap freely.
    cells.emplace_back(col, fold(step));
  } else {
    const int cycles = g_->node(n).cycles;
    for (int s = step; s < step + cycles; ++s) cells.emplace_back(col, fold(s));
  }
  // Folding can alias several steps of one multicycle op onto one cell.
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  return cells;
}

bool ColumnOccupancy::canPlace(dfg::NodeId n, int col, int step) const {
  for (const auto& key : cellsFor(n, col, step)) {
    auto it = cell_.find(key);
    if (it == cell_.end()) continue;
    for (dfg::NodeId other : it->second) {
      if (other == n) continue;
      if (!g_->mutuallyExclusive(n, other)) return false;
    }
  }
  // A multicycle op folded tighter than its own duration would overlap its
  // next initiation (functional pipelining): reject when cycles > latency.
  if (latency_ > 0 && !isPipelined(col) && g_->node(n).cycles > latency_)
    return false;
  return true;
}

void ColumnOccupancy::place(dfg::NodeId n, int col, int step) {
  assert(!isPlaced(n));
  for (const auto& key : cellsFor(n, col, step)) cell_[key].push_back(n);
  where_[n] = {col, step};
}

void ColumnOccupancy::remove(dfg::NodeId n) {
  auto it = where_.find(n);
  if (it == where_.end()) return;
  const auto [col, step] = it->second;
  for (const auto& key : cellsFor(n, col, step)) {
    auto& v = cell_[key];
    v.erase(std::remove(v.begin(), v.end(), n), v.end());
    if (v.empty()) cell_.erase(key);
  }
  where_.erase(it);
}

void ColumnOccupancy::clear() {
  cell_.clear();
  where_.clear();
}

int ColumnOccupancy::maxColumnUsed() const {
  int mx = 0;
  for (const auto& [key, ops] : cell_)
    if (!ops.empty()) mx = std::max(mx, key.first);
  return mx;
}

std::vector<dfg::NodeId> ColumnOccupancy::at(int col, int step) const {
  auto it = cell_.find({col, fold(step)});
  return it == cell_.end() ? std::vector<dfg::NodeId>{} : it->second;
}

Grid::Grid(const dfg::Dfg& g, const sched::Constraints& c) : g_(&g) {
  tables_.reserve(dfg::kNumFuTypes);
  for (std::size_t t = 0; t < dfg::kNumFuTypes; ++t) {
    tables_.emplace_back(g, c);
    if (c.pipelinedFus.count(static_cast<dfg::FuType>(t))) {
      // All columns of a pipelined type behave pipelined; flag generously.
      for (int col = 1; col <= static_cast<int>(g.size()) + 1; ++col)
        tables_.back().setPipelined(col, true);
    }
  }
}

bool Grid::canPlace(dfg::NodeId n, int col, int step) const {
  return table(dfg::fuTypeOf(g_->node(n).kind)).canPlace(n, col, step);
}

void Grid::place(dfg::NodeId n, int col, int step) {
  table(dfg::fuTypeOf(g_->node(n).kind)).place(n, col, step);
}

void Grid::clear() {
  for (auto& t : tables_) t.clear();
}

}  // namespace mframe::core
