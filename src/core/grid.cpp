#include "core/grid.h"

#include <algorithm>
#include <cassert>

namespace mframe::core {

void ColumnOccupancy::setPipelined(int col, bool pipelined) {
  const auto i = static_cast<std::size_t>(col);
  if (i >= pipelined_.size()) {
    if (!pipelined) return;
    pipelined_.resize(i + 1, 0);
  }
  pipelined_[i] = pipelined ? 1 : 0;
}

void ColumnOccupancy::ensureNode(dfg::NodeId n) {
  if (n >= whereCol_.size()) {
    whereCol_.resize(n + 1, 0);
    whereStep_.resize(n + 1, 0);
  }
}

std::vector<std::uint64_t> ColumnOccupancy::cellsFor(dfg::NodeId n, int col,
                                                     int step) const {
  std::vector<std::uint64_t> cells;
  if (isPipelined(col)) {
    // One initiation per (folded) step; later stages overlap freely.
    cells.push_back(key(col, fold(step)));
  } else {
    const int cycles = g_->cyclesOf(n);
    cells.reserve(static_cast<std::size_t>(cycles));
    for (int s = step; s < step + cycles; ++s) cells.push_back(key(col, fold(s)));
  }
  // Folding can alias several steps of one multicycle op onto one cell.
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  return cells;
}

bool ColumnOccupancy::canPlace(dfg::NodeId n, int col, int step) const {
  auto cellFree = [&](std::uint64_t k) {
    const auto it = cell_.find(k);
    if (it == cell_.end()) return true;
    for (dfg::NodeId other : it->second) {
      if (other == n) continue;
      if (!g_->mutuallyExclusive(n, other)) return false;
    }
    return true;
  };
  if (plainCells(col)) {
    // No folding, no pipelining: the keys are distinct consecutive steps —
    // probe them directly without materializing a key list.
    const int cycles = g_->cyclesOf(n);
    for (int s = step; s < step + cycles; ++s)
      if (!cellFree(key(col, s))) return false;
    return true;
  }
  for (std::uint64_t k : cellsFor(n, col, step))
    if (!cellFree(k)) return false;
  // A multicycle op folded tighter than its own duration would overlap its
  // next initiation (functional pipelining): reject when cycles > latency.
  if (latency_ > 0 && !isPipelined(col) && g_->cyclesOf(n) > latency_)
    return false;
  return true;
}

void ColumnOccupancy::place(dfg::NodeId n, int col, int step) {
  assert(!isPlaced(n));
  for (std::uint64_t k : cellsFor(n, col, step)) cell_[k].push_back(n);
  ensureNode(n);
  whereCol_[n] = col;
  whereStep_[n] = step;
  const auto c = static_cast<std::size_t>(col);
  if (c >= opsPerCol_.size()) opsPerCol_.resize(c + 1, 0);
  ++opsPerCol_[c];
}

void ColumnOccupancy::remove(dfg::NodeId n) {
  if (!isPlaced(n)) return;
  const int col = whereCol_[n];
  const int step = whereStep_[n];
  for (std::uint64_t k : cellsFor(n, col, step)) {
    auto& v = cell_[k];
    v.erase(std::remove(v.begin(), v.end(), n), v.end());
    if (v.empty()) cell_.erase(k);
  }
  whereCol_[n] = 0;
  whereStep_[n] = 0;
  --opsPerCol_[static_cast<std::size_t>(col)];
}

void ColumnOccupancy::clear() {
  cell_.clear();
  whereCol_.assign(whereCol_.size(), 0);
  whereStep_.assign(whereStep_.size(), 0);
  opsPerCol_.assign(opsPerCol_.size(), 0);
}

int ColumnOccupancy::maxColumnUsed() const {
  for (std::size_t c = opsPerCol_.size(); c > 0; --c)
    if (opsPerCol_[c - 1] > 0) return static_cast<int>(c - 1);
  return 0;
}

std::vector<dfg::NodeId> ColumnOccupancy::at(int col, int step) const {
  const auto it = cell_.find(key(col, fold(step)));
  return it == cell_.end() ? std::vector<dfg::NodeId>{} : it->second;
}

Grid::Grid(const dfg::Dfg& g, const sched::Constraints& c) : g_(&g) {
  tables_.reserve(dfg::kNumFuTypes);
  for (std::size_t t = 0; t < dfg::kNumFuTypes; ++t) {
    tables_.emplace_back(g, c);
    if (c.pipelinedFus.count(static_cast<dfg::FuType>(t))) {
      // All columns of a pipelined type behave pipelined; flag generously.
      for (int col = 1; col <= static_cast<int>(g.size()) + 1; ++col)
        tables_.back().setPipelined(col, true);
    }
  }
}

bool Grid::canPlace(dfg::NodeId n, int col, int step) const {
  return table(dfg::fuTypeOf(g_->kindOf(n))).canPlace(n, col, step);
}

void Grid::place(dfg::NodeId n, int col, int step) {
  table(dfg::fuTypeOf(g_->kindOf(n))).place(n, col, step);
}

void Grid::clear() {
  for (auto& t : tables_) t.clear();
}

}  // namespace mframe::core
