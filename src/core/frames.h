// The move-frame machinery of Section 3.2 (step 4): for each operation a
// Primary Frame (PF), Redundant Frame (RF) and Forbidden Frame (FF) are
// derived, and the Move Frame is MF = PF - (RF + FF) minus occupied cells.
//
// FrameCalculator also owns the chaining bookkeeping (Section 5.4): it keeps
// the intra-step combinational offset at which every placed operation's
// result becomes ready, so the forbidden frame can be "changed to allow
// chaining" — a predecessor's own step stays legal when the accumulated
// delay still fits the clock period.
#pragma once

#include <vector>

#include "core/grid.h"
#include "sched/schedule.h"
#include "sched/timeframes.h"

namespace mframe::core {

class FrameCalculator {
 public:
  FrameCalculator(const dfg::Dfg& g, const sched::Constraints& c,
                  const sched::TimeFrames& tf)
      : g_(&g), c_(&c), tf_(&tf), chainOff_(g.size(), 0.0) {}

  /// Outcome of the dependency test for starting `n` at `step`.
  struct DepCheck {
    bool ok = false;
    double startOffsetNs = 0.0;  ///< chained start offset within the step
  };

  /// Data-dependency legality of starting `n` at `step` against the placed
  /// predecessors in `s`. Handles the chaining relaxation.
  DepCheck depOk(const sched::Schedule& s, dfg::NodeId n, int step) const;

  /// depOk for every step at once, in one O(preds) pass. depOk(step) is a
  /// three-zone function of the step: always false below the latest placed
  /// predecessor's end step (`boundaryStep`), a single chaining-dependent
  /// verdict exactly at it, and one uniform verdict above it (a chainable
  /// op whose own delay exceeds the clock fails everywhere). The frontier
  /// schedulers use this to find the earliest feasible step without
  /// re-walking the predecessor list per candidate step.
  struct DepWindow {
    int boundaryStep = 0;      ///< latest placed-pred end step (0 = none)
    bool boundaryOk = false;   ///< may start exactly at boundaryStep
    double boundaryOff = 0.0;  ///< chained start offset at boundaryStep
    bool aboveOk = true;       ///< may start at any step > boundaryStep

    /// First dependency-feasible step in [lo, hi]; 0 when none.
    int firstStep(int lo, int hi) const {
      int s;
      if (lo <= boundaryStep) {
        if (boundaryOk)
          s = boundaryStep;
        else if (aboveOk)
          s = boundaryStep + 1;
        else
          return 0;
      } else {
        if (!aboveOk) return 0;
        s = lo;
      }
      return s <= hi ? s : 0;
    }
    /// Dependency-feasible step after `s` (itself feasible); 0 past `hi`.
    int nextStep(int s, int hi) const {
      if (s == boundaryStep && !aboveOk) return 0;
      return s + 1 <= hi ? s + 1 : 0;
    }
  };
  DepWindow depWindow(const sched::Schedule& s, dfg::NodeId n) const;

  /// Record that `n` was placed at `step` (predecessors must already be
  /// recorded); maintains the chain-offset map.
  void recordPlacement(const sched::Schedule& s, dfg::NodeId n, int step);
  void reset() { chainOff_.assign(g_->size(), 0.0); }

  double chainOffsetOf(dfg::NodeId n) const {
    return n < chainOff_.size() ? chainOff_[n] : 0.0;
  }

  /// The frames of one operation at one scheduling iteration.
  struct Frames {
    int pfStepLo = 0, pfStepHi = 0;  ///< PF vertical extent: [ASAP, ALAP]
    int pfColLo = 1, pfColHi = 0;    ///< PF horizontal extent: [1, max_j]
    int rfColLo = 0;                 ///< RF: columns >= rfColLo (current_j + 1)
    int ffBelowStep = 0;  ///< FF: steps < ffBelowStep blocked by placed preds
                          ///< (before the chaining relaxation)
    std::vector<sched::Placement> moveFrame;  ///< the valid cells, MF
  };

  /// Compute PF/RF/FF/MF for `n` given the partial schedule, the occupancy
  /// table of its FU type, the current number of in-use columns (current_j)
  /// and the column bound (max_j).
  Frames compute(const sched::Schedule& s, const ColumnOccupancy& occ,
                 dfg::NodeId n, int currentCols, int maxCols) const;

 private:
  const dfg::Dfg* g_;
  const sched::Constraints* c_;
  const sched::TimeFrames* tf_;
  std::vector<double> chainOff_;  ///< by node; 0 = step-boundary result
};

}  // namespace mframe::core
