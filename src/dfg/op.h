// Operation kinds and their static properties.
//
// The paper schedules operations drawn from the usual behavioral-synthesis
// repertoire: arithmetic (*, +, -, /), logic (&, |, ^, !), relational
// (<, >, =, ...) and the increment/decrement forms used when loop bookkeeping
// operations are added to a loop body (Section 5.2). Each kind carries the
// properties the schedulers need: arity, commutativity, a default
// combinational delay (used by the chaining extension of Section 5.4) and the
// single-function FU type it maps to in MFS.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mframe::dfg {

enum class OpKind : std::uint8_t {
  // Non-computational nodes.
  Input,    ///< primary input; produces a named signal, never scheduled
  Const,    ///< literal constant; never scheduled
  // Arithmetic.
  Add,
  Sub,
  Mul,
  Div,
  Inc,      ///< unary +1 (loop bookkeeping)
  Dec,      ///< unary -1
  // Logic.
  And,
  Or,
  Xor,
  Not,      ///< unary complement
  Shl,
  Shr,
  // Relational (all map to the comparator FU type).
  Eq,
  Ne,
  Lt,
  Gt,
  Le,
  Ge,
  // Hierarchy.
  LoopSuper,  ///< a folded inner loop treated as one multicycle operation (Section 5.2)
};

/// Functional-unit type used by MFS, where units are single-function
/// operators (Section 2.3: "in a scheduling algorithm, the functional units
/// are assumed to be single function operators"). All relational kinds share
/// the comparator; everything else has its own unit type.
enum class FuType : std::uint8_t {
  Adder,
  Subtractor,
  Multiplier,
  Divider,
  Incrementer,
  Decrementer,
  AndGate,
  OrGate,
  XorGate,
  NotGate,
  Shifter,
  Comparator,
  LoopUnit,  ///< pseudo-unit occupied by a folded loop body
};

inline constexpr std::size_t kNumFuTypes = 13;

/// Number of data inputs the kind consumes (0 for Input/Const).
int arity(OpKind k);

/// True when operand order does not matter; the mux optimizer (Section 5.6)
/// may swap the operands of commutative operations to improve input sharing.
bool isCommutative(OpKind k);

/// True for kinds that occupy a functional unit and must be scheduled.
bool isSchedulable(OpKind k);

/// The single-function FU type for a schedulable kind. Precondition:
/// isSchedulable(k).
FuType fuTypeOf(OpKind k);

/// Default combinational delay in nanoseconds, used when a node does not
/// override it. Values model a late-1980s standard-cell flavor: multipliers
/// and dividers are far slower than adders, logic is fast. Only ratios
/// matter for the chaining decisions.
double defaultDelayNs(OpKind k);

/// Human-readable names ("mul") and the paper's one-character symbols ("*").
std::string_view kindName(OpKind k);
std::string_view kindSymbol(OpKind k);
std::string_view fuTypeName(FuType t);
std::string_view fuTypeSymbol(FuType t);

/// Parse a kind from its name or symbol; returns false on unknown text.
bool parseKind(std::string_view text, OpKind& out);

/// Parse an FU type from its name ("adder"), symbol ("+") or the short
/// aliases used by the CLI and the library file format ("add", "mul",
/// "cmp", ...); returns false on unknown text.
bool parseFuType(std::string_view text, FuType& out);

}  // namespace mframe::dfg
