// Structural statistics over a DFG: size, op mix, depth profile, fanout —
// the quick-look numbers a designer wants before scheduling (`mframe ...
// --stats` and the workload documentation tables).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dfg/dfg.h"

namespace mframe::dfg {

struct DfgStats {
  std::size_t nodes = 0;
  std::size_t operations = 0;
  std::size_t inputs = 0;
  std::size_t constants = 0;
  std::size_t outputs = 0;
  std::map<OpKind, int> opMix;
  std::map<FuType, int> typeMix;
  int criticalPath = 0;           ///< unit/multicycle longest path (no chaining)
  int maxFanout = 0;              ///< widest consumer list of any value
  double avgFanout = 0.0;         ///< mean consumers per value-producing node
  std::size_t multicycleOps = 0;  ///< ops with cycles > 1
  std::size_t conditionalOps = 0; ///< ops inside some branch arm
  double parallelism = 0.0;       ///< operations / criticalPath
  std::vector<long> constValues;  ///< literal values, in node order
  std::size_t widthedNodes = 0;   ///< nodes carrying a declared width
  int minDeclaredWidth = 0;       ///< 0 when no widths are declared
  int maxDeclaredWidth = 0;

  std::string toString() const;
};

DfgStats computeStats(const Dfg& g);

}  // namespace mframe::dfg
