#include "dfg/transforms.h"

#include <algorithm>
#include <deque>
#include <map>
#include <stdexcept>

#include "dfg/builder.h"
#include "util/strings.h"

namespace mframe::dfg {

namespace {

/// Longest common prefix of two branch paths, in whole cond/arm pairs.
std::string commonBranchPrefix(const std::string& a, const std::string& b) {
  const auto pa = util::split(a, '.');
  const auto pb = util::split(b, '.');
  std::vector<std::string> common;
  for (std::size_t i = 0; i < std::min(pa.size(), pb.size()); ++i) {
    if (pa[i] != pb[i]) break;
    common.push_back(pa[i]);
  }
  // Keep whole (cond, arm) pairs only.
  if (common.size() % 2 != 0) common.pop_back();
  return util::join(common, ".");
}

bool sameOperands(const Node& a, const Node& b) {
  if (a.inputs == b.inputs) return true;
  if (isCommutative(a.kind) && a.inputs.size() == 2 &&
      a.inputs[0] == b.inputs[1] && a.inputs[1] == b.inputs[0])
    return true;
  return false;
}

/// Rebuild `g` dropping nodes mapped to a representative and rewriting input
/// references through the mapping.
Dfg rebuildMerged(const Dfg& g, const std::map<NodeId, NodeId>& replaceBy,
                  const std::map<NodeId, std::string>& newBranch) {
  Dfg out(g.name());
  std::vector<NodeId> newId(g.size(), kNoNode);
  for (const Node& n : g.nodes()) {
    if (replaceBy.count(n.id)) continue;  // dropped duplicate
    Node copy = n;
    copy.inputs.clear();
    for (NodeId in : n.inputs) {
      NodeId target = in;
      auto it = replaceBy.find(target);
      if (it != replaceBy.end()) target = it->second;
      copy.inputs.push_back(newId[target]);
    }
    auto bp = newBranch.find(n.id);
    if (bp != newBranch.end()) copy.branchPath = bp->second;
    newId[n.id] = out.addNode(std::move(copy));
  }
  for (const auto& [id, ext] : g.outputs()) {
    NodeId target = id;
    auto it = replaceBy.find(target);
    if (it != replaceBy.end()) target = it->second;
    out.markOutput(newId[target], ext);
  }
  out.freeze();
  return out;
}

}  // namespace

std::size_t mergeSharedBranchOps(Dfg& g) {
  std::size_t removedTotal = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    std::map<NodeId, NodeId> replaceBy;   // duplicate -> survivor
    std::map<NodeId, std::string> newBranch;
    const auto ops = g.operations();
    for (std::size_t i = 0; i < ops.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < ops.size(); ++j) {
        const Node& a = g.node(ops[i]);
        const Node& b = g.node(ops[j]);
        if (a.kind != b.kind || a.cycles != b.cycles) continue;
        if (!g.mutuallyExclusive(a.id, b.id)) continue;
        if (!sameOperands(a, b)) continue;
        // Merge b into a; hoist a to the arms' common conditional prefix so
        // the surviving instance executes on either path.
        replaceBy[b.id] = a.id;
        newBranch[a.id] = commonBranchPrefix(a.branchPath, b.branchPath);
        changed = true;
        ++removedTotal;
        break;  // rebuild, then rescan — operand identity shifts after merge
      }
    }
    if (changed) g = rebuildMerged(g, replaceBy, newBranch);
  }
  return removedTotal;
}

Dfg foldLoopNest(const LoopNest& nest, const BodyScheduler& sched) {
  Dfg body = nest.body;

  // Innermost first: fold every child, then record its achieved step count
  // on the matching LoopSuper node of this body.
  for (const LoopNest& child : nest.children) {
    const Dfg folded = foldLoopNest(child, sched);
    const int steps = sched(folded, child.localTimeConstraint);
    if (steps < 1 || steps > child.localTimeConstraint)
      throw std::runtime_error(util::format(
          "loop '%s': scheduler returned %d steps for constraint %d",
          folded.name().c_str(), steps, child.localTimeConstraint));
    const NodeId super = body.findByName(folded.name());
    if (super == kNoNode)
      throw std::runtime_error("loop body '" + body.name() +
                               "' has no LoopSuper node named '" + folded.name() + "'");
    if (body.node(super).kind != OpKind::LoopSuper)
      throw std::runtime_error("node '" + folded.name() + "' is not a LoopSuper node");
    body.mutableNode(super).cycles = steps;
  }
  body.freeze();
  return body;
}

NodeId addLoopBookkeeping(Dfg& body, const std::string& counterSignal,
                          long bound) {
  NodeId counter = body.findByName(counterSignal);
  if (counter == kNoNode) {
    Node in;
    in.kind = OpKind::Input;
    in.name = counterSignal;
    counter = body.addNode(std::move(in));
  }
  Node boundNode;
  boundNode.kind = OpKind::Const;
  boundNode.constValue = bound;
  boundNode.name = counterSignal + "_bound";
  const NodeId boundId = body.addNode(std::move(boundNode));

  Node incNode;
  incNode.kind = OpKind::Inc;
  incNode.name = counterSignal + "_next";
  incNode.inputs = {counter};
  const NodeId incId = body.addNode(std::move(incNode));

  Node cmp;
  cmp.kind = OpKind::Lt;
  cmp.name = counterSignal + "_continue";
  cmp.inputs = {incId, boundId};
  const NodeId cmpId = body.addNode(std::move(cmp));
  body.markOutput(cmpId, counterSignal + "_continue");
  body.markOutput(incId, counterSignal + "_next");
  body.freeze();
  return cmpId;
}

ConeCut extractCone(const Dfg& g, const std::vector<NodeId>& seeds, int hops) {
  // BFS over operation edges (both directions) up to `hops`.
  std::vector<int> dist(g.size(), -1);
  std::deque<NodeId> work;
  for (NodeId s : seeds) {
    if (s >= g.size() || !isSchedulable(g.node(s).kind))
      throw std::invalid_argument(util::format(
          "extractCone: seed %u is not a schedulable operation",
          static_cast<unsigned>(s)));
    if (dist[s] == -1) {
      dist[s] = 0;
      work.push_back(s);
    }
  }
  while (!work.empty()) {
    const NodeId id = work.front();
    work.pop_front();
    if (dist[id] >= hops) continue;
    auto visit = [&](NodeId n) {
      if (dist[n] == -1) {
        dist[n] = dist[id] + 1;
        work.push_back(n);
      }
    };
    for (NodeId p : g.opPreds(id)) visit(p);
    for (NodeId s : g.opSuccs(id)) visit(s);
  }

  ConeCut cut;
  cut.cone.setName(g.name() + ".cone");
  std::map<NodeId, NodeId> toCone;  // full id -> cone id, incl. copied leaves
  std::vector<char> isFrontier(g.size(), 0);

  // A non-member producer referenced by a member: Input/Const leaves are
  // copied verbatim; operation results are pinned as frontier Input nodes so
  // the cone scheduler treats them as available at the window boundary.
  auto pin = [&](NodeId full) -> NodeId {
    auto it = toCone.find(full);
    if (it != toCone.end()) return it->second;
    const Node& src = g.node(full);
    Node copy;
    copy.name = src.name;
    copy.width = src.width;
    if (isSchedulable(src.kind)) {
      copy.kind = OpKind::Input;
      if (!isFrontier[full]) {
        isFrontier[full] = 1;
        cut.frontier.push_back(full);
      }
    } else {
      copy.kind = src.kind;
      copy.constValue = src.constValue;
    }
    const NodeId cid = cut.cone.addNode(std::move(copy));
    toCone.emplace(full, cid);
    cut.coneToFull.resize(cid + 1, kNoNode);
    cut.coneToFull[cid] = full;
    return cid;
  };

  // Walk in full-graph id order (topological) so pinned leaves are created
  // before their first member reader and the cone stays topologically sorted.
  for (NodeId id = 0; id < g.size(); ++id) {
    const Node& n = g.node(id);
    if (dist[id] == -1 || !isSchedulable(n.kind)) continue;
    Node copy = n;
    copy.id = kNoNode;
    copy.inputs.clear();
    for (NodeId in : n.inputs) {
      const Node& p = g.node(in);
      const bool member = dist[in] != -1 && isSchedulable(p.kind);
      copy.inputs.push_back(member ? toCone.at(in) : pin(in));
    }
    const NodeId cid = cut.cone.addNode(std::move(copy));
    toCone.emplace(id, cid);
    cut.toCone.emplace(id, cid);
    cut.coneToFull.resize(cid + 1, kNoNode);
    cut.coneToFull[cid] = id;
    ++cut.coneOps;
  }

  // Cone outputs: member results read outside the cone or exported by `g`.
  std::vector<char> exported(g.size(), 0);
  for (const auto& [id, ext] : g.outputs()) exported[id] = 1;
  for (const auto& [full, cid] : cut.toCone) {
    bool isOut = exported[full] != 0;
    for (NodeId s : g.succs(full)) {
      const bool memberReader =
          dist[s] != -1 && isSchedulable(g.node(s).kind);
      if (!memberReader) isOut = true;
    }
    if (isOut) cut.cone.markOutput(cid, g.node(full).name);
  }
  cut.cone.freeze();
  return cut;
}

}  // namespace mframe::dfg
