#include "dfg/transforms.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "dfg/builder.h"
#include "util/strings.h"

namespace mframe::dfg {

namespace {

/// Longest common prefix of two branch paths, in whole cond/arm pairs.
std::string commonBranchPrefix(const std::string& a, const std::string& b) {
  const auto pa = util::split(a, '.');
  const auto pb = util::split(b, '.');
  std::vector<std::string> common;
  for (std::size_t i = 0; i < std::min(pa.size(), pb.size()); ++i) {
    if (pa[i] != pb[i]) break;
    common.push_back(pa[i]);
  }
  // Keep whole (cond, arm) pairs only.
  if (common.size() % 2 != 0) common.pop_back();
  return util::join(common, ".");
}

bool sameOperands(const Node& a, const Node& b) {
  if (a.inputs == b.inputs) return true;
  if (isCommutative(a.kind) && a.inputs.size() == 2 &&
      a.inputs[0] == b.inputs[1] && a.inputs[1] == b.inputs[0])
    return true;
  return false;
}

/// Rebuild `g` dropping nodes mapped to a representative and rewriting input
/// references through the mapping.
Dfg rebuildMerged(const Dfg& g, const std::map<NodeId, NodeId>& replaceBy,
                  const std::map<NodeId, std::string>& newBranch) {
  Dfg out(g.name());
  std::vector<NodeId> newId(g.size(), kNoNode);
  for (const Node& n : g.nodes()) {
    if (replaceBy.count(n.id)) continue;  // dropped duplicate
    Node copy = n;
    copy.inputs.clear();
    for (NodeId in : n.inputs) {
      NodeId target = in;
      auto it = replaceBy.find(target);
      if (it != replaceBy.end()) target = it->second;
      copy.inputs.push_back(newId[target]);
    }
    auto bp = newBranch.find(n.id);
    if (bp != newBranch.end()) copy.branchPath = bp->second;
    newId[n.id] = out.addNode(std::move(copy));
  }
  for (const auto& [id, ext] : g.outputs()) {
    NodeId target = id;
    auto it = replaceBy.find(target);
    if (it != replaceBy.end()) target = it->second;
    out.markOutput(newId[target], ext);
  }
  return out;
}

}  // namespace

std::size_t mergeSharedBranchOps(Dfg& g) {
  std::size_t removedTotal = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    std::map<NodeId, NodeId> replaceBy;   // duplicate -> survivor
    std::map<NodeId, std::string> newBranch;
    const auto ops = g.operations();
    for (std::size_t i = 0; i < ops.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < ops.size(); ++j) {
        const Node& a = g.node(ops[i]);
        const Node& b = g.node(ops[j]);
        if (a.kind != b.kind || a.cycles != b.cycles) continue;
        if (!g.mutuallyExclusive(a.id, b.id)) continue;
        if (!sameOperands(a, b)) continue;
        // Merge b into a; hoist a to the arms' common conditional prefix so
        // the surviving instance executes on either path.
        replaceBy[b.id] = a.id;
        newBranch[a.id] = commonBranchPrefix(a.branchPath, b.branchPath);
        changed = true;
        ++removedTotal;
        break;  // rebuild, then rescan — operand identity shifts after merge
      }
    }
    if (changed) g = rebuildMerged(g, replaceBy, newBranch);
  }
  return removedTotal;
}

Dfg foldLoopNest(const LoopNest& nest, const BodyScheduler& sched) {
  Dfg body = nest.body;

  // Innermost first: fold every child, then record its achieved step count
  // on the matching LoopSuper node of this body.
  for (const LoopNest& child : nest.children) {
    const Dfg folded = foldLoopNest(child, sched);
    const int steps = sched(folded, child.localTimeConstraint);
    if (steps < 1 || steps > child.localTimeConstraint)
      throw std::runtime_error(util::format(
          "loop '%s': scheduler returned %d steps for constraint %d",
          folded.name().c_str(), steps, child.localTimeConstraint));
    const NodeId super = body.findByName(folded.name());
    if (super == kNoNode)
      throw std::runtime_error("loop body '" + body.name() +
                               "' has no LoopSuper node named '" + folded.name() + "'");
    if (body.node(super).kind != OpKind::LoopSuper)
      throw std::runtime_error("node '" + folded.name() + "' is not a LoopSuper node");
    body.node(super).cycles = steps;
  }
  return body;
}

NodeId addLoopBookkeeping(Dfg& body, const std::string& counterSignal,
                          long bound) {
  NodeId counter = body.findByName(counterSignal);
  if (counter == kNoNode) {
    Node in;
    in.kind = OpKind::Input;
    in.name = counterSignal;
    counter = body.addNode(std::move(in));
  }
  Node boundNode;
  boundNode.kind = OpKind::Const;
  boundNode.constValue = bound;
  boundNode.name = counterSignal + "_bound";
  const NodeId boundId = body.addNode(std::move(boundNode));

  Node incNode;
  incNode.kind = OpKind::Inc;
  incNode.name = counterSignal + "_next";
  incNode.inputs = {counter};
  const NodeId incId = body.addNode(std::move(incNode));

  Node cmp;
  cmp.kind = OpKind::Lt;
  cmp.name = counterSignal + "_continue";
  cmp.inputs = {incId, boundId};
  const NodeId cmpId = body.addNode(std::move(cmp));
  body.markOutput(cmpId, counterSignal + "_continue");
  body.markOutput(incId, counterSignal + "_next");
  return cmpId;
}

}  // namespace mframe::dfg
