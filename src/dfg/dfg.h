// The data-flow graph (DFG) intermediate representation.
//
// A Dfg is a DAG of operations. Each node produces one named signal; data
// edges are the `inputs` lists. Input and Const nodes anchor primary inputs
// and literals; any node can be marked a primary output. Nodes carry the
// attributes the Section-5 extensions need: a cycle count (multicycle
// operations), an optional combinational delay override (chaining) and a
// branch path encoding conditional nesting (mutual exclusion).
//
// Storage is arena-backed structure-of-arrays: node attributes live in
// parallel flat arrays and all adjacency (successors, schedulable
// predecessors/successors) is CSR — one offset array plus one flat edge
// array each — so the scheduler and dataflow inner loops walk contiguous
// memory and the accessors return non-allocating spans. The derived arrays
// are built by freeze(): Builder::build() and dfg::parse() freeze before
// handing the graph out, and any mutation (addNode, mutableNode) marks the
// graph unfrozen again. Adjacency accessors on an unfrozen graph throw —
// there is deliberately no lazy rebuild, because a hidden mutable cache
// under a const API is a data race the moment two threads share a cold
// graph (explore::parallelFor did exactly that).
//
// CSR invariant: node ids are topological (validate() rejects any input id
// >= the node's own id), so edge arrays are acyclic by construction and a
// single id-order sweep builds every derived index.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "dfg/op.h"

namespace mframe::dfg {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// One DFG node. Plain data; invariants are maintained by Dfg/Builder.
struct Node {
  NodeId id = kNoNode;
  OpKind kind = OpKind::Input;
  std::string name;             ///< name of the produced signal (unique)
  std::vector<NodeId> inputs;   ///< data predecessors, in operand order

  int cycles = 1;               ///< execution time in control steps (>= 1)
  double delayNs = -1.0;        ///< combinational delay; < 0 => defaultDelayNs(kind)

  /// Conditional-nesting path, e.g. "" (unconditional), "c1.t", "c1.e.c2.t".
  /// Elements alternate conditional-id and arm-id separated by '.'; two nodes
  /// are mutually exclusive iff their paths first differ at an arm element
  /// under the same conditional (see Dfg::mutuallyExclusive).
  std::string branchPath;

  long constValue = 0;          ///< literal value for Const nodes

  /// Declared bit width of the produced signal; 0 = unspecified (the
  /// machine word width applies). On Input nodes this bounds the value range
  /// the dataflow analyses assume; on operations it pins the result width.
  int width = 0;

  double effectiveDelayNs() const {
    return delayNs >= 0 ? delayNs : defaultDelayNs(kind);
  }
};

/// Immutable-after-freeze DAG of operations. Use dfg::Builder to construct,
/// or dfg::parse for the textual format — both freeze the graph before
/// returning it. Code that mutates a graph directly (transforms, loop
/// bookkeeping) must call freeze() again before using adjacency accessors.
class Dfg {
 public:
  Dfg() = default;
  explicit Dfg(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void setName(std::string n) { name_ = std::move(n); }

  /// Append a node; returns its id. The node's `inputs` must reference
  /// existing nodes (enforced in validate()). Marks the graph unfrozen.
  NodeId addNode(Node n);

  std::size_t size() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_[id]; }
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Mutable access to a node. Marks the graph unfrozen: the caller must
  /// freeze() again before adjacency or index accessors are usable.
  Node& mutableNode(NodeId id) {
    frozen_ = false;
    return nodes_[id];
  }

  /// Mark `id` as a primary output under the given external name.
  void markOutput(NodeId id, std::string externalName);
  const std::vector<std::pair<NodeId, std::string>>& outputs() const { return outputs_; }

  /// Build every derived index (CSR adjacency, SoA attribute mirrors, name
  /// table, interned branch scopes) in one id-order sweep. Idempotent on an
  /// already-frozen graph. O(nodes + edges).
  void freeze();
  bool frozen() const { return frozen_; }

  /// Data predecessors of `id` (its inputs). Convenience accessor; total.
  const std::vector<NodeId>& preds(NodeId id) const { return nodes_[id].inputs; }

  /// Data successors of `id` (consumers of its signal), in consumer id
  /// order, duplicate edges preserved. Frozen graphs only.
  std::span<const NodeId> succs(NodeId id) const {
    if (!frozen_) throwUnfrozen("succs");
    return {succEdges_.data() + succOff_[id], succOff_[id + 1] - succOff_[id]};
  }

  /// Schedulable (operation) predecessors/successors only — Input/Const
  /// nodes filtered out. These define the precedence constraints the
  /// schedulers enforce. Non-allocating views; frozen graphs only.
  std::span<const NodeId> opPreds(NodeId id) const {
    if (!frozen_) throwUnfrozen("opPreds");
    return {predEdges_.data() + predOff_[id], predOff_[id + 1] - predOff_[id]};
  }
  std::span<const NodeId> opSuccs(NodeId id) const {
    if (!frozen_) throwUnfrozen("opSuccs");
    return {opSuccEdges_.data() + opSuccOff_[id],
            opSuccOff_[id + 1] - opSuccOff_[id]};
  }

  /// Ids of all schedulable nodes, in insertion order. Frozen graphs only.
  std::span<const NodeId> operations() const {
    if (!frozen_) throwUnfrozen("operations");
    return operations_;
  }

  /// Count of schedulable nodes of the given FU type. Frozen graphs only.
  std::size_t countOfType(FuType t) const {
    if (!frozen_) throwUnfrozen("countOfType");
    return typeCount_[static_cast<std::size_t>(t)];
  }

  /// SoA attribute mirrors for the hot loops: one cache line of ints beats
  /// striding through 100+-byte Node records. Frozen graphs only.
  OpKind kindOf(NodeId id) const { return kind_[id]; }
  int cyclesOf(NodeId id) const { return cycles_[id]; }
  int widthOf(NodeId id) const { return width_[id]; }
  /// Resolved combinational delay (delayNs or the kind default).
  double delayOf(NodeId id) const { return delay_[id]; }

  /// A topological order over all nodes (inputs first). Empty optional if
  /// the graph has a cycle. Total: works on frozen and unfrozen graphs
  /// (validate() relies on it before the first freeze).
  std::optional<std::vector<NodeId>> topoOrder() const;

  /// True if a and b can never execute in the same run: their branch paths
  /// diverge into different arms of the same conditional (Section 5.1).
  /// Total; frozen graphs compare interned component ids (no splitting).
  bool mutuallyExclusive(NodeId a, NodeId b) const;

  /// Find a node by signal name; kNoNode if absent. Total; frozen graphs
  /// answer from a hash table, unfrozen graphs scan.
  NodeId findByName(std::string_view name) const;

  /// Full structural validation: ids consistent, names unique, input refs in
  /// range and acyclic, arities match kinds, cycles >= 1. Returns an error
  /// description, or std::nullopt when the graph is well-formed. Total.
  std::optional<std::string> validate() const;

 private:
  [[noreturn]] static void throwUnfrozen(const char* accessor);

  struct NameHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<std::pair<NodeId, std::string>> outputs_;

  bool frozen_ = false;

  // CSR adjacency (offsets are size()+1; edge arrays are flat).
  std::vector<std::uint32_t> succOff_;
  std::vector<NodeId> succEdges_;
  std::vector<std::uint32_t> predOff_;     // schedulable preds
  std::vector<NodeId> predEdges_;
  std::vector<std::uint32_t> opSuccOff_;   // schedulable succs
  std::vector<NodeId> opSuccEdges_;

  // SoA attribute mirrors.
  std::vector<OpKind> kind_;
  std::vector<int> cycles_;
  std::vector<int> width_;
  std::vector<double> delay_;              // effectiveDelayNs, resolved

  std::vector<NodeId> operations_;
  std::size_t typeCount_[kNumFuTypes] = {};

  // Branch scopes, interned: scope_[id] indexes scopeOff_/scopeComp_, a CSR
  // of per-path component ids; equal paths share one scope id.
  std::vector<std::uint32_t> scope_;
  std::vector<std::uint32_t> scopeOff_;
  std::vector<std::uint32_t> scopeComp_;

  std::unordered_map<std::string, NodeId, NameHash, std::equal_to<>> nameIndex_;
};

/// Two branch paths are mutually exclusive iff they first differ at an arm
/// component of the same conditional. Exposed for tests and the transforms.
bool pathsMutuallyExclusive(std::string_view a, std::string_view b);

}  // namespace mframe::dfg
