// The data-flow graph (DFG) intermediate representation.
//
// A Dfg is a DAG of operations. Each node produces one named signal; data
// edges are the `inputs` lists. Input and Const nodes anchor primary inputs
// and literals; any node can be marked a primary output. Nodes carry the
// attributes the Section-5 extensions need: a cycle count (multicycle
// operations), an optional combinational delay override (chaining) and a
// branch path encoding conditional nesting (mutual exclusion).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "dfg/op.h"

namespace mframe::dfg {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// One DFG node. Plain data; invariants are maintained by Dfg/Builder.
struct Node {
  NodeId id = kNoNode;
  OpKind kind = OpKind::Input;
  std::string name;             ///< name of the produced signal (unique)
  std::vector<NodeId> inputs;   ///< data predecessors, in operand order

  int cycles = 1;               ///< execution time in control steps (>= 1)
  double delayNs = -1.0;        ///< combinational delay; < 0 => defaultDelayNs(kind)

  /// Conditional-nesting path, e.g. "" (unconditional), "c1.t", "c1.e.c2.t".
  /// Elements alternate conditional-id and arm-id separated by '.'; two nodes
  /// are mutually exclusive iff their paths first differ at an arm element
  /// under the same conditional (see Dfg::mutuallyExclusive).
  std::string branchPath;

  long constValue = 0;          ///< literal value for Const nodes

  /// Declared bit width of the produced signal; 0 = unspecified (the
  /// machine word width applies). On Input nodes this bounds the value range
  /// the dataflow analyses assume; on operations it pins the result width.
  int width = 0;

  double effectiveDelayNs() const {
    return delayNs >= 0 ? delayNs : defaultDelayNs(kind);
  }
};

/// Immutable-after-build DAG of operations. Use dfg::Builder to construct,
/// or dfg::parse for the textual format.
class Dfg {
 public:
  Dfg() = default;
  explicit Dfg(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void setName(std::string n) { name_ = std::move(n); }

  /// Append a node; returns its id. The node's `inputs` must reference
  /// existing nodes (enforced in validate()). Invalidates adjacency caches.
  NodeId addNode(Node n);

  std::size_t size() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_[id]; }
  Node& node(NodeId id) { return nodes_[id]; }
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Mark `id` as a primary output under the given external name.
  void markOutput(NodeId id, std::string externalName);
  const std::vector<std::pair<NodeId, std::string>>& outputs() const { return outputs_; }

  /// Data predecessors of `id` (its inputs). Convenience accessor.
  const std::vector<NodeId>& preds(NodeId id) const { return nodes_[id].inputs; }

  /// Data successors of `id` (consumers of its signal). Computed on demand
  /// and cached; any addNode() invalidates the cache.
  const std::vector<NodeId>& succs(NodeId id) const;

  /// Schedulable (operation) predecessors/successors only — Input/Const
  /// nodes filtered out. These define the precedence constraints the
  /// schedulers enforce.
  std::vector<NodeId> opPreds(NodeId id) const;
  std::vector<NodeId> opSuccs(NodeId id) const;

  /// Ids of all schedulable nodes, in insertion order.
  std::vector<NodeId> operations() const;

  /// Count of schedulable nodes of the given FU type.
  std::size_t countOfType(FuType t) const;

  /// A topological order over all nodes (inputs first). Empty optional if
  /// the graph has a cycle.
  std::optional<std::vector<NodeId>> topoOrder() const;

  /// True if a and b can never execute in the same run: their branch paths
  /// diverge into different arms of the same conditional (Section 5.1).
  bool mutuallyExclusive(NodeId a, NodeId b) const;

  /// Find a node by signal name; kNoNode if absent.
  NodeId findByName(std::string_view name) const;

  /// Full structural validation: ids consistent, names unique, input refs in
  /// range and acyclic, arities match kinds, cycles >= 1. Returns an error
  /// description, or std::nullopt when the graph is well-formed.
  std::optional<std::string> validate() const;

 private:
  void ensureSuccs() const;

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<std::pair<NodeId, std::string>> outputs_;
  mutable std::vector<std::vector<NodeId>> succCache_;
  mutable bool succValid_ = false;
};

/// Two branch paths are mutually exclusive iff they first differ at an arm
/// component of the same conditional. Exposed for tests and the transforms.
bool pathsMutuallyExclusive(std::string_view a, std::string_view b);

}  // namespace mframe::dfg
