#include "dfg/op.h"

#include <array>
#include <cassert>

namespace mframe::dfg {

namespace {

struct KindInfo {
  OpKind kind;
  std::string_view name;
  std::string_view symbol;
  int arity;
  bool commutative;
  FuType fu;
  double delayNs;
};

// Delays are representative of a ~100ns-cycle 1989 standard-cell process
// (see DESIGN.md, substitutions): a 16-bit ripple add fits in ~40ns, a
// combinational 16x16 multiply needs ~160ns (hence the 2-cycle multipliers in
// the paper's examples 5 and 6), logic and comparison are fast.
constexpr std::array<KindInfo, 21> kKinds{{
    {OpKind::Input, "input", "in", 0, false, FuType::Adder, 0.0},
    {OpKind::Const, "const", "#", 0, false, FuType::Adder, 0.0},
    {OpKind::Add, "add", "+", 2, true, FuType::Adder, 40.0},
    {OpKind::Sub, "sub", "-", 2, false, FuType::Subtractor, 40.0},
    {OpKind::Mul, "mul", "*", 2, true, FuType::Multiplier, 160.0},
    {OpKind::Div, "div", "/", 2, false, FuType::Divider, 200.0},
    {OpKind::Inc, "inc", "++", 1, false, FuType::Incrementer, 25.0},
    {OpKind::Dec, "dec", "--", 1, false, FuType::Decrementer, 25.0},
    {OpKind::And, "and", "&", 2, true, FuType::AndGate, 10.0},
    {OpKind::Or, "or", "|", 2, true, FuType::OrGate, 10.0},
    {OpKind::Xor, "xor", "^", 2, true, FuType::XorGate, 12.0},
    {OpKind::Not, "not", "!", 1, false, FuType::NotGate, 5.0},
    {OpKind::Shl, "shl", "<<", 2, false, FuType::Shifter, 20.0},
    {OpKind::Shr, "shr", ">>", 2, false, FuType::Shifter, 20.0},
    {OpKind::Eq, "eq", "=", 2, true, FuType::Comparator, 30.0},
    {OpKind::Ne, "ne", "!=", 2, true, FuType::Comparator, 30.0},
    {OpKind::Lt, "lt", "<", 2, false, FuType::Comparator, 30.0},
    {OpKind::Gt, "gt", ">", 2, false, FuType::Comparator, 30.0},
    {OpKind::Le, "le", "<=", 2, false, FuType::Comparator, 30.0},
    {OpKind::Ge, "ge", ">=", 2, false, FuType::Comparator, 30.0},
    {OpKind::LoopSuper, "loop", "@", 0, false, FuType::LoopUnit, 0.0},
}};

const KindInfo& info(OpKind k) {
  for (const auto& i : kKinds)
    if (i.kind == k) return i;
  assert(false && "unknown OpKind");
  return kKinds[0];
}

}  // namespace

int arity(OpKind k) { return info(k).arity; }
bool isCommutative(OpKind k) { return info(k).commutative; }

bool isSchedulable(OpKind k) {
  return k != OpKind::Input && k != OpKind::Const;
}

FuType fuTypeOf(OpKind k) {
  assert(isSchedulable(k));
  return info(k).fu;
}

double defaultDelayNs(OpKind k) { return info(k).delayNs; }

std::string_view kindName(OpKind k) { return info(k).name; }
std::string_view kindSymbol(OpKind k) { return info(k).symbol; }

std::string_view fuTypeName(FuType t) {
  switch (t) {
    case FuType::Adder: return "adder";
    case FuType::Subtractor: return "subtractor";
    case FuType::Multiplier: return "multiplier";
    case FuType::Divider: return "divider";
    case FuType::Incrementer: return "incrementer";
    case FuType::Decrementer: return "decrementer";
    case FuType::AndGate: return "and";
    case FuType::OrGate: return "or";
    case FuType::XorGate: return "xor";
    case FuType::NotGate: return "not";
    case FuType::Shifter: return "shifter";
    case FuType::Comparator: return "comparator";
    case FuType::LoopUnit: return "loop-unit";
  }
  return "?";
}

std::string_view fuTypeSymbol(FuType t) {
  switch (t) {
    case FuType::Adder: return "+";
    case FuType::Subtractor: return "-";
    case FuType::Multiplier: return "*";
    case FuType::Divider: return "/";
    case FuType::Incrementer: return "++";
    case FuType::Decrementer: return "--";
    case FuType::AndGate: return "&";
    case FuType::OrGate: return "|";
    case FuType::XorGate: return "^";
    case FuType::NotGate: return "!";
    case FuType::Shifter: return "<>";
    case FuType::Comparator: return "<";
    case FuType::LoopUnit: return "@";
  }
  return "?";
}

bool parseFuType(std::string_view text, FuType& out) {
  struct Alias {
    std::string_view alias;
    FuType type;
  };
  static constexpr Alias kAliases[] = {
      {"add", FuType::Adder},        {"sub", FuType::Subtractor},
      {"mul", FuType::Multiplier},   {"div", FuType::Divider},
      {"inc", FuType::Incrementer},  {"dec", FuType::Decrementer},
      {"and", FuType::AndGate},      {"or", FuType::OrGate},
      {"xor", FuType::XorGate},      {"not", FuType::NotGate},
      {"shift", FuType::Shifter},    {"cmp", FuType::Comparator},
      {"loop", FuType::LoopUnit},
  };
  for (std::size_t t = 0; t < kNumFuTypes; ++t) {
    const auto ft = static_cast<FuType>(t);
    if (text == fuTypeName(ft) || text == fuTypeSymbol(ft)) {
      out = ft;
      return true;
    }
  }
  for (const Alias& a : kAliases) {
    if (text == a.alias) {
      out = a.type;
      return true;
    }
  }
  return false;
}

bool parseKind(std::string_view text, OpKind& out) {
  for (const auto& i : kKinds) {
    if (text == i.name || text == i.symbol) {
      out = i.kind;
      return true;
    }
  }
  return false;
}

}  // namespace mframe::dfg
