// Fluent construction API for DFGs.
//
//   Builder b("diffeq");
//   auto x  = b.input("x");
//   auto dx = b.input("dx");
//   auto t1 = b.mul(x, dx, "t1");
//   b.output(t1, "xo");
//   Dfg g = std::move(b).build();   // validates; throws on malformed graphs
#pragma once

#include <stdexcept>
#include <string>

#include "dfg/dfg.h"

namespace mframe::dfg {

/// Thrown by Builder::build() (and parse()) on malformed graphs.
class DfgError : public std::runtime_error {
 public:
  explicit DfgError(const std::string& what) : std::runtime_error(what) {}
};

class Builder {
 public:
  explicit Builder(std::string name) : g_(std::move(name)) {}

  /// `width` declares the signal's bit width (0 = unspecified; the dataflow
  /// analyses then assume the machine word width).
  NodeId input(std::string name, int width = 0);
  NodeId constant(long value, std::string name);

  /// Pin the declared bit width of an already-created node.
  void setWidth(NodeId id, int width);

  /// Generic operation node. `cycles`/`delayNs` override the defaults; the
  /// current branch scope (see pushBranch) is recorded on the node.
  NodeId op(OpKind kind, std::vector<NodeId> inputs, std::string name,
            int cycles = 1, double delayNs = -1.0);

  // Arity-2 conveniences.
  NodeId add(NodeId a, NodeId b, std::string name) { return op(OpKind::Add, {a, b}, std::move(name)); }
  NodeId sub(NodeId a, NodeId b, std::string name) { return op(OpKind::Sub, {a, b}, std::move(name)); }
  NodeId mul(NodeId a, NodeId b, std::string name, int cycles = 1) {
    return op(OpKind::Mul, {a, b}, std::move(name), cycles);
  }
  NodeId div(NodeId a, NodeId b, std::string name) { return op(OpKind::Div, {a, b}, std::move(name)); }
  NodeId band(NodeId a, NodeId b, std::string name) { return op(OpKind::And, {a, b}, std::move(name)); }
  NodeId bor(NodeId a, NodeId b, std::string name) { return op(OpKind::Or, {a, b}, std::move(name)); }
  NodeId bxor(NodeId a, NodeId b, std::string name) { return op(OpKind::Xor, {a, b}, std::move(name)); }
  NodeId lt(NodeId a, NodeId b, std::string name) { return op(OpKind::Lt, {a, b}, std::move(name)); }
  NodeId gt(NodeId a, NodeId b, std::string name) { return op(OpKind::Gt, {a, b}, std::move(name)); }
  NodeId eq(NodeId a, NodeId b, std::string name) { return op(OpKind::Eq, {a, b}, std::move(name)); }
  NodeId inc(NodeId a, std::string name) { return op(OpKind::Inc, {a}, std::move(name)); }
  NodeId bnot(NodeId a, std::string name) { return op(OpKind::Not, {a}, std::move(name)); }

  void output(NodeId id, std::string externalName) { g_.markOutput(id, std::move(externalName)); }

  /// Enter / leave a conditional arm. Nodes created inside carry the nested
  /// branch path, e.g. pushBranch("c1","t") ... popBranch(). Ops in sibling
  /// arms of the same conditional become mutually exclusive (Section 5.1).
  void pushBranch(const std::string& condId, const std::string& armId);
  void popBranch();

  /// Validate and hand out the graph. The builder is consumed.
  Dfg build() &&;

 private:
  Dfg g_;
  std::string branchScope_;  // current path, "" at top level
};

}  // namespace mframe::dfg
