// Graph transforms backing the Section-5 synthesis features that reshape the
// DFG before scheduling: conditional shared-operation merging (Section 5.1)
// and nested-loop folding (Section 5.2) — plus the critical-subgraph cone
// extractor the feedback-guided tune loop re-schedules in isolation.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "dfg/dfg.h"

namespace mframe::dfg {

/// Section 5.1: operations duplicated across mutually exclusive branches are
/// collapsed to a single instance ("we remove all of the operations which are
/// shared between branches except one of them"). Two operations are shared
/// when they have the same kind and the same operands (order-insensitive for
/// commutative kinds) and live in different arms of the same conditional.
/// The surviving instance is hoisted to the arms' common branch prefix.
/// Runs to a fixpoint; returns the number of operations removed.
std::size_t mergeSharedBranchOps(Dfg& g);

/// One loop level of a nested-loop description (Section 5.2). `body` is the
/// loop-body DFG, already containing the loop bookkeeping operations (see
/// addLoopBookkeeping) and one LoopSuper placeholder node per child loop.
/// Children are matched to LoopSuper nodes by name.
struct LoopNest {
  Dfg body;
  int localTimeConstraint = 0;  ///< control steps allowed for one iteration
  std::vector<LoopNest> children;
};

/// Callback used by foldLoopNest to schedule one loop body under its local
/// time constraint; returns the achieved number of control steps (<= the
/// constraint) or throws if infeasible. In practice this is a thin wrapper
/// over core::runMfs.
using BodyScheduler = std::function<int(const Dfg& body, int timeConstraint)>;

/// Section 5.2: "operations of the inner-most loop are scheduled first,
/// relative to the local time constraint; the entire loop is then treated as
/// a single operation with an execution time equal to the loop's local time
/// constraint." Recursively schedules children innermost-first, assigns each
/// LoopSuper node cycles = the child's achieved step count, and returns the
/// top body with those cycle counts filled in.
Dfg foldLoopNest(const LoopNest& nest, const BodyScheduler& sched);

/// Section 5.2: "the user should specify a constraint on the loop iteration
/// time; this can be done by adding two more operations (increment and
/// comparison) into the DFG corresponding to the body of the loop." Appends
/// counter-increment and bound-comparison operations to `body`.
/// Returns the comparison node id (the loop-exit condition).
NodeId addLoopBookkeeping(Dfg& body, const std::string& counterSignal,
                          long bound);

/// The K-hop critical subgraph around a set of seed operations, cut out as a
/// standalone DFG that can be re-scheduled in isolation (`mframe tune`).
struct ConeCut {
  Dfg cone;                        ///< the extracted subgraph
  /// cone node id -> full-graph node id, for every cone node (members keep
  /// their attributes; pinned frontier inputs map to the producer they stand
  /// in for).
  std::vector<NodeId> coneToFull;
  /// full-graph node id -> cone node id for cone members; absent otherwise.
  std::map<NodeId, NodeId> toCone;
  /// Full-graph *operations* outside the cone whose results feed it. Each is
  /// pinned as an Input node of the cone — a boundary constraint: the stitch
  /// must place every cone consumer after its frontier producer finishes.
  std::vector<NodeId> frontier;
  std::size_t coneOps = 0;         ///< schedulable operations in the cone
};

/// Cut the subgraph of operations within `hops` dependence hops (over
/// operation edges, both directions) of any seed. Input/Const nodes feeding
/// members are copied; member results consumed outside the cone — or marked
/// as primary outputs of `g` — become cone outputs. Node order (hence the
/// cone's topological id order) follows the full graph, so the extraction is
/// deterministic. Seeds must be schedulable operations of `g`.
ConeCut extractCone(const Dfg& g, const std::vector<NodeId>& seeds, int hops);

}  // namespace mframe::dfg
