#include "dfg/dot.h"

#include <set>

#include "util/strings.h"

namespace mframe::dfg {

std::string toDot(const Dfg& g, const std::map<NodeId, int>& stepOf) {
  std::string out = "digraph \"" + g.name() + "\" {\n  rankdir=TB;\n";
  for (const Node& n : g.nodes()) {
    // Const nodes show their literal value instead of the bare '#' symbol;
    // declared widths ride along on any node so analyzed DFGs stay readable.
    std::string label = n.name + "\\n";
    if (n.kind == OpKind::Const)
      label += util::format("=%ld", n.constValue);
    else
      label += std::string(kindSymbol(n.kind));
    if (n.width != 0) label += util::format(" [%d]", n.width);
    std::string shape = "ellipse";
    if (n.kind == OpKind::Input) shape = "invtriangle";
    if (n.kind == OpKind::Const) shape = "box";
    auto it = stepOf.find(n.id);
    if (it != stepOf.end()) label += util::format("\\n@%d", it->second);
    out += util::format("  n%u [label=\"%s\", shape=%s];\n", n.id, label.c_str(),
                        shape.c_str());
  }
  for (const Node& n : g.nodes())
    for (NodeId in : n.inputs)
      out += util::format("  n%u -> n%u;\n", in, n.id);

  // Group scheduled nodes by control step so the layout mirrors the schedule.
  std::set<int> steps;
  for (const auto& [id, s] : stepOf) steps.insert(s);
  for (int s : steps) {
    out += "  { rank=same;";
    for (const auto& [id, st] : stepOf)
      if (st == s) out += util::format(" n%u;", id);
    out += " }\n";
  }
  out += "}\n";
  return out;
}

}  // namespace mframe::dfg
