// Graphviz DOT export for DFGs, optionally annotated with a schedule.
#pragma once

#include <map>
#include <string>

#include "dfg/dfg.h"

namespace mframe::dfg {

/// Render the graph in DOT. When `stepOf` is non-empty, nodes are ranked by
/// control step (same-step operations share a rank) and labeled "name@step".
std::string toDot(const Dfg& g, const std::map<NodeId, int>& stepOf = {});

}  // namespace mframe::dfg
