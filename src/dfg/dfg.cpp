#include "dfg/dfg.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "trace/trace.h"
#include "util/strings.h"

namespace mframe::dfg {

NodeId Dfg::addNode(Node n) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  n.id = id;
  nodes_.push_back(std::move(n));
  frozen_ = false;
  return id;
}

void Dfg::markOutput(NodeId id, std::string externalName) {
  outputs_.emplace_back(id, std::move(externalName));
}

void Dfg::throwUnfrozen(const char* accessor) {
  throw std::logic_error(std::string("Dfg::") + accessor +
                         " on an unfrozen graph — call freeze() after "
                         "mutating (Builder::build and dfg::parse freeze "
                         "for you)");
}

void Dfg::freeze() {
  if (frozen_) return;
  const std::size_t n = nodes_.size();

  // SoA attribute mirrors.
  kind_.resize(n);
  cycles_.resize(n);
  width_.resize(n);
  delay_.resize(n);
  for (const Node& nd : nodes_) {
    kind_[nd.id] = nd.kind;
    cycles_[nd.id] = nd.cycles;
    width_[nd.id] = nd.width;
    delay_[nd.id] = nd.effectiveDelayNs();
  }

  // Successor CSR. Filling in id order keeps every successor list sorted by
  // consumer id with duplicate edges preserved (a node listed twice among a
  // consumer's inputs appears twice), which topoOrder's indegree accounting
  // relies on. Inputs out of range (pre-validate graphs) are skipped here
  // and diagnosed by validate().
  succOff_.assign(n + 1, 0);
  for (const Node& nd : nodes_)
    for (NodeId in : nd.inputs)
      if (in < n) ++succOff_[in + 1];
  for (std::size_t i = 0; i < n; ++i) succOff_[i + 1] += succOff_[i];
  succEdges_.resize(succOff_[n]);
  {
    std::vector<std::uint32_t> cursor(succOff_.begin(), succOff_.end() - 1);
    for (const Node& nd : nodes_)
      for (NodeId in : nd.inputs)
        if (in < n) succEdges_[cursor[in]++] = nd.id;
  }

  // Schedulable-predecessor CSR, operand order preserved.
  predOff_.assign(n + 1, 0);
  for (const Node& nd : nodes_)
    for (NodeId in : nd.inputs)
      if (in < n && isSchedulable(kind_[in])) ++predOff_[nd.id + 1];
  for (std::size_t i = 0; i < n; ++i) predOff_[i + 1] += predOff_[i];
  predEdges_.resize(predOff_[n]);
  {
    std::size_t at = 0;
    for (const Node& nd : nodes_)
      for (NodeId in : nd.inputs)
        if (in < n && isSchedulable(kind_[in])) predEdges_[at++] = in;
  }

  // Schedulable-successor CSR: the successor lists filtered in place.
  opSuccOff_.assign(n + 1, 0);
  for (std::size_t id = 0; id < n; ++id)
    for (std::uint32_t e = succOff_[id]; e < succOff_[id + 1]; ++e)
      if (isSchedulable(kind_[succEdges_[e]])) ++opSuccOff_[id + 1];
  for (std::size_t i = 0; i < n; ++i) opSuccOff_[i + 1] += opSuccOff_[i];
  opSuccEdges_.resize(opSuccOff_[n]);
  {
    std::size_t at = 0;
    for (std::size_t id = 0; id < n; ++id)
      for (std::uint32_t e = succOff_[id]; e < succOff_[id + 1]; ++e)
        if (isSchedulable(kind_[succEdges_[e]])) opSuccEdges_[at++] = succEdges_[e];
  }

  operations_.clear();
  std::fill(std::begin(typeCount_), std::end(typeCount_), 0);
  for (const Node& nd : nodes_)
    if (isSchedulable(nd.kind)) {
      operations_.push_back(nd.id);
      ++typeCount_[static_cast<std::size_t>(fuTypeOf(nd.kind))];
    }

  nameIndex_.clear();
  nameIndex_.reserve(n);
  for (const Node& nd : nodes_) nameIndex_.try_emplace(nd.name, nd.id);

  // Intern branch paths: equal paths share a scope id; each unique path is
  // split once into component ids so mutuallyExclusive never touches a
  // string again.
  scope_.resize(n);
  scopeOff_.assign(1, 0);
  scopeComp_.clear();
  std::unordered_map<std::string, std::uint32_t> pathIds;
  std::unordered_map<std::string, std::uint32_t> compIds;
  for (const Node& nd : nodes_) {
    const auto next = static_cast<std::uint32_t>(scopeOff_.size() - 1);
    auto [it, inserted] = pathIds.try_emplace(nd.branchPath, next);
    if (inserted) {
      for (const std::string& comp : util::split(nd.branchPath, '.')) {
        const auto cid = static_cast<std::uint32_t>(compIds.size());
        scopeComp_.push_back(compIds.try_emplace(comp, cid).first->second);
      }
      scopeOff_.push_back(static_cast<std::uint32_t>(scopeComp_.size()));
    }
    scope_[nd.id] = it->second;
  }

  frozen_ = true;
  trace::bump(trace::Counter::DfgFreezes);
  trace::bump(trace::Counter::DfgCsrEdges,
              static_cast<std::uint64_t>(succEdges_.size()) +
                  predEdges_.size() + opSuccEdges_.size());
}

std::optional<std::vector<NodeId>> Dfg::topoOrder() const {
  const std::size_t n = nodes_.size();
  std::vector<int> indeg(n, 0);
  for (const Node& nd : nodes_)
    indeg[nd.id] = static_cast<int>(nd.inputs.size());

  std::vector<NodeId> ready;
  for (NodeId id = 0; id < n; ++id)
    if (indeg[id] == 0) ready.push_back(id);

  std::vector<NodeId> order;
  order.reserve(n);
  if (frozen_) {
    while (!ready.empty()) {
      const NodeId id = ready.back();
      ready.pop_back();
      order.push_back(id);
      for (NodeId s : succs(id))
        if (--indeg[s] == 0) ready.push_back(s);
    }
  } else {
    // Pre-freeze path (validate() runs before the first freeze): build a
    // throwaway local adjacency with the same ordering discipline.
    std::vector<std::vector<NodeId>> succLocal(n);
    for (const Node& nd : nodes_)
      for (NodeId in : nd.inputs)
        if (in < n) succLocal[in].push_back(nd.id);
    while (!ready.empty()) {
      const NodeId id = ready.back();
      ready.pop_back();
      order.push_back(id);
      for (NodeId s : succLocal[id])
        if (--indeg[s] == 0) ready.push_back(s);
    }
  }
  if (order.size() != n) return std::nullopt;  // cycle
  return order;
}

bool pathsMutuallyExclusive(std::string_view a, std::string_view b) {
  const auto pa = util::split(a, '.');
  const auto pb = util::split(b, '.');
  if (a.empty() || b.empty()) return false;
  // Components alternate: cond-id at even index, arm-id at odd index.
  const std::size_t n = std::min(pa.size(), pb.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (pa[i] == pb[i]) continue;
    // First divergence. Exclusive only when it happens at an arm component
    // (odd index) — i.e. same conditional, different arms. Divergence at a
    // conditional component means unrelated conditionals, which can both
    // execute.
    return (i % 2) == 1;
  }
  return false;  // one path prefixes the other: nested, can co-execute
}

bool Dfg::mutuallyExclusive(NodeId a, NodeId b) const {
  if (!frozen_)
    return pathsMutuallyExclusive(nodes_[a].branchPath, nodes_[b].branchPath);
  const std::uint32_t sa = scope_[a];
  const std::uint32_t sb = scope_[b];
  if (sa == sb) return false;  // identical paths never diverge
  if (nodes_[a].branchPath.empty() || nodes_[b].branchPath.empty()) return false;
  const std::uint32_t* ca = scopeComp_.data() + scopeOff_[sa];
  const std::uint32_t* cb = scopeComp_.data() + scopeOff_[sb];
  const std::size_t la = scopeOff_[sa + 1] - scopeOff_[sa];
  const std::size_t lb = scopeOff_[sb + 1] - scopeOff_[sb];
  const std::size_t m = std::min(la, lb);
  for (std::size_t i = 0; i < m; ++i)
    if (ca[i] != cb[i]) return (i % 2) == 1;
  return false;
}

NodeId Dfg::findByName(std::string_view name) const {
  if (frozen_) {
    const auto it = nameIndex_.find(name);
    return it == nameIndex_.end() ? kNoNode : it->second;
  }
  for (const Node& n : nodes_)
    if (n.name == name) return n.id;
  return kNoNode;
}

std::optional<std::string> Dfg::validate() const {
  std::unordered_set<std::string> names;
  for (const Node& n : nodes_) {
    if (n.id >= nodes_.size() || &nodes_[n.id] != &n)
      return util::format("node '%s': inconsistent id", n.name.c_str());
    if (n.name.empty()) return util::format("node %u has an empty name", n.id);
    if (!names.insert(n.name).second)
      return util::format("duplicate signal name '%s'", n.name.c_str());
    if (n.kind != OpKind::LoopSuper &&
        static_cast<int>(n.inputs.size()) != arity(n.kind))
      return util::format("node '%s' (%s): expects %d inputs, has %zu",
                          n.name.c_str(), std::string(kindName(n.kind)).c_str(),
                          arity(n.kind), n.inputs.size());
    for (NodeId in : n.inputs) {
      if (in >= nodes_.size())
        return util::format("node '%s': input id %u out of range", n.name.c_str(), in);
      if (in >= n.id)
        return util::format("node '%s': input '%s' is not older than the node "
                            "(graph must be built in topological order)",
                            n.name.c_str(), nodes_[in].name.c_str());
    }
    if (n.cycles < 1)
      return util::format("node '%s': cycles=%d must be >= 1", n.name.c_str(), n.cycles);
    // A conditional path must have an even number of components (pairs).
    if (!n.branchPath.empty() && util::split(n.branchPath, '.').size() % 2 != 0)
      return util::format("node '%s': malformed branch path '%s'",
                          n.name.c_str(), n.branchPath.c_str());
  }
  for (const auto& [id, ext] : outputs_) {
    if (id >= nodes_.size())
      return util::format("output '%s': node id %u out of range", ext.c_str(), id);
  }
  if (!topoOrder()) return "graph contains a cycle";
  return std::nullopt;
}

}  // namespace mframe::dfg
