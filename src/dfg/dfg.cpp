#include "dfg/dfg.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/strings.h"

namespace mframe::dfg {

NodeId Dfg::addNode(Node n) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  n.id = id;
  nodes_.push_back(std::move(n));
  succValid_ = false;
  return id;
}

void Dfg::markOutput(NodeId id, std::string externalName) {
  outputs_.emplace_back(id, std::move(externalName));
}

void Dfg::ensureSuccs() const {
  if (succValid_) return;
  succCache_.assign(nodes_.size(), {});
  for (const Node& n : nodes_)
    for (NodeId in : n.inputs)
      if (in < nodes_.size()) succCache_[in].push_back(n.id);
  succValid_ = true;
}

const std::vector<NodeId>& Dfg::succs(NodeId id) const {
  ensureSuccs();
  return succCache_[id];
}

std::vector<NodeId> Dfg::opPreds(NodeId id) const {
  std::vector<NodeId> out;
  for (NodeId p : nodes_[id].inputs)
    if (isSchedulable(nodes_[p].kind)) out.push_back(p);
  return out;
}

std::vector<NodeId> Dfg::opSuccs(NodeId id) const {
  std::vector<NodeId> out;
  for (NodeId s : succs(id))
    if (isSchedulable(nodes_[s].kind)) out.push_back(s);
  return out;
}

std::vector<NodeId> Dfg::operations() const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_)
    if (isSchedulable(n.kind)) out.push_back(n.id);
  return out;
}

std::size_t Dfg::countOfType(FuType t) const {
  std::size_t c = 0;
  for (const Node& n : nodes_)
    if (isSchedulable(n.kind) && fuTypeOf(n.kind) == t) ++c;
  return c;
}

std::optional<std::vector<NodeId>> Dfg::topoOrder() const {
  std::vector<int> indeg(nodes_.size(), 0);
  for (const Node& n : nodes_)
    for (NodeId in : n.inputs) {
      (void)in;
      ++indeg[n.id];
    }
  std::vector<NodeId> ready;
  for (const Node& n : nodes_)
    if (indeg[n.id] == 0) ready.push_back(n.id);

  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    NodeId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (NodeId s : succs(id))
      if (--indeg[s] == 0) ready.push_back(s);
  }
  if (order.size() != nodes_.size()) return std::nullopt;  // cycle
  return order;
}

bool pathsMutuallyExclusive(std::string_view a, std::string_view b) {
  const auto pa = util::split(a, '.');
  const auto pb = util::split(b, '.');
  if (a.empty() || b.empty()) return false;
  // Components alternate: cond-id at even index, arm-id at odd index.
  const std::size_t n = std::min(pa.size(), pb.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (pa[i] == pb[i]) continue;
    // First divergence. Exclusive only when it happens at an arm component
    // (odd index) — i.e. same conditional, different arms. Divergence at a
    // conditional component means unrelated conditionals, which can both
    // execute.
    return (i % 2) == 1;
  }
  return false;  // one path prefixes the other: nested, can co-execute
}

bool Dfg::mutuallyExclusive(NodeId a, NodeId b) const {
  return pathsMutuallyExclusive(nodes_[a].branchPath, nodes_[b].branchPath);
}

NodeId Dfg::findByName(std::string_view name) const {
  for (const Node& n : nodes_)
    if (n.name == name) return n.id;
  return kNoNode;
}

std::optional<std::string> Dfg::validate() const {
  std::unordered_set<std::string> names;
  for (const Node& n : nodes_) {
    if (n.id >= nodes_.size() || &nodes_[n.id] != &n)
      return util::format("node '%s': inconsistent id", n.name.c_str());
    if (n.name.empty()) return util::format("node %u has an empty name", n.id);
    if (!names.insert(n.name).second)
      return util::format("duplicate signal name '%s'", n.name.c_str());
    if (n.kind != OpKind::LoopSuper &&
        static_cast<int>(n.inputs.size()) != arity(n.kind))
      return util::format("node '%s' (%s): expects %d inputs, has %zu",
                          n.name.c_str(), std::string(kindName(n.kind)).c_str(),
                          arity(n.kind), n.inputs.size());
    for (NodeId in : n.inputs) {
      if (in >= nodes_.size())
        return util::format("node '%s': input id %u out of range", n.name.c_str(), in);
      if (in >= n.id)
        return util::format("node '%s': input '%s' is not older than the node "
                            "(graph must be built in topological order)",
                            n.name.c_str(), nodes_[in].name.c_str());
    }
    if (n.cycles < 1)
      return util::format("node '%s': cycles=%d must be >= 1", n.name.c_str(), n.cycles);
    // A conditional path must have an even number of components (pairs).
    if (!n.branchPath.empty() && util::split(n.branchPath, '.').size() % 2 != 0)
      return util::format("node '%s': malformed branch path '%s'",
                          n.name.c_str(), n.branchPath.c_str());
  }
  for (const auto& [id, ext] : outputs_) {
    if (id >= nodes_.size())
      return util::format("output '%s': node id %u out of range", ext.c_str(), id);
  }
  if (!topoOrder()) return "graph contains a cycle";
  return std::nullopt;
}

}  // namespace mframe::dfg
