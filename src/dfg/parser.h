// Textual DFG format, so benchmark graphs can live outside C++ and users can
// feed their own designs to the schedulers. Grammar (one statement per line,
// '#' starts a comment):
//
//   dfg <name>
//   input <signal>
//   const <value> <signal>
//   op <kind> <signal> <in1> [<in2>] [cycles=<k>] [delay=<ns>] [branch=<path>]
//   output <external-name> <signal>
//
// <kind> accepts both names ("mul") and symbols ("*"); inputs are referenced
// by signal name and must be defined on earlier lines (the graph is written
// in topological order, as Dfg requires).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "dfg/dfg.h"

namespace mframe::dfg {

/// Parse the textual format. Throws DfgError with a line number on any
/// syntactic or structural problem.
Dfg parse(std::string_view text);

/// One problem recorded by parseLenient.
struct ParseIssue {
  int line = 0;              ///< 1-based source line (0 = file level)
  std::string message;
  bool unknownSignal = false;  ///< a dangling operand reference (lint DFG001)
};

/// Lenient parse for the lint engine: never throws. Problems are recorded
/// as issues and repaired where possible — an unknown operand becomes an
/// implicit Input node so later statements still resolve; unparseable
/// statements are skipped. Final structural validation is NOT run (that is
/// analysis::lintDfg's job on the returned graph).
Dfg parseLenient(std::string_view text, std::vector<ParseIssue>& issues);

/// Serialize back to the textual format (round-trips through parse()).
std::string serialize(const Dfg& g);

}  // namespace mframe::dfg
