// Textual DFG format, so benchmark graphs can live outside C++ and users can
// feed their own designs to the schedulers. Grammar (one statement per line,
// '#' starts a comment):
//
//   dfg <name>
//   input <signal>
//   const <value> <signal>
//   op <kind> <signal> <in1> [<in2>] [cycles=<k>] [delay=<ns>] [branch=<path>]
//   output <external-name> <signal>
//
// <kind> accepts both names ("mul") and symbols ("*"); inputs are referenced
// by signal name and must be defined on earlier lines (the graph is written
// in topological order, as Dfg requires).
#pragma once

#include <string>
#include <string_view>

#include "dfg/dfg.h"

namespace mframe::dfg {

/// Parse the textual format. Throws DfgError with a line number on any
/// syntactic or structural problem.
Dfg parse(std::string_view text);

/// Serialize back to the textual format (round-trips through parse()).
std::string serialize(const Dfg& g);

}  // namespace mframe::dfg
