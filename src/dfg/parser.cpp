#include "dfg/parser.h"

#include <sstream>
#include <unordered_map>

#include "dfg/builder.h"
#include "util/strings.h"

namespace mframe::dfg {

namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw DfgError(util::format("dfg parse error at line %d: %s", line, msg.c_str()));
}

}  // namespace

Dfg parse(std::string_view text) {
  Dfg g;
  std::unordered_map<std::string, NodeId> byName;
  std::istringstream in{std::string(text)};
  std::string rawLine;
  int lineNo = 0;
  bool sawHeader = false;

  while (std::getline(in, rawLine)) {
    ++lineNo;
    const auto hash = rawLine.find('#');
    if (hash != std::string::npos) rawLine.erase(hash);
    const auto tok = util::splitWs(rawLine);
    if (tok.empty()) continue;

    if (tok[0] == "dfg") {
      if (tok.size() != 2) fail(lineNo, "expected: dfg <name>");
      g.setName(tok[1]);
      sawHeader = true;
    } else if (tok[0] == "input") {
      if (tok.size() != 2) fail(lineNo, "expected: input <signal>");
      Node n;
      n.kind = OpKind::Input;
      n.name = tok[1];
      byName[tok[1]] = g.addNode(std::move(n));
    } else if (tok[0] == "const") {
      if (tok.size() != 3) fail(lineNo, "expected: const <value> <signal>");
      Node n;
      n.kind = OpKind::Const;
      n.constValue = std::strtol(tok[1].c_str(), nullptr, 10);
      n.name = tok[2];
      byName[tok[2]] = g.addNode(std::move(n));
    } else if (tok[0] == "op") {
      if (tok.size() < 4) fail(lineNo, "expected: op <kind> <signal> <in...> [attrs]");
      OpKind kind;
      if (!parseKind(tok[1], kind)) fail(lineNo, "unknown op kind '" + tok[1] + "'");
      Node n;
      n.kind = kind;
      n.name = tok[2];
      std::size_t i = 3;
      for (; i < tok.size() && tok[i].find('=') == std::string::npos; ++i) {
        auto it = byName.find(tok[i]);
        if (it == byName.end()) fail(lineNo, "unknown input signal '" + tok[i] + "'");
        n.inputs.push_back(it->second);
      }
      for (; i < tok.size(); ++i) {
        const auto eq = tok[i].find('=');
        if (eq == std::string::npos) fail(lineNo, "operands must precede attributes");
        const std::string key = tok[i].substr(0, eq);
        const std::string val = tok[i].substr(eq + 1);
        if (key == "cycles") {
          const long c = util::parseLong(val);
          if (c < 1) fail(lineNo, "bad cycles value '" + val + "'");
          n.cycles = static_cast<int>(c);
        } else if (key == "delay") {
          n.delayNs = std::strtod(val.c_str(), nullptr);
        } else if (key == "branch") {
          n.branchPath = val;
        } else {
          fail(lineNo, "unknown attribute '" + key + "'");
        }
      }
      const std::string name = n.name;  // addNode consumes n
      byName[name] = g.addNode(std::move(n));
    } else if (tok[0] == "output") {
      if (tok.size() != 3) fail(lineNo, "expected: output <external-name> <signal>");
      auto it = byName.find(tok[2]);
      if (it == byName.end()) fail(lineNo, "unknown signal '" + tok[2] + "'");
      g.markOutput(it->second, tok[1]);
    } else {
      fail(lineNo, "unknown statement '" + tok[0] + "'");
    }
  }
  if (!sawHeader) throw DfgError("dfg parse error: missing 'dfg <name>' header");
  if (auto err = g.validate()) throw DfgError(g.name() + ": " + *err);
  return g;
}

std::string serialize(const Dfg& g) {
  std::string out = "dfg " + g.name() + "\n";
  for (const Node& n : g.nodes()) {
    switch (n.kind) {
      case OpKind::Input:
        out += "input " + n.name + "\n";
        break;
      case OpKind::Const:
        out += util::format("const %ld %s\n", n.constValue, n.name.c_str());
        break;
      default: {
        out += "op " + std::string(kindName(n.kind)) + " " + n.name;
        for (NodeId in : n.inputs) out += " " + g.node(in).name;
        if (n.cycles != 1) out += util::format(" cycles=%d", n.cycles);
        if (n.delayNs >= 0) out += util::format(" delay=%g", n.delayNs);
        if (!n.branchPath.empty()) out += " branch=" + n.branchPath;
        out += "\n";
      }
    }
  }
  for (const auto& [id, ext] : g.outputs())
    out += "output " + ext + " " + g.node(id).name + "\n";
  return out;
}

}  // namespace mframe::dfg
