#include "dfg/parser.h"

#include <sstream>
#include <unordered_map>

#include "dfg/builder.h"
#include "util/strings.h"

namespace mframe::dfg {

namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw DfgError(util::format("dfg parse error at line %d: %s", line, msg.c_str()));
}

/// Shared grammar walk. In strict mode (issues == nullptr) every problem
/// throws DfgError; in lenient mode it is recorded and the statement is
/// repaired or skipped. *Well-formed* attribute values are stored as written
/// in lenient mode (cycles=0, delay=0, bad branch paths) so the lint rules
/// can report them with their proper rule ids; *malformed* numerics
/// (delay=abc, width=abc, const abc) are a parse problem in both modes and
/// leave the attribute at its default — silently coercing them to 0 used to
/// mask real diagnostics downstream (a typo'd delay= hid TIM001).
Dfg parseImpl(std::string_view text, std::vector<ParseIssue>* issues) {
  Dfg g;
  std::unordered_map<std::string, NodeId> byName;
  std::istringstream in{std::string(text)};
  std::string rawLine;
  int lineNo = 0;
  bool sawHeader = false;

  auto problem = [&](int line, const std::string& msg, bool unknownSignal = false) {
    if (!issues) fail(line, msg);
    issues->push_back({line, msg, unknownSignal});
  };
  // Resolve an operand name; in lenient mode an unknown name materializes an
  // implicit Input node so downstream references still connect.
  auto resolve = [&](const std::string& name, const char* what) -> NodeId {
    auto it = byName.find(name);
    if (it != byName.end()) return it->second;
    problem(lineNo, std::string("unknown ") + what + " '" + name + "'", true);
    Node placeholder;
    placeholder.kind = OpKind::Input;
    placeholder.name = name;
    const NodeId id = g.addNode(std::move(placeholder));
    byName[name] = id;
    return id;
  };

  while (std::getline(in, rawLine)) {
    ++lineNo;
    const auto hash = rawLine.find('#');
    if (hash != std::string::npos) rawLine.erase(hash);
    const auto tok = util::splitWs(rawLine);
    if (tok.empty()) continue;

    // A width= value must be a non-negative integer; anything else is a
    // parse problem (lenient mode leaves the width unset).
    auto parseWidth = [&](Node& n, const std::string& val) {
      const long w = util::parseLong(val);
      if (w < 0) {
        problem(lineNo, "bad width value '" + val + "'");
        return;
      }
      n.width = static_cast<int>(w);
    };
    // Optional trailing width= attribute shared by input/const statements.
    auto leafWidth = [&](Node& n, std::size_t from) -> bool {
      for (std::size_t a = from; a < tok.size(); ++a) {
        const auto eq = tok[a].find('=');
        if (eq == std::string::npos || tok[a].substr(0, eq) != "width") {
          problem(lineNo, "unknown attribute '" + tok[a] + "'");
          return false;
        }
        parseWidth(n, tok[a].substr(eq + 1));
      }
      return true;
    };

    if (tok[0] == "dfg") {
      if (tok.size() != 2) {
        problem(lineNo, "expected: dfg <name>");
        continue;
      }
      g.setName(tok[1]);
      sawHeader = true;
    } else if (tok[0] == "input") {
      if (tok.size() < 2) {
        problem(lineNo, "expected: input <signal> [width=N]");
        continue;
      }
      Node n;
      n.kind = OpKind::Input;
      n.name = tok[1];
      if (!leafWidth(n, 2)) continue;
      byName[tok[1]] = g.addNode(std::move(n));
    } else if (tok[0] == "const") {
      if (tok.size() < 3) {
        problem(lineNo, "expected: const <value> <signal> [width=N]");
        continue;
      }
      Node n;
      n.kind = OpKind::Const;
      if (!util::parseSignedLong(tok[1], n.constValue))
        problem(lineNo, "bad const value '" + tok[1] + "'");
      n.name = tok[2];
      if (!leafWidth(n, 3)) continue;
      byName[tok[2]] = g.addNode(std::move(n));
    } else if (tok[0] == "op") {
      if (tok.size() < 4) {
        problem(lineNo, "expected: op <kind> <signal> <in...> [attrs]");
        continue;
      }
      OpKind kind;
      if (!parseKind(tok[1], kind)) {
        problem(lineNo, "unknown op kind '" + tok[1] + "'");
        continue;
      }
      Node n;
      n.kind = kind;
      n.name = tok[2];
      std::size_t i = 3;
      for (; i < tok.size() && tok[i].find('=') == std::string::npos; ++i)
        n.inputs.push_back(resolve(tok[i], "input signal"));
      bool badAttrs = false;
      for (; i < tok.size(); ++i) {
        const auto eq = tok[i].find('=');
        if (eq == std::string::npos) {
          problem(lineNo, "operands must precede attributes");
          badAttrs = true;
          break;
        }
        const std::string key = tok[i].substr(0, eq);
        const std::string val = tok[i].substr(eq + 1);
        if (key == "cycles") {
          const long c = util::parseLong(val);
          if (c < 0) {
            // Malformed (non-numeric): a parse problem in both modes.
            problem(lineNo, "bad cycles value '" + val + "'");
          } else {
            // Well-formed but out of range (cycles=0): strict rejects,
            // lenient stores it for the lint rule to flag.
            if (c < 1 && !issues) fail(lineNo, "bad cycles value '" + val + "'");
            n.cycles = static_cast<int>(c);
          }
        } else if (key == "delay") {
          // A malformed delay must not silently become 0.0: a zeroed
          // per-node override would let the scheduler chain freely and mask
          // a real TIM001 violation in the STA.
          double delay = 0.0;
          if (!util::parseDouble(val, delay) || delay < 0.0)
            problem(lineNo, "bad delay value '" + val + "'");
          else
            n.delayNs = delay;
        } else if (key == "branch") {
          n.branchPath = val;
        } else if (key == "width") {
          parseWidth(n, val);
        } else {
          problem(lineNo, "unknown attribute '" + key + "'");
          badAttrs = true;
          break;
        }
      }
      if (badAttrs) continue;
      const std::string name = n.name;  // addNode consumes n
      byName[name] = g.addNode(std::move(n));
    } else if (tok[0] == "output") {
      if (tok.size() != 3) {
        problem(lineNo, "expected: output <external-name> <signal>");
        continue;
      }
      auto it = byName.find(tok[2]);
      if (it == byName.end()) {
        problem(lineNo, "unknown signal '" + tok[2] + "'", true);
        continue;
      }
      g.markOutput(it->second, tok[1]);
    } else {
      problem(lineNo, "unknown statement '" + tok[0] + "'");
    }
  }
  if (!sawHeader) {
    if (!issues) throw DfgError("dfg parse error: missing 'dfg <name>' header");
    issues->push_back({0, "missing 'dfg <name>' header", false});
  }
  if (!issues)
    if (auto err = g.validate()) throw DfgError(g.name() + ": " + *err);
  g.freeze();
  return g;
}

}  // namespace

Dfg parse(std::string_view text) { return parseImpl(text, nullptr); }

Dfg parseLenient(std::string_view text, std::vector<ParseIssue>& issues) {
  return parseImpl(text, &issues);
}

std::string serialize(const Dfg& g) {
  std::string out = "dfg " + g.name() + "\n";
  const auto widthSuffix = [](const Node& n) {
    return n.width != 0 ? util::format(" width=%d", n.width) : std::string();
  };
  for (const Node& n : g.nodes()) {
    switch (n.kind) {
      case OpKind::Input:
        out += "input " + n.name + widthSuffix(n) + "\n";
        break;
      case OpKind::Const:
        out += util::format("const %ld %s", n.constValue, n.name.c_str()) +
               widthSuffix(n) + "\n";
        break;
      default: {
        out += "op " + std::string(kindName(n.kind)) + " " + n.name;
        for (NodeId in : n.inputs) out += " " + g.node(in).name;
        if (n.cycles != 1) out += util::format(" cycles=%d", n.cycles);
        if (n.delayNs >= 0) out += util::format(" delay=%g", n.delayNs);
        if (!n.branchPath.empty()) out += " branch=" + n.branchPath;
        out += widthSuffix(n);
        out += "\n";
      }
    }
  }
  for (const auto& [id, ext] : g.outputs())
    out += "output " + ext + " " + g.node(id).name + "\n";
  return out;
}

}  // namespace mframe::dfg
