#include "dfg/builder.h"

#include "util/strings.h"

namespace mframe::dfg {

NodeId Builder::input(std::string name, int width) {
  Node n;
  n.kind = OpKind::Input;
  n.name = std::move(name);
  n.width = width;
  return g_.addNode(std::move(n));
}

NodeId Builder::constant(long value, std::string name) {
  Node n;
  n.kind = OpKind::Const;
  n.name = std::move(name);
  n.constValue = value;
  return g_.addNode(std::move(n));
}

NodeId Builder::op(OpKind kind, std::vector<NodeId> inputs, std::string name,
                   int cycles, double delayNs) {
  Node n;
  n.kind = kind;
  n.name = std::move(name);
  n.inputs = std::move(inputs);
  n.cycles = cycles;
  n.delayNs = delayNs;
  n.branchPath = branchScope_;
  return g_.addNode(std::move(n));
}

void Builder::setWidth(NodeId id, int width) { g_.mutableNode(id).width = width; }

void Builder::pushBranch(const std::string& condId, const std::string& armId) {
  if (!branchScope_.empty()) branchScope_ += '.';
  branchScope_ += condId + '.' + armId;
}

void Builder::popBranch() {
  auto parts = util::split(branchScope_, '.');
  if (parts.size() < 2) throw DfgError("popBranch without matching pushBranch");
  parts.pop_back();
  parts.pop_back();
  branchScope_ = util::join(parts, ".");
}

Dfg Builder::build() && {
  if (auto err = g_.validate()) throw DfgError(g_.name() + ": " + *err);
  g_.freeze();
  return std::move(g_);
}

}  // namespace mframe::dfg
