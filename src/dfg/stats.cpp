#include "dfg/stats.h"

#include <algorithm>

#include "util/strings.h"

namespace mframe::dfg {

DfgStats computeStats(const Dfg& g) {
  DfgStats st;
  st.nodes = g.size();
  st.outputs = g.outputs().size();

  std::vector<int> depth(g.size(), 0);
  std::size_t fanoutCarriers = 0;
  std::size_t fanoutTotal = 0;
  for (const Node& n : g.nodes()) {
    if (n.width != 0) {
      if (st.widthedNodes == 0) {
        st.minDeclaredWidth = st.maxDeclaredWidth = n.width;
      } else {
        st.minDeclaredWidth = std::min(st.minDeclaredWidth, n.width);
        st.maxDeclaredWidth = std::max(st.maxDeclaredWidth, n.width);
      }
      ++st.widthedNodes;
    }
    switch (n.kind) {
      case OpKind::Input: ++st.inputs; break;
      case OpKind::Const:
        ++st.constants;
        st.constValues.push_back(n.constValue);
        break;
      default: {
        ++st.operations;
        ++st.opMix[n.kind];
        ++st.typeMix[fuTypeOf(n.kind)];
        if (n.cycles > 1) ++st.multicycleOps;
        if (!n.branchPath.empty()) ++st.conditionalOps;
        int start = 1;
        for (NodeId p : g.opPreds(n.id))
          start = std::max(start, depth[p] + g.node(p).cycles);
        depth[n.id] = start;
        st.criticalPath = std::max(st.criticalPath, start + n.cycles - 1);
        break;
      }
    }
    if (n.kind != OpKind::Const) {
      ++fanoutCarriers;
      const int fo = static_cast<int>(g.succs(n.id).size());
      fanoutTotal += static_cast<std::size_t>(fo);
      st.maxFanout = std::max(st.maxFanout, fo);
    }
  }
  if (fanoutCarriers > 0)
    st.avgFanout = static_cast<double>(fanoutTotal) /
                   static_cast<double>(fanoutCarriers);
  if (st.criticalPath > 0)
    st.parallelism =
        static_cast<double>(st.operations) / static_cast<double>(st.criticalPath);
  return st;
}

std::string DfgStats::toString() const {
  std::string out = util::format(
      "%zu nodes (%zu ops, %zu inputs, %zu consts), %zu outputs\n", nodes,
      operations, inputs, constants, outputs);
  if (!constValues.empty()) {
    out += "const values:";
    for (long v : constValues) out += util::format(" %ld", v);
    out += "\n";
  }
  if (widthedNodes > 0)
    out += util::format("declared widths: %zu node(s), %d..%d bit(s)\n",
                        widthedNodes, minDeclaredWidth, maxDeclaredWidth);
  out += "op mix:";
  for (const auto& [kind, count] : opMix)
    out += util::format(" %d%s", count, std::string(kindSymbol(kind)).c_str());
  out += util::format(
      "\ncritical path %d step(s), parallelism %.2f ops/step\n"
      "fanout max %d avg %.2f; %zu multicycle op(s), %zu conditional op(s)\n",
      criticalPath, parallelism, maxFanout, avgFanout, multicycleOps,
      conditionalOps);
  return out;
}

}  // namespace mframe::dfg
