// Functional-pipelining analysis: throughput bounds and minimum-latency
// search. The paper's Section 5.5.2 fixes the latency L and balances the
// folded schedule; a designer usually asks the dual question — what is the
// smallest initiation interval my graph supports, and how much hardware does
// each L cost? These helpers answer both with folded MFS.
#pragma once

#include <map>
#include <set>

#include "core/mfs.h"
#include "dfg/dfg.h"

namespace mframe::pipeline {

/// Per-type FU demand lower bound at latency L: each initiation brings the
/// whole graph's work once per L steps, so a non-pipelined type t needs at
/// least ceil(total busy cycles of t / L) instances, and a structurally
/// pipelined type at least ceil(op count / L).
std::map<dfg::FuType, int> fuDemandLowerBound(
    const dfg::Dfg& g, int latency, const std::set<dfg::FuType>& pipelinedFus = {});

struct LatencySweepPoint {
  int latency = 0;
  bool feasible = false;
  std::map<dfg::FuType, int> fuCount;       ///< achieved by folded MFS
  std::map<dfg::FuType, int> lowerBound;    ///< fuDemandLowerBound
};

/// Evaluate folded MFS at every latency in [1, timeSteps]; useful for the
/// hardware-vs-throughput trade-off curve.
std::vector<LatencySweepPoint> latencySweep(const dfg::Dfg& g, int timeSteps,
                                            const core::MfsOptions& base = {});

/// The smallest feasible latency within `timeSteps` (the graph's maximum
/// sustainable throughput under folding); 0 when none is feasible.
int minimumLatency(const dfg::Dfg& g, int timeSteps,
                   const core::MfsOptions& base = {});

}  // namespace mframe::pipeline
