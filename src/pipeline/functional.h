// Functional pipelining / loop unfolding (Section 5.5.2): with latency L,
// a new problem instance enters the datapath every L control steps, so "the
// operations scheduled into control step t + k*L run concurrently, and we
// must balance the distribution of operations across all individual control
// steps".
//
// Two realizations are provided:
//  * folded scheduling — sched::Constraints::latency makes the grid fold
//    occupancy mod L, the direct expression of the concurrency rule (this is
//    what runMfs/runMfsa use);
//  * the paper's explicit two-instance construction — build DFG_double (two
//    copies, instance 2 delayed by L steps), partition at ceil((cs+L)/2) —
//    exposed here for inspection and for the tests that validate the folded
//    schedule by overlapping shifted instances.
#pragma once

#include <string>

#include "core/mfs.h"
#include "dfg/dfg.h"

namespace mframe::pipeline {

/// The paper's step 2 boundary: DFG_p1 covers steps [1, ceil((cs+L)/2)],
/// DFG_p2 the rest of [1, cs+L].
int partitionBoundary(int cs, int latency);

/// Build the doubled DFG of the paper's step 1: two instances of `g` with
/// names suffixed "_i1"/"_i2". The second instance is delayed by `latency`
/// steps using a chain of `latency` unit-cycle LoopSuper delay nodes feeding
/// its primary inputs, so its ASAP times shift by exactly L.
dfg::Dfg buildTwoInstanceDfg(const dfg::Dfg& g, int latency);

struct FunctionalPipelineResult {
  bool feasible = false;
  std::string error;
  core::MfsResult mfs;  ///< folded schedule of one instance
  int latency = 0;

  /// FU demand including overlap between consecutive instances — what the
  /// datapath must actually provision.
  std::map<dfg::FuType, int> fuCount;
};

/// Schedule `g` for initiation interval `latency` within `timeSteps` steps
/// using folded MFS.
FunctionalPipelineResult runFunctionalPipelinedMfs(const dfg::Dfg& g,
                                                   int timeSteps, int latency,
                                                   const core::MfsOptions& base = {});

/// The paper's explicit five-step partition procedure (Section 5.5.2):
///  1. build DFG_double — two instances, the second delayed by L;
///  2. split [1, cs+L] at boundary = ceil((cs+L)/2): DFG_p1 holds the
///     operations of steps [1, boundary], DFG_p2 the rest;
///  3. schedule DFG_p1 (instance-2 operations inside it act as the "dummy
///     operations" reserving capacity for the incoming next iteration);
///  4. adjust so the two instances are identical — operations of instance 1
///     scheduled inside DFG_p1 dictate the slots of instance 2's copies;
///  5. schedule the remaining DFG_p2 operations around them.
/// The result is reported as a schedule of the *original* graph: each op's
/// step is its instance-1 step, and the overlapped FU demand equals the
/// doubled graph's demand. Exposed mainly to validate the folded
/// implementation against the paper's own construction.
struct PartitionPipelineResult {
  bool feasible = false;
  std::string error;
  int boundary = 0;                      ///< step 2's split point
  sched::Schedule doubled;               ///< schedule of DFG_double
  std::map<dfg::FuType, int> fuCount;    ///< demand of the overlapped pair
  std::map<std::string, int> stepOfInstance1;  ///< original op name -> step
};
PartitionPipelineResult pipelineByPartition(const dfg::Dfg& g, int timeSteps,
                                            int latency,
                                            const core::MfsOptions& base = {});

}  // namespace mframe::pipeline
