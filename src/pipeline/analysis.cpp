#include "pipeline/analysis.h"

#include <cmath>

namespace mframe::pipeline {

std::map<dfg::FuType, int> fuDemandLowerBound(
    const dfg::Dfg& g, int latency, const std::set<dfg::FuType>& pipelinedFus) {
  std::map<dfg::FuType, int> busy;   // total busy cycles (or initiations)
  for (dfg::NodeId id : g.operations()) {
    const dfg::Node& n = g.node(id);
    const dfg::FuType t = dfg::fuTypeOf(n.kind);
    busy[t] += pipelinedFus.count(t) ? 1 : n.cycles;
  }
  std::map<dfg::FuType, int> out;
  for (const auto& [t, cycles] : busy)
    out[t] = (cycles + latency - 1) / latency;
  return out;
}

std::vector<LatencySweepPoint> latencySweep(const dfg::Dfg& g, int timeSteps,
                                            const core::MfsOptions& base) {
  std::vector<LatencySweepPoint> out;
  for (int latency = 1; latency <= timeSteps; ++latency) {
    LatencySweepPoint p;
    p.latency = latency;
    p.lowerBound = fuDemandLowerBound(g, latency, base.constraints.pipelinedFus);
    core::MfsOptions o = base;
    o.mode = core::MfsLiapunov::Mode::TimeConstrained;
    o.constraints.timeSteps = timeSteps;
    o.constraints.latency = latency;
    const auto r = core::runMfs(g, o);
    p.feasible = r.feasible;
    if (r.feasible) p.fuCount = r.fuCount;
    out.push_back(std::move(p));
  }
  return out;
}

int minimumLatency(const dfg::Dfg& g, int timeSteps,
                   const core::MfsOptions& base) {
  for (int latency = 1; latency <= timeSteps; ++latency) {
    core::MfsOptions o = base;
    o.mode = core::MfsLiapunov::Mode::TimeConstrained;
    o.constraints.timeSteps = timeSteps;
    o.constraints.latency = latency;
    if (core::runMfs(g, o).feasible) return latency;
  }
  return 0;
}

}  // namespace mframe::pipeline
