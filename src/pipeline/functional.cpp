#include "pipeline/functional.h"

#include <cmath>

#include "util/strings.h"

namespace mframe::pipeline {

int partitionBoundary(int cs, int latency) {
  return (cs + latency + 1) / 2;  // ceil((cs + L) / 2)
}

dfg::Dfg buildTwoInstanceDfg(const dfg::Dfg& g, int latency) {
  dfg::Dfg out(g.name() + "_double");
  std::vector<dfg::NodeId> map1(g.size()), map2(g.size());

  // Instance 1: a verbatim copy.
  for (const dfg::Node& n : g.nodes()) {
    dfg::Node c = n;
    c.name = n.name + "_i1";
    c.inputs.clear();
    for (dfg::NodeId in : n.inputs) c.inputs.push_back(map1[in]);
    map1[n.id] = out.addNode(std::move(c));
  }
  // Delay chain: L-1 unit-cycle pseudo-operations; together with the gate
  // op each instance-2 input becomes, instance 2's ASAP profile lands
  // exactly L steps after instance 1's.
  dfg::NodeId delayTail = dfg::kNoNode;
  for (int i = 0; i + 1 < latency; ++i) {
    dfg::Node d;
    d.kind = dfg::OpKind::LoopSuper;
    d.name = util::format("delay_%d", i + 1);
    d.cycles = 1;
    if (delayTail != dfg::kNoNode) d.inputs.push_back(delayTail);
    delayTail = out.addNode(std::move(d));
  }
  // Instance 2: inputs gated behind the delay chain.
  for (const dfg::Node& n : g.nodes()) {
    dfg::Node c = n;
    c.name = n.name + "_i2";
    c.inputs.clear();
    if (n.kind == dfg::OpKind::Input && latency > 0) {
      // Model "arrives L steps later" by turning the input into a unit
      // pseudo-op (the gate) fed by the delay chain.
      c.kind = dfg::OpKind::LoopSuper;
      c.cycles = 1;
      if (delayTail != dfg::kNoNode) c.inputs.push_back(delayTail);
    } else {
      for (dfg::NodeId in : n.inputs) c.inputs.push_back(map2[in]);
    }
    map2[n.id] = out.addNode(std::move(c));
  }
  for (const auto& [id, ext] : g.outputs()) {
    out.markOutput(map1[id], ext + "_i1");
    out.markOutput(map2[id], ext + "_i2");
  }
  out.freeze();
  return out;
}

PartitionPipelineResult pipelineByPartition(const dfg::Dfg& g, int timeSteps,
                                            int latency,
                                            const core::MfsOptions& base) {
  PartitionPipelineResult res;
  res.boundary = partitionBoundary(timeSteps, latency);

  // Steps 3-4 of the procedure: produce identical, balanced instances. The
  // folded schedule is exactly that fixed point — instance-2 operations
  // occupy the same units L steps later, which is what scheduling DFG_p1
  // with instance-2 dummies and then adjusting converges to.
  core::MfsOptions o = base;
  o.mode = core::MfsLiapunov::Mode::TimeConstrained;
  o.constraints.timeSteps = timeSteps;
  o.constraints.latency = latency;
  const auto folded = core::runMfs(g, o);
  if (!folded.feasible) {
    res.error = folded.error;
    return res;
  }
  for (dfg::NodeId id : g.operations())
    res.stepOfInstance1[g.node(id).name] = folded.schedule.stepOf(id);

  // Step 5 / materialization: place both instances of DFG_double explicitly
  // and let the *plain* verifier (no folding) prove the overlap is legal.
  const dfg::Dfg d = buildTwoInstanceDfg(g, latency);
  sched::Schedule sd(d);
  sd.setNumSteps(timeSteps + latency);

  // The delay chain runs down LoopUnit column 1; the instance-2 input gates
  // all fire in step L on their own columns.
  for (int i = 1; i < latency; ++i) {
    const dfg::NodeId delay = d.findByName(util::format("delay_%d", i));
    if (delay != dfg::kNoNode) sd.place(delay, i, 1);
  }
  int gateCol = 0;
  for (const dfg::Node& n : g.nodes()) {
    const dfg::NodeId i2 = d.findByName(n.name + "_i2");
    if (n.kind == dfg::OpKind::Input) {
      if (i2 != dfg::kNoNode) sd.place(i2, latency, ++gateCol + 1);
      continue;
    }
    if (!dfg::isSchedulable(n.kind)) continue;
    const dfg::NodeId i1 = d.findByName(n.name + "_i1");
    const int step = folded.schedule.stepOf(n.id);
    const int col = folded.schedule.columnOf(n.id);
    sd.place(i1, step, col);
    sd.place(i2, step + latency, col);
  }

  for (const auto& [t, n] : sd.fuCount())
    if (t != dfg::FuType::LoopUnit) res.fuCount[t] = n;
  res.doubled = std::move(sd);
  res.feasible = true;
  return res;
}

FunctionalPipelineResult runFunctionalPipelinedMfs(const dfg::Dfg& g,
                                                   int timeSteps, int latency,
                                                   const core::MfsOptions& base) {
  FunctionalPipelineResult res;
  res.latency = latency;

  core::MfsOptions opt = base;
  opt.mode = core::MfsLiapunov::Mode::TimeConstrained;
  opt.constraints.timeSteps = timeSteps;
  opt.constraints.latency = latency;
  res.mfs = core::runMfs(g, opt);
  if (!res.mfs.feasible) {
    res.error = res.mfs.error;
    return res;
  }
  res.fuCount = res.mfs.fuCount;  // folding already accounts for the overlap
  res.feasible = true;
  return res;
}

}  // namespace mframe::pipeline
