#include "pipeline/structural.h"

namespace mframe::pipeline {

sched::Constraints withStructuralPipelining(sched::Constraints c,
                                            const std::set<dfg::FuType>& types) {
  for (dfg::FuType t : types) c.pipelinedFus.insert(t);
  return c;
}

std::vector<std::pair<int, int>> stageSlices(int step, int cycles) {
  std::vector<std::pair<int, int>> out;
  for (int s = 0; s < cycles; ++s) out.emplace_back(s + 1, step + s);
  return out;
}

}  // namespace mframe::pipeline
