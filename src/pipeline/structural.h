// Structural pipelining (Section 5.5.1): multicycle operations execute on
// multi-stage pipelined units, so "once any stage of a pipelined FU is
// empty, it is considered available" — a unit can accept a new operation
// every control step even while earlier initiations are still in flight.
//
// The paper realizes this by splitting a k-cycle operation into k
// single-cycle stage-operations of distinct types scheduled in consecutive
// steps. Occupancy-wise that construction is equivalent to saying two
// operations conflict on a pipelined unit iff they start in the same step
// (stage s of an op started at t occupies the stage-s slice exactly at step
// t+s-1, so slices collide iff start steps match). ColumnOccupancy
// implements that rule directly; this header provides the constraint setup
// and the equivalence helper the tests use to validate it.
#pragma once

#include <set>
#include <vector>

#include "sched/schedule.h"

namespace mframe::pipeline {

/// Return a copy of `c` with the given FU types marked structurally
/// pipelined.
sched::Constraints withStructuralPipelining(sched::Constraints c,
                                            const std::set<dfg::FuType>& types);

/// The (stage, step) slices a k-cycle operation started at `step` occupies
/// on a pipelined unit — the explicit stage-expansion view of Section 5.5.1.
/// Two operations on one unit conflict iff their slice sets intersect, which
/// happens iff their start steps are equal; the property test checks this
/// equivalence exhaustively.
std::vector<std::pair<int, int>> stageSlices(int step, int cycles);

}  // namespace mframe::pipeline
