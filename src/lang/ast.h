// AST for the behavioral input language — a small SYNTEST-flavored subset
// that lowers onto the DFG IR (Section 1: "high-level synthesis deals with
// the automatic design of RTL implementations ... from behavioral
// descriptions"). Grammar sketch:
//
//   design <name>;
//   input a, b, c;
//   output y, flag;
//
//   t1 = 3 * x;                      # expression statement
//   t2 = u * dx [cycles=2];          # attribute on the root operation
//   if (t1 < a) { p = t1 + 1; } else { q = t1 - 1; }
//   loop l1 within 4 { acc = acc + t2; }   # folded inner loop (Section 5.2)
//   y = t2 + 1;
//
// Operators: + - * / % is absent; & | ^ ! << >> < > <= >= == != with C-like
// precedence; parentheses; unsigned integer literals.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dfg/op.h"

namespace mframe::lang {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind { Number, Variable, Unary, Binary };
  Kind kind = Kind::Number;
  int line = 0;

  long number = 0;          ///< Number
  std::string name;         ///< Variable
  dfg::OpKind op{};         ///< Unary/Binary operation
  ExprPtr lhs;              ///< Unary operand / Binary left
  ExprPtr rhs;              ///< Binary right
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind { Assign, If, Loop };
  Kind kind = Kind::Assign;
  int line = 0;

  // Assign
  std::string target;
  ExprPtr value;
  int cycles = 1;       ///< [cycles=k] attribute on the root op
  double delayNs = -1;  ///< [delay=ns] attribute on the root op

  // If
  ExprPtr cond;
  std::vector<StmtPtr> thenBody;
  std::vector<StmtPtr> elseBody;

  // Loop
  std::string loopName;
  int within = 0;  ///< local time constraint (control steps per iteration)
  long tripBound = 0;  ///< loop bound for the bookkeeping ops (0 = none)
  std::vector<StmtPtr> body;
};

struct Program {
  std::string name;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<StmtPtr> stmts;
};

}  // namespace mframe::lang
