#include "lang/lower.h"

#include <functional>
#include <map>
#include <set>

#include "dfg/builder.h"
#include "lang/parser.h"
#include "util/strings.h"

namespace mframe::lang {

namespace {

/// Collect variables a statement list reads before assigning (free vars).
void freeVars(const std::vector<StmtPtr>& stmts, std::set<std::string>& assigned,
              std::set<std::string>& free) {
  std::function<void(const Expr&)> walkExpr = [&](const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::Variable:
        if (!assigned.count(e.name)) free.insert(e.name);
        break;
      case Expr::Kind::Unary:
        walkExpr(*e.lhs);
        break;
      case Expr::Kind::Binary:
        walkExpr(*e.lhs);
        walkExpr(*e.rhs);
        break;
      case Expr::Kind::Number:
        break;
    }
  };
  for (const StmtPtr& s : stmts) {
    switch (s->kind) {
      case Stmt::Kind::Assign:
        walkExpr(*s->value);
        assigned.insert(s->target);
        break;
      case Stmt::Kind::If: {
        walkExpr(*s->cond);
        std::set<std::string> thenAssigned = assigned;
        std::set<std::string> elseAssigned = assigned;
        freeVars(s->thenBody, thenAssigned, free);
        freeVars(s->elseBody, elseAssigned, free);
        // Only names assigned on both paths are definitely assigned after.
        for (const auto& n : thenAssigned)
          if (elseAssigned.count(n)) assigned.insert(n);
        break;
      }
      case Stmt::Kind::Loop: {
        std::set<std::string> bodyAssigned;  // loop scope is separate
        freeVars(s->body, bodyAssigned, free);
        assigned.insert(s->loopName);
        break;
      }
    }
  }
}

class Lowerer {
 public:
  explicit Lowerer(std::string designName)
      : b_(std::move(designName)) {}

  /// Declare primary inputs.
  void declareInputs(const std::vector<std::string>& names) {
    for (const auto& n : names) {
      if (env_.count(n)) throw LangError(0, "duplicate input '" + n + "'");
      env_[n] = b_.input(n);
    }
  }

  void lowerStmts(const std::vector<StmtPtr>& stmts,
                  std::vector<dfg::LoopNest>& children) {
    for (const StmtPtr& s : stmts) lowerStmt(*s, children);
  }

  void markOutputs(const std::vector<std::string>& outputs) {
    for (const auto& name : outputs) {
      auto it = env_.find(name);
      if (it == env_.end())
        throw LangError(0, "output '" + name + "' was never assigned");
      b_.output(it->second, name);
    }
  }

  dfg::Dfg finish() && { return std::move(b_).build(); }

 private:
  void lowerStmt(const Stmt& s, std::vector<dfg::LoopNest>& children) {
    switch (s.kind) {
      case Stmt::Kind::Assign: {
        const dfg::NodeId v =
            lowerExpr(*s.value, nodeName(s.target), s.cycles, s.delayNs);
        env_[s.target] = v;
        break;
      }
      case Stmt::Kind::If: {
        const int id = ++condCounter_;
        lowerExpr(*s.cond, util::format("c%d_cond", id), 1, -1);
        auto before = env_;
        b_.pushBranch(util::format("c%d", id), "t");
        lowerStmts(s.thenBody, children);
        b_.popBranch();
        auto thenEnv = env_;
        env_ = before;
        b_.pushBranch(util::format("c%d", id), "e");
        lowerStmts(s.elseBody, children);
        b_.popBranch();
        auto elseEnv = env_;
        // Merge: a name rebound in exactly one arm survives; both arms with
        // different values would need a phi, which a pure DFG lacks.
        env_ = before;
        for (const auto& [name, node] : thenEnv) {
          const bool changedThen = !before.count(name) || before[name] != node;
          const auto eIt = elseEnv.find(name);
          const bool changedElse =
              eIt != elseEnv.end() &&
              (!before.count(name) || before[name] != eIt->second);
          if (changedThen && changedElse && eIt->second != node)
            throw LangError(s.line,
                            "variable '" + name +
                                "' is assigned in both arms of the "
                                "conditional; phi-merge is not supported");
          if (changedThen) env_[name] = node;
        }
        for (const auto& [name, node] : elseEnv) {
          const bool changedElse = !before.count(name) || before[name] != node;
          if (changedElse) env_[name] = node;
        }
        break;
      }
      case Stmt::Kind::Loop: {
        if (env_.count(s.loopName))
          throw LangError(s.line, "loop name '" + s.loopName + "' collides");
        // Body free variables become the body DFG's primary inputs.
        std::set<std::string> assigned, free;
        freeVars(s.body, assigned, free);

        Lowerer bodyLowerer(s.loopName);
        std::vector<std::string> bodyInputs;
        for (const auto& n : free) {
          if (!env_.count(n))
            throw LangError(s.line, "loop reads undefined variable '" + n + "'");
          bodyInputs.push_back(n);
        }
        bodyLowerer.declareInputs(bodyInputs);

        dfg::LoopNest child;
        bodyLowerer.lowerStmts(s.body, child.children);
        // Everything assigned at the loop's top level is a body output.
        std::vector<std::string> bodyOutputs;
        for (const auto& n : assigned)
          if (bodyLowerer.env_.count(n)) bodyOutputs.push_back(n);
        bodyLowerer.markOutputs(bodyOutputs);
        child.body = std::move(bodyLowerer).finish();
        if (s.tripBound > 0)
          dfg::addLoopBookkeeping(child.body, s.loopName + "_i", s.tripBound);
        child.localTimeConstraint = s.within;
        children.push_back(std::move(child));

        // The loop appears in the parent as a LoopSuper node fed by the
        // free variables; foldLoopNest assigns its cycle count later.
        std::vector<dfg::NodeId> feeds;
        for (const auto& n : bodyInputs) feeds.push_back(env_.at(n));
        env_[s.loopName] =
            b_.op(dfg::OpKind::LoopSuper, std::move(feeds), s.loopName);
        break;
      }
    }
  }

  /// Lower an expression tree; the root node takes `rootName` plus the
  /// optional attributes, inner temporaries get fresh names.
  dfg::NodeId lowerExpr(const Expr& e, const std::string& rootName, int cycles,
                        double delayNs) {
    switch (e.kind) {
      case Expr::Kind::Number: {
        // A bare number as a full right-hand side still binds the name.
        const dfg::NodeId k = constant(e.number);
        return k;
      }
      case Expr::Kind::Variable: {
        auto it = env_.find(e.name);
        if (it == env_.end())
          throw LangError(e.line, "use of undefined variable '" + e.name + "'");
        return it->second;
      }
      case Expr::Kind::Unary: {
        const dfg::NodeId a = lowerExpr(*e.lhs, temp(), 1, -1);
        return b_.op(e.op, {a}, rootName, cycles, delayNs);
      }
      case Expr::Kind::Binary: {
        const dfg::NodeId a = lowerExpr(*e.lhs, temp(), 1, -1);
        const dfg::NodeId b2 = lowerExpr(*e.rhs, temp(), 1, -1);
        return b_.op(e.op, {a, b2}, rootName, cycles, delayNs);
      }
    }
    throw LangError(e.line, "unreachable expression kind");
  }

  dfg::NodeId constant(long v) {
    auto it = consts_.find(v);
    if (it != consts_.end()) return it->second;
    const dfg::NodeId id = b_.constant(v, util::format("lit_%ld", v));
    consts_[v] = id;
    return id;
  }

  /// SSA renaming: first binding uses the source name, rebinds get suffixes.
  std::string nodeName(const std::string& target) {
    const int n = ++versionOf_[target];
    return n == 1 ? target : util::format("%s_v%d", target.c_str(), n);
  }
  std::string temp() { return util::format("__t%d", ++tempCounter_); }

  dfg::Builder b_;
  std::map<std::string, dfg::NodeId> env_;
  std::map<long, dfg::NodeId> consts_;
  std::map<std::string, int> versionOf_;
  int tempCounter_ = 0;
  int condCounter_ = 0;
};

}  // namespace

Compiled lower(const Program& p) {
  Lowerer lw(p.name);
  lw.declareInputs(p.inputs);
  Compiled out;
  lw.lowerStmts(p.stmts, out.nest.children);
  lw.markOutputs(p.outputs);
  out.nest.body = std::move(lw).finish();
  return out;
}

Compiled compile(std::string_view source) { return lower(parseProgram(source)); }

dfg::Dfg compileFlat(std::string_view source) {
  Compiled c = compile(source);
  if (c.hasLoops())
    throw LangError(0, "program contains loops; use compile() + foldLoopNest");
  return std::move(c.nest.body);
}

}  // namespace mframe::lang
