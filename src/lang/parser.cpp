#include "lang/parser.h"

#include <string>

namespace mframe::lang {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Program run() {
    Program p;
    expect(Token::Kind::KwDesign, "expected 'design <name>;'");
    p.name = expectIdent("design name");
    expect(Token::Kind::Semi, "expected ';' after design name");
    while (at(Token::Kind::KwInput) || at(Token::Kind::KwOutput)) {
      const bool isInput = at(Token::Kind::KwInput);
      advance();
      do {
        (isInput ? p.inputs : p.outputs).push_back(expectIdent("signal name"));
      } while (accept(Token::Kind::Comma));
      expect(Token::Kind::Semi, "expected ';' after declaration");
    }
    while (!at(Token::Kind::End)) p.stmts.push_back(statement());
    return p;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  bool at(Token::Kind k) const { return cur().kind == k; }
  void advance() { if (!at(Token::Kind::End)) ++pos_; }
  bool accept(Token::Kind k) {
    if (!at(k)) return false;
    advance();
    return true;
  }
  void expect(Token::Kind k, const std::string& msg) {
    if (!accept(k)) throw LangError(cur().line, msg);
  }
  std::string expectIdent(const std::string& what) {
    if (!at(Token::Kind::Ident))
      throw LangError(cur().line, "expected " + what);
    std::string s = cur().text;
    advance();
    return s;
  }

  /// Bounds the recursive descent (expression nesting, nested blocks): each
  /// level on the call stack holds one of these, and crossing
  /// kMaxNestingDepth surfaces a parse error at the offending token's line
  /// instead of overflowing the stack on mechanically generated input.
  struct DepthGuard {
    explicit DepthGuard(Parser& p) : p_(p) {
      if (++p_.depth_ > kMaxNestingDepth)
        throw LangError(p_.cur().line,
                        "nesting deeper than " +
                            std::to_string(kMaxNestingDepth) +
                            " levels; simplify the expression");
    }
    ~DepthGuard() { --p_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    Parser& p_;
  };

  StmtPtr statement() {
    const DepthGuard guard(*this);
    if (at(Token::Kind::KwIf)) return ifStatement();
    if (at(Token::Kind::KwLoop)) return loopStatement();
    return assignStatement();
  }

  StmtPtr assignStatement() {
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::Assign;
    s->line = cur().line;
    s->target = expectIdent("assignment target");
    expect(Token::Kind::Assign, "expected '=' in assignment");
    s->value = expression();
    // Optional [cycles=k] / [delay=ns] attributes on the root operation.
    while (accept(Token::Kind::LBracket)) {
      const std::string key = expectIdent("attribute name");
      expect(Token::Kind::Assign, "expected '=' in attribute");
      if (!at(Token::Kind::Number))
        throw LangError(cur().line, "expected numeric attribute value");
      const long v = cur().number;
      advance();
      if (key == "cycles") {
        if (v < 1) throw LangError(s->line, "cycles must be >= 1");
        s->cycles = static_cast<int>(v);
      } else if (key == "delay") {
        s->delayNs = static_cast<double>(v);
      } else {
        throw LangError(s->line, "unknown attribute '" + key + "'");
      }
      expect(Token::Kind::RBracket, "expected ']' after attribute");
    }
    expect(Token::Kind::Semi, "expected ';' after assignment");
    return s;
  }

  StmtPtr ifStatement() {
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::If;
    s->line = cur().line;
    advance();  // if
    expect(Token::Kind::LParen, "expected '(' after if");
    s->cond = expression();
    expect(Token::Kind::RParen, "expected ')' after condition");
    s->thenBody = block();
    if (accept(Token::Kind::KwElse)) s->elseBody = block();
    return s;
  }

  StmtPtr loopStatement() {
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::Loop;
    s->line = cur().line;
    advance();  // loop
    s->loopName = expectIdent("loop name");
    expect(Token::Kind::KwWithin, "expected 'within <steps>' after loop name");
    if (!at(Token::Kind::Number))
      throw LangError(cur().line, "expected step count after 'within'");
    s->within = static_cast<int>(cur().number);
    advance();
    if (accept(Token::Kind::KwBound)) {
      if (!at(Token::Kind::Number))
        throw LangError(cur().line, "expected trip bound after 'bound'");
      s->tripBound = cur().number;
      advance();
    }
    s->body = block();
    return s;
  }

  std::vector<StmtPtr> block() {
    expect(Token::Kind::LBrace, "expected '{'");
    std::vector<StmtPtr> body;
    while (!at(Token::Kind::RBrace)) {
      if (at(Token::Kind::End)) throw LangError(cur().line, "unterminated block");
      body.push_back(statement());
    }
    advance();  // }
    return body;
  }

  // Precedence climbing. Levels (loose to tight):
  //   1: | ^    2: &    3: == != < > <= >=    4: << >>    5: + -    6: * /
  //   unary: ! -
  static int precOf(Token::Kind k) {
    switch (k) {
      case Token::Kind::Pipe:
      case Token::Kind::Caret: return 1;
      case Token::Kind::Amp: return 2;
      case Token::Kind::EqEq:
      case Token::Kind::Ne:
      case Token::Kind::Lt:
      case Token::Kind::Gt:
      case Token::Kind::Le:
      case Token::Kind::Ge: return 3;
      case Token::Kind::Shl:
      case Token::Kind::Shr: return 4;
      case Token::Kind::Plus:
      case Token::Kind::Minus: return 5;
      case Token::Kind::Star:
      case Token::Kind::Slash: return 6;
      default: return 0;
    }
  }

  static dfg::OpKind opOf(Token::Kind k) {
    switch (k) {
      case Token::Kind::Pipe: return dfg::OpKind::Or;
      case Token::Kind::Caret: return dfg::OpKind::Xor;
      case Token::Kind::Amp: return dfg::OpKind::And;
      case Token::Kind::EqEq: return dfg::OpKind::Eq;
      case Token::Kind::Ne: return dfg::OpKind::Ne;
      case Token::Kind::Lt: return dfg::OpKind::Lt;
      case Token::Kind::Gt: return dfg::OpKind::Gt;
      case Token::Kind::Le: return dfg::OpKind::Le;
      case Token::Kind::Ge: return dfg::OpKind::Ge;
      case Token::Kind::Shl: return dfg::OpKind::Shl;
      case Token::Kind::Shr: return dfg::OpKind::Shr;
      case Token::Kind::Plus: return dfg::OpKind::Add;
      case Token::Kind::Minus: return dfg::OpKind::Sub;
      case Token::Kind::Star: return dfg::OpKind::Mul;
      case Token::Kind::Slash: return dfg::OpKind::Div;
      default: return dfg::OpKind::Add;
    }
  }

  ExprPtr expression(int minPrec = 1) {
    const DepthGuard guard(*this);
    ExprPtr lhs = unary();
    while (true) {
      const int prec = precOf(cur().kind);
      if (prec == 0 || prec < minPrec) break;
      const dfg::OpKind op = opOf(cur().kind);
      const int line = cur().line;
      advance();
      ExprPtr rhs = expression(prec + 1);  // left associative
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Binary;
      e->line = line;
      e->op = op;
      e->lhs = std::move(lhs);
      e->rhs = std::move(rhs);
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr unary() {
    const DepthGuard guard(*this);
    if (at(Token::Kind::Bang)) {
      const int line = cur().line;
      advance();
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Unary;
      e->line = line;
      e->op = dfg::OpKind::Not;
      e->lhs = unary();
      return e;
    }
    return primary();
  }

  ExprPtr primary() {
    auto e = std::make_unique<Expr>();
    e->line = cur().line;
    if (at(Token::Kind::Number)) {
      e->kind = Expr::Kind::Number;
      e->number = cur().number;
      advance();
      return e;
    }
    if (at(Token::Kind::Ident)) {
      e->kind = Expr::Kind::Variable;
      e->name = cur().text;
      advance();
      return e;
    }
    if (accept(Token::Kind::LParen)) {
      ExprPtr inner = expression();
      expect(Token::Kind::RParen, "expected ')'");
      return inner;
    }
    throw LangError(cur().line, "expected expression");
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  int depth_ = 0;  ///< current recursive-descent depth (see DepthGuard)
};

}  // namespace

Program parseProgram(std::string_view source) {
  return Parser(tokenize(source)).run();
}

}  // namespace mframe::lang
