// Tokenizer for the behavioral language.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mframe::lang {

class LangError : public std::runtime_error {
 public:
  LangError(int line, const std::string& msg)
      : std::runtime_error("lang error at line " + std::to_string(line) + ": " + msg),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

struct Token {
  enum class Kind {
    Ident,
    Number,
    // punctuation / operators
    Semi, Comma, Assign, LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Plus, Minus, Star, Slash, Amp, Pipe, Caret, Bang,
    Shl, Shr, Lt, Gt, Le, Ge, EqEq, Ne,
    // keywords
    KwDesign, KwInput, KwOutput, KwIf, KwElse, KwLoop, KwWithin, KwBound,
    End,
  };
  Kind kind = Kind::End;
  std::string text;
  long number = 0;
  int line = 1;
};

/// Tokenize the whole source; '#' starts a line comment. Throws LangError.
std::vector<Token> tokenize(std::string_view source);

}  // namespace mframe::lang
