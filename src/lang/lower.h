// Lowering from the behavioral AST onto the DFG IR.
//
// Semantics notes (the subset mirrors what the paper's algorithms consume):
//  * assignments are SSA-renamed: reassigning `v` creates a fresh node and
//    rebinds the name;
//  * `if` arms lower to branch-tagged, mutually exclusive operations
//    (Section 5.1). A variable assigned in *both* arms has no phi node in a
//    pure DFG — that is a compile error; assignments visible after the `if`
//    are those made in exactly one arm;
//  * `loop <name> within <T> [bound <N>] { ... }` compiles its body into a
//    child dfg::LoopNest (Section 5.2). Free variables of the body become
//    body inputs; `bound N` adds the increment/compare bookkeeping ops. In
//    the parent graph the loop appears as a LoopSuper node whose cycle count
//    is filled in by dfg::foldLoopNest once the body is scheduled. Values
//    computed inside a loop are the loop's outputs and are not readable in
//    the parent (fold first, then compose);
//  * every declared `output` must be assigned at top level.
#pragma once

#include <string_view>

#include "dfg/transforms.h"
#include "lang/ast.h"

namespace mframe::lang {

struct Compiled {
  dfg::LoopNest nest;  ///< top body + one child per `loop`
  bool hasLoops() const { return !nest.children.empty(); }
};

/// Lower a parsed program. Throws LangError on semantic problems.
Compiled lower(const Program& p);

/// Parse + lower in one step.
Compiled compile(std::string_view source);

/// Parse + lower a loop-free program straight to a Dfg; throws if the
/// program contains loops.
dfg::Dfg compileFlat(std::string_view source);

}  // namespace mframe::lang
