// Recursive-descent parser producing the behavioral AST.
#pragma once

#include <string_view>

#include "lang/ast.h"
#include "lang/lexer.h"

namespace mframe::lang {

/// Maximum combined statement/expression nesting depth the parser accepts.
/// The descent recurses per nesting level, so an unbounded mechanically
/// generated input (thousands of '(' or nested blocks) would overflow the
/// stack; past this limit the parser raises a LangError with the offending
/// line instead.
inline constexpr int kMaxNestingDepth = 256;

/// Parse a whole program. Throws LangError with line numbers.
Program parseProgram(std::string_view source);

}  // namespace mframe::lang
