// Recursive-descent parser producing the behavioral AST.
#pragma once

#include <string_view>

#include "lang/ast.h"
#include "lang/lexer.h"

namespace mframe::lang {

/// Parse a whole program. Throws LangError with line numbers.
Program parseProgram(std::string_view source);

}  // namespace mframe::lang
