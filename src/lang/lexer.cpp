#include "lang/lexer.h"

#include <cctype>

#include "util/strings.h"

namespace mframe::lang {

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;

  auto push = [&](Token::Kind k, std::string text = {}, long num = 0) {
    Token t;
    t.kind = k;
    t.text = std::move(text);
    t.number = num;
    t.line = line;
    out.push_back(std::move(t));
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t b = i;
      while (i < src.size() && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                                src[i] == '_'))
        ++i;
      const std::string word(src.substr(b, i - b));
      if (word == "design") push(Token::Kind::KwDesign);
      else if (word == "input") push(Token::Kind::KwInput);
      else if (word == "output") push(Token::Kind::KwOutput);
      else if (word == "if") push(Token::Kind::KwIf);
      else if (word == "else") push(Token::Kind::KwElse);
      else if (word == "loop") push(Token::Kind::KwLoop);
      else if (word == "within") push(Token::Kind::KwWithin);
      else if (word == "bound") push(Token::Kind::KwBound);
      else push(Token::Kind::Ident, word);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t b = i;
      while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
      const std::string lit(src.substr(b, i - b));
      const long value = util::parseLong(lit);
      if (value < 0)
        throw LangError(line, "integer literal '" + lit +
                                  "' overflows the machine word");
      push(Token::Kind::Number, lit, value);
      continue;
    }
    auto two = [&](char a, char b2) {
      return c == a && i + 1 < src.size() && src[i + 1] == b2;
    };
    if (two('<', '<')) { push(Token::Kind::Shl); i += 2; continue; }
    if (two('>', '>')) { push(Token::Kind::Shr); i += 2; continue; }
    if (two('<', '=')) { push(Token::Kind::Le); i += 2; continue; }
    if (two('>', '=')) { push(Token::Kind::Ge); i += 2; continue; }
    if (two('=', '=')) { push(Token::Kind::EqEq); i += 2; continue; }
    if (two('!', '=')) { push(Token::Kind::Ne); i += 2; continue; }
    switch (c) {
      case ';': push(Token::Kind::Semi); break;
      case ',': push(Token::Kind::Comma); break;
      case '=': push(Token::Kind::Assign); break;
      case '(': push(Token::Kind::LParen); break;
      case ')': push(Token::Kind::RParen); break;
      case '{': push(Token::Kind::LBrace); break;
      case '}': push(Token::Kind::RBrace); break;
      case '[': push(Token::Kind::LBracket); break;
      case ']': push(Token::Kind::RBracket); break;
      case '+': push(Token::Kind::Plus); break;
      case '-': push(Token::Kind::Minus); break;
      case '*': push(Token::Kind::Star); break;
      case '/': push(Token::Kind::Slash); break;
      case '&': push(Token::Kind::Amp); break;
      case '|': push(Token::Kind::Pipe); break;
      case '^': push(Token::Kind::Caret); break;
      case '!': push(Token::Kind::Bang); break;
      case '<': push(Token::Kind::Lt); break;
      case '>': push(Token::Kind::Gt); break;
      default:
        throw LangError(line, std::string("unexpected character '") + c + "'");
    }
    ++i;
  }
  push(Token::Kind::End);
  return out;
}

}  // namespace mframe::lang
