// Structured diagnostics — the common currency of the lint engine.
//
// Every rule pass (DFG, schedule, RTL) emits Diagnostic records instead of
// raw strings: a stable rule id ("DFG003"), a severity, the kind of entity
// at fault and its location (node / step / unit), a human-readable message
// and an optional fix-it hint. A LintReport collects them in emission order
// and renders either plain text or a machine-readable JSON document, so
// tools can filter by rule or severity and CI can gate on thresholds.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mframe::analysis {

enum class Severity : std::uint8_t { Note, Warning, Error };

std::string_view severityName(Severity s);

/// Parse "error"/"warning"/"note"; returns false on unknown text.
bool parseSeverity(std::string_view text, Severity& out);

/// What a diagnostic points at.
enum class EntityKind : std::uint8_t {
  Design,    ///< whole-design problems (no finer location)
  Node,      ///< a DFG node / the signal it produces
  Step,      ///< a control step
  Fu,        ///< an FU-type column of the placement grid
  Alu,       ///< an allocated ALU instance
  Register,  ///< an allocated register
  Bus,       ///< a shared interconnect bus
  Port,      ///< an ALU input port (mux)
  Field,     ///< a microcode ROM field
};

std::string_view entityKindName(EntityKind k);

/// Where in the design the problem sits. Unset fields are -1 / empty and are
/// omitted from rendered output.
struct Location {
  std::string node;    ///< signal name of the offending node
  int line = -1;       ///< source line for textual inputs
  int step = -1;       ///< 1-based control step
  int unit = -1;       ///< FU column / ALU index / register / bus / port index
  std::string detail;  ///< free-form context, e.g. a cycle path or field name

  bool operator==(const Location&) const = default;
};

struct Diagnostic {
  std::string rule;                    ///< stable id, e.g. "DFG003"
  Severity severity = Severity::Error;
  EntityKind entity = EntityKind::Design;
  Location loc;
  std::string message;
  std::string fixit;                   ///< optional suggested fix ("" = none)
  /// Provenance chain, outermost first — e.g. the validator's
  /// op -> step -> FU -> port -> bus -> register trail. Empty for rules
  /// whose location says everything.
  std::vector<std::string> provenance;

  /// One-line rendering: "error[DFG003] node 'y': message (fix: ...)",
  /// followed by one indented "via: ..." line per provenance entry.
  std::string toText() const;

  bool operator==(const Diagnostic&) const = default;
};

/// Ordered collection of diagnostics plus severity tallies.
class LintReport {
 public:
  void add(Diagnostic d) { diags_.push_back(std::move(d)); }
  void merge(LintReport other);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  bool empty() const { return diags_.empty(); }
  std::size_t size() const { return diags_.size(); }

  std::size_t count(Severity s) const;
  bool hasErrors() const { return count(Severity::Error) > 0; }

  /// True when any diagnostic is at least as severe as `threshold`.
  bool hasAtOrAbove(Severity threshold) const;

  /// Diagnostics carrying the given rule id.
  std::vector<Diagnostic> byRule(std::string_view rule) const;

  /// Legacy adapter: the bare messages, in emission order (the old
  /// verifySchedule/verifyDatapath contract).
  std::vector<std::string> messages() const;

  /// Multi-line human-readable rendering (one toText() line per diagnostic,
  /// followed by a severity summary line).
  std::string renderText() const;

  /// Machine-readable rendering; see docs/FORMATS.md for the schema.
  std::string renderJson(std::string_view designName) const;

 private:
  std::vector<Diagnostic> diags_;
};

/// Re-parse the output of LintReport::renderJson — the round-trip used by
/// tests and by downstream tools that archive lint results. Returns
/// std::nullopt and fills *error on malformed input.
std::optional<std::vector<Diagnostic>> parseDiagnosticsJson(
    std::string_view json, std::string* error = nullptr);

}  // namespace mframe::analysis
