// The OPT diagnostic family and the --fix rewriter, built on the dataflow
// passes. lintDataflow runs every pass and reports optimization
// opportunities as structured diagnostics:
//
//   OPT001  operation computes a compile-time constant (foldable)
//   OPT002  operation is dead once constants are folded
//   OPT003  operation duplicates an expression another operation produces
//   OPT004  operation is declared wider than its value range requires
//
// applyFixes performs the rewrites OPT001/OPT002 suggest — constant folding
// and dead-code elimination — returning a new graph that computes the same
// outputs (the fold→prove round-trip tests hold it to the translation
// validator's standard). Duplicate-expression and width findings are
// detection-only: merging ops or narrowing declared widths changes the
// design interface, so those stay with the designer.
#pragma once

#include "analysis/dataflow/passes.h"
#include "analysis/diagnostic.h"

namespace mframe::analysis::dataflow {

struct DataflowOptions {
  int wordWidth = 16;  ///< analysis word width (matches the simulators)
};

/// Everything the passes learned about one graph, plus the OPT report.
struct DataflowResult {
  std::vector<ConstValue> constants;
  std::vector<Interval> ranges;
  std::vector<int> widths;  ///< inferred bits per node
  std::vector<char> demand;
  std::vector<char> needed;
  std::vector<DuplicateGroup> duplicates;
  int engineVisits = 0;  ///< total node evaluations across all fixpoints
  LintReport report;     ///< the OPT diagnostics
};

/// Run constant / range / liveness / CSE analysis and emit OPT diagnostics.
DataflowResult lintDataflow(const dfg::Dfg& g, const DataflowOptions& opts = {});

/// Fold constant-valued operations into Const nodes and drop operations
/// whose results are never needed (plus Const leaves orphaned by the
/// rewrite). Input nodes always survive — the primary-input interface is
/// part of the design contract even when a value goes unused. Node ids are
/// remapped compactly, preserving topological order; `fixed.validate()`
/// holds whenever `g.validate()` did.
dfg::Dfg applyFixes(const dfg::Dfg& g, const DataflowResult& analysis);

}  // namespace mframe::analysis::dataflow
