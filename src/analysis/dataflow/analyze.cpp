#include "analysis/dataflow/analyze.h"

#include <vector>

#include "analysis/rules.h"
#include "trace/trace.h"
#include "util/strings.h"

namespace mframe::analysis::dataflow {

namespace {

using dfg::NodeId;
using dfg::OpKind;

Diagnostic optDiag(std::string_view rule, const dfg::Node& n,
                   std::string message, std::string fixit = "") {
  Diagnostic d;
  d.rule = std::string(rule);
  d.severity = findRule(rule)->severity;
  d.entity = EntityKind::Node;
  d.loc.node = n.name.empty() ? util::format("#%u", n.id) : n.name;
  d.message = std::move(message);
  d.fixit = std::move(fixit);
  return d;
}

/// Nodes whose value reaches some primary output structurally (ignoring
/// foldability) — DFG004 already owns unreachable ops, so OPT002 restricts
/// itself to ops that are reachable yet dead after folding.
std::vector<char> reachesOutput(const dfg::Dfg& g) {
  std::vector<char> reaches(g.size(), 0);
  std::vector<NodeId> work;
  for (const auto& [id, ext] : g.outputs())
    if (id < g.size() && !reaches[id]) {
      reaches[id] = 1;
      work.push_back(id);
    }
  while (!work.empty()) {
    const NodeId id = work.back();
    work.pop_back();
    for (NodeId in : g.node(id).inputs)
      if (!reaches[in]) {
        reaches[in] = 1;
        work.push_back(in);
      }
  }
  return reaches;
}

bool isRelational(OpKind k) {
  return k == OpKind::Eq || k == OpKind::Ne || k == OpKind::Lt ||
         k == OpKind::Gt || k == OpKind::Le || k == OpKind::Ge;
}

}  // namespace

DataflowResult lintDataflow(const dfg::Dfg& g, const DataflowOptions& opts) {
  const trace::Span span("dataflow");
  DataflowResult r;
  int visits = 0;
  r.constants = analyzeConstants(g, opts.wordWidth, &visits);
  r.engineVisits += visits;
  r.ranges = analyzeRanges(g, opts.wordWidth, &visits);
  r.engineVisits += visits;
  r.widths = inferWidths(r.ranges);
  r.demand = analyzeDemand(g, r.constants, &visits);
  r.engineVisits += visits;
  r.needed = resultNeeded(g, r.demand);
  r.duplicates = findDuplicateExprs(g);

  const std::vector<char> reaches = reachesOutput(g);

  // OPT001 / OPT002, in node order.
  for (NodeId id = 0; id < g.size(); ++id) {
    const dfg::Node& n = g.node(id);
    if (!dfg::isSchedulable(n.kind)) continue;
    if (r.constants[id].isConst()) {
      r.report.add(optDiag(
          kOptFoldableConst, n,
          util::format("'%s' always computes %llu", n.name.c_str(),
                       static_cast<unsigned long long>(r.constants[id].value)),
          util::format("replace with 'const %llu %s'",
                       static_cast<unsigned long long>(r.constants[id].value),
                       n.name.c_str())));
    } else if (!r.needed[id] && reaches[id]) {
      r.report.add(optDiag(
          kOptDeadOp, n,
          util::format("'%s' only feeds operations that fold to constants",
                       n.name.c_str()),
          "remove the operation (analyze --fix)"));
    }
  }

  // OPT003, grouped by canonical producer.
  for (const DuplicateGroup& grp : r.duplicates) {
    const dfg::Node& first = g.node(grp.first);
    for (NodeId repeat : grp.repeats) {
      const dfg::Node& n = g.node(repeat);
      Diagnostic d = optDiag(
          kOptDuplicateExpr, n,
          util::format("'%s' recomputes the expression of '%s'",
                       n.name.c_str(), first.name.c_str()),
          util::format("reuse signal '%s'", first.name.c_str()));
      d.provenance.push_back(util::format(
          "first computed by op '%s' (%s)", first.name.c_str(),
          std::string(dfg::kindName(first.kind)).c_str()));
      r.report.add(std::move(d));
    }
  }

  // OPT004: the declared (or word-default) width exceeds what the inferred
  // range needs. Relational results are one bit by construction and full-
  // range results carry no information, so neither is reported.
  for (NodeId id = 0; id < g.size(); ++id) {
    const dfg::Node& n = g.node(id);
    if (!dfg::isSchedulable(n.kind) || isRelational(n.kind) ||
        n.kind == OpKind::LoopSuper)
      continue;
    // A foldable op disappears entirely (OPT001); width advice is moot.
    if (r.constants[id].isConst()) continue;
    if (r.ranges[id].isFull(opts.wordWidth)) continue;
    const int declared = n.width > 0 ? n.width : opts.wordWidth;
    if (declared > r.widths[id])
      r.report.add(optDiag(
          kOptOverWideOp, n,
          util::format("'%s' is %d bit(s) wide but its values fit %d bit(s) "
                       "(range %llu..%llu)",
                       n.name.c_str(), declared, r.widths[id],
                       static_cast<unsigned long long>(r.ranges[id].lo),
                       static_cast<unsigned long long>(r.ranges[id].hi)),
          util::format("declare 'width=%d'", r.widths[id])));
  }

  return r;
}

dfg::Dfg applyFixes(const dfg::Dfg& g, const DataflowResult& analysis) {
  const std::size_t n = g.size();
  enum class Action : unsigned char { Keep, Fold, Drop };
  std::vector<Action> action(n, Action::Drop);

  // Operations: fold the constant-valued ones whose result is needed, keep
  // the demanded ones, drop the rest (dead after folding or unreachable).
  for (NodeId id = 0; id < n; ++id) {
    const dfg::Node& node = g.node(id);
    if (!dfg::isSchedulable(node.kind)) continue;
    if (analysis.constants[id].isConst())
      action[id] = analysis.needed[id] ? Action::Fold : Action::Drop;
    else
      action[id] = analysis.demand[id] ? Action::Keep : Action::Drop;
  }
  // Leaves: every Input survives (interface stability); a Const survives
  // only while some kept operation still reads it, or it is an output.
  std::vector<char> outputFlag(n, 0);
  for (const auto& [id, ext] : g.outputs())
    if (id < n) outputFlag[id] = 1;
  for (NodeId id = 0; id < n; ++id) {
    const dfg::Node& node = g.node(id);
    if (node.kind == OpKind::Input) action[id] = Action::Keep;
    if (node.kind == OpKind::Const)
      action[id] = outputFlag[id] ? Action::Keep : Action::Drop;
  }
  for (NodeId id = 0; id < n; ++id)
    if (action[id] == Action::Keep && dfg::isSchedulable(g.node(id).kind))
      for (NodeId in : g.node(id).inputs)
        if (g.node(in).kind == OpKind::Const) action[in] = Action::Keep;

  // Rebuild in original id order; that order is topological, and every
  // operand of a kept op is itself kept or folded, so the remap is total.
  dfg::Dfg fixed(g.name());
  std::vector<NodeId> remap(n, dfg::kNoNode);
  for (NodeId id = 0; id < n; ++id) {
    if (action[id] == Action::Drop) continue;
    dfg::Node node = g.node(id);
    node.id = dfg::kNoNode;  // reassigned by addNode
    if (action[id] == Action::Fold) {
      const sim::Word folded = analysis.constants[id].value;
      node.kind = OpKind::Const;
      node.inputs.clear();
      node.cycles = 1;
      node.delayNs = -1.0;
      node.branchPath.clear();  // a constant holds on every execution path
      node.constValue = static_cast<long>(folded);
    } else {
      for (NodeId& in : node.inputs) in = remap[in];
    }
    remap[id] = fixed.addNode(std::move(node));
  }
  for (const auto& [id, ext] : g.outputs())
    if (id < n && remap[id] != dfg::kNoNode) fixed.markOutput(remap[id], ext);
  fixed.freeze();
  return fixed;
}

}  // namespace mframe::analysis::dataflow
