// The concrete dataflow passes built on the worklist engine:
//
//   analyzeConstants  — forward constant propagation over evalOp semantics,
//                       including the absorbing rules (x*0, x&0, x/0) that
//                       fold operations whose operands are not all constant
//   analyzeRanges     — forward value-range inference on the interval
//                       lattice; declared Input widths seed the ranges
//   inferWidths       — bit widths implied by the inferred ranges
//   analyzeDemand     — backward liveness: which operations must actually
//                       execute at run time once constants are folded
//   findDuplicateExprs— common-subexpression detection via the validator's
//                       hash-consed value numbering
//
// All passes are pure queries; applyFixes (analyze.h) is the only rewriter.
#pragma once

#include <vector>

#include "analysis/dataflow/lattice.h"
#include "dfg/dfg.h"

namespace mframe::analysis::dataflow {

/// Constant value of every node, indexed by NodeId. `visits` (optional)
/// receives the engine's node-evaluation count.
std::vector<ConstValue> analyzeConstants(const dfg::Dfg& g, int wordWidth = 16,
                                         int* visits = nullptr);

/// One operation's interval transfer at the analysis word width: the
/// conservative bound arithmetic shared by analyzeRanges and the
/// FSM×datapath range analysis (src/analysis/range/). Bounds route through
/// the checked helpers in lattice.h — any step that would leave the word
/// domain saturates to the full range instead of wrapping. Unary kinds
/// ignore `b`; Input/Const/LoopSuper never reach this function.
Interval intervalTransfer(dfg::OpKind kind, const Interval& a,
                          const Interval& b, int width);

/// Value range of every node, indexed by NodeId. An Input node with a
/// declared width is assumed to range over [0, 2^width - 1]; declared
/// widths on operations do NOT constrain ranges (evalOp masks at the
/// analysis word width only), they are what OPT004 audits.
std::vector<Interval> analyzeRanges(const dfg::Dfg& g, int wordWidth = 16,
                                    int* visits = nullptr);

/// Bits needed per node under `ranges` (Interval::widthNeeded).
std::vector<int> inferWidths(const std::vector<Interval>& ranges);

/// Backward demand: demand[n] is true iff node n must execute at run time
/// AND therefore needs its operands — i.e. n is a schedulable operation
/// whose value is not a compile-time constant, and n is a primary output or
/// feeds some demanded consumer. A node's *result* is needed iff it is an
/// output or some consumer is demanded (see resultNeeded).
std::vector<char> analyzeDemand(const dfg::Dfg& g,
                                const std::vector<ConstValue>& consts,
                                int* visits = nullptr);

/// needed[n]: the value of n must exist at run time (as a computed signal or
/// as a folded constant) — n is an output or feeds a demanded consumer.
std::vector<char> resultNeeded(const dfg::Dfg& g,
                               const std::vector<char>& demand);

/// One set of operations computing the same expression. `first` is the
/// canonical (lowest-id) producer; `repeats` are the redundant ones.
struct DuplicateGroup {
  dfg::NodeId first = dfg::kNoNode;
  std::vector<dfg::NodeId> repeats;
};

/// Structural common subexpressions among schedulable operations, found by
/// value numbering (commutative operand order normalized). Groups are
/// ordered by their canonical node id.
std::vector<DuplicateGroup> findDuplicateExprs(const dfg::Dfg& g);

}  // namespace mframe::analysis::dataflow
