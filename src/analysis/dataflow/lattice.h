// Lattice value types for the dataflow framework.
//
// Two domains cover the PR's analyses: a flat constant lattice
// (Unknown < Const(v) < Varying) for constant propagation, and an interval
// lattice over the unsigned word domain for value-range / bit-width
// inference. Both are plain value types; the transfer functions live in
// passes.cpp and the fixpoint driver in engine.h. Arithmetic on intervals is
// deliberately conservative: any operation that may wrap the word width
// clamps to the full range rather than reasoning about modular wrap-around.
#pragma once

#include <algorithm>

#include "sim/eval.h"

namespace mframe::analysis::dataflow {

/// Flat constant lattice: Unknown (no information yet, identity of join),
/// Const (exactly one run-time value), Varying (more than one possible).
struct ConstValue {
  enum class State : unsigned char { Unknown, Const, Varying };
  State state = State::Unknown;
  sim::Word value = 0;  ///< meaningful only when state == Const

  static ConstValue unknown() { return {}; }
  static ConstValue varying() { return {State::Varying, 0}; }
  static ConstValue constant(sim::Word v) { return {State::Const, v}; }

  bool isConst() const { return state == State::Const; }

  friend bool operator==(const ConstValue& a, const ConstValue& b) {
    if (a.state != b.state) return false;
    return a.state != State::Const || a.value == b.value;
  }

  static ConstValue join(const ConstValue& a, const ConstValue& b) {
    if (a.state == State::Unknown) return b;
    if (b.state == State::Unknown) return a;
    if (a == b) return a;
    return varying();
  }
};

/// Number of bits needed to represent `v`: 1 for 0 and 1, 2 for 2..3, ...
inline int bitsFor(sim::Word v) {
  int bits = 1;
  while (v > 1) {
    v >>= 1;
    ++bits;
  }
  return bits;
}

/// Overflow-checked word arithmetic for the interval transfer functions.
/// Each returns false when the exact result leaves [0, mask]; the caller
/// saturates the interval to TOP instead of wrapping. Built on the
/// compiler's checked intrinsics so the bound arithmetic itself can never
/// overflow, even at the 64-bit word width where `mask` offers no headroom.
inline bool checkedAdd(sim::Word a, sim::Word b, sim::Word mask,
                       sim::Word& out) {
  sim::Word r = 0;
  if (__builtin_add_overflow(a, b, &r) || r > mask) return false;
  out = r;
  return true;
}

inline bool checkedSub(sim::Word a, sim::Word b, sim::Word& out) {
  sim::Word r = 0;
  if (__builtin_sub_overflow(a, b, &r)) return false;
  out = r;
  return true;
}

inline bool checkedMul(sim::Word a, sim::Word b, sim::Word mask,
                       sim::Word& out) {
  sim::Word r = 0;
  if (__builtin_mul_overflow(a, b, &r) || r > mask) return false;
  out = r;
  return true;
}

inline bool checkedShl(sim::Word a, unsigned sh, sim::Word mask,
                       sim::Word& out) {
  if (sh >= 64 || a > (mask >> sh)) return false;
  out = a << sh;
  return true;
}

/// Closed interval [lo, hi] of unsigned word values, lo <= hi. The top
/// element is the full range of the analysis word width; there is no
/// explicit bottom (the engine's Unknown/initial handling covers it).
struct Interval {
  sim::Word lo = 0;
  sim::Word hi = 0;

  static Interval full(int width) { return {0, sim::maskFor(width)}; }
  static Interval constant(sim::Word v, int width) {
    const sim::Word m = v & sim::maskFor(width);
    return {m, m};
  }

  bool isConst() const { return lo == hi; }
  bool isFull(int width) const { return lo == 0 && hi == sim::maskFor(width); }

  /// Bits needed to represent every value in the interval.
  int widthNeeded() const { return bitsFor(hi); }

  friend bool operator==(const Interval&, const Interval&) = default;

  static Interval join(const Interval& a, const Interval& b) {
    return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
  }
};

}  // namespace mframe::analysis::dataflow
