// Generic monotone dataflow engine over a DFG.
//
// The classic worklist algorithm, parameterized over a Domain that supplies
// the lattice: an initial value per node, a transfer function combining the
// values of a node's dependences, equality, and a widening operator. The
// engine walks forward (dependences = data inputs) or backward (dependences
// = consumers) and iterates to a fixpoint.
//
// On a DAG seeded in topological id order the fixpoint is reached in one
// sweep; the worklist and the widening hook exist so the engine stays total
// and terminating for any monotone domain on any graph shape (the widening
// threshold caps how often one node may be revisited before its value is
// forced up the lattice).
//
// Domain concept:
//   struct D {
//     using Value = ...;
//     Value initial(const dfg::Node& n) const;
//     Value transfer(const dfg::Node& n, const std::vector<Value>& deps) const;
//     Value widen(const Value& previous, const Value& next) const;
//   };
// (widen may be static — it is invoked through the domain object, so
// domains that need configuration, like a word mask, can make it a member.)
// Value must be equality-comparable. `deps` holds, in order, the values of
// n.inputs (forward) or of the consumers of n (backward).
#pragma once

#include <deque>
#include <vector>

#include "dfg/dfg.h"
#include "trace/trace.h"

namespace mframe::analysis::dataflow {

enum class Direction : unsigned char { Forward, Backward };

/// Fixpoint solution plus the work the engine did to reach it.
template <typename Value>
struct FixpointResult {
  std::vector<Value> values;  ///< one per node, indexed by NodeId
  int visits = 0;             ///< total node evaluations until fixpoint
  bool widened = false;       ///< true when the widening threshold fired
};

/// Revisits of one node before widen() is applied. Generous: a DAG pass
/// never gets near it, and monotone domains converge long before.
inline constexpr int kWidenThreshold = 64;

template <typename Domain>
FixpointResult<typename Domain::Value> solve(const dfg::Dfg& g,
                                             const Domain& domain,
                                             Direction dir) {
  using Value = typename Domain::Value;
  const std::size_t n = g.size();

  FixpointResult<Value> r;
  r.values.reserve(n);
  for (dfg::NodeId id = 0; id < n; ++id)
    r.values.push_back(domain.initial(g.node(id)));

  // Seed every node in dependence order so the first sweep is already the
  // topological pass (node ids are topologically ordered by construction).
  std::deque<dfg::NodeId> work;
  std::vector<char> queued(n, 1);
  std::vector<int> revisits(n, 0);
  if (dir == Direction::Forward) {
    for (dfg::NodeId id = 0; id < n; ++id) work.push_back(id);
  } else {
    for (dfg::NodeId id = 0; id < n; ++id)
      work.push_back(static_cast<dfg::NodeId>(n - 1 - id));
  }

  std::vector<Value> deps;
  while (!work.empty()) {
    const dfg::NodeId id = work.front();
    work.pop_front();
    queued[id] = 0;
    ++r.visits;

    const dfg::Node& node = g.node(id);
    deps.clear();
    if (dir == Direction::Forward) {
      for (dfg::NodeId in : node.inputs) deps.push_back(r.values[in]);
    } else {
      for (dfg::NodeId out : g.succs(id)) deps.push_back(r.values[out]);
    }

    Value next = domain.transfer(node, deps);
    if (next == r.values[id]) continue;
    if (++revisits[id] > kWidenThreshold) {
      next = domain.widen(r.values[id], next);
      r.widened = true;
      if (next == r.values[id]) continue;
    }
    r.values[id] = next;

    // The value changed: everything depending on it must be recomputed.
    if (dir == Direction::Forward) {
      for (dfg::NodeId out : g.succs(id))
        if (!queued[out]) {
          queued[out] = 1;
          work.push_back(out);
        }
    } else {
      for (dfg::NodeId in : node.inputs)
        if (!queued[in]) {
          queued[in] = 1;
          work.push_back(in);
        }
    }
  }
  trace::bump(trace::Counter::DataflowWorklistIterations,
              static_cast<std::uint64_t>(r.visits));
  if (r.widened) trace::bump(trace::Counter::DataflowWidenings);
  return r;
}

// Graph-generic variant: the same worklist discipline over an arbitrary
// dependence graph given as adjacency lists, for clients whose nodes are not
// DFG nodes (the audit's controller step graph, where edges may form loops).
//
// GraphDomain concept:
//   struct D {
//     using Value = ...;
//     Value initial(int node) const;
//     Value transfer(int node, const std::vector<Value>& deps) const;
//     static Value widen(const Value& previous, const Value& next);
//   };
// `deps` holds the values of deps[node] in list order. Counters are bumped
// exactly like solve(), so the work lands in dataflow.worklistIterations.
//
// `opt.widenThreshold` lowers the revisit budget before widen() fires —
// domains with tall lattices (the range analysis' intervals around FSM
// loops) converge orders of magnitude faster with an early, targeted
// widening than by climbing one value at a time to the default cap.
// `opt.widenings` (when non-null) receives the number of nodes whose value
// was forced up the lattice, for domain-specific counters.
struct SolveGraphOptions {
  int widenThreshold = kWidenThreshold;
  int* widenings = nullptr;
};

template <typename Domain>
FixpointResult<typename Domain::Value> solveGraph(
    int numNodes, const std::vector<std::vector<int>>& deps,
    const Domain& domain, const SolveGraphOptions& opt = {}) {
  using Value = typename Domain::Value;
  const auto n = static_cast<std::size_t>(numNodes);

  // Reverse edges: when a node's value changes, its dependents re-run.
  std::vector<std::vector<int>> uses(n);
  for (std::size_t v = 0; v < n; ++v)
    for (int d : deps[v]) uses[static_cast<std::size_t>(d)].push_back(static_cast<int>(v));

  FixpointResult<Value> r;
  r.values.reserve(n);
  for (int v = 0; v < numNodes; ++v) r.values.push_back(domain.initial(v));

  std::deque<int> work;
  std::vector<char> queued(n, 1);
  std::vector<int> revisits(n, 0);
  for (int v = 0; v < numNodes; ++v) work.push_back(v);

  std::vector<Value> depVals;
  while (!work.empty()) {
    const int v = work.front();
    work.pop_front();
    queued[static_cast<std::size_t>(v)] = 0;
    ++r.visits;

    depVals.clear();
    for (int d : deps[static_cast<std::size_t>(v)])
      depVals.push_back(r.values[static_cast<std::size_t>(d)]);

    Value next = domain.transfer(v, depVals);
    if (next == r.values[static_cast<std::size_t>(v)]) continue;
    if (++revisits[static_cast<std::size_t>(v)] > opt.widenThreshold) {
      next = domain.widen(r.values[static_cast<std::size_t>(v)], next);
      r.widened = true;
      if (opt.widenings != nullptr) ++*opt.widenings;
      if (next == r.values[static_cast<std::size_t>(v)]) continue;
    }
    r.values[static_cast<std::size_t>(v)] = std::move(next);

    for (int u : uses[static_cast<std::size_t>(v)])
      if (!queued[static_cast<std::size_t>(u)]) {
        queued[static_cast<std::size_t>(u)] = 1;
        work.push_back(u);
      }
  }
  trace::bump(trace::Counter::DataflowWorklistIterations,
              static_cast<std::uint64_t>(r.visits));
  if (r.widened) trace::bump(trace::Counter::DataflowWidenings);
  return r;
}

}  // namespace mframe::analysis::dataflow
