#include "analysis/dataflow/passes.h"

#include <algorithm>
#include <map>

#include "analysis/dataflow/engine.h"
#include "analysis/validate/value_numbering.h"

namespace mframe::analysis::dataflow {

namespace {

using dfg::NodeId;
using dfg::OpKind;
using sim::Word;

/// True when `v` is the constant zero — the absorbing element of the rules
/// below.
bool isZero(const ConstValue& v) { return v.isConst() && v.value == 0; }

struct ConstDomain {
  using Value = ConstValue;
  int width;

  Value initial(const dfg::Node&) const { return ConstValue::unknown(); }

  Value transfer(const dfg::Node& n, const std::vector<Value>& deps) const {
    switch (n.kind) {
      case OpKind::Input: return ConstValue::varying();
      case OpKind::Const:
        return ConstValue::constant(static_cast<Word>(n.constValue) &
                                    sim::maskFor(width));
      case OpKind::LoopSuper: return ConstValue::varying();  // opaque body
      default: break;
    }
    const Value a = !deps.empty() ? deps[0] : ConstValue::varying();
    const Value b = deps.size() > 1 ? deps[1] : ConstValue::varying();
    // Absorbing rules fold even with one non-constant operand; they mirror
    // evalOp exactly (division by zero yields 0 by convention).
    if ((n.kind == OpKind::Mul || n.kind == OpKind::And) &&
        (isZero(a) || isZero(b)))
      return ConstValue::constant(0);
    if (n.kind == OpKind::Div && isZero(b)) return ConstValue::constant(0);
    if (a.state == ConstValue::State::Unknown ||
        (dfg::arity(n.kind) > 1 && b.state == ConstValue::State::Unknown))
      return ConstValue::unknown();
    if (!a.isConst() || (dfg::arity(n.kind) > 1 && !b.isConst()))
      return ConstValue::varying();
    return ConstValue::constant(
        sim::evalOp(n.kind, a.value, b.isConst() ? b.value : 0, width));
  }

  static Value widen(const Value&, const Value&) {
    return ConstValue::varying();
  }
};

struct RangeDomain {
  using Value = Interval;
  int width;

  Value initial(const dfg::Node& n) const {
    // Start every node at a constant-zero singleton; the seeded topological
    // sweep overwrites it before anything reads it.
    return n.kind == OpKind::Const
               ? Interval::constant(static_cast<Word>(n.constValue), width)
               : Interval{0, 0};
  }

  Value transfer(const dfg::Node& n, const std::vector<Value>& deps) const {
    const Interval top = Interval::full(width);
    switch (n.kind) {
      case OpKind::Input:
        return n.width > 0 ? Interval::full(std::min(n.width, width)) : top;
      case OpKind::Const:
        return Interval::constant(static_cast<Word>(n.constValue), width);
      case OpKind::LoopSuper: return top;
      default: break;
    }
    const Interval a = !deps.empty() ? deps[0] : top;
    const Interval b = deps.size() > 1 ? deps[1] : top;
    return intervalTransfer(n.kind, a, b, width);
  }

  static Value widen(const Value& previous, const Value& next) {
    return {std::min(previous.lo, next.lo), std::max(previous.hi, next.hi)};
  }
};

struct DemandDomain {
  using Value = char;
  const dfg::Dfg* g;
  const std::vector<ConstValue>* consts;
  std::vector<char> isOutput;

  explicit DemandDomain(const dfg::Dfg& graph,
                        const std::vector<ConstValue>& c)
      : g(&graph), consts(&c), isOutput(graph.size(), 0) {
    for (const auto& [id, ext] : graph.outputs())
      if (id < graph.size()) isOutput[id] = 1;
  }

  Value initial(const dfg::Node&) const { return 0; }

  /// demand[n]: n executes at run time and reads its operands. Constant-
  /// valued operations fold away, so they demand nothing; leaves never do.
  Value transfer(const dfg::Node& n, const std::vector<Value>& succDemand) const {
    if (!dfg::isSchedulable(n.kind)) return 0;
    if ((*consts)[n.id].isConst()) return 0;
    if (isOutput[n.id]) return 1;
    return std::any_of(succDemand.begin(), succDemand.end(),
                       [](char d) { return d != 0; })
               ? 1
               : 0;
  }

  static Value widen(const Value&, const Value& next) { return next; }
};

}  // namespace

Interval intervalTransfer(dfg::OpKind kind, const Interval& a,
                          const Interval& b, int width) {
  const Word mask = sim::maskFor(width);
  const Interval top = Interval::full(width);
  Word lo = 0;
  Word hi = 0;
  switch (kind) {
    case OpKind::Add:
      if (!checkedAdd(a.lo, b.lo, mask, lo) ||
          !checkedAdd(a.hi, b.hi, mask, hi))
        return top;  // may wrap the word width
      return {lo, hi};
    case OpKind::Inc:
      if (!checkedAdd(a.lo, 1, mask, lo) || !checkedAdd(a.hi, 1, mask, hi))
        return top;
      return {lo, hi};
    case OpKind::Sub:
      if (!checkedSub(a.lo, b.hi, lo) || !checkedSub(a.hi, b.lo, hi))
        return top;  // may go below zero and wrap
      return {lo, hi};
    case OpKind::Dec:
      if (!checkedSub(a.lo, 1, lo) || !checkedSub(a.hi, 1, hi)) return top;
      return {lo, hi};
    case OpKind::Mul:
      if (!checkedMul(a.lo, b.lo, mask, lo) ||
          !checkedMul(a.hi, b.hi, mask, hi))
        return top;
      return {lo, hi};
    case OpKind::Div:
      // A zero divisor yields 0 by convention, so the quotient never
      // exceeds the dividend either way.
      if (b.lo == 0) return {0, a.hi};
      return {a.lo / b.hi, a.hi / b.lo};
    case OpKind::And: return {0, std::min(a.hi, b.hi)};
    case OpKind::Or: {
      const Word bound = sim::maskFor(bitsFor(a.hi | b.hi));
      return {std::max(a.lo, b.lo), std::min(bound, mask)};
    }
    case OpKind::Xor: {
      const Word bound = sim::maskFor(bitsFor(a.hi | b.hi));
      return {0, std::min(bound, mask)};
    }
    case OpKind::Not: return {mask - a.hi, mask - a.lo};
    case OpKind::Shl: {
      if (!b.isConst() || width <= 0) return top;  // evalOp: shift b % width
      const auto sh =
          static_cast<unsigned>(b.lo % static_cast<Word>(width));
      if (!checkedShl(a.lo, sh, mask, lo) || !checkedShl(a.hi, sh, mask, hi))
        return top;
      return {lo, hi};
    }
    case OpKind::Shr: {
      if (!b.isConst() || width <= 0) return {0, a.hi};  // only shrinks
      const Word sh = b.lo % static_cast<Word>(width);
      return {a.lo >> sh, a.hi >> sh};
    }
    case OpKind::Eq:
    case OpKind::Ne:
    case OpKind::Lt:
    case OpKind::Gt:
    case OpKind::Le:
    case OpKind::Ge: return {0, 1};
    default: return top;
  }
}

std::vector<ConstValue> analyzeConstants(const dfg::Dfg& g, int wordWidth,
                                         int* visits) {
  const ConstDomain dom{wordWidth};
  auto r = solve(g, dom, Direction::Forward);
  if (visits) *visits = r.visits;
  return std::move(r.values);
}

std::vector<Interval> analyzeRanges(const dfg::Dfg& g, int wordWidth,
                                    int* visits) {
  const RangeDomain dom{wordWidth};
  auto r = solve(g, dom, Direction::Forward);
  if (visits) *visits = r.visits;
  return std::move(r.values);
}

std::vector<int> inferWidths(const std::vector<Interval>& ranges) {
  std::vector<int> w;
  w.reserve(ranges.size());
  for (const Interval& r : ranges) w.push_back(r.widthNeeded());
  return w;
}

std::vector<char> analyzeDemand(const dfg::Dfg& g,
                                const std::vector<ConstValue>& consts,
                                int* visits) {
  const DemandDomain dom(g, consts);
  auto r = solve(g, dom, Direction::Backward);
  if (visits) *visits = r.visits;
  return std::move(r.values);
}

std::vector<char> resultNeeded(const dfg::Dfg& g,
                               const std::vector<char>& demand) {
  std::vector<char> needed(g.size(), 0);
  for (const auto& [id, ext] : g.outputs())
    if (id < g.size()) needed[id] = 1;
  for (NodeId id = 0; id < g.size(); ++id)
    if (demand[id])
      for (NodeId in : g.node(id).inputs) needed[in] = 1;
  return needed;
}

std::vector<DuplicateGroup> findDuplicateExprs(const dfg::Dfg& g) {
  ValueNumbering vn;
  const std::vector<Vn> number = vn.numberGraph(g);
  std::map<Vn, std::vector<NodeId>> byValue;
  for (NodeId id = 0; id < g.size(); ++id)
    if (dfg::isSchedulable(g.node(id).kind)) byValue[number[id]].push_back(id);

  std::vector<DuplicateGroup> groups;
  for (const auto& [v, ids] : byValue) {
    if (ids.size() < 2) continue;
    DuplicateGroup grp;
    grp.first = ids.front();
    grp.repeats.assign(ids.begin() + 1, ids.end());
    groups.push_back(std::move(grp));
  }
  std::sort(groups.begin(), groups.end(),
            [](const DuplicateGroup& a, const DuplicateGroup& b) {
              return a.first < b.first;
            });
  return groups;
}

}  // namespace mframe::analysis::dataflow
