#include "analysis/rtl_rules.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "analysis/rules.h"
#include "util/strings.h"

namespace mframe::analysis {

namespace {

using dfg::NodeId;

/// Folded steps occupied by `n` on a (possibly pipelined) ALU.
std::vector<int> occupied(const dfg::Dfg& g, const sched::Schedule& s,
                          NodeId n, bool pipelined, int latency) {
  auto fold = [&](int st) { return latency > 0 ? (st - 1) % latency : st; };
  std::vector<int> out;
  const int start = s.stepOf(n);
  const int cycles = pipelined ? 1 : g.node(n).cycles;
  for (int st = start; st < start + cycles; ++st) out.push_back(fold(st));
  return out;
}

Diagnostic diag(std::string_view rule, EntityKind entity, Location loc,
                std::string message, std::string fixit = "") {
  Diagnostic d;
  d.rule = std::string(rule);
  d.severity = findRule(rule)->severity;
  d.entity = entity;
  d.loc = std::move(loc);
  d.message = std::move(message);
  d.fixit = std::move(fixit);
  return d;
}

Location at(std::string node, int step = -1, int unit = -1,
            std::string detail = "") {
  Location l;
  l.node = std::move(node);
  l.step = step;
  l.unit = unit;
  l.detail = std::move(detail);
  return l;
}

}  // namespace

LintReport lintDatapath(const rtl::Datapath& d, const sched::Constraints& c,
                        rtl::DesignStyle style) {
  LintReport r;
  const dfg::Dfg& g = *d.graph;

  // -- RTL001..RTL004: binding ----------------------------------------------
  std::map<NodeId, int> seen;
  for (const rtl::AluInstance& a : d.alus) {
    const celllib::Module& m = d.lib->module(a.module);
    for (NodeId op : a.ops) {
      if (seen.count(op))
        r.add(diag(kRtlDoubleBinding, EntityKind::Alu,
                   at(g.node(op).name, -1, a.index),
                   util::format("op '%s' bound to ALU%d and ALU%d",
                                g.node(op).name.c_str(), seen[op], a.index),
                   "bind every operation to exactly one ALU"));
      seen[op] = a.index;
      if (!dfg::isSchedulable(g.node(op).kind))
        r.add(diag(kRtlNonOpBound, EntityKind::Alu,
                   at(g.node(op).name, -1, a.index),
                   util::format("non-operation '%s' bound to an ALU",
                                g.node(op).name.c_str())));
      else if (!m.supports(dfg::fuTypeOf(g.node(op).kind)))
        r.add(diag(kRtlUnsupportedOp, EntityKind::Alu,
                   at(g.node(op).name, -1, a.index, m.signature()),
                   util::format("ALU%d (%s) cannot perform '%s'", a.index,
                                m.signature().c_str(), g.node(op).name.c_str()),
                   "bind the op to a module with the matching capability"));
    }
  }
  for (NodeId op : g.operations())
    if (!seen.count(op))
      r.add(diag(kRtlUnboundOp, EntityKind::Node, at(g.node(op).name),
                 util::format("op '%s' is not bound to any ALU",
                              g.node(op).name.c_str())));
  if (!r.empty()) return r;  // later checks assume a total binding

  // -- RTL005: ALU occupancy ------------------------------------------------
  for (const rtl::AluInstance& a : d.alus) {
    const bool pipelined = d.lib->module(a.module).stages > 1;
    for (std::size_t i = 0; i < a.ops.size(); ++i) {
      for (std::size_t j = i + 1; j < a.ops.size(); ++j) {
        const NodeId x = a.ops[i];
        const NodeId y = a.ops[j];
        if (g.mutuallyExclusive(x, y)) continue;
        const auto ox = occupied(g, d.schedule, x, pipelined, c.latency);
        const auto oy = occupied(g, d.schedule, y, pipelined, c.latency);
        const bool clash = std::any_of(ox.begin(), ox.end(), [&](int st) {
          return std::find(oy.begin(), oy.end(), st) != oy.end();
        });
        if (clash)
          r.add(diag(kRtlAluOverlap, EntityKind::Alu,
                     at(g.node(x).name, d.schedule.stepOf(x), a.index,
                        g.node(y).name),
                     util::format("ALU%d executes '%s' and '%s' concurrently",
                                  a.index, g.node(x).name.c_str(),
                                  g.node(y).name.c_str()),
                     "rebind one operation or reschedule it"));
      }
    }
  }

  // -- RTL006: style 2, no self loop around ALUs ----------------------------
  if (style == rtl::DesignStyle::NoSelfLoop) {
    for (const rtl::AluInstance& a : d.alus) {
      const std::set<NodeId> inAlu(a.ops.begin(), a.ops.end());
      for (NodeId op : a.ops)
        for (NodeId p : g.opPreds(op))
          if (inAlu.count(p))
            r.add(diag(kRtlSelfLoop, EntityKind::Alu,
                       at(g.node(op).name, -1, a.index, g.node(p).name),
                       util::format("style-2 violation: '%s' and its predecessor "
                                    "'%s' share ALU%d",
                                    g.node(op).name.c_str(),
                                    g.node(p).name.c_str(), a.index),
                       "separate dependent operations onto distinct ALUs"));
    }
  }

  // -- RTL007/RTL008: registers --------------------------------------------
  for (std::size_t reg = 0; reg < d.regs.registers.size(); ++reg) {
    const auto& packed = d.regs.registers[reg];
    for (std::size_t i = 0; i < packed.size(); ++i)
      for (std::size_t j = i + 1; j < packed.size(); ++j)
        if (d.lifetimes[packed[i]].overlaps(d.lifetimes[packed[j]]))
          r.add(diag(kRtlRegisterOverlap, EntityKind::Register,
                     at(g.node(d.lifetimes[packed[i]].producer).name, -1,
                        static_cast<int>(reg),
                        g.node(d.lifetimes[packed[j]].producer).name),
                     util::format("register R%zu holds overlapping signals '%s' "
                                  "and '%s'", reg,
                                  g.node(d.lifetimes[packed[i]].producer).name.c_str(),
                                  g.node(d.lifetimes[packed[j]].producer).name.c_str()),
                     "repack the lifetimes into disjoint registers"));
  }
  for (const alloc::Lifetime& lt : d.lifetimes)
    if (lt.needsRegister && !d.regOfSignal.count(lt.producer))
      r.add(diag(kRtlMissingRegister, EntityKind::Node,
                 at(g.node(lt.producer).name),
                 util::format("signal '%s' crosses steps but has no register",
                              g.node(lt.producer).name.c_str()),
                 "allocate a register for every cross-step lifetime"));

  // -- RTL009: wiring (unconnected mux inputs) ------------------------------
  for (const rtl::AluInstance& a : d.alus) {
    const auto& arr = d.arrangement[static_cast<std::size_t>(a.index)];
    for (NodeId op : a.ops) {
      const dfg::Node& n = g.node(op);
      if (n.inputs.empty()) continue;
      const bool swap = arr.swapped.count(op) ? arr.swapped.at(op) : false;
      const NodeId l = swap && n.inputs.size() == 2 ? n.inputs[1] : n.inputs[0];
      if (!d.leftPort[static_cast<std::size_t>(a.index)].selectOf.count({op, l}))
        r.add(diag(kRtlUnconnectedPort, EntityKind::Port,
                   at(n.name, -1, a.index, g.node(l).name),
                   util::format("ALU%d left port cannot deliver '%s' to '%s'",
                                a.index, g.node(l).name.c_str(), n.name.c_str()),
                   "rewire the port so every operand has a mux input"));
      if (n.inputs.size() >= 2) {
        const NodeId rsig = swap ? n.inputs[0] : n.inputs[1];
        if (!d.rightPort[static_cast<std::size_t>(a.index)].selectOf.count({op, rsig}))
          r.add(diag(kRtlUnconnectedPort, EntityKind::Port,
                     at(n.name, -1, a.index, g.node(rsig).name),
                     util::format("ALU%d right port cannot deliver '%s' to '%s'",
                                  a.index, g.node(rsig).name.c_str(),
                                  n.name.c_str()),
                     "rewire the port so every operand has a mux input"));
      }
    }
  }
  return r;
}

LintReport lintBusPlan(const rtl::Datapath& d, const rtl::ControllerFsm& fsm,
                       const rtl::BusPlan& plan) {
  LintReport r;
  const std::vector<int> demand = rtl::busDemandPerStep(d, fsm);

  // RTL010: any step whose simultaneous distinct sources exceed the bus
  // count would force one bus to carry two drivers at once.
  int peak = 0;
  for (int step = 1; step < static_cast<int>(demand.size()); ++step) {
    const int k = demand[static_cast<std::size_t>(step)];
    peak = std::max(peak, k);
    if (k > plan.busCount)
      r.add(diag(kRtlBusContention, EntityKind::Bus,
                 at("", step, plan.busCount),
                 util::format("step %d needs %d simultaneous sources but the "
                              "plan has %d bus(es): some bus is driven by "
                              "multiple sources", step, k, plan.busCount),
                 "provision at least the peak per-step source count"));
  }

  // RTL011: buses beyond the peak demand are never driven in any step.
  for (int b = peak; b < plan.busCount; ++b)
    r.add(diag(kRtlBusIdle, EntityKind::Bus, at("", -1, b),
               util::format("bus %d is driven by zero sources in every step", b),
               "drop the idle bus to save wire area"));
  return r;
}

LintReport lintMicrocode(const rtl::Datapath& d, const rtl::ControllerFsm& fsm,
                         const rtl::MicrocodeRom& rom) {
  LintReport r;

  // RTL012: field names must reference existing ALUs / registers.
  for (const rtl::MicrocodeField& f : rom.fields) {
    int unit = -1;
    bool known = false;
    if (std::sscanf(f.name.c_str(), "alu%d.", &unit) == 1) {
      known = unit >= 0 && unit < static_cast<int>(d.alus.size());
    } else if (std::sscanf(f.name.c_str(), "R%d.", &unit) == 1) {
      known = unit >= 0 && unit < static_cast<int>(d.regs.count());
    } else if (f.name == "ctrl.next" || f.name == "ctrl.altNext") {
      known = true;  // sequencer fields reference FSM states, not units
    }
    if (!known)
      r.add(diag(kRtlBadFieldRef, EntityKind::Field,
                 at("", -1, unit, f.name),
                 util::format("microcode field '%s' references a nonexistent "
                              "datapath component", f.name.c_str()),
                 "regenerate the ROM from the current datapath"));
  }

  // RTL013: shape and width consistency.
  if (rom.words != fsm.numSteps ||
      rom.rows.size() != static_cast<std::size_t>(rom.words))
    r.add(diag(kRtlFieldOverflow, EntityKind::Design, {},
               util::format("ROM has %zu row(s) for %d word(s) over %d FSM "
                            "step(s)", rom.rows.size(), rom.words, fsm.numSteps)));
  for (std::size_t row = 0; row < rom.rows.size(); ++row) {
    if (rom.rows[row].size() != rom.fields.size()) {
      r.add(diag(kRtlFieldOverflow, EntityKind::Field,
                 at("", static_cast<int>(row) + 1),
                 util::format("row %zu has %zu value(s) for %zu field(s)", row + 1,
                              rom.rows[row].size(), rom.fields.size())));
      continue;
    }
    for (std::size_t f = 0; f < rom.fields.size(); ++f) {
      const int v = rom.rows[row][f];
      if (v < -1 || (v >= 0 && v >= (1 << rom.fields[f].bits)))
        r.add(diag(kRtlFieldOverflow, EntityKind::Field,
                   at("", static_cast<int>(row) + 1, -1, rom.fields[f].name),
                   util::format("value %d does not fit field '%s' (%d bit(s))",
                                v, rom.fields[f].name.c_str(),
                                rom.fields[f].bits)));
    }
  }
  return r;
}

}  // namespace mframe::analysis
