#include "analysis/lib_rules.h"

#include "analysis/rules.h"
#include "util/strings.h"

namespace mframe::analysis {

namespace {

Diagnostic diag(std::string_view rule, EntityKind entity, Location loc,
                std::string message, std::string fixit = "") {
  Diagnostic d;
  d.rule = std::string(rule);
  d.severity = findRule(rule)->severity;
  d.entity = entity;
  d.loc = std::move(loc);
  d.message = std::move(message);
  d.fixit = std::move(fixit);
  return d;
}

Location at(std::string detail) {
  Location l;
  l.detail = std::move(detail);
  return l;
}

}  // namespace

LintReport lintLibrary(const celllib::CellLibrary& lib,
                       const std::set<dfg::FuType>& needed) {
  LintReport r;

  // -- LIB001: duplicate cell names (addModule drops later definitions) -----
  for (const std::string& name : lib.duplicateNames())
    r.add(diag(kLibDuplicateCell, EntityKind::Design, at(name),
               util::format("duplicate cell '%s' (later definition ignored)",
                            name.c_str()),
               "give every module a unique name"));

  // -- LIB002/LIB003/LIB005: per-module attribute sanity --------------------
  for (const celllib::Module& m : lib.modules()) {
    if (m.areaUm2 <= 0.0)
      r.add(diag(kLibBadArea, EntityKind::Design, at(m.name),
                 util::format("cell '%s' has non-positive area %.1f um^2",
                              m.name.c_str(), m.areaUm2),
                 "specify a positive area"));
    if (m.delayNs <= 0.0)
      r.add(diag(kLibBadDelay, EntityKind::Design, at(m.name),
                 util::format("cell '%s' has non-positive delay %.1f ns",
                              m.name.c_str(), m.delayNs),
                 "specify a positive delay (chaining budgets divide by it)"));
    if (m.stages < 1)
      r.add(diag(kLibBadStages, EntityKind::Design, at(m.name),
                 util::format("cell '%s' declares %d pipeline stages",
                              m.name.c_str(), m.stages),
                 "a module has at least 1 stage"));
  }

  // -- LIB004: required operation with no implementing cell -----------------
  for (dfg::FuType t : needed)
    if (lib.capableModules(t).empty())
      r.add(diag(kLibMissingCell, EntityKind::Design,
                 at(std::string(dfg::fuTypeName(t))),
                 util::format("no cell implements FU type '%s'",
                              std::string(dfg::fuTypeName(t)).c_str()),
                 "add a module with the missing capability"));

  // -- LIB006: mux cost table must be monotone in input count ---------------
  for (int inputs = 2; inputs < 8; ++inputs)
    if (lib.muxCost(inputs + 1) < lib.muxCost(inputs)) {
      r.add(diag(kLibMuxTable, EntityKind::Design,
                 at(util::format("mux %d->%d inputs", inputs, inputs + 1)),
                 util::format("mux cost decreases from %.1f (%d inputs) to "
                              "%.1f (%d inputs)", lib.muxCost(inputs), inputs,
                              lib.muxCost(inputs + 1), inputs + 1),
                 "make the mux cost table non-decreasing"));
      break;  // one report per table is enough
    }

  return r;
}

}  // namespace mframe::analysis
