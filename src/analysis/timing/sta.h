// Static timing analysis over a synthesized datapath — the TIM family.
//
// The schedulers budget chaining with per-node combinational delays; this
// analyzer is the independent auditor. It walks every control step of a
// bound datapath and accumulates arrival times along the physical route a
// value actually takes: out of a register (clk-to-q), across a shared line
// (bus), through the port multiplexer tree, through the ALU the operation
// is bound to (the cell library's module delay, not the scheduler's
// assumption), across the line to the next consumer — chained consumers
// extend the same combinational path — and finally into the destination
// register (setup). Every register-latched endpoint gets a slack against
// the clock period, with the full mux → ALU → bus → register provenance of
// its critical path:
//
//   TIM001  single-cycle register-to-register path exceeds the clock period
//   TIM002  chained combinational path with no --clock constraint to audit
//   TIM003  multicycle operation does not fit its allocated control steps
//   TIM004  path consumes almost the whole period (fragile slack)
#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "rtl/datapath.h"

namespace mframe::analysis::timing {

/// Interconnect/storage overheads the cell library does not model. The
/// defaults are small relative to the ncr-like ALU delays, matching the
/// late-1980s standard-cell flavor of the rest of the repository.
struct DelayModel {
  double muxLevelNs = 2.0;   ///< one 2:1 stage of a port mux tree
  double busNs = 1.5;        ///< one shared-line hop (reg/ALU/pad -> mux)
  double regClkToQNs = 1.0;  ///< register clock-to-output
  double setupNs = 1.0;      ///< register setup before the latching edge
};

struct TimingOptions {
  double clockNs = 100.0;  ///< control-step period to audit against
  bool clockSet = false;   ///< false: no user constraint (TIM002 territory)
  DelayModel model;
  /// TIM004 fires when a clean path's arrival exceeds this fraction of its
  /// budget.
  double nearCriticalFraction = 0.9;
};

/// Timing of one register-latched endpoint (one operation's result).
struct EndpointTiming {
  dfg::NodeId op = dfg::kNoNode;
  int step = 0;         ///< control step of the latching edge (end step)
  int alu = -1;         ///< executing ALU instance
  double arrivalNs = 0; ///< data-valid time at the register, incl. setup
  double requiredNs = 0;///< cycles * clockNs
  double slackNs = 0;   ///< requiredNs - arrivalNs
  int chainDepth = 1;   ///< ALUs traversed combinationally on the worst path
  bool latched = false; ///< result is stored in a register
  /// Critical path, outermost first: source register/input, bus hops, mux
  /// trees, ALUs, destination register.
  std::vector<std::string> provenance;
};

struct TimingReport {
  double clockNs = 0;
  bool clockSet = false;
  std::vector<EndpointTiming> endpoints;  ///< latched endpoints, by op id
  double worstSlackNs = 0;
  dfg::NodeId worstOp = dfg::kNoNode;     ///< endpoint with the worst slack
  int maxChainDepth = 1;
  LintReport diagnostics;                 ///< the TIM findings

  std::string toString(const dfg::Dfg& g) const;
};

/// Run STA over a complete datapath (as produced by buildDatapath /
/// runMfsa). Deterministic: endpoints and diagnostics are emitted in
/// ascending operation-id order.
TimingReport analyzeTiming(const rtl::Datapath& d,
                           const TimingOptions& opts = {});

}  // namespace mframe::analysis::timing
