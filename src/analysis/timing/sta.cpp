#include "analysis/timing/sta.h"

#include <algorithm>

#include "analysis/rules.h"
#include "trace/trace.h"
#include "util/strings.h"

namespace mframe::analysis::timing {

namespace {

using alloc::Source;
using dfg::NodeId;

/// 2:1 stages of a tree mux with `inputs` data inputs (0 for a plain wire).
int muxLevels(std::size_t inputs) {
  int levels = 0;
  for (std::size_t reach = 1; reach < inputs; reach <<= 1) ++levels;
  return levels;
}

/// Everything the walker accumulates per operation.
struct OpTiming {
  double settleNs = 0;  ///< result-valid time within the op's END step
  double totalNs = 0;   ///< full combinational time from its start step
  int chainDepth = 1;
  std::vector<std::string> provenance;  ///< source ... ALU, outermost first
};

struct Walker {
  const rtl::Datapath& d;
  const dfg::Dfg& g;
  const TimingOptions& opts;
  std::vector<OpTiming> timing;

  explicit Walker(const rtl::Datapath& dp, const TimingOptions& o)
      : d(dp), g(*dp.graph), opts(o), timing(dp.graph->size()) {}

  /// The port wiring serving operand `signal` of `reader` on ALU `alu`.
  /// Operand 0 prefers the left port so x*x and swapped commutative
  /// operands both land on the physical mux that actually carries them.
  const alloc::PortWiring* portFor(int alu, NodeId reader, NodeId signal,
                                   std::size_t operandIndex,
                                   const char** sideName) const {
    const alloc::PortWiring* first = &d.leftPort[static_cast<std::size_t>(alu)];
    const alloc::PortWiring* second = &d.rightPort[static_cast<std::size_t>(alu)];
    const char* firstName = "left";
    const char* secondName = "right";
    if (operandIndex == 1) {
      std::swap(first, second);
      std::swap(firstName, secondName);
    }
    if (first->sourceFor(reader, signal)) {
      *sideName = firstName;
      return first;
    }
    if (second->sourceFor(reader, signal)) {
      *sideName = secondName;
      return second;
    }
    *sideName = firstName;
    return nullptr;
  }

  void walkOp(NodeId id) {
    const dfg::Node& node = g.node(id);
    const int alu = d.aluOf.at(id);
    const celllib::Module& module =
        d.lib->module(d.alus[static_cast<std::size_t>(alu)].module);
    const DelayModel& m = opts.model;
    OpTiming& t = timing[id];

    double worstArrival = 0.0;
    std::vector<std::string> worstProv;
    int worstDepth = 0;
    bool haveOperand = false;
    for (std::size_t i = 0; i < node.inputs.size(); ++i) {
      const NodeId p = node.inputs[i];
      const char* side = "left";
      const alloc::PortWiring* port = portFor(alu, id, p, i, &side);
      const Source* src = port ? port->sourceFor(id, p) : nullptr;

      double arrival = 0.0;
      int depth = 0;
      std::vector<std::string> prov;
      if (!src) {
        // Unwired reads are RTL009's problem; assume a registered source so
        // the walk stays total.
        arrival = m.regClkToQNs + m.busNs;
        prov.push_back(util::format(
            "unwired read of '%s' (assumed registered, +%.1f ns)",
            g.node(p).name.c_str(), arrival));
      } else {
        switch (src->kind) {
          case Source::Kind::Constant:
            prov.push_back(util::format("constant %ld hardwired to ALU%d %s port",
                                        g.node(p).constValue, alu, side));
            break;
          case Source::Kind::PrimaryInput:
            arrival = m.busNs;
            prov.push_back(util::format("primary input '%s'",
                                        g.node(p).name.c_str()));
            prov.push_back(util::format(
                "bus: input line to ALU%d %s port (+%.1f ns)", alu, side,
                m.busNs));
            break;
          case Source::Kind::Register:
            arrival = m.regClkToQNs + m.busNs;
            prov.push_back(util::format(
                "register r%d ('%s') clk-to-q +%.1f ns at step %d start",
                src->index, g.node(p).name.c_str(), m.regClkToQNs,
                d.schedule.stepOf(id)));
            prov.push_back(util::format(
                "bus: register r%d line to ALU%d %s port (+%.1f ns)",
                src->index, alu, side, m.busNs));
            break;
          case Source::Kind::AluOut:
            // Chained: the producer's combinational result this same step.
            arrival = timing[p].settleNs + m.busNs;
            depth = timing[p].chainDepth;
            prov = timing[p].provenance;
            prov.push_back(util::format(
                "bus: ALU%d output chained to ALU%d %s port (+%.1f ns)",
                src->index, alu, side, m.busNs));
            break;
        }
      }
      const int levels = port ? muxLevels(port->sources.size()) : 0;
      const double muxNs = levels * m.muxLevelNs;
      arrival += muxNs;
      prov.push_back(util::format(
          "mux: ALU%d %s port (%zu input(s), %d level(s), +%.1f ns)", alu,
          side, port ? port->sources.size() : std::size_t{1}, levels, muxNs));
      if (!haveOperand || arrival > worstArrival) {
        haveOperand = true;
        worstArrival = arrival;
        worstProv = std::move(prov);
        worstDepth = depth;
      }
    }

    t.totalNs = worstArrival + module.delayNs;
    t.chainDepth = worstDepth + 1;
    t.provenance = std::move(worstProv);
    t.provenance.push_back(util::format(
        "ALU%d %s computes '%s' (%s, +%.1f ns) — valid %.1f ns into the path",
        alu, module.signature().c_str(), node.name.c_str(),
        std::string(dfg::kindName(node.kind)).c_str(), module.delayNs,
        t.totalNs));
    // A multicycle op spends whole earlier steps; only the residue lands in
    // its final step, where chained consumers may pick the value up.
    const double earlier = (node.cycles - 1) * opts.clockNs;
    t.settleNs = std::max(0.0, t.totalNs - earlier);
  }
};

}  // namespace

TimingReport analyzeTiming(const rtl::Datapath& d, const TimingOptions& opts) {
  const trace::Span span("sta");
  const dfg::Dfg& g = *d.graph;
  TimingReport r;
  r.clockNs = opts.clockNs;
  r.clockSet = opts.clockSet;

  std::vector<char> isOutput(g.size(), 0);
  for (const auto& [id, ext] : g.outputs())
    if (id < g.size()) isOutput[id] = 1;

  Walker walker(d, opts);
  // Node ids are topological, so chained producers settle before readers.
  for (NodeId id = 0; id < g.size(); ++id)
    if (dfg::isSchedulable(g.node(id).kind) && d.aluOf.count(id))
      walker.walkOp(id);

  const DelayModel& m = opts.model;
  bool haveWorst = false;
  for (NodeId id = 0; id < g.size(); ++id) {
    const dfg::Node& node = g.node(id);
    if (!dfg::isSchedulable(node.kind) || !d.aluOf.count(id)) continue;
    const bool latched = d.regOfSignal.count(id) > 0 || isOutput[id];
    if (!latched) continue;  // chained-only: audited through its consumers

    const OpTiming& t = walker.timing[id];
    EndpointTiming e;
    e.op = id;
    e.step = d.schedule.endStepOf(id);
    e.alu = d.aluOf.at(id);
    e.latched = true;
    e.chainDepth = t.chainDepth;
    e.requiredNs = node.cycles * opts.clockNs;
    e.arrivalNs = t.totalNs + m.busNs + m.setupNs;
    e.slackNs = e.requiredNs - e.arrivalNs;
    e.provenance = t.provenance;
    const int destReg = d.regOfSignal.count(id) ? d.regOfSignal.at(id) : -1;
    if (destReg >= 0)
      e.provenance.push_back(util::format(
          "bus: ALU%d output to register r%d (+%.1f ns)", e.alu, destReg,
          m.busNs));
    else
      e.provenance.push_back(util::format(
          "bus: ALU%d output to output port (+%.1f ns)", e.alu, m.busNs));
    e.provenance.push_back(util::format(
        "register %s latches '%s' at end of step %d (setup +%.1f ns) — "
        "arrival %.1f ns vs %.1f ns budget",
        destReg >= 0 ? util::format("r%d", destReg).c_str() : "out",
        node.name.c_str(), e.step, m.setupNs, e.arrivalNs, e.requiredNs));

    r.maxChainDepth = std::max(r.maxChainDepth, e.chainDepth);
    if (!haveWorst || e.slackNs < r.worstSlackNs) {
      haveWorst = true;
      r.worstSlackNs = e.slackNs;
      r.worstOp = id;
    }
    trace::bump(trace::Counter::StaEndpoints);
    r.endpoints.push_back(std::move(e));
  }

  // Diagnostics, in endpoint order.
  auto timDiag = [&](std::string_view rule, const EndpointTiming& e,
                     std::string message) {
    Diagnostic diag;
    diag.rule = std::string(rule);
    diag.severity = findRule(rule)->severity;
    diag.entity = EntityKind::Node;
    diag.loc.node = g.node(e.op).name;
    diag.loc.step = e.step;
    diag.loc.unit = e.alu;
    diag.message = std::move(message);
    diag.provenance = e.provenance;
    return diag;
  };

  const EndpointTiming* deepest = nullptr;
  for (const EndpointTiming& e : r.endpoints) {
    const dfg::Node& node = g.node(e.op);
    if (!opts.clockSet) {
      if (e.chainDepth >= 2 &&
          (!deepest || e.chainDepth > deepest->chainDepth))
        deepest = &e;
      continue;
    }
    if (e.slackNs < 0) {
      if (node.cycles > 1) {
        r.diagnostics.add(timDiag(
            kTimMulticycleUnderAlloc, e,
            util::format("'%s' needs %.1f ns but its %d allocated step(s) "
                         "give %.1f ns (slack %.1f ns)",
                         node.name.c_str(), e.arrivalNs, node.cycles,
                         e.requiredNs, e.slackNs)));
      } else {
        Diagnostic diag = timDiag(
            kTimClockViolation, e,
            util::format("register-to-register path of '%s' takes %.1f ns, "
                         "exceeding the %.1f ns clock (slack %.1f ns, %d "
                         "chained ALU(s))",
                         node.name.c_str(), e.arrivalNs, e.requiredNs,
                         e.slackNs, e.chainDepth));
        diag.fixit = "raise --clock, shorten the chain, or allocate more steps";
        r.diagnostics.add(std::move(diag));
      }
    } else if (e.arrivalNs > opts.nearCriticalFraction * e.requiredNs) {
      r.diagnostics.add(timDiag(
          kTimNearCritical, e,
          util::format("'%s' uses %.1f of %.1f ns (%.0f%% of the budget, "
                       "slack %.1f ns)",
                       node.name.c_str(), e.arrivalNs, e.requiredNs,
                       100.0 * e.arrivalNs / e.requiredNs, e.slackNs)));
    }
  }
  if (!opts.clockSet && deepest) {
    r.diagnostics.add(timDiag(
        kTimUnconstrainedChain, *deepest,
        util::format("'%s' ends a %d-ALU combinational chain (%.1f ns) but "
                     "no --clock constraint was given to audit it",
                     g.node(deepest->op).name.c_str(), deepest->chainDepth,
                     deepest->arrivalNs)));
  }
  return r;
}

std::string TimingReport::toString(const dfg::Dfg& g) const {
  std::string out = util::format(
      "timing: clock %.1f ns%s, %zu endpoint(s), max chain depth %d\n",
      clockNs, clockSet ? "" : " (unconstrained)", endpoints.size(),
      maxChainDepth);
  int worstStep = 0;
  for (const EndpointTiming& e : endpoints)
    if (e.op == worstOp) worstStep = e.step;
  if (worstOp != dfg::kNoNode)
    out += util::format("worst slack %.1f ns at '%s' (step %d)\n", worstSlackNs,
                        g.node(worstOp).name.c_str(), worstStep);
  for (const EndpointTiming& e : endpoints)
    out += util::format("  step %-3d %-12s arrival %7.1f ns  required %7.1f "
                        "ns  slack %7.1f ns  chain %d\n",
                        e.step, g.node(e.op).name.c_str(), e.arrivalNs,
                        e.requiredNs, e.slackNs, e.chainDepth);
  if (worstOp != dfg::kNoNode) {
    out += "critical path:\n";
    for (const EndpointTiming& e : endpoints)
      if (e.op == worstOp)
        for (const std::string& line : e.provenance)
          out += "  via: " + line + "\n";
  }
  return out;
}

}  // namespace mframe::analysis::timing
