// Reference-free RTL audit: symbolic FSM reachability plus datapath-safety
// static analyses over the reachable step graph.
//
// `prove` (the translation validator) needs the source DFG and symbolically
// executes the whole design; the audit certifies the RTL is safe *on its own
// terms* with nothing but the datapath, controller and ROM in hand:
//
//   AUD001  unreachable microcode row / dead FSM state
//   AUD002  register read-before-write on a reachable path
//   AUD003  multi-driver contention on a shared output line in one step
//   AUD004  mux data input never selected on any reachable path
//   AUD005  two values latched into one register in the same step
//   AUD006  an undefined (X) value can reach a primary-output register
//
// Reachability treats branches symbolically (every out-edge taken), so the
// reachable set over-approximates every concrete run. The definedness facts
// behind AUD002/AUD006 come from a must-defined forward dataflow (meet =
// intersection over predecessor states) solved with the PR 4 monotone
// worklist engine; register cleanliness ("written only by ops whose operand
// chains are themselves defined") rides the same fixpoint, which is what
// lets AUD006 trace an X from a skipped write all the way to an output.
//
// Diagnostics flow through the standard Diagnostic/LintReport machinery with
// full provenance chains (reset path, issue, port, source, register/bus), so
// text/JSON rendering and --fail-on gating come for free. Deterministic: the
// per-step scan parallelizes over `jobs` worker threads but merges findings
// in step order and bumps the audit.* counters once after the merge, so
// reports and counters are bit-identical for every jobs value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/audit/reach.h"
#include "analysis/diagnostic.h"
#include "rtl/controller.h"
#include "rtl/datapath.h"
#include "rtl/microcode.h"

namespace mframe::analysis::audit {

struct AuditOptions {
  int jobs = 1;  ///< worker threads for the per-step scan (results identical)
  /// States proven unreachable by value analysis (range refinement), indexed
  /// by state; AUD001 is suppressed for them — they are dead by proof, not
  /// by a wiring mistake. Empty = none.
  std::vector<char> provenDead;
};

struct AuditResult {
  LintReport report;
  ReachResult reach;
  std::uint64_t rbwChecks = 0;  ///< register-operand definedness checks

  bool clean() const { return report.empty(); }
};

/// Audit a complete synthesis artifact. Pure: no DFG reference semantics are
/// consulted beyond node names/arities for rendering and operand wiring.
AuditResult auditDesign(const rtl::Datapath& d, const rtl::ControllerFsm& fsm,
                        const rtl::MicrocodeRom& rom,
                        const AuditOptions& opt = {});

/// The `audit --json` document: {"schema": 1, "design": ..., "states": N,
/// "reachableStates": M, "rbwChecks": K, "lint": <schema-2 lint doc>}.
std::string renderAuditJson(const AuditResult& r, const dfg::Dfg& g);

/// One-line human summary ("7/7 states reachable, 14 read checks, clean").
std::string renderAuditSummary(const AuditResult& r);

}  // namespace mframe::analysis::audit
