#include "analysis/audit/audit.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <tuple>
#include <utility>
#include <vector>

#include "analysis/audit/step_index.h"
#include "analysis/dataflow/engine.h"
#include "analysis/rules.h"
#include "explore/thread_pool.h"
#include "trace/trace.h"
#include "util/strings.h"

namespace mframe::analysis::audit {

namespace {

using dfg::NodeId;

Diagnostic diag(std::string_view rule, EntityKind entity, Location loc,
                std::string message, std::string fixit = "") {
  Diagnostic d;
  d.rule = std::string(rule);
  d.severity = findRule(rule)->severity;
  d.entity = entity;
  d.loc = std::move(loc);
  d.message = std::move(message);
  d.fixit = std::move(fixit);
  return d;
}

Location at(std::string node, int step = -1, int unit = -1,
            std::string detail = "") {
  Location l;
  l.node = std::move(node);
  l.step = step;
  l.unit = unit;
  l.detail = std::move(detail);
  return l;
}

// ------------------------------------------------------------- bit vectors

/// Fixed-width bitset over the design's registers.
struct Bits {
  std::vector<std::uint64_t> w;

  bool operator==(const Bits&) const = default;

  static Bits zeros(std::size_t n) {
    Bits b;
    b.w.assign((n + 63) / 64, 0);
    return b;
  }
  static Bits ones(std::size_t n) {
    Bits b = zeros(n);
    for (std::size_t i = 0; i < n; ++i) b.set(static_cast<int>(i));
    return b;
  }
  bool test(int i) const {
    return (w[static_cast<std::size_t>(i) / 64] >>
            (static_cast<std::size_t>(i) % 64)) &
           1u;
  }
  void set(int i) {
    w[static_cast<std::size_t>(i) / 64] |= std::uint64_t{1}
                                           << (static_cast<std::size_t>(i) % 64);
  }
  void clear(int i) {
    w[static_cast<std::size_t>(i) / 64] &=
        ~(std::uint64_t{1} << (static_cast<std::size_t>(i) % 64));
  }
  void intersect(const Bits& o) {
    for (std::size_t k = 0; k < w.size(); ++k) w[k] &= o.w[k];
  }
};

/// Per-state register facts. `defined`: some value was stored on *every*
/// path from reset. `clean`: on every path, and the stored value's operand
/// chain never read an undefined register (clean implies defined).
struct DefState {
  Bits defined, clean;

  bool operator==(const DefState&) const = default;
};

// --------------------------------------------------- definedness transfer
// (the per-state fold itself — StepIndex — is shared with the range
// analysis and lives in step_index.h)

/// Would executing `op` with register facts `in` produce a clean value?
/// Chained operands (ALU-output sources) recurse into their producer;
/// node ids are topological, so the recursion is bounded by the DAG depth.
bool opClean(const StepIndex& idx, NodeId op, const DefState& in,
             int depth = 0) {
  if (depth > 64) return false;  // defensive: treat runaway chains as X
  const dfg::Node& n = idx.d->graph->node(op);
  for (NodeId sig : n.inputs) {
    const alloc::Source* src = idx.wiredSource(op, sig);
    if (src == nullptr) continue;  // unrouted read: not this rule's defect
    switch (src->kind) {
      case alloc::Source::Kind::Register:
        if (!in.clean.test(src->index)) return false;
        break;
      case alloc::Source::Kind::AluOut:
        if (!opClean(idx, sig, in, depth + 1)) return false;
        break;
      case alloc::Source::Kind::PrimaryInput:
      case alloc::Source::Kind::Constant:
        break;
    }
  }
  return true;
}

/// State-0 facts: primary-input preloads are defined and clean.
DefState entryState(const StepIndex& idx) {
  DefState s{Bits::zeros(idx.numRegs), Bits::zeros(idx.numRegs)};
  for (const rtl::RegLoad* rl : idx.loads[0]) {
    s.defined.set(rl->reg);
    s.clean.set(rl->reg);
  }
  return s;
}

/// Apply state `step`'s latches to the incoming facts. Several writers of
/// one register in the same step leave it defined but clean only when
/// every writer is clean (the hardware result is any of them).
DefState applyWrites(const StepIndex& idx, int step, DefState in) {
  const auto& ls = idx.loads[static_cast<std::size_t>(step)];
  for (std::size_t i = 0; i < ls.size();) {
    std::size_t j = i;
    bool allClean = true;
    while (j < ls.size() && ls[j]->reg == ls[i]->reg) {
      const bool c = ls[j]->fromAlu < 0 || opClean(idx, ls[j]->signal, in);
      allClean = allClean && c;
      ++j;
    }
    in.defined.set(ls[i]->reg);
    if (allClean)
      in.clean.set(ls[i]->reg);
    else
      in.clean.clear(ls[i]->reg);
    i = j;
  }
  return in;
}

// ------------------------------------------------------------ the fixpoint

/// Must-defined forward dataflow over the reachable step graph: meet is
/// intersection over predecessor states, transfer applies the state's
/// latches. Unreachable states (empty dependence list past state 0) stay at
/// top so they never weaken a reachable meet.
struct MustDefinedDomain {
  using Value = DefState;

  const StepIndex* idx;

  Value initial(int node) const {
    return node == 0 ? entryState(*idx)
                     : DefState{Bits::ones(idx->numRegs),
                                Bits::ones(idx->numRegs)};
  }
  Value transfer(int node, const std::vector<Value>& deps) const {
    if (node == 0) return entryState(*idx);
    if (deps.empty())
      return DefState{Bits::ones(idx->numRegs), Bits::ones(idx->numRegs)};
    DefState in = deps[0];
    for (std::size_t k = 1; k < deps.size(); ++k) {
      in.defined.intersect(deps[k].defined);
      in.clean.intersect(deps[k].clean);
    }
    return applyWrites(*idx, node, std::move(in));
  }
  static Value widen(const Value& previous, const Value& next) {
    // Intersection over a finite bitset only descends; meet of old and new
    // is a safe (and here: exact) forced fixpoint.
    DefState v = previous;
    v.defined.intersect(next.defined);
    v.clean.intersect(next.clean);
    return v;
  }
};

/// Incoming facts of a reachable state: the meet of its predecessors'
/// solved out-states (state 0 has no predecessors and no reads).
DefState inStateOf(int s, const ReachResult& reach, const StepIndex& idx,
                   const std::vector<DefState>& out) {
  const auto& ps = reach.preds[static_cast<std::size_t>(s)];
  if (ps.empty())
    return DefState{Bits::zeros(idx.numRegs), Bits::zeros(idx.numRegs)};
  DefState in = out[static_cast<std::size_t>(ps[0])];
  for (std::size_t k = 1; k < ps.size(); ++k) {
    in.defined.intersect(out[static_cast<std::size_t>(ps[k])].defined);
    in.clean.intersect(out[static_cast<std::size_t>(ps[k])].clean);
  }
  return in;
}

// ------------------------------------------------------------- provenance

std::string formatPath(const std::vector<int>& path) {
  std::string s = "reachable path:";
  for (std::size_t i = 0; i < path.size(); ++i)
    s += util::format("%s%d", i == 0 ? " " : " -> ", path[i]);
  return s;
}

/// A reset path to `target` along which no visited state latches register
/// `reg` — the concrete witness behind a must-defined miss. Falls back to
/// the plain BFS path when blocking finds nothing (cannot happen for a
/// distributive must-analysis, but the audit must not crash on a liar).
std::vector<int> witnessPathAvoiding(const ReachResult& reach,
                                     const StepIndex& idx, int reg,
                                     int target) {
  std::vector<char> writes(static_cast<std::size_t>(reach.numStates), 0);
  for (int s = 0; s < reach.numStates; ++s)
    for (const rtl::RegLoad* rl : idx.loads[static_cast<std::size_t>(s)])
      if (rl->reg == reg) writes[static_cast<std::size_t>(s)] = 1;

  std::vector<int> parent(static_cast<std::size_t>(reach.numStates), -2);
  std::deque<int> frontier;
  if (!writes[0]) {
    parent[0] = -1;
    frontier.push_back(0);
  }
  while (!frontier.empty()) {
    const int s = frontier.front();
    frontier.pop_front();
    for (int t : reach.succs[static_cast<std::size_t>(s)]) {
      if (parent[static_cast<std::size_t>(t)] != -2) continue;
      if (t != target && writes[static_cast<std::size_t>(t)]) continue;
      parent[static_cast<std::size_t>(t)] = s;
      if (t == target) {
        std::vector<int> path;
        for (int v = t; v != -1; v = parent[static_cast<std::size_t>(v)])
          path.push_back(v);
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(t);
    }
  }
  return reach.pathFromReset(target);
}

// ------------------------------------------------------------ per-step scan

struct StepFindings {
  std::vector<Diagnostic> diags;
  std::uint64_t rbwChecks = 0;
};

/// AUD002 / AUD003 / AUD005 for one reachable state. Pure in `step`, so the
/// parallel scan can fill slots in any order.
StepFindings scanStep(int step, const StepIndex& idx, const ReachResult& reach,
                      const std::vector<DefState>& out) {
  StepFindings f;
  const dfg::Dfg& g = *idx.d->graph;
  const DefState in = inStateOf(step, reach, idx, out);
  const auto& issues = idx.issues[static_cast<std::size_t>(step)];

  // AUD003: several non-exclusive issues drive one ALU's output line.
  std::map<int, std::vector<const rtl::MicroOp*>> byAlu;
  for (const rtl::MicroOp* m : issues) byAlu[m->alu].push_back(m);
  for (const auto& [alu, ms] : byAlu) {
    bool clash = false;
    for (std::size_t i = 0; i < ms.size() && !clash; ++i)
      for (std::size_t j = i + 1; j < ms.size() && !clash; ++j)
        clash = !g.mutuallyExclusive(ms[i]->op, ms[j]->op);
    if (!clash) continue;
    std::vector<std::string> names;
    for (const rtl::MicroOp* m : ms) names.push_back(g.node(m->op).name);
    Diagnostic d = diag(
        kAudBusContention, EntityKind::Alu,
        at(names[0], step, alu),
        util::format("ALU%d output line driven by %zu concurrent issues in "
                     "step %d (%s)",
                     alu, ms.size(), step,
                     util::join(names, ", ").c_str()),
        "reschedule or rebind so each ALU issues at most once per step");
    d.provenance.push_back(formatPath(reach.pathFromReset(step)));
    for (const rtl::MicroOp* m : ms)
      d.provenance.push_back(util::format(
          "'%s' (%s) issued on ALU%d in step %d", g.node(m->op).name.c_str(),
          std::string(dfg::kindName(g.node(m->op).kind)).c_str(), m->alu,
          m->step));
    f.diags.push_back(std::move(d));
  }

  // AUD002: a register operand read before any write reaches it.
  for (const rtl::MicroOp* m : issues) {
    for (const PortRead& r : readsOf(idx, *m)) {
      if (r.src->kind != alloc::Source::Kind::Register) continue;
      ++f.rbwChecks;
      if (in.defined.test(r.src->index)) continue;
      Diagnostic d = diag(
          kAudReadBeforeWrite, EntityKind::Register,
          at(g.node(m->op).name, step, r.src->index, r.port),
          util::format("'%s' reads R%d in step %d before any write reaches "
                       "it on some reset path",
                       g.node(m->op).name.c_str(), r.src->index, step),
          "schedule a defining write on every reset path to this read");
      d.provenance.push_back(
          formatPath(witnessPathAvoiding(reach, idx, r.src->index, step)) +
          util::format(" (no state on it latches R%d)", r.src->index));
      d.provenance.push_back(util::format(
          "'%s' issued on ALU%d, %s port%s", g.node(m->op).name.c_str(),
          m->alu, r.port,
          r.select >= 0 ? util::format(" select %d", r.select).c_str() : ""));
      d.provenance.push_back(util::format(
          "port source: R%d (operand '%s')", r.src->index,
          g.node(r.signal).name.c_str()));
      f.diags.push_back(std::move(d));
    }
  }

  // AUD005: one register latched from several non-exclusive values at the
  // end of the same step.
  const auto& loads = idx.loads[static_cast<std::size_t>(step)];
  for (std::size_t i = 0; i < loads.size();) {
    std::size_t j = i;
    while (j < loads.size() && loads[j]->reg == loads[i]->reg) ++j;
    bool clash = false;
    for (std::size_t a = i; a < j && !clash; ++a)
      for (std::size_t b = a + 1; b < j && !clash; ++b)
        clash = loads[a]->signal != loads[b]->signal &&
                !g.mutuallyExclusive(loads[a]->signal, loads[b]->signal);
    if (clash) {
      std::vector<std::string> names;
      for (std::size_t a = i; a < j; ++a)
        names.push_back(g.node(loads[a]->signal).name);
      Diagnostic d = diag(
          kAudWriteClobber, EntityKind::Register,
          at(names[0], step, loads[i]->reg),
          util::format("R%d latched from %zu concurrent values at the end "
                       "of step %d (%s)",
                       loads[i]->reg, j - i, step,
                       util::join(names, ", ").c_str()),
          "give each concurrent value its own register");
      d.provenance.push_back(formatPath(reach.pathFromReset(step)));
      for (std::size_t a = i; a < j; ++a)
        d.provenance.push_back(util::format(
            "'%s' latched into R%d from %s", names[a - i].c_str(),
            loads[a]->reg,
            loads[a]->fromAlu < 0
                ? "a primary input"
                : util::format("ALU%d", loads[a]->fromAlu).c_str()));
      f.diags.push_back(std::move(d));
    }
    i = j;
  }
  return f;
}

// ----------------------------------------------------------- global checks

/// AUD001: dead FSM states / microcode rows. States in `provenDead` were
/// pruned by the range analysis' value proofs and stay quiet.
void checkUnreachable(const StepIndex& idx, const ReachResult& reach,
                      const std::vector<char>& provenDead,
                      LintReport& report) {
  const dfg::Dfg& g = *idx.d->graph;
  for (int s = 1; s < reach.numStates; ++s) {
    if (reach.reachable[static_cast<std::size_t>(s)]) continue;
    if (static_cast<std::size_t>(s) < provenDead.size() &&
        provenDead[static_cast<std::size_t>(s)])
      continue;
    const auto& issues = idx.issues[static_cast<std::size_t>(s)];
    const auto& loads = idx.loads[static_cast<std::size_t>(s)];
    Diagnostic d = diag(
        kAudUnreachable, EntityKind::Step, at("", s),
        util::format("state %d is unreachable from reset; microcode row %d "
                     "is dead (%zu issue(s), %zu latch(es))",
                     s, s, issues.size(), loads.size()),
        "rewire the controller transfers or drop the row");
    if (issues.empty() && loads.empty())
      d.severity = Severity::Warning;  // dead but empty: wasted word only
    for (const rtl::MicroOp* m : issues)
      d.provenance.push_back(util::format(
          "row issues '%s' on ALU%d", g.node(m->op).name.c_str(), m->alu));
    for (const rtl::RegLoad* rl : loads)
      d.provenance.push_back(util::format(
          "row latches '%s' into R%d", g.node(rl->signal).name.c_str(),
          rl->reg));
    report.add(std::move(d));
  }
}

/// AUD004: mux data inputs never selected on any reachable path.
void checkDeadMuxInputs(const StepIndex& idx, const ReachResult& reach,
                        LintReport& report) {
  const dfg::Dfg& g = *idx.d->graph;
  const std::size_t numAlus = idx.d->alus.size();
  // used[alu][0 = left, 1 = right] = selected source indices
  std::vector<std::array<std::vector<char>, 2>> used(numAlus);
  for (std::size_t a = 0; a < numAlus; ++a) {
    used[a][0].assign(idx.d->leftPort[a].sources.size(), 0);
    used[a][1].assign(idx.d->rightPort[a].sources.size(), 0);
  }
  for (int s = 1; s < reach.numStates; ++s) {
    if (!reach.reachable[static_cast<std::size_t>(s)]) continue;
    for (const rtl::MicroOp* m : idx.issues[static_cast<std::size_t>(s)])
      for (const PortRead& r : readsOf(idx, *m)) {
        const auto a = static_cast<std::size_t>(m->alu);
        const std::size_t side = r.port[0] == 'l' ? 0 : 1;
        const std::size_t sel =
            r.select >= 0 ? static_cast<std::size_t>(r.select) : 0;
        if (sel < used[a][side].size()) used[a][side][sel] = 1;
      }
  }
  for (std::size_t a = 0; a < numAlus; ++a)
    for (std::size_t side = 0; side < 2; ++side) {
      const alloc::PortWiring& w =
          side == 0 ? idx.d->leftPort[a] : idx.d->rightPort[a];
      if (w.sources.size() < 2) continue;  // no mux on this port
      for (std::size_t sel = 0; sel < w.sources.size(); ++sel) {
        if (used[a][side][sel]) continue;
        const char* port = side == 0 ? "left" : "right";
        report.add(diag(
            kAudDeadMuxInput, EntityKind::Port,
            at("", -1, static_cast<int>(a),
               util::format("%s select %zu", port, sel)),
            util::format("mux input %zu of ALU%zu's %s port (%s) is never "
                         "selected on any reachable path",
                         sel, a, port, w.sources[sel].toString(g).c_str()),
            "drop the wire or revive the control state that selects it"));
      }
    }
}

/// AUD006: an undefined or X-tainted register feeds a primary output at a
/// reachable halt state.
void checkOutputs(const StepIndex& idx, const ReachResult& reach,
                  const std::vector<DefState>& out, LintReport& report) {
  const dfg::Dfg& g = *idx.d->graph;
  for (int s = 0; s < reach.numStates; ++s) {
    if (!reach.reachable[static_cast<std::size_t>(s)] || !reach.isTerminal(s))
      continue;
    const DefState& facts = out[static_cast<std::size_t>(s)];
    for (const auto& [node, name] : g.outputs()) {
      const auto it = idx.d->regOfSignal.find(node);
      if (it == idx.d->regOfSignal.end()) continue;  // unregistered output
      const int reg = it->second;
      const bool undef = !facts.defined.test(reg);
      if (!undef && facts.clean.test(reg)) continue;
      Diagnostic d = diag(
          kAudXPropagation, EntityKind::Register,
          at(g.node(node).name, s, reg, name),
          undef
              ? util::format("primary output '%s' (R%d) is never written on "
                             "some reset path reaching halt state %d",
                             name.c_str(), reg, s)
              : util::format("primary output '%s' (R%d) can latch an "
                             "undefined (X) value at halt state %d",
                             name.c_str(), reg, s),
          undef ? "latch the output's value on every path to halt"
                : "fix the upstream undefined read the X propagates from");
      d.provenance.push_back(
          formatPath(undef ? witnessPathAvoiding(reach, idx, reg, s)
                           : reach.pathFromReset(s)));
      d.provenance.push_back(util::format(
          "output '%s' is served from R%d (signal '%s')", name.c_str(), reg,
          g.node(node).name.c_str()));
      if (!undef)
        d.provenance.push_back(
            "the taint's root cause is reported as AUD002 above");
      report.add(std::move(d));
    }
  }
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

AuditResult auditDesign(const rtl::Datapath& d, const rtl::ControllerFsm& fsm,
                        const rtl::MicrocodeRom& rom,
                        const AuditOptions& opt) {
  const trace::Span span("audit");
  (void)rom;  // the ROM is the FSM re-encoded; the FSM is the richer view

  AuditResult r;
  const StepIndex idx(d, fsm);
  r.reach = reachSteps(fsm);

  // The must-defined/clean fixpoint over the step graph (dependences =
  // reachable predecessors), solved by the shared worklist engine.
  const MustDefinedDomain domain{&idx};
  const auto solution =
      dataflow::solveGraph(r.reach.numStates, r.reach.preds, domain);

  // Reachable-step scan, parallel over states; slots merge in step order so
  // the report and every audit.* counter are identical for any jobs value.
  std::vector<StepFindings> slots(
      static_cast<std::size_t>(r.reach.numStates));
  explore::parallelFor(
      r.reach.numStates - 1, opt.jobs, [&](int i) {
        const int step = i + 1;
        if (r.reach.reachable[static_cast<std::size_t>(step)])
          slots[static_cast<std::size_t>(step)] =
              scanStep(step, idx, r.reach, solution.values);
      });

  checkUnreachable(idx, r.reach, opt.provenDead, r.report);
  for (int s = 1; s < r.reach.numStates; ++s) {
    auto& slot = slots[static_cast<std::size_t>(s)];
    r.rbwChecks += slot.rbwChecks;
    for (Diagnostic& d2 : slot.diags) r.report.add(std::move(d2));
  }
  checkDeadMuxInputs(idx, r.reach, r.report);
  checkOutputs(idx, r.reach, solution.values, r.report);

  trace::bump(trace::Counter::AuditReachableStates,
              static_cast<std::uint64_t>(r.reach.reachableCount()));
  trace::bump(trace::Counter::AuditRbwChecks, r.rbwChecks);
  trace::bump(trace::Counter::AuditFindings,
              static_cast<std::uint64_t>(r.report.size()));
  return r;
}

std::string renderAuditJson(const AuditResult& r, const dfg::Dfg& g) {
  std::string out = "{\n";
  out += "  \"schema\": 1,\n";
  out += "  \"design\": \"" + jsonEscape(g.name()) + "\",\n";
  out += util::format("  \"states\": %d,\n", r.reach.numStates);
  out += util::format("  \"reachableStates\": %d,\n",
                      r.reach.reachableCount());
  out += util::format("  \"rbwChecks\": %llu,\n",
                      static_cast<unsigned long long>(r.rbwChecks));
  out += "  \"lint\": " + r.report.renderJson(g.name());
  out += "\n}\n";
  return out;
}

std::string renderAuditSummary(const AuditResult& r) {
  std::string out = util::format(
      "audit: %d/%d states reachable, %llu read checks",
      r.reach.reachableCount(), r.reach.numStates,
      static_cast<unsigned long long>(r.rbwChecks));
  if (r.clean()) return out + ", clean";
  return out + util::format(", %zu finding(s)", r.report.size());
}

}  // namespace mframe::analysis::audit
