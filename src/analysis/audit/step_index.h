// The design folded into per-state issue/latch tables plus operand wiring —
// the shared substrate of the reference-free analyses over the controller
// step graph: the audit (must-defined/clean, audit.cpp) and the range
// analysis (interval fixpoint, src/analysis/range/) both walk the same
// canonical per-state view, so its construction lives here once.
//
// Rows are sorted canonically (issues by ALU then op, latches by register
// then signal) regardless of how .bind edits shuffled the source vectors:
// grouping and report order of every downstream diagnostic depend on it.
#pragma once

#include <vector>

#include "alloc/interconnect.h"
#include "rtl/controller.h"
#include "rtl/datapath.h"

namespace mframe::analysis::audit {

/// Per-state issue and latch tables over a datapath + controller pair. Holds
/// raw pointers into both; the caller keeps them alive.
struct StepIndex {
  const rtl::Datapath* d = nullptr;
  const rtl::ControllerFsm* fsm = nullptr;
  std::size_t numRegs = 0;
  /// microcode issues per state (index = step, row 0 always empty)
  std::vector<std::vector<const rtl::MicroOp*>> issues;
  /// register latches per state (index = step; step 0 = input preloads)
  std::vector<std::vector<const rtl::RegLoad*>> loads;

  StepIndex(const rtl::Datapath& dp, const rtl::ControllerFsm& f);

  /// The wired source carrying `signal` into `op` (either port), or nullptr
  /// when the interconnect never routes that read (RTL009 turf).
  const alloc::Source* wiredSource(dfg::NodeId op, dfg::NodeId signal) const;
};

/// One issue's reads, resolved through the live mux selects: the effective
/// physical source per port (route overrides included). Ports whose select
/// points outside the wiring are skipped — EQV004 owns that defect.
struct PortRead {
  const char* port;  ///< "left" / "right"
  dfg::NodeId signal;
  const alloc::Source* src;
  int select;  ///< effective select (-1: single-source port, no mux)
};

std::vector<PortRead> readsOf(const StepIndex& idx, const rtl::MicroOp& m);

}  // namespace mframe::analysis::audit
