#include "analysis/audit/step_index.h"

#include <algorithm>
#include <tuple>

namespace mframe::analysis::audit {

StepIndex::StepIndex(const rtl::Datapath& dp, const rtl::ControllerFsm& f)
    : d(&dp), fsm(&f), numRegs(dp.regs.count()) {
  const auto n = static_cast<std::size_t>(f.numSteps) + 1;
  issues.resize(n);
  loads.resize(n);
  for (const rtl::MicroOp& m : f.microOps)
    if (m.step >= 0 && m.step <= f.numSteps)
      issues[static_cast<std::size_t>(m.step)].push_back(&m);
  for (const rtl::RegLoad& rl : f.regLoads)
    if (rl.step >= 0 && rl.step <= f.numSteps)
      loads[static_cast<std::size_t>(rl.step)].push_back(&rl);
  // Canonical row order, independent of how .bind edits shuffled the
  // source vectors: grouping and report order depend on it.
  for (auto& row : issues)
    std::sort(row.begin(), row.end(),
              [](const rtl::MicroOp* a, const rtl::MicroOp* b) {
                return std::tie(a->alu, a->op) < std::tie(b->alu, b->op);
              });
  for (auto& row : loads)
    std::sort(row.begin(), row.end(),
              [](const rtl::RegLoad* a, const rtl::RegLoad* b) {
                return std::tie(a->reg, a->signal) <
                       std::tie(b->reg, b->signal);
              });
}

const alloc::Source* StepIndex::wiredSource(dfg::NodeId op,
                                            dfg::NodeId signal) const {
  const auto alu = static_cast<std::size_t>(d->aluOf.at(op));
  const alloc::Source* s = d->leftPort[alu].sourceFor(op, signal);
  if (s == nullptr) s = d->rightPort[alu].sourceFor(op, signal);
  return s;
}

std::vector<PortRead> readsOf(const StepIndex& idx, const rtl::MicroOp& m) {
  std::vector<PortRead> out;
  const dfg::Node& n = idx.d->graph->node(m.op);
  if (n.inputs.empty()) return out;
  const auto alu = static_cast<std::size_t>(m.alu);
  const auto& arr = idx.d->arrangement[alu];
  const bool swap = arr.swapped.count(m.op) ? arr.swapped.at(m.op) : false;

  const auto resolve = [&](const alloc::PortWiring& w, int sel,
                           dfg::NodeId sig, const char* port) {
    const alloc::Source* src = nullptr;
    int eff = -1;
    if (w.sources.size() == 1) {
      src = &w.sources[0];
    } else if (!w.sources.empty()) {
      eff = sel;
      if (sel >= 0 && static_cast<std::size_t>(sel) < w.sources.size())
        src = &w.sources[static_cast<std::size_t>(sel)];
    }
    if (src != nullptr) out.push_back({port, sig, src, eff});
  };

  const dfg::NodeId l =
      swap && n.inputs.size() == 2 ? n.inputs[1] : n.inputs[0];
  resolve(idx.d->leftPort[alu], m.leftSelect, l, "left");
  if (n.inputs.size() >= 2) {
    const dfg::NodeId rsig = swap ? n.inputs[0] : n.inputs[1];
    resolve(idx.d->rightPort[alu], m.rightSelect, rsig, "right");
  }
  return out;
}

}  // namespace mframe::analysis::audit
