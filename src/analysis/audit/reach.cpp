#include "analysis/audit/reach.h"

#include <algorithm>
#include <deque>

namespace mframe::analysis::audit {

int ReachResult::reachableCount() const {
  return static_cast<int>(
      std::count(reachable.begin(), reachable.end(), char{1}));
}

std::vector<int> ReachResult::pathFromReset(int state) const {
  std::vector<int> path;
  if (state < 0 || state >= numStates ||
      !reachable[static_cast<std::size_t>(state)])
    return path;
  for (int s = state; s >= 0; s = parent[static_cast<std::size_t>(s)]) {
    path.push_back(s);
    if (s == 0) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

ReachResult reachSteps(const rtl::ControllerFsm& fsm) {
  ReachResult r;
  r.numStates = fsm.numSteps + 1;
  const auto n = static_cast<std::size_t>(r.numStates);
  r.reachable.assign(n, 0);
  r.parent.assign(n, -1);
  r.succs.resize(n);
  r.preds.resize(n);
  for (int s = 0; s < r.numStates; ++s)
    r.succs[static_cast<std::size_t>(s)] = fsm.successorsOf(s);

  std::deque<int> frontier;
  r.reachable[0] = 1;
  frontier.push_back(0);
  while (!frontier.empty()) {
    const int s = frontier.front();
    frontier.pop_front();
    for (int t : r.succs[static_cast<std::size_t>(s)]) {
      if (t < 0 || t >= r.numStates) continue;
      r.preds[static_cast<std::size_t>(t)].push_back(s);
      if (r.reachable[static_cast<std::size_t>(t)]) continue;
      r.reachable[static_cast<std::size_t>(t)] = 1;
      r.parent[static_cast<std::size_t>(t)] = s;
      frontier.push_back(t);
    }
  }
  return r;
}

}  // namespace mframe::analysis::audit
