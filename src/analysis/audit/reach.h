// Symbolic reachability over the controller FSM: which control states can
// the machine actually enter, starting from reset? Branch conditions are
// treated symbolically — every out-edge of a reachable state is taken — so
// the reachable set over-approximates any concrete execution, which is the
// right polarity for the safety checks layered on top (a defect on a
// reachable path is a real defect candidate; an unreachable row is dead
// control logic either way).
#pragma once

#include <vector>

#include "rtl/controller.h"

namespace mframe::analysis::audit {

/// The reachable step graph. States are 0..numSteps; state 0 is reset.
struct ReachResult {
  int numStates = 0;                    ///< numSteps + 1
  std::vector<char> reachable;          ///< indexed by state
  std::vector<int> parent;              ///< BFS tree edge (-1 = root/unreached)
  std::vector<std::vector<int>> succs;  ///< out-edges per state (all states)
  std::vector<std::vector<int>> preds;  ///< in-edges, reachable sources only

  int reachableCount() const;

  /// True when `s` has no out-edges — the FSM halts after executing it.
  bool isTerminal(int s) const {
    return s >= 0 && s < numStates &&
           succs[static_cast<std::size_t>(s)].empty();
  }

  /// The BFS witness path reset -> ... -> `state` (inclusive); empty when
  /// the state is unreached.
  std::vector<int> pathFromReset(int state) const;
};

/// Breadth-first exploration of fsm.successorsOf from state 0.
ReachResult reachSteps(const rtl::ControllerFsm& fsm);

}  // namespace mframe::analysis::audit
