// DFG rule family: structural lint of a data-flow graph, the front line the
// schedulers rely on (a DAG of <=2-input ops with consistent multicycle /
// chaining / branch attributes). Unlike Dfg::validate(), which stops at the
// first problem and returns a bare string, lintDfg reports *every* problem
// as a structured Diagnostic and survives arbitrarily malformed graphs
// (out-of-range input ids included).
#pragma once

#include "analysis/diagnostic.h"
#include "dfg/dfg.h"

namespace mframe::analysis {

/// Run every DFG rule over `g`. Safe on graphs that Dfg::validate() rejects.
LintReport lintDfg(const dfg::Dfg& g);

}  // namespace mframe::analysis
