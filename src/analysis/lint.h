// Umbrella header for the lint engine: structured diagnostics, the rule
// registry and the three rule families (DFG, schedule, RTL). The CLI's
// `mframe lint` subcommand and the automatic pre-flight checks before
// `schedule`/`synth` are built on exactly these entry points:
//
//   analysis::lintDfg(g)                      — DFG structural rules
//   analysis::lintSchedule(s, constraints)    — schedule rules
//   analysis::lintDatapath(d, constraints, s) — RTL binding/register/wiring
//   analysis::lintBusPlan / lintMicrocode     — derived-artifact rules
//   analysis::lintLibrary(lib, needed)        — cell-library rules (LIB)
//   analysis::proveDatapath(d, fsm, rom)      — translation validator (EQV),
//                                               see analysis/validate/
//   analysis::dataflow::lintDataflow(g)       — dataflow analyses (OPT),
//                                               see analysis/dataflow/
//   analysis::timing::analyzeTiming(d)        — static timing (TIM),
//                                               see analysis/timing/
//   analysis::analyzeDesign(g, lib, opts)     — the `mframe analyze` bundle
//
// Reports render as text (LintReport::renderText) or JSON
// (LintReport::renderJson); see docs/LINT.md for the rule catalogue and
// docs/FORMATS.md for the JSON schema.
#pragma once

#include "analysis/analyze.h"
#include "analysis/dataflow/analyze.h"
#include "analysis/dfg_rules.h"
#include "analysis/diagnostic.h"
#include "analysis/lib_rules.h"
#include "analysis/rtl_rules.h"
#include "analysis/rules.h"
#include "analysis/sched_rules.h"
#include "analysis/timing/sta.h"
#include "analysis/validate/validate.h"
