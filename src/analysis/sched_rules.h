// Schedule rule family: the structured re-implementation of
// sched::verifySchedule. Emits one Diagnostic per violation — completeness,
// range, precedence (with chaining), occupancy (multicycle, pipelined,
// latency-folded) and resource limits — with the offending node, step and
// FU column attached. sched::verifySchedule is now a thin adapter over this
// pass, so the legacy string API (and every test written against it) keeps
// working unchanged.
#pragma once

#include "analysis/diagnostic.h"
#include "sched/schedule.h"

namespace mframe::analysis {

/// Run every schedule rule over `s` against `c`. Mirrors the legacy
/// contract: when completeness/range rules fire, the remaining passes are
/// skipped (they assume a complete placement).
LintReport lintSchedule(const sched::Schedule& s, const sched::Constraints& c);

}  // namespace mframe::analysis
