#include "analysis/dfg_rules.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <vector>

#include "analysis/rules.h"
#include "sim/eval.h"
#include "util/strings.h"

namespace mframe::analysis {

namespace {

using dfg::NodeId;

Diagnostic nodeDiag(std::string_view rule, const dfg::Node& n,
                    std::string message, std::string fixit = "") {
  Diagnostic d;
  d.rule = std::string(rule);
  d.severity = findRule(rule)->severity;
  d.entity = EntityKind::Node;
  d.loc.node = n.name.empty() ? util::format("#%u", n.id) : n.name;
  d.message = std::move(message);
  d.fixit = std::move(fixit);
  return d;
}

/// Follow in-range input edges depth-first and reconstruct one dependence
/// cycle as "a -> b -> a". Returns "" when the graph is acyclic.
std::string findCyclePath(const dfg::Dfg& g) {
  enum class Color : unsigned char { White, Grey, Black };
  std::vector<Color> color(g.size(), Color::White);
  std::vector<NodeId> parent(g.size(), dfg::kNoNode);

  for (NodeId root = 0; root < g.size(); ++root) {
    if (color[root] != Color::White) continue;
    std::vector<std::pair<NodeId, std::size_t>> stack{{root, 0}};
    color[root] = Color::Grey;
    while (!stack.empty()) {
      auto& [id, next] = stack.back();
      const auto& ins = g.node(id).inputs;
      if (next >= ins.size()) {
        color[id] = Color::Black;
        stack.pop_back();
        continue;
      }
      const NodeId in = ins[next++];
      if (in >= g.size()) continue;  // dangling: reported by DFG001
      if (color[in] == Color::Grey) {
        // Back edge id -> in closes a cycle; walk parents from id back to in.
        std::vector<std::string> path{g.node(in).name};
        for (NodeId walk = id; walk != in; walk = parent[walk])
          path.push_back(g.node(walk).name);
        path.push_back(g.node(in).name);
        std::reverse(path.begin() + 1, path.end() - 1);
        return util::join(path, " -> ");
      }
      if (color[in] == Color::White) {
        color[in] = Color::Grey;
        parent[in] = id;
        stack.push_back({in, 0});
      }
    }
  }
  return "";
}

}  // namespace

LintReport lintDfg(const dfg::Dfg& g) {
  LintReport r;
  const std::size_t n = g.size();

  // -- per-node structural rules (robust against any malformation) ----------
  std::unordered_map<std::string, NodeId> firstByName;
  bool refsInRange = true;
  for (NodeId id = 0; id < n; ++id) {
    const dfg::Node& node = g.node(id);

    // DFG008: names must be present and unique (they are the signal space).
    if (node.name.empty()) {
      r.add(nodeDiag(kDfgDuplicateName, node, "node has an empty signal name",
                     "give every node a unique signal name"));
    } else {
      auto [it, inserted] = firstByName.try_emplace(node.name, id);
      if (!inserted)
        r.add(nodeDiag(kDfgDuplicateName, node,
                       util::format("duplicate signal name '%s' (first defined by node #%u)",
                                    node.name.c_str(), it->second),
                       "rename one of the colliding signals"));
    }

    // DFG001 / DFG010: every input must reference an existing, older node.
    for (NodeId in : node.inputs) {
      if (in >= n) {
        refsInRange = false;
        r.add(nodeDiag(kDfgDanglingInput, node,
                       util::format("input id %u is out of range (graph has %zu nodes)",
                                    in, n),
                       "define the operand signal before using it"));
      } else if (in >= id) {
        r.add(nodeDiag(kDfgForwardRef, node,
                       util::format("input '%s' is not older than the node "
                                    "(graph must be built in topological order)",
                                    g.node(in).name.c_str())));
      }
    }

    // DFG002: arity must match the kind (every op takes at most 2 inputs).
    if (node.kind != dfg::OpKind::LoopSuper &&
        static_cast<int>(node.inputs.size()) != dfg::arity(node.kind))
      r.add(nodeDiag(kDfgArityMismatch, node,
                     util::format("%s expects %d input(s), has %zu",
                                  std::string(dfg::kindName(node.kind)).c_str(),
                                  dfg::arity(node.kind), node.inputs.size()),
                     "split wide expressions into two-input operations"));

    // DFG005: multicycle attribute must be at least one control step.
    if (node.cycles < 1)
      r.add(nodeDiag(kDfgBadCycles, node,
                     util::format("cycles=%d must be >= 1", node.cycles),
                     "drop the attribute or set cycles>=1"));

    // DFG006: a delay override must be positive and only makes sense on
    // single-cycle schedulable ops (chaining never applies elsewhere).
    if (node.delayNs >= 0) {
      if (node.delayNs == 0.0)
        r.add(nodeDiag(kDfgBadDelayOverride, node,
                       "zero combinational delay override (chaining would be free)",
                       "remove delay= or give a positive value"));
      else if (!dfg::isSchedulable(node.kind))
        r.add(nodeDiag(kDfgBadDelayOverride, node,
                       "delay override on a non-operation node is ignored",
                       "remove the delay= attribute"));
      else if (node.cycles > 1)
        r.add(nodeDiag(kDfgBadDelayOverride, node,
                       util::format("delay override on a multicycle op (cycles=%d) is "
                                    "ignored by chaining", node.cycles),
                       "remove the delay= attribute"));
    }

    // DFG012: a declared width must fit the unsigned-word value domain.
    if (node.width != 0 && (node.width < 1 || node.width > 64))
      r.add(nodeDiag(kDfgBadWidth, node,
                     util::format("width=%d outside the supported 1..64 bit range",
                                  node.width),
                     "drop the width= attribute or declare 1..64 bits"));

    // DFG013: a constant literal must fit its own declared width. A negative
    // literal never fits (the value domain is unsigned), and a positive one
    // must survive the width mask unchanged.
    if (node.kind == dfg::OpKind::Const && node.width >= 1 &&
        node.width <= 64 &&
        (node.constValue < 0 ||
         (static_cast<sim::Word>(node.constValue) &
          ~sim::maskFor(node.width)) != 0))
      r.add(nodeDiag(kDfgConstWidthOverflow, node,
                     util::format("constant %ld does not fit width=%d "
                                  "(max %llu)",
                                  node.constValue, node.width,
                                  static_cast<unsigned long long>(
                                      sim::maskFor(node.width))),
                     "widen the declaration or shrink the literal"));

    // DFG007: branch paths are alternating cond/arm pairs, none empty.
    if (!node.branchPath.empty()) {
      const auto parts = util::split(node.branchPath, '.');
      const bool emptyPart =
          std::any_of(parts.begin(), parts.end(),
                      [](const std::string& p) { return p.empty(); });
      if (parts.size() % 2 != 0 || emptyPart)
        r.add(nodeDiag(kDfgBadBranchPath, node,
                       util::format("malformed branch path '%s'", node.branchPath.c_str()),
                       "use alternating cond/arm pairs, e.g. 'c1.t' or 'c1.e.c2.t'"));
    }
  }

  // DFG011: primary outputs must name existing nodes.
  for (const auto& [id, ext] : g.outputs()) {
    if (id >= n) {
      Diagnostic d;
      d.rule = std::string(kDfgBadOutputRef);
      d.severity = findRule(kDfgBadOutputRef)->severity;
      d.entity = EntityKind::Design;
      d.loc.node = ext;
      d.message = util::format("output '%s': node id %u out of range", ext.c_str(), id);
      r.add(d);
    }
  }

  // -- graph-level rules (need in-range edges) ------------------------------
  if (!refsInRange) return r;

  // DFG003: dependence cycles, with one offending path spelled out.
  const std::string cycle = findCyclePath(g);
  if (!cycle.empty()) {
    Diagnostic d;
    d.rule = std::string(kDfgCycle);
    d.severity = findRule(kDfgCycle)->severity;
    d.entity = EntityKind::Design;
    d.loc.detail = cycle;
    d.message = "data dependences form a cycle: " + cycle;
    d.fixit = "break the cycle; a DFG must be a DAG";
    r.add(d);
  }

  // DFG004 / DFG009: reverse reachability from the primary outputs.
  std::vector<bool> reaches(n, false);
  std::vector<NodeId> work;
  for (const auto& [id, ext] : g.outputs())
    if (id < n && !reaches[id]) {
      reaches[id] = true;
      work.push_back(id);
    }
  while (!work.empty()) {
    const NodeId id = work.back();
    work.pop_back();
    for (NodeId in : g.node(id).inputs)
      if (!reaches[in]) {
        reaches[in] = true;
        work.push_back(in);
      }
  }
  if (g.outputs().empty() && n > 0) {
    Diagnostic d;
    d.rule = std::string(kDfgUnreachableOp);
    d.severity = findRule(kDfgUnreachableOp)->severity;
    d.entity = EntityKind::Design;
    d.message = "design has no primary outputs; every operation is dead";
    d.fixit = "mark at least one signal as an output";
    r.add(d);
  } else {
    for (NodeId id = 0; id < n; ++id) {
      const dfg::Node& node = g.node(id);
      if (dfg::isSchedulable(node.kind) && !reaches[id])
        r.add(nodeDiag(kDfgUnreachableOp, node,
                       util::format("result of '%s' never reaches a primary output",
                                    node.name.c_str()),
                       "remove the operation or route it to an output"));
    }
  }

  // DFG009: Input/Const leaves nobody consumes (and that are not outputs).
  std::vector<bool> consumed(n, false);
  for (NodeId id = 0; id < n; ++id)
    for (NodeId in : g.node(id).inputs) consumed[in] = true;
  std::set<NodeId> outputIds;
  for (const auto& [id, ext] : g.outputs())
    if (id < n) outputIds.insert(id);
  for (NodeId id = 0; id < n; ++id) {
    const dfg::Node& node = g.node(id);
    const bool leaf =
        node.kind == dfg::OpKind::Input || node.kind == dfg::OpKind::Const;
    if (leaf && !consumed[id] && !outputIds.count(id))
      r.add(nodeDiag(kDfgDeadLeaf, node,
                     util::format("dead %s '%s': no consumers and not an output",
                                  node.kind == dfg::OpKind::Input ? "input" : "const",
                                  node.name.c_str()),
                     "remove the unused node"));
  }

  return r;
}

}  // namespace mframe::analysis
