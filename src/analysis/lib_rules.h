// LIB rule family: sanity checks over a cell library, optionally against
// the FU types a design actually needs. See docs/LINT.md for the catalogue.
#pragma once

#include <set>

#include "analysis/diagnostic.h"
#include "celllib/cell_library.h"

namespace mframe::analysis {

/// Lint `lib`. When `needed` is non-empty, LIB004 fires for each FU type in
/// it that no module implements (pass the design's type mix).
LintReport lintLibrary(const celllib::CellLibrary& lib,
                       const std::set<dfg::FuType>& needed = {});

}  // namespace mframe::analysis
