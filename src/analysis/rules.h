// The lint rule registry: every rule the engine can emit, with its stable
// id, family, default severity and a one-line summary. docs/LINT.md is the
// human-readable catalogue of the same table; tests iterate allRules() to
// guarantee each id has coverage.
#pragma once

#include <string_view>
#include <vector>

#include "analysis/diagnostic.h"

namespace mframe::analysis {

struct RuleInfo {
  std::string_view id;       ///< stable id, e.g. "DFG003"
  std::string_view family;   ///< "dfg", "sched", "rtl", "eqv", "lib", "opt",
                             ///< "tim", "aud" or "wid"
  Severity severity;         ///< default severity of emissions
  std::string_view summary;  ///< one-line description
};

/// Every registered rule, in id order within family.
const std::vector<RuleInfo>& allRules();

/// Lookup by id; nullptr when unknown.
const RuleInfo* findRule(std::string_view id);

/// The distinct rule-id prefixes ("DFG", "SCH", ..., "AUD"), in registry
/// order — the family tokens `--fail-on` accepts besides exact ids.
const std::vector<std::string_view>& ruleFamilyPrefixes();

/// True when `prefix` is the id-prefix of at least one registered rule
/// (e.g. "TIM" matches TIM001..TIM004). Exact ids do not count as families.
bool isRuleFamilyPrefix(std::string_view prefix);

// Stable rule ids. Rules are never renumbered; retired ids are not reused.
// -- DFG family --------------------------------------------------------------
inline constexpr std::string_view kDfgParseFailure = "DFG000";
inline constexpr std::string_view kDfgDanglingInput = "DFG001";
inline constexpr std::string_view kDfgArityMismatch = "DFG002";
inline constexpr std::string_view kDfgCycle = "DFG003";
inline constexpr std::string_view kDfgUnreachableOp = "DFG004";
inline constexpr std::string_view kDfgBadCycles = "DFG005";
inline constexpr std::string_view kDfgBadDelayOverride = "DFG006";
inline constexpr std::string_view kDfgBadBranchPath = "DFG007";
inline constexpr std::string_view kDfgDuplicateName = "DFG008";
inline constexpr std::string_view kDfgDeadLeaf = "DFG009";
inline constexpr std::string_view kDfgForwardRef = "DFG010";
inline constexpr std::string_view kDfgBadOutputRef = "DFG011";
inline constexpr std::string_view kDfgBadWidth = "DFG012";
inline constexpr std::string_view kDfgConstWidthOverflow = "DFG013";
// -- schedule family ---------------------------------------------------------
inline constexpr std::string_view kSchedParseFailure = "SCH000";
inline constexpr std::string_view kSchedUnplaced = "SCH001";
inline constexpr std::string_view kSchedOutOfRange = "SCH002";
inline constexpr std::string_view kSchedBadColumn = "SCH003";
inline constexpr std::string_view kSchedPrecedence = "SCH004";
inline constexpr std::string_view kSchedChainOverflow = "SCH005";
inline constexpr std::string_view kSchedMidStepStart = "SCH006";
inline constexpr std::string_view kSchedOccupancy = "SCH007";
inline constexpr std::string_view kSchedResourceLimit = "SCH008";
// -- RTL family --------------------------------------------------------------
inline constexpr std::string_view kRtlDoubleBinding = "RTL001";
inline constexpr std::string_view kRtlNonOpBound = "RTL002";
inline constexpr std::string_view kRtlUnsupportedOp = "RTL003";
inline constexpr std::string_view kRtlUnboundOp = "RTL004";
inline constexpr std::string_view kRtlAluOverlap = "RTL005";
inline constexpr std::string_view kRtlSelfLoop = "RTL006";
inline constexpr std::string_view kRtlRegisterOverlap = "RTL007";
inline constexpr std::string_view kRtlMissingRegister = "RTL008";
inline constexpr std::string_view kRtlUnconnectedPort = "RTL009";
inline constexpr std::string_view kRtlBusContention = "RTL010";
inline constexpr std::string_view kRtlBusIdle = "RTL011";
inline constexpr std::string_view kRtlBadFieldRef = "RTL012";
inline constexpr std::string_view kRtlFieldOverflow = "RTL013";
// -- EQV family (translation validator, src/analysis/validate/) --------------
inline constexpr std::string_view kEqvParseFailure = "EQV000";
inline constexpr std::string_view kEqvOperandMismatch = "EQV001";
inline constexpr std::string_view kEqvRegisterClobber = "EQV002";
inline constexpr std::string_view kEqvOutputUnreachable = "EQV003";
inline constexpr std::string_view kEqvMuxRoute = "EQV004";
inline constexpr std::string_view kEqvStepDisagreement = "EQV005";
// -- LIB family (cell libraries) ---------------------------------------------
inline constexpr std::string_view kLibParseFailure = "LIB000";
inline constexpr std::string_view kLibDuplicateCell = "LIB001";
inline constexpr std::string_view kLibBadArea = "LIB002";
inline constexpr std::string_view kLibBadDelay = "LIB003";
inline constexpr std::string_view kLibMissingCell = "LIB004";
inline constexpr std::string_view kLibBadStages = "LIB005";
inline constexpr std::string_view kLibMuxTable = "LIB006";
// -- OPT family (dataflow analysis, src/analysis/dataflow/) ------------------
inline constexpr std::string_view kOptFoldableConst = "OPT001";
inline constexpr std::string_view kOptDeadOp = "OPT002";
inline constexpr std::string_view kOptDuplicateExpr = "OPT003";
inline constexpr std::string_view kOptOverWideOp = "OPT004";
// -- TIM family (static timing analysis, src/analysis/timing/) ---------------
inline constexpr std::string_view kTimClockViolation = "TIM001";
inline constexpr std::string_view kTimUnconstrainedChain = "TIM002";
inline constexpr std::string_view kTimMulticycleUnderAlloc = "TIM003";
inline constexpr std::string_view kTimNearCritical = "TIM004";
// -- AUD family (reachability-aware RTL audit, src/analysis/audit/) ----------
inline constexpr std::string_view kAudUnreachable = "AUD001";
inline constexpr std::string_view kAudReadBeforeWrite = "AUD002";
inline constexpr std::string_view kAudBusContention = "AUD003";
inline constexpr std::string_view kAudDeadMuxInput = "AUD004";
inline constexpr std::string_view kAudWriteClobber = "AUD005";
inline constexpr std::string_view kAudXPropagation = "AUD006";
// -- WID family (interval/width range analysis, src/analysis/range/) ---------
inline constexpr std::string_view kWidTruncatingWrite = "WID001";
inline constexpr std::string_view kWidSharedLineOverflow = "WID002";
inline constexpr std::string_view kWidDeclaredWidthOverflow = "WID003";
inline constexpr std::string_view kWidValueDeadMuxInput = "WID004";
inline constexpr std::string_view kWidAssertViolated = "WID005";

}  // namespace mframe::analysis
