#include "analysis/criticality/criticality.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "analysis/dataflow/engine.h"
#include "util/strings.h"

namespace mframe::analysis::criticality {

namespace {

// Scores live on a fixed 1e-6 grid so the lattice has finitely many values
// per node, equality is exact, and the fixpoint is bit-identical across
// runs/platforms regardless of evaluation order.
double quantize(double v) { return std::round(v * 1e6) / 1e6; }

/// Top of the score lattice: worst seed (2.0) plus every bonus.
constexpr double kTopScore = 2.25;

/// Backward max-propagation with decay. `base[n]` holds the node's own seed
/// severity plus its structural bonus; a node's score is the larger of its
/// own base and the decayed best score among its consumers. Monotone: base
/// is constant and max/decay are monotone in the deps.
struct CriticalityDomain {
  using Value = double;
  const std::vector<double>& base;
  double decay;

  Value initial(const dfg::Node& n) const { return quantize(base[n.id]); }

  Value transfer(const dfg::Node& n, const std::vector<Value>& deps) const {
    double best = 0.0;
    for (double d : deps) best = std::max(best, d);
    return quantize(std::max(base[n.id], decay * best));
  }

  static Value widen(const Value& previous, const Value& next) {
    (void)previous;
    (void)next;
    return kTopScore;  // jump straight to top; a DAG never gets here
  }
};

int muxLevels(std::size_t sources) {
  int levels = 0;
  std::size_t span = 1;
  while (span < sources) {
    span *= 2;
    ++levels;
  }
  return levels;
}

}  // namespace

CriticalityResult analyzeCriticality(const rtl::Datapath& d,
                                     const timing::TimingReport& timing,
                                     const sched::SlackReport& slack,
                                     const dataflow::DataflowResult* df,
                                     const CriticalityOptions& opt) {
  const dfg::Dfg& g = *d.graph;
  CriticalityResult r;
  r.score.assign(g.size(), 0.0);
  r.observedDelayNs.assign(g.size(), 0.0);

  const double clockNs = opt.clockNs > 0 ? opt.clockNs : 100.0;

  // Physically observed per-op delay: the bound module's worst-case delay
  // plus the deepest input-port mux tree plus one shared-line hop. This is
  // the delay the cone scheduler is handed in place of the node's claimed
  // `delayNs`.
  for (const auto& [op, alu] : d.aluOf) {
    const auto idx = static_cast<std::size_t>(alu);
    const celllib::Module& m = d.lib->module(d.alus[idx].module);
    int levels = 0;
    if (idx < d.leftPort.size())
      levels = std::max(levels, muxLevels(d.leftPort[idx].sources.size()));
    if (idx < d.rightPort.size())
      levels = std::max(levels, muxLevels(d.rightPort[idx].sources.size()));
    r.observedDelayNs[op] =
        m.delayNs + levels * opt.model.muxLevelNs + opt.model.busNs;
  }

  // Seeds: violating endpoints, normalized to (1, 2] by severity.
  std::vector<double> base(g.size(), 0.0);
  for (const timing::EndpointTiming& e : timing.endpoints) {
    if (e.slackNs >= 0) continue;
    base[e.op] = 1.0 + std::min(1.0, -e.slackNs / clockNs);
    r.seeds.push_back(e.op);
  }

  // Bonus: schedule-critical ops (no frame freedom) and ops the dataflow
  // passes flag as foldable/dead (OPT001/OPT002) are cheap to move or
  // remove, so nudge them up the ranking.
  for (const sched::OpSlack& os : slack.ops)
    if (os.critical()) base[os.op] += 0.05;
  if (df != nullptr) {
    std::map<std::string, dfg::NodeId> byName;
    for (const dfg::Node& n : g.nodes())
      if (!n.name.empty()) byName.emplace(n.name, n.id);
    for (const Diagnostic& diag : df->report.diagnostics()) {
      if (diag.rule != "OPT001" && diag.rule != "OPT002") continue;
      auto it = byName.find(diag.loc.node);
      if (it != byName.end()) base[it->second] += 0.02;
    }
  }

  CriticalityDomain domain{base, opt.decay};
  auto fix = dataflow::solve(g, domain, dataflow::Direction::Backward);
  r.score = std::move(fix.values);
  r.engineVisits = fix.visits;
  r.widened = fix.widened;

  for (const dfg::NodeId op : g.operations()) {
    r.ranked.push_back(op);
    if (r.score[op] >= opt.threshold) r.critical.push_back(op);
  }
  std::stable_sort(r.ranked.begin(), r.ranked.end(),
                   [&](dfg::NodeId a, dfg::NodeId b) {
                     if (r.score[a] != r.score[b]) return r.score[a] > r.score[b];
                     return a < b;
                   });
  return r;
}

std::string CriticalityResult::toString(const dfg::Dfg& g) const {
  std::ostringstream os;
  os << "criticality: " << seeds.size() << " violating endpoint(s), "
     << critical.size() << " critical op(s)\n";
  for (dfg::NodeId op : ranked) {
    if (score[op] <= 0) break;
    os << util::format("  %-12s score %.4f  observed %.1f ns\n",
                       g.node(op).name.c_str(), score[op],
                       observedDelayNs[op]);
  }
  return os.str();
}

}  // namespace mframe::analysis::criticality
