// Criticality static analysis — the fusion pass behind `mframe tune`.
//
// The PR 4 analyzers each see one face of a timing problem: the STA knows
// which register-latched endpoints miss the clock and the physical route
// (mux -> ALU -> bus -> register) that makes them late, the schedule slack
// analysis knows which operations have no freedom to move, and the dataflow
// passes know which operations are foldable or dead weight. This pass fuses
// all three into a single per-operation *criticality score*: a backward
// lattice propagation (on the PR 4 monotone engine) from the violating
// endpoints toward their transitive producers, decaying with distance and
// boosted where the schedule or the dataflow facts say an op is pinned.
//
// The score answers the question the tune loop asks: "which operations are
// worth re-scheduling?" — the ranked list seeds the cone extractor and
// orders the cone scheduler's priority hint.
#pragma once

#include <string>
#include <vector>

#include "analysis/dataflow/analyze.h"
#include "analysis/timing/sta.h"
#include "rtl/datapath.h"
#include "sched/slack.h"

namespace mframe::analysis::criticality {

struct CriticalityOptions {
  /// Per-dependence-hop decay of a propagated score.
  double decay = 0.9;
  /// Operations with score >= threshold are reported as critical.
  double threshold = 0.5;
  /// Severity normalization for seed scores (1 + min(1, -slack/clock)).
  double clockNs = 100.0;
  /// Interconnect overheads folded into observedDelayNs (mux tree + one
  /// shared-line hop on top of the bound module's delay).
  timing::DelayModel model;
};

/// Per-operation criticality over the full graph of a scheduled datapath.
struct CriticalityResult {
  /// Score per node (indexed by NodeId; non-operations stay 0). Seeds start
  /// at 1 + min(1, -slackNs/clockNs) in (1, 2]; propagated scores decay by
  /// `decay` per hop; schedule-critical ops get +0.05, OPT001/OPT002
  /// findings +0.02.
  std::vector<double> score;
  /// Physically observed per-op delay: bound module delay + worst-port mux
  /// tree + one bus hop. This is what the scheduler *should* have assumed —
  /// the tune loop re-schedules the cone against these numbers.
  std::vector<double> observedDelayNs;
  /// Violating endpoints (slack < 0), ascending op id — the cone seeds.
  std::vector<dfg::NodeId> seeds;
  /// All operations, descending score, ties broken by ascending id.
  std::vector<dfg::NodeId> ranked;
  /// Operations with score >= threshold, ascending id.
  std::vector<dfg::NodeId> critical;
  int engineVisits = 0;  ///< monotone-engine node evaluations
  bool widened = false;  ///< widening threshold fired (never on a DAG)

  std::string toString(const dfg::Dfg& g) const;
};

/// Fuse STA endpoints, schedule slack and (optionally) dataflow findings
/// into per-op criticality. `d` must be the datapath `timing` was computed
/// from; `slack` must cover the same schedule. Deterministic for a given
/// input — the propagation runs on the monotone engine with quantized
/// scores, so results are bit-identical across runs.
CriticalityResult analyzeCriticality(const rtl::Datapath& d,
                                     const timing::TimingReport& timing,
                                     const sched::SlackReport& slack,
                                     const dataflow::DataflowResult* df = nullptr,
                                     const CriticalityOptions& opt = {});

}  // namespace mframe::analysis::criticality
