// The `mframe tune` loop: feedback-guided iterative re-scheduling.
//
// analyze/prove are audits; this module makes them a driver. Each iteration:
//
//   1. run the criticality pass over the current datapath (STA endpoints +
//      schedule slack + dataflow findings fused into per-op scores);
//   2. cut the K-hop cone around the violating endpoints (dfg::extractCone),
//      frontier producers pinned as boundary inputs;
//   3. re-schedule the cone under *tightened* constraints — the physically
//      observed per-op delays (module + mux tree + bus hop) against a clock
//      derated by the register overheads the scheduler cannot see — trying
//      several strategies in parallel (explore::parallelFor);
//   4. stitch the best candidate back (sched::stitchSchedule), re-prove the
//      merged datapath with the translation validator, and re-run the STA;
//   5. repeat until worst slack >= 0 or the iteration budget is spent.
//
// Every accepted stitch is closed under `prove` — a stitch the validator
// refutes is rejected and the next-ranked candidate is tried. The tune.*
// trace counters (iterations, coneOps, stitches, rejectedStitches) are
// commutative sums over work that does not depend on the worker count, so
// they are bit-identical across --jobs values.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "analysis/criticality/criticality.h"
#include "analysis/timing/sta.h"
#include "celllib/cell_library.h"
#include "rtl/datapath.h"
#include "sched/schedule.h"
#include "sched/slack.h"

namespace mframe::analysis::criticality {

struct TuneOptions {
  /// Scheduling constraints for the enclosing schedule. clockNs is the
  /// control-step period the STA audits against.
  sched::Constraints constraints;
  bool clockSet = true;  ///< tune is meaningless without a clock constraint
  int budget = 8;        ///< maximum tune iterations
  int hops = 2;          ///< cone radius around violating endpoints
  int jobs = 1;          ///< worker threads for candidate evaluation
  timing::DelayModel model;
  double nearCriticalFraction = 0.9;
  CriticalityOptions crit;
  /// Test hook: applied once to the first accepted candidate schedule
  /// *after* stitch verification but *before* the prove gate — the
  /// prove-rejection tests corrupt a stitch here and require tune to refuse
  /// it and recover.
  std::function<void(sched::Schedule&)> stitchMutatorForTest;
};

/// One accepted iteration of the loop, for reporting.
struct TuneIterationRecord {
  int iteration = 0;
  double worstSlackNs = 0;   ///< after this iteration's stitch
  std::size_t coneOps = 0;   ///< operations in this iteration's cone
  int candidate = -1;        ///< accepted candidate strategy index
  int rejected = 0;          ///< candidates refused this iteration
  int steps = 0;             ///< schedule length after this iteration
};

struct TuneResult {
  bool converged = false;
  std::string error;  ///< why the loop stopped early ("" = budget/converged)
  int iterations = 0;
  double initialWorstSlackNs = 0;
  double worstSlackNs = 0;
  int steps = 0;

  sched::Schedule schedule;     ///< final (possibly stitched) schedule
  rtl::Datapath datapath;       ///< datapath of the final schedule
  timing::TimingReport timing;  ///< STA of the final datapath
  bool slackRan = false;
  sched::SlackReport slack;     ///< slack witness of the final schedule
  std::vector<TuneIterationRecord> trail;

  std::string renderText(const dfg::Dfg& g) const;
  /// {"schema": 1, "design": ..., "converged": ..., "trail": [...],
  ///  "slack": {...}} — deterministic for a given design and options.
  std::string renderJson(const dfg::Dfg& g) const;
};

/// Run the tune loop on `g` against `lib`. Never throws on infeasible or
/// unprovable candidates — the result records why tuning stopped.
TuneResult tuneDesign(const dfg::Dfg& g, const celllib::CellLibrary& lib,
                      const TuneOptions& opt);

}  // namespace mframe::analysis::criticality
