#include "analysis/criticality/tune.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "analysis/validate/validate.h"
#include "cache/resynth.h"
#include "core/mfs.h"
#include "dfg/transforms.h"
#include "explore/thread_pool.h"
#include "rtl/datapath.h"
#include "sched/stitch.h"
#include "sched/timeframes.h"
#include "sched/verify.h"
#include "trace/trace.h"
#include "util/strings.h"

namespace mframe::analysis::criticality {

namespace {

/// The candidate strategies one iteration races (explore::parallelFor):
///   0  cone re-scheduled with observed delays against the derated clock
///   1  same, delays padded 25% (margin against mux growth after stitching)
///   2  cone re-scheduled with chaining disabled (break the long chains)
///   3  whole design re-scheduled with observed delays (the big hammer)
constexpr int kNumCandidates = 4;

struct Candidate {
  bool valid = false;
  sched::Schedule schedule;  ///< full-graph schedule (stitched or remapped)
  int steps = 0;
  double worstSlackNs = 0;
  bool stitchRefused = false;  ///< stitch verification refused the splice
};

struct Pipeline {
  rtl::Datapath dp;
  timing::TimingReport timing;
};

/// Synthesize + time one full schedule. Throws on datapath failure.
Pipeline runPipeline(const dfg::Dfg& g, const celllib::CellLibrary& lib,
                     const sched::Schedule& s, const TuneOptions& opt) {
  Pipeline p{rtl::buildDatapath(g, lib, s, rtl::bindByColumns(g, lib, s)), {}};
  timing::TimingOptions to;
  to.clockNs = opt.constraints.clockNs;
  to.clockSet = opt.clockSet;
  to.model = opt.model;
  to.nearCriticalFraction = opt.nearCriticalFraction;
  p.timing = timing::analyzeTiming(p.dp, to);
  return p;
}

/// Clock budget the cone scheduler may chain against: the control-step
/// period minus the register overheads (clk-to-q, setup, one bus hop) the
/// scheduler's chain accounting cannot see.
double deratedClock(const TuneOptions& opt) {
  const double derated = opt.constraints.clockNs -
                         (opt.model.regClkToQNs + opt.model.setupNs +
                          opt.model.busNs);
  return derated > 0 ? derated : opt.constraints.clockNs;
}

/// Re-check a full schedule, tolerating growth past the original time
/// constraint (tune trades steps for slack; the caller ranks on both).
bool scheduleOk(const sched::Schedule& s, const sched::Constraints& c) {
  sched::Constraints check = c;
  if (check.timeSteps != 0 && s.numSteps() > check.timeSteps)
    check.timeSteps = s.numSteps();
  return sched::verifySchedule(s, check).empty();
}

/// Copy placements from `src` (scheduled against a delay-modified twin of
/// `g`) onto a schedule owning `g` itself, so downstream datapath/STA/prove
/// stages see the original node attributes.
sched::Schedule remapOnto(const dfg::Dfg& g, const sched::Schedule& src) {
  sched::Schedule out(g);
  out.setNumSteps(src.numSteps());
  for (dfg::NodeId op : g.operations())
    out.place(op, src.stepOf(op), src.columnOf(op));
  return out;
}

}  // namespace

TuneResult tuneDesign(const dfg::Dfg& g, const celllib::CellLibrary& lib,
                      const TuneOptions& opt) {
  const trace::Span span("tune");
  TuneResult r;

  core::MfsOptions initial;
  initial.constraints = opt.constraints;
  if (initial.constraints.timeSteps <= 0) {
    // Default to the *chaining-aware* critical step count — exactly the
    // aggressive schedule the claimed node delays promise. When those claims
    // are optimistic the STA flags it and the loop below earns its keep.
    std::string err;
    const auto tf = sched::computeTimeFrames(g, initial.constraints, &err);
    if (!tf) {
      r.error = "cannot derive a time constraint: " + err;
      return r;
    }
    initial.constraints.timeSteps = tf->criticalSteps();
  }
  // Cache-aware: only the *initial* schedule goes through the cache — the
  // cone re-schedules below depend on per-iteration observed delays that
  // would thrash it.
  const core::MfsResult first = cache::cachedRunMfs(g, initial);
  if (!first.feasible) {
    r.error = "initial schedule infeasible: " + first.error;
    return r;
  }
  r.schedule = first.schedule;

  try {
    Pipeline p = runPipeline(g, lib, r.schedule, opt);
    r.datapath = std::move(p.dp);
    r.timing = std::move(p.timing);
  } catch (const std::exception& e) {
    r.error = util::format("datapath construction failed: %s", e.what());
    return r;
  }
  r.initialWorstSlackNs = r.timing.worstSlackNs;
  r.worstSlackNs = r.timing.worstSlackNs;

  // The dataflow facts feed the criticality bonus and never change — the
  // graph is immutable here; only the schedule moves.
  const dataflow::DataflowResult df = dataflow::lintDataflow(g);

  // One-shot test hook (see TuneOptions::stitchMutatorForTest).
  std::function<void(sched::Schedule&)> mutator = opt.stitchMutatorForTest;

  while (r.timing.worstSlackNs < 0 && r.iterations < opt.budget) {
    ++r.iterations;
    trace::bump(trace::Counter::TuneIterations);

    CriticalityOptions co = opt.crit;
    co.clockNs = opt.constraints.clockNs;
    co.model = opt.model;
    const auto slack = sched::analyzeSlack(r.schedule, opt.constraints);
    const CriticalityResult crit = analyzeCriticality(
        r.datapath, r.timing, slack ? *slack : sched::SlackReport{}, &df, co);
    if (crit.seeds.empty()) {
      r.error = "worst slack negative but no violating endpoint to seed on";
      break;
    }

    dfg::ConeCut cut;
    try {
      cut = dfg::extractCone(g, crit.seeds, opt.hops);
    } catch (const std::exception& e) {
      r.error = util::format("cone extraction failed: %s", e.what());
      break;
    }
    trace::bump(trace::Counter::TuneConeOps,
                static_cast<std::uint64_t>(cut.coneOps));

    // Priority hints: criticality ranking, restricted to cone members for
    // the cone strategies.
    std::vector<dfg::NodeId> coneHint;
    for (dfg::NodeId op : crit.ranked) {
      auto it = cut.toCone.find(op);
      if (it != cut.toCone.end()) coneHint.push_back(it->second);
    }

    const std::map<dfg::FuType, int> fuBudget = r.schedule.fuCount();
    const double derated = deratedClock(opt);

    std::vector<Candidate> cands(kNumCandidates);
    {
      const trace::Span candidatesSpan("tune.candidates");
      explore::parallelFor(kNumCandidates, opt.jobs, [&](int i) {
        Candidate& cand = cands[i];
        // Candidates swallow every failure: a candidate that dies is merely
        // invalid, and always running all of them keeps the tune.* counters
        // independent of the worker count.
        try {
          core::MfsOptions m;
          m.constraints = opt.constraints;
          m.constraints.timeSteps = 0;
          m.constraints.fuLimit = fuBudget;
          m.constraints.clockNs = derated;
          m.mode = core::MfsLiapunov::Mode::ResourceConstrained;
          if (i == 3) {
            // Whole-design re-schedule with the physically observed delays.
            dfg::Dfg gObs = g;
            for (dfg::NodeId op : g.operations())
              if (crit.observedDelayNs[op] > 0)
                gObs.mutableNode(op).delayNs = crit.observedDelayNs[op];
            gObs.freeze();
            m.priorityHint = crit.ranked;
            const core::MfsResult res = core::runMfs(gObs, m);
            if (!res.feasible) return;
            sched::Schedule full = remapOnto(g, res.schedule);
            if (!scheduleOk(full, opt.constraints)) return;
            cand.schedule = std::move(full);
          } else {
            dfg::Dfg cone = cut.cone;
            for (dfg::NodeId cid = 0; cid < cone.size(); ++cid) {
              const dfg::NodeId full = cut.coneToFull[cid];
              if (full == dfg::kNoNode ||
                  !dfg::isSchedulable(cone.node(cid).kind))
                continue;
              double d = crit.observedDelayNs[full];
              if (i == 1) d *= 1.25;
              if (d > 0) cone.mutableNode(cid).delayNs = d;
            }
            cone.freeze();
            if (i == 2) m.constraints.allowChaining = false;
            m.priorityHint = coneHint;
            const core::MfsResult res = core::runMfs(cone, m);
            if (!res.feasible) return;
            std::string err;
            auto stitched = sched::stitchSchedule(
                r.schedule, opt.constraints, cut, res.schedule, &err);
            if (!stitched) {
              cand.stitchRefused = true;
              return;
            }
            cand.schedule = std::move(stitched->schedule);
          }
          const Pipeline p = runPipeline(g, lib, cand.schedule, opt);
          cand.steps = cand.schedule.numSteps();
          cand.worstSlackNs = p.timing.worstSlackNs;
          cand.valid = true;
        } catch (...) {
          cand.valid = false;
        }
      });
    }
    for (const Candidate& cand : cands)
      if (cand.stitchRefused)
        trace::bump(trace::Counter::TuneRejectedStitches);

    // Rank: meet the clock with the fewest steps; otherwise best slack.
    // Ties fall to the lowest strategy index, so the ranking — and hence
    // the whole trajectory — is deterministic.
    std::vector<int> ranked;
    for (int i = 0; i < kNumCandidates; ++i)
      if (cands[i].valid) ranked.push_back(i);
    std::stable_sort(ranked.begin(), ranked.end(), [&](int a, int b) {
      const Candidate& ca = cands[a];
      const Candidate& cb = cands[b];
      const bool fa = ca.worstSlackNs >= 0;
      const bool fb = cb.worstSlackNs >= 0;
      if (fa != fb) return fa;
      if (fa) return ca.steps < cb.steps;
      return ca.worstSlackNs > cb.worstSlackNs;
    });
    if (ranked.empty()) {
      r.error = "no feasible re-scheduling candidate for the critical cone";
      break;
    }

    // Acceptance: walk the ranking; every candidate must survive the
    // translation validator after stitching. A refuted stitch is counted
    // and the next candidate gets its chance.
    TuneIterationRecord rec;
    rec.iteration = r.iterations;
    rec.coneOps = cut.coneOps;
    for (const Candidate& cand : cands)
      if (cand.stitchRefused) ++rec.rejected;
    bool accepted = false;
    for (int idx : ranked) {
      sched::Schedule candidate = cands[idx].schedule;
      if (mutator) {
        mutator(candidate);
        mutator = nullptr;
      }
      try {
        Pipeline p = runPipeline(g, lib, candidate, opt);
        if (proveDatapath(p.dp).hasErrors()) {
          trace::bump(trace::Counter::TuneRejectedStitches);
          ++rec.rejected;
          continue;
        }
        trace::bump(trace::Counter::TuneStitches);
        r.schedule = std::move(candidate);
        r.datapath = std::move(p.dp);
        r.timing = std::move(p.timing);
        rec.candidate = idx;
        accepted = true;
        break;
      } catch (const std::exception&) {
        trace::bump(trace::Counter::TuneRejectedStitches);
        ++rec.rejected;
      }
    }
    if (!accepted) {
      r.error = "every candidate stitch was refused by the validator";
      break;
    }
    r.worstSlackNs = r.timing.worstSlackNs;
    rec.worstSlackNs = r.timing.worstSlackNs;
    rec.steps = r.schedule.numSteps();
    r.trail.push_back(rec);
  }

  r.converged = r.timing.worstSlackNs >= 0;
  r.worstSlackNs = r.timing.worstSlackNs;
  r.steps = r.schedule.numSteps();
  if (auto slack = sched::analyzeSlack(r.schedule, opt.constraints)) {
    r.slack = *std::move(slack);
    r.slackRan = true;
  }
  return r;
}

std::string TuneResult::renderText(const dfg::Dfg& g) const {
  std::string out = util::format(
      "tune '%s': %s after %d iteration(s), worst slack %.1f -> %.1f ns, "
      "%d step(s)\n",
      g.name().c_str(), converged ? "converged" : "NOT converged", iterations,
      initialWorstSlackNs, worstSlackNs, steps);
  for (const TuneIterationRecord& t : trail)
    out += util::format(
        "  iter %d: cone %zu op(s), candidate %d accepted (%d rejected), "
        "worst slack %.1f ns, %d step(s)\n",
        t.iteration, t.coneOps, t.candidate, t.rejected, t.worstSlackNs,
        t.steps);
  if (!error.empty()) out += "  stopped: " + error + "\n";
  return out;
}

std::string TuneResult::renderJson(const dfg::Dfg& g) const {
  std::string out = "{\n  \"schema\": 1,\n";
  out += util::format("  \"design\": \"%s\",\n", g.name().c_str());
  out += util::format("  \"converged\": %s,\n", converged ? "true" : "false");
  out += util::format("  \"iterations\": %d,\n", iterations);
  out += util::format("  \"initialWorstSlackNs\": %.4f,\n",
                      initialWorstSlackNs);
  out += util::format("  \"worstSlackNs\": %.4f,\n", worstSlackNs);
  out += util::format("  \"steps\": %d,\n", steps);
  out += util::format("  \"error\": \"%s\",\n", error.c_str());
  out += "  \"trail\": [";
  for (std::size_t i = 0; i < trail.size(); ++i) {
    const TuneIterationRecord& t = trail[i];
    out += i == 0 ? "\n" : ",\n";
    out += util::format(
        "    {\"iteration\": %d, \"worstSlackNs\": %.4f, \"coneOps\": %zu, "
        "\"candidate\": %d, \"rejected\": %d, \"steps\": %d}",
        t.iteration, t.worstSlackNs, t.coneOps, t.candidate, t.rejected,
        t.steps);
  }
  out += trail.empty() ? "],\n" : "\n  ],\n";
  out += "  \"slack\": ";
  if (slackRan) {
    // Indent the embedded slack document to keep the wrapper readable.
    std::string s = slack.renderJson(g);
    std::string indented;
    for (char c : s) {
      indented += c;
      if (c == '\n') indented += "  ";
    }
    out += indented;
  } else {
    out += "null";
  }
  out += "\n}\n";
  return out;
}

}  // namespace mframe::analysis::criticality
