#include "analysis/sched_rules.h"

#include <algorithm>
#include <map>
#include <vector>

#include "analysis/rules.h"
#include "util/strings.h"

namespace mframe::analysis {

namespace {

using dfg::NodeId;
using sched::Constraints;
using sched::Placement;
using sched::Schedule;

/// Steps during which `n` occupies its FU column, folded mod latency when
/// functional pipelining is on. Structurally pipelined FUs are handled
/// separately (start-step conflicts only).
std::vector<int> occupiedSteps(const dfg::Node& n, const Placement& p,
                               const Constraints& c) {
  std::vector<int> steps;
  for (int s = p.step; s < p.step + n.cycles; ++s)
    steps.push_back(c.latency > 0 ? ((s - 1) % c.latency) : s);
  return steps;
}

bool stepsIntersect(const std::vector<int>& a, const std::vector<int>& b) {
  for (int x : a)
    if (std::find(b.begin(), b.end(), x) != b.end()) return true;
  return false;
}

Diagnostic diag(std::string_view rule, EntityKind entity, Location loc,
                std::string message, std::string fixit = "") {
  Diagnostic d;
  d.rule = std::string(rule);
  d.severity = findRule(rule)->severity;
  d.entity = entity;
  d.loc = std::move(loc);
  d.message = std::move(message);
  d.fixit = std::move(fixit);
  return d;
}

Location at(std::string node, int step = -1, int unit = -1,
            std::string detail = "") {
  Location l;
  l.node = std::move(node);
  l.step = step;
  l.unit = unit;
  l.detail = std::move(detail);
  return l;
}

}  // namespace

LintReport lintSchedule(const Schedule& s, const Constraints& c) {
  LintReport r;
  const dfg::Dfg& g = s.graph();
  const int cs = s.numSteps();

  // -- SCH001..SCH003: completeness and range -------------------------------
  for (const dfg::Node& n : g.nodes()) {
    if (!dfg::isSchedulable(n.kind)) continue;
    if (!s.isPlaced(n.id)) {
      r.add(diag(kSchedUnplaced, EntityKind::Node, at(n.name),
                 util::format("op '%s' is not scheduled", n.name.c_str()),
                 "place every schedulable operation"));
      continue;
    }
    const Placement& p = s.at(n.id);
    if (p.step < 1 || p.step + n.cycles - 1 > cs)
      r.add(diag(kSchedOutOfRange, EntityKind::Node,
                 at(n.name, p.step),
                 util::format("op '%s' occupies steps [%d,%d] outside [1,%d]",
                              n.name.c_str(), p.step, p.step + n.cycles - 1, cs)));
    if (p.column < 1)
      r.add(diag(kSchedBadColumn, EntityKind::Node,
                 at(n.name, p.step, p.column),
                 util::format("op '%s' has invalid column %d", n.name.c_str(),
                              p.column)));
  }
  if (!r.empty()) return r;  // later checks assume complete placement

  // -- SCH004..SCH006: precedence (with chaining) ---------------------------
  // chainOff[n] = combinational offset (ns) at which n's result is ready
  // within its own step, or 0 when the value crosses a step boundary.
  std::map<NodeId, double> chainOff;
  const auto order = g.topoOrder();
  for (NodeId id : *order) {
    const dfg::Node& n = g.node(id);
    if (!dfg::isSchedulable(n.kind)) continue;
    const int start = s.stepOf(id);
    double startOff = 0.0;
    for (NodeId p : g.opPreds(id)) {
      const dfg::Node& pn = g.node(p);
      const int pEnd = s.stepOf(p) + pn.cycles - 1;
      if (pEnd < start) continue;  // value registered before we start: fine
      // Predecessor finishes in our start step or later.
      if (pEnd > start || pn.cycles > 1 || !c.allowChaining) {
        r.add(diag(kSchedPrecedence, EntityKind::Node,
                   at(n.name, start, -1, pn.name),
                   util::format("precedence violated: '%s'@%d depends on '%s' "
                                "finishing step %d",
                                n.name.c_str(), start, pn.name.c_str(), pEnd),
                   "move the successor to a later step"));
        continue;
      }
      // Same-step single-cycle predecessor: legal only as a chain.
      startOff = std::max(startOff, chainOff[p]);
    }
    const double delay = n.effectiveDelayNs();
    if (c.allowChaining && n.cycles == 1) {
      const double fin = startOff + delay;
      if (fin > c.clockNs)
        r.add(diag(kSchedChainOverflow, EntityKind::Node,
                   at(n.name, start),
                   util::format("chaining violated: '%s' finishes %.1fns into "
                                "a %.1fns step",
                                n.name.c_str(), fin, c.clockNs),
                   "lengthen the clock or break the chain across steps"));
      chainOff[id] = fin;
    } else {
      if (startOff > 0.0)
        r.add(diag(kSchedMidStepStart, EntityKind::Node,
                   at(n.name, start),
                   util::format("op '%s' cannot start mid-step (chained input, "
                                "but op is multicycle or chaining is off)",
                                n.name.c_str())));
      chainOff[id] = 0.0;  // multicycle results land on a step boundary
    }
  }

  // -- SCH007: occupancy ----------------------------------------------------
  std::map<std::pair<dfg::FuType, int>, std::vector<NodeId>> byColumn;
  for (const dfg::Node& n : g.nodes()) {
    if (!dfg::isSchedulable(n.kind)) continue;
    byColumn[{dfg::fuTypeOf(n.kind), s.columnOf(n.id)}].push_back(n.id);
  }
  for (const auto& [key, ops] : byColumn) {
    const auto [type, col] = key;
    const bool pipelined = c.pipelinedFus.count(type) > 0;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      for (std::size_t j = i + 1; j < ops.size(); ++j) {
        const dfg::Node& a = g.node(ops[i]);
        const dfg::Node& b = g.node(ops[j]);
        if (g.mutuallyExclusive(a.id, b.id)) continue;
        bool conflict;
        if (pipelined) {
          // One initiation per step (fold starts mod latency when L > 0).
          auto fold = [&](int st) { return c.latency > 0 ? (st - 1) % c.latency : st; };
          conflict = fold(s.stepOf(a.id)) == fold(s.stepOf(b.id));
        } else {
          conflict = stepsIntersect(occupiedSteps(a, s.at(a.id), c),
                                    occupiedSteps(b, s.at(b.id), c));
        }
        if (conflict)
          r.add(diag(kSchedOccupancy, EntityKind::Fu,
                     at(a.name, s.stepOf(a.id), col, b.name),
                     util::format("occupancy conflict on %s#%d: '%s'@%d vs '%s'@%d",
                                  std::string(dfg::fuTypeName(type)).c_str(), col,
                                  a.name.c_str(), s.stepOf(a.id), b.name.c_str(),
                                  s.stepOf(b.id)),
                     "move one operation to a free column or another step"));
      }
    }
  }

  // -- SCH008: resource limits ----------------------------------------------
  for (const auto& [type, used] : s.fuCount()) {
    auto it = c.fuLimit.find(type);
    if (it != c.fuLimit.end() && used > it->second)
      r.add(diag(kSchedResourceLimit, EntityKind::Fu,
                 at("", -1, used, std::string(dfg::fuTypeName(type))),
                 util::format("resource limit exceeded: %d %s used, %d allowed",
                              used, std::string(dfg::fuTypeName(type)).c_str(),
                              it->second),
                 "relax the limit or allow more control steps"));
  }
  return r;
}

}  // namespace mframe::analysis
