#include "analysis/analyze.h"

#include "analysis/rules.h"
#include "core/mfs.h"
#include "dfg/stats.h"
#include "rtl/datapath.h"
#include "trace/trace.h"
#include "util/strings.h"

namespace mframe::analysis {

AnalyzeResult analyzeDesign(const dfg::Dfg& g, const celllib::CellLibrary& lib,
                            const AnalyzeOptions& opts) {
  const trace::Span span("analyze");
  AnalyzeResult r;
  r.dataflow = dataflow::lintDataflow(g, opts.dataflow);
  r.report.merge(r.dataflow.report);
  if (!opts.runTiming) return r;

  if (g.operations().empty()) {
    r.timingSkip = "design has no schedulable operations";
    return r;
  }

  core::MfsOptions mfs;
  mfs.constraints = opts.constraints;
  if (mfs.constraints.timeSteps <= 0)
    mfs.constraints.timeSteps =
        opts.steps > 0 ? opts.steps : dfg::computeStats(g).criticalPath;
  const core::MfsResult sched = core::runMfs(g, mfs);
  if (!sched.feasible) {
    r.timingSkip = "schedule infeasible: " + sched.error;
    return r;
  }

  if (auto slack = sched::analyzeSlack(sched.schedule, mfs.constraints)) {
    r.slack = *std::move(slack);
    r.slackRan = true;
  }

  try {
    const rtl::Datapath dp = rtl::buildDatapath(
        g, lib, sched.schedule, rtl::bindByColumns(g, lib, sched.schedule));
    timing::TimingOptions to;
    to.clockNs = opts.constraints.clockNs;
    to.clockSet = opts.clockSet;
    to.model = opts.model;
    to.nearCriticalFraction = opts.nearCriticalFraction;
    r.timing = timing::analyzeTiming(dp, to);
    r.timingRan = true;
    r.report.merge(r.timing.diagnostics);
  } catch (const std::exception& e) {
    r.timingSkip = util::format("datapath construction failed: %s", e.what());
  }
  return r;
}

std::string AnalyzeResult::renderText(const dfg::Dfg& g) const {
  std::string out = util::format(
      "dataflow: %d fixpoint visit(s); %zu foldable, %zu dead, %zu duplicate, "
      "%zu over-wide\n",
      dataflow.engineVisits, dataflow.report.byRule(kOptFoldableConst).size(),
      dataflow.report.byRule(kOptDeadOp).size(),
      dataflow.report.byRule(kOptDuplicateExpr).size(),
      dataflow.report.byRule(kOptOverWideOp).size());
  if (timingRan)
    out += timing.toString(g);
  else if (!timingSkip.empty())
    out += "timing: skipped (" + timingSkip + ")\n";
  if (slackRan) out += slack.toString(g);
  out += report.renderText();
  return out;
}

}  // namespace mframe::analysis
