// Translation validation for a synthesized design (the "prove" pass).
//
// proveDatapath symbolically executes the datapath + controller FSM +
// microcode ROM with no concrete inputs: every register and ALU output
// carries a value number (see value_numbering.h) instead of data. The run
// proves that each DFG operation is issued by its bound ALU at its scheduled
// step, that the operand values arriving through the declared mux routes are
// the operation's DFG operands, that each result lands in its allocated
// register and survives (unclobbered) until its last consumer has read it,
// and that every primary output register ends the schedule holding the
// output's defining expression. Violations are reported as EQV diagnostics
// (see docs/VALIDATE.md and docs/LINT.md) with a provenance chain tracing
// op -> step -> ALU -> port -> bus -> register.
//
// An empty report is a proof, modulo the stated assumptions: pure cells
// (an ALU output is a function of its operands only), a static microcode
// program, and single-trace execution (conditional arms are validated on
// their shared schedule positions, not per-branch).
#pragma once

#include "analysis/diagnostic.h"
#include "rtl/controller.h"
#include "rtl/datapath.h"
#include "rtl/microcode.h"

namespace mframe::analysis {

/// Validate an explicit (datapath, FSM, ROM) triple — the form used for
/// externally supplied .bind designs whose controller may be defective.
LintReport proveDatapath(const rtl::Datapath& d, const rtl::ControllerFsm& fsm,
                         const rtl::MicrocodeRom& rom);

/// Convenience: derive the controller and microcode from the datapath (the
/// synthesis flow's own artifacts) and validate the triple.
LintReport proveDatapath(const rtl::Datapath& d);

}  // namespace mframe::analysis
