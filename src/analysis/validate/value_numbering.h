// Hash-consed symbolic values for the translation validator.
//
// A value number stands for "the value this wire/register holds", built
// bottom-up from primary inputs and constants through pure operations. Two
// expressions get the same number iff they are structurally identical after
// normalizing commutative operand order — so proving "the ALU port receives
// value number ideal[operand]" proves the datapath routes the right data
// without ever evaluating anything. fresh() mints values nothing else can
// equal (the result of a refuted read), and LoopSuper nodes are opaque: one
// unique value per node, since a folded loop body has no algebraic law we
// can exploit.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dfg/dfg.h"

namespace mframe::analysis {

using Vn = int;
inline constexpr Vn kNoVn = -1;

class ValueNumbering {
 public:
  /// The value of primary input `node` (deterministic per node).
  Vn ofInput(dfg::NodeId node);

  /// The value of literal `value` (deterministic per literal).
  Vn ofConst(long value);

  /// The value of `kind` applied to operand values; pass kNoVn for the
  /// missing operand of unary kinds. Commutative kinds sort their operands,
  /// so a mux-optimizer operand swap still proves equal.
  Vn ofOp(dfg::OpKind kind, Vn a, Vn b);

  /// An uninterpreted value unique to `node` (LoopSuper bodies).
  Vn ofOpaque(dfg::NodeId node);

  /// A value equal to nothing, including later fresh() results.
  Vn fresh();

  /// Ideal value of every node of `g`, indexed by NodeId. Requires the
  /// graph in topological id order (the Dfg builder invariant).
  std::vector<Vn> numberGraph(const dfg::Dfg& g);

  /// Render `v` as an expression, e.g. "(a + (b * 2))"; deep terms elide to
  /// "...". Junk values render as "junk#N".
  std::string toString(Vn v, const dfg::Dfg& g, int depth = 4) const;

 private:
  struct Def {
    enum class Kind { Input, Const, Op, Opaque, Fresh } kind = Kind::Fresh;
    dfg::NodeId node = dfg::kNoNode;       // Input / Opaque
    long value = 0;                        // Const
    dfg::OpKind op = dfg::OpKind::Input;   // Op
    Vn a = kNoVn, b = kNoVn;               // Op
  };

  Vn intern(Def d);

  std::vector<Def> defs_;
  std::map<dfg::NodeId, Vn> inputVn_;
  std::map<long, Vn> constVn_;
  std::map<dfg::NodeId, Vn> opaqueVn_;
  std::map<std::tuple<dfg::OpKind, Vn, Vn>, Vn> opVn_;
};

}  // namespace mframe::analysis
