// Textual bound-design (.bind) format: a complete synthesis result — ALU
// allocation, operation placement+binding, register assignment and optional
// controller overrides — pinned in a file so the translation validator can
// be pointed at externally produced (and deliberately defective) designs,
// mirroring the broken.dfg/broken.sched fixture pattern.
//
//   # comment
//   bind <design-name> steps=<cs>
//   alu <k> <module-name>          # instance k uses this library cell
//   op <signal> step=<s> alu=<k>   # place the op and bind it to ALU k
//   reg <signal> <r>               # pin the signal into register r
//   route <op> left|right <sel>    # override the issued mux select
//   load <signal> step=<t>         # override the latch step (0 = preload)
//   next <from> <to> [cond=<sig>]  # override a controller transfer; the
//                                  # first `next` for <from> replaces its
//                                  # linear edge, later ones append (max 2
//                                  # successors); <to> 0 = halt
//   assert reg=<r> min=<a> max=<b> [width=<w>]
//                                  # range assertion for the range analysis
//                                  # (WID005): register r must stay inside
//                                  # [a, b] (and fit w bits) in every state
//                                  # where it holds a defined value
//
// Every schedulable operation must be placed. Signals without an explicit
// `reg` that need storage get fresh registers after the pinned ones. The
// `route`/`load`/`next` statements mutate the derived controller *before*
// the microcode ROM is assembled, so a seeded defect flows through the same
// artifacts the validator and the audit read. All numeric values are decoded
// strictly: malformed text is a parse error naming the token, never a
// silent 0.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include <vector>

#include "analysis/range/assert.h"
#include "celllib/cell_library.h"
#include "dfg/dfg.h"
#include "rtl/controller.h"
#include "rtl/datapath.h"
#include "rtl/microcode.h"

namespace mframe::analysis {

struct BoundDesign {
  rtl::Datapath datapath;
  rtl::ControllerFsm fsm;
  rtl::MicrocodeRom rom;
  std::vector<range::RegAssert> asserts;  ///< `assert` statements, file order
};

/// Parse `text` against design `g` drawing cells from `lib`. Returns
/// std::nullopt and fills *error on malformed input.
std::optional<BoundDesign> parseBindDesign(const dfg::Dfg& g,
                                           const celllib::CellLibrary& lib,
                                           std::string_view text,
                                           std::string* error = nullptr);

}  // namespace mframe::analysis
