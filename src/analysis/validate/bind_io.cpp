#include "analysis/validate/bind_io.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "alloc/regalloc.h"
#include "util/strings.h"

namespace mframe::analysis {

std::optional<BoundDesign> parseBindDesign(const dfg::Dfg& g,
                                           const celllib::CellLibrary& lib,
                                           std::string_view text,
                                           std::string* error) {
  auto fail = [&](int line, const std::string& msg) {
    if (error)
      *error = util::format("bind parse error at line %d: %s", line,
                            msg.c_str());
    return std::nullopt;
  };

  sched::Schedule s(g);
  std::map<int, celllib::ModuleId> aluModule;
  std::map<int, std::vector<dfg::NodeId>> aluOps;     // parse order per ALU
  std::map<dfg::NodeId, int> pinnedReg;
  struct Route { dfg::NodeId op; bool left; int sel; };
  std::vector<Route> routes;
  struct Load { dfg::NodeId signal; int step; };
  std::vector<Load> loads;
  struct Next { int from; int to; dfg::NodeId cond; };
  std::vector<Next> nexts;
  std::vector<range::RegAssert> asserts;

  // Strict numeric decode: malformed text is a parse error naming the
  // offending token, never a silent 0/-1 (the PR 5 .dfg hardening applied
  // to the .bind reader).
  bool badNum = false;
  std::string badNumMsg;
  auto num = [&](const std::string& text, const char* what) -> long {
    long v = 0;
    if (!util::parseSignedLong(text, v)) {
      badNum = true;
      badNumMsg = util::format("bad %s value '%s'", what, text.c_str());
      return -1;
    }
    return v;
  };

  std::istringstream in{std::string(text)};
  std::string raw;
  int lineNo = 0;
  bool sawHeader = false;
  while (std::getline(in, raw)) {
    ++lineNo;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const auto tok = util::splitWs(raw);
    if (tok.empty()) continue;

    if (tok[0] == "bind") {
      if (tok.size() != 3 || !util::startsWith(tok[2], "steps="))
        return fail(lineNo, "expected: bind <name> steps=<cs>");
      if (tok[1] != g.name())
        return fail(lineNo, "design name '" + tok[1] + "' does not match '" +
                                g.name() + "'");
      const long cs = num(tok[2].substr(6), "steps");
      if (badNum) return fail(lineNo, badNumMsg);
      if (cs < 1) return fail(lineNo, "steps value out of range");
      s.setNumSteps(static_cast<int>(cs));
      sawHeader = true;
      continue;
    }
    if (!sawHeader) return fail(lineNo, "statement before 'bind' header");

    if (tok[0] == "alu") {
      if (tok.size() != 3) return fail(lineNo, "expected: alu <k> <module>");
      const long k = num(tok[1], "ALU index");
      if (badNum) return fail(lineNo, badNumMsg);
      if (k < 0) return fail(lineNo, "bad ALU index");
      if (aluModule.count(static_cast<int>(k)))
        return fail(lineNo, util::format("duplicate alu %ld", k));
      celllib::ModuleId found = -1;
      for (std::size_t i = 0; i < lib.modules().size(); ++i)
        if (lib.modules()[i].name == tok[2])
          found = static_cast<celllib::ModuleId>(i);
      if (found < 0)
        return fail(lineNo, "unknown library module '" + tok[2] + "'");
      aluModule[static_cast<int>(k)] = found;
    } else if (tok[0] == "op") {
      if (tok.size() != 4 || !util::startsWith(tok[2], "step=") ||
          !util::startsWith(tok[3], "alu="))
        return fail(lineNo, "expected: op <signal> step=<s> alu=<k>");
      const dfg::NodeId id = g.findByName(tok[1]);
      if (id == dfg::kNoNode)
        return fail(lineNo, "unknown signal '" + tok[1] + "'");
      if (!dfg::isSchedulable(g.node(id).kind))
        return fail(lineNo, "'" + tok[1] + "' is not an operation");
      const long step = num(tok[2].substr(5), "step");
      if (badNum) return fail(lineNo, badNumMsg);
      const long k = num(tok[3].substr(4), "alu");
      if (badNum) return fail(lineNo, badNumMsg);
      if (step < 1 || step > s.numSteps())
        return fail(lineNo, "step out of range");
      if (!aluModule.count(static_cast<int>(k)))
        return fail(lineNo, util::format("op bound to undeclared alu %ld", k));
      if (s.isPlaced(id))
        return fail(lineNo, "duplicate placement of '" + tok[1] + "'");
      // Column = ALU index + 1: globally unique, so the (type, column) grid
      // and the explicit binding agree.
      s.place(id, static_cast<int>(step), static_cast<int>(k) + 1);
      aluOps[static_cast<int>(k)].push_back(id);
    } else if (tok[0] == "reg") {
      if (tok.size() != 3) return fail(lineNo, "expected: reg <signal> <r>");
      const dfg::NodeId id = g.findByName(tok[1]);
      if (id == dfg::kNoNode)
        return fail(lineNo, "unknown signal '" + tok[1] + "'");
      const long reg = num(tok[2], "register index");
      if (badNum) return fail(lineNo, badNumMsg);
      if (reg < 0) return fail(lineNo, "bad register index");
      if (pinnedReg.count(id))
        return fail(lineNo, "duplicate reg for '" + tok[1] + "'");
      pinnedReg[id] = static_cast<int>(reg);
    } else if (tok[0] == "route") {
      if (tok.size() != 4 || (tok[2] != "left" && tok[2] != "right"))
        return fail(lineNo, "expected: route <op> left|right <sel>");
      const dfg::NodeId id = g.findByName(tok[1]);
      if (id == dfg::kNoNode)
        return fail(lineNo, "unknown signal '" + tok[1] + "'");
      const long sel = num(tok[3], "select");
      if (badNum) return fail(lineNo, badNumMsg);
      if (sel < 0) return fail(lineNo, "bad select value");
      routes.push_back({id, tok[2] == "left", static_cast<int>(sel)});
    } else if (tok[0] == "load") {
      if (tok.size() != 3 || !util::startsWith(tok[2], "step="))
        return fail(lineNo, "expected: load <signal> step=<t>");
      const dfg::NodeId id = g.findByName(tok[1]);
      if (id == dfg::kNoNode)
        return fail(lineNo, "unknown signal '" + tok[1] + "'");
      const long step = num(tok[2].substr(5), "load step");
      if (badNum) return fail(lineNo, badNumMsg);
      if (step < 0 || step > s.numSteps())
        return fail(lineNo, "load step out of range");
      loads.push_back({id, static_cast<int>(step)});
    } else if (tok[0] == "next") {
      if (tok.size() != 3 && tok.size() != 4)
        return fail(lineNo, "expected: next <from> <to> [cond=<signal>]");
      const long from = num(tok[1], "next from-state");
      if (badNum) return fail(lineNo, badNumMsg);
      const long to = num(tok[2], "next to-state");
      if (badNum) return fail(lineNo, badNumMsg);
      if (from < 0 || from > s.numSteps())
        return fail(lineNo, "next from-state out of range");
      if (to < 0 || to > s.numSteps())  // 0 = halt
        return fail(lineNo, "next to-state out of range");
      dfg::NodeId cond = dfg::kNoNode;
      if (tok.size() == 4) {
        if (!util::startsWith(tok[3], "cond="))
          return fail(lineNo, "expected: next <from> <to> [cond=<signal>]");
        cond = g.findByName(tok[3].substr(5));
        if (cond == dfg::kNoNode)
          return fail(lineNo,
                      "unknown condition signal '" + tok[3].substr(5) + "'");
      }
      nexts.push_back({static_cast<int>(from), static_cast<int>(to), cond});
    } else if (tok[0] == "assert") {
      if (tok.size() != 4 && tok.size() != 5)
        return fail(lineNo,
                    "expected: assert reg=<r> min=<a> max=<b> [width=<w>]");
      if (!util::startsWith(tok[1], "reg=") ||
          !util::startsWith(tok[2], "min=") ||
          !util::startsWith(tok[3], "max="))
        return fail(lineNo,
                    "expected: assert reg=<r> min=<a> max=<b> [width=<w>]");
      const long reg = num(tok[1].substr(4), "assert reg");
      if (badNum) return fail(lineNo, badNumMsg);
      const long mn = num(tok[2].substr(4), "assert min");
      if (badNum) return fail(lineNo, badNumMsg);
      const long mx = num(tok[3].substr(4), "assert max");
      if (badNum) return fail(lineNo, badNumMsg);
      if (reg < 0) return fail(lineNo, "bad assert register index");
      if (mn < 0 || mx < 0) return fail(lineNo, "assert bounds must be >= 0");
      if (mn > mx) return fail(lineNo, "assert min exceeds max");
      long w = 0;
      if (tok.size() == 5) {
        if (!util::startsWith(tok[4], "width="))
          return fail(lineNo,
                      "expected: assert reg=<r> min=<a> max=<b> [width=<w>]");
        w = num(tok[4].substr(6), "assert width");
        if (badNum) return fail(lineNo, badNumMsg);
        if (w < 1 || w > 64)
          return fail(lineNo, "assert width out of range (1..64)");
      }
      asserts.push_back({static_cast<int>(reg),
                         static_cast<sim::Word>(mn),
                         static_cast<sim::Word>(mx), static_cast<int>(w),
                         lineNo});
    } else {
      return fail(lineNo, "unknown statement '" + tok[0] + "'");
    }
  }
  if (!sawHeader) return fail(0, "missing 'bind' header");
  for (dfg::NodeId id : g.operations())
    if (!s.isPlaced(id))
      return fail(0, "operation '" + g.node(id).name + "' is not placed");

  // ALU instances in declared-index order; indices must be dense from 0.
  std::vector<rtl::AluInstance> alus;
  for (const auto& [k, module] : aluModule) {
    if (k != static_cast<int>(alus.size()))
      return fail(0, util::format("alu indices must be dense from 0 "
                                  "(missing alu %zu)", alus.size()));
    rtl::AluInstance a;
    a.module = module;
    a.index = k;
    a.ops = aluOps.count(k) ? aluOps[k] : std::vector<dfg::NodeId>{};
    alus.push_back(std::move(a));
  }

  // Register assignment: pinned signals first, every other stored signal in
  // its own fresh register — the file controls sharing, defects included.
  const std::vector<alloc::Lifetime> lifetimes = alloc::computeLifetimes(g, s);
  alloc::RegAllocation regs;
  int maxPinned = -1;
  for (const auto& [id, reg] : pinnedReg) maxPinned = std::max(maxPinned, reg);
  regs.registers.assign(static_cast<std::size_t>(maxPinned + 1), {});
  for (std::size_t i = 0; i < lifetimes.size(); ++i) {
    const alloc::Lifetime& lt = lifetimes[i];
    auto pin = pinnedReg.find(lt.producer);
    if (pin != pinnedReg.end()) {
      regs.registers[static_cast<std::size_t>(pin->second)].push_back(i);
    } else if (lt.needsRegister) {
      regs.registers.push_back({i});
    }
  }

  BoundDesign b;
  b.datapath = rtl::buildDatapath(g, lib, s, std::move(alus), std::move(regs));
  b.fsm = rtl::buildController(b.datapath);

  for (const Route& rt : routes) {
    bool applied = false;
    for (rtl::MicroOp& m : b.fsm.microOps)
      if (m.op == rt.op) {
        (rt.left ? m.leftSelect : m.rightSelect) = rt.sel;
        applied = true;
      }
    if (!applied)
      return fail(0, "route targets unissued op '" + g.node(rt.op).name + "'");
  }
  for (const Load& ld : loads) {
    bool applied = false;
    for (rtl::RegLoad& rl : b.fsm.regLoads)
      if (rl.signal == ld.signal) {
        rl.step = ld.step;
        applied = true;
      }
    if (!applied)
      return fail(0, "load targets unregistered signal '" +
                         g.node(ld.signal).name + "'");
  }

  // Control transfers: the first `next` for a state replaces its default
  // linear edge, later ones for the same state append alternates (max two
  // successors — one ctrl.next / ctrl.altNext pair in the ROM).
  std::set<int> replaced;
  for (const Next& nx : nexts) {
    if (replaced.insert(nx.from).second)
      b.fsm.edges.erase(
          std::remove_if(b.fsm.edges.begin(), b.fsm.edges.end(),
                         [&](const rtl::StepEdge& e) {
                           return e.from == nx.from;
                         }),
          b.fsm.edges.end());
    b.fsm.edges.push_back({nx.from, nx.to, nx.cond});
    if (b.fsm.successorsOf(nx.from).size() > 2)
      return fail(0, util::format("state %d has more than two successors",
                                  nx.from));
  }

  b.rom = rtl::buildMicrocode(b.datapath, b.fsm);
  b.asserts = std::move(asserts);
  return b;
}

}  // namespace mframe::analysis
