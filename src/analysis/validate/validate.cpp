#include "analysis/validate/validate.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "analysis/rules.h"
#include "analysis/validate/value_numbering.h"
#include "rtl/bus.h"
#include "trace/trace.h"
#include "util/strings.h"

namespace mframe::analysis {

namespace {

using dfg::NodeId;

Diagnostic diag(std::string_view rule, EntityKind entity, Location loc,
                std::string message, std::string fixit = "") {
  Diagnostic d;
  d.rule = std::string(rule);
  d.severity = findRule(rule)->severity;
  d.entity = entity;
  d.loc = std::move(loc);
  d.message = std::move(message);
  d.fixit = std::move(fixit);
  return d;
}

Location at(std::string node, int step = -1, int unit = -1,
            std::string detail = "") {
  Location l;
  l.node = std::move(node);
  l.step = step;
  l.unit = unit;
  l.detail = std::move(detail);
  return l;
}

/// The symbolic machine. One instance per proveDatapath call; `run` drives
/// the static cross-checks, the per-step symbolic execution and the final
/// output audit, accumulating EQV diagnostics along the way.
class Prover {
 public:
  Prover(const rtl::Datapath& d, const rtl::ControllerFsm& fsm,
         const rtl::MicrocodeRom& rom)
      : d_(d), fsm_(fsm), rom_(rom), g_(*d.graph) {}

  LintReport run() {
    ideal_ = vn_.numberGraph(g_);
    busAssign_ = rtl::busAssignmentPerStep(d_, fsm_);
    checkIssueTable();
    checkLoadTable();
    checkRom();
    execute();
    checkOutputs();
    return std::move(r_);
  }

 private:
  struct RegState {
    Vn value = kNoVn;
    NodeId occupant = dfg::kNoNode;
    int death = -1;
  };

  const std::string& nameOf(NodeId id) const { return g_.node(id).name; }

  /// Render two unequal values so the rendered text actually differs:
  /// deepen past the default elision until the strings tell them apart.
  std::pair<std::string, std::string> renderDistinct(Vn got, Vn want) const {
    for (int depth = 4; depth < 32; depth *= 2) {
      std::string a = vn_.toString(got, g_, depth);
      std::string b = vn_.toString(want, g_, depth);
      if (a != b) return {std::move(a), std::move(b)};
    }
    return {vn_.toString(got, g_, 32), vn_.toString(want, g_, 32)};
  }

  int deathOf(NodeId signal, int fallback) const {
    const alloc::Lifetime* lt = alloc::findLifetime(d_.lifetimes, signal);
    return lt ? lt->death : fallback;
  }

  bool aluInRange(int alu) const {
    return alu >= 0 && alu < static_cast<int>(d_.alus.size());
  }

  // -- static cross-checks: schedule vs controller vs ROM (EQV005) -----------

  void checkIssueTable() {
    std::map<NodeId, std::vector<const rtl::MicroOp*>> byOp;
    for (const rtl::MicroOp& m : fsm_.microOps) byOp[m.op].push_back(&m);
    for (const dfg::Node& n : g_.nodes()) {
      if (!dfg::isSchedulable(n.kind) || !d_.schedule.isPlaced(n.id)) continue;
      auto it = byOp.find(n.id);
      if (it == byOp.end()) {
        r_.add(diag(kEqvStepDisagreement, EntityKind::Node,
                    at(n.name, d_.schedule.stepOf(n.id)),
                    util::format("scheduled op '%s' is never issued by the "
                                 "controller", n.name.c_str()),
                    "emit one micro-operation per scheduled operation"));
        continue;
      }
      if (it->second.size() > 1)
        r_.add(diag(kEqvStepDisagreement, EntityKind::Node,
                    at(n.name, d_.schedule.stepOf(n.id)),
                    util::format("op '%s' issued %zu times", n.name.c_str(),
                                 it->second.size())));
      const rtl::MicroOp& m = *it->second.front();
      if (m.step != d_.schedule.stepOf(n.id))
        r_.add(diag(kEqvStepDisagreement, EntityKind::Node,
                    at(n.name, m.step, m.alu),
                    util::format("op '%s' issued at step %d but scheduled at "
                                 "step %d", n.name.c_str(), m.step,
                                 d_.schedule.stepOf(n.id)),
                    "issue the op in its scheduled control step"));
      auto alu = d_.aluOf.find(n.id);
      if (alu != d_.aluOf.end() && m.alu != alu->second)
        r_.add(diag(kEqvStepDisagreement, EntityKind::Alu,
                    at(n.name, m.step, m.alu),
                    util::format("op '%s' issued on ALU%d but bound to ALU%d",
                                 n.name.c_str(), m.alu, alu->second)));
    }
  }

  void checkLoadTable() {
    std::map<NodeId, std::vector<const rtl::RegLoad*>> bySignal;
    for (const rtl::RegLoad& rl : fsm_.regLoads)
      bySignal[rl.signal].push_back(&rl);
    for (const auto& [signal, reg] : d_.regOfSignal) {
      const dfg::Node& n = g_.node(signal);
      auto it = bySignal.find(signal);
      if (it == bySignal.end()) {
        r_.add(diag(kEqvStepDisagreement, EntityKind::Register,
                    at(n.name, -1, reg),
                    util::format("registered signal '%s' is never latched",
                                 n.name.c_str()),
                    "latch the signal at the end of its birth step"));
        continue;
      }
      if (it->second.size() > 1)
        r_.add(diag(kEqvStepDisagreement, EntityKind::Register,
                    at(n.name, -1, reg),
                    util::format("signal '%s' latched %zu times",
                                 n.name.c_str(), it->second.size())));
      const rtl::RegLoad& rl = *it->second.front();
      if (rl.reg != reg)
        r_.add(diag(kEqvStepDisagreement, EntityKind::Register,
                    at(n.name, rl.step, rl.reg),
                    util::format("signal '%s' latched into R%d but allocated "
                                 "to R%d", n.name.c_str(), rl.reg, reg)));
      const int expected = n.kind == dfg::OpKind::Input
                               ? 0
                               : d_.schedule.endStepOf(signal);
      if (rl.step != expected)
        r_.add(diag(kEqvStepDisagreement, EntityKind::Register,
                    at(n.name, rl.step, rl.reg),
                    util::format("signal '%s' latched at end of step %d but "
                                 "its value is ready at end of step %d",
                                 n.name.c_str(), rl.step, expected),
                    "latch at the producer's completion step"));
    }
  }

  void checkRom() {
    romUsable_ = static_cast<int>(rom_.rows.size()) == fsm_.numSteps &&
                 std::all_of(rom_.rows.begin(), rom_.rows.end(),
                             [&](const std::vector<int>& row) {
                               return row.size() == rom_.fields.size();
                             });
    if (!romUsable_) {
      r_.add(diag(kEqvStepDisagreement, EntityKind::Design, at(""),
                  util::format("microcode ROM shape (%zu rows) disagrees with "
                               "the %d-state controller",
                               rom_.rows.size(), fsm_.numSteps)));
      return;
    }
    for (const rtl::MicroOp& m : fsm_.microOps) {
      if (m.step < 1 || m.step > fsm_.numSteps || !aluInRange(m.alu)) continue;
      const std::string field = util::format("alu%d.op", m.alu);
      if (rom_.fieldIndex(field) < 0) continue;  // single-function ALU
      const std::vector<dfg::OpKind> codes = rtl::aluOpcodes(d_, m.alu);
      const auto want =
          std::find(codes.begin(), codes.end(), g_.node(m.op).kind);
      if (want == codes.end()) continue;  // binding defect; RTL003's turf
      const std::optional<int> got = rom_.valueAt(m.step, field);
      if (!got)
        r_.add(diag(kEqvStepDisagreement, EntityKind::Field,
                    at(nameOf(m.op), m.step, m.alu, field),
                    util::format("step %d issues '%s' but field %s holds a "
                                 "don't-care", m.step, nameOf(m.op).c_str(),
                                 field.c_str())));
      else if (*got != static_cast<int>(want - codes.begin()))
        r_.add(diag(kEqvStepDisagreement, EntityKind::Field,
                    at(nameOf(m.op), m.step, m.alu, field),
                    util::format("ROM opcode %d in step %d selects '%s' but "
                                 "the schedule runs '%s'", *got, m.step,
                                 std::string(dfg::kindName(
                                     codes[static_cast<std::size_t>(*got)]))
                                     .c_str(),
                                 std::string(dfg::kindName(g_.node(m.op).kind))
                                     .c_str())));
    }
    std::set<std::pair<int, int>> loads;  // (step, reg)
    for (const rtl::RegLoad& rl : fsm_.regLoads)
      if (rl.step >= 1) loads.insert({rl.step, rl.reg});
    for (std::size_t reg = 0; reg < d_.regs.count(); ++reg) {
      const std::string field = util::format("R%zu.load", reg);
      if (rom_.fieldIndex(field) < 0) continue;
      for (int t = 1; t <= fsm_.numSteps; ++t) {
        const bool bit = rom_.valueAt(t, field).value_or(0) == 1;
        const bool expected = loads.count({t, static_cast<int>(reg)}) > 0;
        if (bit == expected) continue;
        r_.add(diag(kEqvStepDisagreement, EntityKind::Field,
                    at("", t, static_cast<int>(reg), field),
                    bit ? util::format("ROM asserts %s in step %d but no "
                                       "value is latched there",
                                       field.c_str(), t)
                        : util::format("ROM misses %s in step %d where the "
                                       "controller latches",
                                       field.c_str(), t)));
      }
    }
  }

  // -- symbolic execution -----------------------------------------------------

  std::vector<std::string> provenance(const rtl::MicroOp& m, int t, bool left,
                                      int sel, const alloc::Source* src) {
    std::vector<std::string> out;
    const dfg::Node& n = g_.node(m.op);
    out.push_back(util::format(
        "op '%s' (%s) issued at step %d", n.name.c_str(),
        std::string(dfg::kindName(n.kind)).c_str(), t));
    if (aluInRange(m.alu))
      out.push_back(util::format(
          "ALU%d %s", m.alu,
          d_.lib->module(d_.alus[static_cast<std::size_t>(m.alu)].module)
              .signature().c_str()));
    out.push_back(util::format("%s port select %d", left ? "left" : "right",
                               sel));
    if (src) {
      if (t >= 1 && t < static_cast<int>(busAssign_.size())) {
        auto bus = busAssign_[static_cast<std::size_t>(t)].find(*src);
        if (bus != busAssign_[static_cast<std::size_t>(t)].end())
          out.push_back(util::format("bus %d", bus->second));
      }
      out.push_back("source " + src->toString(g_));
      if (src->kind == alloc::Source::Kind::Register && src->index >= 0 &&
          src->index < static_cast<int>(regs_.size())) {
        const NodeId occ = regs_[static_cast<std::size_t>(src->index)].occupant;
        out.push_back(util::format(
            "R%d holds %s", src->index,
            occ == dfg::kNoNode ? "nothing"
                                : ("'" + nameOf(occ) + "'").c_str()));
      }
    }
    return out;
  }

  struct ReadResult {
    Vn vn = kNoVn;
    bool defer = false;
  };

  ReadResult readOperand(const rtl::MicroOp& m, int t, bool left,
                         bool allowDefer) {
    const dfg::Node& n = g_.node(m.op);
    const auto ai = static_cast<std::size_t>(m.alu);
    const auto& arr = d_.arrangement[ai];
    const bool swap = arr.swapped.count(m.op) ? arr.swapped.at(m.op) : false;
    const NodeId signal =
        left ? (swap && n.inputs.size() == 2 ? n.inputs[1] : n.inputs[0])
             : (swap ? n.inputs[0] : n.inputs[1]);
    const alloc::PortWiring& w = left ? d_.leftPort[ai] : d_.rightPort[ai];

    auto sel = w.selectOf.find({m.op, signal});
    if (sel == w.selectOf.end()) {
      r_.add(diag(kEqvMuxRoute, EntityKind::Port,
                  at(n.name, t, m.alu, nameOf(signal)),
                  util::format("%s port of ALU%d is not wired to deliver "
                               "'%s' to '%s'", left ? "left" : "right", m.alu,
                               nameOf(signal).c_str(), n.name.c_str())));
      return {vn_.fresh(), false};
    }
    const int expectedSel = static_cast<int>(sel->second);
    int actualSel = expectedSel;
    const std::string field =
        util::format("alu%d.%s", m.alu, left ? "selL" : "selR");
    const std::optional<int> romSel =
        romUsable_ ? rom_.valueAt(t, field) : std::nullopt;
    if (romSel) {
      actualSel = *romSel;
    } else {
      const int msel = left ? m.leftSelect : m.rightSelect;
      if (msel >= 0 && w.sources.size() > 1) actualSel = msel;
    }
    if (actualSel < 0 || actualSel >= static_cast<int>(w.sources.size())) {
      Diagnostic d = diag(
          kEqvMuxRoute, EntityKind::Port, at(n.name, t, m.alu, field),
          util::format("%s port select %d of ALU%d is outside its %zu-way "
                       "mux", left ? "left" : "right", actualSel, m.alu,
                       w.sources.size()));
      d.provenance = provenance(m, t, left, actualSel, nullptr);
      r_.add(std::move(d));
      return {vn_.fresh(), false};
    }
    const alloc::Source& src = w.sources[static_cast<std::size_t>(actualSel)];
    if (actualSel != expectedSel) {
      Diagnostic d = diag(
          kEqvMuxRoute, EntityKind::Port, at(n.name, t, m.alu, field),
          util::format("%s port of ALU%d issues select %d (%s) but the "
                       "binding routes '%s' through select %d (%s)",
                       left ? "left" : "right", m.alu, actualSel,
                       src.toString(g_).c_str(), nameOf(signal).c_str(),
                       expectedSel,
                       w.sources[static_cast<std::size_t>(expectedSel)]
                           .toString(g_).c_str()),
          "make the issued select match the operand binding");
      d.provenance = provenance(m, t, left, actualSel, &src);
      r_.add(std::move(d));
      // Keep going with the select the hardware would actually see.
    }

    Vn got = kNoVn;
    switch (src.kind) {
      case alloc::Source::Kind::Register: {
        if (src.index < 0 || src.index >= static_cast<int>(regs_.size()))
          return {vn_.fresh(), false};
        got = regs_[static_cast<std::size_t>(src.index)].value;
        if (got == kNoVn) {
          Diagnostic d = diag(
              kEqvOperandMismatch, EntityKind::Port,
              at(n.name, t, m.alu, nameOf(signal)),
              util::format("'%s' reads R%d in step %d before any value is "
                           "written to it", n.name.c_str(), src.index, t));
          d.provenance = provenance(m, t, left, actualSel, &src);
          r_.add(std::move(d));
          return {vn_.fresh(), false};
        }
        break;
      }
      case alloc::Source::Kind::AluOut: {
        const auto& now = aluNow_[src.index];
        auto it = std::find_if(now.begin(), now.end(), [&](const auto& e) {
          return e.first == signal;
        });
        if (it != now.end()) {
          got = it->second;
        } else if (now.size() == 1) {
          got = now.front().second;
        } else if (now.empty()) {
          if (allowDefer) return {kNoVn, true};
          Diagnostic d = diag(
              kEqvOperandMismatch, EntityKind::Port,
              at(n.name, t, m.alu, nameOf(signal)),
              util::format("chained operand '%s' never appears on ALU%d's "
                           "output in step %d", nameOf(signal).c_str(),
                           src.index, t));
          d.provenance = provenance(m, t, left, actualSel, &src);
          r_.add(std::move(d));
          return {vn_.fresh(), false};
        } else {
          got = vn_.fresh();  // ambiguous: several foreign values at once
        }
        break;
      }
      case alloc::Source::Kind::PrimaryInput:
      case alloc::Source::Kind::Constant:
        got = ideal_[src.node];
        break;
    }
    if (got != ideal_[signal]) {
      const auto [gotText, wantText] = renderDistinct(got, ideal_[signal]);
      Diagnostic d = diag(
          kEqvOperandMismatch, EntityKind::Port,
          at(n.name, t, m.alu, nameOf(signal)),
          util::format("%s port of ALU%d receives %s in step %d but '%s' "
                       "expects its operand '%s' = %s",
                       left ? "left" : "right", m.alu, gotText.c_str(), t,
                       n.name.c_str(), nameOf(signal).c_str(),
                       wantText.c_str()));
      d.provenance = provenance(m, t, left, actualSel, &src);
      r_.add(std::move(d));
    }
    return {got, false};
  }

  /// Returns false when a chained read must wait for another issue of this
  /// step (caller retries later in the worklist round).
  bool executeOp(const rtl::MicroOp& m, int t, bool allowDefer) {
    const dfg::Node& n = g_.node(m.op);
    Vn va = kNoVn, vb = kNoVn;
    if (!n.inputs.empty()) {
      const ReadResult ra = readOperand(m, t, true, allowDefer);
      if (ra.defer) return false;
      va = ra.vn;
      if (n.inputs.size() >= 2) {
        const ReadResult rb = readOperand(m, t, false, allowDefer);
        if (rb.defer) return false;
        vb = rb.vn;
      }
    }

    Vn result;
    if (n.kind == dfg::OpKind::LoopSuper) {
      // A folded loop body is uninterpreted: its result is only provably
      // right when both operands provably are.
      const auto ai = static_cast<std::size_t>(m.alu);
      const auto& arr = d_.arrangement[ai];
      const bool swap = arr.swapped.count(m.op) ? arr.swapped.at(m.op) : false;
      bool matched = true;
      if (!n.inputs.empty()) {
        const NodeId l = swap && n.inputs.size() == 2 ? n.inputs[1] : n.inputs[0];
        matched = va == ideal_[l];
        if (n.inputs.size() >= 2)
          matched = matched && vb == ideal_[swap ? n.inputs[0] : n.inputs[1]];
      }
      result = matched ? ideal_[m.op] : vn_.fresh();
    } else {
      result = vn_.ofOp(n.kind, va, vb);
    }
    computed_[m.op] = result;

    const int end = t + n.cycles - 1;
    if (end == t)
      aluNow_[m.alu].emplace_back(m.op, result);
    else
      pending_[end].emplace_back(m.alu, m.op, result);
    return true;
  }

  void latch(int t) {
    for (const rtl::RegLoad& rl : fsm_.regLoads) {
      if (rl.step != t) continue;
      if (rl.reg < 0 || rl.reg >= static_cast<int>(regs_.size())) continue;
      Vn v = vn_.fresh();
      if (rl.fromAlu >= 0) {
        const auto& now = aluNow_[rl.fromAlu];
        auto it = std::find_if(now.begin(), now.end(), [&](const auto& e) {
          return e.first == rl.signal;
        });
        if (it != now.end())
          v = it->second;
        else if (now.size() == 1)
          v = now.front().second;  // latches whatever the ALU produced
      } else if (g_.node(rl.signal).kind == dfg::OpKind::Input) {
        v = ideal_[rl.signal];
      }
      RegState& st = regs_[static_cast<std::size_t>(rl.reg)];
      if (st.occupant != dfg::kNoNode && st.occupant != rl.signal &&
          st.death > t && !g_.mutuallyExclusive(st.occupant, rl.signal)) {
        Diagnostic d = diag(
            kEqvRegisterClobber, EntityKind::Register,
            at(nameOf(rl.signal), t, rl.reg, nameOf(st.occupant)),
            util::format("R%d overwritten with '%s' at end of step %d while "
                         "'%s' is live until step %d", rl.reg,
                         nameOf(rl.signal).c_str(), t,
                         nameOf(st.occupant).c_str(), st.death),
            "allocate the signals to disjoint registers");
        const alloc::Lifetime* lt = alloc::findLifetime(d_.lifetimes, st.occupant);
        d.provenance = {
            util::format("'%s' occupies R%d for steps (%d, %d]",
                         nameOf(st.occupant).c_str(), rl.reg,
                         lt ? lt->birth : -1, st.death),
            util::format("'%s' latched into R%d at end of step %d",
                         nameOf(rl.signal).c_str(), rl.reg, t)};
        r_.add(std::move(d));
      }
      st.value = v;
      st.occupant = rl.signal;
      st.death = deathOf(rl.signal, t);
    }
  }

  void execute() {
    regs_.assign(d_.regs.count(), RegState{});
    // Reset state: primary inputs preload their registers.
    for (const rtl::RegLoad& rl : fsm_.regLoads) {
      if (rl.step != 0) continue;
      if (rl.reg < 0 || rl.reg >= static_cast<int>(regs_.size())) continue;
      const dfg::Node& n = g_.node(rl.signal);
      if (n.kind != dfg::OpKind::Input) {
        r_.add(diag(kEqvStepDisagreement, EntityKind::Register,
                    at(n.name, 0, rl.reg),
                    util::format("non-input '%s' preloaded at reset",
                                 n.name.c_str())));
        continue;
      }
      RegState& st = regs_[static_cast<std::size_t>(rl.reg)];
      if (st.occupant != dfg::kNoNode && st.occupant != rl.signal &&
          !g_.mutuallyExclusive(st.occupant, rl.signal))
        r_.add(diag(kEqvRegisterClobber, EntityKind::Register,
                    at(n.name, 0, rl.reg, nameOf(st.occupant)),
                    util::format("reset preload of '%s' clobbers '%s' in R%d",
                                 n.name.c_str(), nameOf(st.occupant).c_str(),
                                 rl.reg)));
      st.value = ideal_[rl.signal];
      st.occupant = rl.signal;
      st.death = deathOf(rl.signal, 0);
    }

    for (int t = 1; t <= fsm_.numSteps; ++t) {
      aluNow_.clear();
      auto done = pending_.find(t);
      if (done != pending_.end()) {
        for (const auto& [alu, op, v] : done->second)
          aluNow_[alu].emplace_back(op, v);
        pending_.erase(done);
      }

      std::vector<const rtl::MicroOp*> todo;
      for (const rtl::MicroOp& m : fsm_.microOps)
        if (m.step == t && aluInRange(m.alu) &&
            dfg::isSchedulable(g_.node(m.op).kind))
          todo.push_back(&m);
      // Chained reads wait for their producer's issue within the same step,
      // so iterate to a fixpoint before declaring a combinational deadlock.
      bool progress = true;
      while (!todo.empty() && progress) {
        progress = false;
        std::vector<const rtl::MicroOp*> blocked;
        for (const rtl::MicroOp* m : todo) {
          if (executeOp(*m, t, /*allowDefer=*/true))
            progress = true;
          else
            blocked.push_back(m);
        }
        todo = std::move(blocked);
      }
      for (const rtl::MicroOp* m : todo)
        executeOp(*m, t, /*allowDefer=*/false);

      latch(t);
    }
  }

  // -- outputs ---------------------------------------------------------------

  void checkOutputs() {
    for (const auto& [node, name] : g_.outputs()) {
      const dfg::Node& n = g_.node(node);
      if (n.kind == dfg::OpKind::Const) continue;  // hardwired literal
      auto reg = d_.regOfSignal.find(node);
      if (reg != d_.regOfSignal.end() && reg->second >= 0 &&
          reg->second < static_cast<int>(regs_.size())) {
        const RegState& st = regs_[static_cast<std::size_t>(reg->second)];
        if (st.value == kNoVn) {
          r_.add(diag(kEqvOutputUnreachable, EntityKind::Register,
                      at(n.name, -1, reg->second, name),
                      util::format("output '%s' register R%d is never "
                                   "written", name.c_str(), reg->second)));
        } else if (st.value != ideal_[node]) {
          const auto [gotText, wantText] =
              renderDistinct(st.value, ideal_[node]);
          Diagnostic d = diag(
              kEqvOutputUnreachable, EntityKind::Register,
              at(n.name, -1, reg->second, name),
              util::format("output '%s' register R%d ends holding %s instead "
                           "of %s", name.c_str(), reg->second,
                           gotText.c_str(), wantText.c_str()));
          d.provenance = {util::format(
              "R%d last latched '%s'", reg->second,
              st.occupant == dfg::kNoNode ? "nothing"
                                          : nameOf(st.occupant).c_str())};
          r_.add(std::move(d));
        }
        continue;
      }
      if (n.kind == dfg::OpKind::Input) continue;  // forwarded input port
      auto it = computed_.find(node);
      if (it == computed_.end())
        r_.add(diag(kEqvOutputUnreachable, EntityKind::Node, at(n.name),
                    util::format("output '%s' is never computed",
                                 name.c_str())));
      else
        r_.add(diag(kEqvOutputUnreachable, EntityKind::Node, at(n.name),
                    util::format("output '%s' is computed but never lands in "
                                 "an output register", name.c_str()),
                    "allocate a register for the output signal"));
    }
  }

  const rtl::Datapath& d_;
  const rtl::ControllerFsm& fsm_;
  const rtl::MicrocodeRom& rom_;
  const dfg::Dfg& g_;

  LintReport r_;
  ValueNumbering vn_;
  std::vector<Vn> ideal_;
  std::vector<std::map<alloc::Source, int>> busAssign_;
  bool romUsable_ = false;

  std::vector<RegState> regs_;
  std::map<int, std::vector<std::pair<NodeId, Vn>>> aluNow_;
  std::map<int, std::vector<std::tuple<int, NodeId, Vn>>> pending_;
  std::map<NodeId, Vn> computed_;
};

}  // namespace

LintReport proveDatapath(const rtl::Datapath& d, const rtl::ControllerFsm& fsm,
                         const rtl::MicrocodeRom& rom) {
  const trace::Span span("prove");
  return Prover(d, fsm, rom).run();
}

LintReport proveDatapath(const rtl::Datapath& d) {
  const rtl::ControllerFsm fsm = rtl::buildController(d);
  const rtl::MicrocodeRom rom = rtl::buildMicrocode(d, fsm);
  return proveDatapath(d, fsm, rom);
}

}  // namespace mframe::analysis
