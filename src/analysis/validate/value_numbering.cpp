#include "analysis/validate/value_numbering.h"

#include <algorithm>

#include "util/strings.h"

namespace mframe::analysis {

Vn ValueNumbering::intern(Def d) {
  defs_.push_back(std::move(d));
  return static_cast<Vn>(defs_.size() - 1);
}

Vn ValueNumbering::ofInput(dfg::NodeId node) {
  auto it = inputVn_.find(node);
  if (it != inputVn_.end()) return it->second;
  Def d;
  d.kind = Def::Kind::Input;
  d.node = node;
  return inputVn_[node] = intern(d);
}

Vn ValueNumbering::ofConst(long value) {
  auto it = constVn_.find(value);
  if (it != constVn_.end()) return it->second;
  Def d;
  d.kind = Def::Kind::Const;
  d.value = value;
  return constVn_[value] = intern(d);
}

Vn ValueNumbering::ofOp(dfg::OpKind kind, Vn a, Vn b) {
  if (dfg::isCommutative(kind) && b != kNoVn && b < a) std::swap(a, b);
  const auto key = std::make_tuple(kind, a, b);
  auto it = opVn_.find(key);
  if (it != opVn_.end()) return it->second;
  Def d;
  d.kind = Def::Kind::Op;
  d.op = kind;
  d.a = a;
  d.b = b;
  return opVn_[key] = intern(d);
}

Vn ValueNumbering::ofOpaque(dfg::NodeId node) {
  auto it = opaqueVn_.find(node);
  if (it != opaqueVn_.end()) return it->second;
  Def d;
  d.kind = Def::Kind::Opaque;
  d.node = node;
  return opaqueVn_[node] = intern(d);
}

Vn ValueNumbering::fresh() { return intern(Def{}); }

std::vector<Vn> ValueNumbering::numberGraph(const dfg::Dfg& g) {
  std::vector<Vn> ideal(g.size(), kNoVn);
  for (const dfg::Node& n : g.nodes()) {
    switch (n.kind) {
      case dfg::OpKind::Input:
        ideal[n.id] = ofInput(n.id);
        break;
      case dfg::OpKind::Const:
        ideal[n.id] = ofConst(n.constValue);
        break;
      case dfg::OpKind::LoopSuper:
        ideal[n.id] = ofOpaque(n.id);
        break;
      default: {
        const Vn a = n.inputs.empty() ? kNoVn : ideal[n.inputs[0]];
        const Vn b = n.inputs.size() < 2 ? kNoVn : ideal[n.inputs[1]];
        ideal[n.id] = ofOp(n.kind, a, b);
      }
    }
  }
  return ideal;
}

std::string ValueNumbering::toString(Vn v, const dfg::Dfg& g, int depth) const {
  if (v < 0 || v >= static_cast<Vn>(defs_.size())) return "?";
  if (depth <= 0) return "...";
  const Def& d = defs_[static_cast<std::size_t>(v)];
  switch (d.kind) {
    case Def::Kind::Input: return g.node(d.node).name;
    case Def::Kind::Const: return util::format("%ld", d.value);
    case Def::Kind::Opaque: return "loop:" + g.node(d.node).name;
    case Def::Kind::Fresh: return util::format("junk#%d", v);
    case Def::Kind::Op: {
      const std::string sym(dfg::kindSymbol(d.op));
      if (d.b == kNoVn)
        return "(" + sym + " " + toString(d.a, g, depth - 1) + ")";
      return "(" + toString(d.a, g, depth - 1) + " " + sym + " " +
             toString(d.b, g, depth - 1) + ")";
    }
  }
  return "?";
}

}  // namespace mframe::analysis
