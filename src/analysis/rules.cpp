#include "analysis/rules.h"

namespace mframe::analysis {

const std::vector<RuleInfo>& allRules() {
  static const std::vector<RuleInfo> rules = {
      // DFG family: structural well-formedness of the input graph.
      {kDfgParseFailure, "dfg", Severity::Error,
       "design fails to parse or compile"},
      {kDfgDanglingInput, "dfg", Severity::Error,
       "operation references an unknown or out-of-range input signal"},
      {kDfgArityMismatch, "dfg", Severity::Error,
       "operation has the wrong number of inputs for its kind (ops take at most 2)"},
      {kDfgCycle, "dfg", Severity::Error,
       "data dependences form a cycle (the DFG must be a DAG)"},
      {kDfgUnreachableOp, "dfg", Severity::Warning,
       "operation result never reaches a primary output"},
      {kDfgBadCycles, "dfg", Severity::Error,
       "multicycle attribute cycles < 1"},
      {kDfgBadDelayOverride, "dfg", Severity::Warning,
       "nonsensical chaining-delay override (non-positive, or on a multicycle op)"},
      {kDfgBadBranchPath, "dfg", Severity::Error,
       "malformed branchPath encoding (components must alternate cond/arm pairs)"},
      {kDfgDuplicateName, "dfg", Severity::Error,
       "duplicate or empty signal name"},
      {kDfgDeadLeaf, "dfg", Severity::Warning,
       "Input/Const node has no consumers and is not an output"},
      {kDfgForwardRef, "dfg", Severity::Error,
       "input reference is not older than the node (graph not topological)"},
      {kDfgBadOutputRef, "dfg", Severity::Error,
       "primary output references a nonexistent node"},
      // Schedule family: the structured re-implementation of verifySchedule.
      {kSchedParseFailure, "sched", Severity::Error,
       "schedule file fails to parse against the design"},
      {kSchedUnplaced, "sched", Severity::Error,
       "schedulable operation is not placed"},
      {kSchedOutOfRange, "sched", Severity::Error,
       "operation occupies steps outside [1, cs]"},
      {kSchedBadColumn, "sched", Severity::Error,
       "operation has an invalid FU column (< 1)"},
      {kSchedPrecedence, "sched", Severity::Error,
       "successor starts before a predecessor's result is available"},
      {kSchedChainOverflow, "sched", Severity::Error,
       "chained combinational path exceeds the clock period"},
      {kSchedMidStepStart, "sched", Severity::Error,
       "chained input into a multicycle op or with chaining disabled"},
      {kSchedOccupancy, "sched", Severity::Error,
       "two non-exclusive operations occupy one FU instance simultaneously"},
      {kSchedResourceLimit, "sched", Severity::Error,
       "FU instances used exceed the per-type resource limit"},
      // RTL family: structural checks over the allocated datapath.
      {kRtlDoubleBinding, "rtl", Severity::Error,
       "operation bound to more than one ALU"},
      {kRtlNonOpBound, "rtl", Severity::Error,
       "non-operation node bound to an ALU"},
      {kRtlUnsupportedOp, "rtl", Severity::Error,
       "ALU module lacks the capability for a bound operation"},
      {kRtlUnboundOp, "rtl", Severity::Error,
       "operation not bound to any ALU"},
      {kRtlAluOverlap, "rtl", Severity::Error,
       "ALU executes two non-exclusive operations concurrently"},
      {kRtlSelfLoop, "rtl", Severity::Error,
       "style-2 violation: dependent operations share an ALU"},
      {kRtlRegisterOverlap, "rtl", Severity::Error,
       "register holds two signals with overlapping lifetimes"},
      {kRtlMissingRegister, "rtl", Severity::Error,
       "cross-step signal has no register"},
      {kRtlUnconnectedPort, "rtl", Severity::Error,
       "ALU port mux cannot deliver a required operand (unconnected mux input)"},
      {kRtlBusContention, "rtl", Severity::Error,
       "a bus would be driven by multiple sources in one step (plan underprovisioned)"},
      {kRtlBusIdle, "rtl", Severity::Warning,
       "bus is driven by zero sources in every step (plan overprovisioned)"},
      {kRtlBadFieldRef, "rtl", Severity::Error,
       "microcode field references a nonexistent datapath component"},
      {kRtlFieldOverflow, "rtl", Severity::Error,
       "microcode row value does not fit its field width (or shape mismatch)"},
  };
  return rules;
}

const RuleInfo* findRule(std::string_view id) {
  for (const RuleInfo& r : allRules())
    if (r.id == id) return &r;
  return nullptr;
}

}  // namespace mframe::analysis
