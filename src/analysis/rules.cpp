#include "analysis/rules.h"

namespace mframe::analysis {

const std::vector<RuleInfo>& allRules() {
  static const std::vector<RuleInfo> rules = {
      // DFG family: structural well-formedness of the input graph.
      {kDfgParseFailure, "dfg", Severity::Error,
       "design fails to parse or compile"},
      {kDfgDanglingInput, "dfg", Severity::Error,
       "operation references an unknown or out-of-range input signal"},
      {kDfgArityMismatch, "dfg", Severity::Error,
       "operation has the wrong number of inputs for its kind (ops take at most 2)"},
      {kDfgCycle, "dfg", Severity::Error,
       "data dependences form a cycle (the DFG must be a DAG)"},
      {kDfgUnreachableOp, "dfg", Severity::Warning,
       "operation result never reaches a primary output"},
      {kDfgBadCycles, "dfg", Severity::Error,
       "multicycle attribute cycles < 1"},
      {kDfgBadDelayOverride, "dfg", Severity::Warning,
       "nonsensical chaining-delay override (non-positive, or on a multicycle op)"},
      {kDfgBadBranchPath, "dfg", Severity::Error,
       "malformed branchPath encoding (components must alternate cond/arm pairs)"},
      {kDfgDuplicateName, "dfg", Severity::Error,
       "duplicate or empty signal name"},
      {kDfgDeadLeaf, "dfg", Severity::Warning,
       "Input/Const node has no consumers and is not an output"},
      {kDfgForwardRef, "dfg", Severity::Error,
       "input reference is not older than the node (graph not topological)"},
      {kDfgBadOutputRef, "dfg", Severity::Error,
       "primary output references a nonexistent node"},
      {kDfgBadWidth, "dfg", Severity::Error,
       "declared width outside [1, 64] bits"},
      {kDfgConstWidthOverflow, "dfg", Severity::Error,
       "constant literal does not fit its declared width"},
      // Schedule family: the structured re-implementation of verifySchedule.
      {kSchedParseFailure, "sched", Severity::Error,
       "schedule file fails to parse against the design"},
      {kSchedUnplaced, "sched", Severity::Error,
       "schedulable operation is not placed"},
      {kSchedOutOfRange, "sched", Severity::Error,
       "operation occupies steps outside [1, cs]"},
      {kSchedBadColumn, "sched", Severity::Error,
       "operation has an invalid FU column (< 1)"},
      {kSchedPrecedence, "sched", Severity::Error,
       "successor starts before a predecessor's result is available"},
      {kSchedChainOverflow, "sched", Severity::Error,
       "chained combinational path exceeds the clock period"},
      {kSchedMidStepStart, "sched", Severity::Error,
       "chained input into a multicycle op or with chaining disabled"},
      {kSchedOccupancy, "sched", Severity::Error,
       "two non-exclusive operations occupy one FU instance simultaneously"},
      {kSchedResourceLimit, "sched", Severity::Error,
       "FU instances used exceed the per-type resource limit"},
      // RTL family: structural checks over the allocated datapath.
      {kRtlDoubleBinding, "rtl", Severity::Error,
       "operation bound to more than one ALU"},
      {kRtlNonOpBound, "rtl", Severity::Error,
       "non-operation node bound to an ALU"},
      {kRtlUnsupportedOp, "rtl", Severity::Error,
       "ALU module lacks the capability for a bound operation"},
      {kRtlUnboundOp, "rtl", Severity::Error,
       "operation not bound to any ALU"},
      {kRtlAluOverlap, "rtl", Severity::Error,
       "ALU executes two non-exclusive operations concurrently"},
      {kRtlSelfLoop, "rtl", Severity::Error,
       "style-2 violation: dependent operations share an ALU"},
      {kRtlRegisterOverlap, "rtl", Severity::Error,
       "register holds two signals with overlapping lifetimes"},
      {kRtlMissingRegister, "rtl", Severity::Error,
       "cross-step signal has no register"},
      {kRtlUnconnectedPort, "rtl", Severity::Error,
       "ALU port mux cannot deliver a required operand (unconnected mux input)"},
      {kRtlBusContention, "rtl", Severity::Error,
       "a bus would be driven by multiple sources in one step (plan underprovisioned)"},
      {kRtlBusIdle, "rtl", Severity::Warning,
       "bus is driven by zero sources in every step (plan overprovisioned)"},
      {kRtlBadFieldRef, "rtl", Severity::Error,
       "microcode field references a nonexistent datapath component"},
      {kRtlFieldOverflow, "rtl", Severity::Error,
       "microcode row value does not fit its field width (or shape mismatch)"},
      // EQV family: the symbolic translation validator (mframe prove).
      {kEqvParseFailure, "eqv", Severity::Error,
       "bound-design (.bind) file fails to parse against the design"},
      {kEqvOperandMismatch, "eqv", Severity::Error,
       "operand value arriving at an ALU port differs from the DFG operand"},
      {kEqvRegisterClobber, "eqv", Severity::Error,
       "register overwritten while its previous value is still live"},
      {kEqvOutputUnreachable, "eqv", Severity::Error,
       "primary output register never written or holds the wrong final value"},
      {kEqvMuxRoute, "eqv", Severity::Error,
       "mux select routes a source inconsistent with the operand binding"},
      {kEqvStepDisagreement, "eqv", Severity::Error,
       "microcode issues or latches in a step disagreeing with the schedule"},
      // LIB family: cell-library sanity.
      {kLibParseFailure, "lib", Severity::Error,
       "cell-library file fails to parse"},
      {kLibDuplicateCell, "lib", Severity::Error,
       "duplicate cell name (later definition silently ignored)"},
      {kLibBadArea, "lib", Severity::Error,
       "cell area is not positive"},
      {kLibBadDelay, "lib", Severity::Warning,
       "cell delay is not positive (breaks chaining-budget arithmetic)"},
      {kLibMissingCell, "lib", Severity::Error,
       "a required operation has no implementing cell"},
      {kLibBadStages, "lib", Severity::Error,
       "multicycle/pipelined cell declares fewer than 1 stage"},
      {kLibMuxTable, "lib", Severity::Warning,
       "multiplexer cost table decreases with input count"},
      // OPT family: optimization opportunities found by the dataflow passes.
      {kOptFoldableConst, "opt", Severity::Note,
       "operation computes a compile-time constant (foldable)"},
      {kOptDeadOp, "opt", Severity::Note,
       "operation result is dead (removable without changing any output)"},
      {kOptDuplicateExpr, "opt", Severity::Note,
       "operation recomputes an expression another operation already produces"},
      {kOptOverWideOp, "opt", Severity::Note,
       "operation is wider than its inferred value range requires"},
      // TIM family: static timing analysis of a synthesized datapath.
      {kTimClockViolation, "tim", Severity::Error,
       "register-to-register path exceeds the clock period"},
      {kTimUnconstrainedChain, "tim", Severity::Warning,
       "chained combinational path with no clock constraint to audit against"},
      {kTimMulticycleUnderAlloc, "tim", Severity::Error,
       "multicycle operation does not fit its allocated control steps"},
      {kTimNearCritical, "tim", Severity::Warning,
       "path consumes almost the whole clock period (fragile slack)"},
      // AUD family: reference-free reachability + datapath-safety audit.
      {kAudUnreachable, "aud", Severity::Error,
       "microcode row / FSM state has no path from reset (dead control state)"},
      {kAudReadBeforeWrite, "aud", Severity::Error,
       "register read on a reachable path before any write reaches it"},
      {kAudBusContention, "aud", Severity::Error,
       "shared output line driven by multiple issues in one reachable step"},
      {kAudDeadMuxInput, "aud", Severity::Warning,
       "mux data input never selected on any reachable path"},
      {kAudWriteClobber, "aud", Severity::Error,
       "two values latched into one register in the same reachable step"},
      {kAudXPropagation, "aud", Severity::Error,
       "undefined (X) value can reach a primary output register"},
      // WID family: interval abstract interpretation over the FSM×datapath
      // product (mframe range).
      {kWidTruncatingWrite, "wid", Severity::Error,
       "register write truncates: value range needs more bits than the "
       "register's declared tenants provide"},
      {kWidSharedLineOverflow, "wid", Severity::Error,
       "shared ALU output line carries a result wider than the line's "
       "declared tenants provide"},
      {kWidDeclaredWidthOverflow, "wid", Severity::Warning,
       "operation's inferred value range can overflow its declared width"},
      {kWidValueDeadMuxInput, "wid", Severity::Warning,
       "mux data input only selected in states value analysis proves "
       "unreachable"},
      {kWidAssertViolated, "wid", Severity::Error,
       "user range assertion violated by the interval fixpoint"},
  };
  return rules;
}

const RuleInfo* findRule(std::string_view id) {
  for (const RuleInfo& r : allRules())
    if (r.id == id) return &r;
  return nullptr;
}

namespace {

/// Leading alphabetic part of a rule id ("TIM001" -> "TIM").
std::string_view idPrefix(std::string_view id) {
  std::size_t n = 0;
  while (n < id.size() && (id[n] < '0' || id[n] > '9')) ++n;
  return id.substr(0, n);
}

}  // namespace

const std::vector<std::string_view>& ruleFamilyPrefixes() {
  static const std::vector<std::string_view> prefixes = [] {
    std::vector<std::string_view> out;
    for (const RuleInfo& r : allRules()) {
      const std::string_view p = idPrefix(r.id);
      if (out.empty() || out.back() != p) out.push_back(p);
    }
    return out;
  }();
  return prefixes;
}

bool isRuleFamilyPrefix(std::string_view prefix) {
  for (std::string_view p : ruleFamilyPrefixes())
    if (p == prefix) return true;
  return false;
}

}  // namespace mframe::analysis
