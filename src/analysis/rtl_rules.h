// RTL rule family: structural lint of the allocated datapath and its
// derived artifacts. lintDatapath is the structured re-implementation of
// rtl::verifyDatapath (binding, ALU occupancy, style-2, registers, port
// wiring); lintBusPlan checks a shared-bus interconnect plan for
// under/over-provisioning against the actual per-step transfer demand; and
// lintMicrocode cross-checks a microcode ROM against the datapath it claims
// to control (field references and value widths).
#pragma once

#include "analysis/diagnostic.h"
#include "rtl/bus.h"
#include "rtl/controller.h"
#include "rtl/datapath.h"
#include "rtl/microcode.h"

namespace mframe::analysis {

/// Run the datapath rules. Mirrors the legacy contract: when binding rules
/// fire, the remaining passes are skipped (they assume a total binding).
LintReport lintDatapath(const rtl::Datapath& d, const sched::Constraints& c,
                        rtl::DesignStyle style);

/// Check `plan` against the transfer demand derived from `d`/`fsm`:
/// a step needing more simultaneous sources than the plan has buses means
/// some bus is driven by multiple sources (RTL010); buses no step ever
/// drives are flagged as idle (RTL011).
LintReport lintBusPlan(const rtl::Datapath& d, const rtl::ControllerFsm& fsm,
                       const rtl::BusPlan& plan);

/// Check `rom` against `d`/`fsm`: every field must reference an existing
/// ALU or register (RTL012), and every row value must fit its field width
/// with consistent row/field shapes (RTL013).
LintReport lintMicrocode(const rtl::Datapath& d, const rtl::ControllerFsm& fsm,
                         const rtl::MicrocodeRom& rom);

}  // namespace mframe::analysis
