#include "analysis/diagnostic.h"

#include <algorithm>
#include <cctype>

#include "util/strings.h"

namespace mframe::analysis {

std::string_view severityName(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

bool parseSeverity(std::string_view text, Severity& out) {
  if (text == "note") out = Severity::Note;
  else if (text == "warning") out = Severity::Warning;
  else if (text == "error") out = Severity::Error;
  else return false;
  return true;
}

std::string_view entityKindName(EntityKind k) {
  switch (k) {
    case EntityKind::Design: return "design";
    case EntityKind::Node: return "node";
    case EntityKind::Step: return "step";
    case EntityKind::Fu: return "fu";
    case EntityKind::Alu: return "alu";
    case EntityKind::Register: return "register";
    case EntityKind::Bus: return "bus";
    case EntityKind::Port: return "port";
    case EntityKind::Field: return "field";
  }
  return "?";
}

namespace {

bool parseEntityKind(std::string_view text, EntityKind& out) {
  for (int k = 0; k <= static_cast<int>(EntityKind::Field); ++k) {
    const auto e = static_cast<EntityKind>(k);
    if (entityKindName(e) == text) {
      out = e;
      return true;
    }
  }
  return false;
}

}  // namespace

std::string Diagnostic::toText() const {
  std::string where(entityKindName(entity));
  if (!loc.node.empty()) where += " '" + loc.node + "'";
  if (loc.step >= 0) where += util::format(" step %d", loc.step);
  if (loc.unit >= 0) where += util::format(" #%d", loc.unit);
  if (loc.line >= 0) where += util::format(" (line %d)", loc.line);
  std::string out = util::format("%s[%s] %s: %s",
                                 std::string(severityName(severity)).c_str(),
                                 rule.c_str(), where.c_str(), message.c_str());
  if (!fixit.empty()) out += " (fix: " + fixit + ")";
  for (const std::string& p : provenance) out += "\n    via: " + p;
  return out;
}

void LintReport::merge(LintReport other) {
  for (Diagnostic& d : other.diags_) diags_.push_back(std::move(d));
}

std::size_t LintReport::count(Severity s) const {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(),
                    [&](const Diagnostic& d) { return d.severity == s; }));
}

bool LintReport::hasAtOrAbove(Severity threshold) const {
  return std::any_of(diags_.begin(), diags_.end(), [&](const Diagnostic& d) {
    return d.severity >= threshold;
  });
}

std::vector<Diagnostic> LintReport::byRule(std::string_view rule) const {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diags_)
    if (d.rule == rule) out.push_back(d);
  return out;
}

std::vector<std::string> LintReport::messages() const {
  std::vector<std::string> out;
  out.reserve(diags_.size());
  for (const Diagnostic& d : diags_) out.push_back(d.message);
  return out;
}

std::string LintReport::renderText() const {
  std::string out;
  for (const Diagnostic& d : diags_) out += d.toText() + "\n";
  out += util::format("%zu error(s), %zu warning(s), %zu note(s)\n",
                      count(Severity::Error), count(Severity::Warning),
                      count(Severity::Note));
  return out;
}

// -- JSON rendering ----------------------------------------------------------

namespace {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += util::format("\\u%04x", c);
        else
          out += c;
    }
  }
  return out;
}

std::string quoted(std::string_view s) { return "\"" + jsonEscape(s) + "\""; }

}  // namespace

std::string LintReport::renderJson(std::string_view designName) const {
  std::string out = "{\n";
  out += "  \"schema\": 2,\n";
  out += "  \"design\": " + quoted(designName) + ",\n";
  out += util::format(
      "  \"counts\": {\"error\": %zu, \"warning\": %zu, \"note\": %zu},\n",
      count(Severity::Error), count(Severity::Warning), count(Severity::Note));
  out += "  \"diagnostics\": [";
  for (std::size_t i = 0; i < diags_.size(); ++i) {
    const Diagnostic& d = diags_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {";
    out += "\"rule\": " + quoted(d.rule);
    out += ", \"severity\": " + quoted(severityName(d.severity));
    out += ", \"entity\": " + quoted(entityKindName(d.entity));
    out += ", \"location\": {";
    bool first = true;
    auto field = [&](const char* key, const std::string& value) {
      if (!first) out += ", ";
      first = false;
      out += quoted(key) + ": " + value;
    };
    if (!d.loc.node.empty()) field("node", quoted(d.loc.node));
    if (d.loc.line >= 0) field("line", util::format("%d", d.loc.line));
    if (d.loc.step >= 0) field("step", util::format("%d", d.loc.step));
    if (d.loc.unit >= 0) field("unit", util::format("%d", d.loc.unit));
    if (!d.loc.detail.empty()) field("detail", quoted(d.loc.detail));
    out += "}";
    out += ", \"message\": " + quoted(d.message);
    if (!d.fixit.empty()) out += ", \"fixit\": " + quoted(d.fixit);
    if (!d.provenance.empty()) {
      out += ", \"provenance\": [";
      for (std::size_t p = 0; p < d.provenance.size(); ++p) {
        if (p != 0) out += ", ";
        out += quoted(d.provenance[p]);
      }
      out += "]";
    }
    out += "}";
  }
  out += diags_.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

// -- JSON re-parsing ---------------------------------------------------------
//
// A deliberately small recursive-descent parser covering exactly the subset
// renderJson emits (objects, arrays, strings with the escapes above, and
// non-negative integers). Not a general JSON library.

namespace {

struct JsonCursor {
  std::string_view s;
  std::size_t i = 0;
  std::string err;

  bool fail(const std::string& m) {
    if (err.empty()) err = util::format("json error at offset %zu: %s", i, m.c_str());
    return false;
  }
  void skipWs() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool eat(char c) {
    skipWs();
    if (i >= s.size() || s[i] != c)
      return fail(util::format("expected '%c'", c));
    ++i;
    return true;
  }
  bool peek(char c) {
    skipWs();
    return i < s.size() && s[i] == c;
  }
  bool parseString(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (i < s.size() && s[i] != '"') {
      char c = s[i++];
      if (c == '\\') {
        if (i >= s.size()) return fail("dangling escape");
        const char e = s[i++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': {
            if (i + 4 > s.size()) return fail("bad \\u escape");
            out += static_cast<char>(
                std::strtol(std::string(s.substr(i, 4)).c_str(), nullptr, 16));
            i += 4;
            break;
          }
          default: return fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    if (i >= s.size()) return fail("unterminated string");
    ++i;  // closing quote
    return true;
  }
  bool parseInt(int& out) {
    skipWs();
    std::size_t start = i;
    if (i < s.size() && s[i] == '-') ++i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
    if (i == start) return fail("expected integer");
    out = static_cast<int>(
        std::strtol(std::string(s.substr(start, i - start)).c_str(), nullptr, 10));
    return true;
  }
};

bool parseLocation(JsonCursor& c, Location& loc) {
  if (!c.eat('{')) return false;
  if (c.peek('}')) return c.eat('}');
  while (true) {
    std::string key;
    if (!c.parseString(key) || !c.eat(':')) return false;
    if (key == "node") {
      if (!c.parseString(loc.node)) return false;
    } else if (key == "detail") {
      if (!c.parseString(loc.detail)) return false;
    } else if (key == "line") {
      if (!c.parseInt(loc.line)) return false;
    } else if (key == "step") {
      if (!c.parseInt(loc.step)) return false;
    } else if (key == "unit") {
      if (!c.parseInt(loc.unit)) return false;
    } else {
      return c.fail("unknown location key '" + key + "'");
    }
    if (c.peek(',')) { c.eat(','); continue; }
    return c.eat('}');
  }
}

bool parseDiagnostic(JsonCursor& c, Diagnostic& d) {
  if (!c.eat('{')) return false;
  while (true) {
    std::string key;
    if (!c.parseString(key) || !c.eat(':')) return false;
    if (key == "rule") {
      if (!c.parseString(d.rule)) return false;
    } else if (key == "severity") {
      std::string sv;
      if (!c.parseString(sv)) return false;
      if (!parseSeverity(sv, d.severity)) return c.fail("bad severity '" + sv + "'");
    } else if (key == "entity") {
      std::string ev;
      if (!c.parseString(ev)) return false;
      if (!parseEntityKind(ev, d.entity)) return c.fail("bad entity '" + ev + "'");
    } else if (key == "location") {
      if (!parseLocation(c, d.loc)) return false;
    } else if (key == "message") {
      if (!c.parseString(d.message)) return false;
    } else if (key == "fixit") {
      if (!c.parseString(d.fixit)) return false;
    } else if (key == "provenance") {
      if (!c.eat('[')) return false;
      while (!c.peek(']')) {
        std::string entry;
        if (!c.parseString(entry)) return false;
        d.provenance.push_back(std::move(entry));
        if (c.peek(',')) c.eat(',');
      }
      if (!c.eat(']')) return false;
    } else {
      return c.fail("unknown diagnostic key '" + key + "'");
    }
    if (c.peek(',')) { c.eat(','); continue; }
    return c.eat('}');
  }
}

}  // namespace

std::optional<std::vector<Diagnostic>> parseDiagnosticsJson(
    std::string_view json, std::string* error) {
  JsonCursor c;
  c.s = json;
  std::vector<Diagnostic> out;
  auto bail = [&]() -> std::optional<std::vector<Diagnostic>> {
    if (error) *error = c.err.empty() ? "malformed document" : c.err;
    return std::nullopt;
  };
  if (!c.eat('{')) return bail();
  while (true) {
    std::string key;
    if (!c.parseString(key) || !c.eat(':')) return bail();
    if (key == "design") {
      std::string ignored;
      if (!c.parseString(ignored)) return bail();
    } else if (key == "schema") {
      int v;
      if (!c.parseInt(v)) return bail();
      if (v != 2) {
        c.fail(util::format("unsupported schema version %d", v));
        return bail();
      }
    } else if (key == "counts") {
      // Skip the tallies object; it is derivable from the diagnostics.
      if (!c.eat('{')) return bail();
      while (!c.peek('}')) {
        std::string k;
        int v;
        if (!c.parseString(k) || !c.eat(':') || !c.parseInt(v)) return bail();
        if (c.peek(',')) c.eat(',');
      }
      if (!c.eat('}')) return bail();
    } else if (key == "diagnostics") {
      if (!c.eat('[')) return bail();
      while (!c.peek(']')) {
        Diagnostic d;
        if (!parseDiagnostic(c, d)) return bail();
        out.push_back(std::move(d));
        if (c.peek(',')) c.eat(',');
      }
      if (!c.eat(']')) return bail();
    } else {
      c.fail("unknown key '" + key + "'");
      return bail();
    }
    if (c.peek(',')) { c.eat(','); continue; }
    if (!c.eat('}')) return bail();
    return out;
  }
}

}  // namespace mframe::analysis
