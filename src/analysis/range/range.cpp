#include "analysis/range/range.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/audit/step_index.h"
#include "analysis/dataflow/engine.h"
#include "analysis/dataflow/passes.h"
#include "analysis/rules.h"
#include "explore/thread_pool.h"
#include "trace/trace.h"
#include "util/strings.h"

namespace mframe::analysis::range {

namespace {

using audit::PortRead;
using audit::ReachResult;
using audit::StepIndex;
using dataflow::Interval;
using dfg::NodeId;
using sim::Word;

Diagnostic diag(std::string_view rule, EntityKind entity, Location loc,
                std::string message, std::string fixit = "") {
  Diagnostic d;
  d.rule = std::string(rule);
  d.severity = findRule(rule)->severity;
  d.entity = entity;
  d.loc = std::move(loc);
  d.message = std::move(message);
  d.fixit = std::move(fixit);
  return d;
}

Location at(std::string node, int step = -1, int unit = -1,
            std::string detail = "") {
  Location l;
  l.node = std::move(node);
  l.step = step;
  l.unit = unit;
  l.detail = std::move(detail);
  return l;
}

std::string formatPath(const std::vector<int>& path) {
  std::string s = "reachable path:";
  for (std::size_t i = 0; i < path.size(); ++i)
    s += util::format("%s%d", i == 0 ? " " : " -> ", path[i]);
  return s;
}

std::string formatInterval(const Interval& v) {
  return util::format("[%llu, %llu]", static_cast<unsigned long long>(v.lo),
                      static_cast<unsigned long long>(v.hi));
}

// ---------------------------------------------------------- abstract values

/// The architectural range of a leaf signal: a constant is itself, a primary
/// input ranges over its declared width (the same seeding analyzeRanges
/// uses), anything else is unknown.
Interval nodeRange(const dfg::Node& n, int wordWidth) {
  if (n.kind == dfg::OpKind::Const)
    return Interval::constant(static_cast<Word>(n.constValue), wordWidth);
  if (n.kind == dfg::OpKind::Input && n.width > 0)
    return Interval::full(std::min(n.width, wordWidth));
  return Interval::full(wordWidth);
}

RegFact undefFact(int wordWidth) {
  return RegFact{false, Interval::full(wordWidth)};
}

/// The interval an issued operation produces in a state whose incoming
/// register facts are `in`. Chained operands (ALU-output sources) recurse
/// into their producer; node ids are topological, so the recursion is
/// bounded by the DAG depth (the cap is defensive, mirroring opClean).
Interval opInterval(const StepIndex& idx, NodeId op, const RangeState& in,
                    int wordWidth, int depth = 0) {
  if (depth > 64) return Interval::full(wordWidth);
  const dfg::Node& n = idx.d->graph->node(op);
  switch (n.kind) {
    case dfg::OpKind::Input:
    case dfg::OpKind::Const:
      return nodeRange(n, wordWidth);
    case dfg::OpKind::LoopSuper:
      return Interval::full(wordWidth);
    default:
      break;
  }
  std::array<Interval, 2> operands{Interval::full(wordWidth),
                                   Interval::full(wordWidth)};
  for (std::size_t i = 0; i < n.inputs.size() && i < 2; ++i) {
    const NodeId sig = n.inputs[i];
    const alloc::Source* src = idx.wiredSource(op, sig);
    if (src == nullptr) continue;  // unrouted read: full range stays sound
    switch (src->kind) {
      case alloc::Source::Kind::Register:
        if (src->index >= 0 &&
            static_cast<std::size_t>(src->index) < in.regs.size()) {
          const RegFact& f = in.regs[static_cast<std::size_t>(src->index)];
          operands[i] = f.defined ? f.val : Interval::full(wordWidth);
        }
        break;
      case alloc::Source::Kind::AluOut:
        operands[i] = opInterval(idx, sig, in, wordWidth, depth + 1);
        break;
      case alloc::Source::Kind::PrimaryInput:
      case alloc::Source::Kind::Constant:
        operands[i] = nodeRange(idx.d->graph->node(sig), wordWidth);
        break;
    }
  }
  return dataflow::intervalTransfer(n.kind, operands[0], operands[1],
                                    wordWidth);
}

/// The value latched by one RegLoad given incoming facts `in`.
Interval latchInterval(const StepIndex& idx, const rtl::RegLoad& rl,
                       const RangeState& in, int wordWidth) {
  if (rl.fromAlu < 0) return nodeRange(idx.d->graph->node(rl.signal), wordWidth);
  return opInterval(idx, rl.signal, in, wordWidth);
}

// ------------------------------------------------------------- the lattice

RangeState bottomState(std::size_t numRegs, int wordWidth) {
  RangeState s;
  s.reached = false;
  s.regs.assign(numRegs, undefFact(wordWidth));
  return s;
}

/// Join (may-union) of two states. A register defined on only one incoming
/// path is undefined at the join — its concrete value may be garbage — and
/// undefined facts normalize to the full range so equality is canonical.
RangeState joinStates(const RangeState& a, const RangeState& b,
                      int wordWidth) {
  if (!a.reached) return b;
  if (!b.reached) return a;
  RangeState j;
  j.reached = true;
  j.regs.resize(a.regs.size());
  for (std::size_t r = 0; r < a.regs.size(); ++r) {
    if (a.regs[r].defined && b.regs[r].defined)
      j.regs[r] = RegFact{true, Interval::join(a.regs[r].val, b.regs[r].val)};
    else
      j.regs[r] = undefFact(wordWidth);
  }
  return j;
}

/// State-0 facts: primary-input preloads are defined with their declared
/// input ranges; everything else is garbage.
RangeState entryState(const StepIndex& idx, int wordWidth) {
  RangeState s = bottomState(idx.numRegs, wordWidth);
  s.reached = true;
  for (const rtl::RegLoad* rl : idx.loads[0]) {
    const auto r = static_cast<std::size_t>(rl->reg);
    const Interval v = nodeRange(idx.d->graph->node(rl->signal), wordWidth);
    s.regs[r] = s.regs[r].defined
                    ? RegFact{true, Interval::join(s.regs[r].val, v)}
                    : RegFact{true, v};
  }
  return s;
}

/// Apply state `step`'s latches to the incoming facts. Several writers of
/// one register in the same step (exclusive branches folded into one row)
/// leave it holding any of their values: the join.
RangeState applyLatches(const StepIndex& idx, int step, RangeState in,
                        int wordWidth) {
  const auto& ls = idx.loads[static_cast<std::size_t>(step)];
  for (std::size_t i = 0; i < ls.size();) {
    std::size_t j = i;
    Interval v{0, 0};
    while (j < ls.size() && ls[j]->reg == ls[i]->reg) {
      const Interval lv = latchInterval(idx, *ls[j], in, wordWidth);
      v = j == i ? lv : Interval::join(v, lv);
      ++j;
    }
    in.regs[static_cast<std::size_t>(ls[i]->reg)] = RegFact{true, v};
    i = j;
  }
  return in;
}

// ------------------------------------------------------------ the fixpoint

/// Join/may interval dataflow over the (refined) reachable step graph.
/// Bottom is `reached == false`; unreachable states keep it (their
/// dependence list is empty and they are not state 0), so they never leak
/// facts into reachable joins. Widening at FSM loop heads: a bound still
/// moving after the revisit budget is forced to its extreme, which caps
/// convergence at two widenings per register per loop instead of one lap
/// per representable value.
struct RangeProductDomain {
  using Value = RangeState;

  const StepIndex* idx;
  int wordWidth;

  Value initial(int node) const {
    return node == 0 ? entryState(*idx, wordWidth)
                     : bottomState(idx->numRegs, wordWidth);
  }
  Value transfer(int node, const std::vector<Value>& deps) const {
    if (node == 0) return entryState(*idx, wordWidth);
    Value in = bottomState(idx->numRegs, wordWidth);
    for (const Value& d : deps) in = joinStates(in, d, wordWidth);
    if (!in.reached) return in;
    return applyLatches(*idx, node, std::move(in), wordWidth);
  }
  Value widen(const Value& previous, const Value& next) const {
    if (!previous.reached) return next;
    if (!next.reached) return previous;
    const Word mask = sim::maskFor(wordWidth);
    Value w = next;
    for (std::size_t r = 0; r < w.regs.size(); ++r) {
      if (!w.regs[r].defined) continue;
      if (!previous.regs[r].defined) continue;
      const Interval& p = previous.regs[r].val;
      Interval& v = w.regs[r].val;
      v.lo = v.lo < p.lo ? 0 : p.lo;
      v.hi = v.hi > p.hi ? mask : p.hi;
    }
    return w;
  }
};

/// Incoming facts of a state: the join of its predecessors' solved
/// out-states (state 0 has none; its out-state is the entry itself).
RangeState inStateOf(int s, const ReachResult& reach, const StepIndex& idx,
                     const std::vector<RangeState>& out, int wordWidth) {
  RangeState in = bottomState(idx.numRegs, wordWidth);
  for (int p : reach.preds[static_cast<std::size_t>(s)])
    in = joinStates(in, out[static_cast<std::size_t>(p)], wordWidth);
  return in;
}

// ------------------------------------------------- reachability refinement

/// An edge is taken iff its condition signal is nonzero, so a condition the
/// DFG-level interval analysis decides prunes edges: range [0, 0] kills the
/// conditional edge itself; a range excluding 0 kills the unconditional
/// siblings of the same state (the branch always leaves). DFG-level ranges
/// over-approximate the signal's value at every cycle — independent of
/// which register carries it when — so every pruning is a proof.
void pruneDecidedEdges(const rtl::ControllerFsm& fsm, const dfg::Dfg& g,
                       const std::vector<Interval>& dfgRanges,
                       rtl::ControllerFsm& refined,
                       std::vector<PrunedEdge>& pruned) {
  if (fsm.edges.empty()) return;  // implicit linear chain: nothing to decide
  std::vector<char> drop(fsm.edges.size(), 0);
  for (std::size_t i = 0; i < fsm.edges.size(); ++i) {
    const rtl::StepEdge& e = fsm.edges[i];
    if (e.cond == dfg::kNoNode || e.cond >= dfgRanges.size()) continue;
    const Interval c = dfgRanges[e.cond];
    if (c.hi == 0) {
      drop[i] = 1;
      pruned.push_back(
          {e, util::format("cond '%s' is always 0: edge %d -> %d never taken",
                           g.node(e.cond).name.c_str(), e.from, e.to)});
    } else if (c.lo >= 1) {
      for (std::size_t k = 0; k < fsm.edges.size(); ++k) {
        const rtl::StepEdge& f = fsm.edges[k];
        if (drop[k] || f.from != e.from || f.cond != dfg::kNoNode) continue;
        drop[k] = 1;
        pruned.push_back(
            {f, util::format("cond '%s' of the sibling branch is never 0 "
                             "(range %s): fallthrough %d -> %d never taken",
                             g.node(e.cond).name.c_str(),
                             formatInterval(c).c_str(), f.from, f.to)});
      }
    }
  }
  refined = fsm;
  if (pruned.empty()) return;
  std::size_t w = 0;
  for (std::size_t i = 0; i < refined.edges.size(); ++i)
    if (!drop[i]) refined.edges[w++] = refined.edges[i];
  refined.edges.resize(w);
  // Never let the refined edge set collapse to empty: successorsOf would
  // fall back to the implicit linear chain and resurrect every pruned
  // transfer. A lone halt sentinel keeps the vector non-empty and the
  // machine parked at reset, which is exactly what "every edge is proven
  // untaken" means.
  if (refined.edges.empty()) refined.edges.push_back({0, 0, dfg::kNoNode});
}

// ------------------------------------------------------------ per-state scan

struct StateFindings {
  std::vector<Diagnostic> diags;
};

/// WID001 / WID002 / WID003 for one refined-reachable state. Pure in `s`,
/// so the parallel scan can fill slots in any order.
StateFindings scanState(int s, const StepIndex& idx, const ReachResult& reach,
                        const std::vector<RangeState>& out,
                        const std::vector<rtl::DeclaredWidth>& regWidths,
                        const std::vector<rtl::DeclaredWidth>& aluWidths,
                        int wordWidth) {
  StateFindings f;
  const dfg::Dfg& g = *idx.d->graph;
  const RangeState in = inStateOf(s, reach, idx, out, wordWidth);

  // WID003 / WID002: every issued operation's inferred result range against
  // its own declared width, or — when it declares none — against the width
  // its ALU's shared output line inherited from a declaring co-tenant.
  for (const rtl::MicroOp* m : idx.issues[static_cast<std::size_t>(s)]) {
    const dfg::Node& n = g.node(m->op);
    const Interval rv = opInterval(idx, m->op, in, wordWidth);
    if (n.width > 0 && n.width <= 64) {
      if (rv.hi > sim::maskFor(n.width)) {
        Diagnostic d = diag(
            kWidDeclaredWidthOverflow, EntityKind::Node,
            at(n.name, s, m->alu),
            util::format("'%s' can overflow its declared width=%d in state "
                         "%d: inferred range %s needs %d bit(s)",
                         n.name.c_str(), n.width, s,
                         formatInterval(rv).c_str(), rv.widthNeeded()),
            "widen the declaration or constrain the operand ranges");
        d.provenance.push_back(formatPath(reach.pathFromReset(s)));
        d.provenance.push_back(util::format(
            "'%s' issued on ALU%d in state %d", n.name.c_str(), m->alu, s));
        f.diags.push_back(std::move(d));
      }
    } else if (n.width == 0) {
      const auto a = static_cast<std::size_t>(m->alu);
      if (a < aluWidths.size() && aluWidths[a].width > 0 &&
          rv.hi > sim::maskFor(aluWidths[a].width)) {
        const dfg::Node& tenant = g.node(aluWidths[a].tenant);
        Diagnostic d = diag(
            kWidSharedLineOverflow, EntityKind::Alu,
            at(n.name, s, m->alu),
            util::format("ALU%d's shared output line truncates '%s' in state "
                         "%d: range %s needs %d bit(s) but the line is %d "
                         "bit(s) wide",
                         m->alu, n.name.c_str(), s,
                         formatInterval(rv).c_str(), rv.widthNeeded(),
                         aluWidths[a].width),
            util::format("declare width= on '%s' or rebind it away from the "
                         "narrow line",
                         n.name.c_str()));
        d.provenance.push_back(formatPath(reach.pathFromReset(s)));
        d.provenance.push_back(util::format(
            "'%s' issued on ALU%d in state %d", n.name.c_str(), m->alu, s));
        d.provenance.push_back(util::format(
            "line sized to %d bit(s) by declared tenant '%s'",
            aluWidths[a].width, tenant.name.c_str()));
        f.diags.push_back(std::move(d));
      }
    }
  }

  // WID001: the value latched at the end of this state against the declared
  // size of the destination register.
  const auto& ls = idx.loads[static_cast<std::size_t>(s)];
  for (std::size_t i = 0; i < ls.size();) {
    std::size_t j = i;
    Interval sv{0, 0};
    while (j < ls.size() && ls[j]->reg == ls[i]->reg) {
      const Interval lv = latchInterval(idx, *ls[j], in, wordWidth);
      sv = j == i ? lv : Interval::join(sv, lv);
      ++j;
    }
    const auto reg = static_cast<std::size_t>(ls[i]->reg);
    if (reg < regWidths.size() && regWidths[reg].width > 0 &&
        sv.hi > sim::maskFor(regWidths[reg].width)) {
      const dfg::Node& tenant = g.node(regWidths[reg].tenant);
      std::vector<std::string> names;
      for (std::size_t a = i; a < j; ++a)
        names.push_back(g.node(ls[a]->signal).name);
      Diagnostic d = diag(
          kWidTruncatingWrite, EntityKind::Register,
          at(names[0], s, ls[i]->reg),
          util::format("latching '%s' into R%d truncates in state %d: range "
                       "%s needs %d bit(s) but R%d is %d bit(s) wide",
                       util::join(names, ", ").c_str(), ls[i]->reg, s,
                       formatInterval(sv).c_str(), sv.widthNeeded(),
                       ls[i]->reg, regWidths[reg].width),
          "widen the sizing tenant's width= or split the shared register");
      d.provenance.push_back(formatPath(reach.pathFromReset(s)));
      for (std::size_t a = i; a < j; ++a)
        d.provenance.push_back(util::format(
            "'%s' latched into R%d from %s, range %s",
            names[a - i].c_str(), ls[a]->reg,
            ls[a]->fromAlu < 0
                ? "a primary input"
                : util::format("ALU%d", ls[a]->fromAlu).c_str(),
            formatInterval(latchInterval(idx, *ls[a], in, wordWidth))
                .c_str()));
      d.provenance.push_back(util::format(
          "R%d sized to %d bit(s) by declared tenant '%s'", ls[i]->reg,
          regWidths[reg].width, tenant.name.c_str()));
      f.diags.push_back(std::move(d));
    }
    i = j;
  }
  return f;
}

// ----------------------------------------------------------- global checks

/// The mux selects exercised on the reachable states of `reach`:
/// used[alu][0 = left / 1 = right][select].
std::vector<std::array<std::vector<char>, 2>> usedSelects(
    const StepIndex& idx, const ReachResult& reach) {
  const std::size_t numAlus = idx.d->alus.size();
  std::vector<std::array<std::vector<char>, 2>> used(numAlus);
  for (std::size_t a = 0; a < numAlus; ++a) {
    used[a][0].assign(idx.d->leftPort[a].sources.size(), 0);
    used[a][1].assign(idx.d->rightPort[a].sources.size(), 0);
  }
  for (int s = 1; s < reach.numStates; ++s) {
    if (!reach.reachable[static_cast<std::size_t>(s)]) continue;
    for (const rtl::MicroOp* m : idx.issues[static_cast<std::size_t>(s)])
      for (const PortRead& r : readsOf(idx, *m)) {
        const auto a = static_cast<std::size_t>(m->alu);
        const std::size_t side = r.port[0] == 'l' ? 0 : 1;
        const std::size_t sel =
            r.select >= 0 ? static_cast<std::size_t>(r.select) : 0;
        if (sel < used[a][side].size()) used[a][side][sel] = 1;
      }
  }
  return used;
}

/// WID004: mux data inputs that symbolic reachability keeps alive but the
/// value analysis proves dead — every state selecting them fell to pruning.
/// AUD004 cannot see these (it runs on the over-approximation); this rule is
/// the refinement dividend.
void checkValueDeadMuxInputs(const StepIndex& idx, const ReachResult& over,
                             const ReachResult& refined, LintReport& report) {
  const dfg::Dfg& g = *idx.d->graph;
  const auto usedOver = usedSelects(idx, over);
  const auto usedRefined = usedSelects(idx, refined);
  for (std::size_t a = 0; a < usedOver.size(); ++a)
    for (std::size_t side = 0; side < 2; ++side) {
      const alloc::PortWiring& w =
          side == 0 ? idx.d->leftPort[a] : idx.d->rightPort[a];
      if (w.sources.size() < 2) continue;  // no mux on this port
      for (std::size_t sel = 0; sel < w.sources.size(); ++sel) {
        if (!usedOver[a][side][sel] || usedRefined[a][side][sel]) continue;
        const char* port = side == 0 ? "left" : "right";
        Diagnostic d = diag(
            kWidValueDeadMuxInput, EntityKind::Port,
            at("", -1, static_cast<int>(a),
               util::format("%s select %zu", port, sel)),
            util::format("mux input %zu of ALU%zu's %s port (%s) is only "
                         "selected in states the value analysis proved "
                         "unreachable",
                         sel, a, port, w.sources[sel].toString(g).c_str()),
            "drop the wire or revisit the decided branch condition");
        for (int s = 1; s < over.numStates; ++s) {
          if (!over.reachable[static_cast<std::size_t>(s)] ||
              refined.reachable[static_cast<std::size_t>(s)])
            continue;
          for (const rtl::MicroOp* m : idx.issues[static_cast<std::size_t>(s)])
            if (static_cast<std::size_t>(m->alu) == a)
              for (const PortRead& r : readsOf(idx, *m))
                if ((r.port[0] == 'l' ? 0u : 1u) == side &&
                    (r.select >= 0 ? static_cast<std::size_t>(r.select)
                                   : 0u) == sel)
                  d.provenance.push_back(util::format(
                      "selected by '%s' in value-dead state %d",
                      g.node(m->op).name.c_str(), s));
        }
        report.add(std::move(d));
      }
    }
}

/// WID005: user `.bind` assertions against the fixpoint. An assertion holds
/// when, in every refined-reachable state where the register carries a
/// defined value, the inferred interval stays inside [min, max] (and inside
/// the asserted width, when given).
void checkAsserts(const StepIndex& idx, const ReachResult& refined,
                  const std::vector<RangeState>& out,
                  const std::vector<RegAssert>& asserts, LintReport& report) {
  for (const RegAssert& a : asserts) {
    if (a.reg < 0 || static_cast<std::size_t>(a.reg) >= idx.numRegs) {
      Diagnostic d =
          diag(kWidAssertViolated, EntityKind::Register,
               at("", -1, a.reg, ""),
               util::format("assertion names R%d but the design has %zu "
                            "register(s)",
                            a.reg, idx.numRegs),
               "fix the assert's reg= index");
      d.loc.line = a.line;
      report.add(std::move(d));
      continue;
    }
    for (int s = 0; s < refined.numStates; ++s) {
      if (!refined.reachable[static_cast<std::size_t>(s)]) continue;
      const RegFact& f =
          out[static_cast<std::size_t>(s)].regs[static_cast<std::size_t>(a.reg)];
      if (!f.defined) continue;
      const bool widthBad =
          a.width > 0 && a.width <= 64 && f.val.hi > sim::maskFor(a.width);
      if (f.val.lo >= a.min && f.val.hi <= a.max && !widthBad) continue;
      Diagnostic d = diag(
          kWidAssertViolated, EntityKind::Register, at("", s, a.reg),
          widthBad && f.val.lo >= a.min && f.val.hi <= a.max
              ? util::format("assertion violated: R%d holds %s in state %d, "
                             "which needs %d bit(s) but width=%d was asserted",
                             a.reg, formatInterval(f.val).c_str(), s,
                             f.val.widthNeeded(), a.width)
              : util::format("assertion violated: R%d holds %s in state %d, "
                             "outside the asserted [%llu, %llu]",
                             a.reg, formatInterval(f.val).c_str(), s,
                             static_cast<unsigned long long>(a.min),
                             static_cast<unsigned long long>(a.max)),
          "tighten the producing operations or correct the assertion");
      d.loc.line = a.line;
      d.provenance.push_back(formatPath(refined.pathFromReset(s)));
      d.provenance.push_back(
          util::format("assert declared at .bind line %d", a.line));
      report.add(std::move(d));
      break;  // first offending state witnesses the violation
    }
  }
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

RangeResult analyzeDesignRanges(const rtl::Datapath& d,
                                const rtl::ControllerFsm& fsm,
                                const rtl::MicrocodeRom& rom,
                                const RangeOptions& opt) {
  const trace::Span span("range");
  (void)rom;  // the ROM is the FSM re-encoded; the FSM is the richer view

  RangeResult r;
  const StepIndex idx(d, fsm);
  const int W = opt.wordWidth;
  r.reach = audit::reachSteps(fsm);

  // 1. Decide branch conditions with the DFG-level interval analysis and
  //    prune the edges the values refute; the product fixpoint and every
  //    proof below run on the refined graph.
  const std::vector<Interval> dfgRanges = dataflow::analyzeRanges(*d.graph, W);
  r.refinedFsm = fsm;
  pruneDecidedEdges(fsm, *d.graph, dfgRanges, r.refinedFsm, r.pruned);
  r.refined = r.pruned.empty() ? r.reach : audit::reachSteps(r.refinedFsm);

  // 2. The interval⊗defined fixpoint over the refined step graph, widened
  //    early at loop heads (intervals form a tall lattice; the default
  //    budget would crawl).
  int widenings = 0;
  const RangeProductDomain domain{&idx, W};
  auto solution = dataflow::solveGraph(
      r.refined.numStates, r.refined.preds, domain,
      dataflow::SolveGraphOptions{8, &widenings});
  r.values = std::move(solution.values);
  r.widenings = static_cast<std::uint64_t>(widenings);
  r.statesInterpreted =
      static_cast<std::uint64_t>(r.refined.reachableCount());

  // 3. Per-state width proofs, parallel over states; slots merge in step
  //    order so the report and every range.* counter are identical for any
  //    jobs value.
  const std::vector<rtl::DeclaredWidth> regWidths = declaredRegisterWidths(d);
  const std::vector<rtl::DeclaredWidth> aluWidths = declaredAluWidths(d);
  std::vector<StateFindings> slots(
      static_cast<std::size_t>(r.refined.numStates));
  explore::parallelFor(r.refined.numStates - 1, opt.jobs, [&](int i) {
    const int s = i + 1;
    if (r.refined.reachable[static_cast<std::size_t>(s)])
      slots[static_cast<std::size_t>(s)] =
          scanState(s, idx, r.refined, r.values, regWidths, aluWidths, W);
  });
  for (int s = 1; s < r.refined.numStates; ++s)
    for (Diagnostic& d2 : slots[static_cast<std::size_t>(s)].diags)
      r.report.add(std::move(d2));

  // 4. Global checks on top of the merged per-state findings.
  if (!r.pruned.empty())
    checkValueDeadMuxInputs(idx, r.reach, r.refined, r.report);
  checkAsserts(idx, r.refined, r.values, opt.asserts, r.report);
  r.assertsChecked = opt.asserts.size();

  trace::bump(trace::Counter::RangeStates, r.statesInterpreted);
  trace::bump(trace::Counter::RangeWidenings, r.widenings);
  trace::bump(trace::Counter::RangeAsserts, r.assertsChecked);
  trace::bump(trace::Counter::RangeFindings,
              static_cast<std::uint64_t>(r.report.size()));
  return r;
}

audit::AuditResult auditRefined(const RangeResult& r, const rtl::Datapath& d,
                                const rtl::MicrocodeRom& rom,
                                const audit::AuditOptions& opt) {
  audit::AuditOptions o = opt;
  if (!r.pruned.empty()) {
    o.provenDead.assign(static_cast<std::size_t>(r.reach.numStates), 0);
    for (int s = 0; s < r.reach.numStates; ++s)
      if (r.reach.reachable[static_cast<std::size_t>(s)] &&
          !r.refined.reachable[static_cast<std::size_t>(s)])
        o.provenDead[static_cast<std::size_t>(s)] = 1;
  }
  return audit::auditDesign(d, r.refinedFsm, rom, o);
}

std::string renderRangeJson(const RangeResult& r, const dfg::Dfg& g) {
  std::string out = "{\n";
  out += "  \"schema\": 1,\n";
  out += "  \"design\": \"" + jsonEscape(g.name()) + "\",\n";
  out += util::format("  \"states\": %d,\n", r.reach.numStates);
  out += util::format("  \"reachableStates\": %d,\n",
                      r.reach.reachableCount());
  out += util::format("  \"refinedReachableStates\": %d,\n",
                      r.refined.reachableCount());
  out += "  \"prunedEdges\": [";
  for (std::size_t i = 0; i < r.pruned.size(); ++i) {
    const PrunedEdge& p = r.pruned[i];
    out += i == 0 ? "\n" : ",\n";
    out += util::format(
        "    {\"from\": %d, \"to\": %d, \"cond\": \"%s\", \"reason\": "
        "\"%s\"}",
        p.edge.from, p.edge.to,
        p.edge.cond == dfg::kNoNode
            ? ""
            : jsonEscape(g.node(p.edge.cond).name).c_str(),
        jsonEscape(p.reason).c_str());
  }
  out += r.pruned.empty() ? "],\n" : "\n  ],\n";
  out += util::format("  \"widenings\": %llu,\n",
                      static_cast<unsigned long long>(r.widenings));
  out += util::format("  \"assertsChecked\": %llu,\n",
                      static_cast<unsigned long long>(r.assertsChecked));
  // Each register's interval joined over the refined-reachable states where
  // it carries a defined value.
  const std::size_t numRegs =
      r.values.empty() ? 0 : r.values[0].regs.size();
  out += "  \"registers\": [";
  for (std::size_t reg = 0; reg < numRegs; ++reg) {
    bool defined = false;
    Interval v{0, 0};
    for (int s = 0; s < r.refined.numStates; ++s) {
      if (!r.refined.reachable[static_cast<std::size_t>(s)]) continue;
      const RegFact& f = r.values[static_cast<std::size_t>(s)].regs[reg];
      if (!f.defined) continue;
      v = defined ? Interval::join(v, f.val) : f.val;
      defined = true;
    }
    out += reg == 0 ? "\n" : ",\n";
    if (defined)
      out += util::format(
          "    {\"reg\": %zu, \"defined\": true, \"lo\": %llu, \"hi\": "
          "%llu, \"widthNeeded\": %d}",
          reg, static_cast<unsigned long long>(v.lo),
          static_cast<unsigned long long>(v.hi), v.widthNeeded());
    else
      out += util::format("    {\"reg\": %zu, \"defined\": false}", reg);
  }
  out += numRegs == 0 ? "],\n" : "\n  ],\n";
  out += "  \"lint\": " + r.report.renderJson(g.name());
  out += "\n}\n";
  return out;
}

std::string renderRangeSummary(const RangeResult& r) {
  std::string out = util::format(
      "range: %d/%d states reachable (%d refined), %zu pruned edge(s), "
      "%llu widening(s), %llu assert(s)",
      r.reach.reachableCount(), r.reach.numStates,
      r.refined.reachableCount(), r.pruned.size(),
      static_cast<unsigned long long>(r.widenings),
      static_cast<unsigned long long>(r.assertsChecked));
  if (r.clean()) return out + ", clean";
  return out + util::format(", %zu finding(s)", r.report.size());
}

}  // namespace mframe::analysis::range
