// User range assertions over registers — the `.bind` `assert` statement's
// parsed form. Kept in its own header so the .bind parser (validate/) can
// carry assertions on a BoundDesign without pulling in the whole range
// analysis, and the range analysis can check them without seeing the parser.
#pragma once

#include "sim/eval.h"

namespace mframe::analysis::range {

/// `assert reg=<r> min=<a> max=<b> [width=<w>]`: register `reg` must hold
/// only values in [min, max] (and fitting `width` bits when declared) in
/// every reachable controller state where it is defined.
struct RegAssert {
  int reg = 0;
  sim::Word min = 0;
  sim::Word max = 0;
  int width = 0;  ///< 0 = no width constraint
  int line = 0;   ///< 1-based .bind source line (0 = programmatic)
};

}  // namespace mframe::analysis::range
