// Interval abstract interpretation over the FSM×datapath product: width and
// overflow safety proofs for shared resources, plus value-driven
// reachability refinement.
//
// MFSA's whole point is aggressive sharing — one ALU, register or output
// line serves many DFG operations — but sharing is only safe when every
// tenant's value fits the line the declarations sized. This analysis solves,
// per controller state, an interval⊗defined lattice for every register
// (PR 4's interval domain, widened at FSM loop heads) over the reachable
// step graph, propagating through ALU opcodes, mux routing and chained
// ALU-output operands. On the fixpoint it proves five obligations:
//
//   WID001  register write truncates (value needs more bits than the
//           register's declared tenants provide)
//   WID002  shared-ALU result exceeds the output line's declared width
//   WID003  operation's inferred range can overflow its declared width=
//   WID004  mux data input selected only in states value analysis proves
//           unreachable
//   WID005  user `.bind` assertion (`assert reg= min= max= [width=]`)
//           violated by the fixpoint
//
// Each finding carries state+step+register provenance and a witness reset
// path. Reachability refinement: a branch edge whose condition interval is
// decided (constant zero: never taken; excludes zero: always taken, so
// unconditional siblings fall) is pruned, the fixpoint re-runs on the
// refined graph, and the PR 7 audit can be replayed on it — AUD false
// positives on value-dead states disappear (auditRefined suppresses AUD001
// on states this analysis proved dead on purpose).
//
// Deterministic: the per-state scan parallelizes over `jobs` workers but
// merges findings in step order and bumps the range.* counters once after
// the merge, so reports and counters are bit-identical for every jobs value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/audit/audit.h"
#include "analysis/audit/reach.h"
#include "analysis/dataflow/lattice.h"
#include "analysis/diagnostic.h"
#include "analysis/range/assert.h"
#include "rtl/controller.h"
#include "rtl/datapath.h"
#include "rtl/microcode.h"

namespace mframe::analysis::range {

struct RangeOptions {
  int jobs = 1;        ///< workers for the per-state scan (results identical)
  int wordWidth = 16;  ///< analysis word width (same default as analyze)
  std::vector<RegAssert> asserts;  ///< user assertions (from .bind)
};

/// One register's abstract value in one controller state. `defined` means a
/// value was stored on every path from reset; an undefined register reads as
/// the full word range (garbage), which keeps every width proof sound.
struct RegFact {
  bool defined = false;
  dataflow::Interval val{0, 0};

  bool operator==(const RegFact&) const = default;
};

/// Per-state register facts. `reached` distinguishes the join identity
/// (no path computed yet / state unreachable) from real facts.
struct RangeState {
  bool reached = false;
  std::vector<RegFact> regs;

  bool operator==(const RangeState&) const = default;
};

/// A branch edge the analysis proved untaken, with the deciding interval.
struct PrunedEdge {
  rtl::StepEdge edge;
  std::string reason;  ///< e.g. "cond 'k' is constant 0 at state 2"
};

struct RangeResult {
  LintReport report;  ///< WID findings
  audit::ReachResult reach;    ///< over-approximate (all branch edges taken)
  audit::ReachResult refined;  ///< after pruning decided edges
  rtl::ControllerFsm refinedFsm;  ///< fsm with pruned edges removed
  std::vector<PrunedEdge> pruned;
  /// Final per-state out-facts on the refined graph, indexed by state.
  std::vector<RangeState> values;
  std::uint64_t statesInterpreted = 0;  ///< refined-reachable states walked
  std::uint64_t widenings = 0;          ///< loop-head widenings applied
  std::uint64_t assertsChecked = 0;

  bool clean() const { return report.empty(); }
};

/// Analyze a complete synthesis artifact. Pure apart from the range.*
/// counters (bumped once, post-merge).
RangeResult analyzeDesignRanges(const rtl::Datapath& d,
                                const rtl::ControllerFsm& fsm,
                                const rtl::MicrocodeRom& rom,
                                const RangeOptions& opt = {});

/// Re-run the PR 7 audit on the refined step graph: value-dead states are
/// passed as proven-dead so AUD001 stays quiet about them, and findings
/// that only lived on pruned paths disappear.
audit::AuditResult auditRefined(const RangeResult& r, const rtl::Datapath& d,
                                const rtl::MicrocodeRom& rom,
                                const audit::AuditOptions& opt = {});

/// The `range --json` document: {"schema": 1, "design": ..., "states": N,
/// "reachableStates": M, "refinedReachableStates": K, "prunedEdges": [...],
/// "widenings": W, "assertsChecked": A, "registers": [...], "lint": ...}.
/// `registers` summarizes each register's interval joined over all refined-
/// reachable states where it is defined.
std::string renderRangeJson(const RangeResult& r, const dfg::Dfg& g);

/// One-line human summary.
std::string renderRangeSummary(const RangeResult& r);

}  // namespace mframe::analysis::range
