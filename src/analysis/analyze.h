// mframe analyze — the one-call orchestrator behind the CLI subcommand and
// the golden-output tests: run the dataflow passes (OPT family) over a
// design, then synthesize a datapath with MFS + column binding and audit it
// with the static timing analyzer (TIM family). The combined LintReport
// renders through the standard diagnostics JSON, so `analyze --json` output
// is byte-identical across runs and machines.
#pragma once

#include <string>

#include "analysis/dataflow/analyze.h"
#include "analysis/timing/sta.h"
#include "celllib/cell_library.h"
#include "sched/schedule.h"
#include "sched/slack.h"

namespace mframe::analysis {

struct AnalyzeOptions {
  dataflow::DataflowOptions dataflow;

  /// Synthesize and time the design. When false only the OPT passes run.
  bool runTiming = true;
  /// Control-step budget for the MFS schedule backing the STA; 0 uses the
  /// design's critical path (the tightest chaining-free budget).
  int steps = 0;
  /// Scheduling features for the backing schedule (chaining, resource
  /// limits, clock). `clockSet` records whether the user constrained the
  /// clock — unset clocks keep the 100 ns default for arithmetic but route
  /// chained paths to TIM002 instead of TIM001/TIM004.
  sched::Constraints constraints;
  bool clockSet = false;
  timing::DelayModel model;
  double nearCriticalFraction = 0.9;
};

struct AnalyzeResult {
  dataflow::DataflowResult dataflow;
  bool timingRan = false;
  std::string timingSkip;  ///< why timing did not run ("" when it did)
  timing::TimingReport timing;
  /// Schedule slack over the backing MFS schedule (the tune loop's
  /// convergence witness); valid only when slackRan.
  bool slackRan = false;
  sched::SlackReport slack;
  LintReport report;  ///< OPT + TIM, in that order

  /// Human-readable summary (pass counts, timing table, diagnostics).
  std::string renderText(const dfg::Dfg& g) const;
};

/// Analyze `g` against `lib`. Never throws on infeasible schedules — the
/// timing stage records its skip reason instead, leaving the OPT results
/// intact.
AnalyzeResult analyzeDesign(const dfg::Dfg& g, const celllib::CellLibrary& lib,
                            const AnalyzeOptions& opts);

}  // namespace mframe::analysis
