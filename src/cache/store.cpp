#include "cache/store.h"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <system_error>

#include "util/strings.h"

namespace mframe::cache {

namespace fs = std::filesystem;

namespace {

std::string hexKey(std::uint64_t a, std::uint64_t b) {
  return util::format("%016llx-%016llx", static_cast<unsigned long long>(a),
                      static_cast<unsigned long long>(b));
}

std::optional<std::string> readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string text{std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>()};
  if (in.bad()) return std::nullopt;
  return text;
}

/// Write-then-rename; readers either see the old complete file or the new
/// complete file, never a partial write. The temp name carries a process-
/// unique counter so concurrent writers in one process don't collide.
bool writeAtomic(const std::string& path, const std::string& text) {
  static std::atomic<unsigned> seq{0};
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) return false;
  const std::string tmp =
      path + util::format(".tmp%u", seq.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << text;
    out.flush();
    if (!out) {
      fs::remove(tmp, ec);
      return false;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace

SynthCache::SynthCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec)
    throw std::runtime_error("cache: cannot create directory '" + dir_ +
                             "': " + ec.message());
}

SynthCache::Memo* SynthCache::memo() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memo_.get();
}

SynthCache::Memo* SynthCache::installMemo(std::unique_ptr<Memo> m) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!memo_) memo_ = std::move(m);
  return memo_.get();
}

std::string SynthCache::entryPath(std::string_view kind, std::uint64_t design,
                                  std::uint64_t env) const {
  return dir_ + "/" + std::string(kind) + "/" + hexKey(design, env) + ".entry";
}

std::string SynthCache::latestPath(std::string_view kind,
                                   std::uint64_t nameDigest,
                                   std::uint64_t env) const {
  return dir_ + "/" + std::string(kind) + "/latest/" +
         hexKey(nameDigest, env) + ".entry";
}

std::optional<std::string> SynthCache::load(std::string_view kind,
                                            std::uint64_t design,
                                            std::uint64_t env) const {
  std::lock_guard<std::mutex> lock(mu_);
  return readFile(entryPath(kind, design, env));
}

bool SynthCache::store(std::string_view kind, std::uint64_t design,
                       std::uint64_t env, std::uint64_t nameDigest,
                       const std::string& text) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!writeAtomic(entryPath(kind, design, env), text)) return false;
  // The latest-index duplicates the entry text (entries are a few KB) so a
  // lookup is one read with no indirection to a maybe-evicted file.
  writeAtomic(latestPath(kind, nameDigest, env), text);
  return true;
}

void SynthCache::invalidate(std::string_view kind, std::uint64_t design,
                            std::uint64_t env) {
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  fs::remove(entryPath(kind, design, env), ec);
}

std::optional<std::string> SynthCache::loadLatest(std::string_view kind,
                                                  std::uint64_t nameDigest,
                                                  std::uint64_t env) const {
  std::lock_guard<std::mutex> lock(mu_);
  return readFile(latestPath(kind, nameDigest, env));
}

namespace {
std::atomic<SynthCache*> gActiveCache{nullptr};
}  // namespace

void setActiveCache(SynthCache* c) {
  gActiveCache.store(c, std::memory_order_release);
}

SynthCache* activeCache() {
  return gActiveCache.load(std::memory_order_acquire);
}

}  // namespace mframe::cache
