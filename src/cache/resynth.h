// Cache-aware synthesis entry points and incremental resynthesis.
//
// cachedRunMfs / cachedRunMfsa are drop-in replacements for core::runMfs /
// core::runMfsa that consult the process-wide SynthCache (cache/store.h)
// when one is installed, and fall through to the engines otherwise. The
// contract:
//
//  * **Hit** — an entry exists for (design fingerprint, environment digest).
//    The stored placements (and, for MFSA, the ALU binding) are re-hosted
//    onto the live graph and re-verified with the independent checkers
//    (sched::verifySchedule / rtl::verifyDatapath). A verified replay
//    reproduces the engine's result bit-for-bit — same schedule, same FU
//    counts, same datapath and cost, same restart count — without running
//    the scheduler. Verification doubles as the collision/stale-entry
//    guard: a replay that fails is invalidated and treated as a miss.
//
//  * **Miss + incremental** — no entry for the current content, but the
//    cache holds a previous result for the same design *name* under the
//    same environment (time-constrained MFS only). The old and new graphs
//    are diffed by signal name; the changed operations seed a K-hop cone
//    (dfg::extractCone) that is re-scheduled under the base schedule's FU
//    budget and stitched back (sched::stitchSchedule, which re-verifies).
//    The result is a *valid* schedule reached in cone-sized work instead of
//    design-sized work; it is stored like any other entry.
//
//  * **Miss** — the engine runs; feasible, verification-clean results are
//    stored for next time.
//
// Results replayed from cache carry an empty Liapunov trace and (MFSA) an
// empty per-operation term breakdown — those describe the engine's
// trajectory, not the design, and no CLI output depends on them.
//
// Every path bumps the trace counters cache.{hits,misses,stores,
// invalidations,incrementalHits}, which therefore stay deterministic across
// --jobs (commutative sums, like every other counter).
#pragma once

#include <optional>
#include <string>

#include "core/mfs.h"
#include "core/mfsa.h"

namespace mframe::cache {

core::MfsResult cachedRunMfs(const dfg::Dfg& g, const core::MfsOptions& opt);

core::MfsaResult cachedRunMfsa(const dfg::Dfg& g,
                               const celllib::CellLibrary& lib,
                               const core::MfsaOptions& opt);

// ---- exposed for tests ---------------------------------------------------

/// Serialize a feasible MFS/MFSA result into the textual entry format
/// (`mframe-cache 1 kind=... design=...`; see docs/CACHE.md).
std::string encodeMfsEntry(const dfg::Dfg& g, const core::MfsResult& r,
                           const std::string& envText);
std::string encodeMfsaEntry(const dfg::Dfg& g, const core::MfsaResult& r,
                            const std::string& envText);

/// Re-host a stored entry onto `g` and re-verify it; nullopt when the entry
/// is malformed, names don't resolve, or verification finds any violation.
std::optional<core::MfsResult> replayMfsEntry(const dfg::Dfg& g,
                                              const core::MfsOptions& opt,
                                              const std::string& text);
std::optional<core::MfsaResult> replayMfsaEntry(const dfg::Dfg& g,
                                                const celllib::CellLibrary& lib,
                                                const core::MfsaOptions& opt,
                                                const std::string& text);

}  // namespace mframe::cache
