// Persistent content-addressed store for synthesis results.
//
// Layout under the cache directory (one file per entry, names are hex
// digests so the store needs no index):
//
//   <dir>/<kind>/<design16>-<env16>.entry          # content-addressed entry
//   <dir>/<kind>/latest/<name16>-<env16>.entry     # newest entry per design
//                                                  # *name* (incremental base)
//
// `kind` is "mfs" or "mfsa". The content-addressed file is keyed by the
// structural design fingerprint; the latest-index file is keyed by the digest
// of the design *name* only, so an edited design still finds its previous
// result to resynthesize incrementally from. Writes go through a temp file +
// rename, so concurrent processes and crashed runs never expose a torn
// entry; a same-key race ends with one winner's complete file, and both
// contents are equivalent by construction (same key == same inputs).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace mframe::cache {

class SynthCache {
 public:
  /// Opens (and creates if needed) the cache rooted at `dir`. Throws
  /// std::runtime_error if the directory cannot be created.
  explicit SynthCache(std::string dir);

  /// Opaque per-store slot for the replay layer's in-process memo of
  /// already-verified results (see cache/resynth.cpp). Owned by the store so
  /// its lifetime — and its identity — can never outlive or outlast the
  /// on-disk state it mirrors.
  struct Memo {
    virtual ~Memo() = default;
  };

  /// The installed memo, or nullptr before the replay layer's first use.
  Memo* memo() const;

  /// Installs `m` if no memo is present and returns the installed memo
  /// (the existing one wins a race, and `m` is discarded).
  Memo* installMemo(std::unique_ptr<Memo> m);

  const std::string& dir() const { return dir_; }

  /// Entry text for (kind, design, env), or nullopt on miss / unreadable.
  std::optional<std::string> load(std::string_view kind, std::uint64_t design,
                                  std::uint64_t env) const;

  /// Atomically store an entry and update the latest-index for
  /// `nameDigest`. Returns false on I/O failure (the cache degrades to
  /// misses, it never fails a synthesis run).
  bool store(std::string_view kind, std::uint64_t design, std::uint64_t env,
             std::uint64_t nameDigest, const std::string& text);

  /// Drop an entry whose replay failed verification (stale or colliding).
  void invalidate(std::string_view kind, std::uint64_t design,
                  std::uint64_t env);

  /// Newest entry stored for (design name, env), regardless of the design's
  /// current content — the base the incremental path diffs against.
  std::optional<std::string> loadLatest(std::string_view kind,
                                        std::uint64_t nameDigest,
                                        std::uint64_t env) const;

  /// Cone radius (dependency hops around each changed operation) for
  /// incremental resynthesis; see cache/resynth.h.
  int incrementalHops() const { return incrementalHops_; }
  void setIncrementalHops(int hops) { incrementalHops_ = hops; }

 private:
  std::string entryPath(std::string_view kind, std::uint64_t design,
                        std::uint64_t env) const;
  std::string latestPath(std::string_view kind, std::uint64_t nameDigest,
                         std::uint64_t env) const;

  std::string dir_;
  int incrementalHops_ = 2;
  std::unique_ptr<Memo> memo_;
  mutable std::mutex mu_;
};

/// Install `c` as the process-wide cache consulted by cachedRunMfs /
/// cachedRunMfsa (nullptr disables caching). The caller keeps ownership;
/// the CLI installs its cache for the lifetime of the run.
void setActiveCache(SynthCache* c);
SynthCache* activeCache();

}  // namespace mframe::cache
