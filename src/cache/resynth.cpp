#include "cache/resynth.h"

#include <algorithm>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "cache/fingerprint.h"
#include "cache/store.h"
#include "dfg/parser.h"
#include "dfg/transforms.h"
#include "rtl/bus.h"
#include "rtl/controller.h"
#include "rtl/cost.h"
#include "rtl/verify.h"
#include "sched/stitch.h"
#include "sched/verify.h"
#include "trace/trace.h"
#include "util/strings.h"

namespace mframe::cache {

namespace {

using dfg::NodeId;

// ------------------------------------------------------------ entry format

/// Decoded form of one cache entry (both kinds; unused fields stay empty).
struct Entry {
  std::string kind;
  std::string design;
  int steps = 0;
  int restarts = 0;
  std::map<dfg::FuType, int> fuCount;                  // mfs
  struct Alu {
    std::string module;
    int index = 0;
    std::vector<std::string> ops;
  };
  std::vector<Alu> alus;                               // mfsa
  std::vector<std::tuple<std::string, int, int>> places;  // (signal,step,col)
  std::string dfgText;
};

int smallInt(const std::string& tok) {
  const long v = util::parseLong(tok);
  return v >= 0 && v <= 1 << 24 ? static_cast<int>(v) : -1;
}

std::optional<Entry> decodeEntry(const std::string& text) {
  Entry e;
  bool sawHeader = false, inDfg = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (inDfg) {
      if (line == "dfg-end") {
        inDfg = false;
        continue;
      }
      e.dfgText += line;
      e.dfgText += '\n';
      continue;
    }
    const auto tok = util::splitWs(line);
    if (tok.empty()) continue;
    if (!sawHeader) {
      if (tok.size() != 4 || tok[0] != "mframe-cache" || tok[1] != "1")
        return std::nullopt;
      if (tok[2].rfind("kind=", 0) != 0 || tok[3].rfind("design=", 0) != 0)
        return std::nullopt;
      e.kind = tok[2].substr(5);
      e.design = tok[3].substr(7);
      sawHeader = true;
    } else if (tok[0] == "env") {
      // informational; the filename already encodes the digest
    } else if (tok[0] == "steps" && tok.size() == 2) {
      if ((e.steps = smallInt(tok[1])) < 1) return std::nullopt;
    } else if (tok[0] == "restarts" && tok.size() == 2) {
      if ((e.restarts = smallInt(tok[1])) < 0) return std::nullopt;
    } else if (tok[0] == "fu" && tok.size() == 3) {
      dfg::FuType t;
      if (!dfg::parseFuType(tok[1], t)) return std::nullopt;
      const int n = smallInt(tok[2]);
      if (n < 0) return std::nullopt;
      e.fuCount[t] = n;
    } else if (tok[0] == "alu" && tok.size() >= 3) {
      Entry::Alu a;
      a.module = tok[1];
      if ((a.index = smallInt(tok[2])) < 0) return std::nullopt;
      for (std::size_t i = 3; i < tok.size(); ++i) a.ops.push_back(tok[i]);
      e.alus.push_back(std::move(a));
    } else if (tok[0] == "place" && tok.size() == 4) {
      const int step = smallInt(tok[2]), col = smallInt(tok[3]);
      if (step < 1 || col < 1) return std::nullopt;
      e.places.emplace_back(tok[1], step, col);
    } else if (tok[0] == "dfg-begin") {
      inDfg = true;
    } else {
      return std::nullopt;
    }
  }
  if (!sawHeader || inDfg || e.steps < 1) return std::nullopt;
  return e;
}

std::string encodeCommon(const dfg::Dfg& g, std::string_view kind, int steps,
                         int restarts, const std::string& envText) {
  std::string out =
      util::format("mframe-cache 1 kind=%s design=%s\n",
                   std::string(kind).c_str(), g.name().c_str());
  out += "env " + envText + "\n";
  out += util::format("steps %d\nrestarts %d\n", steps, restarts);
  return out;
}

std::string encodePlaces(const dfg::Dfg& g, const sched::Schedule& s) {
  std::string out;
  for (NodeId id : g.operations())  // insertion order: deterministic
    out += util::format("place %s %d %d\n", g.node(id).name.c_str(),
                        s.stepOf(id), s.columnOf(id));
  return out;
}

/// Constraints to verify a replayed schedule against: the run's own
/// constraints with the time bound pinned to the entry's step count, so
/// resource-constrained results (timeSteps == 0 on the way in) verify
/// against what was actually achieved.
sched::Constraints verifyConstraints(const core::MfsOptions& opt, int steps) {
  sched::Constraints c = opt.constraints;
  if (c.timeSteps == 0) c.timeSteps = steps;
  return c;
}

/// Re-host stored (signal, step, column) placements onto `g`. Fails if any
/// signal is missing/unschedulable or the placement set is incomplete.
std::optional<sched::Schedule> rehost(const dfg::Dfg& g, const Entry& e) {
  sched::Schedule s(g);
  s.setNumSteps(e.steps);
  for (const auto& [name, step, col] : e.places) {
    const NodeId id = g.findByName(name);
    if (id == dfg::kNoNode || !dfg::isSchedulable(g.node(id).kind))
      return std::nullopt;
    if (s.isPlaced(id)) return std::nullopt;
    s.place(id, step, col);
  }
  if (s.placedCount() != g.operations().size()) return std::nullopt;
  return s;
}

}  // namespace

// ------------------------------------------------------------------ encode

std::string encodeMfsEntry(const dfg::Dfg& g, const core::MfsResult& r,
                           const std::string& envText) {
  std::string out = encodeCommon(g, "mfs", r.steps, r.restarts, envText);
  for (const auto& [t, n] : r.fuCount)  // std::map: sorted
    out += util::format("fu %s %d\n", std::string(dfg::fuTypeName(t)).c_str(),
                        n);
  out += encodePlaces(g, r.schedule);
  out += "dfg-begin\n" + dfg::serialize(g) + "dfg-end\n";
  return out;
}

std::string encodeMfsaEntry(const dfg::Dfg& g, const core::MfsaResult& r,
                            const std::string& envText) {
  std::string out = encodeCommon(g, "mfsa", r.steps, r.restarts, envText);
  for (const rtl::AluInstance& a : r.datapath.alus) {
    out += util::format("alu %s %d",
                        r.datapath.lib->module(a.module).name.c_str(), a.index);
    for (NodeId id : a.ops) out += " " + g.node(id).name;
    out += "\n";
  }
  out += encodePlaces(g, r.datapath.schedule);
  out += "dfg-begin\n" + dfg::serialize(g) + "dfg-end\n";
  return out;
}

// ------------------------------------------------------------------ replay

std::optional<core::MfsResult> replayMfsEntry(const dfg::Dfg& g,
                                              const core::MfsOptions& opt,
                                              const std::string& text) {
  const auto e = decodeEntry(text);
  if (!e || e->kind != "mfs") return std::nullopt;
  auto s = rehost(g, *e);
  if (!s) return std::nullopt;
  if (!sched::verifySchedule(*s, verifyConstraints(opt, e->steps)).empty())
    return std::nullopt;
  core::MfsResult r;
  r.feasible = true;
  r.schedule = std::move(*s);
  r.steps = e->steps;
  r.restarts = e->restarts;
  r.fuCount = e->fuCount.empty() ? r.schedule.fuCount() : e->fuCount;
  return r;
}

std::optional<core::MfsaResult> replayMfsaEntry(const dfg::Dfg& g,
                                                const celllib::CellLibrary& lib,
                                                const core::MfsaOptions& opt,
                                                const std::string& text) {
  const auto e = decodeEntry(text);
  if (!e || e->kind != "mfsa") return std::nullopt;
  auto s = rehost(g, *e);
  if (!s) return std::nullopt;
  sched::Constraints vc = opt.constraints;
  if (vc.timeSteps == 0) vc.timeSteps = e->steps;
  if (!sched::verifySchedule(*s, vc).empty()) return std::nullopt;

  // Resolve module names against the live library and rebuild the binding.
  std::map<std::string, celllib::ModuleId> byName;
  for (std::size_t i = 0; i < lib.modules().size(); ++i)
    byName[lib.modules()[i].name] = static_cast<celllib::ModuleId>(i);
  std::vector<rtl::AluInstance> insts;
  std::set<NodeId> bound;
  for (const Entry::Alu& a : e->alus) {
    const auto it = byName.find(a.module);
    if (it == byName.end()) return std::nullopt;
    rtl::AluInstance inst;
    inst.module = it->second;
    inst.index = a.index;
    for (const std::string& opName : a.ops) {
      const NodeId id = g.findByName(opName);
      if (id == dfg::kNoNode || !dfg::isSchedulable(g.node(id).kind))
        return std::nullopt;
      if (!bound.insert(id).second) return std::nullopt;
      inst.ops.push_back(id);
    }
    insts.push_back(std::move(inst));
  }
  if (bound.size() != g.operations().size()) return std::nullopt;

  core::MfsaResult r;
  try {
    r.datapath = rtl::buildDatapath(g, lib, *s, std::move(insts));
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (!rtl::verifyDatapath(r.datapath, vc, opt.style).empty())
    return std::nullopt;
  r.cost = rtl::evaluateCost(r.datapath);
  if (opt.interconnect == core::InterconnectStyle::Bus) {
    // Mirror runMfsa's assembly: bus interconnect replaces the mux area.
    const auto fsm = rtl::buildController(r.datapath);
    r.busPlan = rtl::planBuses(r.datapath, fsm, opt.busModel);
    r.cost.muxArea = r.busPlan->totalCost;
    r.cost.total = r.cost.aluArea + r.cost.regArea + r.cost.muxArea;
  }
  r.steps = e->steps;
  r.restarts = e->restarts;
  r.feasible = true;
  return r;
}

// -------------------------------------------------------------- incremental

namespace {

/// Operations of `g` whose scheduling-relevant attributes or operand wiring
/// differ from their same-named counterpart in `base`. nullopt when the
/// graphs aren't name-compatible (different signal sets — fall back to full
/// synthesis). A changed Input/Const node seeds its schedulable consumers.
std::optional<std::vector<NodeId>> diffSeeds(const dfg::Dfg& g,
                                             const dfg::Dfg& base) {
  if (g.size() != base.size()) return std::nullopt;
  std::vector<NodeId> seeds;
  for (const dfg::Node& n : g.nodes()) {
    const NodeId bid = base.findByName(n.name);
    if (bid == dfg::kNoNode) return std::nullopt;
    const dfg::Node& bn = base.node(bid);
    bool changed = n.kind != bn.kind || n.cycles != bn.cycles ||
                   n.effectiveDelayNs() != bn.effectiveDelayNs() ||
                   n.branchPath != bn.branchPath ||
                   n.inputs.size() != bn.inputs.size();
    if (!changed)
      for (std::size_t i = 0; i < n.inputs.size(); ++i)
        if (g.node(n.inputs[i]).name != base.node(bn.inputs[i]).name) {
          changed = true;
          break;
        }
    if (!changed) continue;
    if (dfg::isSchedulable(n.kind)) {
      seeds.push_back(n.id);
    } else {
      // Input/Const attribute changes don't occupy the grid themselves, but
      // a kind flip (op -> input) reshapes the consumers' dependences.
      for (NodeId sid : g.succs(n.id))
        if (dfg::isSchedulable(g.node(sid).kind)) seeds.push_back(sid);
    }
  }
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
  return seeds;
}

/// The incremental path: diff against the latest stored result for this
/// design name, re-schedule only the K-hop cone around the changed
/// operations under the base schedule's FU budget, and stitch (which
/// re-verifies under the run's constraints). Time-constrained MFS only —
/// resource-constrained runs minimize latency globally, so a local splice
/// could silently miss a shorter schedule.
std::optional<core::MfsResult> tryIncrementalMfs(SynthCache& c,
                                                 const dfg::Dfg& g,
                                                 const core::MfsOptions& opt,
                                                 Digest envDigest) {
  if (opt.mode != core::MfsLiapunov::Mode::TimeConstrained) return std::nullopt;
  const auto baseText = c.loadLatest("mfs", digestOf(g.name()), envDigest);
  if (!baseText) return std::nullopt;
  const auto e = decodeEntry(*baseText);
  if (!e || e->kind != "mfs" || e->dfgText.empty()) return std::nullopt;
  dfg::Dfg base;
  try {
    base = dfg::parse(e->dfgText);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  const auto seeds = diffSeeds(g, base);
  if (!seeds) return std::nullopt;

  // Re-host the base placements onto the edited graph. Changed operations
  // keep their stale placement for now; the stitch replaces every cone
  // member's placement and re-packs columns.
  auto full = rehost(g, *e);
  if (!full) return std::nullopt;

  core::MfsResult r;
  if (seeds->empty()) {
    // Attribute-only edit with no scheduling impact (e.g. a constant's
    // value): the base schedule re-verifies as-is or not at all.
    if (!sched::verifySchedule(*full, verifyConstraints(opt, e->steps))
             .empty())
      return std::nullopt;
    r.schedule = std::move(*full);
  } else {
    const dfg::ConeCut cut =
        dfg::extractCone(g, *seeds, c.incrementalHops());
    core::MfsOptions m = opt;
    m.mode = core::MfsLiapunov::Mode::ResourceConstrained;
    m.constraints.timeSteps = 0;
    m.constraints.fuLimit = full->fuCount();  // stay within the base budget
    m.priorityHint.clear();
    const core::MfsResult coneRes = core::runMfs(cut.cone, m);
    if (!coneRes.feasible) return std::nullopt;
    auto stitched =
        sched::stitchSchedule(*full, opt.constraints, cut, coneRes.schedule);
    if (!stitched) return std::nullopt;
    r.schedule = std::move(stitched->schedule);
    r.restarts = coneRes.restarts;
  }
  r.feasible = true;
  r.steps = r.schedule.numSteps();
  r.fuCount = r.schedule.fuCount();
  return r;
}

// --------------------------------------------------------- in-process memo

/// Per-store memo of replay results that already passed full verification in
/// this process. The first hit on a key pays the honest disk + decode +
/// rehost + verify replay; repeat hits (explore sweeps, iterative flows)
/// return the memoized result. Results hold references into the caller's
/// graph (and library), so a memo entry is only served when the caller
/// passes the *same objects* it was built against — any other caller falls
/// through to the disk path, which rebuilds against its own objects.
struct ResultMemo final : SynthCache::Memo {
  struct MfsHit {
    const dfg::Dfg* graph = nullptr;
    core::MfsResult result;
  };
  struct MfsaHit {
    const dfg::Dfg* graph = nullptr;
    const celllib::CellLibrary* lib = nullptr;
    core::MfsaResult result;
  };
  // Bounded so a long-running process cannot grow without limit; eviction is
  // a full clear — correctness never depends on memo contents.
  static constexpr std::size_t kMaxEntries = 4096;

  std::mutex mu;
  std::map<std::pair<Digest, Digest>, MfsHit> mfs;
  std::map<std::pair<Digest, Digest>, MfsaHit> mfsa;
};

ResultMemo& memoOf(SynthCache& c) {
  if (auto* m = dynamic_cast<ResultMemo*>(c.memo())) return *m;
  return static_cast<ResultMemo&>(
      *c.installMemo(std::make_unique<ResultMemo>()));
}

}  // namespace

// ------------------------------------------------------------ entry points

core::MfsResult cachedRunMfs(const dfg::Dfg& g, const core::MfsOptions& opt) {
  SynthCache* c = activeCache();
  if (!c) return core::runMfs(g, opt);

  const Digest design = fingerprintDfg(g);
  const Digest envDigest = mfsEnvDigest(opt);
  const std::pair<Digest, Digest> key{design, envDigest};
  ResultMemo& memo = memoOf(*c);
  {
    std::lock_guard<std::mutex> lock(memo.mu);
    const auto it = memo.mfs.find(key);
    if (it != memo.mfs.end() && it->second.graph == &g) {
      trace::bump(trace::Counter::CacheHits);
      return it->second.result;
    }
  }
  if (auto text = c->load("mfs", design, envDigest)) {
    if (auto r = replayMfsEntry(g, opt, *text)) {
      trace::bump(trace::Counter::CacheHits);
      std::lock_guard<std::mutex> lock(memo.mu);
      if (memo.mfs.size() >= ResultMemo::kMaxEntries) memo.mfs.clear();
      memo.mfs[key] = {&g, *r};
      return std::move(*r);
    }
    c->invalidate("mfs", design, envDigest);
    {
      std::lock_guard<std::mutex> lock(memo.mu);
      memo.mfs.erase(key);
    }
    trace::bump(trace::Counter::CacheInvalidations);
  }
  trace::bump(trace::Counter::CacheMisses);

  core::MfsResult r;
  if (auto inc = tryIncrementalMfs(*c, g, opt, envDigest)) {
    trace::bump(trace::Counter::CacheIncrementalHits);
    r = std::move(*inc);
  } else {
    r = core::runMfs(g, opt);
  }
  if (r.feasible &&
      sched::verifySchedule(r.schedule, verifyConstraints(opt, r.steps))
          .empty()) {
    if (c->store("mfs", design, envDigest, digestOf(g.name()),
                 encodeMfsEntry(g, r, mfsEnvText(opt))))
      trace::bump(trace::Counter::CacheStores);
    std::lock_guard<std::mutex> lock(memo.mu);
    if (memo.mfs.size() >= ResultMemo::kMaxEntries) memo.mfs.clear();
    memo.mfs[key] = {&g, r};
  }
  return r;
}

core::MfsaResult cachedRunMfsa(const dfg::Dfg& g,
                               const celllib::CellLibrary& lib,
                               const core::MfsaOptions& opt) {
  SynthCache* c = activeCache();
  if (!c) return core::runMfsa(g, lib, opt);

  const Digest design = fingerprintDfg(g);
  const Digest envDigest = mfsaEnvDigest(opt, lib);
  const std::pair<Digest, Digest> key{design, envDigest};
  ResultMemo& memo = memoOf(*c);
  {
    std::lock_guard<std::mutex> lock(memo.mu);
    const auto it = memo.mfsa.find(key);
    if (it != memo.mfsa.end() && it->second.graph == &g &&
        it->second.lib == &lib) {
      trace::bump(trace::Counter::CacheHits);
      return it->second.result;
    }
  }
  if (auto text = c->load("mfsa", design, envDigest)) {
    if (auto r = replayMfsaEntry(g, lib, opt, *text)) {
      trace::bump(trace::Counter::CacheHits);
      std::lock_guard<std::mutex> lock(memo.mu);
      if (memo.mfsa.size() >= ResultMemo::kMaxEntries) memo.mfsa.clear();
      memo.mfsa[key] = {&g, &lib, *r};
      return std::move(*r);
    }
    c->invalidate("mfsa", design, envDigest);
    {
      std::lock_guard<std::mutex> lock(memo.mu);
      memo.mfsa.erase(key);
    }
    trace::bump(trace::Counter::CacheInvalidations);
  }
  trace::bump(trace::Counter::CacheMisses);

  core::MfsaResult r = core::runMfsa(g, lib, opt);
  if (r.feasible) {
    sched::Constraints vc = opt.constraints;
    if (vc.timeSteps == 0) vc.timeSteps = r.steps;
    if (rtl::verifyDatapath(r.datapath, vc, opt.style).empty()) {
      if (c->store("mfsa", design, envDigest, digestOf(g.name()),
                   encodeMfsaEntry(g, r, mfsaEnvText(opt, lib))))
        trace::bump(trace::Counter::CacheStores);
      std::lock_guard<std::mutex> lock(memo.mu);
      if (memo.mfsa.size() >= ResultMemo::kMaxEntries) memo.mfsa.clear();
      memo.mfsa[key] = {&g, &lib, r};
    }
  }
  return r;
}

}  // namespace mframe::cache
