#include "cache/fingerprint.h"

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "util/strings.h"

namespace mframe::cache {

void Fnv1a::addBytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h_ ^= p[i];
    h_ *= 0x100000001b3ull;
  }
}

void Fnv1a::add(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  add(bits);
}

Digest digestOf(std::string_view text) {
  Fnv1a h;
  h.add(text);
  return h.digest();
}

namespace {

/// Dense bottom-up value hashing — the same canonicalization the validator's
/// ValueNumbering interns (structurally identical expressions coincide,
/// commutative operand order is normalized away, names matter only at the
/// leaves), computed as one array pass because this sits on the cache hit
/// path where the interning maps' per-node allocations dominate. A 64-bit
/// collision at worst mislabels a digest; every hit is re-verified, so a
/// false match is rejected at replay, never trusted.
std::vector<std::uint64_t> valueHashes(const dfg::Dfg& g) {
  std::vector<std::uint64_t> vh(g.size(), 0);
  std::vector<std::uint64_t> ops;
  for (const dfg::Node& n : g.nodes()) {  // topological id order (builder
                                          // invariant, as numberGraph needs)
    Fnv1a h;
    h.add(static_cast<int>(n.kind));
    if (n.kind == dfg::OpKind::Input || n.kind == dfg::OpKind::LoopSuper)
      h.add(n.name);  // leaf / opaque identity
    if (n.kind == dfg::OpKind::Const) h.add(n.constValue);
    ops.clear();
    for (dfg::NodeId in : n.inputs) ops.push_back(vh[in]);
    if (dfg::isCommutative(n.kind)) std::sort(ops.begin(), ops.end());
    h.add(static_cast<std::uint64_t>(ops.size()));
    for (std::uint64_t o : ops) h.add(o);
    vh[n.id] = h.digest();
  }
  return vh;
}

}  // namespace

Digest fingerprintDfg(const dfg::Dfg& g) {
  const std::vector<std::uint64_t> num = valueHashes(g);

  Fnv1a h;
  h.add(std::string_view("dfg"));
  h.add(g.name());
  h.add(static_cast<std::uint64_t>(g.size()));
  std::vector<std::pair<std::uint64_t, std::string_view>> edges;
  for (const dfg::Node& n : g.nodes()) {
    h.add(n.name);
    h.add(static_cast<int>(n.kind));
    h.add(num[n.id]);
    h.add(n.cycles);
    h.add(n.delayNs);
    h.add(n.branchPath);
    h.add(n.constValue);
    h.add(n.width);
    // Operand edges: the raw edge list pins which named producer feeds
    // each port (two CSE-equal producers are still distinct operations
    // with distinct precedence edges), hashed by producer *name* so the
    // digest does not depend on node-id assignment. Commutative operands
    // are sorted the same way the value numbering canonicalizes them, so
    // a+b and b+a share a digest.
    h.add(static_cast<std::uint64_t>(n.inputs.size()));
    edges.clear();
    for (dfg::NodeId in : n.inputs)
      edges.emplace_back(num[in], std::string_view(g.node(in).name));
    if (dfg::isCommutative(n.kind)) std::sort(edges.begin(), edges.end());
    for (const auto& [evn, ename] : edges) {
      h.add(evn);
      h.add(ename);
    }
  }
  h.add(static_cast<std::uint64_t>(g.outputs().size()));
  for (const auto& [id, name] : g.outputs()) {
    h.add(static_cast<std::uint64_t>(id));
    h.add(name);
  }
  return h.digest();
}

Digest fingerprintLibrary(const celllib::CellLibrary& lib) {
  // Field-by-field, in the library's canonical order (modules in insertion
  // order, caps sets sorted). The mux table is hashed on the live accessor
  // out to 33 inputs so flat-extrapolated tails and explicit tables with
  // the same values collide, exactly like serialized round-trips do.
  Fnv1a h;
  h.add(std::string_view("lib"));
  h.add(lib.name());
  h.add(lib.regCost());
  for (int r = 2; r <= 33; ++r) h.add(lib.muxCost(r));
  h.add(static_cast<std::uint64_t>(lib.modules().size()));
  for (const celllib::Module& m : lib.modules()) {
    h.add(m.name);
    h.add(m.areaUm2);
    h.add(m.delayNs);
    h.add(m.stages);
    h.add(static_cast<std::uint64_t>(m.caps.size()));
    for (dfg::FuType t : m.caps) h.add(static_cast<int>(t));  // set: sorted
  }
  return h.digest();
}

namespace {

std::string constraintsText(const sched::Constraints& c) {
  std::string out = util::format("steps=%d chaining=%d clock=%.17g latency=%d",
                                 c.timeSteps, c.allowChaining ? 1 : 0,
                                 c.clockNs, c.latency);
  out += " limit=";
  for (const auto& [t, n] : c.fuLimit)  // std::map: sorted, deterministic
    out += util::format("%s:%d,", std::string(dfg::fuTypeName(t)).c_str(), n);
  out += " pipelined=";
  for (dfg::FuType t : c.pipelinedFus)  // std::set: sorted
    out += std::string(dfg::fuTypeName(t)) + ",";
  return out;
}

const char* priorityName(sched::PriorityRule r) {
  switch (r) {
    case sched::PriorityRule::Mobility: return "mobility";
    case sched::PriorityRule::MobilityNoReverse: return "mobility-noreverse";
    case sched::PriorityRule::InsertionOrder: return "insertion";
  }
  return "?";
}

void addConstraints(Fnv1a& h, const sched::Constraints& c) {
  h.add(c.timeSteps);
  h.add(c.allowChaining ? 1 : 0);
  h.add(c.clockNs);
  h.add(c.latency);
  h.add(static_cast<std::uint64_t>(c.fuLimit.size()));
  for (const auto& [t, n] : c.fuLimit) {  // std::map: sorted, deterministic
    h.add(static_cast<int>(t));
    h.add(n);
  }
  h.add(static_cast<std::uint64_t>(c.pipelinedFus.size()));
  for (dfg::FuType t : c.pipelinedFus) h.add(static_cast<int>(t));  // sorted
}

}  // namespace

// The digests hash the same fields the *Text renderings below print, minus
// the formatting: nothing on the hit path allocates or calls sprintf.
Digest mfsEnvDigest(const core::MfsOptions& opt) {
  Fnv1a h;
  h.add(std::string_view("mfs-env"));
  h.add(static_cast<int>(opt.mode));
  h.add(static_cast<int>(opt.priorityRule));
  addConstraints(h, opt.constraints);
  h.add(static_cast<std::uint64_t>(opt.priorityHint.size()));
  for (dfg::NodeId id : opt.priorityHint)
    h.add(static_cast<std::uint64_t>(id));
  h.add(opt.maxRestarts);
  h.add(opt.maxStepsCap);
  return h.digest();
}

Digest mfsaEnvDigest(const core::MfsaOptions& opt,
                     const celllib::CellLibrary& lib) {
  Fnv1a h;
  h.add(std::string_view("mfsa-env"));
  addConstraints(h, opt.constraints);
  h.add(opt.weights.time);
  h.add(opt.weights.alu);
  h.add(opt.weights.mux);
  h.add(opt.weights.reg);
  h.add(static_cast<int>(opt.style));
  h.add(static_cast<int>(opt.priorityRule));
  h.add(static_cast<int>(opt.interconnect));
  h.add(opt.busModel.busWireUm2);
  h.add(opt.busModel.driverUm2);
  h.add(opt.busModel.receiverUm2);
  h.add(fingerprintLibrary(lib));
  return h.digest();
}

// traceLiapunov is deliberately absent from the env digests and texts: it
// only decides
// whether the in-memory trace vector is recorded and never changes the
// synthesized result, so caching across it is sound (a replayed result
// simply carries an empty trace).
std::string mfsEnvText(const core::MfsOptions& opt) {
  std::string out = "mfs ";
  out += opt.mode == core::MfsLiapunov::Mode::TimeConstrained
             ? "mode=time "
             : "mode=resource ";
  out += util::format("priority=%s ", priorityName(opt.priorityRule));
  out += constraintsText(opt.constraints);
  out += " hint=";
  for (dfg::NodeId id : opt.priorityHint) out += util::format("%u,", id);
  out += util::format(" maxRestarts=%d maxStepsCap=%d", opt.maxRestarts,
                      opt.maxStepsCap);
  return out;
}

std::string mfsaEnvText(const core::MfsaOptions& opt,
                        const celllib::CellLibrary& lib) {
  // incrementalMux is absent for the same reason as traceLiapunov: the
  // delta arrangement is exact, so both settings synthesize bit-identical
  // designs (the switch exists only for differential testing).
  std::string out = "mfsa ";
  out += constraintsText(opt.constraints);
  out += util::format(
      " weights=%.17g,%.17g,%.17g,%.17g style=%d priority=%s", opt.weights.time,
      opt.weights.alu, opt.weights.mux, opt.weights.reg,
      static_cast<int>(opt.style), priorityName(opt.priorityRule));
  out += opt.interconnect == core::InterconnectStyle::Bus ? " interconnect=bus"
                                                          : " interconnect=mux";
  out += util::format(" bus=%.17g,%.17g,%.17g", opt.busModel.busWireUm2,
                      opt.busModel.driverUm2, opt.busModel.receiverUm2);
  out += util::format(" lib=%016llx",
                      static_cast<unsigned long long>(fingerprintLibrary(lib)));
  return out;
}

}  // namespace mframe::cache
