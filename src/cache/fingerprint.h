// Content-addressed fingerprints for the synthesis cache.
//
// A cache key is the pair (design digest, environment digest). The design
// digest is built over hash-consed value identities — the same bottom-up
// canonicalization the validator's value numbering
// (analysis::ValueNumbering) interns, computed densely here — so two textual
// designs that differ only in the operand order of commutative operations —
// the normalization the prover already exploits — fingerprint identically
// and share cache entries. The
// environment digest canonicalizes everything else that shapes a synthesis
// result: the scheduler options, the constraint bundle and (for MFSA) the
// cell library. Digests are 64-bit FNV-1a; a colliding or stale entry is
// harmless because every cache hit is re-verified against the live graph
// before it is trusted (see cache/resynth.h).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "celllib/cell_library.h"
#include "core/mfs.h"
#include "core/mfsa.h"
#include "dfg/dfg.h"

namespace mframe::cache {

using Digest = std::uint64_t;

/// Incremental FNV-1a (64-bit) hasher over typed fields.
class Fnv1a {
 public:
  void addBytes(const void* data, std::size_t n);
  void add(std::string_view s) {
    addBytes(s.data(), s.size());
    sep();
  }
  /// Fixed-width fields fold as one 64-bit word per multiply rather than
  /// byte-at-a-time: an 8x shorter serial multiply chain on the hit path,
  /// with mixing that is ample for cache keys (collisions are caught by
  /// replay verification, never trusted).
  void add(std::uint64_t v) {
    h_ ^= v;
    h_ *= 0x100000001b3ull;
  }
  void add(long v) { add(static_cast<std::uint64_t>(v)); }
  void add(int v) { add(static_cast<std::uint64_t>(v)); }
  void add(double v);  ///< hashes the bit pattern, so -0.0 != 0.0 is kept
  Digest digest() const { return h_; }

 private:
  void sep() { addBytes("\x1f", 1); }  // field separator: "ab"+"c" != "a"+"bc"
  Digest h_ = 0xcbf29ce484222325ull;
};

/// Digest of an arbitrary text blob (used for canonical option strings).
Digest digestOf(std::string_view text);

/// Structural fingerprint of a DFG (works on full designs and extracted
/// cones alike): design name, per-node (name, kind, value number, cycles,
/// delay, width, branch path, const value) in id order, plus the output
/// markings. Hash-consed value identities canonicalize commutative operand
/// order.
Digest fingerprintDfg(const dfg::Dfg& g);

/// Digest of the library contents (name, reg/mux tables, every module with
/// areas, delays, stages and capabilities), hashed field-by-field — no
/// serialization on the hot path.
Digest fingerprintLibrary(const celllib::CellLibrary& lib);

/// The environment half of the cache key: every option field that can change
/// the synthesized result, hashed directly (doubles by bit pattern, maps and
/// sets in their sorted order). These are the authoritative keys; the *Text
/// renderings below exist for the human-readable `env` entry line only.
Digest mfsEnvDigest(const core::MfsOptions& opt);
Digest mfsaEnvDigest(const core::MfsaOptions& opt,
                     const celllib::CellLibrary& lib);

/// Canonical environment strings — the same fields the digests cover,
/// rendered deterministically (doubles at full precision, maps in sorted
/// order). Stored verbatim in cache entries for debuggability; built only
/// when an entry is written, never on the hit path.
std::string mfsEnvText(const core::MfsOptions& opt);
std::string mfsaEnvText(const core::MfsaOptions& opt,
                        const celllib::CellLibrary& lib);

}  // namespace mframe::cache
