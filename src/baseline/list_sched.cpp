#include "baseline/list_sched.h"

#include <algorithm>
#include <map>

#include "core/grid.h"
#include "sched/timeframes.h"
#include "util/strings.h"

namespace mframe::baseline {

namespace {
using dfg::FuType;
using dfg::NodeId;
}  // namespace

ListSchedResult runListScheduling(const dfg::Dfg& g, const sched::Constraints& c) {
  ListSchedResult res;
  if (auto err = g.validate()) {
    res.error = "invalid DFG: " + *err;
    return res;
  }

  // Static priorities from mobility at the critical-path schedule length.
  sched::Constraints tfc;
  tfc.allowChaining = false;
  std::string tfError;
  const auto tf = computeTimeFrames(g, tfc, &tfError);
  if (!tf) {
    res.error = tfError;
    return res;
  }

  auto limitOf = [&](FuType t) {
    auto it = c.fuLimit.find(t);
    return it == c.fuLimit.end() ? 1 : it->second;
  };

  sched::Schedule s(g);
  std::map<FuType, core::ColumnOccupancy> occs;  // one column table per type

  const auto ops = g.operations();
  std::map<NodeId, int> remainingPreds;
  for (NodeId id : ops) remainingPreds[id] = static_cast<int>(g.opPreds(id).size());

  std::vector<NodeId> ready;
  for (NodeId id : ops)
    if (remainingPreds[id] == 0) ready.push_back(id);

  std::size_t placed = 0;
  const int maxSteps = static_cast<int>(ops.size()) * 8 + 8;
  for (int step = 1; placed < ops.size() && step <= maxSteps; ++step) {
    // Highest priority first: low mobility, then low ALAP.
    std::sort(ready.begin(), ready.end(), [&](NodeId a, NodeId b) {
      if (tf->mobility(a) != tf->mobility(b))
        return tf->mobility(a) < tf->mobility(b);
      if (tf->alap(a) != tf->alap(b)) return tf->alap(a) < tf->alap(b);
      return a < b;
    });

    std::vector<NodeId> issuedNow;
    for (NodeId id : ready) {
      const FuType t = dfg::fuTypeOf(g.node(id).kind);
      auto [it, inserted] = occs.try_emplace(t, g, c);
      core::ColumnOccupancy& to = it->second;
      // Predecessors finishing at or after this step block the issue.
      bool depsOk = true;
      for (NodeId p : g.opPreds(id))
        if (s.stepOf(p) + g.node(p).cycles - 1 >= step) depsOk = false;
      if (!depsOk) continue;

      for (int col = 1; col <= limitOf(t); ++col) {
        if (to.canPlace(id, col, step)) {
          to.place(id, col, step);
          s.place(id, step, col);
          issuedNow.push_back(id);
          ++placed;
          break;
        }
      }
    }
    for (NodeId id : issuedNow) {
      ready.erase(std::remove(ready.begin(), ready.end(), id), ready.end());
      for (NodeId sc : g.opSuccs(id))
        if (--remainingPreds[sc] == 0) ready.push_back(sc);
    }
  }
  if (placed < ops.size()) {
    res.error = "list scheduling did not converge";
    return res;
  }

  int steps = 0;
  for (NodeId id : ops)
    steps = std::max(steps, s.stepOf(id) + g.node(id).cycles - 1);
  s.setNumSteps(steps);
  res.schedule = std::move(s);
  res.steps = steps;
  res.feasible = true;
  return res;
}

}  // namespace mframe::baseline
