// Force-directed scheduling (Paulin & Knight, HAL — reference [6] of the
// paper): the classic time-constrained baseline MFS is compared against.
// Builds type distribution graphs over the operations' time frames, then
// repeatedly fixes the (operation, step) assignment with the lowest total
// force (self force plus implied predecessor/successor forces), shrinking
// frames as it goes.
#pragma once

#include <string>

#include "sched/schedule.h"

namespace mframe::baseline {

struct FdsResult {
  bool feasible = false;
  std::string error;
  sched::Schedule schedule;  ///< columns assigned greedily per type afterwards
  int steps = 0;
};

/// Time-constrained FDS: c.timeSteps must be >= the critical path. Supports
/// multicycle operations; chaining/pipelining are outside this baseline.
FdsResult runForceDirected(const dfg::Dfg& g, const sched::Constraints& c);

}  // namespace mframe::baseline
