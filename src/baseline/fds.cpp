#include "baseline/fds.h"

#include <algorithm>
#include <map>
#include <vector>

#include "core/grid.h"
#include "util/strings.h"

namespace mframe::baseline {

namespace {

using dfg::FuType;
using dfg::NodeId;

/// Mutable time frames, tightened as operations are fixed.
struct Frame {
  int lo = 1, hi = 1;
  int width() const { return hi - lo + 1; }
};

/// Longest-path ASAP/ALAP without chaining, respecting current bounds.
bool propagate(const dfg::Dfg& g, int cs, std::vector<Frame>& f) {
  const auto order = *g.topoOrder();
  for (NodeId id : order) {
    if (!dfg::isSchedulable(g.node(id).kind)) continue;
    for (NodeId p : g.opPreds(id))
      f[id].lo = std::max(f[id].lo, f[p].lo + g.node(p).cycles);
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId id = *it;
    if (!dfg::isSchedulable(g.node(id).kind)) continue;
    f[id].hi = std::min(f[id].hi, cs - g.node(id).cycles + 1);
    for (NodeId sc : g.opSuccs(id))
      f[id].hi = std::min(f[id].hi, f[sc].hi - g.node(id).cycles);
    if (f[id].lo > f[id].hi) return false;
  }
  return true;
}

}  // namespace

FdsResult runForceDirected(const dfg::Dfg& g, const sched::Constraints& c) {
  FdsResult res;
  if (auto err = g.validate()) {
    res.error = "invalid DFG: " + *err;
    return res;
  }
  const int cs = c.timeSteps;
  if (cs <= 0) {
    res.error = "FDS needs constraints.timeSteps > 0";
    return res;
  }
  const auto ops = g.operations();

  std::vector<Frame> frame(g.size());
  for (NodeId id : ops) frame[id] = {1, cs};
  if (!propagate(g, cs, frame)) {
    res.error = util::format("time constraint %d below critical path", cs);
    return res;
  }

  // Distribution graph: expected occupancy per (type, step), counting each
  // operation as probability 1/frame-width over the steps its execution can
  // cover.
  auto distribution = [&](const std::vector<Frame>& f) {
    std::map<FuType, std::vector<double>> dg;
    for (NodeId id : ops) {
      const dfg::Node& n = g.node(id);
      const FuType t = dfg::fuTypeOf(n.kind);
      auto& row = dg.try_emplace(t, std::vector<double>(cs + 2, 0.0)).first->second;
      const double p = 1.0 / f[id].width();
      for (int s = f[id].lo; s <= f[id].hi; ++s)
        for (int k = 0; k < n.cycles && s + k <= cs; ++k) row[s + k] += p;
    }
    return dg;
  };

  std::vector<bool> fixed(g.size(), false);
  for (std::size_t iter = 0; iter < ops.size(); ++iter) {
    const auto dg = distribution(frame);

    double bestForce = 0.0;
    NodeId bestOp = dfg::kNoNode;
    int bestStep = 0;
    for (NodeId id : ops) {
      if (fixed[id]) continue;
      for (int s = frame[id].lo; s <= frame[id].hi; ++s) {
        // Self force of tentatively fixing `id` at step s, plus the forces
        // of the implied frame tightenings of predecessors and successors.
        std::vector<Frame> trial = frame;
        trial[id] = {s, s};
        if (!propagate(g, cs, trial)) continue;

        double force = 0.0;
        for (NodeId other : ops) {
          // Only the tentatively fixed op and ops whose frames tightened
          // contribute to the force delta.
          if (other != id &&
              (fixed[other] || (frame[other].lo == trial[other].lo &&
                                frame[other].hi == trial[other].hi)))
            continue;
          const dfg::Node& on = g.node(other);
          const auto& orow = dg.at(dfg::fuTypeOf(on.kind));
          const double before = 1.0 / frame[other].width();
          const double after = 1.0 / trial[other].width();
          for (int q = trial[other].lo; q <= trial[other].hi; ++q)
            for (int k = 0; k < on.cycles && q + k <= cs; ++k)
              force += orow[q + k] * after;
          for (int q = frame[other].lo; q <= frame[other].hi; ++q)
            for (int k = 0; k < on.cycles && q + k <= cs; ++k)
              force -= orow[q + k] * before;
        }
        if (bestOp == dfg::kNoNode || force < bestForce) {
          bestForce = force;
          bestOp = id;
          bestStep = s;
        }
      }
    }
    if (bestOp == dfg::kNoNode) {
      res.error = "FDS could not fix any operation";
      return res;
    }
    frame[bestOp] = {bestStep, bestStep};
    fixed[bestOp] = true;
    if (!propagate(g, cs, frame)) {
      res.error = "FDS frames became infeasible";
      return res;
    }
  }

  // Column (instance) assignment per type, greedily.
  sched::Schedule s(g);
  s.setNumSteps(cs);
  std::map<FuType, core::ColumnOccupancy> occs;
  for (NodeId id : ops) {
    const FuType t = dfg::fuTypeOf(g.node(id).kind);
    auto [it, inserted] = occs.try_emplace(t, g, c);
    for (int col = 1;; ++col) {
      if (it->second.canPlace(id, col, frame[id].lo)) {
        it->second.place(id, col, frame[id].lo);
        s.place(id, frame[id].lo, col);
        break;
      }
    }
  }
  res.schedule = std::move(s);
  res.steps = cs;
  res.feasible = true;
  return res;
}

}  // namespace mframe::baseline
