#include "baseline/asap_sched.h"

#include <map>

#include "core/grid.h"
#include "sched/timeframes.h"

namespace mframe::baseline {

AsapResult runAsap(const dfg::Dfg& g, const sched::Constraints& c) {
  AsapResult res;
  if (auto err = g.validate()) {
    res.error = "invalid DFG: " + *err;
    return res;
  }
  std::string tfError;
  sched::Constraints probe = c;
  probe.timeSteps = 0;  // unconstrained: pure ASAP
  const auto tf = computeTimeFrames(g, probe, &tfError);
  if (!tf) {
    res.error = tfError;
    return res;
  }

  sched::Schedule s(g);
  s.setNumSteps(tf->criticalSteps());
  std::map<dfg::FuType, core::ColumnOccupancy> occs;
  const auto order = *g.topoOrder();
  for (dfg::NodeId id : order) {
    if (!dfg::isSchedulable(g.node(id).kind)) continue;
    const dfg::FuType t = dfg::fuTypeOf(g.node(id).kind);
    auto [it, inserted] = occs.try_emplace(t, g, c);
    for (int col = 1;; ++col) {
      if (it->second.canPlace(id, col, tf->asap(id))) {
        it->second.place(id, col, tf->asap(id));
        s.place(id, tf->asap(id), col);
        break;
      }
    }
  }
  res.steps = tf->criticalSteps();
  res.schedule = std::move(s);
  res.feasible = true;
  return res;
}

}  // namespace mframe::baseline
