// Resource-constrained list scheduling — the classic baseline ([4] in the
// paper): operations become ready when their predecessors finish and are
// issued in priority (mobility) order, limited by the available units per
// type; the schedule grows until all operations are placed.
#pragma once

#include <string>

#include "sched/priority.h"
#include "sched/schedule.h"

namespace mframe::baseline {

struct ListSchedResult {
  bool feasible = false;
  std::string error;
  sched::Schedule schedule;
  int steps = 0;
};

/// Schedule under c.fuLimit (types without a limit get 1 unit). Supports
/// multicycle operations and mutual exclusion; chaining is not part of this
/// baseline.
ListSchedResult runListScheduling(const dfg::Dfg& g, const sched::Constraints& c);

}  // namespace mframe::baseline
