// ASAP scheduling — the naive baseline ("the FACET system used ASAP
// schedule", Section 1): every operation starts at its earliest legal step.
// Useful to quantify MFS's balance: ASAP piles operations into the early
// steps, so its FU demand equals the ASAP concurrency peak, typically far
// above MFS's ceil(N/cs).
#pragma once

#include <string>

#include "sched/schedule.h"

namespace mframe::baseline {

struct AsapResult {
  bool feasible = false;
  std::string error;
  sched::Schedule schedule;
  int steps = 0;
};

/// Place every operation at its ASAP step, assigning columns first-free per
/// type (multicycle and mutual exclusion respected; chaining honored when
/// c.allowChaining is set — dependent ops stack in a step until the clock
/// budget runs out by construction of the ASAP frames).
AsapResult runAsap(const dfg::Dfg& g, const sched::Constraints& c);

}  // namespace mframe::baseline
