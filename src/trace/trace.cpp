#include "trace/trace.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>

#include "util/strings.h"

namespace mframe::trace {

// ---------------------------------------------------------------- counters

namespace detail {
std::atomic<bool> gCountersOn{false};
std::array<std::atomic<std::uint64_t>, kNumCounters> gCounters{};
}  // namespace detail

std::string_view counterName(Counter c) {
  switch (c) {
    case Counter::MfsaRuns: return "mfsa.runs";
    case Counter::MfsaCandidates: return "mfsa.candidates";
    case Counter::MfsaCommits: return "mfsa.commits";
    case Counter::MfsaRestarts: return "mfsa.restarts";
    case Counter::LiapunovUpdates: return "liapunov.updates";
    case Counter::LiapunovCellEvals: return "liapunov.cellEvals";
    case Counter::MuxFullArrangements: return "mux.fullArrangements";
    case Counter::MuxDeltaIncremental: return "mux.deltaIncremental";
    case Counter::MuxDeltaRebuilds: return "mux.deltaRebuilds";
    case Counter::MuxMemoHits: return "mux.memoHits";
    case Counter::MuxMemoMisses: return "mux.memoMisses";
    case Counter::MuxMemoInvalidations: return "mux.memoInvalidations";
    case Counter::DataflowWorklistIterations:
      return "dataflow.worklistIterations";
    case Counter::DataflowWidenings: return "dataflow.widenings";
    case Counter::StaEndpoints: return "sta.endpoints";
    case Counter::ExploreConfigs: return "explore.configs";
    case Counter::ExploreFeasible: return "explore.feasible";
    case Counter::TuneIterations: return "tune.iterations";
    case Counter::TuneConeOps: return "tune.coneOps";
    case Counter::TuneStitches: return "tune.stitches";
    case Counter::TuneRejectedStitches: return "tune.rejectedStitches";
    case Counter::AuditReachableStates: return "audit.reachableStates";
    case Counter::AuditRbwChecks: return "audit.rbwChecks";
    case Counter::AuditFindings: return "audit.findings";
    case Counter::CacheHits: return "cache.hits";
    case Counter::CacheMisses: return "cache.misses";
    case Counter::CacheStores: return "cache.stores";
    case Counter::CacheInvalidations: return "cache.invalidations";
    case Counter::CacheIncrementalHits: return "cache.incrementalHits";
    case Counter::RangeStates: return "range.states";
    case Counter::RangeWidenings: return "range.widenings";
    case Counter::RangeAsserts: return "range.asserts";
    case Counter::RangeFindings: return "range.findings";
    case Counter::DfgFreezes: return "dfg.freezes";
    case Counter::DfgCsrEdges: return "dfg.csrEdges";
    case Counter::kCount: break;
  }
  return "?";
}

void enableCounters(bool on) {
  detail::gCountersOn.store(on, std::memory_order_relaxed);
}

void resetCounters() {
  for (auto& c : detail::gCounters) c.store(0, std::memory_order_relaxed);
}

std::uint64_t counterValue(Counter c) {
  return detail::gCounters[static_cast<std::size_t>(c)].load(
      std::memory_order_relaxed);
}

std::vector<std::pair<std::string_view, std::uint64_t>> counterSnapshot() {
  std::vector<std::pair<std::string_view, std::uint64_t>> out;
  out.reserve(kNumCounters);
  for (int i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    out.emplace_back(counterName(c), counterValue(c));
  }
  return out;
}

namespace {

/// hits / (hits + misses), or 0 when the denominator is empty.
double rateOf(Counter hit, Counter miss) {
  const double h = static_cast<double>(counterValue(hit));
  const double m = static_cast<double>(counterValue(miss));
  return h + m > 0.0 ? h / (h + m) : 0.0;
}

std::vector<std::pair<std::string_view, double>> derivedRates() {
  std::vector<std::pair<std::string_view, double>> out;
  out.emplace_back("mux.memoHitRate",
                   rateOf(Counter::MuxMemoHits, Counter::MuxMemoMisses));
  out.emplace_back("mux.deltaIncrementalRate",
                   rateOf(Counter::MuxDeltaIncremental,
                          Counter::MuxDeltaRebuilds));
  const double configs =
      static_cast<double>(counterValue(Counter::ExploreConfigs));
  out.emplace_back(
      "explore.feasibleRate",
      configs > 0.0
          ? static_cast<double>(counterValue(Counter::ExploreFeasible)) /
                configs
          : 0.0);
  out.emplace_back("cache.hitRate",
                   rateOf(Counter::CacheHits, Counter::CacheMisses));
  return out;
}

}  // namespace

std::string metricsJson(const std::string& indent) {
  std::string out;
  out += "{\"schema\": 1,\n";
  out += indent + " \"counters\": {\n";
  const auto counters = counterSnapshot();
  for (std::size_t i = 0; i < counters.size(); ++i)
    out += indent +
           util::format("  \"%s\": %llu%s\n",
                        std::string(counters[i].first).c_str(),
                        static_cast<unsigned long long>(counters[i].second),
                        i + 1 < counters.size() ? "," : "");
  out += indent + " },\n";
  out += indent + " \"derived\": {\n";
  const auto rates = derivedRates();
  for (std::size_t i = 0; i < rates.size(); ++i)
    out += indent + util::format("  \"%s\": %.6f%s\n",
                                 std::string(rates[i].first).c_str(),
                                 rates[i].second,
                                 i + 1 < rates.size() ? "," : "");
  out += indent + " }\n";
  out += indent + "}";
  return out;
}

std::string metricsText() {
  std::string out = "metrics:\n";
  for (const auto& [name, value] : counterSnapshot())
    out += util::format("  %-28s %llu\n", std::string(name).c_str(),
                        static_cast<unsigned long long>(value));
  for (const auto& [name, rate] : derivedRates())
    out += util::format("  %-28s %.3f\n", std::string(name).c_str(), rate);
  return out;
}

// ------------------------------------------------------------------- spans

namespace {

struct Event {
  const char* name;
  int tid;
  std::uint64_t startUs;
  std::uint64_t durUs;
  std::string args;  ///< JSON object literal, or empty
};

struct Session {
  std::atomic<bool> on{false};
  std::chrono::steady_clock::time_point epoch;
  std::mutex mu;
  std::vector<Event> events;
  std::map<std::thread::id, int> tids;

  int tidOf(std::thread::id id) {
    auto it = tids.find(id);
    if (it != tids.end()) return it->second;
    const int tid = static_cast<int>(tids.size()) + 1;
    tids.emplace(id, tid);
    return tid;
  }
};

Session& session() {
  static Session s;
  return s;
}

}  // namespace

bool tracingEnabled() {
  return session().on.load(std::memory_order_relaxed);
}

void beginTracing() {
  Session& s = session();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.events.clear();
  s.tids.clear();
  s.epoch = std::chrono::steady_clock::now();
  s.on.store(true, std::memory_order_relaxed);
}

void endTracing() { session().on.store(false, std::memory_order_relaxed); }

std::uint64_t nowUs() {
  if (!tracingEnabled()) return 0;
  const auto d = std::chrono::steady_clock::now() - session().epoch;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(d).count());
}

void completeEvent(const char* name, std::uint64_t startUs,
                   const std::string& argsJson) {
  if (!tracingEnabled()) return;
  const std::uint64_t end = nowUs();
  Session& s = session();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.events.push_back({name, s.tidOf(std::this_thread::get_id()), startUs,
                      end > startUs ? end - startUs : 0, argsJson});
}

std::string traceJson() {
  Session& s = session();
  const std::lock_guard<std::mutex> lock(s.mu);
  std::string out = "{\"traceEvents\": [\n";
  out +=
      "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
      "\"args\": {\"name\": \"mframe\"}}";
  for (const Event& e : s.events) {
    out += util::format(
        ",\n  {\"name\": \"%s\", \"cat\": \"mframe\", \"ph\": \"X\", "
        "\"ts\": %llu, \"dur\": %llu, \"pid\": 1, \"tid\": %d",
        e.name, static_cast<unsigned long long>(e.startUs),
        static_cast<unsigned long long>(e.durUs), e.tid);
    if (!e.args.empty()) out += ", \"args\": " + e.args;
    out += "}";
  }
  out += "\n],\n\"displayTimeUnit\": \"ms\",\n";
  out += "\"metrics\": " + metricsJson() + "\n}\n";
  return out;
}

bool writeTrace(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << traceJson();
  return static_cast<bool>(out);
}

Span::Span(const char* name) {
  if (!tracingEnabled()) return;
  name_ = name;
  startUs_ = nowUs();
}

Span::~Span() {
  if (name_ != nullptr) completeEvent(name_, startUs_);
}

}  // namespace mframe::trace
