// Structured tracing and metrics for the synthesis pipeline.
//
// Two independent facilities behind one flag each, both process-global:
//
//  * **Spans** — RAII scopes that record wall-clock extents into an in-memory
//    buffer and serialize as Chrome trace-event JSON ("X" complete events),
//    loadable in chrome://tracing or Perfetto. Tracing is off by default;
//    a disabled Span costs one relaxed atomic load and no allocation.
//
//  * **Counters** — a fixed, enum-indexed registry of relaxed atomics for
//    the quantities the pipeline otherwise flies blind on (MFSA candidate
//    evaluations, mux-memo hits, dataflow worklist iterations, ...).
//    Increments are commutative sums, so every counter is *deterministic*:
//    bit-identical across `--jobs 1` and `--jobs 8` for the same work
//    (the explorer's determinism contract extends to the metrics block).
//    A disabled bump costs one relaxed load and a predicted-not-taken
//    branch, keeping the instrumented hot paths within noise.
//
// Span names must be string literals (the buffer stores the pointer).
// See docs/TRACE.md for the span/counter inventory and the JSON schemas.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mframe::trace {

// ---------------------------------------------------------------- counters

enum class Counter : int {
  MfsaRuns = 0,           ///< runMfsa invocations
  MfsaCandidates,         ///< (ALU × step) candidates costed
  MfsaCommits,            ///< moves committed
  MfsaRestarts,           ///< local-rescheduling restarts
  LiapunovUpdates,        ///< committed V updates (MFS + MFSA)
  LiapunovCellEvals,      ///< MFS move-frame cell energy evaluations
  MuxFullArrangements,    ///< from-scratch arrangeInputs runs
  MuxDeltaIncremental,    ///< arrangeInputsDelta resolved incrementally
  MuxDeltaRebuilds,       ///< arrangeInputsDelta full-rebuild fallbacks
  MuxMemoHits,            ///< per-(ALU × op) mux-delta memo hits
  MuxMemoMisses,          ///< memo misses (delta computed and cached)
  MuxMemoInvalidations,   ///< memo clears on commit
  DataflowWorklistIterations,  ///< dataflow-engine node evaluations
  DataflowWidenings,      ///< fixpoints where the widening threshold fired
  StaEndpoints,           ///< register/output endpoints timed by the STA
  ExploreConfigs,         ///< explorer sweep items dispatched
  ExploreFeasible,        ///< feasible candidates found by the explorer
  TuneIterations,         ///< tune-loop iterations executed
  TuneConeOps,            ///< operations extracted into tune cones (total)
  TuneStitches,           ///< cone re-schedules accepted and stitched back
  TuneRejectedStitches,   ///< stitches refused (verify or prove said no)
  AuditReachableStates,   ///< FSM states the audit proved reachable from reset
  AuditRbwChecks,         ///< register-operand definedness checks performed
  AuditFindings,          ///< AUD diagnostics emitted
  CacheHits,              ///< synthesis-cache entries replayed successfully
  CacheMisses,            ///< synthesis-cache lookups that ran the engine
  CacheStores,            ///< entries written to the synthesis cache
  CacheInvalidations,     ///< entries dropped (replay failed verification)
  CacheIncrementalHits,   ///< misses resolved by incremental resynthesis
  RangeStates,            ///< FSM states the range analysis interpreted
  RangeWidenings,         ///< loop-head interval widenings applied
  RangeAsserts,           ///< .bind range assertions checked
  RangeFindings,          ///< WID diagnostics emitted
  DfgFreezes,             ///< Dfg::freeze index builds
  DfgCsrEdges,            ///< CSR edges laid out across all freezes
  kCount
};

inline constexpr int kNumCounters = static_cast<int>(Counter::kCount);

/// Stable dotted name, e.g. "mfsa.candidates"; used as the JSON key.
std::string_view counterName(Counter c);

namespace detail {
extern std::atomic<bool> gCountersOn;
extern std::array<std::atomic<std::uint64_t>, kNumCounters> gCounters;
}  // namespace detail

inline bool countersEnabled() {
  return detail::gCountersOn.load(std::memory_order_relaxed);
}

void enableCounters(bool on);
void resetCounters();

/// Add `n` to counter `c`; a no-op (one load + branch) while disabled.
inline void bump(Counter c, std::uint64_t n = 1) {
  if (countersEnabled())
    detail::gCounters[static_cast<std::size_t>(c)].fetch_add(
        n, std::memory_order_relaxed);
}

std::uint64_t counterValue(Counter c);

/// All counters in declaration order (including zeros), for snapshots and
/// determinism comparisons.
std::vector<std::pair<std::string_view, std::uint64_t>> counterSnapshot();

/// Metrics block: {"schema": 1, "counters": {...}, "derived": {...}}.
/// Derived rates (e.g. mux.memoHitRate) are pure functions of the counters,
/// so the whole block is deterministic. `indent` prefixes every line.
std::string metricsJson(const std::string& indent = "");

/// Human-readable counter table plus derived rates.
std::string metricsText();

// ------------------------------------------------------------------- spans

bool tracingEnabled();

/// Start collecting spans: clears the buffer and sets the epoch.
void beginTracing();

/// Stop collecting; already-recorded events stay in the buffer.
void endTracing();

/// Microseconds since beginTracing(), or 0 while tracing is disabled.
std::uint64_t nowUs();

/// Append a complete ("X") event directly; `argsJson` is an optional JSON
/// object literal attached as the event's "args". For callers that measure
/// themselves (e.g. the thread pool's per-worker utilization records).
void completeEvent(const char* name, std::uint64_t startUs,
                   const std::string& argsJson = "");

/// The whole trace as Chrome trace-event JSON: {"traceEvents": [...],
/// "displayTimeUnit": "ms", "metrics": {...}} — the metrics block rides
/// along so one file carries both timings and counters.
std::string traceJson();

/// Serialize traceJson() to `path`; false when the file cannot be written.
bool writeTrace(const std::string& path);

/// RAII span. Records nothing while tracing is disabled. `name` must be a
/// string literal (or otherwise outlive the tracing session).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;  ///< nullptr = disabled at construction
  std::uint64_t startUs_ = 0;
};

}  // namespace mframe::trace
