// Clock-period exploration for chained designs (Section 5.4): the length of
// the control-step clock T decides how many dependent operations chain into
// one step, trading clock frequency against step count. These helpers sweep
// T and find the shortest clock that meets a step budget.
#pragma once

#include <string>
#include <vector>

#include "core/mfs.h"

namespace mframe::sched {

struct ClockSweepPoint {
  double clockNs = 0.0;
  bool feasible = false;
  int steps = 0;             ///< critical path at this clock (chained)
  double latencyNs = 0.0;    ///< steps * clockNs: end-to-end time
  std::map<dfg::FuType, int> fuCount;  ///< balanced MFS demand at that cs
};

/// Evaluate chained scheduling at each candidate clock period. For every
/// point the graph is scheduled with MFS at its chained critical path.
std::vector<ClockSweepPoint> sweepClock(const dfg::Dfg& g,
                                        const std::vector<double>& clocksNs);

/// The smallest clock period from `clocksNs` whose chained critical path
/// fits within `maxSteps`; 0.0 when none does.
double minimumClockFor(const dfg::Dfg& g, int maxSteps,
                       const std::vector<double>& clocksNs);

}  // namespace mframe::sched
