// Independent schedule verification. Every schedule produced anywhere in the
// library (MFS, MFSA, baselines, pipelining transforms) is re-checked here;
// the tests and benches treat a non-empty violation list as failure.
//
// This is now a thin adapter over analysis::lintSchedule (the structured
// diagnostics engine in src/analysis/); tools that want rule ids, severities
// and locations instead of bare strings should call that directly.
#pragma once

#include <string>
#include <vector>

#include "sched/schedule.h"

namespace mframe::sched {

/// Check `s` against the graph and `c`. Verifies:
///  * completeness: every schedulable operation is placed inside [1, cs];
///  * precedence: successors start after predecessors finish, except for
///    legal chains (allowChaining, accumulated delay within clockNs);
///  * occupancy: no two operations share an FU instance at the same time,
///    unless mutually exclusive (Section 5.1); multicycle operations hold
///    their instance for `cycles` consecutive steps (Section 5.3);
///    structurally pipelined FU types conflict only on equal start steps
///    (Section 5.5.1); with latency L, occupancy is folded mod L
///    (Section 5.5.2);
///  * resource limits: per-type instance counts within Constraints::fuLimit.
///
/// Returns human-readable violations; empty means the schedule is valid.
std::vector<std::string> verifySchedule(const Schedule& s, const Constraints& c);

}  // namespace mframe::sched
