// Human-readable schedule analytics: an ASCII Gantt chart of FU occupancy,
// per-type utilization, and the register-pressure profile (live values per
// step). Used by the CLI's --report and the examples; also a convenient
// probe for the "balanced schedule" claim — a balanced schedule shows high,
// even utilization.
#pragma once

#include <string>

#include "sched/schedule.h"

namespace mframe::sched {

struct UtilizationRow {
  dfg::FuType type{};
  int instances = 0;      ///< FU count (max column)
  int busySlots = 0;      ///< occupied (instance, step) slots
  double utilization = 0; ///< busySlots / (instances * steps)
};

struct ScheduleReport {
  std::vector<UtilizationRow> utilization;
  std::vector<int> liveValues;  ///< live cross-step values per step (1-based)
  int peakLive = 0;             ///< == minimum register count
  std::string gantt;            ///< ASCII chart, one row per FU instance

  std::string toString() const;
};

/// Analyze a complete schedule.
ScheduleReport analyzeSchedule(const Schedule& s);

}  // namespace mframe::sched
