// Textual schedule format, so schedules can be saved, diffed and reloaded
// across tool invocations (e.g. schedule once, re-cost under several
// libraries). Format:
//
//   schedule <design-name> steps=<cs>
//   place <signal> step=<s> col=<c>
//
// Loading validates against the graph (names resolve, placements in range).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "sched/schedule.h"

namespace mframe::sched {

/// Serialize a complete schedule.
std::string serializeSchedule(const Schedule& s);

/// Parse against `g`. Returns std::nullopt and fills *error on mismatch
/// (unknown signal, design-name mismatch, malformed line).
std::optional<Schedule> parseSchedule(const dfg::Dfg& g, std::string_view text,
                                      std::string* error = nullptr);

}  // namespace mframe::sched
