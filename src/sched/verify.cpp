#include "sched/verify.h"

#include "analysis/sched_rules.h"

namespace mframe::sched {

// Thin adapter over the structured schedule lint pass: the checking logic
// lives in analysis::lintSchedule, which emits typed Diagnostics; this
// legacy entry point keeps the historical string contract (same messages,
// same order, same early-out on incomplete placements).
std::vector<std::string> verifySchedule(const Schedule& s, const Constraints& c) {
  return analysis::lintSchedule(s, c).messages();
}

}  // namespace mframe::sched
