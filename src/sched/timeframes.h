// ASAP/ALAP time-frame analysis and mobilities (Section 3.2, steps 1-2),
// extended for multicycle operations (Section 5.3: an operation occupies
// `cycles` consecutive control steps) and chaining (Section 5.4: frames are
// "determined based on the given execution time of operations and the length
// of control step clock T").
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dfg/dfg.h"
#include "sched/schedule.h"

namespace mframe::sched {

/// Per-operation time frame. Steps are 1-based start steps; an operation
/// with `cycles` k scheduled at step s occupies [s, s+k-1].
struct TimeFrame {
  int asap = 0;
  int alap = 0;
  int mobility() const { return alap - asap; }
};

/// The result of frame analysis over a whole DFG.
class TimeFrames {
 public:
  const TimeFrame& of(dfg::NodeId id) const { return frames_[id]; }
  int asap(dfg::NodeId id) const { return frames_[id].asap; }
  int alap(dfg::NodeId id) const { return frames_[id].alap; }
  int mobility(dfg::NodeId id) const { return frames_[id].mobility(); }

  /// Length of the critical path in control steps (the minimum feasible cs).
  int criticalSteps() const { return criticalSteps_; }

  /// Peak same-type concurrency of the ASAP (resp. ALAP) schedule; the paper
  /// uses max(ASAP, ALAP) as the FU upper bound when the user gives none.
  const std::vector<int>& asapPeak() const { return asapPeak_; }
  const std::vector<int>& alapPeak() const { return alapPeak_; }
  int upperBound(dfg::FuType t) const;

  friend std::optional<TimeFrames> computeTimeFrames(const dfg::Dfg& g,
                                                     const Constraints& c,
                                                     std::string* error);

 private:
  std::vector<TimeFrame> frames_;
  int criticalSteps_ = 0;
  std::vector<int> asapPeak_ = std::vector<int>(dfg::kNumFuTypes, 0);
  std::vector<int> alapPeak_ = std::vector<int>(dfg::kNumFuTypes, 0);
};

/// Compute ASAP/ALAP frames of every schedulable operation within
/// c.timeSteps control steps. Honors multicycle durations; when
/// c.allowChaining is set, dependent operations may share a step as long as
/// the accumulated combinational delay fits in c.clockNs.
///
/// Returns std::nullopt (and fills *error if given) when the graph cannot
/// meet the time constraint.
std::optional<TimeFrames> computeTimeFrames(const dfg::Dfg& g,
                                            const Constraints& c,
                                            std::string* error = nullptr);

}  // namespace mframe::sched
