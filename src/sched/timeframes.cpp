#include "sched/timeframes.h"

#include <algorithm>

#include "trace/trace.h"
#include "util/strings.h"

namespace mframe::sched {

namespace {

/// When a value becomes available: at `offsetNs` into control step `step`.
/// (step, 0) means "start of step". Ordered lexicographically.
struct Avail {
  int step = 1;
  double offsetNs = 0.0;
  bool operator<(const Avail& o) const {
    return step != o.step ? step < o.step : offsetNs < o.offsetNs;
  }
};

struct AsapEntry {
  int start = 1;   ///< start control step
  Avail avail;     ///< when the result can be consumed
};

/// Generic ASAP over an arbitrary precedence relation, used forwards for
/// ASAP and on the reversed graph for ALAP. `order` must list schedulable
/// nodes so that every node appears after all nodes `predsOf` returns for
/// it. Statically polymorphic over the accessor so the CSR span walks stay
/// allocation-free.
template <typename PredsOf>
std::vector<AsapEntry> asapCore(const dfg::Dfg& g,
                                const std::vector<dfg::NodeId>& order,
                                const PredsOf& predsOf, const Constraints& c) {
  std::vector<AsapEntry> entry(g.size());
  for (dfg::NodeId id : order) {
    const int cycles = g.cyclesOf(id);
    Avail ready{1, 0.0};
    for (dfg::NodeId p : predsOf(id)) ready = std::max(ready, entry[p].avail);

    const double delay = g.delayOf(id);
    AsapEntry e;
    const bool chainable = c.allowChaining && cycles == 1 && delay <= c.clockNs;
    if (chainable && ready.offsetNs + delay <= c.clockNs) {
      // Fits behind its predecessors within the same step.
      e.start = ready.step;
      e.avail = {ready.step, ready.offsetNs + delay};
      // A value finishing exactly at the clock edge is only consumable in
      // the next step.
      if (e.avail.offsetNs >= c.clockNs) e.avail = {ready.step + 1, 0.0};
    } else {
      e.start = ready.offsetNs > 0.0 ? ready.step + 1 : ready.step;
      if (chainable) {
        e.avail = {e.start, delay};
        if (e.avail.offsetNs >= c.clockNs) e.avail = {e.start + 1, 0.0};
      } else {
        e.avail = {e.start + cycles, 0.0};
      }
    }
    entry[id] = e;
  }
  return entry;
}

}  // namespace

int TimeFrames::upperBound(dfg::FuType t) const {
  const auto i = static_cast<std::size_t>(t);
  return std::max(asapPeak_[i], alapPeak_[i]);
}

std::optional<TimeFrames> computeTimeFrames(const dfg::Dfg& g,
                                            const Constraints& c,
                                            std::string* error) {
  const trace::Span span("timeframes");
  TimeFrames tf;
  tf.frames_.assign(g.size(), {});

  const auto maybeOrder = g.topoOrder();
  if (!maybeOrder) {
    if (error) *error = "graph contains a cycle";
    return std::nullopt;
  }
  std::vector<dfg::NodeId> fwd;
  for (dfg::NodeId id : *maybeOrder)
    if (dfg::isSchedulable(g.kindOf(id))) fwd.push_back(id);

  const auto asap = asapCore(
      g, fwd, [&](dfg::NodeId id) { return g.opPreds(id); }, c);

  int critical = 1;
  for (dfg::NodeId id : fwd)
    critical = std::max(critical, asap[id].start + g.cyclesOf(id) - 1);
  tf.criticalSteps_ = critical;

  const int cs = c.timeSteps > 0 ? c.timeSteps : critical;
  if (critical > cs) {
    if (error)
      *error = util::format("time constraint %d < critical path %d steps", cs,
                            critical);
    return std::nullopt;
  }

  // ALAP by running the same ASAP core on the reversed precedence relation,
  // then mirroring reversed steps back into forward time.
  std::vector<dfg::NodeId> rev(fwd.rbegin(), fwd.rend());
  const auto rasap = asapCore(
      g, rev, [&](dfg::NodeId id) { return g.opSuccs(id); }, c);

  for (dfg::NodeId id : fwd) {
    const dfg::Node& n = g.node(id);
    tf.frames_[id].asap = asap[id].start;
    tf.frames_[id].alap = cs - rasap[id].start - g.cyclesOf(id) + 2;
    if (tf.frames_[id].alap < tf.frames_[id].asap) {
      // The ALAP mirror disagrees with ASAP — a chaining-asymmetric packing
      // would make every downstream mobility negative. No such input is
      // known, but an assert here would vanish in release builds and let
      // schedulers read an inverted frame as garbage mobility; fail loudly
      // through the error channel instead.
      if (error)
        *error = util::format(
            "internal: inverted time frame for '%s' (asap %d > alap %d)",
            n.name.c_str(), tf.frames_[id].asap, tf.frames_[id].alap);
      return std::nullopt;
    }
  }

  // Peak same-type concurrency of the two extreme schedules.
  auto peak = [&](auto startOf, std::vector<int>& out) {
    std::vector<std::vector<int>> perStep(dfg::kNumFuTypes,
                                          std::vector<int>(cs + 2, 0));
    for (dfg::NodeId id : fwd) {
      const auto t = static_cast<std::size_t>(dfg::fuTypeOf(g.kindOf(id)));
      for (int s = startOf(id); s < startOf(id) + g.cyclesOf(id) && s <= cs; ++s)
        ++perStep[t][s];
    }
    for (std::size_t t = 0; t < dfg::kNumFuTypes; ++t)
      out[t] = *std::max_element(perStep[t].begin(), perStep[t].end());
  };
  peak([&](dfg::NodeId id) { return tf.frames_[id].asap; }, tf.asapPeak_);
  peak([&](dfg::NodeId id) { return tf.frames_[id].alap; }, tf.alapPeak_);

  return tf;
}

}  // namespace mframe::sched
