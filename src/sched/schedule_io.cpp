#include "sched/schedule_io.h"

#include <sstream>

#include "util/strings.h"

namespace mframe::sched {

std::string serializeSchedule(const Schedule& s) {
  const dfg::Dfg& g = s.graph();
  std::string out =
      util::format("schedule %s steps=%d\n", g.name().c_str(), s.numSteps());
  for (dfg::NodeId id : g.operations())
    if (s.isPlaced(id))
      out += util::format("place %s step=%d col=%d\n", g.node(id).name.c_str(),
                          s.stepOf(id), s.columnOf(id));
  return out;
}

std::optional<Schedule> parseSchedule(const dfg::Dfg& g, std::string_view text,
                                      std::string* error) {
  auto fail = [&](int line, const std::string& msg) {
    if (error)
      *error = util::format("schedule parse error at line %d: %s", line,
                            msg.c_str());
    return std::nullopt;
  };

  Schedule s(g);
  std::istringstream in{std::string(text)};
  std::string raw;
  int lineNo = 0;
  bool sawHeader = false;
  while (std::getline(in, raw)) {
    ++lineNo;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const auto tok = util::splitWs(raw);
    if (tok.empty()) continue;

    if (tok[0] == "schedule") {
      if (tok.size() != 3 || !util::startsWith(tok[2], "steps="))
        return fail(lineNo, "expected: schedule <name> steps=<cs>");
      if (tok[1] != g.name())
        return fail(lineNo, "design name '" + tok[1] + "' does not match '" +
                                g.name() + "'");
      const long cs = util::parseLong(tok[2].substr(6));
      if (cs < 1) return fail(lineNo, "bad steps value");
      s.setNumSteps(static_cast<int>(cs));
      sawHeader = true;
    } else if (tok[0] == "place") {
      if (!sawHeader) return fail(lineNo, "place before schedule header");
      if (tok.size() != 4 || !util::startsWith(tok[2], "step=") ||
          !util::startsWith(tok[3], "col="))
        return fail(lineNo, "expected: place <signal> step=<s> col=<c>");
      const dfg::NodeId id = g.findByName(tok[1]);
      if (id == dfg::kNoNode)
        return fail(lineNo, "unknown signal '" + tok[1] + "'");
      if (!dfg::isSchedulable(g.node(id).kind))
        return fail(lineNo, "'" + tok[1] + "' is not an operation");
      const long step = util::parseLong(tok[2].substr(5));
      const long col = util::parseLong(tok[3].substr(4));
      if (step < 1 || step > s.numSteps() || col < 1)
        return fail(lineNo, "placement out of range");
      if (s.isPlaced(id)) return fail(lineNo, "duplicate placement of '" + tok[1] + "'");
      s.place(id, static_cast<int>(step), static_cast<int>(col));
    } else {
      return fail(lineNo, "unknown statement '" + tok[0] + "'");
    }
  }
  if (!sawHeader) return fail(0, "missing 'schedule' header");
  return s;
}

}  // namespace mframe::sched
