// Priority determination (Section 3.2 step 2 and the multicycle refinements
// of Section 5.3).
//
// The paper's rule set:
//   * sweep the ALAP schedule from the first control step upward, so
//     operations forced early come first;
//   * within a step, lower mobility wins ("if mob[p] < mob[q] then p has
//     more priority"), ties broken arbitrarily;
//   * multicycle refinement: when two k-cycle operations differ in mobility
//     by less than k, the rule is reversed — the one with more mobility goes
//     first, "because in this special case the operation with more mobility
//     has always a better chance to use the empty positions";
//   * tie break: the operation with earlier predecessors (in control steps)
//     gets higher priority.
#pragma once

#include <vector>

#include "dfg/dfg.h"
#include "sched/timeframes.h"

namespace mframe::sched {

/// How to order operations. MobilityRule is the paper's scheme; the other
/// two exist for the priority-rule ablation bench.
enum class PriorityRule {
  Mobility,          ///< the paper's rule (with the multicycle refinement)
  MobilityNoReverse, ///< ablation: paper's rule without the multicycle reversal
  InsertionOrder,    ///< ablation: graph insertion order (no intelligence)
};

/// Produce the scheduling order of all schedulable operations.
std::vector<dfg::NodeId> priorityOrder(const dfg::Dfg& g, const TimeFrames& tf,
                                       PriorityRule rule = PriorityRule::Mobility);

}  // namespace mframe::sched
