#include "sched/slack.h"

#include "util/strings.h"

namespace mframe::sched {

std::optional<SlackReport> analyzeSlack(const Schedule& s, const Constraints& c,
                                        std::string* error) {
  if (s.sharedGraph() == nullptr) {
    if (error != nullptr) *error = "analyzeSlack: schedule has no graph";
    return std::nullopt;
  }
  const dfg::Dfg& g = s.graph();
  for (dfg::NodeId id : g.operations()) {
    if (!s.isPlaced(id)) {
      if (error != nullptr)
        *error = util::format("analyzeSlack: operation '%s' is unplaced",
                              g.node(id).name.c_str());
      return std::nullopt;
    }
  }

  Constraints cc = c;
  cc.timeSteps = s.numSteps();
  const auto tf = computeTimeFrames(g, cc);
  if (!tf) {
    if (error != nullptr)
      *error = util::format(
          "analyzeSlack: no time frames at the schedule's own length "
          "(%d steps) — the schedule is infeasible under these constraints",
          s.numSteps());
    return std::nullopt;
  }

  SlackReport rep;
  double total = 0.0;
  for (dfg::NodeId id : g.operations()) {
    OpSlack os;
    os.op = id;
    os.earlySlack = s.stepOf(id) - tf->asap(id);
    os.lateSlack = tf->alap(id) - s.stepOf(id);
    if (os.critical()) ++rep.criticalCount;
    total += os.earlySlack + os.lateSlack;
    rep.ops.push_back(os);
  }
  if (!rep.ops.empty())
    rep.meanTotalSlack = total / static_cast<double>(rep.ops.size());
  return rep;
}

std::string SlackReport::toString(const dfg::Dfg& g) const {
  std::string out = util::format(
      "slack: %d critical op(s) of %zu, mean total slack %.2f steps\n",
      criticalCount, ops.size(), meanTotalSlack);
  for (const OpSlack& os : ops)
    if (os.critical())
      out += util::format("  critical: %s\n", g.node(os.op).name.c_str());
  return out;
}

std::string SlackReport::renderJson(const dfg::Dfg& g) const {
  std::string out = "{\n  \"schema\": 1,\n";
  out += util::format("  \"criticalCount\": %d,\n", criticalCount);
  out += util::format("  \"meanTotalSlack\": %.4f,\n", meanTotalSlack);
  out += "  \"ops\": [";
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const OpSlack& os = ops[i];
    out += i == 0 ? "\n" : ",\n";
    out += util::format(
        "    {\"op\": \"%s\", \"early\": %d, \"late\": %d, "
        "\"critical\": %s}",
        g.node(os.op).name.c_str(), os.earlySlack, os.lateSlack,
        os.critical() ? "true" : "false");
  }
  out += ops.empty() ? "]\n" : "\n  ]\n";
  out += "}";
  return out;
}

}  // namespace mframe::sched
