#include "sched/slack.h"

#include "util/strings.h"

namespace mframe::sched {

SlackReport analyzeSlack(const Schedule& s, const Constraints& c) {
  SlackReport rep;
  const dfg::Dfg& g = s.graph();
  Constraints cc = c;
  cc.timeSteps = s.numSteps();
  const auto tf = computeTimeFrames(g, cc);
  if (!tf) return rep;

  double total = 0.0;
  for (dfg::NodeId id : g.operations()) {
    if (!s.isPlaced(id)) continue;
    OpSlack os;
    os.op = id;
    os.earlySlack = s.stepOf(id) - tf->asap(id);
    os.lateSlack = tf->alap(id) - s.stepOf(id);
    if (os.critical()) ++rep.criticalCount;
    total += os.earlySlack + os.lateSlack;
    rep.ops.push_back(os);
  }
  if (!rep.ops.empty()) rep.meanTotalSlack = total / static_cast<double>(rep.ops.size());
  return rep;
}

std::string SlackReport::toString(const dfg::Dfg& g) const {
  std::string out = util::format(
      "slack: %d critical op(s) of %zu, mean total slack %.2f steps\n",
      criticalCount, ops.size(), meanTotalSlack);
  for (const OpSlack& os : ops)
    if (os.critical())
      out += util::format("  critical: %s\n", g.node(os.op).name.c_str());
  return out;
}

}  // namespace mframe::sched
