// Schedule container and the constraint bundle shared by the schedulers
// (MFS, MFSA, baselines) and the schedule verifier.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dfg/dfg.h"

namespace mframe::sched {

/// Constraints and feature switches for one scheduling run. This mirrors the
/// "constraints and specifications" the user hands SYNTEST in Section 6.
struct Constraints {
  /// Time constraint: total number of control steps (cs). Required for
  /// time-constrained runs; in resource-constrained mode it is treated as an
  /// upper bound that may be raised by the scheduler.
  int timeSteps = 0;

  /// Per-FU-type resource bounds (max_j). Types absent from the map are
  /// bounded by the ASAP/ALAP concurrency upper bound (Section 3.2 step 2).
  std::map<dfg::FuType, int> fuLimit;

  /// Section 5.4: allow chained data-dependent operations within one control
  /// step, subject to the clock period below.
  bool allowChaining = false;

  /// Control-step clock period in nanoseconds (the "length of control step
  /// clock (T)" of Section 5.4). Only consulted when allowChaining is true.
  double clockNs = 100.0;

  /// Section 5.5.2: functional-pipelining latency L (initiation interval).
  /// 0 disables folding. With L > 0, operations in control steps t and
  /// t + k*L execute concurrently and must not share an FU instance.
  int latency = 0;

  /// Section 5.5.1: FU types implemented as multi-stage pipelined units.
  /// Operations on such a unit conflict only when they start in the same
  /// control step (one initiation per step).
  std::set<dfg::FuType> pipelinedFus;
};

/// Where one operation landed on the paper's 2-D placement table: a control
/// step (vertical axis) and an FU-instance column of its type (horizontal).
struct Placement {
  int step = 0;    ///< 1-based start control step
  int column = 0;  ///< 1-based FU instance within the op's type
};

/// A (partial or complete) schedule: the placement of every operation on the
/// grid, plus the achieved number of control steps.
///
/// The schedule co-owns a snapshot of the graph it was built against, so a
/// result object stays valid after the caller's DFG goes out of scope (e.g.
/// `runMfs(makeGraph(), opts)`).
class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(const dfg::Dfg& g)
      : graph_(std::make_shared<dfg::Dfg>(g)),
        place_(g.size()),
        placed_(g.size(), false) {}

  /// Share an existing snapshot instead of deep-copying the graph. The
  /// schedulers take one snapshot per run and hand it to every restart —
  /// copying a 100k-node graph hundreds of times dominated large runs.
  explicit Schedule(std::shared_ptr<const dfg::Dfg> g)
      : graph_(std::move(g)),
        place_(graph_->size()),
        placed_(graph_->size(), false) {}

  const dfg::Dfg& graph() const { return *graph_; }
  std::shared_ptr<const dfg::Dfg> sharedGraph() const { return graph_; }

  void setNumSteps(int cs) { numSteps_ = cs; }
  int numSteps() const { return numSteps_; }

  void place(dfg::NodeId id, int step, int column);
  void unplace(dfg::NodeId id);
  bool isPlaced(dfg::NodeId id) const { return placed_[id]; }
  const Placement& at(dfg::NodeId id) const { return place_[id]; }
  int stepOf(dfg::NodeId id) const { return place_[id].step; }
  int columnOf(dfg::NodeId id) const { return place_[id].column; }
  /// Last step the operation occupies (start + cycles - 1). The result is
  /// available at the end of this step.
  int endStepOf(dfg::NodeId id) const {
    return place_[id].step + graph_->node(id).cycles - 1;
  }

  /// Number of placed operations.
  std::size_t placedCount() const;

  /// Highest column in use per FU type == number of FU instances required.
  std::map<dfg::FuType, int> fuCount() const;

  /// Maximum same-type concurrency per step (ignores columns); useful to
  /// check balance independently of the column assignment.
  std::map<dfg::FuType, int> peakConcurrency() const;

  /// Operations whose execution interval covers `step`.
  std::vector<dfg::NodeId> opsInStep(int step) const;

  /// Map node -> start step for the placed subset (for DOT export etc.).
  std::map<dfg::NodeId, int> stepMap() const;

  /// Human-readable dump (one line per step).
  std::string toString() const;

 private:
  std::shared_ptr<const dfg::Dfg> graph_;
  int numSteps_ = 0;
  std::vector<Placement> place_;
  std::vector<bool> placed_;
};

}  // namespace mframe::sched
