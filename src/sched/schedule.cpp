#include "sched/schedule.h"

#include <algorithm>
#include <cassert>

#include "util/strings.h"

namespace mframe::sched {

void Schedule::place(dfg::NodeId id, int step, int column) {
  assert(id < place_.size());
  assert(step >= 1 && column >= 1);
  place_[id] = {step, column};
  placed_[id] = true;
}

void Schedule::unplace(dfg::NodeId id) {
  assert(id < place_.size());
  placed_[id] = false;
  place_[id] = {};
}

std::size_t Schedule::placedCount() const {
  return static_cast<std::size_t>(std::count(placed_.begin(), placed_.end(), true));
}

std::map<dfg::FuType, int> Schedule::fuCount() const {
  std::map<dfg::FuType, int> out;
  for (const dfg::Node& n : graph_->nodes()) {
    if (!dfg::isSchedulable(n.kind) || !placed_[n.id]) continue;
    const dfg::FuType t = dfg::fuTypeOf(n.kind);
    out[t] = std::max(out[t], place_[n.id].column);
  }
  return out;
}

std::map<dfg::FuType, int> Schedule::peakConcurrency() const {
  std::map<dfg::FuType, std::map<int, int>> perStep;
  for (const dfg::Node& n : graph_->nodes()) {
    if (!dfg::isSchedulable(n.kind) || !placed_[n.id]) continue;
    const dfg::FuType t = dfg::fuTypeOf(n.kind);
    for (int s = place_[n.id].step; s < place_[n.id].step + n.cycles; ++s)
      ++perStep[t][s];
  }
  std::map<dfg::FuType, int> out;
  for (const auto& [t, steps] : perStep)
    for (const auto& [s, c] : steps) out[t] = std::max(out[t], c);
  return out;
}

std::vector<dfg::NodeId> Schedule::opsInStep(int step) const {
  std::vector<dfg::NodeId> out;
  for (const dfg::Node& n : graph_->nodes()) {
    if (!dfg::isSchedulable(n.kind) || !placed_[n.id]) continue;
    if (place_[n.id].step <= step && step < place_[n.id].step + n.cycles)
      out.push_back(n.id);
  }
  return out;
}

std::map<dfg::NodeId, int> Schedule::stepMap() const {
  std::map<dfg::NodeId, int> out;
  for (const dfg::Node& n : graph_->nodes())
    if (dfg::isSchedulable(n.kind) && placed_[n.id]) out[n.id] = place_[n.id].step;
  return out;
}

std::string Schedule::toString() const {
  std::string out = util::format("schedule of '%s' in %d steps\n",
                                 graph_->name().c_str(), numSteps_);
  // Bucket occupied steps in one pass — opsInStep() per step is O(n) and
  // made the dump quadratic on deep schedules. Walking nodes in id order
  // per bucket preserves the exact legacy line layout.
  std::vector<std::vector<dfg::NodeId>> byStep(
      static_cast<std::size_t>(std::max(numSteps_, 0)) + 1);
  for (const dfg::Node& n : graph_->nodes()) {
    if (!dfg::isSchedulable(n.kind) || !placed_[n.id]) continue;
    for (int s = place_[n.id].step;
         s < place_[n.id].step + n.cycles && s <= numSteps_; ++s)
      if (s >= 1) byStep[static_cast<std::size_t>(s)].push_back(n.id);
  }
  for (int s = 1; s <= numSteps_; ++s) {
    out += util::format("  step %2d:", s);
    for (dfg::NodeId id : byStep[static_cast<std::size_t>(s)]) {
      const dfg::Node& n = graph_->node(id);
      out += util::format(" %s(%s)@%d", n.name.c_str(),
                          std::string(dfg::kindSymbol(n.kind)).c_str(),
                          place_[id].column);
    }
    out += "\n";
  }
  return out;
}

}  // namespace mframe::sched
