#include "sched/stitch.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "sched/verify.h"
#include "util/strings.h"

namespace mframe::sched {

namespace {

/// True when `full` id is a cone member.
bool isMember(const dfg::ConeCut& cut, dfg::NodeId id) {
  return cut.toCone.count(id) > 0;
}

}  // namespace

std::optional<StitchResult> stitchSchedule(const Schedule& full,
                                           const Constraints& c,
                                           const dfg::ConeCut& cut,
                                           const Schedule& coneSched,
                                           std::string* error) {
  const dfg::Dfg& g = full.graph();

  // Original window of the cone members in the full schedule.
  int oldEnd = 0;
  for (const auto& [fid, cid] : cut.toCone) {
    (void)cid;
    oldEnd = std::max(oldEnd, full.endStepOf(fid));
  }

  // Earliest base step honoring every frontier dependence: a member reading
  // an out-of-cone producer must start strictly after the producer finishes
  // (the boundary pin is conservative — no chaining across it).
  int base = 1;
  for (const auto& [fid, cid] : cut.toCone) {
    for (dfg::NodeId in : g.node(fid).inputs) {
      if (isMember(cut, in) || !dfg::isSchedulable(g.node(in).kind)) continue;
      const int coneStep = coneSched.stepOf(cid);
      base = std::max(base, full.endStepOf(in) + 2 - coneStep);
    }
  }

  // New placements for the members; everything else starts from the old
  // placement and is repaired below.
  Schedule out(g);
  int newEnd = 0;
  for (const auto& [fid, cid] : cut.toCone) {
    const int step = base - 1 + coneSched.stepOf(cid);
    out.place(fid, step, coneSched.columnOf(cid));
    newEnd = std::max(newEnd, base - 1 + coneSched.endStepOf(cid));
  }
  const int delta = std::max(0, newEnd - oldEnd);

  // Repair pass over non-members in id (topological) order: shift the tail
  // past the old window by the cone's growth, then push each op late enough
  // for its (possibly moved) producers. A consumer that chained with its
  // producer (same end step) keeps chaining; any other edge needs a full
  // step between them.
  for (const dfg::Node& n : g.nodes()) {
    if (!dfg::isSchedulable(n.kind) || isMember(cut, n.id)) continue;
    if (!full.isPlaced(n.id)) {
      if (error != nullptr)
        *error = util::format("stitch: operation '%s' is unplaced in the "
                              "enclosing schedule", n.name.c_str());
      return std::nullopt;
    }
    int start = full.stepOf(n.id);
    if (start > oldEnd) start += delta;
    for (dfg::NodeId in : n.inputs) {
      if (!dfg::isSchedulable(g.node(in).kind)) continue;
      const bool chained = full.stepOf(n.id) == full.endStepOf(in) &&
                           c.allowChaining;
      const int producerEnd = out.isPlaced(in)
                                  ? out.endStepOf(in)
                                  : full.endStepOf(in);
      start = std::max(start, chained ? producerEnd : producerEnd + 1);
    }
    out.place(n.id, start, full.columnOf(n.id));
  }

  // Re-pack FU columns left-edge style: per type, order by (start, original
  // column, id) and drop each op into the lowest column free over its whole
  // execution interval. Deterministic, and occupancy-clean for plain
  // (unfolded, unpipelined) schedules; anything subtler is caught by the
  // verifier below.
  std::map<dfg::FuType, std::vector<dfg::NodeId>> byType;
  for (const dfg::NodeId op : g.operations())
    byType[dfg::fuTypeOf(g.node(op).kind)].push_back(op);
  for (auto& [type, ops] : byType) {
    (void)type;
    std::stable_sort(ops.begin(), ops.end(),
                     [&](dfg::NodeId a, dfg::NodeId b) {
                       return std::make_tuple(out.stepOf(a), full.columnOf(a),
                                              a) <
                              std::make_tuple(out.stepOf(b), full.columnOf(b),
                                              b);
                     });
    std::vector<int> lastEnd;  // per column (0-based), last occupied step
    for (dfg::NodeId op : ops) {
      const int start = out.stepOf(op);
      std::size_t col = 0;
      while (col < lastEnd.size() && lastEnd[col] >= start) ++col;
      if (col == lastEnd.size()) lastEnd.push_back(0);
      lastEnd[col] = start + g.node(op).cycles - 1;
      out.place(op, start, static_cast<int>(col) + 1);
    }
  }

  int steps = 0;
  for (const dfg::NodeId op : g.operations())
    steps = std::max(steps, out.endStepOf(op));
  out.setNumSteps(std::max(steps, 1));

  Constraints check = c;
  if (check.timeSteps != 0 && out.numSteps() > check.timeSteps)
    check.timeSteps = out.numSteps();
  const std::vector<std::string> violations = verifySchedule(out, check);
  if (!violations.empty()) {
    if (error != nullptr)
      *error = "stitch: merged schedule invalid: " + violations.front();
    return std::nullopt;
  }

  StitchResult r;
  r.schedule = std::move(out);
  r.base = base;
  r.delta = delta;
  return r;
}

}  // namespace mframe::sched
