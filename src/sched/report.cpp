#include "sched/report.h"

#include <algorithm>
#include <map>

#include "alloc/lifetimes.h"
#include "util/strings.h"

namespace mframe::sched {

ScheduleReport analyzeSchedule(const Schedule& s) {
  ScheduleReport rep;
  const dfg::Dfg& g = s.graph();
  const int cs = s.numSteps();

  // -- occupancy per (type, instance, step) ---------------------------------
  std::map<std::pair<dfg::FuType, int>, std::vector<dfg::NodeId>> rows;
  for (const dfg::Node& n : g.nodes()) {
    if (!dfg::isSchedulable(n.kind) || !s.isPlaced(n.id)) continue;
    rows[{dfg::fuTypeOf(n.kind), s.columnOf(n.id)}].push_back(n.id);
  }

  std::map<dfg::FuType, std::pair<int, int>> util;  // type -> (instances, busy)
  std::string gantt;
  for (const auto& [key, ops] : rows) {
    const auto [type, col] = key;
    auto& u = util[type];
    u.first = std::max(u.first, col);
    std::vector<std::string> cells(static_cast<std::size_t>(cs) + 1);
    for (dfg::NodeId id : ops) {
      const dfg::Node& n = g.node(id);
      for (int st = s.stepOf(id); st < s.stepOf(id) + n.cycles && st <= cs; ++st) {
        auto& cell = cells[static_cast<std::size_t>(st)];
        if (!cell.empty()) cell += "/";  // mutually exclusive co-location
        cell += st == s.stepOf(id) ? n.name : "..";
        ++u.second;
      }
    }
    std::size_t w = 4;
    for (const auto& c : cells) w = std::max(w, c.size());
    gantt += util::padRight(util::format("%s#%d", std::string(dfg::fuTypeName(type)).c_str(), col), 14) + "|";
    for (int st = 1; st <= cs; ++st)
      gantt += util::padLeft(cells[static_cast<std::size_t>(st)], w) + "|";
    gantt += "\n";
  }
  rep.gantt = std::move(gantt);

  for (const auto& [type, iu] : util) {
    UtilizationRow row;
    row.type = type;
    row.instances = iu.first;
    row.busySlots = iu.second;
    row.utilization =
        cs > 0 && iu.first > 0
            ? static_cast<double>(iu.second) / (iu.first * cs)
            : 0.0;
    rep.utilization.push_back(row);
  }

  // -- register pressure -----------------------------------------------------
  rep.liveValues.assign(static_cast<std::size_t>(cs) + 2, 0);
  for (const alloc::Lifetime& lt : alloc::computeLifetimes(g, s)) {
    if (!lt.needsRegister) continue;
    // Occupies (birth, death]; count it live in steps birth+1 .. death.
    for (int st = lt.birth + 1; st <= std::min(lt.death, cs + 1); ++st)
      ++rep.liveValues[static_cast<std::size_t>(st)];
  }
  for (int v : rep.liveValues) rep.peakLive = std::max(rep.peakLive, v);
  return rep;
}

std::string ScheduleReport::toString() const {
  std::string out = "FU occupancy (Gantt):\n" + gantt;
  out += "utilization:\n";
  for (const auto& u : utilization)
    out += util::format("  %-12s %d instance(s), %2d busy slots, %5.1f%%\n",
                        std::string(dfg::fuTypeName(u.type)).c_str(),
                        u.instances, u.busySlots, 100.0 * u.utilization);
  out += util::format("register pressure: peak %d live value(s); per step:",
                      peakLive);
  for (std::size_t st = 1; st < liveValues.size(); ++st)
    out += util::format(" %d", liveValues[st]);
  out += "\n";
  return out;
}

}  // namespace mframe::sched
