#include "sched/priority.h"

#include <algorithm>

namespace mframe::sched {

namespace {

/// Latest completion step among scheduled-time predecessors, measured on the
/// ASAP schedule — "earlier predecessors (in terms of control steps)" get
/// higher priority (Section 5.3 tie-break).
int predReadyStep(const dfg::Dfg& g, const TimeFrames& tf, dfg::NodeId id) {
  int ready = 0;
  for (dfg::NodeId p : g.opPreds(id))
    ready = std::max(ready, tf.asap(p) + g.cyclesOf(p) - 1);
  return ready;
}

}  // namespace

std::vector<dfg::NodeId> priorityOrder(const dfg::Dfg& g, const TimeFrames& tf,
                                       PriorityRule rule) {
  const auto opsSpan = g.operations();
  std::vector<dfg::NodeId> ops(opsSpan.begin(), opsSpan.end());
  if (rule == PriorityRule::InsertionOrder) return ops;

  const bool reverseRule = rule == PriorityRule::Mobility;
  std::stable_sort(ops.begin(), ops.end(), [&](dfg::NodeId a, dfg::NodeId b) {
    // Outer sweep: ALAP control step, first step first.
    if (tf.alap(a) != tf.alap(b)) return tf.alap(a) < tf.alap(b);

    const int ma = tf.mobility(a);
    const int mb = tf.mobility(b);
    const int ca = g.cyclesOf(a);
    const int cb = g.cyclesOf(b);
    if (ma != mb) {
      // Section 5.3: for two multicycle operations whose mobility gap is
      // smaller than their duration, reverse the mobility rule.
      if (reverseRule && ca > 1 && cb > 1 && std::abs(ma - mb) < std::max(ca, cb))
        return ma > mb;
      return ma < mb;
    }
    // Tie-break: earlier predecessors first.
    const int ra = predReadyStep(g, tf, a);
    const int rb = predReadyStep(g, tf, b);
    if (ra != rb) return ra < rb;
    return a < b;
  });
  return ops;
}

}  // namespace mframe::sched
