// Slack analysis over a finished schedule: how far each operation sits from
// its frame edges, which operations are schedule-critical (zero slack both
// ways), and the slack distribution — the quantitative face of "balanced
// schedule" beyond FU counts.
#pragma once

#include <string>
#include <vector>

#include "sched/schedule.h"
#include "sched/timeframes.h"

namespace mframe::sched {

struct OpSlack {
  dfg::NodeId op = dfg::kNoNode;
  int earlySlack = 0;  ///< scheduled step - ASAP
  int lateSlack = 0;   ///< ALAP - scheduled step
  bool critical() const { return earlySlack + lateSlack == 0; }
};

struct SlackReport {
  std::vector<OpSlack> ops;
  int criticalCount = 0;
  double meanTotalSlack = 0.0;  ///< mean of (early + late) over all ops

  std::string toString(const dfg::Dfg& g) const;
};

/// Analyze `s` against fresh time frames at the schedule's own length.
/// The schedule must be complete and valid.
SlackReport analyzeSlack(const Schedule& s, const Constraints& c);

}  // namespace mframe::sched
