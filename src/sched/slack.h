// Slack analysis over a finished schedule: how far each operation sits from
// its frame edges, which operations are schedule-critical (zero slack both
// ways), and the slack distribution — the quantitative face of "balanced
// schedule" beyond FU counts.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sched/schedule.h"
#include "sched/timeframes.h"

namespace mframe::sched {

struct OpSlack {
  dfg::NodeId op = dfg::kNoNode;
  int earlySlack = 0;  ///< scheduled step - ASAP
  int lateSlack = 0;   ///< ALAP - scheduled step
  bool critical() const { return earlySlack + lateSlack == 0; }
};

struct SlackReport {
  std::vector<OpSlack> ops;
  int criticalCount = 0;
  double meanTotalSlack = 0.0;  ///< mean of (early + late) over all ops

  std::string toString(const dfg::Dfg& g) const;

  /// Machine-readable rendering with a schema marker:
  /// {"schema": 1, "criticalCount": N, "meanTotalSlack": X, "ops": [...]}.
  /// This is the convergence witness `analyze --json` and `tune --json`
  /// embed.
  std::string renderJson(const dfg::Dfg& g) const;
};

/// Analyze `s` against fresh time frames at the schedule's own length.
/// Returns nullopt (with a message in `*error`, when given) when the
/// schedule has no graph, is incomplete, or admits no time frames at its own
/// length — previously these cases were UB or a silent empty report.
std::optional<SlackReport> analyzeSlack(const Schedule& s,
                                        const Constraints& c,
                                        std::string* error = nullptr);

}  // namespace mframe::sched
