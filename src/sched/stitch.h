// Stitching a re-scheduled cone back into its enclosing schedule — the
// splice step of the `mframe tune` loop. The cone scheduler only sees the
// extracted subgraph; this module re-embeds its placements into the full
// schedule, honoring the frontier boundary (every cone member must start
// after its out-of-cone producers finish), shifting the downstream tail when
// the cone got longer, and re-packing FU columns so occupancy stays legal.
#pragma once

#include <optional>
#include <string>

#include "dfg/transforms.h"
#include "sched/schedule.h"

namespace mframe::sched {

struct StitchResult {
  Schedule schedule;   ///< the stitched full schedule
  int base = 0;        ///< full-schedule step cone step 1 landed on
  int delta = 0;       ///< steps the downstream tail shifted (>= 0)
};

/// Splice `coneSched` (a schedule of `cut.cone`) into `full`. The cone block
/// is placed at the earliest step that satisfies every frontier dependence
/// and is no earlier than the original window start; operations strictly
/// after the original window shift down by the cone's growth; every FU
/// column is re-assigned left-edge style (by start step, then original
/// column, then id) so the merged placement is occupancy-clean. The result
/// is checked with verifySchedule under `c` — on any violation the stitch is
/// abandoned, *error (when given) describes why, and nullopt is returned.
std::optional<StitchResult> stitchSchedule(const Schedule& full,
                                           const Constraints& c,
                                           const dfg::ConeCut& cut,
                                           const Schedule& coneSched,
                                           std::string* error = nullptr);

}  // namespace mframe::sched
