#include "sched/clock_explorer.h"

#include <algorithm>

#include "sched/timeframes.h"

namespace mframe::sched {

std::vector<ClockSweepPoint> sweepClock(const dfg::Dfg& g,
                                        const std::vector<double>& clocksNs) {
  std::vector<ClockSweepPoint> out;
  for (double clk : clocksNs) {
    ClockSweepPoint p;
    p.clockNs = clk;
    Constraints c;
    c.allowChaining = true;
    c.clockNs = clk;
    const auto tf = computeTimeFrames(g, c);
    if (!tf) {
      out.push_back(p);
      continue;
    }
    p.steps = tf->criticalSteps();
    p.latencyNs = p.steps * clk;

    core::MfsOptions o;
    o.constraints = c;
    o.constraints.timeSteps = p.steps;
    const auto r = core::runMfs(g, o);
    p.feasible = r.feasible;
    if (r.feasible) p.fuCount = r.fuCount;
    out.push_back(std::move(p));
  }
  return out;
}

double minimumClockFor(const dfg::Dfg& g, int maxSteps,
                       const std::vector<double>& clocksNs) {
  std::vector<double> sorted = clocksNs;
  std::sort(sorted.begin(), sorted.end());
  for (double clk : sorted) {
    Constraints c;
    c.allowChaining = true;
    c.clockNs = clk;
    const auto tf = computeTimeFrames(g, c);
    if (tf && tf->criticalSteps() <= maxSteps) return clk;
  }
  return 0.0;
}

}  // namespace mframe::sched
