// ASCII table rendering used by the Table-1/Table-2 reproduction benches and
// the example programs. Keeps all formatting concerns out of the algorithms.
#pragma once

#include <string>
#include <vector>

namespace mframe::util {

/// A simple column-aligned ASCII table with an optional title and a header
/// row. Cells are strings; numeric alignment is the caller's concern.
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Set the header row. Column count is fixed by the widest row at render.
  void setHeader(std::vector<std::string> header) { header_ = std::move(header); }

  /// Append a data row.
  void addRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Append a horizontal separator at the current position.
  void addSeparator() { separators_.push_back(rows_.size()); }

  std::size_t rowCount() const { return rows_.size(); }

  /// Render with `| a | b |` style borders.
  std::string render() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> separators_;  // separator before row index i
};

}  // namespace mframe::util
