#include "util/table.h"

#include <algorithm>

#include "util/strings.h"

namespace mframe::util {

std::string Table::render() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  if (cols == 0) return title_.empty() ? std::string{} : title_ + "\n";

  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto renderRow = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      line += " " + padRight(cell, width[c]) + " |";
    }
    return line + "\n";
  };
  auto rule = [&]() {
    std::string line = "+";
    for (std::size_t c = 0; c < cols; ++c) line += std::string(width[c] + 2, '-') + "+";
    return line + "\n";
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += rule();
  if (!header_.empty()) {
    out += renderRow(header_);
    out += rule();
  }
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (std::find(separators_.begin(), separators_.end(), i) != separators_.end())
      out += rule();
    out += renderRow(rows_[i]);
  }
  out += rule();
  return out;
}

}  // namespace mframe::util
