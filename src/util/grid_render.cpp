#include "util/grid_render.h"

#include <algorithm>
#include <cassert>

#include "util/strings.h"

namespace mframe::util {

GridRender::Cell& GridRender::at(std::size_t step, std::size_t col) {
  assert(step >= 1 && step <= steps_ && col >= 1 && col <= cols_);
  return cell_[(step - 1) * cols_ + (col - 1)];
}

const GridRender::Cell& GridRender::at(std::size_t step, std::size_t col) const {
  assert(step >= 1 && step <= steps_ && col >= 1 && col <= cols_);
  return cell_[(step - 1) * cols_ + (col - 1)];
}

void GridRender::setLabel(std::size_t step, std::size_t col, std::string label) {
  at(step, col).label = std::move(label);
}

void GridRender::addMark(std::size_t step, std::size_t col, char mark) {
  std::string& m = at(step, col).marks;
  if (m.find(mark) == std::string::npos) m.push_back(mark);
}

std::string GridRender::render() const {
  // Cell text = label, then marks in brackets: "r[PM]".
  std::vector<std::string> text(cell_.size());
  std::size_t w = 3;
  for (std::size_t i = 0; i < cell_.size(); ++i) {
    text[i] = cell_[i].label;
    if (!cell_[i].marks.empty()) text[i] += "[" + cell_[i].marks + "]";
    w = std::max(w, text[i].size());
  }

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += "  " + yAxis_ + " (rows) vs " + xAxis_ + " (cols)\n";

  // Column header.
  out += padLeft("", 5);
  for (std::size_t c = 1; c <= cols_; ++c)
    out += " " + padLeft(std::to_string(c), w);
  out += "\n";
  out += padLeft("", 5);
  for (std::size_t c = 0; c < cols_; ++c) out += " " + std::string(w, '-');
  out += "\n";

  for (std::size_t s = 1; s <= steps_; ++s) {
    out += padLeft(std::to_string(s), 4) + " |";
    for (std::size_t c = 1; c <= cols_; ++c) {
      out += padLeft(text[(s - 1) * cols_ + (c - 1)], w) + " ";
    }
    out += "\n";
  }
  for (const auto& l : legend_) out += "  " + l + "\n";
  return out;
}

}  // namespace mframe::util
