// ASCII rendering of the 2-D placement table (FU instance x control step)
// used to reproduce Figures 1 and 2 of the paper and for debugging dumps of
// the move-frame machinery.
#pragma once

#include <string>
#include <vector>

namespace mframe::util {

/// A printable cell grid. Row 0 is control step 1 (the paper draws control
/// steps top-to-bottom); column 0 is FU instance 1.
class GridRender {
 public:
  GridRender(std::size_t steps, std::size_t cols)
      : steps_(steps), cols_(cols), cell_(steps * cols) {}

  std::size_t steps() const { return steps_; }
  std::size_t cols() const { return cols_; }

  /// Set the label shown inside cell (step, col). Steps/cols are 1-based, as
  /// in the paper. Later calls overwrite.
  void setLabel(std::size_t step, std::size_t col, std::string label);

  /// Append a frame-membership marker rendered as a suffix character inside
  /// the cell (e.g. 'P' for primary frame, 'R' redundant, 'F' forbidden,
  /// 'M' move frame). Markers accumulate.
  void addMark(std::size_t step, std::size_t col, char mark);

  /// Add a legend line printed under the grid.
  void addLegend(std::string line) { legend_.push_back(std::move(line)); }

  void setTitle(std::string title) { title_ = std::move(title); }
  void setAxisNames(std::string xAxis, std::string yAxis) {
    xAxis_ = std::move(xAxis);
    yAxis_ = std::move(yAxis);
  }

  std::string render() const;

 private:
  struct Cell {
    std::string label;
    std::string marks;
  };
  Cell& at(std::size_t step, std::size_t col);
  const Cell& at(std::size_t step, std::size_t col) const;

  std::size_t steps_;
  std::size_t cols_;
  std::vector<Cell> cell_;
  std::vector<std::string> legend_;
  std::string title_;
  std::string xAxis_ = "FU instance";
  std::string yAxis_ = "control step";
};

}  // namespace mframe::util
