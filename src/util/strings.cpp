#include "util/strings.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace mframe::util {

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> splitWs(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t b = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > b) out.emplace_back(s.substr(b, i - b));
  }
  return out;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string padLeft(std::string_view s, std::size_t w) {
  std::string out(s);
  if (out.size() < w) out.insert(0, w - out.size(), ' ');
  return out;
}

std::string padRight(std::string_view s, std::size_t w) {
  std::string out(s);
  if (out.size() < w) out.append(w - out.size(), ' ');
  return out;
}

long parseLong(std::string_view s) {
  if (s.empty()) return -1;
  constexpr long kMax = std::numeric_limits<long>::max();
  long v = 0;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return -1;
    const long d = c - '0';
    if (v > (kMax - d) / 10) return -1;  // would wrap: reject, don't truncate
    v = v * 10 + d;
  }
  return v;
}

bool parseSignedLong(std::string_view s, long& out) {
  const bool neg = !s.empty() && s[0] == '-';
  const long v = parseLong(neg ? s.substr(1) : s);
  if (v < 0) return false;
  out = neg ? -v : v;
  return true;
}

bool parseDouble(std::string_view s, double& out) {
  if (s.empty()) return false;
  const std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE || !std::isfinite(v))
    return false;
  out = v;
  return true;
}

}  // namespace mframe::util
