// String helpers shared across libmframe.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mframe::util {

/// Split `s` on `sep`, trimming surrounding whitespace from each piece.
/// Empty pieces are kept (so "a,,b" yields {"a","","b"}).
std::vector<std::string> split(std::string_view s, char sep);

/// Split on arbitrary runs of whitespace; empty pieces are dropped.
std::vector<std::string> splitWs(std::string_view s);

/// Remove leading/trailing whitespace.
std::string trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool startsWith(std::string_view s, std::string_view prefix);

/// Join `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Left/right pad `s` with spaces to width `w` (no-op if already wider).
std::string padLeft(std::string_view s, std::size_t w);
std::string padRight(std::string_view s, std::size_t w);

/// Parse a non-negative integer; returns -1 on malformed input or on a
/// value that would overflow `long` (overflow is rejected, never wrapped).
long parseLong(std::string_view s);

/// Parse a signed integer (optional leading '-'); false on malformed input.
bool parseSignedLong(std::string_view s, long& out);

/// Parse a finite double, consuming the entire string (strtod grammar, so
/// "1.5e2" works but "abc", "" and trailing garbage do not); false on
/// malformed, non-finite, or out-of-range input.
bool parseDouble(std::string_view s, double& out);

}  // namespace mframe::util
