// Overall RTL cost evaluation — the "Cost", "REG", "MUX" and "MUXin" columns
// of Table 2, priced with the cell library.
#pragma once

#include <string>

#include "rtl/datapath.h"

namespace mframe::rtl {

struct CostBreakdown {
  double aluArea = 0.0;
  double regArea = 0.0;
  double muxArea = 0.0;
  double total = 0.0;

  int aluCount = 0;
  int regCount = 0;
  int muxCount = 0;       ///< ports with >= 2 distinct sources (real muxes)
  int muxInputCount = 0;  ///< total data inputs over those muxes

  std::string toString() const;
};

CostBreakdown evaluateCost(const Datapath& d);

}  // namespace mframe::rtl
