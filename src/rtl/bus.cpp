#include "rtl/bus.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/strings.h"

namespace mframe::rtl {

namespace {

/// A transfer: one operand value moving from a shared source to an ALU port
/// in one step.
struct Transfer {
  int step = 0;
  alloc::Source source;
  int alu = 0;
  bool leftPort = true;
};

/// Every operand value that rides a shared wire: constants and primary
/// inputs are hardwired and excluded. Shared by planBuses (which assigns
/// buses) and busDemandPerStep (which only counts concurrent sources).
std::vector<Transfer> collectTransfers(const Datapath& d,
                                       const ControllerFsm& fsm) {
  const dfg::Dfg& g = *d.graph;
  std::vector<Transfer> transfers;

  for (const MicroOp& m : fsm.microOps) {
    const dfg::Node& n = g.node(m.op);
    if (n.inputs.empty()) continue;
    const auto ai = static_cast<std::size_t>(m.alu);
    const auto& arr = d.arrangement[ai];
    const bool swap = arr.swapped.count(m.op) ? arr.swapped.at(m.op) : false;
    auto addRead = [&](bool leftPort, dfg::NodeId signal) {
      const auto& w = leftPort ? d.leftPort[ai] : d.rightPort[ai];
      auto sel = w.selectOf.find({m.op, signal});
      if (sel == w.selectOf.end()) return;
      const alloc::Source& src = w.sources[sel->second];
      // Constants and primary-input ports are hardwired, not bused.
      if (src.kind == alloc::Source::Kind::Constant ||
          src.kind == alloc::Source::Kind::PrimaryInput)
        return;
      transfers.push_back({m.step, src, m.alu, leftPort});
    };
    const dfg::NodeId l = swap && n.inputs.size() == 2 ? n.inputs[1] : n.inputs[0];
    addRead(true, l);
    if (n.inputs.size() >= 2)
      addRead(false, swap ? n.inputs[0] : n.inputs[1]);
  }
  return transfers;
}

}  // namespace

std::vector<int> busDemandPerStep(const Datapath& d, const ControllerFsm& fsm) {
  std::vector<int> demand(static_cast<std::size_t>(fsm.numSteps) + 1, 0);
  std::map<int, std::set<alloc::Source>> byStep;
  for (const Transfer& t : collectTransfers(d, fsm))
    byStep[t.step].insert(t.source);
  for (const auto& [step, sources] : byStep)
    if (step >= 1 && step <= fsm.numSteps)
      demand[static_cast<std::size_t>(step)] = static_cast<int>(sources.size());
  return demand;
}

std::vector<std::map<alloc::Source, int>> busAssignmentPerStep(
    const Datapath& d, const ControllerFsm& fsm) {
  std::vector<std::map<alloc::Source, int>> assign(
      static_cast<std::size_t>(fsm.numSteps) + 1);
  for (const Transfer& t : collectTransfers(d, fsm)) {
    if (t.step < 1 || t.step > fsm.numSteps) continue;
    auto& buses = assign[static_cast<std::size_t>(t.step)];
    buses.try_emplace(t.source, static_cast<int>(buses.size()));
  }
  return assign;
}

BusPlan planBuses(const Datapath& d, const ControllerFsm& fsm,
                  const BusCostModel& model) {
  const std::vector<Transfer> transfers = collectTransfers(d, fsm);
  const auto assign = busAssignmentPerStep(d, fsm);

  BusPlan plan;
  plan.transfersPerStep.assign(static_cast<std::size_t>(fsm.numSteps) + 1, 0);

  // Per step: transfers of the same source share one bus (one broadcast);
  // distinct sources get the lowest free bus index.
  std::set<std::pair<alloc::Source, int>> drivers;       // (source, bus)
  std::set<std::tuple<int, bool, int>> receivers;        // (alu, port, bus)
  for (const Transfer& t : transfers) {
    if (t.step < 1 || t.step > fsm.numSteps) continue;
    const int bus = assign[static_cast<std::size_t>(t.step)].at(t.source);
    drivers.insert({t.source, bus});
    receivers.insert({t.alu, t.leftPort, bus});
    ++plan.transfersPerStep[static_cast<std::size_t>(t.step)];
  }
  for (const auto& buses : assign)
    plan.busCount = std::max(plan.busCount, static_cast<int>(buses.size()));
  plan.driverCount = static_cast<int>(drivers.size());
  plan.receiverCount = static_cast<int>(receivers.size());
  plan.totalCost = plan.busCount * model.busWireUm2 +
                   plan.driverCount * model.driverUm2 +
                   plan.receiverCount * model.receiverUm2;
  return plan;
}

std::string BusPlan::toString() const {
  return util::format(
      "%d bus(es), %d driver(s), %d receiver tap(s), cost %.0f um^2",
      busCount, driverCount, receiverCount, totalCost);
}

}  // namespace mframe::rtl
