// Bus-based interconnect planning — the paper's Section 4.1 aside that the
// Liapunov function can optimize "multiplexers (or buses)". Instead of two
// private multiplexers per ALU, operand transfers ride a small set of shared
// buses: the bus count is the peak number of simultaneous transfers in any
// control step, and each physical source pays one tristate driver per bus it
// drives. planBuses derives that structure from a finished datapath +
// controller, so mux-based and bus-based interconnect can be costed against
// each other (see bench_ablation_interconnect).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "alloc/interconnect.h"
#include "rtl/controller.h"
#include "rtl/datapath.h"

namespace mframe::rtl {

struct BusCostModel {
  double busWireUm2 = 900.0;    ///< area of one bus line run
  double driverUm2 = 120.0;     ///< one tristate driver onto a bus
  double receiverUm2 = 40.0;    ///< one ALU-port tap from a bus
};

struct BusPlan {
  int busCount = 0;
  /// transfers scheduled in each control step (index 1..numSteps).
  std::vector<int> transfersPerStep;
  /// (source, bus) driver pairs after assignment.
  int driverCount = 0;
  /// ALU-port receiver taps (a port taps every bus it ever reads from).
  int receiverCount = 0;
  double totalCost = 0.0;

  std::string toString() const;
};

/// Assign every register/ALU-output operand transfer of every step to a bus
/// (constants and primary inputs are hardwired and ride no bus) and price
/// the result. Greedy per-step assignment: transfers from the same source in
/// one step share a bus; distinct sources take the lowest free bus.
BusPlan planBuses(const Datapath& d, const ControllerFsm& fsm,
                  const BusCostModel& model = {});

/// Distinct shared sources transferring in each step (index 1..numSteps;
/// index 0 unused) — the per-step bus demand planBuses provisions for. The
/// lint engine checks externally supplied plans against this demand.
std::vector<int> busDemandPerStep(const Datapath& d, const ControllerFsm& fsm);

/// The bus each shared source drives in each step (index 1..numSteps; index
/// 0 unused): same greedy assignment planBuses prices — first transfer of a
/// source in a step claims the lowest free bus, later transfers of the same
/// source share it. The validator uses this to name the bus a refuted
/// operand rode in on.
std::vector<std::map<alloc::Source, int>> busAssignmentPerStep(
    const Datapath& d, const ControllerFsm& fsm);

}  // namespace mframe::rtl
