// Control-path design: an FSM whose states are the control steps, emitting
// mux selects, ALU function codes and register load enables (the paper's
// step 2 of behavioral synthesis, "control path design", Section 1).
#pragma once

#include <string>
#include <vector>

#include "rtl/datapath.h"

namespace mframe::rtl {

/// One operation issue in one state.
struct MicroOp {
  int step = 0;                     ///< state (control step) of issue
  int alu = 0;                      ///< executing ALU
  dfg::NodeId op = dfg::kNoNode;    ///< the DFG operation
  int leftSelect = -1;              ///< mux select of port 1 (-1: no mux)
  int rightSelect = -1;             ///< mux select of port 2 (-1: none)
};

/// A register load at the end of a step.
struct RegLoad {
  int step = 0;                   ///< value latched at the end of this step
                                  ///< (0 = primary-input preload)
  int reg = 0;                    ///< destination register
  dfg::NodeId signal = dfg::kNoNode;  ///< the value stored
  int fromAlu = -1;               ///< producing ALU (-1: primary input)
};

struct ControllerFsm {
  int numSteps = 0;
  std::vector<MicroOp> microOps;  ///< sorted by (step, alu)
  std::vector<RegLoad> regLoads;  ///< sorted by (step, reg)

  std::string toString(const dfg::Dfg& g) const;
};

/// Derive the FSM from a complete datapath.
ControllerFsm buildController(const Datapath& d);

}  // namespace mframe::rtl
