// Control-path design: an FSM whose states are the control steps, emitting
// mux selects, ALU function codes and register load enables (the paper's
// step 2 of behavioral synthesis, "control path design", Section 1).
#pragma once

#include <string>
#include <vector>

#include "rtl/datapath.h"

namespace mframe::rtl {

/// One operation issue in one state.
struct MicroOp {
  int step = 0;                     ///< state (control step) of issue
  int alu = 0;                      ///< executing ALU
  dfg::NodeId op = dfg::kNoNode;    ///< the DFG operation
  int leftSelect = -1;              ///< mux select of port 1 (-1: no mux)
  int rightSelect = -1;             ///< mux select of port 2 (-1: none)
};

/// A register load at the end of a step.
struct RegLoad {
  int step = 0;                   ///< value latched at the end of this step
                                  ///< (0 = primary-input preload)
  int reg = 0;                    ///< destination register
  dfg::NodeId signal = dfg::kNoNode;  ///< the value stored
  int fromAlu = -1;               ///< producing ALU (-1: primary input)
};

/// A control transfer between FSM states. State 0 is the reset state; states
/// 1..numSteps execute microcode rows. `to == 0` means the FSM halts (returns
/// to reset) after `from`. A state with two out-edges branches; `cond` names
/// the deciding signal when known (kNoNode = unannotated).
struct StepEdge {
  int from = 0;
  int to = 0;
  dfg::NodeId cond = dfg::kNoNode;

  bool operator==(const StepEdge&) const = default;
};

struct ControllerFsm {
  int numSteps = 0;
  std::vector<MicroOp> microOps;  ///< sorted by (step, alu)
  std::vector<RegLoad> regLoads;  ///< sorted by (step, reg)
  /// Control transfers, sorted by (from, to). buildController emits the
  /// linear chain 0 -> 1 -> ... -> numSteps; .bind `next` statements replace
  /// or extend individual edges to seed branchy (or defective) controllers.
  std::vector<StepEdge> edges;

  /// Targets of state `s` (deduplicated, in edge order). Falls back to the
  /// linear successor s+1 (and halt after numSteps) when `edges` is empty.
  std::vector<int> successorsOf(int s) const;

  /// True when the transfer structure is exactly the linear chain
  /// 0 -> 1 -> ... -> numSteps (the shape every synthesized design has).
  bool linearControl() const;

  std::string toString(const dfg::Dfg& g) const;
};

/// Derive the FSM from a complete datapath.
ControllerFsm buildController(const Datapath& d);

}  // namespace mframe::rtl
