#include "rtl/testability.h"

#include <set>

#include "util/strings.h"

namespace mframe::rtl {

TestabilityReport analyzeTestability(const Datapath& d) {
  TestabilityReport rep;
  const dfg::Dfg& g = *d.graph;

  std::set<int> loopAlus;
  std::set<int> loopRegs;
  std::set<std::pair<int, int>> crossEdges;
  for (const AluInstance& a : d.alus) {
    for (dfg::NodeId op : a.ops) {
      for (dfg::NodeId p : g.opPreds(op)) {
        auto it = d.aluOf.find(p);
        if (it == d.aluOf.end()) continue;
        if (it->second == a.index) {
          ++rep.selfLoopPairs;
          loopAlus.insert(a.index);
          auto reg = d.regOfSignal.find(p);
          if (reg != d.regOfSignal.end()) loopRegs.insert(reg->second);
        } else {
          crossEdges.insert({it->second, a.index});
        }
      }
    }
  }
  rep.selfLoopAlus = static_cast<int>(loopAlus.size());
  rep.selfLoopRegisters = static_cast<int>(loopRegs.size());
  rep.crossAluEdges = static_cast<int>(crossEdges.size());
  return rep;
}

std::string TestabilityReport::toString() const {
  return util::format(
      "%d self-loop pair(s) across %d ALU(s), %d self-loop register(s), "
      "%d cross-ALU edge(s) -> %s",
      selfLoopPairs, selfLoopAlus, selfLoopRegisters, crossAluEdges,
      selfTestable() ? "self-testable (style-2 clean)"
                     : "NOT self-testable");
}

}  // namespace mframe::rtl
