// Microcode ROM view of the controller: the FSM's per-state control signals
// packed into fields, with a width/area estimate — the concrete "control
// path design" artifact behavioral synthesis owes after the datapath
// (Section 1).
//
// Field layout per ALU: an opcode field (wide enough for the distinct
// operations the ALU performs), and one select field per multiplexed port;
// plus one load-enable bit per register. ALUs with a single operation need
// no opcode bits, ports with a single source no select bits — exactly the
// places where datapath sharing buys controller area too.
#pragma once

#include <string>
#include <vector>

#include "rtl/controller.h"
#include "rtl/datapath.h"

namespace mframe::rtl {

struct MicrocodeField {
  std::string name;
  int bits = 0;
};

struct MicrocodeRom {
  int words = 0;  ///< one control word per control step
  std::vector<MicrocodeField> fields;
  /// rows[step-1][fieldIndex] = value (-1 = don't care / idle).
  std::vector<std::vector<int>> rows;

  int wordBits() const;
  int totalBits() const { return words * wordBits(); }
  double areaEstimate(double umPerBit = 12.0) const { return totalBits() * umPerBit; }

  std::string toString() const;
};

MicrocodeRom buildMicrocode(const Datapath& d, const ControllerFsm& fsm);

}  // namespace mframe::rtl
