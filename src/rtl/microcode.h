// Microcode ROM view of the controller: the FSM's per-state control signals
// packed into fields, with a width/area estimate — the concrete "control
// path design" artifact behavioral synthesis owes after the datapath
// (Section 1).
//
// Field layout per ALU: an opcode field (wide enough for the distinct
// operations the ALU performs), and one select field per multiplexed port;
// plus one load-enable bit per register. ALUs with a single operation need
// no opcode bits, ports with a single source no select bits — exactly the
// places where datapath sharing buys controller area too.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rtl/controller.h"
#include "rtl/datapath.h"

namespace mframe::rtl {

struct MicrocodeField {
  std::string name;
  int bits = 0;
};

struct MicrocodeRom {
  int words = 0;  ///< one control word per control step
  std::vector<MicrocodeField> fields;
  /// rows[step-1][fieldIndex] = value (-1 = don't care / idle).
  std::vector<std::vector<int>> rows;

  int wordBits() const;
  int totalBits() const { return words * wordBits(); }
  double areaEstimate(double umPerBit = 12.0) const { return totalBits() * umPerBit; }

  /// Index of the field named `name`, or -1 when absent (single-source ports
  /// and single-op ALUs have no field at all).
  int fieldIndex(std::string_view name) const;

  /// The encoded value of field `name` in control step `step` (1-based), or
  /// nullopt when the field does not exist, the step is out of range, or the
  /// row holds a don't-care.
  std::optional<int> valueAt(int step, std::string_view name) const;

  /// Decoded control-transfer targets of row `step` (1-based): the
  /// "ctrl.next" / "ctrl.altNext" field values, in that order, with the halt
  /// encoding (0) dropped. nullopt when the ROM carries no transfer fields —
  /// linear control, fall through to step+1 (halt after the last row).
  std::optional<std::vector<int>> successorsAt(int step) const;

  /// Register indices whose load-enable bit is asserted in row `step`.
  std::vector<int> regLoadsAt(int step) const;

  std::string toString() const;
};

/// The distinct op kinds ALU `alu` performs, in the microcode's opcode
/// encoding order (the value in field "alu<k>.op" indexes this list).
std::vector<dfg::OpKind> aluOpcodes(const Datapath& d, int alu);

MicrocodeRom buildMicrocode(const Datapath& d, const ControllerFsm& fsm);

}  // namespace mframe::rtl
