// Structural Verilog export of a synthesized datapath + controller, so the
// RTL the tool produces can be inspected or fed to downstream flows.
#pragma once

#include <string>

#include "rtl/controller.h"
#include "rtl/datapath.h"

namespace mframe::rtl {

/// Emit a self-contained synthesizable-style Verilog module named after the
/// DFG: registers, port multiplexers, ALU function cases and the control
/// FSM. Word width is `width` bits.
std::string toVerilog(const Datapath& d, const ControllerFsm& fsm,
                      int width = 16);

}  // namespace mframe::rtl
