#include "rtl/controller.h"

#include <algorithm>

#include "trace/trace.h"
#include "util/strings.h"

namespace mframe::rtl {

ControllerFsm buildController(const Datapath& d) {
  const trace::Span span("rtl.controller");
  ControllerFsm f;
  const dfg::Dfg& g = *d.graph;
  f.numSteps = d.schedule.numSteps();

  for (const AluInstance& a : d.alus) {
    const auto& arr = d.arrangement[static_cast<std::size_t>(a.index)];
    for (dfg::NodeId op : a.ops) {
      const dfg::Node& n = g.node(op);
      MicroOp m;
      m.step = d.schedule.stepOf(op);
      m.alu = a.index;
      m.op = op;
      if (!n.inputs.empty()) {
        const bool swap =
            arr.swapped.count(op) ? arr.swapped.at(op) : false;
        const dfg::NodeId l =
            swap && n.inputs.size() == 2 ? n.inputs[1] : n.inputs[0];
        const auto& lp = d.leftPort[static_cast<std::size_t>(a.index)];
        auto it = lp.selectOf.find({op, l});
        if (it != lp.selectOf.end() && lp.sources.size() > 1)
          m.leftSelect = static_cast<int>(it->second);
        if (n.inputs.size() >= 2) {
          const dfg::NodeId r = swap ? n.inputs[0] : n.inputs[1];
          const auto& rp = d.rightPort[static_cast<std::size_t>(a.index)];
          auto rit = rp.selectOf.find({op, r});
          if (rit != rp.selectOf.end() && rp.sources.size() > 1)
            m.rightSelect = static_cast<int>(rit->second);
        }
      }
      f.microOps.push_back(m);
    }
  }
  std::sort(f.microOps.begin(), f.microOps.end(),
            [](const MicroOp& a, const MicroOp& b) {
              return std::tie(a.step, a.alu, a.op) < std::tie(b.step, b.alu, b.op);
            });

  // Register loads: each stored signal is latched at the end of its birth
  // step; primary inputs preload at step 0.
  for (const auto& [signal, reg] : d.regOfSignal) {
    const dfg::Node& n = g.node(signal);
    RegLoad rl;
    rl.reg = reg;
    rl.signal = signal;
    if (n.kind == dfg::OpKind::Input) {
      rl.step = 0;
      rl.fromAlu = -1;
    } else {
      rl.step = d.schedule.endStepOf(signal);
      auto it = d.aluOf.find(signal);
      rl.fromAlu = it == d.aluOf.end() ? -1 : it->second;
    }
    f.regLoads.push_back(rl);
  }
  std::sort(f.regLoads.begin(), f.regLoads.end(),
            [](const RegLoad& a, const RegLoad& b) {
              return std::tie(a.step, a.reg) < std::tie(b.step, b.reg);
            });

  // Synthesized controllers step linearly: reset flows into step 1, each
  // step into the next, and the last step halts (no out-edge).
  for (int s = 0; s < f.numSteps; ++s) f.edges.push_back({s, s + 1});
  return f;
}

std::vector<int> ControllerFsm::successorsOf(int s) const {
  if (edges.empty())
    return s >= 0 && s < numSteps ? std::vector<int>{s + 1}
                                  : std::vector<int>{};
  std::vector<int> out;
  for (const StepEdge& e : edges) {
    if (e.from != s) continue;
    if (e.to < 1 || e.to > numSteps) continue;  // 0 / out-of-range = halt
    if (std::find(out.begin(), out.end(), e.to) == out.end())
      out.push_back(e.to);
  }
  return out;
}

bool ControllerFsm::linearControl() const {
  if (edges.empty()) return true;
  for (int s = 0; s <= numSteps; ++s) {
    const std::vector<int> succ = successorsOf(s);
    if (s < numSteps) {
      if (succ.size() != 1 || succ.front() != s + 1) return false;
    } else if (!succ.empty()) {
      return false;
    }
  }
  return true;
}

std::string ControllerFsm::toString(const dfg::Dfg& g) const {
  std::string out = util::format("controller FSM, %d states\n", numSteps);
  for (int s = 0; s <= numSteps; ++s) {
    std::string line;
    for (const MicroOp& m : microOps)
      if (m.step == s)
        line += util::format("  ALU%d <= %s(%s) sel=(%d,%d)", m.alu,
                             std::string(dfg::kindName(g.node(m.op).kind)).c_str(),
                             g.node(m.op).name.c_str(), m.leftSelect,
                             m.rightSelect);
    for (const RegLoad& r : regLoads)
      if (r.step == s)
        line += util::format("  R%d <= %s", r.reg, g.node(r.signal).name.c_str());
    if (!line.empty()) out += util::format("state %2d:%s\n", s, line.c_str());
  }
  if (!linearControl()) {
    out += "transfers:";
    for (const StepEdge& e : edges)
      out += e.cond == dfg::kNoNode
                 ? util::format(" %d->%d", e.from, e.to)
                 : util::format(" %d->%d[%s]", e.from, e.to,
                                g.node(e.cond).name.c_str());
    out += "\n";
  }
  return out;
}

}  // namespace mframe::rtl
