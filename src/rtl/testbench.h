// Verilog testbench generation: wraps the exported module with stimulus
// from a concrete input vector and self-checking assertions against the
// behavioral reference (computed by sim::evalDfg), so the emitted RTL can be
// validated in any external Verilog simulator.
#pragma once

#include <map>
#include <string>

#include "rtl/controller.h"
#include "rtl/datapath.h"
#include "sim/eval.h"

namespace mframe::rtl {

/// Emit a self-checking testbench for the design `toVerilog` produces.
/// Expected outputs are evaluated from the behavioral DFG; the testbench
/// drives the inputs, runs `numSteps` clocks after reset, compares every
/// output, and prints PASS/FAIL.
std::string toTestbench(const Datapath& d, const ControllerFsm& fsm,
                        const std::map<std::string, sim::Word>& inputs,
                        int width = 16);

}  // namespace mframe::rtl
