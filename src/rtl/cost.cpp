#include "rtl/cost.h"

#include "util/strings.h"

namespace mframe::rtl {

std::string CostBreakdown::toString() const {
  return util::format(
      "cost %.0f um^2 (alu %.0f + reg %.0f + mux %.0f); %d ALUs, %d REGs, "
      "%d MUXes, %d MUX inputs",
      total, aluArea, regArea, muxArea, aluCount, regCount, muxCount,
      muxInputCount);
}

CostBreakdown evaluateCost(const Datapath& d) {
  CostBreakdown c;
  for (const AluInstance& a : d.alus) c.aluArea += d.lib->module(a.module).areaUm2;
  c.aluCount = static_cast<int>(d.alus.size());

  c.regCount = static_cast<int>(d.regs.count());
  c.regArea = c.regCount * d.lib->regCost();

  auto port = [&](const alloc::PortWiring& w) {
    const int inputs = static_cast<int>(w.sources.size());
    if (inputs >= 2) {
      ++c.muxCount;
      c.muxInputCount += inputs;
      c.muxArea += d.lib->muxCost(inputs);
    }
  };
  for (const auto& w : d.leftPort) port(w);
  for (const auto& w : d.rightPort) port(w);

  c.total = c.aluArea + c.regArea + c.muxArea;
  return c;
}

}  // namespace mframe::rtl
