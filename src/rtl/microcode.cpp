#include "rtl/microcode.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "util/strings.h"

namespace mframe::rtl {

namespace {

int bitsFor(std::size_t alternatives) {
  if (alternatives <= 1) return 0;
  int bits = 0;
  std::size_t span = 1;
  while (span < alternatives) {
    span <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace

int MicrocodeRom::wordBits() const {
  int total = 0;
  for (const auto& f : fields) total += f.bits;
  return total;
}

int MicrocodeRom::fieldIndex(std::string_view name) const {
  for (std::size_t f = 0; f < fields.size(); ++f)
    if (fields[f].name == name) return static_cast<int>(f);
  return -1;
}

std::optional<int> MicrocodeRom::valueAt(int step, std::string_view name) const {
  const int f = fieldIndex(name);
  if (f < 0 || step < 1 || step > static_cast<int>(rows.size()))
    return std::nullopt;
  const int v = rows[static_cast<std::size_t>(step - 1)][static_cast<std::size_t>(f)];
  if (v < 0) return std::nullopt;
  return v;
}

std::optional<std::vector<int>> MicrocodeRom::successorsAt(int step) const {
  if (fieldIndex("ctrl.next") < 0) return std::nullopt;
  std::vector<int> out;
  for (const char* field : {"ctrl.next", "ctrl.altNext"}) {
    const std::optional<int> v = valueAt(step, field);
    // Value 0 encodes halt; 1..words name the target row.
    if (v && *v >= 1 && *v <= words) out.push_back(*v);
  }
  return out;
}

std::vector<int> MicrocodeRom::regLoadsAt(int step) const {
  std::vector<int> out;
  for (const MicrocodeField& f : fields) {
    int reg = -1;
    if (std::sscanf(f.name.c_str(), "R%d.load", &reg) != 1) continue;
    if (valueAt(step, f.name).value_or(0) == 1) out.push_back(reg);
  }
  return out;
}

std::vector<dfg::OpKind> aluOpcodes(const Datapath& d, int alu) {
  const dfg::Dfg& g = *d.graph;
  std::set<dfg::OpKind> kinds;
  for (const AluInstance& a : d.alus)
    if (a.index == alu)
      for (dfg::NodeId op : a.ops) kinds.insert(g.node(op).kind);
  return {kinds.begin(), kinds.end()};
}

MicrocodeRom buildMicrocode(const Datapath& d, const ControllerFsm& fsm) {
  MicrocodeRom rom;
  rom.words = fsm.numSteps;
  const dfg::Dfg& g = *d.graph;

  // Per-ALU opcode encoding: distinct op kinds performed by that ALU.
  std::vector<std::vector<dfg::OpKind>> opcodeOf(d.alus.size());
  for (const AluInstance& a : d.alus)
    opcodeOf[static_cast<std::size_t>(a.index)] = aluOpcodes(d, a.index);

  // Field layout: [aluK.op][aluK.selL][aluK.selR] ... [Rj.load] ...
  struct FieldRef {
    enum class Kind { Opcode, SelL, SelR, RegLoad } kind;
    int unit;
  };
  std::vector<FieldRef> refs;
  for (const AluInstance& a : d.alus) {
    const auto ai = static_cast<std::size_t>(a.index);
    const int opBits = bitsFor(opcodeOf[ai].size());
    if (opBits > 0) {
      rom.fields.push_back({util::format("alu%d.op", a.index), opBits});
      refs.push_back({FieldRef::Kind::Opcode, a.index});
    }
    if (d.leftPort[ai].sources.size() > 1) {
      rom.fields.push_back({util::format("alu%d.selL", a.index),
                            bitsFor(d.leftPort[ai].sources.size())});
      refs.push_back({FieldRef::Kind::SelL, a.index});
    }
    if (d.rightPort[ai].sources.size() > 1) {
      rom.fields.push_back({util::format("alu%d.selR", a.index),
                            bitsFor(d.rightPort[ai].sources.size())});
      refs.push_back({FieldRef::Kind::SelR, a.index});
    }
  }
  for (std::size_t r = 0; r < d.regs.count(); ++r) {
    rom.fields.push_back({util::format("R%zu.load", r), 1});
    refs.push_back({FieldRef::Kind::RegLoad, static_cast<int>(r)});
  }

  rom.rows.assign(static_cast<std::size_t>(fsm.numSteps),
                  std::vector<int>(rom.fields.size(), -1));
  auto rowOf = [&](int step) -> std::vector<int>& {
    return rom.rows[static_cast<std::size_t>(step - 1)];
  };

  for (const MicroOp& m : fsm.microOps) {
    const auto ai = static_cast<std::size_t>(m.alu);
    for (std::size_t f = 0; f < refs.size(); ++f) {
      if (refs[f].unit != m.alu) continue;
      switch (refs[f].kind) {
        case FieldRef::Kind::Opcode: {
          const auto& codes = opcodeOf[ai];
          const auto it =
              std::find(codes.begin(), codes.end(), g.node(m.op).kind);
          rowOf(m.step)[f] = static_cast<int>(it - codes.begin());
          break;
        }
        case FieldRef::Kind::SelL:
          if (m.leftSelect >= 0) rowOf(m.step)[f] = m.leftSelect;
          break;
        case FieldRef::Kind::SelR:
          if (m.rightSelect >= 0) rowOf(m.step)[f] = m.rightSelect;
          break;
        case FieldRef::Kind::RegLoad:
          break;
      }
    }
  }
  for (const RegLoad& rl : fsm.regLoads) {
    if (rl.step < 1) continue;  // input preloads ride reset, not the ROM
    for (std::size_t f = 0; f < refs.size(); ++f)
      if (refs[f].kind == FieldRef::Kind::RegLoad && refs[f].unit == rl.reg)
        rowOf(rl.step)[f] = 1;
  }

  // Control-transfer fields: linear controllers need none (every word falls
  // through to the next), so they appear only when the FSM deviates —
  // value 0 encodes halt, 1..words name the target row.
  if (!fsm.linearControl()) {
    const int ctrlBits = bitsFor(static_cast<std::size_t>(fsm.numSteps) + 1);
    bool needAlt = false;
    for (int s = 1; s <= fsm.numSteps; ++s)
      needAlt = needAlt || fsm.successorsOf(s).size() > 1;
    rom.fields.push_back({"ctrl.next", ctrlBits});
    if (needAlt) rom.fields.push_back({"ctrl.altNext", ctrlBits});
    const int nextF = rom.fieldIndex("ctrl.next");
    const int altF = rom.fieldIndex("ctrl.altNext");
    for (auto& row : rom.rows) row.resize(rom.fields.size(), -1);
    for (int s = 1; s <= fsm.numSteps; ++s) {
      const std::vector<int> succ = fsm.successorsOf(s);
      auto& row = rowOf(s);
      row[static_cast<std::size_t>(nextF)] = succ.empty() ? 0 : succ[0];
      if (altF >= 0 && succ.size() > 1)
        row[static_cast<std::size_t>(altF)] = succ[1];
    }
  }
  return rom;
}

std::string MicrocodeRom::toString() const {
  std::string out = util::format("microcode ROM: %d words x %d bits = %d bits\n",
                                 words, wordBits(), totalBits());
  out += "  fields:";
  for (const auto& f : fields) out += util::format(" %s[%d]", f.name.c_str(), f.bits);
  out += "\n";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    out += util::format("  step %2zu:", r + 1);
    for (std::size_t f = 0; f < fields.size(); ++f) {
      const int v = rows[r][f];
      out += v < 0 ? " -" : util::format(" %d", v);
    }
    out += "\n";
  }
  return out;
}

}  // namespace mframe::rtl
