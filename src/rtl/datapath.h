// The register-transfer-level structure MFSA produces (Section 4.2: "MFSA
// generates a schedule and its corresponding RTL structure while optimizing
// the overall cost"): ALU instances drawn from the cell library, registers
// from left-edge allocation, two multiplexers per ALU, and shared
// interconnect lines.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "alloc/interconnect.h"
#include "alloc/lifetimes.h"
#include "alloc/muxopt.h"
#include "alloc/regalloc.h"
#include "celllib/cell_library.h"
#include "sched/schedule.h"

namespace mframe::rtl {

/// The two RTL design styles of Section 4.2.
enum class DesignStyle {
  Unrestricted,  ///< style 1: conventional datapath
  NoSelfLoop,    ///< style 2: no operation may share an ALU with one of its
                 ///< predecessors or successors (self-testable, SYNTEST [18])
};

struct AluInstance {
  celllib::ModuleId module = 0;
  int index = 0;                    ///< global instance index (0-based)
  std::vector<dfg::NodeId> ops;     ///< operations bound here
};

/// A complete datapath. Build with buildDatapath(); cost via rtl::evaluateCost;
/// check with rtl::verifyDatapath. The structure co-owns snapshots of the
/// graph (shared with its schedule) and the cell library, so results outlive
/// the caller's originals.
struct Datapath {
  std::shared_ptr<const dfg::Dfg> graph;
  std::shared_ptr<const celllib::CellLibrary> lib;
  sched::Schedule schedule;

  std::vector<AluInstance> alus;
  std::map<dfg::NodeId, int> aluOf;      ///< op -> ALU index

  std::vector<alloc::Lifetime> lifetimes;
  alloc::RegAllocation regs;
  std::map<dfg::NodeId, int> regOfSignal;  ///< producer -> register index

  /// Per-ALU operand arrangement (which signal feeds which port) and the
  /// physical wiring of the two ports after interconnect sharing.
  std::vector<alloc::MuxArrangement> arrangement;  ///< index = ALU index
  std::vector<alloc::PortWiring> leftPort;
  std::vector<alloc::PortWiring> rightPort;

  /// The paper's Table-2 "ALU's" column, e.g. "(+-); 2(*)".
  std::string aluSummary() const;
};

/// Assemble the full RTL structure from a schedule and an ALU binding:
/// lifetime analysis, register allocation, mux arrangement and interconnect
/// sharing. `alus[i].ops` must cover every schedulable operation exactly
/// once.
Datapath buildDatapath(const dfg::Dfg& g, const celllib::CellLibrary& lib,
                       const sched::Schedule& s,
                       std::vector<AluInstance> alus);

/// Same, but with a caller-supplied register allocation instead of the
/// left-edge default — externally bound designs (.bind files) pin their own
/// register assignment, defects included.
Datapath buildDatapath(const dfg::Dfg& g, const celllib::CellLibrary& lib,
                       const sched::Schedule& s, std::vector<AluInstance> alus,
                       alloc::RegAllocation regs);

/// How wide a shared line is after declaration-driven sizing: as wide as its
/// widest declaring tenant. Width 0 means no tenant declares a `width=`
/// attribute — the line stays word-wide (unsized), and no width proof can
/// fail against it. `tenant` names the widest declaring tenant, for
/// provenance in diagnostics.
struct DeclaredWidth {
  int width = 0;
  dfg::NodeId tenant = dfg::kNoNode;
};

/// Per-register declared widths: a register is sized by the widest declared
/// width among the signals allocated to it (regOfSignal). A tenant with no
/// declaration adopts the register's size — which is exactly how an
/// undeclared wide value gets silently truncated by a narrow co-tenant; the
/// range analysis (WID001) audits that hazard.
std::vector<DeclaredWidth> declaredRegisterWidths(const Datapath& d);

/// Per-ALU declared output-line widths: the instance's line is sized by the
/// widest declared width among the operations bound to it (WID002 turf).
std::vector<DeclaredWidth> declaredAluWidths(const Datapath& d);

/// Derive an ALU binding from a schedule's (FU type, column) grid: each
/// occupied column of each type becomes one ALU instance (first-seen order),
/// implemented by the library's cheapest capable module. Baseline schedulers
/// return bare schedules; this is the canonical binding used to lift them
/// into datapaths. Throws std::runtime_error when the library cannot
/// implement a needed type.
std::vector<AluInstance> bindByColumns(const dfg::Dfg& g,
                                       const celllib::CellLibrary& lib,
                                       const sched::Schedule& s);

}  // namespace mframe::rtl
