// Independent structural verification of a Datapath — the RTL counterpart of
// sched::verifySchedule. Every MFSA result is re-checked here by the tests.
//
// This is now a thin adapter over analysis::lintDatapath (the structured
// diagnostics engine in src/analysis/); tools that want rule ids, severities
// and locations instead of bare strings should call that directly.
#pragma once

#include <string>
#include <vector>

#include "rtl/datapath.h"

namespace mframe::rtl {

/// Check the datapath against the graph, constraints and design style:
///  * binding: every schedulable operation bound to exactly one ALU whose
///    module supports the operation's FU type;
///  * ALU occupancy: no temporal overlap of non-exclusive operations on one
///    ALU (start-step conflicts for pipelined modules; folded mod latency);
///  * style 2: no operation shares an ALU with a predecessor or successor;
///  * registers: lifetimes packed into one register never overlap; every
///    cross-step signal has a register;
///  * wiring: each operand of each operation is reachable through its port
///    (present in the port's select map).
std::vector<std::string> verifyDatapath(const Datapath& d,
                                        const sched::Constraints& c,
                                        DesignStyle style);

}  // namespace mframe::rtl
