#include "rtl/verify.h"

#include "analysis/rtl_rules.h"

namespace mframe::rtl {

// Thin adapter over the structured RTL lint pass: the checking logic lives
// in analysis::lintDatapath, which emits typed Diagnostics; this legacy
// entry point keeps the historical string contract (same messages, same
// order, same early-out on binding failures).
std::vector<std::string> verifyDatapath(const Datapath& d,
                                        const sched::Constraints& c,
                                        DesignStyle style) {
  return analysis::lintDatapath(d, c, style).messages();
}

}  // namespace mframe::rtl
