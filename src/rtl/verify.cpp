#include "rtl/verify.h"

#include <algorithm>
#include <set>

#include "util/strings.h"

namespace mframe::rtl {

namespace {

using dfg::NodeId;

/// Folded steps occupied by `n` on a (possibly pipelined) ALU.
std::vector<int> occupied(const dfg::Dfg& g, const sched::Schedule& s,
                          NodeId n, bool pipelined, int latency) {
  auto fold = [&](int st) { return latency > 0 ? (st - 1) % latency : st; };
  std::vector<int> out;
  const int start = s.stepOf(n);
  const int cycles = pipelined ? 1 : g.node(n).cycles;
  for (int st = start; st < start + cycles; ++st) out.push_back(fold(st));
  return out;
}

}  // namespace

std::vector<std::string> verifyDatapath(const Datapath& d,
                                        const sched::Constraints& c,
                                        DesignStyle style) {
  std::vector<std::string> v;
  const dfg::Dfg& g = *d.graph;

  // -- binding --------------------------------------------------------------
  std::map<NodeId, int> seen;
  for (const AluInstance& a : d.alus) {
    const celllib::Module& m = d.lib->module(a.module);
    for (NodeId op : a.ops) {
      if (seen.count(op))
        v.push_back(util::format("op '%s' bound to ALU%d and ALU%d",
                                 g.node(op).name.c_str(), seen[op], a.index));
      seen[op] = a.index;
      if (!dfg::isSchedulable(g.node(op).kind))
        v.push_back(util::format("non-operation '%s' bound to an ALU",
                                 g.node(op).name.c_str()));
      else if (!m.supports(dfg::fuTypeOf(g.node(op).kind)))
        v.push_back(util::format("ALU%d (%s) cannot perform '%s'", a.index,
                                 m.signature().c_str(), g.node(op).name.c_str()));
    }
  }
  for (NodeId op : g.operations())
    if (!seen.count(op))
      v.push_back(util::format("op '%s' is not bound to any ALU",
                               g.node(op).name.c_str()));
  if (!v.empty()) return v;

  // -- ALU occupancy ---------------------------------------------------------
  for (const AluInstance& a : d.alus) {
    const bool pipelined = d.lib->module(a.module).stages > 1;
    for (std::size_t i = 0; i < a.ops.size(); ++i) {
      for (std::size_t j = i + 1; j < a.ops.size(); ++j) {
        const NodeId x = a.ops[i];
        const NodeId y = a.ops[j];
        if (g.mutuallyExclusive(x, y)) continue;
        const auto ox = occupied(g, d.schedule, x, pipelined, c.latency);
        const auto oy = occupied(g, d.schedule, y, pipelined, c.latency);
        const bool clash = std::any_of(ox.begin(), ox.end(), [&](int st) {
          return std::find(oy.begin(), oy.end(), st) != oy.end();
        });
        if (clash)
          v.push_back(util::format("ALU%d executes '%s' and '%s' concurrently",
                                   a.index, g.node(x).name.c_str(),
                                   g.node(y).name.c_str()));
      }
    }
  }

  // -- style 2: no self loop around ALUs --------------------------------------
  if (style == DesignStyle::NoSelfLoop) {
    for (const AluInstance& a : d.alus) {
      const std::set<NodeId> inAlu(a.ops.begin(), a.ops.end());
      for (NodeId op : a.ops)
        for (NodeId p : g.opPreds(op))
          if (inAlu.count(p))
            v.push_back(util::format(
                "style-2 violation: '%s' and its predecessor '%s' share ALU%d",
                g.node(op).name.c_str(), g.node(p).name.c_str(), a.index));
    }
  }

  // -- registers ---------------------------------------------------------------
  for (std::size_t r = 0; r < d.regs.registers.size(); ++r) {
    const auto& reg = d.regs.registers[r];
    for (std::size_t i = 0; i < reg.size(); ++i)
      for (std::size_t j = i + 1; j < reg.size(); ++j)
        if (d.lifetimes[reg[i]].overlaps(d.lifetimes[reg[j]]))
          v.push_back(util::format(
              "register R%zu holds overlapping signals '%s' and '%s'", r,
              g.node(d.lifetimes[reg[i]].producer).name.c_str(),
              g.node(d.lifetimes[reg[j]].producer).name.c_str()));
  }
  for (const alloc::Lifetime& lt : d.lifetimes)
    if (lt.needsRegister && !d.regOfSignal.count(lt.producer))
      v.push_back(util::format("signal '%s' crosses steps but has no register",
                               g.node(lt.producer).name.c_str()));

  // -- wiring -------------------------------------------------------------------
  for (const AluInstance& a : d.alus) {
    const auto& arr = d.arrangement[static_cast<std::size_t>(a.index)];
    for (NodeId op : a.ops) {
      const dfg::Node& n = g.node(op);
      if (n.inputs.empty()) continue;
      const bool swap = arr.swapped.count(op) ? arr.swapped.at(op) : false;
      const dfg::NodeId l = swap && n.inputs.size() == 2 ? n.inputs[1] : n.inputs[0];
      if (!d.leftPort[static_cast<std::size_t>(a.index)].selectOf.count({op, l}))
        v.push_back(util::format("ALU%d left port cannot deliver '%s' to '%s'",
                                 a.index, g.node(l).name.c_str(), n.name.c_str()));
      if (n.inputs.size() >= 2) {
        const dfg::NodeId rsig = swap ? n.inputs[0] : n.inputs[1];
        if (!d.rightPort[static_cast<std::size_t>(a.index)].selectOf.count({op, rsig}))
          v.push_back(util::format("ALU%d right port cannot deliver '%s' to '%s'",
                                   a.index, g.node(rsig).name.c_str(),
                                   n.name.c_str()));
      }
    }
  }
  return v;
}

}  // namespace mframe::rtl
