// Graphviz export of the RTL *structure* (as opposed to dfg::toDot's
// behavioral view): ALUs, registers, constants and primary inputs as nodes,
// mux data inputs as edges labeled with their select index.
#pragma once

#include <string>

#include "rtl/datapath.h"

namespace mframe::rtl {

std::string toDot(const Datapath& d);

}  // namespace mframe::rtl
