#include "rtl/datapath.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "trace/trace.h"
#include "util/strings.h"

namespace mframe::rtl {

std::string Datapath::aluSummary() const {
  // Group identical module signatures: "2(+-); (*)".
  std::map<std::string, int> bySig;
  for (const AluInstance& a : alus) ++bySig[lib->module(a.module).signature()];
  std::vector<std::string> parts;
  for (const auto& [sig, count] : bySig)
    parts.push_back(count > 1 ? util::format("%d%s", count, sig.c_str()) : sig);
  return util::join(parts, "; ");
}

Datapath buildDatapath(const dfg::Dfg& g, const celllib::CellLibrary& lib,
                       const sched::Schedule& s,
                       std::vector<AluInstance> alus) {
  const std::vector<alloc::Lifetime> lifetimes = alloc::computeLifetimes(g, s);
  return buildDatapath(g, lib, s, std::move(alus),
                       alloc::allocateRegisters(lifetimes));
}

Datapath buildDatapath(const dfg::Dfg& g, const celllib::CellLibrary& lib,
                       const sched::Schedule& s, std::vector<AluInstance> alus,
                       alloc::RegAllocation regs) {
  const trace::Span span("rtl.datapath");
  Datapath d;
  d.schedule = s;
  d.graph = d.schedule.sharedGraph();  // identical snapshot as the schedule's
  d.lib = std::make_shared<celllib::CellLibrary>(lib);
  d.alus = std::move(alus);
  for (const AluInstance& a : d.alus)
    for (dfg::NodeId op : a.ops) d.aluOf[op] = a.index;

  // Registers (Section 5.8).
  d.lifetimes = alloc::computeLifetimes(g, s);
  d.regs = std::move(regs);
  for (std::size_t r = 0; r < d.regs.registers.size(); ++r)
    for (std::size_t i : d.regs.registers[r])
      d.regOfSignal[d.lifetimes[i].producer] = static_cast<int>(r);

  // Mux arrangement per ALU (Section 5.6), then physical wiring with
  // interconnect sharing (Section 5.7).
  const alloc::SourceResolver resolver(g, s, d.lifetimes, d.regs, d.aluOf);
  d.arrangement.reserve(d.alus.size());
  for (const AluInstance& a : d.alus) {
    d.arrangement.push_back(alloc::arrangeInputs(g, a.ops));
    const alloc::MuxArrangement& arr = d.arrangement.back();

    std::vector<std::pair<dfg::NodeId, dfg::NodeId>> leftReads, rightReads;
    for (dfg::NodeId op : a.ops) {
      const dfg::Node& n = g.node(op);
      if (n.inputs.empty()) continue;
      const bool swap = arr.swapped.count(op) ? arr.swapped.at(op) : false;
      const dfg::NodeId l = swap ? n.inputs[1] : n.inputs[0];
      leftReads.emplace_back(op, l);
      if (n.inputs.size() >= 2) {
        const dfg::NodeId r = swap ? n.inputs[0] : n.inputs[1];
        rightReads.emplace_back(op, r);
      }
    }
    d.leftPort.push_back(alloc::wirePort(resolver, leftReads));
    d.rightPort.push_back(alloc::wirePort(resolver, rightReads));
  }
  return d;
}

std::vector<AluInstance> bindByColumns(const dfg::Dfg& g,
                                       const celllib::CellLibrary& lib,
                                       const sched::Schedule& s) {
  std::vector<AluInstance> alus;
  std::map<std::pair<dfg::FuType, int>, std::size_t> instanceOf;
  for (const dfg::Node& n : g.nodes()) {
    if (!dfg::isSchedulable(n.kind) || !s.isPlaced(n.id)) continue;
    const dfg::FuType t = dfg::fuTypeOf(n.kind);
    const auto key = std::make_pair(t, s.columnOf(n.id));
    auto it = instanceOf.find(key);
    if (it == instanceOf.end()) {
      const std::optional<celllib::ModuleId> m = lib.cheapestFor(t);
      if (!m)
        throw std::runtime_error("cell library has no module for FU type '" +
                                 std::string(dfg::fuTypeName(t)) + "'");
      AluInstance a;
      a.module = *m;
      a.index = static_cast<int>(alus.size());
      alus.push_back(std::move(a));
      it = instanceOf.emplace(key, alus.size() - 1).first;
    }
    alus[it->second].ops.push_back(n.id);
  }
  return alus;
}

std::vector<DeclaredWidth> declaredRegisterWidths(const Datapath& d) {
  std::vector<DeclaredWidth> w(d.regs.count());
  // regOfSignal is ordered by NodeId, so ties resolve to the oldest tenant
  // deterministically.
  for (const auto& [sig, reg] : d.regOfSignal) {
    if (reg < 0 || static_cast<std::size_t>(reg) >= w.size()) continue;
    const int dw = d.graph->node(sig).width;
    if (dw > 0 && dw > w[static_cast<std::size_t>(reg)].width)
      w[static_cast<std::size_t>(reg)] = {dw, sig};
  }
  return w;
}

std::vector<DeclaredWidth> declaredAluWidths(const Datapath& d) {
  std::vector<DeclaredWidth> w(d.alus.size());
  for (std::size_t a = 0; a < d.alus.size(); ++a)
    for (dfg::NodeId op : d.alus[a].ops) {
      const int dw = d.graph->node(op).width;
      if (dw > 0 && dw > w[a].width) w[a] = {dw, op};
    }
  return w;
}

}  // namespace mframe::rtl
