#include "rtl/rtl_dot.h"

#include <set>

#include "util/strings.h"

namespace mframe::rtl {

namespace {

std::string sourceId(const alloc::Source& s) {
  using K = alloc::Source::Kind;
  switch (s.kind) {
    case K::Register: return util::format("reg%d", s.index);
    case K::AluOut: return util::format("alu%d", s.index);
    case K::PrimaryInput: return util::format("in%u", s.node);
    case K::Constant: return util::format("const%u", s.node);
  }
  return "unknown";
}

}  // namespace

std::string toDot(const Datapath& d) {
  const dfg::Dfg& g = *d.graph;
  std::string out = "digraph \"" + g.name() + "_rtl\" {\n  rankdir=LR;\n";

  // Nodes.
  for (const AluInstance& a : d.alus)
    out += util::format("  alu%d [shape=invtrapezium, label=\"ALU%d %s\"];\n",
                        a.index, a.index,
                        d.lib->module(a.module).signature().c_str());
  for (std::size_t r = 0; r < d.regs.count(); ++r)
    out += util::format("  reg%zu [shape=box, label=\"R%zu\"];\n", r, r);

  std::set<std::string> declared;
  auto declareSource = [&](const alloc::Source& s) {
    const std::string id = sourceId(s);
    if (!declared.insert(id).second) return id;
    if (s.kind == alloc::Source::Kind::PrimaryInput)
      out += util::format("  %s [shape=invtriangle, label=\"%s\"];\n",
                          id.c_str(), g.node(s.node).name.c_str());
    else if (s.kind == alloc::Source::Kind::Constant)
      out += util::format("  %s [shape=plaintext, label=\"%ld\"];\n",
                          id.c_str(), g.node(s.node).constValue);
    return id;
  };

  // Mux edges: source -> ALU port, labeled with the select index.
  for (const AluInstance& a : d.alus) {
    const auto ai = static_cast<std::size_t>(a.index);
    auto port = [&](const alloc::PortWiring& w, const char* name) {
      for (std::size_t i = 0; i < w.sources.size(); ++i) {
        const std::string id = declareSource(w.sources[i]);
        out += util::format("  %s -> alu%d [label=\"%s%zu\"];\n", id.c_str(),
                            a.index, name, i);
      }
    };
    port(d.leftPort[ai], "a");
    port(d.rightPort[ai], "b");
  }
  // Register write edges: producing ALU -> register.
  for (const auto& [signal, reg] : d.regOfSignal) {
    auto it = d.aluOf.find(signal);
    if (it != d.aluOf.end())
      out += util::format("  alu%d -> reg%d [style=dashed, label=\"%s\"];\n",
                          it->second, reg, g.node(signal).name.c_str());
  }
  out += "}\n";
  return out;
}

}  // namespace mframe::rtl
