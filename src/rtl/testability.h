// Structural testability metrics behind the paper's design style 2
// (Section 4.2): SYNTEST [18][20] wants a datapath with "no self loop around
// ALUs", because an ALU whose output feeds (a register that feeds) its own
// input cannot be tested with a simple register-scan pattern. This analyzer
// counts the self-loop structures a binding creates, quantifying what the
// 2-11% style-2 area overhead buys.
#pragma once

#include <string>
#include <vector>

#include "rtl/datapath.h"

namespace mframe::rtl {

struct TestabilityReport {
  /// (op, predecessor) pairs bound to the same ALU — each is a combinational
  /// or one-register self loop around that ALU.
  int selfLoopPairs = 0;
  /// ALUs with at least one such pair.
  int selfLoopAlus = 0;
  /// ALU -> ALU feed edges (dataflow between distinct units): the clean,
  /// scannable structure.
  int crossAluEdges = 0;
  /// Registers that sit on a self loop (hold a value produced and consumed
  /// by the same ALU).
  int selfLoopRegisters = 0;

  bool selfTestable() const { return selfLoopPairs == 0; }
  std::string toString() const;
};

TestabilityReport analyzeTestability(const Datapath& d);

}  // namespace mframe::rtl
