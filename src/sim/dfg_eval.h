// Reference interpreter for DFGs: evaluates the graph directly in
// topological order. This is the behavioral golden model the RTL simulator
// is checked against.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "dfg/dfg.h"
#include "sim/eval.h"

namespace mframe::sim {

struct DfgEvalResult {
  bool ok = false;
  std::string error;
  /// Every node's value, indexed by NodeId.
  std::vector<Word> values;
  /// Primary outputs by external name.
  std::map<std::string, Word> outputs;
};

/// Evaluate `g` on the given primary-input assignment (by signal name;
/// missing inputs default to 0). Graphs with LoopSuper nodes cannot be
/// interpreted (fold loops first) and report an error. Conditionals are
/// evaluated dataflow-style: both arms compute their values.
DfgEvalResult evalDfg(const dfg::Dfg& g,
                      const std::map<std::string, Word>& inputs,
                      int width = 16);

}  // namespace mframe::sim
