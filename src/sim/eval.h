// Word-level operation semantics shared by the DFG interpreter and the RTL
// simulator, so functional equivalence between the behavioral input and the
// synthesized datapath is well defined. Values are unsigned words of a
// configurable width (default 16, matching the Verilog export); relational
// operations produce 0/1; division by zero yields 0 by convention in both
// evaluation paths.
#pragma once

#include <cstdint>

#include "dfg/op.h"

namespace mframe::sim {

using Word = std::uint64_t;

inline Word maskFor(int width) {
  return width >= 64 ? ~Word{0} : ((Word{1} << width) - 1);
}

/// Apply one operation. `b` is ignored for unary kinds.
Word evalOp(dfg::OpKind kind, Word a, Word b, int width = 16);

}  // namespace mframe::sim
