#include "sim/eval.h"

namespace mframe::sim {

namespace {

// Simulator semantics are modular by contract: results wrap at the word
// width. The wrap is made explicit through the compiler's checked intrinsics
// (an unsigned Word cannot overflow in the UB sense, but the intrinsic
// states the intent and keeps this path symmetric with the interval
// transfer functions, which use the same intrinsics to saturate instead).
Word wrapAdd(Word a, Word b) {
  Word r = 0;
  (void)__builtin_add_overflow(a, b, &r);
  return r;
}

Word wrapSub(Word a, Word b) {
  Word r = 0;
  (void)__builtin_sub_overflow(a, b, &r);
  return r;
}

Word wrapMul(Word a, Word b) {
  Word r = 0;
  (void)__builtin_mul_overflow(a, b, &r);
  return r;
}

}  // namespace

Word evalOp(dfg::OpKind kind, Word a, Word b, int width) {
  const Word mask = maskFor(width);
  // Shift amounts reduce modulo the word width; a degenerate width (<= 0
  // masks everything to zero) must not divide by zero.
  const Word shiftMod = width > 0 ? static_cast<Word>(width) : 1;
  a &= mask;
  b &= mask;
  using dfg::OpKind;
  switch (kind) {
    case OpKind::Add: return wrapAdd(a, b) & mask;
    case OpKind::Sub: return wrapSub(a, b) & mask;
    case OpKind::Mul: return wrapMul(a, b) & mask;
    case OpKind::Div: return b == 0 ? 0 : (a / b) & mask;
    case OpKind::Inc: return wrapAdd(a, 1) & mask;
    case OpKind::Dec: return wrapSub(a, 1) & mask;
    case OpKind::And: return a & b;
    case OpKind::Or: return a | b;
    case OpKind::Xor: return a ^ b;
    case OpKind::Not: return ~a & mask;
    case OpKind::Shl: return (a << (b % shiftMod)) & mask;
    case OpKind::Shr: return a >> (b % shiftMod);
    case OpKind::Eq: return a == b ? 1 : 0;
    case OpKind::Ne: return a != b ? 1 : 0;
    case OpKind::Lt: return a < b ? 1 : 0;
    case OpKind::Gt: return a > b ? 1 : 0;
    case OpKind::Le: return a <= b ? 1 : 0;
    case OpKind::Ge: return a >= b ? 1 : 0;
    default: return a;  // Input/Const/LoopSuper never reach evalOp
  }
}

}  // namespace mframe::sim
