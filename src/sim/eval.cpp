#include "sim/eval.h"

namespace mframe::sim {

Word evalOp(dfg::OpKind kind, Word a, Word b, int width) {
  const Word mask = maskFor(width);
  a &= mask;
  b &= mask;
  using dfg::OpKind;
  switch (kind) {
    case OpKind::Add: return (a + b) & mask;
    case OpKind::Sub: return (a - b) & mask;
    case OpKind::Mul: return (a * b) & mask;
    case OpKind::Div: return b == 0 ? 0 : (a / b) & mask;
    case OpKind::Inc: return (a + 1) & mask;
    case OpKind::Dec: return (a - 1) & mask;
    case OpKind::And: return a & b;
    case OpKind::Or: return a | b;
    case OpKind::Xor: return a ^ b;
    case OpKind::Not: return ~a & mask;
    case OpKind::Shl: return (a << (b % static_cast<Word>(width))) & mask;
    case OpKind::Shr: return a >> (b % static_cast<Word>(width));
    case OpKind::Eq: return a == b ? 1 : 0;
    case OpKind::Ne: return a != b ? 1 : 0;
    case OpKind::Lt: return a < b ? 1 : 0;
    case OpKind::Gt: return a > b ? 1 : 0;
    case OpKind::Le: return a <= b ? 1 : 0;
    case OpKind::Ge: return a >= b ? 1 : 0;
    default: return a;  // Input/Const/LoopSuper never reach evalOp
  }
}

}  // namespace mframe::sim
