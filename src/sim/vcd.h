// Value-change-dump (VCD) export of an RTL simulation, so synthesized
// designs can be inspected in any waveform viewer. The trace is recorded by
// simulateRtl when a SimTrace is supplied.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/eval.h"

namespace mframe::sim {

/// Per-control-step values of every traced signal. Index 0 is the reset
/// state (after input preload), index k the state after control step k.
struct SimTrace {
  int steps = 0;
  /// signal name -> one value per recorded time point (steps + 1 entries).
  std::map<std::string, std::vector<Word>> signals;

  void record(const std::string& name, int step, Word value);
  /// Pad every signal to `points` entries by holding its last value.
  void finalize(int points);
};

/// Render the trace as a VCD document. One timescale unit per control step.
std::string toVcd(const SimTrace& trace, int width = 16,
                  const std::string& designName = "mframe");

}  // namespace mframe::sim
