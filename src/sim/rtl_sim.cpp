#include "sim/rtl_sim.h"

#include <algorithm>

#include "util/strings.h"

namespace mframe::sim {

namespace {

using dfg::NodeId;

}  // namespace

RtlSimResult simulateRtl(const rtl::Datapath& d, const rtl::ControllerFsm& fsm,
                         const std::map<std::string, Word>& inputs, int width,
                         SimTrace* trace) {
  RtlSimResult res;
  const dfg::Dfg& g = *d.graph;
  const Word mask = maskFor(width);

  std::map<int, Word> regfile;
  std::map<NodeId, Word> valueOf;  // computed operation results (by signal)

  auto inputValue = [&](NodeId id) {
    auto it = inputs.find(g.node(id).name);
    return (it == inputs.end() ? Word{0} : it->second) & mask;
  };

  // Step 0: primary-input preloads.
  for (const rtl::RegLoad& rl : fsm.regLoads) {
    if (rl.step != 0) continue;
    if (g.node(rl.signal).kind != dfg::OpKind::Input) {
      res.error = "step-0 load of non-input signal '" + g.node(rl.signal).name + "'";
      return res;
    }
    regfile[rl.reg] = inputValue(rl.signal);
  }
  if (trace)
    for (const auto& [reg, value] : regfile)
      trace->record(util::format("R%d", reg), 0, value);

  // Resolve one operand of `op` through the real port wiring.
  auto readOperand = [&](const rtl::MicroOp& m, bool leftPort, NodeId signal,
                         Word& out) -> std::optional<std::string> {
    const auto ai = static_cast<std::size_t>(m.alu);
    const alloc::PortWiring& w = leftPort ? d.leftPort[ai] : d.rightPort[ai];
    auto sel = w.selectOf.find({m.op, signal});
    if (sel == w.selectOf.end())
      return "no wiring for operand '" + g.node(signal).name + "' of '" +
             g.node(m.op).name + "'";
    const alloc::Source& src = w.sources[sel->second];
    switch (src.kind) {
      case alloc::Source::Kind::Register: {
        auto it = regfile.find(src.index);
        if (it == regfile.end())
          return util::format("read of never-written register R%d", src.index);
        out = it->second;
        return std::nullopt;
      }
      case alloc::Source::Kind::AluOut: {
        // Chained combinational read of a value produced earlier this step.
        auto it = valueOf.find(signal);
        if (it == valueOf.end()) return std::string("chained value not ready");
        out = it->second;
        return std::nullopt;
      }
      case alloc::Source::Kind::PrimaryInput:
        out = inputValue(src.node);
        return std::nullopt;
      case alloc::Source::Kind::Constant:
        out = static_cast<Word>(g.node(src.node).constValue) & mask;
        return std::nullopt;
    }
    return std::string("unreachable");
  };

  for (int step = 1; step <= fsm.numSteps; ++step) {
    // Collect this step's issues; evaluate in chain-dependency order (an op
    // whose chained operand is not computed yet is retried after the rest).
    std::vector<const rtl::MicroOp*> todo;
    for (const rtl::MicroOp& m : fsm.microOps)
      if (m.step == step) todo.push_back(&m);

    while (!todo.empty()) {
      bool progress = false;
      std::vector<const rtl::MicroOp*> next;
      for (const rtl::MicroOp* m : todo) {
        const dfg::Node& n = g.node(m->op);
        const auto& arr = d.arrangement[static_cast<std::size_t>(m->alu)];
        const bool swap =
            arr.swapped.count(m->op) ? arr.swapped.at(m->op) : false;
        Word a = 0, b = 0;
        std::optional<std::string> err;
        bool deferred = false;
        if (!n.inputs.empty()) {
          const NodeId l =
              swap && n.inputs.size() == 2 ? n.inputs[1] : n.inputs[0];
          err = readOperand(*m, /*leftPort=*/true, l, a);
          if (err && *err == "chained value not ready") {
            next.push_back(m);
            deferred = true;
          }
          if (!deferred && !err && n.inputs.size() >= 2) {
            const NodeId r = swap ? n.inputs[0] : n.inputs[1];
            err = readOperand(*m, /*leftPort=*/false, r, b);
            if (err && *err == "chained value not ready") {
              next.push_back(m);
              deferred = true;
            }
          }
        }
        if (deferred) continue;
        if (err) {
          res.error = *err;
          return res;
        }
        valueOf[m->op] = evalOp(n.kind, a, b, width);
        if (trace) trace->record(n.name, step, valueOf[m->op]);
        progress = true;
      }
      if (!progress) {
        res.error = util::format("chained deadlock in step %d", step);
        return res;
      }
      todo = std::move(next);
    }

    // End of step: latch completed values into their registers.
    for (const rtl::RegLoad& rl : fsm.regLoads) {
      if (rl.step != step) continue;
      auto it = valueOf.find(rl.signal);
      if (it == valueOf.end()) {
        res.error = util::format("register load of uncomputed signal '%s' at step %d",
                                 g.node(rl.signal).name.c_str(), step);
        return res;
      }
      regfile[rl.reg] = it->second;
      if (trace) trace->record(util::format("R%d", rl.reg), step, it->second);
    }
  }
  if (trace) trace->finalize(fsm.numSteps + 1);

  // Primary outputs, wired exactly like the Verilog writer.
  for (const auto& [id, ext] : g.outputs()) {
    auto reg = d.regOfSignal.find(id);
    if (reg != d.regOfSignal.end()) {
      res.outputs[ext] = regfile[reg->second];
    } else if (valueOf.count(id)) {
      res.outputs[ext] = valueOf[id];
    } else if (g.node(id).kind == dfg::OpKind::Input) {
      res.outputs[ext] = inputValue(id);
    } else {
      res.error = "output '" + ext + "' was never computed";
      return res;
    }
  }
  res.registersAtEnd = regfile;
  res.stepsExecuted = fsm.numSteps;
  res.ok = true;
  return res;
}

}  // namespace mframe::sim
