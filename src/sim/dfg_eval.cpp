#include "sim/dfg_eval.h"

namespace mframe::sim {

DfgEvalResult evalDfg(const dfg::Dfg& g,
                      const std::map<std::string, Word>& inputs, int width) {
  DfgEvalResult res;
  const auto order = g.topoOrder();
  if (!order) {
    res.error = "graph contains a cycle";
    return res;
  }
  res.values.assign(g.size(), 0);
  const Word mask = maskFor(width);

  for (dfg::NodeId id : *order) {
    const dfg::Node& n = g.node(id);
    switch (n.kind) {
      case dfg::OpKind::Input: {
        auto it = inputs.find(n.name);
        res.values[id] = (it == inputs.end() ? 0 : it->second) & mask;
        break;
      }
      case dfg::OpKind::Const:
        res.values[id] = static_cast<Word>(n.constValue) & mask;
        break;
      case dfg::OpKind::LoopSuper:
        res.error = "cannot interpret LoopSuper node '" + n.name +
                    "' (fold loops before evaluation)";
        return res;
      default: {
        const Word a = n.inputs.empty() ? 0 : res.values[n.inputs[0]];
        const Word b = n.inputs.size() > 1 ? res.values[n.inputs[1]] : 0;
        res.values[id] = evalOp(n.kind, a, b, width);
      }
    }
  }
  for (const auto& [id, ext] : g.outputs()) res.outputs[ext] = res.values[id];
  res.ok = true;
  return res;
}

}  // namespace mframe::sim
