// Cycle-accurate simulation of a synthesized datapath + controller FSM.
//
// The simulator executes the micro-program one control step at a time:
// primary inputs preload their registers at step 0, each step's operations
// read their operands through the *actual* port wiring (so a wrong mux
// select or a register-allocation bug surfaces as a wrong value), values are
// latched into registers at the end of their producer's completion step, and
// primary outputs are read back the same way the Verilog writer wires them.
// Comparing the result against sim::evalDfg proves the synthesized RTL
// computes the behavioral specification.
#pragma once

#include <map>
#include <string>

#include "rtl/controller.h"
#include "rtl/datapath.h"
#include "sim/eval.h"
#include "sim/vcd.h"

namespace mframe::sim {

struct RtlSimResult {
  bool ok = false;
  std::string error;
  std::map<std::string, Word> outputs;   ///< primary outputs by external name
  std::map<int, Word> registersAtEnd;    ///< final register file contents
  int stepsExecuted = 0;
};

/// Run the design once (one pass through all control steps). Missing inputs
/// default to 0. `width` must match the word width used for comparison.
/// When `trace` is non-null, register values and operation results are
/// recorded per step for VCD export (sim::toVcd).
RtlSimResult simulateRtl(const rtl::Datapath& d, const rtl::ControllerFsm& fsm,
                         const std::map<std::string, Word>& inputs,
                         int width = 16, SimTrace* trace = nullptr);

}  // namespace mframe::sim
