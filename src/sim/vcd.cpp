#include "sim/vcd.h"

#include "util/strings.h"

namespace mframe::sim {

void SimTrace::record(const std::string& name, int step, Word value) {
  auto& v = signals[name];
  // Hold the previous value (or 0) up to this time point.
  while (static_cast<int>(v.size()) <= step)
    v.push_back(v.empty() ? 0 : v.back());
  v[static_cast<std::size_t>(step)] = value;
}

void SimTrace::finalize(int points) {
  steps = points - 1;
  for (auto& [name, v] : signals)
    while (static_cast<int>(v.size()) < points)
      v.push_back(v.empty() ? 0 : v.back());
}

namespace {

std::string vcdId(std::size_t index) {
  // Printable short identifiers: !, ", #, ... per the VCD convention.
  std::string id;
  do {
    id += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index > 0);
  return id;
}

std::string bits(Word value, int width) {
  std::string out = "b";
  bool seen = false;
  for (int i = width - 1; i >= 0; --i) {
    const bool bit = (value >> i) & 1;
    if (bit) seen = true;
    if (seen || i == 0) out += bit ? '1' : '0';
  }
  return out;
}

}  // namespace

std::string toVcd(const SimTrace& trace, int width,
                  const std::string& designName) {
  std::string out;
  out += "$date libmframe simulation $end\n";
  out += "$version libmframe RTL simulator $end\n";
  out += "$timescale 1 ns $end\n";
  out += "$scope module " + designName + " $end\n";
  std::size_t index = 0;
  std::map<std::string, std::string> idOf;
  for (const auto& [name, values] : trace.signals) {
    idOf[name] = vcdId(index++);
    out += util::format("$var wire %d %s %s $end\n", width,
                        idOf[name].c_str(), name.c_str());
  }
  out += "$upscope $end\n$enddefinitions $end\n";

  for (int t = 0; t <= trace.steps; ++t) {
    out += util::format("#%d\n", t);
    for (const auto& [name, values] : trace.signals) {
      const Word v = values[static_cast<std::size_t>(t)];
      if (t > 0 && values[static_cast<std::size_t>(t - 1)] == v) continue;
      out += bits(v, width) + " " + idOf.at(name) + "\n";
    }
  }
  return out;
}

}  // namespace mframe::sim
