// Design-space exploration: sweep MFSA over a cross product of
// configurations (control steps × Liapunov weights × priority rule ×
// interconnect style × design style) and reduce the results to a Pareto
// frontier of (control steps, total area).
//
// The sweep is deterministic by construction: configurations are enumerated
// in a fixed order, each candidate is evaluated independently (runMfsa is a
// pure function of its inputs), and every worker thread writes only its own
// pre-sized result slot. The merged frontier — and the JSON rendering, which
// deliberately contains no wall-clock data — is therefore bit-identical for
// any `jobs` count.
#pragma once

#include <string>
#include <vector>

#include "celllib/cell_library.h"
#include "core/mfsa.h"

namespace mframe::explore {

/// The swept axes. Every non-empty axis multiplies the configuration count;
/// `base` carries the shared scheduling constraints (chaining, clock, FU
/// limits). An empty `steps` axis is filled with the design's critical path
/// +0..+3 when the sweep runs.
struct SweepSpec {
  std::vector<int> steps;
  std::vector<core::MfsaWeights> weights;
  std::vector<sched::PriorityRule> priorityRules;
  std::vector<core::InterconnectStyle> interconnects;
  std::vector<rtl::DesignStyle> styles;
  sched::Constraints base;

  /// The full default sweep: 4 step budgets × 3 weight presets ×
  /// 2 priority rules × 2 interconnect styles × 2 design styles.
  static SweepSpec defaults();
};

/// One swept configuration plus its outcome.
struct Candidate {
  int index = 0;  ///< position in enumeration order

  int steps = 0;
  core::MfsaWeights weights;
  sched::PriorityRule priorityRule = sched::PriorityRule::Mobility;
  core::InterconnectStyle interconnect = core::InterconnectStyle::Mux;
  rtl::DesignStyle style = rtl::DesignStyle::Unrestricted;

  bool feasible = false;
  std::string error;          ///< set when infeasible
  rtl::CostBreakdown cost;    ///< valid when feasible
  int restarts = 0;
};

struct ExploreResult {
  std::string design;
  int criticalSteps = 0;
  std::vector<Candidate> candidates;  ///< enumeration order
  /// Indices into `candidates`: the Pareto-minimal set under
  /// (steps, cost.total), sorted by steps ascending (total strictly
  /// decreasing). Ties resolve to the lowest enumeration index.
  std::vector<int> frontier;
  int feasibleCount = 0;
};

/// Expand the sweep's cross product in enumeration order (steps outermost,
/// style innermost) without running anything. Empty axes get the library
/// defaults; an empty `steps` axis becomes criticalSteps+0..+3.
std::vector<Candidate> enumerateConfigs(const SweepSpec& spec,
                                        int criticalSteps);

/// Run the sweep with up to `jobs` worker threads. The result is identical
/// for every jobs value (see file comment).
ExploreResult explore(const dfg::Dfg& g, const celllib::CellLibrary& lib,
                      const SweepSpec& spec, int jobs);

/// Deterministic JSON rendering: design, sweep summary, frontier and
/// per-candidate outcomes. Contains no timing or host information.
std::string toJson(const ExploreResult& r);

std::string_view priorityRuleName(sched::PriorityRule r);
std::string_view interconnectName(core::InterconnectStyle s);
std::string_view designStyleName(rtl::DesignStyle s);

}  // namespace mframe::explore
