#include "explore/thread_pool.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace mframe::explore {

void parallelFor(int n, int jobs, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  const int workers = jobs < n ? jobs : n;
  if (workers <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<int> next{0};
  std::mutex errorMu;
  std::exception_ptr firstError;

  auto body = [&] {
    while (true) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(errorMu);
        if (!firstError) firstError = std::current_exception();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) threads.emplace_back(body);
  for (std::thread& th : threads) th.join();
  if (firstError) std::rethrow_exception(firstError);
}

}  // namespace mframe::explore
