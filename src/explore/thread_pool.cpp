#include "explore/thread_pool.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "trace/trace.h"
#include "util/strings.h"

namespace mframe::explore {

void parallelFor(int n, int jobs, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  const int workers = jobs < n ? jobs : n;
  if (workers <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<int> next{0};
  // Raised by the first failing item; workers check it before claiming, so
  // a 96-config sweep does not run to completion after config 1 throws.
  // Items already claimed still finish — the flag short-circuits dispatch,
  // it does not cancel work in flight.
  std::atomic<bool> stop{false};
  std::mutex errorMu;
  std::exception_ptr firstError;

  auto body = [&](int worker) {
    const std::uint64_t t0 = trace::nowUs();
    std::uint64_t busyUs = 0;
    int items = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      const std::uint64_t s0 = trace::nowUs();
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(errorMu);
        if (!firstError) firstError = std::current_exception();
        stop.store(true, std::memory_order_relaxed);
      }
      ++items;
      if (trace::tracingEnabled()) busyUs += trace::nowUs() - s0;
    }
    // Per-worker utilization record: how many items this worker claimed and
    // how much of its lifetime it spent inside fn. The split across workers
    // is racy by design (only the trace shows it); deterministic totals live
    // in the counter registry instead.
    if (trace::tracingEnabled())
      trace::completeEvent(
          "parallelFor.worker", t0,
          util::format("{\"worker\": %d, \"items\": %d, \"busyUs\": %llu}",
                       worker, items,
                       static_cast<unsigned long long>(busyUs)));
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) threads.emplace_back(body, t);
  for (std::thread& th : threads) th.join();
  if (firstError) std::rethrow_exception(firstError);
}

}  // namespace mframe::explore
