#include "explore/explore.h"

#include <algorithm>

#include "cache/resynth.h"
#include "explore/thread_pool.h"
#include "sched/timeframes.h"
#include "trace/trace.h"
#include "util/strings.h"

namespace mframe::explore {

SweepSpec SweepSpec::defaults() {
  SweepSpec s;
  // steps stays empty: filled from the critical path per design.
  s.weights = {
      {1.0, 1.0, 1.0, 1.0},  // the paper's balanced default
      {1.0, 4.0, 1.0, 1.0},  // ALU-lean: merge into multifunction units
      {1.0, 1.0, 4.0, 4.0},  // interconnect/storage-lean
  };
  s.priorityRules = {sched::PriorityRule::Mobility,
                     sched::PriorityRule::MobilityNoReverse};
  s.interconnects = {core::InterconnectStyle::Mux,
                     core::InterconnectStyle::Bus};
  s.styles = {rtl::DesignStyle::Unrestricted, rtl::DesignStyle::NoSelfLoop};
  return s;
}

std::vector<Candidate> enumerateConfigs(const SweepSpec& spec,
                                        int criticalSteps) {
  SweepSpec s = spec;
  if (s.steps.empty()) {
    const int cp = std::max(1, criticalSteps);
    for (int k = 0; k < 4; ++k) s.steps.push_back(cp + k);
  }
  if (s.weights.empty()) s.weights.push_back({});
  if (s.priorityRules.empty())
    s.priorityRules.push_back(sched::PriorityRule::Mobility);
  if (s.interconnects.empty())
    s.interconnects.push_back(core::InterconnectStyle::Mux);
  if (s.styles.empty()) s.styles.push_back(rtl::DesignStyle::Unrestricted);

  std::vector<Candidate> out;
  out.reserve(s.steps.size() * s.weights.size() * s.priorityRules.size() *
              s.interconnects.size() * s.styles.size());
  for (int steps : s.steps)
    for (const core::MfsaWeights& w : s.weights)
      for (sched::PriorityRule pr : s.priorityRules)
        for (core::InterconnectStyle ic : s.interconnects)
          for (rtl::DesignStyle st : s.styles) {
            Candidate c;
            c.index = static_cast<int>(out.size());
            c.steps = steps;
            c.weights = w;
            c.priorityRule = pr;
            c.interconnect = ic;
            c.style = st;
            out.push_back(c);
          }
  return out;
}

ExploreResult explore(const dfg::Dfg& g, const celllib::CellLibrary& lib,
                      const SweepSpec& spec, int jobs) {
  const trace::Span span("explore");
  ExploreResult r;
  r.design = g.name();

  sched::Constraints probe = spec.base;
  probe.timeSteps = 0;
  std::string tfError;
  const auto tf = sched::computeTimeFrames(g, probe, &tfError);
  r.criticalSteps = tf ? tf->criticalSteps() : 0;

  r.candidates = enumerateConfigs(spec, r.criticalSteps);

  trace::bump(trace::Counter::ExploreConfigs, r.candidates.size());

  parallelFor(static_cast<int>(r.candidates.size()), std::max(1, jobs),
              [&](int i) {
                Candidate& cand = r.candidates[static_cast<std::size_t>(i)];
                core::MfsaOptions opt;
                opt.constraints = spec.base;
                opt.constraints.timeSteps = cand.steps;
                opt.weights = cand.weights;
                opt.priorityRule = cand.priorityRule;
                opt.interconnect = cand.interconnect;
                opt.style = cand.style;
                opt.traceLiapunov = false;
                // Cache-aware (no-op without an installed SynthCache): a
                // re-run sweep replays every candidate from the cache.
                const core::MfsaResult res = cache::cachedRunMfsa(g, lib, opt);
                cand.feasible = res.feasible;
                cand.error = res.error;
                cand.restarts = res.restarts;
                if (res.feasible) cand.cost = res.cost;
              });

  // Merge: per step budget keep the cheapest design (lowest index on a cost
  // tie), then keep only the Pareto-minimal points — total area must
  // strictly improve as the step budget grows.
  std::vector<int> bestPerStep;
  for (const Candidate& c : r.candidates) {
    if (!c.feasible) continue;
    ++r.feasibleCount;
    trace::bump(trace::Counter::ExploreFeasible);
    const auto at = std::find_if(
        bestPerStep.begin(), bestPerStep.end(), [&](int idx) {
          return r.candidates[static_cast<std::size_t>(idx)].steps == c.steps;
        });
    if (at == bestPerStep.end()) {
      bestPerStep.push_back(c.index);
    } else if (c.cost.total <
               r.candidates[static_cast<std::size_t>(*at)].cost.total) {
      *at = c.index;
    }
  }
  std::sort(bestPerStep.begin(), bestPerStep.end(), [&](int a, int b) {
    return r.candidates[static_cast<std::size_t>(a)].steps <
           r.candidates[static_cast<std::size_t>(b)].steps;
  });
  double best = 0.0;
  bool first = true;
  for (int idx : bestPerStep) {
    const double total = r.candidates[static_cast<std::size_t>(idx)].cost.total;
    if (first || total < best) {
      r.frontier.push_back(idx);
      best = total;
      first = false;
    }
  }
  return r;
}

std::string_view priorityRuleName(sched::PriorityRule r) {
  switch (r) {
    case sched::PriorityRule::Mobility: return "mobility";
    case sched::PriorityRule::MobilityNoReverse: return "mobility-no-reverse";
    case sched::PriorityRule::InsertionOrder: return "insertion-order";
  }
  return "?";
}

std::string_view interconnectName(core::InterconnectStyle s) {
  return s == core::InterconnectStyle::Mux ? "mux" : "bus";
}

std::string_view designStyleName(rtl::DesignStyle s) {
  return s == rtl::DesignStyle::Unrestricted ? "unrestricted" : "no-self-loop";
}

namespace {

std::string jsonNumber(double v) { return util::format("%.10g", v); }

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == '"' || ch == '\\') {
      out.push_back('\\');
      out.push_back(ch);
    } else if (ch == '\n') {
      out += "\\n";
    } else {
      out.push_back(ch);
    }
  }
  return out;
}

void appendConfig(std::string& out, const Candidate& c) {
  out += util::format(
      "{\"index\": %d, \"steps\": %d, "
      "\"weights\": [%s, %s, %s, %s], \"priority\": \"%s\", "
      "\"interconnect\": \"%s\", \"style\": \"%s\"}",
      c.index, c.steps, jsonNumber(c.weights.time).c_str(),
      jsonNumber(c.weights.alu).c_str(), jsonNumber(c.weights.mux).c_str(),
      jsonNumber(c.weights.reg).c_str(),
      std::string(priorityRuleName(c.priorityRule)).c_str(),
      std::string(interconnectName(c.interconnect)).c_str(),
      std::string(designStyleName(c.style)).c_str());
}

}  // namespace

std::string toJson(const ExploreResult& r) {
  std::string out;
  out += "{\n";
  out += util::format("  \"design\": \"%s\",\n", jsonEscape(r.design).c_str());
  out += util::format("  \"criticalSteps\": %d,\n", r.criticalSteps);
  out += util::format("  \"configs\": %d,\n",
                      static_cast<int>(r.candidates.size()));
  out += util::format("  \"feasible\": %d,\n", r.feasibleCount);
  out += "  \"frontier\": [\n";
  for (std::size_t i = 0; i < r.frontier.size(); ++i) {
    const Candidate& c =
        r.candidates[static_cast<std::size_t>(r.frontier[i])];
    out += util::format(
        "    {\"steps\": %d, \"total\": %s, \"alu\": %s, \"reg\": %s, "
        "\"mux\": %s, \"aluCount\": %d, \"regCount\": %d, \"config\": ",
        c.steps, jsonNumber(c.cost.total).c_str(),
        jsonNumber(c.cost.aluArea).c_str(), jsonNumber(c.cost.regArea).c_str(),
        jsonNumber(c.cost.muxArea).c_str(), c.cost.aluCount, c.cost.regCount);
    appendConfig(out, c);
    out += i + 1 < r.frontier.size() ? "},\n" : "}\n";
  }
  out += "  ],\n";
  out += "  \"candidates\": [\n";
  for (std::size_t i = 0; i < r.candidates.size(); ++i) {
    const Candidate& c = r.candidates[i];
    if (c.feasible) {
      out += util::format(
          "    {\"index\": %d, \"steps\": %d, \"feasible\": true, "
          "\"total\": %s, \"restarts\": %d}",
          c.index, c.steps, jsonNumber(c.cost.total).c_str(), c.restarts);
    } else {
      out += util::format(
          "    {\"index\": %d, \"steps\": %d, \"feasible\": false, "
          "\"error\": \"%s\"}",
          c.index, c.steps, jsonEscape(c.error).c_str());
    }
    out += i + 1 < r.candidates.size() ? ",\n" : "\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

}  // namespace mframe::explore
