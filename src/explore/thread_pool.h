// Minimal work-stealing-free parallel loop for the design-space explorer.
// Workers pull indices from a shared atomic counter, so the *assignment* of
// work to threads is racy but the mapping of results to slots is not: the
// caller indexes its output by `i`, which makes any computation whose result
// depends only on `i` deterministic regardless of the thread count.
#pragma once

#include <functional>

namespace mframe::explore {

/// Run fn(0), fn(1), ..., fn(n-1) across up to `jobs` worker threads and
/// return when all calls finished. jobs <= 1 degenerates to a plain serial
/// loop on the calling thread. If any call throws, a shared stop flag keeps
/// workers from claiming further indices (items already in flight finish)
/// and the first exception captured is rethrown after all workers drained.
void parallelFor(int n, int jobs, const std::function<void(int)>& fn);

}  // namespace mframe::explore
