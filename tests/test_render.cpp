// Direct tests for the two renderers that back the figure reproductions:
// util::GridRender (Figures 1-2) and dfg::toDot.
#include <gtest/gtest.h>

#include "dfg/dot.h"
#include "helpers.h"
#include "util/grid_render.h"

namespace mframe {
namespace {

TEST(GridRender, LabelsAndMarksAppear) {
  util::GridRender g(3, 2);
  g.setTitle("demo");
  g.setLabel(2, 1, "Oip");
  g.addMark(2, 1, 'P');
  g.addMark(2, 1, 'M');
  g.addMark(2, 1, 'P');  // duplicates collapse
  const std::string out = g.render();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("Oip[PM]"), std::string::npos);
}

TEST(GridRender, AxesAndLegendPrinted) {
  util::GridRender g(2, 2);
  g.setAxisNames("FU", "step");
  g.addLegend("legend line");
  const std::string out = g.render();
  EXPECT_NE(out.find("step (rows) vs FU (cols)"), std::string::npos);
  EXPECT_NE(out.find("legend line"), std::string::npos);
}

TEST(GridRender, EveryRowRendered) {
  util::GridRender g(4, 3);
  const std::string out = g.render();
  for (const char* row : {"   1 |", "   2 |", "   3 |", "   4 |"})
    EXPECT_NE(out.find(row), std::string::npos) << row;
}

TEST(DfgDot, NodesEdgesAndShapes) {
  const dfg::Dfg g = test::smallDiamond();
  const std::string dot = dfg::toDot(g);
  EXPECT_NE(dot.find("digraph \"diamond\""), std::string::npos);
  EXPECT_NE(dot.find("shape=invtriangle"), std::string::npos);  // inputs
  // One edge per operand of every node.
  std::size_t edges = 0;
  for (std::size_t p = dot.find(" -> "); p != std::string::npos;
       p = dot.find(" -> ", p + 1))
    ++edges;
  std::size_t expected = 0;
  for (const dfg::Node& n : g.nodes()) expected += n.inputs.size();
  EXPECT_EQ(edges, expected);
}

TEST(DfgDot, ScheduleAnnotationAddsRanks) {
  const dfg::Dfg g = test::smallDiamond();
  std::map<dfg::NodeId, int> steps{{g.findByName("s"), 1},
                                   {g.findByName("t"), 1},
                                   {g.findByName("y"), 2}};
  const std::string dot = dfg::toDot(g, steps);
  EXPECT_NE(dot.find("@1"), std::string::npos);
  EXPECT_NE(dot.find("@2"), std::string::npos);
  // Two distinct steps -> two rank groups.
  std::size_t ranks = 0;
  for (std::size_t p = dot.find("rank=same"); p != std::string::npos;
       p = dot.find("rank=same", p + 1))
    ++ranks;
  EXPECT_EQ(ranks, 2u);
}

}  // namespace
}  // namespace mframe
