#include "core/mfsa.h"

#include <gtest/gtest.h>

#include "celllib/ncr_like.h"
#include "dfg/builder.h"
#include "helpers.h"
#include "rtl/bus.h"
#include "rtl/controller.h"
#include "rtl/verify.h"
#include "sched/verify.h"
#include "workloads/benchmarks.h"

namespace mframe::core {
namespace {

MfsaResult run(const dfg::Dfg& g, int cs,
               rtl::DesignStyle style = rtl::DesignStyle::Unrestricted,
               MfsaWeights w = {}) {
  const celllib::CellLibrary lib = celllib::ncrLike();
  MfsaOptions o;
  o.constraints.timeSteps = cs;
  o.style = style;
  o.weights = w;
  return runMfsa(g, lib, o);
}

TEST(Mfsa, DiamondProducesVerifiedDatapath) {
  const auto r = run(test::smallDiamond(), 3);
  ASSERT_TRUE(r.feasible) << r.error;
  sched::Constraints c;
  c.timeSteps = 3;
  EXPECT_TRUE(rtl::verifyDatapath(r.datapath, c, rtl::DesignStyle::Unrestricted)
                  .empty());
  EXPECT_GT(r.cost.total, 0.0);
  EXPECT_EQ(r.cost.total, r.cost.aluArea + r.cost.regArea + r.cost.muxArea);
}

TEST(Mfsa, WholeSuiteBothStylesVerifyClean) {
  const celllib::CellLibrary lib = celllib::ncrLike();
  for (const auto& bc : workloads::paperSuite()) {
    for (auto style :
         {rtl::DesignStyle::Unrestricted, rtl::DesignStyle::NoSelfLoop}) {
      MfsaOptions o;
      o.constraints = bc.constraints;
      o.constraints.timeSteps = bc.timeSweep.front();
      o.style = style;
      const auto r = runMfsa(bc.graph, lib, o);
      ASSERT_TRUE(r.feasible) << bc.id << ": " << r.error;
      EXPECT_TRUE(rtl::verifyDatapath(r.datapath, o.constraints, style).empty())
          << bc.id;
      // The underlying schedule also satisfies precedence/timing.
      auto v = sched::verifySchedule(r.datapath.schedule, o.constraints);
      // Column semantics differ (global ALU index), so only filter
      // precedence/chaining complaints here.
      for (const auto& msg : v)
        EXPECT_EQ(msg.find("precedence"), std::string::npos) << bc.id << " " << msg;
    }
  }
}

TEST(Mfsa, BudgetKeepsAlusNearBalancedMinimum) {
  // diffeq at T=4: six muls -> ceil(6/4) = 2 mult-capable ALUs is the
  // balanced floor; the greedy may add a little, but must stay far from the
  // 6-ALU explosion a naive earliest-step allocator would produce.
  const auto r = run(workloads::diffeq(), 4);
  ASSERT_TRUE(r.feasible) << r.error;
  int mulCapable = 0;
  for (const auto& a : r.datapath.alus)
    if (r.datapath.lib->module(a.module).supports(dfg::FuType::Multiplier))
      ++mulCapable;
  EXPECT_GE(mulCapable, 2);
  EXPECT_LE(mulCapable, 3);
}

TEST(Mfsa, MultifunctionMergingHappens) {
  // With generous time, cheap ops should merge into multifunction ALUs
  // instead of one single-function unit each.
  const auto r = run(test::smallDiamond(), 4);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_LT(r.datapath.alus.size(), r.datapath.graph->operations().size());
}

TEST(Mfsa, Style2ForbidsSelfLoops) {
  const auto r = run(workloads::diffeq(), 4, rtl::DesignStyle::NoSelfLoop);
  ASSERT_TRUE(r.feasible) << r.error;
  sched::Constraints c;
  c.timeSteps = 4;
  EXPECT_TRUE(
      rtl::verifyDatapath(r.datapath, c, rtl::DesignStyle::NoSelfLoop).empty());
  // Manually confirm: no ALU holds an op together with one of its preds.
  const dfg::Dfg& g = *r.datapath.graph;
  for (const auto& a : r.datapath.alus)
    for (dfg::NodeId op : a.ops)
      for (dfg::NodeId p : g.opPreds(op))
        EXPECT_EQ(std::count(a.ops.begin(), a.ops.end(), p), 0);
}

TEST(Mfsa, Style2CostsAtLeastStyle1Usually) {
  // The paper reports a 2-11% overhead for style 2; on the suite's first
  // sweep point, style 2 must never be dramatically *cheaper*.
  const celllib::CellLibrary lib = celllib::ncrLike();
  for (const auto& bc : workloads::paperSuite()) {
    MfsaOptions o;
    o.constraints = bc.constraints;
    o.constraints.timeSteps = bc.timeSweep.front();
    const auto r1 = runMfsa(bc.graph, lib, o);
    o.style = rtl::DesignStyle::NoSelfLoop;
    const auto r2 = runMfsa(bc.graph, lib, o);
    ASSERT_TRUE(r1.feasible && r2.feasible) << bc.id;
    EXPECT_GE(r2.cost.total, 0.95 * r1.cost.total) << bc.id;
  }
}

TEST(Mfsa, LiapunovTraceDecreasesMonotonically) {
  const auto r = run(workloads::diffeq(), 4);
  ASSERT_TRUE(r.feasible);
  ASSERT_GE(r.liapunovTrace.size(), 2u);
  for (std::size_t i = 1; i < r.liapunovTrace.size(); ++i)
    EXPECT_LE(r.liapunovTrace[i], r.liapunovTrace[i - 1]);
  EXPECT_LT(r.liapunovTrace.back(), r.liapunovTrace.front());
}

TEST(Mfsa, TermsRecordedForEveryOperation) {
  const auto r = run(workloads::tseng(), 4);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.termsOf.size(), r.datapath.graph->operations().size());
  for (const auto& [op, t] : r.termsOf) {
    EXPECT_GT(t.fTime, 0.0);
    EXPECT_GE(t.fAlu, 0.0);
    EXPECT_GE(t.fReg, 0.0);
  }
}

TEST(Mfsa, TimeTermDominance) {
  // Section 4.1: C guarantees an op never trades a later step for cheaper
  // hardware. Verify on the recorded terms: fTime increments exceed any
  // hardware contribution.
  const celllib::CellLibrary lib = celllib::ncrLike();
  const double C = mfsaTimeConstant(lib, MfsaWeights{});
  const auto r = run(workloads::diffeq(), 4);
  ASSERT_TRUE(r.feasible);
  for (const auto& [op, t] : r.termsOf)
    EXPECT_LT(t.fAlu + std::abs(t.fMux) + t.fReg, C);
}

TEST(Mfsa, RejectsMissingTimeConstraint) {
  const celllib::CellLibrary lib = celllib::ncrLike();
  MfsaOptions o;
  const auto r = runMfsa(test::smallDiamond(), lib, o);
  EXPECT_FALSE(r.feasible);
}

TEST(Mfsa, RejectsUncoveredLibrary) {
  celllib::CellLibrary tiny;  // knows nothing
  MfsaOptions o;
  o.constraints.timeSteps = 3;
  const auto r = runMfsa(test::smallDiamond(), tiny, o);
  EXPECT_FALSE(r.feasible);
  EXPECT_NE(r.error.find("no module"), std::string::npos);
}

TEST(Mfsa, RegWeightReducesRegisterCount) {
  // Pushing w_REG up should never yield more registers than the default.
  const auto base = run(workloads::fir8(), 9);
  const auto heavy = run(workloads::fir8(), 9, rtl::DesignStyle::Unrestricted,
                         MfsaWeights{.time = 1, .alu = 1, .mux = 1, .reg = 50});
  ASSERT_TRUE(base.feasible && heavy.feasible);
  EXPECT_LE(heavy.cost.regCount, base.cost.regCount + 1);
}

TEST(Mfsa, SingleCycleConstraintForcesMaxParallelHardware) {
  // Everything in one step: every op needs its own ALU.
  const auto r = run(test::addParallel(4), 1);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_EQ(r.datapath.alus.size(), 4u);
}

TEST(Mfsa, BusInterconnectModeProducesAPlan) {
  const celllib::CellLibrary lib = celllib::ncrLike();
  core::MfsaOptions o;
  o.constraints.timeSteps = 4;
  o.interconnect = InterconnectStyle::Bus;
  const auto r = runMfsa(workloads::diffeq(), lib, o);
  ASSERT_TRUE(r.feasible) << r.error;
  ASSERT_TRUE(r.busPlan.has_value());
  EXPECT_GT(r.busPlan->busCount, 0);
  // The reported interconnect area is the bus plan's, not the muxes'.
  EXPECT_DOUBLE_EQ(r.cost.muxArea, r.busPlan->totalCost);
  EXPECT_DOUBLE_EQ(r.cost.total,
                   r.cost.aluArea + r.cost.regArea + r.cost.muxArea);
  // The datapath itself still verifies (the binding is architecture-neutral).
  sched::Constraints c;
  c.timeSteps = 4;
  EXPECT_TRUE(rtl::verifyDatapath(r.datapath, c, rtl::DesignStyle::Unrestricted)
                  .empty());
}

TEST(Mfsa, BusModeTraceStillMonotone) {
  const celllib::CellLibrary lib = celllib::ncrLike();
  core::MfsaOptions o;
  o.constraints.timeSteps = 17;
  o.interconnect = InterconnectStyle::Bus;
  const auto r = runMfsa(workloads::ewfLike(), lib, o);
  ASSERT_TRUE(r.feasible) << r.error;
  for (std::size_t i = 1; i < r.liapunovTrace.size(); ++i)
    EXPECT_LE(r.liapunovTrace[i], r.liapunovTrace[i - 1]);
}

TEST(Mfsa, BusModeSpreadsTransfers) {
  // With bus wires priced high, the allocator should avoid piling operand
  // transfers into one step: its peak is no worse than mux-mode's.
  const celllib::CellLibrary lib = celllib::ncrLike();
  auto peakOf = [&](InterconnectStyle style, double wire) {
    core::MfsaOptions o;
    o.constraints.timeSteps = 9;
    o.interconnect = style;
    o.busModel.busWireUm2 = wire;
    const auto r = runMfsa(workloads::fir8(), lib, o);
    EXPECT_TRUE(r.feasible);
    const auto fsm = rtl::buildController(r.datapath);
    return rtl::planBuses(r.datapath, fsm, o.busModel).busCount;
  };
  EXPECT_LE(peakOf(InterconnectStyle::Bus, 5000.0),
            peakOf(InterconnectStyle::Mux, 5000.0));
}

TEST(Mfsa, ResourceConstrainedMinimizesSteps) {
  // One multiplier-capable ALU: six multiplications must serialize, so the
  // smallest feasible schedule is >= 6 steps — and the search finds it.
  const celllib::CellLibrary lib = celllib::ncrLike();
  MfsaOptions o;
  o.constraints.fuLimit[dfg::FuType::Multiplier] = 1;
  const auto r = runMfsaResourceConstrained(workloads::diffeq(), lib, o);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_GE(r.steps, 6);
  EXPECT_LE(r.steps, 9);
  int mulCapable = 0;
  for (const auto& a : r.datapath.alus)
    if (r.datapath.lib->module(a.module).supports(dfg::FuType::Multiplier))
      ++mulCapable;
  EXPECT_EQ(mulCapable, 1);
  sched::Constraints c;
  c.timeSteps = r.steps;
  EXPECT_TRUE(rtl::verifyDatapath(r.datapath, c, rtl::DesignStyle::Unrestricted)
                  .empty());
}

TEST(Mfsa, ResourceConstrainedMatchesTimeModeWhenBudgetAmple) {
  const celllib::CellLibrary lib = celllib::ncrLike();
  MfsaOptions o;
  o.constraints.fuLimit[dfg::FuType::Multiplier] = 3;
  const auto r = runMfsaResourceConstrained(workloads::diffeq(), lib, o);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_EQ(r.steps, 4);  // the critical path, as in time mode
}

TEST(Mfsa, ResourceConstrainedRespectsSearchCap) {
  const celllib::CellLibrary lib = celllib::ncrLike();
  MfsaOptions o;
  o.constraints.fuLimit[dfg::FuType::Multiplier] = 1;
  // Cap below the first feasible length: the search must give up cleanly.
  const auto r = runMfsaResourceConstrained(workloads::diffeq(), lib, o, 5);
  EXPECT_FALSE(r.feasible);
}

TEST(Mfsa, TieBreakPrefersReusingAnAluOverAllocatingFresh) {
  // a1 (+) followed by a dependent s1 (-), two steps, pure time weighting:
  // with w_ALU = 0 the upgrade of the existing ALU to an add/sub module and
  // a fresh subtractor produce the same Liapunov value. The tie must go to
  // reuse — one multifunction ALU, not two units.
  dfg::Builder b("tie");
  const auto x = b.input("x");
  const auto y = b.input("y");
  const auto a1 = b.add(x, y, "a1");
  const auto s1 = b.sub(a1, y, "s1");
  b.output(s1, "o");
  const dfg::Dfg g = std::move(b).build();
  const auto r = run(g, 2, rtl::DesignStyle::Unrestricted,
                     MfsaWeights{.time = 1, .alu = 0, .mux = 0, .reg = 0});
  ASSERT_TRUE(r.feasible) << r.error;
  ASSERT_EQ(r.datapath.alus.size(), 1u);
  const auto& mod = r.datapath.lib->module(r.datapath.alus[0].module);
  EXPECT_TRUE(mod.supports(dfg::FuType::Adder));
  EXPECT_TRUE(mod.supports(dfg::FuType::Subtractor));
}

TEST(Mfsa, IncrementalMuxCachingIsExactAcrossTheSuite) {
  // The memoized arrangeInputsDelta path must not change a single decision:
  // run every benchmark design with and without it and require identical
  // schedules, bindings and costs.
  const celllib::CellLibrary lib = celllib::ncrLike();
  struct Case {
    std::string id;
    dfg::Dfg g;
    sched::Constraints constraints;
  };
  std::vector<Case> cases;
  for (const auto& bc : workloads::paperSuite()) {
    sched::Constraints c = bc.constraints;
    c.timeSteps = bc.timeSweep.front();
    cases.push_back({bc.id, bc.graph, c});
  }
  sched::Constraints cf;
  cf.timeSteps = 8;
  cases.push_back({"fdct", workloads::fdctLike(), cf});
  sched::Constraints ci;
  ci.timeSteps = 13;
  cases.push_back({"iir", workloads::iirBiquads(), ci});

  for (const auto& tc : cases) {
    MfsaOptions o;
    o.constraints = tc.constraints;
    EXPECT_TRUE(o.incrementalMux);  // the default
    const auto fast = runMfsa(tc.g, lib, o);
    o.incrementalMux = false;
    const auto slow = runMfsa(tc.g, lib, o);
    ASSERT_EQ(fast.feasible, slow.feasible) << tc.id;
    if (!fast.feasible) continue;
    EXPECT_EQ(fast.cost.total, slow.cost.total) << tc.id;
    EXPECT_EQ(fast.cost.muxArea, slow.cost.muxArea) << tc.id;
    ASSERT_EQ(fast.datapath.alus.size(), slow.datapath.alus.size()) << tc.id;
    for (std::size_t i = 0; i < fast.datapath.alus.size(); ++i) {
      EXPECT_EQ(fast.datapath.alus[i].module, slow.datapath.alus[i].module)
          << tc.id << " alu " << i;
      EXPECT_EQ(fast.datapath.alus[i].ops, slow.datapath.alus[i].ops)
          << tc.id << " alu " << i;
    }
    EXPECT_EQ(fast.datapath.schedule.toString(),
              slow.datapath.schedule.toString())
        << tc.id;
  }
}

TEST(Mfsa, MutuallyExclusiveOpsShareAlu) {
  const auto r = run(test::branchy(), 2);
  ASSERT_TRUE(r.feasible) << r.error;
  // t1/e1 are exclusive adds; they can live in one ALU at one step.
  int addCapable = 0;
  for (const auto& a : r.datapath.alus)
    if (r.datapath.lib->module(a.module).supports(dfg::FuType::Adder))
      ++addCapable;
  EXPECT_EQ(addCapable, 1);
}

}  // namespace
}  // namespace mframe::core
