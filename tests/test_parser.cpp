#include "dfg/parser.h"

#include <gtest/gtest.h>

#include "dfg/builder.h"
#include "helpers.h"

namespace mframe::dfg {
namespace {

constexpr const char* kSample = R"(# a small example
dfg sample
input a
input b
const 3 k
op add s a b
op mul p s k cycles=2 delay=150
output y p
)";

TEST(Parser, ParsesBasicGraph) {
  const Dfg g = parse(kSample);
  EXPECT_EQ(g.name(), "sample");
  EXPECT_EQ(g.size(), 5u);
  EXPECT_EQ(g.operations().size(), 2u);
  const NodeId p = g.findByName("p");
  ASSERT_NE(p, kNoNode);
  EXPECT_EQ(g.node(p).cycles, 2);
  EXPECT_DOUBLE_EQ(g.node(p).delayNs, 150.0);
  ASSERT_EQ(g.outputs().size(), 1u);
  EXPECT_EQ(g.outputs()[0].second, "y");
  EXPECT_EQ(g.outputs()[0].first, p);
}

TEST(Parser, ParsesConstValue) {
  const Dfg g = parse(kSample);
  const NodeId k = g.findByName("k");
  EXPECT_EQ(g.node(k).kind, OpKind::Const);
  EXPECT_EQ(g.node(k).constValue, 3);
}

TEST(Parser, AcceptsSymbolKinds) {
  const Dfg g = parse("dfg s\ninput a\ninput b\nop * m a b\n");
  EXPECT_EQ(g.node(g.findByName("m")).kind, OpKind::Mul);
}

TEST(Parser, ParsesBranchAttribute) {
  const Dfg g = parse(
      "dfg s\ninput a\ninput b\n"
      "op add t a b branch=c1.t\n"
      "op add e a b branch=c1.e\n");
  EXPECT_TRUE(g.mutuallyExclusive(g.findByName("t"), g.findByName("e")));
}

TEST(Parser, SerializeRoundTrips) {
  const Dfg g1 = test::smallDiamond();
  const Dfg g2 = parse(serialize(g1));
  EXPECT_EQ(g2.name(), g1.name());
  ASSERT_EQ(g2.size(), g1.size());
  for (NodeId i = 0; i < g1.size(); ++i) {
    EXPECT_EQ(g2.node(i).kind, g1.node(i).kind);
    EXPECT_EQ(g2.node(i).name, g1.node(i).name);
    EXPECT_EQ(g2.node(i).inputs, g1.node(i).inputs);
  }
  EXPECT_EQ(g2.outputs().size(), g1.outputs().size());
}

TEST(Parser, RoundTripsAttributes) {
  Builder b("attrs");
  const auto x = b.input("x");
  const auto y = b.input("y");
  b.pushBranch("c9", "z");
  b.op(OpKind::Mul, {x, y}, "m", 2, 123.0);
  b.popBranch();
  const Dfg g = parse(serialize(std::move(b).build()));
  const Node& m = g.node(g.findByName("m"));
  EXPECT_EQ(m.cycles, 2);
  EXPECT_DOUBLE_EQ(m.delayNs, 123.0);
  EXPECT_EQ(m.branchPath, "c9.z");
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse("dfg s\ninput a\nop add x a missing\n");
    FAIL() << "expected DfgError";
  } catch (const DfgError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("missing"), std::string::npos);
  }
}

TEST(Parser, RejectsUnknownKind) {
  EXPECT_THROW(parse("dfg s\ninput a\nop frobnicate x a\n"), DfgError);
}

TEST(Parser, RejectsUnknownStatement) {
  EXPECT_THROW(parse("dfg s\nwibble\n"), DfgError);
}

TEST(Parser, RejectsMissingHeader) {
  EXPECT_THROW(parse("input a\n"), DfgError);
}

TEST(Parser, RejectsBadAttribute) {
  EXPECT_THROW(parse("dfg s\ninput a\ninput b\nop add x a b zap=1\n"), DfgError);
  EXPECT_THROW(parse("dfg s\ninput a\ninput b\nop add x a b cycles=0\n"), DfgError);
}

TEST(Parser, RejectsOutputOfUnknownSignal) {
  EXPECT_THROW(parse("dfg s\noutput y nothere\n"), DfgError);
}

TEST(Parser, CommentsAndBlankLinesIgnored) {
  const Dfg g = parse("\n# hi\ndfg s\n\ninput a # trailing\n");
  EXPECT_EQ(g.size(), 1u);
}

TEST(Parser, RejectsMalformedNumericAttributes) {
  // delay=abc used to strtod to 0.0 with no end-pointer check; a silently
  // zeroed override rewrites the scheduler's chaining decisions, so every
  // downstream report described a design the author never wrote.
  EXPECT_THROW(parse("dfg s\ninput a\ninput b\nop add x a b delay=abc\n"),
               DfgError);
  EXPECT_THROW(parse("dfg s\ninput a\ninput b\nop add x a b delay=30x\n"),
               DfgError);
  EXPECT_THROW(parse("dfg s\ninput a\ninput b\nop add x a b delay=-5\n"),
               DfgError);
  EXPECT_THROW(parse("dfg s\ninput a\ninput b\nop add x a b cycles=two\n"),
               DfgError);
  EXPECT_THROW(parse("dfg s\ninput a\ninput b\nop add x a b width=abc\n"),
               DfgError);
  EXPECT_THROW(parse("dfg s\ninput a width=8bit\n"), DfgError);
  EXPECT_THROW(parse("dfg s\nconst abc k\n"), DfgError);
}

TEST(Parser, LenientRecordsMalformedNumericsAndKeepsDefaults) {
  std::vector<ParseIssue> issues;
  const Dfg g = parseLenient(
      "dfg s\n"
      "input a\n"
      "input b\n"
      "const 4x k\n"
      "op add x a b delay=abc width=wide cycles=two\n",
      issues);
  ASSERT_EQ(issues.size(), 4u);
  EXPECT_NE(issues[0].message.find("bad const value '4x'"), std::string::npos);
  EXPECT_EQ(issues[0].line, 4);
  EXPECT_NE(issues[1].message.find("bad delay value 'abc'"), std::string::npos);
  EXPECT_NE(issues[2].message.find("bad width value 'wide'"), std::string::npos);
  EXPECT_NE(issues[3].message.find("bad cycles value 'two'"), std::string::npos);
  EXPECT_EQ(issues[3].line, 5);

  // The malformed attributes stay at their defaults — in particular delayNs
  // stays negative ("use the library delay") instead of becoming a zero
  // override that would let the scheduler chain freely.
  const NodeId x = g.findByName("x");
  ASSERT_NE(x, kNoNode);
  EXPECT_EQ(g.node(x).cycles, 1);
  EXPECT_LT(g.node(x).delayNs, 0.0);
  EXPECT_EQ(g.node(x).width, 0);
  EXPECT_EQ(g.node(g.findByName("k")).constValue, 0);
}

TEST(Parser, LenientKeepsWellFormedOutOfRangeValuesForLint) {
  // Well-formed but invalid values (cycles=0) are a lint rule's business,
  // not a parse problem: lenient mode stores them as written so the
  // diagnostic carries its proper rule id. An explicit delay=0 is a valid
  // override, distinct from the unset default.
  std::vector<ParseIssue> issues;
  const Dfg g = parseLenient(
      "dfg s\ninput a\ninput b\nop add x a b cycles=0 delay=0\n", issues);
  EXPECT_TRUE(issues.empty());
  const NodeId x = g.findByName("x");
  EXPECT_EQ(g.node(x).cycles, 0);
  EXPECT_DOUBLE_EQ(g.node(x).delayNs, 0.0);
}

}  // namespace
}  // namespace mframe::dfg
