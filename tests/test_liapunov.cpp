#include "core/liapunov.h"

#include <gtest/gtest.h>

#include "celllib/ncr_like.h"

namespace mframe::core {
namespace {

TEST(MfsLiapunov, TimeModeStepDominatesColumn) {
  // Section 3.1: position (FU_max, t) must be cheaper than (FU_1, t+1).
  const int n = 6;
  const MfsLiapunov v(MfsLiapunov::Mode::TimeConstrained, n, 20);
  for (int t = 1; t < 20; ++t)
    EXPECT_LT(v.value(n, t), v.value(1, t + 1));
}

TEST(MfsLiapunov, TimeModePrefersLowerColumnWithinAStep) {
  const MfsLiapunov v(MfsLiapunov::Mode::TimeConstrained, 6, 20);
  EXPECT_LT(v.value(1, 3), v.value(2, 3));
}

TEST(MfsLiapunov, ResourceModeColumnDominatesStep) {
  // Section 3.1: an existing FU in step t+1 beats a new FU in step t.
  const int cs = 12;
  const MfsLiapunov v(MfsLiapunov::Mode::ResourceConstrained, 6, cs);
  for (int col = 1; col < 6; ++col)
    EXPECT_LT(v.value(col, cs), v.value(col + 1, 1));
}

TEST(MfsLiapunov, ValuesArePositiveAndWorstIsCorner) {
  const MfsLiapunov v(MfsLiapunov::Mode::TimeConstrained, 4, 8);
  EXPECT_GT(v.value(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(v.worstValue(4, 8), v.value(4, 8));
  for (int c = 1; c <= 4; ++c)
    for (int s = 1; s <= 8; ++s) EXPECT_LE(v.value(c, s), v.worstValue(4, 8));
}

TEST(MfsaWeights, DefaultIsUnweighted) {
  const MfsaTerms t{.fTime = 1, .fAlu = 2, .fMux = 3, .fReg = 4};
  EXPECT_DOUBLE_EQ(t.weighted(MfsaWeights{}), 10.0);
}

TEST(MfsaWeights, WeightsScaleTerms) {
  const MfsaTerms t{.fTime = 1, .fAlu = 2, .fMux = 3, .fReg = 4};
  const MfsaWeights w{.time = 0.0, .alu = 2.0, .mux = 1.0, .reg = 0.5};
  EXPECT_DOUBLE_EQ(t.weighted(w), 0.0 + 4.0 + 3.0 + 2.0);
}

TEST(MfsaTimeConstant, DominatesHardwareTerms) {
  // Section 4.1: C > f^ALU_max + f^MUX_max + f^REG_max, so one step later
  // can never be cheaper than any hardware configuration.
  const celllib::CellLibrary lib = celllib::ncrLike();
  const MfsaWeights w{};
  const double C = mfsaTimeConstant(lib, w);
  const double worstHardware =
      lib.maxModuleArea() + lib.maxMuxIncrement() + 2.0 * lib.regCost();
  EXPECT_GT(C, worstHardware);
  // f at (step t+1, zero hardware) > f at (step t, worst hardware):
  EXPECT_GT(C * 2.0, C * 1.0 + worstHardware);
}

TEST(MfsaTimeConstant, AccountsForWeights) {
  const celllib::CellLibrary lib = celllib::ncrLike();
  const MfsaWeights heavyHw{.time = 0.5, .alu = 2.0, .mux = 2.0, .reg = 2.0};
  const double C = mfsaTimeConstant(lib, heavyHw);
  const double worstHardware = 2.0 * lib.maxModuleArea() +
                               2.0 * lib.maxMuxIncrement() +
                               2.0 * 2.0 * lib.regCost();
  EXPECT_GT(0.5 * C, worstHardware);
}

}  // namespace
}  // namespace mframe::core
