// Tests for the RTL structure DOT export and the Verilog testbench
// generator.
#include <gtest/gtest.h>

#include "celllib/ncr_like.h"
#include "core/mfsa.h"
#include "helpers.h"
#include "rtl/rtl_dot.h"
#include "rtl/testbench.h"
#include "sim/dfg_eval.h"
#include "workloads/benchmarks.h"

namespace mframe::rtl {
namespace {

core::MfsaResult synth(const dfg::Dfg& g, int cs) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  core::MfsaOptions o;
  o.constraints.timeSteps = cs;
  return core::runMfsa(g, lib, o);
}

TEST(RtlDot, DeclaresAlusAndRegisters) {
  const auto r = synth(test::smallDiamond(), 3);
  ASSERT_TRUE(r.feasible);
  const std::string dot = toDot(r.datapath);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("ALU0"), std::string::npos);
  EXPECT_NE(dot.find("reg0"), std::string::npos);
  EXPECT_NE(dot.find("rankdir=LR"), std::string::npos);
}

TEST(RtlDot, EdgesForEveryMuxSource) {
  const auto r = synth(workloads::diffeq(), 4);
  ASSERT_TRUE(r.feasible);
  const std::string dot = toDot(r.datapath);
  std::size_t edges = 0;
  for (std::size_t p = dot.find("->"); p != std::string::npos;
       p = dot.find("->", p + 1))
    ++edges;
  std::size_t expected = 0;
  for (const auto& w : r.datapath.leftPort) expected += w.sources.size();
  for (const auto& w : r.datapath.rightPort) expected += w.sources.size();
  expected += r.datapath.regOfSignal.size();  // some lack a producing ALU
  EXPECT_GE(edges, expected - r.datapath.regs.count());
}

TEST(Testbench, SelfCheckingStructure) {
  const auto r = synth(test::smallDiamond(), 3);
  ASSERT_TRUE(r.feasible);
  const auto fsm = buildController(r.datapath);
  const std::map<std::string, sim::Word> in{
      {"a", 3}, {"b", 4}, {"c", 10}, {"d", 2}, {"lim", 100}};
  const std::string tb = toTestbench(r.datapath, fsm, in);
  EXPECT_NE(tb.find("module diamond_tb;"), std::string::npos);
  EXPECT_NE(tb.find("diamond dut("), std::string::npos);
  EXPECT_NE(tb.find("always #5 clk = ~clk;"), std::string::npos);
  EXPECT_NE(tb.find("$display(\"PASS\")"), std::string::npos);
  EXPECT_NE(tb.find("$finish"), std::string::npos);
}

TEST(Testbench, ExpectedValuesComeFromTheReference) {
  const auto r = synth(test::smallDiamond(), 3);
  ASSERT_TRUE(r.feasible);
  const auto fsm = buildController(r.datapath);
  const std::map<std::string, sim::Word> in{
      {"a", 3}, {"b", 4}, {"c", 10}, {"d", 2}, {"lim", 100}};
  const std::string tb = toTestbench(r.datapath, fsm, in);
  // y = (3+4)*(10-2) = 56; f = 56 < 100 = 1.
  EXPECT_NE(tb.find("16'd56"), std::string::npos);
  EXPECT_NE(tb.find("out_f !== 16'd1"), std::string::npos);
  // Inputs driven with the vector values.
  EXPECT_NE(tb.find("in_a = 16'd3"), std::string::npos);
}

TEST(Testbench, RunsEnoughClocks) {
  const auto r = synth(workloads::diffeq(), 4);
  ASSERT_TRUE(r.feasible);
  const auto fsm = buildController(r.datapath);
  const std::string tb = toTestbench(r.datapath, fsm, {});
  EXPECT_NE(tb.find("repeat (4) @(posedge clk);"), std::string::npos);
}

}  // namespace
}  // namespace mframe::rtl
