#include "rtl/datapath.h"

#include <gtest/gtest.h>

#include "celllib/ncr_like.h"
#include "core/mfsa.h"
#include "helpers.h"
#include "rtl/cost.h"
#include "rtl/verify.h"
#include "workloads/benchmarks.h"

namespace mframe::rtl {
namespace {

core::MfsaResult synth(const dfg::Dfg& g, int cs) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  core::MfsaOptions o;
  o.constraints.timeSteps = cs;
  return core::runMfsa(g, lib, o);
}

TEST(Datapath, AluOfCoversEveryOperation) {
  const auto r = synth(workloads::diffeq(), 4);
  ASSERT_TRUE(r.feasible) << r.error;
  for (dfg::NodeId op : r.datapath.graph->operations())
    EXPECT_TRUE(r.datapath.aluOf.count(op));
}

TEST(Datapath, RegOfSignalMatchesAllocation) {
  const auto r = synth(workloads::diffeq(), 4);
  ASSERT_TRUE(r.feasible);
  const Datapath& d = r.datapath;
  for (std::size_t reg = 0; reg < d.regs.registers.size(); ++reg)
    for (std::size_t i : d.regs.registers[reg])
      EXPECT_EQ(d.regOfSignal.at(d.lifetimes[i].producer),
                static_cast<int>(reg));
}

TEST(Datapath, PortWiringExistsPerAlu) {
  const auto r = synth(test::smallDiamond(), 3);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.datapath.leftPort.size(), r.datapath.alus.size());
  EXPECT_EQ(r.datapath.rightPort.size(), r.datapath.alus.size());
  EXPECT_EQ(r.datapath.arrangement.size(), r.datapath.alus.size());
}

TEST(Datapath, AluSummaryGroupsIdenticalSignatures) {
  Datapath d;
  d.lib = std::make_shared<celllib::CellLibrary>(celllib::ncrLike());
  AluInstance a;
  a.module = *d.lib->cheapestFor(dfg::FuType::Adder);
  d.alus = {a, a};
  EXPECT_EQ(d.aluSummary(), "2(+)");
}

TEST(Cost, BreakdownSumsAndCounts) {
  const auto r = synth(workloads::tseng(), 4);
  ASSERT_TRUE(r.feasible);
  const CostBreakdown c = evaluateCost(r.datapath);
  EXPECT_DOUBLE_EQ(c.total, c.aluArea + c.regArea + c.muxArea);
  EXPECT_EQ(c.aluCount, static_cast<int>(r.datapath.alus.size()));
  EXPECT_EQ(c.regCount, static_cast<int>(r.datapath.regs.count()));
  EXPECT_GE(c.muxInputCount, 2 * c.muxCount);  // every mux has >= 2 inputs
  const std::string s = c.toString();
  EXPECT_NE(s.find("um^2"), std::string::npos);
}

TEST(Cost, SinglePortWiresAreFree) {
  const auto r = synth(test::addChain(2), 2);
  ASSERT_TRUE(r.feasible);
  const CostBreakdown c = evaluateCost(r.datapath);
  // Two chained adds on one ALU: left port sees two signals but possibly one
  // register; either way, cost accounting never counts 1-input muxes.
  for (const auto& w : r.datapath.leftPort)
    if (w.sources.size() < 2)
      SUCCEED();
  EXPECT_GE(c.muxArea, 0.0);
}

TEST(Datapath, VerifierCatchesForeignBinding) {
  const auto r = synth(test::smallDiamond(), 3);
  ASSERT_TRUE(r.feasible);
  Datapath broken = r.datapath;
  // Move the multiplication into an adder-only ALU if one exists.
  const dfg::NodeId y = broken.graph->findByName("y");
  for (auto& a : broken.alus) {
    if (!broken.lib->module(a.module).supports(dfg::FuType::Multiplier)) {
      // strip y from its owner, then misbind
      for (auto& other : broken.alus)
        other.ops.erase(std::remove(other.ops.begin(), other.ops.end(), y),
                        other.ops.end());
      a.ops.push_back(y);
      broken.aluOf[y] = a.index;
      sched::Constraints c;
      c.timeSteps = 3;
      const auto v = verifyDatapath(broken, c, DesignStyle::Unrestricted);
      EXPECT_FALSE(v.empty());
      return;
    }
  }
  GTEST_SKIP() << "no adder-only ALU in this synthesis";
}

}  // namespace
}  // namespace mframe::rtl
