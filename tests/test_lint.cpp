// Coverage for the structured lint engine: every rule id has a positive
// (the rule fires on a seeded defect) and a negative (a clean design stays
// silent), plus the JSON round-trip contract of docs/FORMATS.md.
#include "analysis/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "celllib/ncr_like.h"
#include "core/mfsa.h"
#include "dfg/builder.h"
#include "dfg/parser.h"
#include "helpers.h"
#include "rtl/bus.h"
#include "rtl/controller.h"
#include "rtl/microcode.h"
#include "workloads/benchmarks.h"

namespace mframe::analysis {
namespace {

bool fires(const LintReport& r, std::string_view rule) {
  return !r.byRule(rule).empty();
}

sched::Schedule validDiamond(const dfg::Dfg& g) {
  sched::Schedule s(g);
  s.setNumSteps(3);
  s.place(g.findByName("s"), 1, 1);
  s.place(g.findByName("t"), 1, 1);
  s.place(g.findByName("y"), 2, 1);
  s.place(g.findByName("f"), 3, 1);
  return s;
}

core::MfsaResult synth(const dfg::Dfg& g, int cs) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  core::MfsaOptions o;
  o.constraints.timeSteps = cs;
  return core::runMfsa(g, lib, o);
}

// ---------------------------------------------------------------------------
// Rule registry
// ---------------------------------------------------------------------------

TEST(LintRules, IdsAreUniqueWellFormedAndFindable) {
  std::set<std::string_view> ids;
  for (const RuleInfo& r : allRules()) {
    EXPECT_TRUE(ids.insert(r.id).second) << "duplicate id " << r.id;
    ASSERT_EQ(r.id.size(), 6u) << r.id;
    EXPECT_TRUE(r.family == "dfg" || r.family == "sched" ||
                r.family == "rtl" || r.family == "eqv" || r.family == "lib" ||
                r.family == "opt" || r.family == "tim" || r.family == "aud" ||
                r.family == "wid");
    const std::string_view prefix = r.id.substr(0, 3);
    EXPECT_EQ(prefix, r.family == "dfg"     ? "DFG"
                      : r.family == "sched" ? "SCH"
                      : r.family == "rtl"   ? "RTL"
                      : r.family == "eqv"   ? "EQV"
                      : r.family == "opt"   ? "OPT"
                      : r.family == "tim"   ? "TIM"
                      : r.family == "aud"   ? "AUD"
                      : r.family == "wid"   ? "WID"
                                            : "LIB");
    EXPECT_FALSE(r.summary.empty());
    EXPECT_EQ(findRule(r.id), &r);
  }
  EXPECT_GE(ids.size(), 30u);
  EXPECT_EQ(findRule("XYZ999"), nullptr);
}

TEST(LintRules, FamilyPrefixesAreDerivedFromIds) {
  for (std::string_view p :
       {"DFG", "SCH", "RTL", "EQV", "LIB", "OPT", "TIM", "AUD", "WID"})
    EXPECT_TRUE(isRuleFamilyPrefix(p)) << p;
  EXPECT_FALSE(isRuleFamilyPrefix("BOGUS"));
  EXPECT_FALSE(isRuleFamilyPrefix("AUD001"));  // exact ids are not families
  EXPECT_FALSE(isRuleFamilyPrefix(""));
  EXPECT_EQ(ruleFamilyPrefixes().size(), 9u);
}

TEST(LintRules, SeverityNamesRoundTrip) {
  for (Severity s : {Severity::Note, Severity::Warning, Severity::Error}) {
    Severity back;
    ASSERT_TRUE(parseSeverity(severityName(s), back));
    EXPECT_EQ(back, s);
  }
  Severity out;
  EXPECT_FALSE(parseSeverity("fatal", out));
}

// ---------------------------------------------------------------------------
// Negatives: clean designs raise nothing, rule by rule
// ---------------------------------------------------------------------------

TEST(LintDfg, CleanGraphIsSilentForEveryDfgRule) {
  const LintReport r = lintDfg(test::smallDiamond());
  for (const RuleInfo& rule : allRules())
    if (rule.family == "dfg") {
      EXPECT_FALSE(fires(r, rule.id)) << rule.id;
    }
  EXPECT_TRUE(r.empty());
}

TEST(LintSchedule, CleanScheduleIsSilentForEveryScheduleRule) {
  const dfg::Dfg g = test::smallDiamond();
  sched::Constraints c;
  c.timeSteps = 3;
  const LintReport r = lintSchedule(validDiamond(g), c);
  for (const RuleInfo& rule : allRules())
    if (rule.family == "sched") {
      EXPECT_FALSE(fires(r, rule.id)) << rule.id;
    }
  EXPECT_TRUE(r.empty());
}

TEST(LintRtl, CleanSynthesisIsSilentForEveryRtlRule) {
  const auto res = synth(workloads::diffeq(), 4);
  ASSERT_TRUE(res.feasible) << res.error;
  const rtl::Datapath& d = res.datapath;
  sched::Constraints c;
  c.timeSteps = 4;
  const rtl::ControllerFsm fsm = rtl::buildController(d);

  LintReport r = lintDatapath(d, c, rtl::DesignStyle::Unrestricted);
  r.merge(lintBusPlan(d, fsm, rtl::planBuses(d, fsm)));
  r.merge(lintMicrocode(d, fsm, rtl::buildMicrocode(d, fsm)));
  for (const RuleInfo& rule : allRules())
    if (rule.family == "rtl") {
      EXPECT_FALSE(fires(r, rule.id)) << rule.id;
    }
  EXPECT_TRUE(r.empty());
}

// ---------------------------------------------------------------------------
// DFG rule positives
// ---------------------------------------------------------------------------

TEST(LintDfg, DanglingInputFires) {  // DFG001
  dfg::Dfg g = test::smallDiamond();
  g.mutableNode(g.findByName("y")).inputs.push_back(99);
  const LintReport r = lintDfg(g);
  ASSERT_TRUE(fires(r, kDfgDanglingInput));
  EXPECT_EQ(r.byRule(kDfgDanglingInput).front().loc.node, "y");
}

TEST(LintDfg, ArityMismatchFires) {  // DFG002
  dfg::Dfg g = test::smallDiamond();
  g.mutableNode(g.findByName("y")).inputs.pop_back();
  EXPECT_TRUE(fires(lintDfg(g), kDfgArityMismatch));
}

TEST(LintDfg, CycleFiresWithOffendingPath) {  // DFG003
  dfg::Dfg g = test::smallDiamond();
  // s feeds y; rewire s to read y back: s -> y -> s.
  g.mutableNode(g.findByName("s")).inputs[0] = g.findByName("y");
  const LintReport r = lintDfg(g);
  const auto cyc = r.byRule(kDfgCycle);
  ASSERT_EQ(cyc.size(), 1u);
  EXPECT_NE(cyc.front().loc.detail.find(" -> "), std::string::npos);
  EXPECT_NE(cyc.front().message.find("cycle"), std::string::npos);
}

TEST(LintDfg, ForwardReferenceFires) {  // DFG010
  dfg::Dfg g = test::smallDiamond();
  g.mutableNode(g.findByName("s")).inputs[0] = g.findByName("y");
  EXPECT_TRUE(fires(lintDfg(g), kDfgForwardRef));
}

TEST(LintDfg, UnreachableOpFires) {  // DFG004
  dfg::Builder b("dead");
  const auto a = b.input("a");
  const auto c = b.input("c");
  b.add(a, c, "orphan");
  b.output(b.add(a, c, "live"), "o");
  const LintReport r = lintDfg(std::move(b).build());
  ASSERT_TRUE(fires(r, kDfgUnreachableOp));
  EXPECT_EQ(r.byRule(kDfgUnreachableOp).front().loc.node, "orphan");
}

TEST(LintDfg, NoOutputsAtAllIsDesignLevel) {  // DFG004 (design)
  dfg::Builder b("noout");
  const auto a = b.input("a");
  b.add(a, a, "x");
  const LintReport r = lintDfg(std::move(b).build());
  ASSERT_TRUE(fires(r, kDfgUnreachableOp));
  EXPECT_EQ(r.byRule(kDfgUnreachableOp).front().entity, EntityKind::Design);
}

TEST(LintDfg, BadCyclesFires) {  // DFG005
  dfg::Dfg g = test::smallDiamond();
  g.mutableNode(g.findByName("y")).cycles = 0;
  EXPECT_TRUE(fires(lintDfg(g), kDfgBadCycles));
}

TEST(LintDfg, BadDelayOverrideFires) {  // DFG006
  dfg::Dfg g = test::smallDiamond();
  g.mutableNode(g.findByName("y")).delayNs = 0.0;  // "free" chaining
  EXPECT_TRUE(fires(lintDfg(g), kDfgBadDelayOverride));

  dfg::Dfg h = test::smallDiamond();
  h.mutableNode(h.findByName("a")).delayNs = 5.0;  // delay on an Input node
  EXPECT_TRUE(fires(lintDfg(h), kDfgBadDelayOverride));
}

TEST(LintDfg, BadBranchPathFires) {  // DFG007
  dfg::Dfg g = test::smallDiamond();
  g.mutableNode(g.findByName("y")).branchPath = "c1";  // odd component count
  EXPECT_TRUE(fires(lintDfg(g), kDfgBadBranchPath));
}

TEST(LintDfg, DuplicateNameFires) {  // DFG008
  dfg::Dfg g = test::smallDiamond();
  g.mutableNode(g.findByName("t")).name = "s";
  EXPECT_TRUE(fires(lintDfg(g), kDfgDuplicateName));
}

TEST(LintDfg, DeadLeafFires) {  // DFG009
  dfg::Builder b("leafy");
  const auto a = b.input("a");
  b.input("unused");
  b.output(b.add(a, a, "x"), "o");
  const LintReport r = lintDfg(std::move(b).build());
  ASSERT_TRUE(fires(r, kDfgDeadLeaf));
  EXPECT_EQ(r.byRule(kDfgDeadLeaf).front().loc.node, "unused");
}

TEST(LintDfg, BadOutputRefFires) {  // DFG011
  dfg::Dfg g = test::smallDiamond();
  g.markOutput(999, "bogus");
  EXPECT_TRUE(fires(lintDfg(g), kDfgBadOutputRef));
}

TEST(LintDfg, BadWidthFires) {  // DFG012
  dfg::Dfg g = test::smallDiamond();
  g.mutableNode(g.findByName("y")).width = 65;
  EXPECT_TRUE(fires(lintDfg(g), kDfgBadWidth));

  dfg::Dfg h = test::smallDiamond();
  h.mutableNode(h.findByName("a")).width = -3;
  EXPECT_TRUE(fires(lintDfg(h), kDfgBadWidth));

  dfg::Dfg ok = test::smallDiamond();
  ok.mutableNode(ok.findByName("y")).width = 8;
  EXPECT_FALSE(fires(lintDfg(ok), kDfgBadWidth));
}

TEST(LintDfg, ConstWidthOverflowFires) {  // DFG013
  // 99 needs 7 bits: it cannot survive a width=4 mask unchanged.
  const dfg::Dfg g = dfg::parse(
      "dfg cbad\ninput a\nconst 99 k width=4\nop add t a k\noutput y t\n");
  const LintReport r = lintDfg(g);
  ASSERT_TRUE(fires(r, kDfgConstWidthOverflow));
  const Diagnostic d = r.byRule(kDfgConstWidthOverflow).front();
  EXPECT_EQ(d.severity, Severity::Error);
  EXPECT_EQ(d.loc.node, "k");
  EXPECT_NE(d.message.find("max 15"), std::string::npos) << d.toText();

  // A negative literal never fits (the value domain is unsigned).
  dfg::Dfg neg = dfg::parse(
      "dfg cneg\ninput a\nconst 0 k width=4\nop add t a k\noutput y t\n");
  neg.mutableNode(neg.findByName("k")).constValue = -1;
  EXPECT_TRUE(fires(lintDfg(neg), kDfgConstWidthOverflow));

  // The boundary value 15 fits exactly; an unsized literal is never checked.
  const dfg::Dfg ok = dfg::parse(
      "dfg cok\ninput a\nconst 15 k width=4\nop add t a k\noutput y t\n");
  EXPECT_FALSE(fires(lintDfg(ok), kDfgConstWidthOverflow));
  const dfg::Dfg unsized = dfg::parse(
      "dfg cun\ninput a\nconst 99 k\nop add t a k\noutput y t\n");
  EXPECT_FALSE(fires(lintDfg(unsized), kDfgConstWidthOverflow));
}

TEST(LintDfg, LenientParseFeedsTheLinter) {
  // The strict parser would throw on all three defects; the lenient parser
  // materializes them so lint can report each with its own rule id.
  std::vector<dfg::ParseIssue> issues;
  const dfg::Dfg g = dfg::parseLenient(
      "dfg broken\n"
      "input a\n"
      "op add s a ghost\n"       // unknown operand -> placeholder input
      "op add t a a cycles=0\n"  // bad attribute value kept as written
      "output o t\n",
      issues);
  ASSERT_FALSE(issues.empty());
  EXPECT_TRUE(issues.front().unknownSignal);
  const LintReport r = lintDfg(g);
  EXPECT_TRUE(fires(r, kDfgBadCycles));
  EXPECT_TRUE(fires(r, kDfgUnreachableOp));  // s never reaches an output
}

// ---------------------------------------------------------------------------
// Schedule rule positives
// ---------------------------------------------------------------------------

TEST(LintSchedule, UnplacedOpFires) {  // SCH001
  const dfg::Dfg g = test::smallDiamond();
  sched::Schedule s(g);
  s.setNumSteps(3);
  sched::Constraints c;
  c.timeSteps = 3;
  const LintReport r = lintSchedule(s, c);
  EXPECT_EQ(r.byRule(kSchedUnplaced).size(), 4u);  // all four ops
  // Completeness errors suppress the later passes entirely.
  for (const Diagnostic& d : r.diagnostics()) EXPECT_EQ(d.rule, kSchedUnplaced);
}

TEST(LintSchedule, OutOfRangeFires) {  // SCH002
  const dfg::Dfg g = test::smallDiamond();
  sched::Schedule s = validDiamond(g);
  s.setNumSteps(2);  // f now sits at step 3
  sched::Constraints c;
  c.timeSteps = 2;
  const LintReport r = lintSchedule(s, c);
  ASSERT_TRUE(fires(r, kSchedOutOfRange));
  EXPECT_EQ(r.byRule(kSchedOutOfRange).front().loc.step, 3);
}

TEST(LintSchedule, BadColumnFires) {  // SCH003
  const dfg::Dfg g = test::smallDiamond();
  sched::Schedule s = validDiamond(g);
  s.place(g.findByName("f"), 3, 0);
  sched::Constraints c;
  c.timeSteps = 3;
  EXPECT_TRUE(fires(lintSchedule(s, c), kSchedBadColumn));
}

TEST(LintSchedule, PrecedenceViolationFires) {  // SCH004
  const dfg::Dfg g = test::smallDiamond();
  sched::Schedule s = validDiamond(g);
  s.place(g.findByName("y"), 1, 1);  // same step as its producers
  sched::Constraints c;
  c.timeSteps = 3;
  const LintReport r = lintSchedule(s, c);
  ASSERT_TRUE(fires(r, kSchedPrecedence));
  const Diagnostic d = r.byRule(kSchedPrecedence).front();
  EXPECT_EQ(d.loc.node, "y");
  EXPECT_FALSE(d.loc.detail.empty());  // names the offending producer
}

TEST(LintSchedule, ChainOverflowFires) {  // SCH005
  const dfg::Dfg g = test::addChain(3);  // 3 x 40ns > 100ns
  sched::Constraints c;
  c.timeSteps = 1;
  c.allowChaining = true;
  c.clockNs = 100.0;
  sched::Schedule s(g);
  s.setNumSteps(1);
  s.place(g.findByName("c1"), 1, 1);
  s.place(g.findByName("c2"), 1, 2);
  s.place(g.findByName("c3"), 1, 3);
  EXPECT_TRUE(fires(lintSchedule(s, c), kSchedChainOverflow));
}

TEST(LintSchedule, MidStepStartFires) {  // SCH006
  dfg::Builder b("mid");
  const auto x = b.input("x");
  const auto k = b.input("k");
  const auto c1 = b.add(x, k, "c1");
  b.output(b.mul(c1, k, "m", 2), "o");  // multicycle op fed by a chain
  const dfg::Dfg g = std::move(b).build();
  sched::Constraints c;
  c.timeSteps = 2;
  c.allowChaining = true;
  c.clockNs = 500.0;
  sched::Schedule s(g);
  s.setNumSteps(2);
  s.place(g.findByName("c1"), 1, 1);
  s.place(g.findByName("m"), 1, 1);  // would have to start mid-step
  EXPECT_TRUE(fires(lintSchedule(s, c), kSchedMidStepStart));
}

TEST(LintSchedule, OccupancyConflictFires) {  // SCH007
  const dfg::Dfg g = test::addParallel(2);
  sched::Schedule s(g);
  s.setNumSteps(1);
  const auto ops = g.operations();
  s.place(ops[0], 1, 1);
  s.place(ops[1], 1, 1);
  sched::Constraints c;
  c.timeSteps = 1;
  const LintReport r = lintSchedule(s, c);
  ASSERT_TRUE(fires(r, kSchedOccupancy));
  EXPECT_EQ(r.byRule(kSchedOccupancy).front().entity, EntityKind::Fu);
}

TEST(LintSchedule, ResourceLimitFires) {  // SCH008
  const dfg::Dfg g = test::addParallel(2);
  sched::Schedule s(g);
  s.setNumSteps(1);
  const auto ops = g.operations();
  s.place(ops[0], 1, 1);
  s.place(ops[1], 1, 2);
  sched::Constraints c;
  c.timeSteps = 1;
  c.fuLimit[dfg::FuType::Adder] = 1;
  EXPECT_TRUE(fires(lintSchedule(s, c), kSchedResourceLimit));
}

// ---------------------------------------------------------------------------
// RTL rule positives
// ---------------------------------------------------------------------------

TEST(LintRtl, DoubleBindingFires) {  // RTL001
  auto res = synth(test::smallDiamond(), 3);
  ASSERT_TRUE(res.feasible);
  rtl::Datapath d = res.datapath;
  d.alus[0].ops.push_back(d.alus[0].ops.front());
  sched::Constraints c;
  c.timeSteps = 3;
  EXPECT_TRUE(fires(lintDatapath(d, c, rtl::DesignStyle::Unrestricted),
                    kRtlDoubleBinding));
}

TEST(LintRtl, NonOpBoundFires) {  // RTL002
  auto res = synth(test::smallDiamond(), 3);
  ASSERT_TRUE(res.feasible);
  rtl::Datapath d = res.datapath;
  d.alus[0].ops.push_back(d.graph->findByName("a"));  // a primary input
  sched::Constraints c;
  c.timeSteps = 3;
  EXPECT_TRUE(fires(lintDatapath(d, c, rtl::DesignStyle::Unrestricted),
                    kRtlNonOpBound));
}

TEST(LintRtl, UnsupportedOpFires) {  // RTL003
  auto res = synth(test::smallDiamond(), 3);
  ASSERT_TRUE(res.feasible);
  rtl::Datapath d = res.datapath;
  const dfg::NodeId y = d.graph->findByName("y");  // the multiplication
  for (auto& a : d.alus) {
    if (d.lib->module(a.module).supports(dfg::FuType::Multiplier)) continue;
    for (auto& other : d.alus)
      other.ops.erase(std::remove(other.ops.begin(), other.ops.end(), y),
                      other.ops.end());
    a.ops.push_back(y);
    sched::Constraints c;
    c.timeSteps = 3;
    EXPECT_TRUE(fires(lintDatapath(d, c, rtl::DesignStyle::Unrestricted),
                      kRtlUnsupportedOp));
    return;
  }
  GTEST_SKIP() << "every ALU in this synthesis supports mul";
}

TEST(LintRtl, UnboundOpFires) {  // RTL004
  auto res = synth(test::smallDiamond(), 3);
  ASSERT_TRUE(res.feasible);
  rtl::Datapath d = res.datapath;
  const dfg::NodeId y = d.graph->findByName("y");
  for (auto& a : d.alus)
    a.ops.erase(std::remove(a.ops.begin(), a.ops.end(), y), a.ops.end());
  sched::Constraints c;
  c.timeSteps = 3;
  const LintReport r = lintDatapath(d, c, rtl::DesignStyle::Unrestricted);
  ASSERT_TRUE(fires(r, kRtlUnboundOp));
  EXPECT_EQ(r.byRule(kRtlUnboundOp).front().loc.node, "y");
}

TEST(LintRtl, AluOverlapFires) {  // RTL005
  auto res = synth(test::addChain(2), 2);
  ASSERT_TRUE(res.feasible);
  rtl::Datapath d = res.datapath;
  for (const auto& a : d.alus) {
    if (a.ops.size() < 2) continue;
    // Reschedule the second op onto the first op's step: same ALU, same step.
    d.schedule.place(a.ops[1], d.schedule.stepOf(a.ops[0]),
                     d.schedule.columnOf(a.ops[1]));
    sched::Constraints c;
    c.timeSteps = 2;
    EXPECT_TRUE(fires(lintDatapath(d, c, rtl::DesignStyle::Unrestricted),
                      kRtlAluOverlap));
    return;
  }
  GTEST_SKIP() << "no ALU executes two operations in this synthesis";
}

TEST(LintRtl, SelfLoopFiresUnderStyle2) {  // RTL006
  auto res = synth(test::addChain(2), 2);
  ASSERT_TRUE(res.feasible);
  const rtl::Datapath& d = res.datapath;
  const dfg::NodeId c1 = d.graph->findByName("c1");
  const dfg::NodeId c2 = d.graph->findByName("c2");
  if (d.aluOf.at(c1) != d.aluOf.at(c2))
    GTEST_SKIP() << "chained adds landed on distinct ALUs";
  sched::Constraints c;
  c.timeSteps = 2;
  EXPECT_TRUE(
      fires(lintDatapath(d, c, rtl::DesignStyle::NoSelfLoop), kRtlSelfLoop));
}

TEST(LintRtl, RegisterOverlapFires) {  // RTL007
  auto res = synth(workloads::diffeq(), 4);
  ASSERT_TRUE(res.feasible);
  rtl::Datapath d = res.datapath;
  sched::Constraints c;
  c.timeSteps = 4;
  auto& regs = d.regs.registers;
  for (std::size_t r1 = 0; r1 < regs.size(); ++r1)
    for (std::size_t r2 = r1 + 1; r2 < regs.size(); ++r2)
      for (std::size_t i : regs[r1])
        for (std::size_t j : regs[r2])
          if (d.lifetimes[i].overlaps(d.lifetimes[j])) {
            regs[r1].push_back(j);  // force two live values into one register
            EXPECT_TRUE(fires(
                lintDatapath(d, c, rtl::DesignStyle::Unrestricted),
                kRtlRegisterOverlap));
            return;
          }
  GTEST_SKIP() << "no overlapping lifetime pair in this synthesis";
}

TEST(LintRtl, MissingRegisterFires) {  // RTL008
  auto res = synth(workloads::diffeq(), 4);
  ASSERT_TRUE(res.feasible);
  rtl::Datapath d = res.datapath;
  for (const alloc::Lifetime& lt : d.lifetimes) {
    if (!lt.needsRegister) continue;
    d.regOfSignal.erase(lt.producer);
    sched::Constraints c;
    c.timeSteps = 4;
    EXPECT_TRUE(fires(lintDatapath(d, c, rtl::DesignStyle::Unrestricted),
                      kRtlMissingRegister));
    return;
  }
  GTEST_SKIP() << "no cross-step lifetime in this synthesis";
}

TEST(LintRtl, UnconnectedPortFires) {  // RTL009
  auto res = synth(test::smallDiamond(), 3);
  ASSERT_TRUE(res.feasible);
  rtl::Datapath d = res.datapath;
  for (auto& w : d.leftPort) w.selectOf.clear();  // sever every left operand
  sched::Constraints c;
  c.timeSteps = 3;
  const LintReport r = lintDatapath(d, c, rtl::DesignStyle::Unrestricted);
  ASSERT_TRUE(fires(r, kRtlUnconnectedPort));
  EXPECT_EQ(r.byRule(kRtlUnconnectedPort).front().entity, EntityKind::Port);
}

TEST(LintRtl, BusContentionFires) {  // RTL010
  auto res = synth(workloads::diffeq(), 4);
  ASSERT_TRUE(res.feasible);
  const rtl::Datapath& d = res.datapath;
  const rtl::ControllerFsm fsm = rtl::buildController(d);
  rtl::BusPlan plan = rtl::planBuses(d, fsm);
  if (plan.busCount == 0) GTEST_SKIP() << "no bus transfers in this design";
  plan.busCount = 0;  // starve the plan: every transfer now contends
  const LintReport r = lintBusPlan(d, fsm, plan);
  ASSERT_TRUE(fires(r, kRtlBusContention));
  EXPECT_GE(r.byRule(kRtlBusContention).front().loc.step, 1);
}

TEST(LintRtl, IdleBusFires) {  // RTL011
  auto res = synth(workloads::diffeq(), 4);
  ASSERT_TRUE(res.feasible);
  const rtl::Datapath& d = res.datapath;
  const rtl::ControllerFsm fsm = rtl::buildController(d);
  rtl::BusPlan plan = rtl::planBuses(d, fsm);
  plan.busCount += 1;  // one bus beyond peak demand: never driven
  EXPECT_EQ(lintBusPlan(d, fsm, plan).byRule(kRtlBusIdle).size(), 1u);
}

TEST(LintRtl, BadFieldRefFires) {  // RTL012
  auto res = synth(workloads::diffeq(), 4);
  ASSERT_TRUE(res.feasible);
  const rtl::Datapath& d = res.datapath;
  const rtl::ControllerFsm fsm = rtl::buildController(d);
  rtl::MicrocodeRom rom = rtl::buildMicrocode(d, fsm);
  ASSERT_FALSE(rom.fields.empty());
  rom.fields[0].name = "alu99.op";  // no such ALU
  EXPECT_TRUE(fires(lintMicrocode(d, fsm, rom), kRtlBadFieldRef));
}

TEST(LintRtl, FieldOverflowFires) {  // RTL013
  auto res = synth(workloads::diffeq(), 4);
  ASSERT_TRUE(res.feasible);
  const rtl::Datapath& d = res.datapath;
  const rtl::ControllerFsm fsm = rtl::buildController(d);

  rtl::MicrocodeRom shape = rtl::buildMicrocode(d, fsm);
  shape.words += 1;  // ROM no longer matches the FSM
  EXPECT_TRUE(fires(lintMicrocode(d, fsm, shape), kRtlFieldOverflow));

  rtl::MicrocodeRom wide = rtl::buildMicrocode(d, fsm);
  ASSERT_FALSE(wide.rows.empty());
  ASSERT_FALSE(wide.fields.empty());
  wide.rows[0][0] = 1 << wide.fields[0].bits;  // value exceeds field width
  EXPECT_TRUE(fires(lintMicrocode(d, fsm, wide), kRtlFieldOverflow));
}

// ---------------------------------------------------------------------------
// Report mechanics and the JSON round trip
// ---------------------------------------------------------------------------

TEST(LintReportTest, CountsAndThresholds) {
  LintReport r;
  Diagnostic w;
  w.rule = "DFG009";
  w.severity = Severity::Warning;
  w.message = "only a warning";
  r.add(w);
  EXPECT_EQ(r.count(Severity::Warning), 1u);
  EXPECT_EQ(r.count(Severity::Error), 0u);
  EXPECT_FALSE(r.hasErrors());
  EXPECT_TRUE(r.hasAtOrAbove(Severity::Note));
  EXPECT_TRUE(r.hasAtOrAbove(Severity::Warning));
  EXPECT_FALSE(r.hasAtOrAbove(Severity::Error));
}

TEST(LintReportTest, LegacyMessagesPreserveOrder) {
  dfg::Dfg g = test::smallDiamond();
  g.mutableNode(g.findByName("y")).cycles = 0;
  g.mutableNode(g.findByName("t")).name = "s";
  const LintReport r = lintDfg(g);
  const auto msgs = r.messages();
  ASSERT_EQ(msgs.size(), r.size());
  for (std::size_t i = 0; i < msgs.size(); ++i)
    EXPECT_EQ(msgs[i], r.diagnostics()[i].message);
}

TEST(LintReportTest, ToTextCarriesRuleAndLocation) {
  Diagnostic d;
  d.rule = "SCH004";
  d.severity = Severity::Error;
  d.entity = EntityKind::Node;
  d.loc.node = "y";
  d.loc.step = 2;
  d.message = "precedence violated";
  d.fixit = "move it";
  const std::string t = d.toText();
  EXPECT_NE(t.find("error[SCH004]"), std::string::npos);
  EXPECT_NE(t.find("'y'"), std::string::npos);
  EXPECT_NE(t.find("precedence violated"), std::string::npos);
  EXPECT_NE(t.find("fix:"), std::string::npos);
}

TEST(LintJson, RoundTripPreservesEveryDiagnostic) {
  dfg::Dfg g = test::smallDiamond();
  g.mutableNode(g.findByName("s")).inputs[0] = g.findByName("y");  // cycle + fwd ref
  g.mutableNode(g.findByName("f")).branchPath = "c1";
  g.markOutput(999, "bogus");
  const LintReport r = lintDfg(g);
  ASSERT_GE(r.size(), 3u);

  const std::string json = r.renderJson("diamond");
  std::string err;
  const auto parsed = parseDiagnosticsJson(json, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(*parsed, r.diagnostics());
}

TEST(LintJson, EscapesSpecialCharacters) {
  LintReport r;
  Diagnostic d;
  d.rule = "DFG000";
  d.severity = Severity::Error;
  d.entity = EntityKind::Design;
  d.message = "quote \" backslash \\ newline \n tab \t done";
  d.loc.detail = "path \"a\" -> b";
  r.add(d);
  const std::string json = r.renderJson("tricky \"name\"");
  std::string err;
  const auto parsed = parseDiagnosticsJson(json, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(*parsed, r.diagnostics());
}

TEST(LintJson, MalformedInputIsRejected) {
  std::string err;
  EXPECT_FALSE(parseDiagnosticsJson("{", &err).has_value());
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(parseDiagnosticsJson("[]", &err).has_value());
  EXPECT_FALSE(parseDiagnosticsJson("", &err).has_value());
}

TEST(LintJson, RenderedJsonCarriesCounts) {
  dfg::Dfg g = test::smallDiamond();
  g.mutableNode(g.findByName("y")).cycles = 0;
  const LintReport r = lintDfg(g);
  const std::string json = r.renderJson("diamond");
  EXPECT_NE(json.find("\"design\""), std::string::npos);
  EXPECT_NE(json.find("\"counts\""), std::string::npos);
  EXPECT_NE(json.find("\"DFG005\""), std::string::npos);
}

TEST(LintJson, SchemaVersionIsTwoAndEnforced) {
  LintReport r;
  const std::string json = r.renderJson("empty");
  EXPECT_NE(json.find("\"schema\": 2"), std::string::npos);
  std::string err;
  EXPECT_FALSE(parseDiagnosticsJson(
                   "{\"schema\": 1, \"design\": \"x\", \"diagnostics\": []}",
                   &err)
                   .has_value());
  EXPECT_NE(err.find("schema"), std::string::npos);
}

// ---------------------------------------------------------------------------
// LIB rule positives & negatives
// ---------------------------------------------------------------------------

TEST(LintLibrary, CleanLibraryIsSilentForEveryLibRule) {
  const std::set<dfg::FuType> needed = {
      dfg::FuType::Multiplier, dfg::FuType::Adder, dfg::FuType::Subtractor,
      dfg::FuType::Comparator};
  const LintReport r = lintLibrary(celllib::ncrLike(), needed);
  for (const RuleInfo& rule : allRules())
    if (rule.family == "lib") {
      EXPECT_FALSE(fires(r, rule.id)) << rule.id;
    }
  EXPECT_TRUE(r.empty());
}

TEST(LintLibrary, DuplicateCellFires) {  // LIB001
  celllib::CellLibrary lib;
  lib.addModule({"alu", {dfg::FuType::Adder, dfg::FuType::Subtractor}, 100.0, 10.0, 1});
  lib.addModule({"alu", {dfg::FuType::Adder, dfg::FuType::Subtractor}, 200.0, 12.0, 1});
  const LintReport r = lintLibrary(lib);
  ASSERT_TRUE(fires(r, kLibDuplicateCell));
  EXPECT_EQ(r.byRule(kLibDuplicateCell).front().loc.detail, "alu");
}

TEST(LintLibrary, BadAreaAndDelayFire) {  // LIB002 + LIB003
  celllib::CellLibrary lib;
  lib.addModule({"freebie", {dfg::FuType::Adder, dfg::FuType::Subtractor}, 0.0, -1.0, 1});
  const LintReport r = lintLibrary(lib);
  EXPECT_TRUE(fires(r, kLibBadArea));
  ASSERT_TRUE(fires(r, kLibBadDelay));
  EXPECT_EQ(r.byRule(kLibBadDelay).front().severity, Severity::Warning);
}

TEST(LintLibrary, MissingCellFiresOnlyWhenNeeded) {  // LIB004
  celllib::CellLibrary lib;
  lib.addModule({"alu", {dfg::FuType::Adder, dfg::FuType::Subtractor}, 100.0, 10.0, 1});
  EXPECT_FALSE(fires(lintLibrary(lib), kLibMissingCell));
  const LintReport r = lintLibrary(lib, {dfg::FuType::Multiplier});
  ASSERT_TRUE(fires(r, kLibMissingCell));
  EXPECT_EQ(r.byRule(kLibMissingCell).front().loc.detail, "multiplier");
}

TEST(LintLibrary, BadStageCountFires) {  // LIB005
  celllib::CellLibrary lib;
  lib.addModule({"alu", {dfg::FuType::Adder, dfg::FuType::Subtractor}, 100.0, 10.0, 0});
  EXPECT_TRUE(fires(lintLibrary(lib), kLibBadStages));
}

TEST(LintLibrary, NonMonotoneMuxTableFires) {  // LIB006
  celllib::CellLibrary lib;
  lib.addModule({"alu", {dfg::FuType::Adder, dfg::FuType::Subtractor}, 100.0, 10.0, 1});
  lib.setMuxCosts({0.0, 0.0, 600.0, 400.0});  // 3-input mux cheaper than 2
  const LintReport r = lintLibrary(lib);
  ASSERT_TRUE(fires(r, kLibMuxTable));
  EXPECT_EQ(r.byRule(kLibMuxTable).size(), 1u);  // one report per table
}

}  // namespace
}  // namespace mframe::analysis
