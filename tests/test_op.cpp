#include "dfg/op.h"

#include <gtest/gtest.h>

namespace mframe::dfg {
namespace {

const OpKind kAllKinds[] = {
    OpKind::Input, OpKind::Const, OpKind::Add, OpKind::Sub, OpKind::Mul,
    OpKind::Div,   OpKind::Inc,   OpKind::Dec, OpKind::And, OpKind::Or,
    OpKind::Xor,   OpKind::Not,   OpKind::Shl, OpKind::Shr, OpKind::Eq,
    OpKind::Ne,    OpKind::Lt,    OpKind::Gt,  OpKind::Le,  OpKind::Ge,
    OpKind::LoopSuper};

TEST(Op, ArityMatchesKindClass) {
  EXPECT_EQ(arity(OpKind::Add), 2);
  EXPECT_EQ(arity(OpKind::Not), 1);
  EXPECT_EQ(arity(OpKind::Inc), 1);
  EXPECT_EQ(arity(OpKind::Input), 0);
  EXPECT_EQ(arity(OpKind::Const), 0);
}

TEST(Op, CommutativityIsOnlyForSymmetricOps) {
  EXPECT_TRUE(isCommutative(OpKind::Add));
  EXPECT_TRUE(isCommutative(OpKind::Mul));
  EXPECT_TRUE(isCommutative(OpKind::Eq));
  EXPECT_FALSE(isCommutative(OpKind::Sub));
  EXPECT_FALSE(isCommutative(OpKind::Lt));
  EXPECT_FALSE(isCommutative(OpKind::Shl));
}

TEST(Op, SchedulableExcludesInputAndConst) {
  EXPECT_FALSE(isSchedulable(OpKind::Input));
  EXPECT_FALSE(isSchedulable(OpKind::Const));
  EXPECT_TRUE(isSchedulable(OpKind::Add));
  EXPECT_TRUE(isSchedulable(OpKind::LoopSuper));
}

TEST(Op, AllRelationalsShareTheComparator) {
  for (OpKind k : {OpKind::Eq, OpKind::Ne, OpKind::Lt, OpKind::Gt, OpKind::Le,
                   OpKind::Ge})
    EXPECT_EQ(fuTypeOf(k), FuType::Comparator);
}

TEST(Op, DelaysReflectHardwareReality) {
  // Multiplication dwarfs addition; logic is cheapest. Only the ordering is
  // contractual — the chaining logic depends on it.
  EXPECT_GT(defaultDelayNs(OpKind::Mul), 2 * defaultDelayNs(OpKind::Add));
  EXPECT_LT(defaultDelayNs(OpKind::And), defaultDelayNs(OpKind::Add));
}

TEST(Op, NameAndSymbolParseBack) {
  for (OpKind k : kAllKinds) {
    OpKind fromName;
    ASSERT_TRUE(parseKind(kindName(k), fromName)) << kindName(k);
    EXPECT_EQ(fromName, k);
  }
  OpKind k;
  EXPECT_TRUE(parseKind("*", k));
  EXPECT_EQ(k, OpKind::Mul);
  EXPECT_FALSE(parseKind("bogus", k));
}

TEST(Op, EveryScheduleableKindHasAnFuType) {
  for (OpKind k : kAllKinds)
    if (isSchedulable(k)) EXPECT_FALSE(fuTypeName(fuTypeOf(k)).empty());
}

TEST(Op, FuTypeNamesAndSymbolsAreNonEmpty) {
  for (std::size_t t = 0; t < kNumFuTypes; ++t) {
    EXPECT_FALSE(fuTypeName(static_cast<FuType>(t)).empty());
    EXPECT_FALSE(fuTypeSymbol(static_cast<FuType>(t)).empty());
  }
}

}  // namespace
}  // namespace mframe::dfg
