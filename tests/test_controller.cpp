#include "rtl/controller.h"

#include <gtest/gtest.h>

#include "celllib/ncr_like.h"
#include "core/mfsa.h"
#include "helpers.h"
#include "workloads/benchmarks.h"

namespace mframe::rtl {
namespace {

core::MfsaResult synth(const dfg::Dfg& g, int cs) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  core::MfsaOptions o;
  o.constraints.timeSteps = cs;
  return core::runMfsa(g, lib, o);
}

TEST(Controller, OneMicroOpPerOperationAtItsStep) {
  const auto r = synth(workloads::diffeq(), 4);
  ASSERT_TRUE(r.feasible) << r.error;
  const ControllerFsm fsm = buildController(r.datapath);
  EXPECT_EQ(fsm.numSteps, 4);
  EXPECT_EQ(fsm.microOps.size(), r.datapath.graph->operations().size());
  for (const MicroOp& m : fsm.microOps) {
    EXPECT_EQ(m.step, r.datapath.schedule.stepOf(m.op));
    EXPECT_EQ(m.alu, r.datapath.aluOf.at(m.op));
  }
}

TEST(Controller, MicroOpsSortedByStep) {
  const auto r = synth(workloads::tseng(), 4);
  ASSERT_TRUE(r.feasible);
  const ControllerFsm fsm = buildController(r.datapath);
  for (std::size_t i = 1; i < fsm.microOps.size(); ++i)
    EXPECT_LE(fsm.microOps[i - 1].step, fsm.microOps[i].step);
}

TEST(Controller, RegisterLoadsHappenAtBirthSteps) {
  const auto r = synth(test::smallDiamond(), 3);
  ASSERT_TRUE(r.feasible);
  const ControllerFsm fsm = buildController(r.datapath);
  const dfg::Dfg& g = *r.datapath.graph;
  for (const RegLoad& rl : fsm.regLoads) {
    const dfg::Node& n = g.node(rl.signal);
    if (n.kind == dfg::OpKind::Input) {
      EXPECT_EQ(rl.step, 0);
      EXPECT_EQ(rl.fromAlu, -1);
    } else {
      EXPECT_EQ(rl.step, r.datapath.schedule.stepOf(rl.signal) + n.cycles - 1);
      EXPECT_GE(rl.fromAlu, 0);
    }
  }
}

TEST(Controller, EveryStoredSignalHasALoad) {
  const auto r = synth(workloads::fir8(), 9);
  ASSERT_TRUE(r.feasible);
  const ControllerFsm fsm = buildController(r.datapath);
  EXPECT_EQ(fsm.regLoads.size(), r.datapath.regOfSignal.size());
}

TEST(Controller, SelectsAreValidIndices) {
  const auto r = synth(workloads::diffeq(), 4);
  ASSERT_TRUE(r.feasible);
  const ControllerFsm fsm = buildController(r.datapath);
  for (const MicroOp& m : fsm.microOps) {
    const auto ai = static_cast<std::size_t>(m.alu);
    if (m.leftSelect >= 0) {
      EXPECT_LT(static_cast<std::size_t>(m.leftSelect),
                r.datapath.leftPort[ai].sources.size());
    }
    if (m.rightSelect >= 0) {
      EXPECT_LT(static_cast<std::size_t>(m.rightSelect),
                r.datapath.rightPort[ai].sources.size());
    }
  }
}

TEST(Controller, ToStringListsStates) {
  const auto r = synth(test::smallDiamond(), 3);
  ASSERT_TRUE(r.feasible);
  const ControllerFsm fsm = buildController(r.datapath);
  const std::string s = fsm.toString(*r.datapath.graph);
  EXPECT_NE(s.find("state"), std::string::npos);
  EXPECT_NE(s.find("ALU"), std::string::npos);
}

}  // namespace
}  // namespace mframe::rtl
