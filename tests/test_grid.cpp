#include "core/grid.h"

#include <gtest/gtest.h>

#include "dfg/builder.h"
#include "helpers.h"

namespace mframe::core {
namespace {

using dfg::NodeId;

TEST(ColumnOccupancy, PlaceBlocksCellAndRemoveFrees) {
  const dfg::Dfg g = test::addParallel(2);
  sched::Constraints c;
  ColumnOccupancy occ(g, c);
  const auto ops = g.operations();
  EXPECT_TRUE(occ.canPlace(ops[0], 1, 1));
  occ.place(ops[0], 1, 1);
  EXPECT_FALSE(occ.canPlace(ops[1], 1, 1));
  EXPECT_TRUE(occ.canPlace(ops[1], 2, 1));
  EXPECT_TRUE(occ.canPlace(ops[1], 1, 2));
  occ.remove(ops[0]);
  EXPECT_TRUE(occ.canPlace(ops[1], 1, 1));
}

TEST(ColumnOccupancy, MulticycleHoldsConsecutiveSteps) {
  dfg::Builder b("mc");
  const auto x = b.input("x");
  const auto y = b.input("y");
  b.mul(x, y, "m1", 3);
  b.mul(x, y, "m2", 1);
  const dfg::Dfg g = std::move(b).build();
  sched::Constraints c;
  ColumnOccupancy occ(g, c);
  occ.place(g.findByName("m1"), 1, 2);  // occupies 2,3,4
  for (int s : {2, 3, 4}) EXPECT_FALSE(occ.canPlace(g.findByName("m2"), 1, s));
  EXPECT_TRUE(occ.canPlace(g.findByName("m2"), 1, 1));
  EXPECT_TRUE(occ.canPlace(g.findByName("m2"), 1, 5));
}

TEST(ColumnOccupancy, PipelinedColumnConflictsOnlyOnStartStep) {
  dfg::Builder b("pipe");
  const auto x = b.input("x");
  const auto y = b.input("y");
  b.mul(x, y, "m1", 2);
  b.mul(x, y, "m2", 2);
  const dfg::Dfg g = std::move(b).build();
  sched::Constraints c;
  ColumnOccupancy occ(g, c);
  occ.setPipelined(1, true);
  occ.place(g.findByName("m1"), 1, 1);
  EXPECT_FALSE(occ.canPlace(g.findByName("m2"), 1, 1));
  EXPECT_TRUE(occ.canPlace(g.findByName("m2"), 1, 2));
}

TEST(ColumnOccupancy, LatencyFoldingAliasesResidues) {
  const dfg::Dfg g = test::addParallel(3);
  sched::Constraints c;
  c.latency = 3;
  ColumnOccupancy occ(g, c);
  const auto ops = g.operations();
  occ.place(ops[0], 1, 1);
  EXPECT_FALSE(occ.canPlace(ops[1], 1, 4));  // 4 == 1 (mod 3)
  EXPECT_TRUE(occ.canPlace(ops[1], 1, 2));
  EXPECT_TRUE(occ.canPlace(ops[1], 1, 3));
}

TEST(ColumnOccupancy, MulticycleLongerThanLatencyRejected) {
  dfg::Builder b("mc");
  const auto x = b.input("x");
  const auto y = b.input("y");
  b.mul(x, y, "m", 3);
  const dfg::Dfg g = std::move(b).build();
  sched::Constraints c;
  c.latency = 2;  // a 3-cycle op would overlap its own next initiation
  ColumnOccupancy occ(g, c);
  EXPECT_FALSE(occ.canPlace(g.findByName("m"), 1, 1));
}

TEST(ColumnOccupancy, MutuallyExclusiveShareCells) {
  const dfg::Dfg g = test::branchy();
  sched::Constraints c;
  ColumnOccupancy occ(g, c);
  occ.place(g.findByName("t1"), 1, 1);
  EXPECT_TRUE(occ.canPlace(g.findByName("e1"), 1, 1));
  occ.place(g.findByName("e1"), 1, 1);
  EXPECT_EQ(occ.at(1, 1).size(), 2u);
}

TEST(ColumnOccupancy, MaxColumnUsedTracksHighest) {
  const dfg::Dfg g = test::addParallel(3);
  sched::Constraints c;
  ColumnOccupancy occ(g, c);
  EXPECT_EQ(occ.maxColumnUsed(), 0);
  const auto ops = g.operations();
  occ.place(ops[0], 1, 1);
  occ.place(ops[1], 3, 1);
  EXPECT_EQ(occ.maxColumnUsed(), 3);
  occ.remove(ops[1]);
  EXPECT_EQ(occ.maxColumnUsed(), 1);
}

TEST(ColumnOccupancy, ClearResetsEverything) {
  const dfg::Dfg g = test::addParallel(2);
  sched::Constraints c;
  ColumnOccupancy occ(g, c);
  const auto ops = g.operations();
  occ.place(ops[0], 1, 1);
  occ.clear();
  EXPECT_FALSE(occ.isPlaced(ops[0]));
  EXPECT_TRUE(occ.canPlace(ops[1], 1, 1));
}

TEST(Grid, RoutesByFuType) {
  dfg::Builder b("mix");
  const auto x = b.input("x");
  const auto y = b.input("y");
  const auto a1 = b.add(x, y, "a1");
  const auto a2 = b.add(y, x, "a2");
  const auto s1 = b.sub(x, y, "s1");
  b.output(a1, "o1");
  b.output(a2, "o2");
  b.output(s1, "o3");
  const dfg::Dfg g = std::move(b).build();
  sched::Constraints c;
  Grid grid(g, c);
  grid.place(a1, 1, 1);
  // Different FU type: the subtractor table is independent of the adders'.
  EXPECT_TRUE(grid.canPlace(s1, 1, 1));
  grid.place(s1, 1, 1);
  // Same FU type: the cell is taken.
  EXPECT_FALSE(grid.canPlace(a2, 1, 1));
  EXPECT_TRUE(grid.canPlace(a2, 2, 1));
}

TEST(Grid, PipelinedTypesFlaggedFromConstraints) {
  dfg::Builder b("pipe");
  const auto x = b.input("x");
  const auto y = b.input("y");
  b.mul(x, y, "m1", 2);
  b.mul(x, y, "m2", 2);
  const dfg::Dfg g = std::move(b).build();
  sched::Constraints c;
  c.pipelinedFus.insert(dfg::FuType::Multiplier);
  Grid grid(g, c);
  grid.place(g.findByName("m1"), 1, 1);
  EXPECT_TRUE(grid.canPlace(g.findByName("m2"), 1, 2));  // overlapping stages
}

}  // namespace
}  // namespace mframe::core
