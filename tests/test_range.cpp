// Coverage for the interval range analysis over the FSM x datapath product:
// interval inference through ALUs, muxes and registers; every WID rule's
// positive (a seeded defect fires it with provenance) and negative (every
// benchmark x every scheduler proves clean); reachability refinement via
// decided branch conditions and the refined re-audit; loop-head widening;
// `assert` statement semantics and the strict .bind numeric readers;
// jobs-determinism of report, JSON and range.* counters; and the golden
// `range --json` documents for the benchmark suite.
#include "analysis/range/range.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/audit/audit.h"
#include "analysis/lint.h"
#include "analysis/rules.h"
#include "analysis/validate/bind_io.h"
#include "baseline/asap_sched.h"
#include "baseline/fds.h"
#include "celllib/ncr_like.h"
#include "core/mfs.h"
#include "core/mfsa.h"
#include "dfg/parser.h"
#include "rtl/controller.h"
#include "rtl/datapath.h"
#include "rtl/microcode.h"
#include "trace/trace.h"
#include "workloads/benchmarks.h"

namespace mframe::analysis::range {
namespace {

bool fires(const LintReport& r, std::string_view rule) {
  return !r.byRule(rule).empty();
}

/// Narrow-width fixture: 4-bit inputs make every interval finite, the
/// constant k is the always-zero branch condition of the refinement tests,
/// and n1's width=4 declaration is provably satisfied ([0, 15]).
constexpr std::string_view kRangedDfg = R"(dfg ranged
input a width=4
input b width=4
input c width=4
const 0 k
op add t1 a b
op add t2 t1 c
op add n1 a k width=4
op add t3 t2 n1
output y t3
)";

/// The clean binding: the t-chain on ALU0, n1 alone on ALU1, three steps.
/// Extras appended by tests start at .bind line 8.
constexpr std::string_view kRangedBinding = R"(bind ranged steps=3
alu 0 addsub16
alu 1 addsub16
op t1 step=1 alu=0
op n1 step=1 alu=1
op t2 step=2 alu=0
op t3 step=3 alu=0
)";

celllib::CellLibrary tinyLib() {
  celllib::CellLibrary lib;
  lib.addModule({"addsub16",
                 {dfg::FuType::Adder, dfg::FuType::Subtractor},
                 4400.0,
                 41.0,
                 1});
  lib.setRegCost(1800.0);
  lib.setMuxCosts({0.0, 0.0, 620.0, 950.0, 1260.0});
  return lib;
}

const dfg::Dfg& rangedGraph() {
  static const dfg::Dfg g = dfg::parse(kRangedDfg);
  return g;
}

BoundDesign bindRanged(std::string_view extra = "",
                       std::string_view binding = kRangedBinding) {
  std::string err;
  const auto b = parseBindDesign(
      rangedGraph(), tinyLib(),
      std::string(binding) + std::string(extra), &err);
  EXPECT_TRUE(b.has_value()) << err;
  return *b;
}

RangeResult rangeBound(const BoundDesign& b, int jobs = 1) {
  RangeOptions opt;
  opt.jobs = jobs;
  opt.asserts = b.asserts;
  return analyzeDesignRanges(b.datapath, b.fsm, b.rom, opt);
}

RangeResult rangeDatapath(const rtl::Datapath& d, int jobs = 1) {
  const rtl::ControllerFsm fsm = rtl::buildController(d);
  const rtl::MicrocodeRom rom = rtl::buildMicrocode(d, fsm);
  RangeOptions opt;
  opt.jobs = jobs;
  return analyzeDesignRanges(d, fsm, rom, opt);
}

// ---------------------------------------------------------------------------
// Negatives: every benchmark x every scheduler proves clean
// ---------------------------------------------------------------------------

struct Bench {
  const char* name;
  dfg::Dfg graph;
};

std::vector<Bench> rangeSuite() {
  std::vector<Bench> v;
  v.push_back({"tseng", workloads::tseng()});
  v.push_back({"chained", workloads::chained()});
  v.push_back({"diffeq", workloads::diffeq()});
  v.push_back({"fir8", workloads::fir8()});
  v.push_back({"ar", workloads::arLattice()});
  v.push_back({"ewf", workloads::ewfLike()});
  v.push_back({"fdct", workloads::fdctLike()});
  v.push_back({"iir", workloads::iirBiquads()});
  return v;
}

/// Schedule -> bindByColumns -> buildDatapath -> range; clean = no findings.
void expectClean(const dfg::Dfg& g, const sched::Schedule& s,
                 const std::string& what) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  const rtl::Datapath d =
      rtl::buildDatapath(g, lib, s, rtl::bindByColumns(g, lib, s));
  const RangeResult r = rangeDatapath(d);
  EXPECT_TRUE(r.clean()) << what << ":\n" << r.report.renderText();
  EXPECT_EQ(r.reach.reachableCount(), r.reach.numStates) << what;
  EXPECT_EQ(r.refined.reachableCount(), r.reach.reachableCount()) << what;
  EXPECT_TRUE(r.pruned.empty()) << what;
}

TEST(RangeAccept, MfsaOnEveryBenchmark) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  for (const Bench& b : rangeSuite()) {
    const auto asap = baseline::runAsap(b.graph, {});
    ASSERT_TRUE(asap.feasible) << b.name;
    core::MfsaOptions o;
    o.constraints.timeSteps = asap.steps;
    const auto r = core::runMfsa(b.graph, lib, o);
    ASSERT_TRUE(r.feasible) << b.name << ": " << r.error;
    const RangeResult a = rangeDatapath(r.datapath);
    EXPECT_TRUE(a.clean()) << b.name << " (mfsa):\n" << a.report.renderText();
  }
}

TEST(RangeAccept, MfsOnEveryBenchmark) {
  for (const Bench& b : rangeSuite()) {
    const auto asap = baseline::runAsap(b.graph, {});
    ASSERT_TRUE(asap.feasible) << b.name;
    core::MfsOptions o;
    o.constraints.timeSteps = asap.steps;
    const auto r = core::runMfs(b.graph, o);
    ASSERT_TRUE(r.feasible) << b.name << ": " << r.error;
    expectClean(b.graph, r.schedule, std::string(b.name) + " (mfs)");
  }
}

TEST(RangeAccept, AsapOnEveryBenchmark) {
  for (const Bench& b : rangeSuite()) {
    const auto asap = baseline::runAsap(b.graph, {});
    ASSERT_TRUE(asap.feasible) << b.name;
    expectClean(b.graph, asap.schedule, std::string(b.name) + " (asap)");
  }
}

TEST(RangeAccept, ForceDirectedOnEveryBenchmark) {
  for (const Bench& b : rangeSuite()) {
    const auto asap = baseline::runAsap(b.graph, {});
    ASSERT_TRUE(asap.feasible) << b.name;
    sched::Constraints c;
    c.timeSteps = asap.steps;
    const auto r = baseline::runForceDirected(b.graph, c);
    ASSERT_TRUE(r.feasible) << b.name << ": " << r.error;
    expectClean(b.graph, r.schedule, std::string(b.name) + " (fds)");
  }
}

TEST(RangeAccept, CleanBindingIsSilentForEveryWidRule) {
  const RangeResult r = rangeBound(bindRanged());
  for (const RuleInfo& rule : allRules())
    if (rule.family == "wid") {
      EXPECT_FALSE(fires(r.report, rule.id)) << rule.id;
    }
  EXPECT_TRUE(r.clean()) << r.report.renderText();
  EXPECT_EQ(r.statesInterpreted, 4u);
  EXPECT_EQ(r.widenings, 0u);
}

// ---------------------------------------------------------------------------
// Inference: intervals follow the declared widths through the datapath
// ---------------------------------------------------------------------------

TEST(RangeInference, IntervalsFollowDeclaredWidthsThroughTheProduct) {
  // Pin the four producers so the register indices are fixed: the 4-bit
  // inputs bound every chained sum exactly.
  const RangeResult r =
      rangeBound(bindRanged("reg t1 0\nreg t2 1\nreg n1 2\nreg t3 3\n"));
  ASSERT_TRUE(r.clean()) << r.report.renderText();
  ASSERT_EQ(static_cast<int>(r.values.size()), 4);
  const RangeState& last = r.values[3];
  ASSERT_TRUE(last.reached);
  const struct {
    int reg;
    sim::Word lo, hi;
  } expect[] = {{0, 0, 30}, {1, 0, 45}, {2, 0, 15}, {3, 0, 60}};
  for (const auto& e : expect) {
    ASSERT_TRUE(last.regs[e.reg].defined) << "R" << e.reg;
    EXPECT_EQ(last.regs[e.reg].val.lo, e.lo) << "R" << e.reg;
    EXPECT_EQ(last.regs[e.reg].val.hi, e.hi) << "R" << e.reg;
  }
  // t3 is not latched until state 3's out-state: still undefined in 2.
  EXPECT_FALSE(r.values[2].regs[3].defined);
}

// ---------------------------------------------------------------------------
// Positives: each WID rule fires on its seeded defect, with provenance
// ---------------------------------------------------------------------------

TEST(RangeReject, TruncatingSharedRegisterFiresWid001) {
  // t2 ([0, 45], 6 bits) shares R0 with n1, whose width=4 declaration
  // sizes the register: latching t2 truncates.
  const RangeResult r = rangeBound(bindRanged("reg n1 0\nreg t2 0\n"));
  ASSERT_TRUE(fires(r.report, kWidTruncatingWrite)) << r.report.renderText();
  const Diagnostic d = r.report.byRule(kWidTruncatingWrite).front();
  EXPECT_EQ(d.severity, Severity::Error);
  EXPECT_EQ(d.loc.step, 2);  // the truncating latch happens in state 2
  bool namesTenant = false, hasWitness = false;
  for (const std::string& p : d.provenance) {
    namesTenant = namesTenant || p.find("n1") != std::string::npos;
    hasWitness = hasWitness || p.find("0 -> 1 -> 2") != std::string::npos;
  }
  EXPECT_TRUE(namesTenant) << d.toText();
  EXPECT_TRUE(hasWitness) << d.toText();
  EXPECT_FALSE(fires(r.report, kWidSharedLineOverflow));
}

TEST(RangeReject, SharedAluLineFiresWid002) {
  // t2 rebound onto ALU1, whose output line n1's width=4 declaration sizes.
  const std::string binding{
      "bind ranged steps=3\n"
      "alu 0 addsub16\n"
      "alu 1 addsub16\n"
      "op t1 step=1 alu=0\n"
      "op n1 step=1 alu=1\n"
      "op t2 step=2 alu=1\n"
      "op t3 step=3 alu=0\n"};
  const RangeResult r = rangeBound(bindRanged("", binding));
  ASSERT_TRUE(fires(r.report, kWidSharedLineOverflow))
      << r.report.renderText();
  const Diagnostic d = r.report.byRule(kWidSharedLineOverflow).front();
  EXPECT_EQ(d.severity, Severity::Error);
  EXPECT_EQ(d.loc.step, 2);
  EXPECT_FALSE(fires(r.report, kWidTruncatingWrite));
}

TEST(RangeReject, UndersizedDeclarationFiresWid003) {
  // t1 declares width=4 but [0, 30] needs 5 bits; with its own register the
  // declaration is the only finding.
  const dfg::Dfg g = dfg::parse(
      "dfg rangedecl\n"
      "input a width=4\n"
      "input b width=4\n"
      "op add t1 a b width=4\n"
      "output y t1\n");
  std::string err;
  const auto b = parseBindDesign(g, tinyLib(),
                                 "bind rangedecl steps=1\n"
                                 "alu 0 addsub16\n"
                                 "op t1 step=1 alu=0\n",
                                 &err);
  ASSERT_TRUE(b.has_value()) << err;
  const RangeResult r = rangeBound(*b);
  ASSERT_TRUE(fires(r.report, kWidDeclaredWidthOverflow))
      << r.report.renderText();
  const Diagnostic d = r.report.byRule(kWidDeclaredWidthOverflow).front();
  EXPECT_EQ(d.severity, Severity::Warning);
  EXPECT_EQ(d.loc.step, 1);
  EXPECT_NE(d.message.find("width=4"), std::string::npos) << d.toText();
}

// ---------------------------------------------------------------------------
// Refinement: decided conditions prune edges; the refined audit relaxes
// ---------------------------------------------------------------------------

TEST(RangeRefinement, DecidedCondPrunesEdgeAndWid004Fires) {
  // State 2's only transfer into 3 is conditional on the constant 0: the
  // edge is provably never taken, state 3 is value-dead, and the mux
  // inputs only t3's issue selects there are flagged.
  const BoundDesign b = bindRanged("next 2 3 cond=k\n");
  const RangeResult r = rangeBound(b);
  ASSERT_EQ(r.pruned.size(), 1u);
  EXPECT_EQ(r.pruned[0].edge.from, 2);
  EXPECT_EQ(r.pruned[0].edge.to, 3);
  EXPECT_NE(r.pruned[0].reason.find("always 0"), std::string::npos);
  EXPECT_EQ(r.reach.reachableCount(), 4);
  EXPECT_EQ(r.refined.reachableCount(), 3);
  ASSERT_TRUE(fires(r.report, kWidValueDeadMuxInput))
      << r.report.renderText();
  const auto hits = r.report.byRule(kWidValueDeadMuxInput);
  EXPECT_EQ(hits.size(), 2u);  // t3's left (t2) and right (n1) selects
  bool namesDeadState = false;
  for (const std::string& p : hits.front().provenance)
    namesDeadState =
        namesDeadState || p.find("value-dead state 3") != std::string::npos;
  EXPECT_TRUE(namesDeadState) << hits.front().toText();
  // The refined audit treats state 3 as proven-dead: no AUD001 for it.
  const audit::AuditResult a = auditRefined(r, b.datapath, b.rom, {});
  EXPECT_FALSE(fires(a.report, kAudUnreachable)) << a.report.renderText();
}

TEST(RangeRefinement, RefinementKillsAuditFalsePositives) {
  // A reset branch jumps straight to state 3, conditional on the constant
  // 0. The plain audit walks the impossible 0 -> 3 path and reports
  // read-before-write plus X-propagation; the refined audit proves the
  // branch dead and both findings disappear.
  const BoundDesign b = bindRanged("next 0 1\nnext 0 3 cond=k\n");
  const audit::AuditResult plain =
      audit::auditDesign(b.datapath, b.fsm, b.rom, {});
  ASSERT_TRUE(fires(plain.report, kAudReadBeforeWrite))
      << plain.report.renderText();
  ASSERT_TRUE(fires(plain.report, kAudXPropagation));

  const RangeResult r = rangeBound(b);
  ASSERT_EQ(r.pruned.size(), 1u);
  EXPECT_TRUE(r.clean()) << r.report.renderText();
  const audit::AuditResult refined = auditRefined(r, b.datapath, b.rom, {});
  EXPECT_TRUE(refined.clean()) << refined.report.renderText();
  EXPECT_FALSE(fires(refined.report, kAudReadBeforeWrite));
  EXPECT_FALSE(fires(refined.report, kAudXPropagation));
}

// ---------------------------------------------------------------------------
// Widening: an accumulator loop converges by saturating to full width
// ---------------------------------------------------------------------------

TEST(RangeWidening, AccumulatorLoopSaturatesToFullWidth) {
  // t2 latches into c's register and the FSM loops 3 -> 1: each iteration
  // grows t2 by up to 45, so only widening terminates the fixpoint. The
  // widened [0, 65535] then truncates in the 4-bit register: WID001.
  const RangeResult r =
      rangeBound(bindRanged("reg c 0\nreg t2 0\nnext 3 1\n"));
  EXPECT_GT(r.widenings, 0u);
  ASSERT_TRUE(fires(r.report, kWidTruncatingWrite)) << r.report.renderText();
  const Diagnostic d = r.report.byRule(kWidTruncatingWrite).front();
  EXPECT_NE(d.message.find("[0, 65535]"), std::string::npos) << d.toText();
}

// ---------------------------------------------------------------------------
// Asserts: .bind contracts checked against the inferred intervals
// ---------------------------------------------------------------------------

TEST(RangeAsserts, SatisfiedAssertIsClean) {
  const RangeResult r = rangeBound(
      bindRanged("reg t2 0\nassert reg=0 min=0 max=45 width=6\n"));
  EXPECT_TRUE(r.clean()) << r.report.renderText();
  EXPECT_EQ(r.assertsChecked, 1u);
}

TEST(RangeAsserts, ViolatedAssertsFireWid005WithLineProvenance) {
  // Line 8 pins the register; the asserts sit on .bind lines 9 and 10.
  const RangeResult r = rangeBound(bindRanged(
      "reg t2 0\n"
      "assert reg=0 min=0 max=30\n"
      "assert reg=0 min=0 max=63 width=5\n"));
  const auto hits = r.report.byRule(kWidAssertViolated);
  ASSERT_EQ(hits.size(), 2u) << r.report.renderText();
  EXPECT_EQ(hits[0].severity, Severity::Error);
  EXPECT_EQ(hits[0].loc.line, 9);
  EXPECT_EQ(hits[1].loc.line, 10);
  EXPECT_NE(hits[0].message.find("[0, 30]"), std::string::npos)
      << hits[0].toText();
  EXPECT_NE(hits[1].message.find("width=5"), std::string::npos)
      << hits[1].toText();
  EXPECT_EQ(hits[0].loc.step, 2);  // first offending state: t2's latch
}

TEST(RangeAsserts, OutOfRangeRegisterIndexFiresWid005) {
  const RangeResult r =
      rangeBound(bindRanged("assert reg=99 min=0 max=5\n"));
  ASSERT_TRUE(fires(r.report, kWidAssertViolated)) << r.report.renderText();
}

// ---------------------------------------------------------------------------
// Strict numeric readers: malformed assert values name the offending token
// ---------------------------------------------------------------------------

TEST(BindAsserts, StrictNumericsAndValidation) {
  const dfg::Dfg& g = rangedGraph();
  const celllib::CellLibrary lib = tinyLib();
  const std::string base{kRangedBinding};
  struct Case {
    std::string text;
    std::string expect;
  };
  const Case cases[] = {
      {base + "assert reg=abc min=0 max=5\n", "bad assert reg value 'abc'"},
      {base + "assert reg=0 min=zz max=5\n", "bad assert min value 'zz'"},
      {base + "assert reg=0 min=0 max=5.5\n", "bad assert max value '5.5'"},
      {base + "assert reg=0 min=0 max=5 width=w8\n",
       "bad assert width value 'w8'"},
      {base + "assert reg=0 min=6 max=5\n", "assert min exceeds max"},
      {base + "assert reg=0 min=0 max=5 width=99\n",
       "assert width out of range"},
      {base + "assert reg=0 max=5\n",
       "expected: assert reg=<r> min=<a> max=<b> [width=<w>]"},
  };
  for (const Case& c : cases) {
    std::string err;
    EXPECT_FALSE(parseBindDesign(g, lib, c.text, &err)) << c.text;
    EXPECT_NE(err.find(c.expect), std::string::npos)
        << "wanted '" << c.expect << "' in '" << err << "'";
  }
  // The well-formed statement round-trips with its declaration line.
  std::string err;
  const auto b = parseBindDesign(
      g, lib, base + "assert reg=0 min=1 max=5 width=3\n", &err);
  ASSERT_TRUE(b.has_value()) << err;
  ASSERT_EQ(b->asserts.size(), 1u);
  EXPECT_EQ(b->asserts[0].reg, 0);
  EXPECT_EQ(b->asserts[0].min, 1u);
  EXPECT_EQ(b->asserts[0].max, 5u);
  EXPECT_EQ(b->asserts[0].width, 3);
  EXPECT_EQ(b->asserts[0].line, 8);
}

// ---------------------------------------------------------------------------
// Determinism: jobs must not change the report, the JSON or the counters
// ---------------------------------------------------------------------------

TEST(RangeDeterminism, ReportJsonAndCountersAreJobsInvariant) {
  const dfg::Dfg g = workloads::ewfLike();
  static const celllib::CellLibrary lib = celllib::ncrLike();
  const auto asap = baseline::runAsap(g, {});
  ASSERT_TRUE(asap.feasible);
  const rtl::Datapath d = rtl::buildDatapath(
      g, lib, asap.schedule, rtl::bindByColumns(g, lib, asap.schedule));

  trace::enableCounters(true);
  trace::resetCounters();
  const RangeResult one = rangeDatapath(d, 1);
  const auto countersOne = trace::counterSnapshot();

  trace::resetCounters();
  const RangeResult eight = rangeDatapath(d, 8);
  const auto countersEight = trace::counterSnapshot();
  trace::enableCounters(false);

  EXPECT_EQ(one.report.renderText(), eight.report.renderText());
  EXPECT_EQ(renderRangeJson(one, g), renderRangeJson(eight, g));
  EXPECT_EQ(countersOne, countersEight);
}

TEST(RangeCounters, TallyStatesWideningsAssertsAndFindings) {
  trace::enableCounters(true);
  trace::resetCounters();
  const RangeResult r =
      rangeBound(bindRanged("reg c 0\nreg t2 0\nnext 3 1\n"));
  EXPECT_EQ(trace::counterValue(trace::Counter::RangeStates),
            r.statesInterpreted);
  EXPECT_EQ(trace::counterValue(trace::Counter::RangeWidenings), r.widenings);
  EXPECT_EQ(trace::counterValue(trace::Counter::RangeAsserts),
            r.assertsChecked);
  EXPECT_EQ(trace::counterValue(trace::Counter::RangeFindings),
            static_cast<std::uint64_t>(r.report.size()));
  trace::enableCounters(false);
}

// ---------------------------------------------------------------------------
// Rendering and goldens
// ---------------------------------------------------------------------------

TEST(RangeRender, SummaryAndJsonCarryTheHeadline) {
  const BoundDesign b = bindRanged("next 2 3 cond=k\n");
  const RangeResult r = rangeBound(b);
  const std::string summary = renderRangeSummary(r);
  EXPECT_NE(summary.find("4/4 states reachable (3 refined)"),
            std::string::npos)
      << summary;
  EXPECT_NE(summary.find("1 pruned edge(s)"), std::string::npos) << summary;
  const std::string json = renderRangeJson(r, rangedGraph());
  EXPECT_NE(json.find("\"schema\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"design\": \"ranged\""), std::string::npos);
  EXPECT_NE(json.find("\"refinedReachableStates\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"cond\": \"k\""), std::string::npos);
  EXPECT_NE(json.find("\"lint\":"), std::string::npos);
  // The embedded lint document round-trips through the schema-2 parser.
  const std::size_t lintAt = json.find("\"lint\": ");
  ASSERT_NE(lintAt, std::string::npos);
  std::string error;
  const auto parsed = parseDiagnosticsJson(
      json.substr(lintAt + 8, json.rfind('}') - (lintAt + 8)), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->size(), r.report.size());
}

RangeResult rangeForGolden(const dfg::Dfg& g) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  const auto asap = baseline::runAsap(g, {});
  EXPECT_TRUE(asap.feasible) << g.name();
  core::MfsaOptions o;
  o.constraints.timeSteps = asap.steps;
  const auto r = core::runMfsa(g, lib, o);
  EXPECT_TRUE(r.feasible) << g.name() << ": " << r.error;
  return rangeDatapath(r.datapath);
}

std::string goldenPath(const std::string& name) {
  return std::string(MFRAME_TESTS_DIR) + "/golden/range_" + name + ".json";
}

TEST(RangeGolden, JsonIsDeterministic) {
  const dfg::Dfg g = workloads::diffeq();
  const std::string a = renderRangeJson(rangeForGolden(g), g);
  const std::string b = renderRangeJson(rangeForGolden(g), g);
  EXPECT_EQ(a, b);
}

TEST(RangeGolden, BenchmarksMatchCommittedJson) {
  const bool update = std::getenv("MFRAME_UPDATE_GOLDEN") != nullptr;
  for (const Bench& b : rangeSuite()) {
    const RangeResult r = rangeForGolden(b.graph);
    EXPECT_TRUE(r.clean()) << b.name << ":\n" << r.report.renderText();
    const std::string json = renderRangeJson(r, b.graph);
    const std::string path = goldenPath(b.graph.name());
    if (update) {
      std::ofstream out(path);
      ASSERT_TRUE(out.good()) << path;
      out << json;
      continue;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing golden " << path
                           << " (regenerate with MFRAME_UPDATE_GOLDEN=1)";
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(json, ss.str()) << b.name;
  }
}

}  // namespace
}  // namespace mframe::analysis::range
