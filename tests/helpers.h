// Shared fixtures/builders for the libmframe test suite.
#pragma once

#include <gtest/gtest.h>

#include "dfg/builder.h"
#include "sched/schedule.h"

namespace mframe::test {

/// a+b -> s; c-d -> t; s*t -> y; y<lim -> f. Critical path 3.
inline dfg::Dfg smallDiamond() {
  dfg::Builder b("diamond");
  const auto a = b.input("a");
  const auto bb = b.input("b");
  const auto c = b.input("c");
  const auto d = b.input("d");
  const auto lim = b.input("lim");
  const auto s = b.add(a, bb, "s");
  const auto t = b.sub(c, d, "t");
  const auto y = b.mul(s, t, "y");
  const auto f = b.lt(y, lim, "f");
  b.output(y, "y");
  b.output(f, "f");
  return std::move(b).build();
}

/// A pure chain of n additions (critical path n).
inline dfg::Dfg addChain(int n) {
  dfg::Builder b("chain" + std::to_string(n));
  auto prev = b.input("x0");
  const auto one = b.input("k");
  for (int i = 1; i <= n; ++i)
    prev = b.add(prev, one, "c" + std::to_string(i));
  b.output(prev, "y");
  return std::move(b).build();
}

/// n independent additions (width n, depth 1).
inline dfg::Dfg addParallel(int n) {
  dfg::Builder b("par" + std::to_string(n));
  const auto x = b.input("x");
  const auto y = b.input("y");
  for (int i = 0; i < n; ++i) b.output(b.add(x, y, "p" + std::to_string(i)), "o" + std::to_string(i));
  return std::move(b).build();
}

/// Two ops in exclusive branch arms plus a join-side op.
inline dfg::Dfg branchy() {
  dfg::Builder b("branchy");
  const auto a = b.input("a");
  const auto c = b.input("c");
  b.pushBranch("c1", "t");
  const auto t1 = b.add(a, c, "t1");
  b.popBranch();
  b.pushBranch("c1", "e");
  const auto e1 = b.add(a, c, "e1");
  b.popBranch();
  const auto j = b.sub(t1, e1, "j");
  b.output(j, "j");
  return std::move(b).build();
}

}  // namespace mframe::test
