#include "pipeline/analysis.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "workloads/benchmarks.h"

namespace mframe::pipeline {
namespace {

using dfg::FuType;

TEST(Analysis, LowerBoundCountsBusyCycles) {
  // AR lattice: 16 two-cycle muls = 32 busy cycles; 12 adds.
  const dfg::Dfg g = workloads::arLattice();
  const auto lb4 = fuDemandLowerBound(g, 4);
  EXPECT_EQ(lb4.at(FuType::Multiplier), 8);  // ceil(32/4)
  EXPECT_EQ(lb4.at(FuType::Adder), 3);       // ceil(12/4)
}

TEST(Analysis, PipelinedUnitsCountInitiationsOnly) {
  const dfg::Dfg g = workloads::arLattice();
  const auto lb = fuDemandLowerBound(g, 4, {FuType::Multiplier});
  EXPECT_EQ(lb.at(FuType::Multiplier), 4);  // ceil(16/4) initiations
}

TEST(Analysis, AchievedDemandNeverBelowTheBound) {
  const dfg::Dfg g = workloads::fir8();
  for (const auto& p : latencySweep(g, 8)) {
    if (!p.feasible) continue;
    for (const auto& [t, bound] : p.lowerBound)
      EXPECT_GE(p.fuCount.at(t), bound)
          << "L=" << p.latency << " type " << dfg::fuTypeName(t);
  }
}

TEST(Analysis, IndependentOpsReachTheBoundExactly) {
  const dfg::Dfg g = test::addParallel(8);
  for (const auto& p : latencySweep(g, 8)) {
    ASSERT_TRUE(p.feasible) << p.latency;
    EXPECT_EQ(p.fuCount.at(FuType::Adder), p.lowerBound.at(FuType::Adder))
        << "L=" << p.latency;
  }
}

TEST(Analysis, MinimumLatencyForUnitOpsIsOne) {
  EXPECT_EQ(minimumLatency(test::addParallel(4), 4), 1);
}

TEST(Analysis, MulticycleOpsFloorTheLatency) {
  // 2-cycle multiplies cannot fold below L=2 on non-pipelined units.
  EXPECT_EQ(minimumLatency(workloads::arLattice(), 13), 2);
}

TEST(Analysis, StructuralPipeliningUnlocksLatencyOne) {
  core::MfsOptions base;
  base.constraints.pipelinedFus.insert(FuType::Multiplier);
  EXPECT_EQ(minimumLatency(workloads::arLattice(), 13, base), 1);
}

TEST(Analysis, InfeasibleWindowReportsZero) {
  // timeSteps below the critical path: no latency works.
  EXPECT_EQ(minimumLatency(workloads::ewfLike(), 5), 0);
}

TEST(Analysis, DemandFallsAsLatencyGrows) {
  const dfg::Dfg g = workloads::fir8();
  const auto sweep = latencySweep(g, 8);
  int prev = 1 << 20;
  for (const auto& p : sweep) {
    if (!p.feasible) continue;
    EXPECT_LE(p.fuCount.at(FuType::Multiplier), prev);
    prev = p.fuCount.at(FuType::Multiplier);
  }
}

}  // namespace
}  // namespace mframe::pipeline
