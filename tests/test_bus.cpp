#include "rtl/bus.h"

#include <gtest/gtest.h>

#include "celllib/ncr_like.h"
#include "core/mfsa.h"
#include "helpers.h"
#include "workloads/benchmarks.h"

namespace mframe::rtl {
namespace {

core::MfsaResult synth(const dfg::Dfg& g, int cs) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  core::MfsaOptions o;
  o.constraints.timeSteps = cs;
  return core::runMfsa(g, lib, o);
}

TEST(Bus, PlanCoversEveryStep) {
  const auto r = synth(workloads::diffeq(), 4);
  ASSERT_TRUE(r.feasible) << r.error;
  const auto fsm = buildController(r.datapath);
  const BusPlan plan = planBuses(r.datapath, fsm);
  EXPECT_EQ(plan.transfersPerStep.size(), 5u);  // index 0 unused + 4 steps
  EXPECT_GT(plan.busCount, 0);
  EXPECT_GT(plan.driverCount, 0);
  EXPECT_GT(plan.totalCost, 0.0);
}

TEST(Bus, BusCountIsPeakConcurrentSources) {
  // Peak transfers in any step bounds the bus count from above; shared
  // sources can lower it below the raw transfer count.
  const auto r = synth(workloads::fir8(), 8);
  ASSERT_TRUE(r.feasible);
  const auto fsm = buildController(r.datapath);
  const BusPlan plan = planBuses(r.datapath, fsm);
  int peakTransfers = 0;
  for (int t : plan.transfersPerStep) peakTransfers = std::max(peakTransfers, t);
  EXPECT_LE(plan.busCount, peakTransfers);
  EXPECT_GE(plan.busCount, 1);
}

TEST(Bus, ConstantsRideNoBus) {
  // A design whose second operands are all constants: only the left
  // (register) operands transfer.
  const auto g = workloads::fir8();  // h taps are constants
  const auto r = synth(g, 9);
  ASSERT_TRUE(r.feasible);
  const auto fsm = buildController(r.datapath);
  const BusPlan plan = planBuses(r.datapath, fsm);
  int totalTransfers = 0;
  for (int t : plan.transfersPerStep) totalTransfers += t;
  // 8 muls read (x_i, const) and 7 adds read two bused values: <= 8 + 14.
  EXPECT_LE(totalTransfers, 22);
  EXPECT_GE(totalTransfers, 15);
}

TEST(Bus, CostModelScales) {
  const auto r = synth(test::smallDiamond(), 3);
  ASSERT_TRUE(r.feasible);
  const auto fsm = buildController(r.datapath);
  const BusPlan cheap = planBuses(r.datapath, fsm, {.busWireUm2 = 1, .driverUm2 = 1, .receiverUm2 = 1});
  const BusPlan dear = planBuses(r.datapath, fsm, {.busWireUm2 = 2, .driverUm2 = 2, .receiverUm2 = 2});
  EXPECT_DOUBLE_EQ(dear.totalCost, 2.0 * cheap.totalCost);
  EXPECT_EQ(cheap.busCount, dear.busCount);
}

TEST(Bus, ToStringSummarizes) {
  const auto r = synth(test::smallDiamond(), 3);
  ASSERT_TRUE(r.feasible);
  const auto fsm = buildController(r.datapath);
  const std::string s = planBuses(r.datapath, fsm).toString();
  EXPECT_NE(s.find("bus"), std::string::npos);
  EXPECT_NE(s.find("driver"), std::string::npos);
}

}  // namespace
}  // namespace mframe::rtl
