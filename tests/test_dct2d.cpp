// Case-study tests: the 4x4 2-D DCT (the repository's largest design)
// through every stage of the flow.
#include <gtest/gtest.h>

#include "celllib/ncr_like.h"
#include "core/mfs.h"
#include "core/mfsa.h"
#include "rtl/controller.h"
#include "rtl/verify.h"
#include "sched/report.h"
#include "sched/verify.h"
#include "sim/dfg_eval.h"
#include "sim/rtl_sim.h"
#include "util/strings.h"
#include "workloads/benchmarks.h"

namespace mframe {
namespace {

using dfg::FuType;
using dfg::OpKind;

TEST(Dct2d, OpMixAndStructure) {
  const dfg::Dfg g = workloads::dct2d4x4();
  EXPECT_FALSE(g.validate().has_value());
  std::map<OpKind, int> mix;
  for (dfg::NodeId id : g.operations()) ++mix[g.node(id).kind];
  EXPECT_EQ(mix[OpKind::Mul], 32);
  EXPECT_EQ(mix[OpKind::Add] + mix[OpKind::Sub], 64);
  EXPECT_EQ(g.operations().size(), 96u);
  EXPECT_EQ(g.outputs().size(), 16u);
}

TEST(Dct2d, CriticalPathAndSweep) {
  const dfg::Dfg g = workloads::dct2d4x4();
  sched::Constraints probe;
  const auto tf = computeTimeFrames(g, probe);
  ASSERT_TRUE(tf.has_value());
  EXPECT_EQ(tf->criticalSteps(), 6);  // two 3-deep DCT passes

  for (int cs : {6, 8, 12}) {
    core::MfsOptions o;
    o.constraints.timeSteps = cs;
    const auto r = core::runMfs(g, o);
    ASSERT_TRUE(r.feasible) << "T=" << cs << ": " << r.error;
    EXPECT_TRUE(sched::verifySchedule(r.schedule, o.constraints).empty());
  }
  // FU demand falls with more time: 32 muls over 8 vs 14 steps.
  core::MfsOptions tight, loose;
  tight.constraints.timeSteps = 6;
  loose.constraints.timeSteps = 12;
  const auto rt = core::runMfs(g, tight);
  const auto rl = core::runMfs(g, loose);
  EXPECT_GT(rt.fuCount.at(FuType::Multiplier), rl.fuCount.at(FuType::Multiplier));
}

TEST(Dct2d, FullSynthesisAndEquivalence) {
  const dfg::Dfg g = workloads::dct2d4x4();
  static const celllib::CellLibrary lib = celllib::ncrLike();
  core::MfsaOptions o;
  o.constraints.timeSteps = 10;
  const auto r = core::runMfsa(g, lib, o);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_TRUE(rtl::verifyDatapath(r.datapath, o.constraints,
                                  rtl::DesignStyle::Unrestricted)
                  .empty());

  const auto fsm = rtl::buildController(r.datapath);
  std::map<std::string, sim::Word> in;
  for (int row = 0; row < 4; ++row)
    for (int col = 0; col < 4; ++col)
      in[mframe::util::format("p%d%d", row, col)] =
          static_cast<sim::Word>(16 * row + col + 1);
  const auto ref = sim::evalDfg(g, in);
  const auto rtlOut = sim::simulateRtl(r.datapath, fsm, in);
  ASSERT_TRUE(ref.ok && rtlOut.ok) << rtlOut.error;
  for (const auto& [name, value] : ref.outputs)
    EXPECT_EQ(rtlOut.outputs.at(name), value) << name;
}

TEST(Dct2d, DcCoefficientIsThePixelSum) {
  // q00 of a DCT-II butterfly bank is the plain sum of all 16 pixels
  // (unscaled in this construction): an independent functional check that
  // the graph really computes a 2-D transform shape.
  const dfg::Dfg g = workloads::dct2d4x4();
  std::map<std::string, sim::Word> in;
  sim::Word sum = 0;
  for (int row = 0; row < 4; ++row)
    for (int col = 0; col < 4; ++col) {
      const sim::Word v = static_cast<sim::Word>(3 * row + 5 * col + 2);
      in[mframe::util::format("p%d%d", row, col)] = v;
      sum += v;
    }
  const auto ref = sim::evalDfg(g, in);
  ASSERT_TRUE(ref.ok);
  EXPECT_EQ(ref.outputs.at("q00"), sum & 0xFFFF);
}

TEST(Dct2d, RelaxedConstraintRestoresBalance) {
  // At the 6-step critical path the row/column multiplies are frame-locked
  // to steps 2 and 5, forcing 16 multipliers. Four steps of slack let MFS
  // spread them: far fewer units, far higher utilization.
  const dfg::Dfg g = workloads::dct2d4x4();
  core::MfsOptions tight, loose;
  tight.constraints.timeSteps = 6;
  loose.constraints.timeSteps = 10;
  const auto rt = core::runMfs(g, tight);
  const auto rl = core::runMfs(g, loose);
  ASSERT_TRUE(rt.feasible && rl.feasible);
  EXPECT_EQ(rt.fuCount.at(FuType::Multiplier), 16);  // structural floor
  EXPECT_LE(rl.fuCount.at(FuType::Multiplier), 8);
  const auto repT = sched::analyzeSchedule(rt.schedule);
  const auto repL = sched::analyzeSchedule(rl.schedule);
  double utilT = 0, utilL = 0;
  for (const auto& u : repT.utilization)
    if (u.type == FuType::Multiplier) utilT = u.utilization;
  for (const auto& u : repL.utilization)
    if (u.type == FuType::Multiplier) utilL = u.utilization;
  EXPECT_GT(utilL, utilT);
}

}  // namespace
}  // namespace mframe
