#include "util/table.h"

#include <gtest/gtest.h>

namespace mframe::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t("title");
  t.setHeader({"col1", "c2"});
  t.addRow({"a", "bbbb"});
  const std::string out = t.render();
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("| col1 |"), std::string::npos);
  EXPECT_NE(out.find("| bbbb |"), std::string::npos);
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t;
  t.setHeader({"h"});
  t.addRow({"wide-cell"});
  const std::string out = t.render();
  // Header cell padded to the data width.
  EXPECT_NE(out.find("| h         |"), std::string::npos);
}

TEST(Table, RaggedRowsPadWithEmptyCells) {
  Table t;
  t.addRow({"a", "b", "c"});
  t.addRow({"only"});
  EXPECT_NO_FATAL_FAILURE(t.render());
  EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, SeparatorInsertedBetweenRows) {
  Table t;
  t.addRow({"r1"});
  t.addSeparator();
  t.addRow({"r2"});
  const std::string out = t.render();
  // rule, r1, rule (separator), r2, rule -> at least 3 rules.
  std::size_t rules = 0;
  for (std::size_t pos = out.find('+'); pos != std::string::npos;
       pos = out.find("\n+", pos + 1))
    ++rules;
  EXPECT_GE(rules, 3u);
}

TEST(Table, EmptyTableRendersNothingButTitle) {
  Table t("only-title");
  EXPECT_EQ(t.render(), "only-title\n");
}

}  // namespace
}  // namespace mframe::util
