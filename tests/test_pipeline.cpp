#include <gtest/gtest.h>

#include "core/mfs.h"
#include "helpers.h"
#include "pipeline/functional.h"
#include "pipeline/structural.h"
#include "sched/verify.h"
#include "workloads/benchmarks.h"

namespace mframe::pipeline {
namespace {

using dfg::FuType;

TEST(Structural, ConstraintHelperMarksTypes) {
  const auto c = withStructuralPipelining({}, {FuType::Multiplier, FuType::Divider});
  EXPECT_TRUE(c.pipelinedFus.count(FuType::Multiplier));
  EXPECT_TRUE(c.pipelinedFus.count(FuType::Divider));
  EXPECT_FALSE(c.pipelinedFus.count(FuType::Adder));
}

TEST(Structural, StageSlicesEnumerateTheDiagonal) {
  const auto s = stageSlices(3, 2);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], std::make_pair(1, 3));
  EXPECT_EQ(s[1], std::make_pair(2, 4));
}

TEST(Structural, SliceConflictIffSameStartStep) {
  // The paper's stage-expansion view and the "conflict iff equal start"
  // shortcut must agree for every start-step pair.
  for (int cycles : {2, 3, 4}) {
    for (int s1 = 1; s1 <= 6; ++s1) {
      for (int s2 = 1; s2 <= 6; ++s2) {
        const auto a = stageSlices(s1, cycles);
        const auto b = stageSlices(s2, cycles);
        bool intersect = false;
        for (const auto& x : a)
          for (const auto& y : b)
            if (x == y) intersect = true;
        EXPECT_EQ(intersect, s1 == s2) << cycles << " " << s1 << " " << s2;
      }
    }
  }
}

TEST(Functional, PartitionBoundaryIsCeilHalf) {
  EXPECT_EQ(partitionBoundary(6, 2), 4);   // ceil(8/2)
  EXPECT_EQ(partitionBoundary(7, 2), 5);   // ceil(9/2)
  EXPECT_EQ(partitionBoundary(17, 3), 10); // ceil(20/2)
}

TEST(Functional, TwoInstanceDfgValidatesAndDoubles) {
  const dfg::Dfg g = workloads::diffeq();
  const dfg::Dfg d = buildTwoInstanceDfg(g, 3);
  EXPECT_FALSE(d.validate().has_value());
  // Two copies of every real operation (instance-2 inputs became pseudo-ops).
  std::size_t muls = 0;
  for (const dfg::Node& n : d.nodes())
    if (n.kind == dfg::OpKind::Mul) ++muls;
  EXPECT_EQ(muls, 12u);
  EXPECT_EQ(d.outputs().size(), 2 * g.outputs().size());
}

TEST(Functional, SecondInstanceShiftedByLatency) {
  const dfg::Dfg g = test::addChain(3);
  const int L = 2;
  const dfg::Dfg d = buildTwoInstanceDfg(g, L);
  sched::Constraints c;
  const auto tf = computeTimeFrames(d, c);
  ASSERT_TRUE(tf.has_value());
  const auto c1i1 = d.findByName("c1_i1");
  const auto c1i2 = d.findByName("c1_i2");
  ASSERT_NE(c1i1, dfg::kNoNode);
  ASSERT_NE(c1i2, dfg::kNoNode);
  EXPECT_EQ(tf->asap(c1i2), tf->asap(c1i1) + L);  // delay chain + gate op
}

TEST(Functional, FoldedScheduleValidWhenShiftedCopiesOverlap) {
  // The folded schedule must stay conflict-free when a second instance runs
  // L steps behind: ops at steps s and s' collide across instances iff
  // s ≡ s' (mod L), which the folded occupancy already forbids.
  const dfg::Dfg g = workloads::fir8();
  const int cs = 8;
  const int L = 4;
  const auto r = runFunctionalPipelinedMfs(g, cs, L);
  ASSERT_TRUE(r.feasible) << r.error;
  const auto& s = r.mfs.schedule;
  for (dfg::NodeId a : g.operations()) {
    for (dfg::NodeId b : g.operations()) {
      if (a == b) continue;
      if (dfg::fuTypeOf(g.node(a).kind) != dfg::fuTypeOf(g.node(b).kind))
        continue;
      if (s.columnOf(a) != s.columnOf(b)) continue;
      // Same FU instance: instance-1 op a at step sa vs instance-2 op b at
      // step sb + L must not collide for any shift k*L.
      const int sa = s.stepOf(a);
      const int sb = s.stepOf(b) + L;
      EXPECT_NE((sa - 1) % L, (sb - 1) % L)
          << g.node(a).name << " vs shifted " << g.node(b).name;
    }
  }
}

TEST(Functional, ThroughputDemandGrowsAsLatencyShrinks) {
  const dfg::Dfg g = workloads::fir8();
  const auto r2 = runFunctionalPipelinedMfs(g, 8, 2);
  const auto r4 = runFunctionalPipelinedMfs(g, 8, 4);
  ASSERT_TRUE(r2.feasible && r4.feasible);
  EXPECT_GE(r2.fuCount.at(FuType::Multiplier), r4.fuCount.at(FuType::Multiplier));
  EXPECT_GE(r2.fuCount.at(FuType::Multiplier), 8 / 2);  // 8 muls every 2 steps
}

TEST(Functional, PartitionMaterializationPassesThePlainVerifier) {
  // The paper's two-instance construction, validated end to end: the folded
  // schedule is materialized as two explicitly overlapped instances of
  // DFG_double and must satisfy the *unfolded* verifier.
  for (const auto& [g, cs, L] :
       {std::tuple{workloads::fir8(), 8, 4},
        std::tuple{workloads::diffeq(), 6, 3},
        std::tuple{test::addParallel(6), 4, 2}}) {
    const auto r = pipelineByPartition(g, cs, L);
    ASSERT_TRUE(r.feasible) << g.name() << ": " << r.error;
    sched::Constraints plain;
    plain.timeSteps = cs + L;
    const auto bad = sched::verifySchedule(r.doubled, plain);
    EXPECT_TRUE(bad.empty()) << g.name() << ": "
                             << (bad.empty() ? "" : bad.front());
  }
}

TEST(Functional, PartitionAgreesWithFoldedDemand) {
  const dfg::Dfg g = workloads::fir8();
  const auto folded = runFunctionalPipelinedMfs(g, 8, 4);
  const auto part = pipelineByPartition(g, 8, 4);
  ASSERT_TRUE(folded.feasible && part.feasible);
  EXPECT_EQ(part.fuCount.at(FuType::Multiplier),
            folded.fuCount.at(FuType::Multiplier));
  EXPECT_EQ(part.boundary, partitionBoundary(8, 4));
}

TEST(Functional, PartitionRecordsInstanceOneSteps) {
  const dfg::Dfg g = workloads::diffeq();
  const auto r = pipelineByPartition(g, 6, 3);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_EQ(r.stepOfInstance1.size(), g.operations().size());
  for (const auto& [name, step] : r.stepOfInstance1) {
    EXPECT_GE(step, 1);
    EXPECT_LE(step, 6);
  }
}

TEST(Functional, InfeasibleLatencyReported) {
  // A 2-cycle multiply cannot fold at L=1 on a non-pipelined unit.
  const auto r = runFunctionalPipelinedMfs(workloads::arLattice(), 13, 1);
  EXPECT_FALSE(r.feasible);
}

}  // namespace
}  // namespace mframe::pipeline
