// The tune loop and its ingredients: cone extraction with frontier pinning,
// the criticality lattice, the analyzeSlack error channel, slowchain
// convergence, the prove gate on stitches, --jobs counter determinism, and
// golden tune --json outputs for the benchmark designs.
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "analysis/criticality/criticality.h"
#include "analysis/criticality/tune.h"
#include "analysis/timing/sta.h"
#include "analysis/validate/validate.h"
#include "celllib/ncr_like.h"
#include "core/mfs.h"
#include "dfg/parser.h"
#include "dfg/transforms.h"
#include "rtl/datapath.h"
#include "sched/slack.h"
#include "sched/stitch.h"
#include "trace/trace.h"
#include "workloads/benchmarks.h"

namespace mframe::analysis::criticality {
namespace {

/// The chaining trap of tools/designs/slowchain.dfg: three dependent adds
/// each claiming 30 ns, so the scheduler chains all three into one step at
/// --clock 100 while the physical path is far slower.
dfg::Dfg slowchain() {
  return dfg::parse(
      "dfg slowchain\n"
      "input a\ninput b\ninput c\ninput d\n"
      "op add t1 a b delay=30\n"
      "op add t2 t1 c delay=30\n"
      "op add t3 t2 d delay=30\n"
      "output result t3\n");
}

sched::Constraints chainedConstraints(double clockNs) {
  sched::Constraints c;
  c.allowChaining = true;
  c.clockNs = clockNs;
  return c;
}

// ---------------------------------------------------------------------------
// Cone extraction
// ---------------------------------------------------------------------------

TEST(ConeCut, ExtractsKHopNeighborhoodWithFrontierPins) {
  const dfg::Dfg g = slowchain();
  const dfg::NodeId t1 = g.findByName("t1");
  const dfg::NodeId t3 = g.findByName("t3");
  const dfg::ConeCut cut = dfg::extractCone(g, {t3}, 1);

  // 1 hop from t3 reaches t2; t1 stays outside and is pinned as a frontier
  // input standing in for its result.
  EXPECT_EQ(cut.coneOps, 2u);
  EXPECT_EQ(cut.toCone.count(t3), 1u);
  EXPECT_EQ(cut.toCone.count(g.findByName("t2")), 1u);
  EXPECT_EQ(cut.toCone.count(t1), 0u);
  ASSERT_EQ(cut.frontier.size(), 1u);
  EXPECT_EQ(cut.frontier[0], t1);

  const dfg::NodeId pin = cut.cone.findByName("t1");
  ASSERT_NE(pin, dfg::kNoNode);
  EXPECT_EQ(cut.cone.node(pin).kind, dfg::OpKind::Input);

  // The cut is a well-formed graph and preserves the exported output.
  EXPECT_FALSE(cut.cone.validate().has_value());
  ASSERT_EQ(cut.cone.outputs().size(), 1u);
  EXPECT_EQ(cut.cone.outputs()[0].first, cut.toCone.at(t3));
}

TEST(ConeCut, MapsConeIdsBackToFullIds) {
  const dfg::Dfg g = slowchain();
  const dfg::ConeCut cut = dfg::extractCone(g, {g.findByName("t3")}, 2);
  EXPECT_EQ(cut.coneOps, 3u);  // 2 hops reach the whole chain
  for (const auto& [full, cid] : cut.toCone) {
    ASSERT_LT(static_cast<std::size_t>(cid), cut.coneToFull.size());
    EXPECT_EQ(cut.coneToFull[cid], full);
    EXPECT_EQ(cut.cone.node(cid).name, g.node(full).name);
  }
}

TEST(ConeCut, MemberResultReadOutsideBecomesOutput) {
  const dfg::Dfg g = slowchain();
  // Cone around t1 only: t2 (a non-member) reads t1, so t1 must be exported.
  const dfg::ConeCut cut = dfg::extractCone(g, {g.findByName("t1")}, 0);
  EXPECT_EQ(cut.coneOps, 1u);
  ASSERT_EQ(cut.cone.outputs().size(), 1u);
  EXPECT_EQ(cut.cone.outputs()[0].first,
            cut.toCone.at(g.findByName("t1")));
}

TEST(ConeCut, RejectsNonOperationSeed) {
  const dfg::Dfg g = slowchain();
  EXPECT_THROW(dfg::extractCone(g, {g.findByName("a")}, 1),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Criticality lattice
// ---------------------------------------------------------------------------

TEST(Criticality, SeedsViolatingEndpointsAndDecaysBackward) {
  const dfg::Dfg g = slowchain();
  const celllib::CellLibrary lib = celllib::ncrLike();

  core::MfsOptions mo;
  mo.constraints = chainedConstraints(100.0);
  mo.constraints.timeSteps = 1;  // the trap: all three adds chained
  const core::MfsResult r = core::runMfs(g, mo);
  ASSERT_TRUE(r.feasible) << r.error;

  const rtl::Datapath dp = rtl::buildDatapath(
      g, lib, r.schedule, rtl::bindByColumns(g, lib, r.schedule));
  timing::TimingOptions to;
  to.clockNs = 100.0;
  to.clockSet = true;
  const timing::TimingReport tr = timing::analyzeTiming(dp, to);
  ASSERT_LT(tr.worstSlackNs, 0.0);

  const auto slack = sched::analyzeSlack(r.schedule, mo.constraints);
  ASSERT_TRUE(slack.has_value());
  const CriticalityResult crit = analyzeCriticality(dp, tr, *slack);

  const dfg::NodeId t1 = g.findByName("t1");
  const dfg::NodeId t3 = g.findByName("t3");
  ASSERT_FALSE(crit.seeds.empty());
  EXPECT_EQ(crit.seeds.front(), t3);  // the violating latched endpoint
  // The seed outranks its upstream producers, and scores decay backward.
  ASSERT_FALSE(crit.ranked.empty());
  EXPECT_EQ(crit.ranked.front(), t3);
  EXPECT_GT(crit.score[t3], crit.score[t1]);
  EXPECT_GT(crit.score[t1], 0.0);
  // Observed delay sees the 40 ns library adder, not the claimed 30 ns.
  EXPECT_GE(crit.observedDelayNs[t1], 40.0);
  EXPECT_FALSE(crit.widened);
}

// ---------------------------------------------------------------------------
// analyzeSlack error channel (regression: incomplete schedules were UB)
// ---------------------------------------------------------------------------

TEST(Slack, IncompleteScheduleIsAnErrorNotUb) {
  const dfg::Dfg g = slowchain();
  sched::Schedule s(g);  // nothing placed
  s.setNumSteps(3);
  std::string err;
  const auto rep = sched::analyzeSlack(s, {}, &err);
  EXPECT_FALSE(rep.has_value());
  EXPECT_NE(err.find("unplaced"), std::string::npos) << err;
}

TEST(Slack, GraphlessScheduleIsAnError) {
  std::string err;
  const auto rep = sched::analyzeSlack(sched::Schedule{}, {}, &err);
  EXPECT_FALSE(rep.has_value());
  EXPECT_NE(err.find("no graph"), std::string::npos) << err;
}

TEST(Slack, RenderJsonCarriesSchemaField) {
  const dfg::Dfg g = slowchain();
  core::MfsOptions mo;
  mo.constraints.timeSteps = 3;
  const core::MfsResult r = core::runMfs(g, mo);
  ASSERT_TRUE(r.feasible);
  const auto rep = sched::analyzeSlack(r.schedule, mo.constraints);
  ASSERT_TRUE(rep.has_value());
  const std::string json = rep->renderJson(g);
  EXPECT_NE(json.find("\"schema\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"ops\": ["), std::string::npos);
}

// ---------------------------------------------------------------------------
// The tune loop
// ---------------------------------------------------------------------------

TuneOptions slowchainOptions() {
  TuneOptions opt;
  opt.constraints = chainedConstraints(100.0);
  opt.budget = 6;
  opt.jobs = 1;
  return opt;
}

TEST(Tune, SlowchainConvergesWithinBudget) {
  const dfg::Dfg g = slowchain();
  const celllib::CellLibrary lib = celllib::ncrLike();
  const TuneResult r = tuneDesign(g, lib, slowchainOptions());

  EXPECT_TRUE(r.converged) << r.error;
  EXPECT_LT(r.initialWorstSlackNs, 0.0);   // the trap fired...
  EXPECT_GE(r.worstSlackNs, 0.0);          // ...and the loop fixed it
  EXPECT_GE(r.iterations, 1);
  EXPECT_LE(r.iterations, 6);
  EXPECT_GE(r.steps, 2);                   // the 1-step chain had to split
  ASSERT_FALSE(r.trail.empty());
  EXPECT_EQ(r.trail.back().worstSlackNs, r.worstSlackNs);
  EXPECT_TRUE(r.slackRan);
}

TEST(Tune, AcceptedScheduleIsProvenEquivalent) {
  const dfg::Dfg g = slowchain();
  const celllib::CellLibrary lib = celllib::ncrLike();
  const TuneResult r = tuneDesign(g, lib, slowchainOptions());
  ASSERT_TRUE(r.converged) << r.error;
  // The final datapath must still prove — tune may only move operations,
  // never change what the design computes.
  EXPECT_FALSE(proveDatapath(r.datapath).hasErrors());
}

TEST(Tune, ProveGateRefusesCorruptedStitch) {
  const dfg::Dfg g = slowchain();
  const celllib::CellLibrary lib = celllib::ncrLike();

  TuneOptions opt = slowchainOptions();
  // Corrupt the first accepted candidate after stitch verification: swapping
  // the steps of t1 and t3 inverts the dependence chain, which the
  // translation validator (or datapath construction) must refuse. The hook
  // is one-shot, so the loop recovers with the next candidate.
  opt.stitchMutatorForTest = [&](sched::Schedule& s) {
    const dfg::NodeId t1 = g.findByName("t1");
    const dfg::NodeId t3 = g.findByName("t3");
    const int s1 = s.stepOf(t1);
    const int c1 = s.columnOf(t1);
    s.place(t1, s.stepOf(t3), s.columnOf(t3));
    s.place(t3, s1, c1);
  };

  trace::enableCounters(true);
  trace::resetCounters();
  const TuneResult r = tuneDesign(g, lib, opt);
  const std::uint64_t rejected =
      trace::counterValue(trace::Counter::TuneRejectedStitches);
  trace::enableCounters(false);

  EXPECT_GE(rejected, 1u);  // the corrupted stitch was refused
  ASSERT_FALSE(r.trail.empty());
  EXPECT_GE(r.trail.front().rejected, 1);
  EXPECT_TRUE(r.converged) << r.error;  // ...and tune still got there
  EXPECT_FALSE(proveDatapath(r.datapath).hasErrors());
}

TEST(Tune, CountersAndJsonBitIdenticalAcrossJobs) {
  const dfg::Dfg g = slowchain();
  const celllib::CellLibrary lib = celllib::ncrLike();

  auto run = [&](int jobs) {
    TuneOptions opt = slowchainOptions();
    opt.jobs = jobs;
    trace::enableCounters(true);
    trace::resetCounters();
    const TuneResult r = tuneDesign(g, lib, opt);
    auto counters = trace::counterSnapshot();
    trace::enableCounters(false);
    return std::make_pair(r.renderJson(g), counters);
  };

  const auto [json1, counters1] = run(1);
  const auto [json8, counters8] = run(8);
  EXPECT_EQ(json1, json8);
  EXPECT_EQ(counters1, counters8);
}

TEST(Tune, AlreadyMeetingClockConvergesWithoutIterating) {
  const dfg::Dfg g = slowchain();
  const celllib::CellLibrary lib = celllib::ncrLike();
  TuneOptions opt = slowchainOptions();
  opt.constraints.clockNs = 1000.0;  // plenty of period: nothing to fix
  const TuneResult r = tuneDesign(g, lib, opt);
  EXPECT_TRUE(r.converged) << r.error;
  EXPECT_EQ(r.iterations, 0);
  EXPECT_TRUE(r.trail.empty());
}

// ---------------------------------------------------------------------------
// Golden `tune --json` outputs over the benchmark designs
// ---------------------------------------------------------------------------

TuneResult tuneForGolden(const dfg::Dfg& g) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  TuneOptions opt;
  opt.constraints = chainedConstraints(200.0);
  opt.budget = 4;
  opt.jobs = 1;
  return tuneDesign(g, lib, opt);
}

std::string tuneGoldenPath(const std::string& name) {
  return std::string(MFRAME_TESTS_DIR) + "/golden/tune_" + name + ".json";
}

TEST(TuneGolden, JsonIsDeterministic) {
  const dfg::Dfg g = workloads::diffeq();
  EXPECT_EQ(tuneForGolden(g).renderJson(g), tuneForGolden(g).renderJson(g));
}

TEST(TuneGolden, BenchmarksMatchCommittedJson) {
  const dfg::Dfg designs[] = {
      workloads::tseng(),    workloads::chained(),   workloads::diffeq(),
      workloads::fir8(),     workloads::arLattice(), workloads::ewfLike(),
      workloads::fdctLike(), workloads::iirBiquads()};
  const bool update = std::getenv("MFRAME_UPDATE_GOLDEN") != nullptr;
  for (const dfg::Dfg& g : designs) {
    const std::string json = tuneForGolden(g).renderJson(g);
    const std::string path = tuneGoldenPath(g.name());
    if (update) {
      std::ofstream out(path);
      ASSERT_TRUE(out.good()) << path;
      out << json;
      continue;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing golden " << path
                           << " (regenerate with MFRAME_UPDATE_GOLDEN=1)";
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(json, ss.str()) << g.name();
  }
}

}  // namespace
}  // namespace mframe::analysis::criticality
