// Static timing analysis: the register-to-register path model (clk-to-q,
// bus hops, mux trees, ALU settle, setup), the TIM diagnostic family, and
// the end-to-end `analyze` orchestration including the slowchain trap.
#include "analysis/timing/sta.h"

#include <gtest/gtest.h>

#include "analysis/analyze.h"
#include "analysis/rules.h"
#include "celllib/ncr_like.h"
#include "core/mfs.h"
#include "dfg/builder.h"
#include "dfg/parser.h"
#include "rtl/datapath.h"
#include "workloads/benchmarks.h"

namespace mframe::analysis::timing {
namespace {

const celllib::CellLibrary& lib() {
  static const celllib::CellLibrary l = celllib::ncrLike();
  return l;
}

/// The slowchain fixture, in code: three dependent adds whose optimistic
/// `delay=30` overrides let the scheduler chain them into one 100 ns step,
/// while the library's 40 ns adder plus interconnect overheads cannot make
/// that clock.
dfg::Dfg slowChain() {
  dfg::Builder b("slowchain");
  const auto a = b.input("a");
  const auto bb = b.input("b");
  const auto c = b.input("c");
  const auto d = b.input("d");
  const auto t1 = b.op(dfg::OpKind::Add, {a, bb}, "t1", 1, 30.0);
  const auto t2 = b.op(dfg::OpKind::Add, {t1, c}, "t2", 1, 30.0);
  const auto t3 = b.op(dfg::OpKind::Add, {t2, d}, "t3", 1, 30.0);
  b.output(t3, "result");
  return std::move(b).build();
}

rtl::Datapath synthesize(const dfg::Dfg& g, const sched::Constraints& c) {
  core::MfsOptions opts;
  opts.constraints = c;
  const core::MfsResult r = core::runMfs(g, opts);
  EXPECT_TRUE(r.feasible) << r.error;
  return rtl::buildDatapath(g, lib(), r.schedule,
                            rtl::bindByColumns(g, lib(), r.schedule));
}

TimingReport analyzeAt(const dfg::Dfg& g, const sched::Constraints& c,
                       double clockNs, bool clockSet = true) {
  TimingOptions to;
  to.clockNs = clockNs;
  to.clockSet = clockSet;
  return analyzeTiming(synthesize(g, c), to);
}

bool fires(const LintReport& r, std::string_view rule) {
  return !r.byRule(rule).empty();
}

// ---------------------------------------------------------------------------
// Path model
// ---------------------------------------------------------------------------

TEST(Sta, SingleAddPathSumsAllComponents) {
  dfg::Builder b("one");
  const auto s = b.add(b.input("x"), b.input("y"), "s");
  b.output(s, "o");
  const dfg::Dfg g = std::move(b).build();

  sched::Constraints c;
  c.timeSteps = 1;
  const TimingReport r = analyzeAt(g, c, 100.0);
  ASSERT_EQ(r.endpoints.size(), 1u);
  const EndpointTiming& e = r.endpoints[0];
  // Inputs are registered by this binder: clk-to-q 1 + bus 1.5 + mux 0
  // (single source) + add 40 + out bus 1.5 + setup 1 = 45 ns.
  EXPECT_DOUBLE_EQ(e.arrivalNs, 45.0);
  EXPECT_DOUBLE_EQ(e.requiredNs, 100.0);
  EXPECT_DOUBLE_EQ(e.slackNs, 55.0);
  EXPECT_EQ(e.chainDepth, 1);
  EXPECT_DOUBLE_EQ(r.worstSlackNs, 55.0);
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(Sta, ChainedAddsAccumulateAluDelays) {
  const dfg::Dfg g = slowChain();
  sched::Constraints c;
  c.timeSteps = 1;
  c.allowChaining = true;
  c.clockNs = 100.0;
  const TimingReport r = analyzeAt(g, c, 100.0);
  EXPECT_EQ(r.maxChainDepth, 3);
  EXPECT_LT(r.worstSlackNs, 0.0);
  EXPECT_EQ(r.worstOp, g.findByName("t3"));
  // Three library adders alone are 120 ns before any interconnect.
  double worstArrival = 0;
  for (const EndpointTiming& e : r.endpoints)
    worstArrival = std::max(worstArrival, e.arrivalNs);
  EXPECT_GT(worstArrival, 120.0);
}

TEST(Sta, ProvenanceWalksMuxAluBusRegister) {
  sched::Constraints c;
  c.timeSteps = 1;
  c.allowChaining = true;
  c.clockNs = 100.0;
  const TimingReport r = analyzeAt(slowChain(), c, 100.0);

  const auto viols = r.diagnostics.byRule(kTimClockViolation);
  ASSERT_FALSE(viols.empty());
  const Diagnostic& d = viols.front();
  ASSERT_FALSE(d.provenance.empty());
  const std::string joined = [&] {
    std::string s;
    for (const std::string& line : d.provenance) s += line + "\n";
    return s;
  }();
  // The full path in order: a mux tree, the ALU computing through it, a bus
  // hop carrying the result onward, and the final register latch. Each find
  // starts after the previous hit, so success implies the ordering.
  const std::size_t mux = joined.find("mux:");
  ASSERT_NE(mux, std::string::npos) << joined;
  const std::size_t alu = joined.find("computes", mux);
  ASSERT_NE(alu, std::string::npos) << joined;
  const std::size_t bus = joined.find("bus:", alu);
  ASSERT_NE(bus, std::string::npos) << joined;
  const std::size_t reg = joined.find("register", bus);
  ASSERT_NE(reg, std::string::npos) << joined;
  EXPECT_NE(joined.find("latches", reg), std::string::npos) << joined;
}

TEST(Sta, MulticycleOpsGetMultipleClockPeriods) {
  dfg::Builder b("mc");
  const auto m = b.mul(b.input("x"), b.input("y"), "m", 2);  // 2-cycle mul
  b.output(m, "o");
  const dfg::Dfg g = std::move(b).build();

  sched::Constraints c;
  c.timeSteps = 2;
  // 160 ns multiplier + overheads in two 90 ns cycles: fits.
  const TimingReport ok = analyzeAt(g, c, 90.0);
  EXPECT_FALSE(fires(ok.diagnostics, kTimMulticycleUnderAlloc));
  EXPECT_GE(ok.worstSlackNs, 0.0);
  // The same datapath at 70 ns: 2 * 70 < 160, under-allocated.
  const TimingReport bad = analyzeAt(g, c, 70.0);
  EXPECT_TRUE(fires(bad.diagnostics, kTimMulticycleUnderAlloc));
  EXPECT_FALSE(fires(bad.diagnostics, kTimClockViolation));
  EXPECT_LT(bad.worstSlackNs, 0.0);
}

// ---------------------------------------------------------------------------
// TIM diagnostics
// ---------------------------------------------------------------------------

TEST(TimRules, Tim001OnlyWhenClockIsSet) {
  sched::Constraints c;
  c.timeSteps = 1;
  c.allowChaining = true;
  c.clockNs = 100.0;
  const TimingReport tight = analyzeAt(slowChain(), c, 100.0);
  EXPECT_TRUE(fires(tight.diagnostics, kTimClockViolation));
  EXPECT_EQ(findRule(kTimClockViolation)->severity, Severity::Error);

  // Same datapath, no --clock: advisory TIM002 instead of an error.
  const TimingReport free = analyzeAt(slowChain(), c, 100.0, false);
  EXPECT_FALSE(fires(free.diagnostics, kTimClockViolation));
  EXPECT_TRUE(fires(free.diagnostics, kTimUnconstrainedChain));
  EXPECT_EQ(free.diagnostics.byRule(kTimUnconstrainedChain).size(), 1u)
      << "one advisory per design, at the deepest chain";
}

TEST(TimRules, Tim002SilentWithoutChaining) {
  sched::Constraints c;
  c.timeSteps = 3;
  const TimingReport r = analyzeAt(slowChain(), c, 100.0, false);
  EXPECT_EQ(r.maxChainDepth, 1);
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(TimRules, Tim004FlagsNearCriticalPaths) {
  dfg::Builder b("near");
  const auto s = b.add(b.input("x"), b.input("y"), "s");
  b.output(s, "o");
  const dfg::Dfg g = std::move(b).build();
  sched::Constraints c;
  c.timeSteps = 1;
  // Arrival is 44 ns (see SingleAddPathSumsAllComponents). At a 48 ns clock
  // the path makes timing but sits above the 90% guardband.
  const TimingReport r = analyzeAt(g, c, 48.0);
  EXPECT_FALSE(fires(r.diagnostics, kTimClockViolation));
  EXPECT_TRUE(fires(r.diagnostics, kTimNearCritical));
  // At 60 ns there is comfortable margin.
  const TimingReport roomy = analyzeAt(g, c, 60.0);
  EXPECT_TRUE(roomy.diagnostics.empty());
}

// ---------------------------------------------------------------------------
// analyzeDesign orchestration
// ---------------------------------------------------------------------------

TEST(AnalyzeDesign, SlowchainTrapEndToEnd) {
  AnalyzeOptions opts;
  opts.steps = 1;
  opts.constraints.allowChaining = true;
  opts.constraints.clockNs = 100.0;
  opts.clockSet = true;
  const AnalyzeResult r = analyzeDesign(slowChain(), lib(), opts);
  ASSERT_TRUE(r.timingRan) << r.timingSkip;
  EXPECT_TRUE(fires(r.report, kTimClockViolation));
  EXPECT_TRUE(r.report.hasErrors());
  EXPECT_NE(r.renderText(slowChain()).find("TIM001"), std::string::npos);
}

/// slowchain.dfg in text form, with the delay override value pluggable.
std::string slowChainText(const std::string& delay) {
  return "dfg slowchain\ninput a\ninput b\ninput c\ninput d\n"
         "op add t1 a b delay=" + delay + "\n"
         "op add t2 t1 c delay=" + delay + "\n"
         "op add t3 t2 d delay=" + delay + "\n"
         "output result t3\n";
}

TEST(AnalyzeDesign, MalformedDelayNoLongerHidesTim001) {
  // The honest slowchain file: optimistic delay=30 overrides chain all
  // three adds into one 100 ns step and the STA refutes it with TIM001.
  AnalyzeOptions opts;
  opts.steps = 1;
  opts.constraints.allowChaining = true;
  opts.constraints.clockNs = 100.0;
  opts.clockSet = true;
  const dfg::Dfg honest = dfg::parse(slowChainText("30"));
  const AnalyzeResult r = analyzeDesign(honest, lib(), opts);
  ASSERT_TRUE(r.timingRan) << r.timingSkip;
  EXPECT_TRUE(fires(r.report, kTimClockViolation));

  // A typo'd override used to strtod to a silent 0.0 and keep going — the
  // schedule, the datapath, and the TIM verdict then described a graph the
  // author never wrote, with no diagnostic anywhere. Strict parsing (the
  // analyze/schedule/synth path) now refuses the file outright...
  EXPECT_THROW(dfg::parse(slowChainText("3O")), dfg::DfgError);
  EXPECT_THROW(dfg::parse(slowChainText("abc")), dfg::DfgError);

  // ...and lenient parsing (the lint path) records one issue per bad
  // override and leaves delayNs unset rather than zeroed, so `mframe lint`
  // reports the typo instead of blessing the wrong timing story.
  std::vector<dfg::ParseIssue> issues;
  const dfg::Dfg typod = dfg::parseLenient(slowChainText("3O"), issues);
  ASSERT_EQ(issues.size(), 3u);
  EXPECT_NE(issues[0].message.find("bad delay value '3O'"), std::string::npos);
  EXPECT_LT(typod.node(typod.findByName("t1")).delayNs, 0.0);
}

TEST(AnalyzeDesign, CleanBenchmarkHasNoTimingFindings) {
  AnalyzeOptions opts;
  opts.constraints.clockNs = 200.0;
  opts.clockSet = true;
  const AnalyzeResult r = analyzeDesign(workloads::chained(), lib(), opts);
  ASSERT_TRUE(r.timingRan) << r.timingSkip;
  EXPECT_TRUE(r.report.empty()) << r.report.renderText();
  EXPECT_GT(r.timing.endpoints.size(), 0u);
  EXPECT_GE(r.timing.worstSlackNs, 0.0);
}

TEST(AnalyzeDesign, EmptyDesignSkipsTimingGracefully) {
  dfg::Builder b("leafy");
  b.output(b.input("x"), "o");
  const AnalyzeResult r =
      analyzeDesign(std::move(b).build(), lib(), AnalyzeOptions{});
  EXPECT_FALSE(r.timingRan);
  EXPECT_FALSE(r.timingSkip.empty());
}

TEST(AnalyzeDesign, EndpointOrderIsDeterministic) {
  AnalyzeOptions opts;
  opts.constraints.clockNs = 200.0;
  opts.clockSet = true;
  const AnalyzeResult a = analyzeDesign(workloads::diffeq(), lib(), opts);
  const AnalyzeResult b = analyzeDesign(workloads::diffeq(), lib(), opts);
  ASSERT_EQ(a.timing.endpoints.size(), b.timing.endpoints.size());
  for (std::size_t i = 0; i < a.timing.endpoints.size(); ++i) {
    EXPECT_EQ(a.timing.endpoints[i].op, b.timing.endpoints[i].op);
    EXPECT_DOUBLE_EQ(a.timing.endpoints[i].arrivalNs,
                     b.timing.endpoints[i].arrivalNs);
  }
  EXPECT_EQ(a.renderText(workloads::diffeq()),
            b.renderText(workloads::diffeq()));
}

}  // namespace
}  // namespace mframe::analysis::timing
