// Coverage for the reference-free RTL audit: FSM reachability (witness
// paths, halts, dead states), every AUD rule's positive (a seeded .bind
// defect fires it with provenance) and negative (every benchmark x every
// scheduler audits clean), jobs-determinism of report and audit.* counters,
// `next` statement semantics, the strict .bind numeric readers, and the
// golden `audit --json` documents for the benchmark suite.
#include "analysis/audit/audit.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "analysis/rules.h"
#include "analysis/validate/bind_io.h"
#include "baseline/asap_sched.h"
#include "baseline/fds.h"
#include "celllib/ncr_like.h"
#include "core/mfs.h"
#include "core/mfsa.h"
#include "helpers.h"
#include "rtl/controller.h"
#include "rtl/datapath.h"
#include "rtl/microcode.h"
#include "trace/trace.h"
#include "workloads/benchmarks.h"

namespace mframe::analysis::audit {
namespace {

bool fires(const LintReport& r, std::string_view rule) {
  return !r.byRule(rule).empty();
}

/// The clean hand binding of workloads::chained() shared with the validator
/// tests: the t-chain serialised on ALU0, the u-chain on ALU1, six steps.
constexpr std::string_view kChainedBinding = R"(bind chained steps=6
alu 0 addsub16
alu 1 addsub16
op t1 step=1 alu=0
op t2 step=2 alu=0
op t3 step=3 alu=0
op t4 step=4 alu=0
op t5 step=5 alu=0
op t6 step=6 alu=0
op u1 step=1 alu=1
op u2 step=2 alu=1
)";

celllib::CellLibrary tinyLib() {
  celllib::CellLibrary lib;
  lib.addModule({"addsub16",
                 {dfg::FuType::Adder, dfg::FuType::Subtractor},
                 4400.0,
                 41.0,
                 1});
  lib.setRegCost(1800.0);
  lib.setMuxCosts({0.0, 0.0, 620.0, 950.0, 1260.0});
  return lib;
}

BoundDesign bindChained(std::string_view extra = "") {
  const dfg::Dfg g = workloads::chained();
  std::string err;
  const auto b = parseBindDesign(
      g, tinyLib(), std::string(kChainedBinding) + std::string(extra), &err);
  EXPECT_TRUE(b.has_value()) << err;
  return *b;
}

AuditResult auditBound(const BoundDesign& b, int jobs = 1) {
  AuditOptions opt;
  opt.jobs = jobs;
  return auditDesign(b.datapath, b.fsm, b.rom, opt);
}

AuditResult auditDatapath(const rtl::Datapath& d, int jobs = 1) {
  const rtl::ControllerFsm fsm = rtl::buildController(d);
  const rtl::MicrocodeRom rom = rtl::buildMicrocode(d, fsm);
  AuditOptions opt;
  opt.jobs = jobs;
  return auditDesign(d, fsm, rom, opt);
}

// ---------------------------------------------------------------------------
// Reachability
// ---------------------------------------------------------------------------

TEST(Reach, LinearFallbackReachesEveryState) {
  rtl::ControllerFsm fsm;
  fsm.numSteps = 4;  // no edges: implicit chain 0 -> 1 -> ... -> 4 -> halt
  const ReachResult r = reachSteps(fsm);
  EXPECT_EQ(r.numStates, 5);
  EXPECT_EQ(r.reachableCount(), 5);
  EXPECT_TRUE(r.isTerminal(4));
  EXPECT_FALSE(r.isTerminal(2));
  EXPECT_EQ(r.pathFromReset(4), (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(r.preds[3], (std::vector<int>{2}));
}

TEST(Reach, SkippedStateIsUnreachable) {
  rtl::ControllerFsm fsm;
  fsm.numSteps = 4;
  fsm.edges = {{0, 1, dfg::kNoNode},
               {1, 3, dfg::kNoNode},  // skips state 2
               {2, 3, dfg::kNoNode},
               {3, 4, dfg::kNoNode},
               {4, 0, dfg::kNoNode}};
  const ReachResult r = reachSteps(fsm);
  EXPECT_EQ(r.reachableCount(), 4);
  EXPECT_FALSE(r.reachable[2]);
  EXPECT_TRUE(r.pathFromReset(2).empty());
  // state 2's edge into 3 exists but 2 is dead, so it is not a recorded pred.
  EXPECT_EQ(r.preds[3], (std::vector<int>{1}));
  EXPECT_TRUE(r.isTerminal(4));  // to == 0 is halt, not an out-edge
}

TEST(Reach, BranchTakesBothArms) {
  rtl::ControllerFsm fsm;
  fsm.numSteps = 3;
  fsm.edges = {{0, 1, dfg::kNoNode},
               {1, 2, dfg::kNoNode},
               {1, 3, dfg::kNoNode},  // branch: both arms symbolically taken
               {2, 3, dfg::kNoNode},
               {3, 0, dfg::kNoNode}};
  const ReachResult r = reachSteps(fsm);
  EXPECT_EQ(r.reachableCount(), 4);
  EXPECT_EQ(r.succs[1], (std::vector<int>{2, 3}));
  // BFS discovers 3 via the short arm; both preds are recorded.
  EXPECT_EQ(r.pathFromReset(3), (std::vector<int>{0, 1, 3}));
  EXPECT_EQ(r.preds[3], (std::vector<int>{1, 2}));
}

// ---------------------------------------------------------------------------
// Negatives: every benchmark x every synthesis path audits clean
// ---------------------------------------------------------------------------

struct Bench {
  const char* name;
  dfg::Dfg graph;
};

std::vector<Bench> auditSuite() {
  std::vector<Bench> v;
  v.push_back({"tseng", workloads::tseng()});
  v.push_back({"chained", workloads::chained()});
  v.push_back({"diffeq", workloads::diffeq()});
  v.push_back({"fir8", workloads::fir8()});
  v.push_back({"ar", workloads::arLattice()});
  v.push_back({"ewf", workloads::ewfLike()});
  v.push_back({"fdct", workloads::fdctLike()});
  v.push_back({"iir", workloads::iirBiquads()});
  return v;
}

/// Schedule -> bindByColumns -> buildDatapath -> audit; clean = no findings.
void expectClean(const dfg::Dfg& g, const sched::Schedule& s,
                 const std::string& what) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  const rtl::Datapath d =
      rtl::buildDatapath(g, lib, s, rtl::bindByColumns(g, lib, s));
  const AuditResult r = auditDatapath(d);
  EXPECT_TRUE(r.clean()) << what << ":\n" << r.report.renderText();
  EXPECT_EQ(r.reach.reachableCount(), r.reach.numStates) << what;
}

TEST(AuditAccept, MfsaOnEveryBenchmark) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  for (const Bench& b : auditSuite()) {
    const auto asap = baseline::runAsap(b.graph, {});
    ASSERT_TRUE(asap.feasible) << b.name;
    core::MfsaOptions o;
    o.constraints.timeSteps = asap.steps;
    const auto r = core::runMfsa(b.graph, lib, o);
    ASSERT_TRUE(r.feasible) << b.name << ": " << r.error;
    const AuditResult a = auditDatapath(r.datapath);
    EXPECT_TRUE(a.clean()) << b.name << " (mfsa):\n" << a.report.renderText();
  }
}

TEST(AuditAccept, MfsOnEveryBenchmark) {
  for (const Bench& b : auditSuite()) {
    const auto asap = baseline::runAsap(b.graph, {});
    ASSERT_TRUE(asap.feasible) << b.name;
    core::MfsOptions o;
    o.constraints.timeSteps = asap.steps;
    const auto r = core::runMfs(b.graph, o);
    ASSERT_TRUE(r.feasible) << b.name << ": " << r.error;
    expectClean(b.graph, r.schedule, std::string(b.name) + " (mfs)");
  }
}

TEST(AuditAccept, AsapOnEveryBenchmark) {
  for (const Bench& b : auditSuite()) {
    const auto asap = baseline::runAsap(b.graph, {});
    ASSERT_TRUE(asap.feasible) << b.name;
    expectClean(b.graph, asap.schedule, std::string(b.name) + " (asap)");
  }
}

TEST(AuditAccept, ForceDirectedOnEveryBenchmark) {
  for (const Bench& b : auditSuite()) {
    const auto asap = baseline::runAsap(b.graph, {});
    ASSERT_TRUE(asap.feasible) << b.name;
    sched::Constraints c;
    c.timeSteps = asap.steps;
    const auto r = baseline::runForceDirected(b.graph, c);
    ASSERT_TRUE(r.feasible) << b.name << ": " << r.error;
    expectClean(b.graph, r.schedule, std::string(b.name) + " (fds)");
  }
}

TEST(AuditAccept, CleanBindingIsSilentForEveryAudRule) {
  const AuditResult r = auditBound(bindChained());
  for (const RuleInfo& rule : allRules())
    if (rule.family == "aud") {
      EXPECT_FALSE(fires(r.report, rule.id)) << rule.id;
    }
  EXPECT_TRUE(r.clean()) << r.report.renderText();
  EXPECT_EQ(r.reach.reachableCount(), 7);
  EXPECT_GT(r.rbwChecks, 0u);
}

// ---------------------------------------------------------------------------
// Positives: each AUD rule fires on its seeded defect, with provenance
// ---------------------------------------------------------------------------

TEST(AuditReject, DeadStateFiresUnreachable) {
  // State 2 jumps straight to 4: state 3 (which issues t3 and latches its
  // result) can never execute.
  const AuditResult r = auditBound(bindChained("next 2 4\n"));
  ASSERT_TRUE(fires(r.report, kAudUnreachable)) << r.report.renderText();
  const Diagnostic d = r.report.byRule(kAudUnreachable).front();
  EXPECT_EQ(d.severity, Severity::Error);  // the dead row does real work
  EXPECT_EQ(d.loc.step, 3);
  bool mentionsIssue = false;
  for (const std::string& p : d.provenance)
    mentionsIssue = mentionsIssue || p.find("t3") != std::string::npos;
  EXPECT_TRUE(mentionsIssue) << d.toText();
  EXPECT_FALSE(r.reach.reachable[3]);
  // The skipped write surfaces downstream as read-before-write and taints
  // the t-chain through to the output.
  EXPECT_TRUE(fires(r.report, kAudReadBeforeWrite));
  EXPECT_TRUE(fires(r.report, kAudXPropagation));
}

TEST(AuditReject, EmptyDeadRowIsOnlyAWarning) {
  // Steps extended to 7; no op or load lives in row 7, and state 6 halts
  // early so row 7 is also unreachable — dead, but harmless.
  std::string text{kChainedBinding};
  const std::string from = "steps=6";
  text.replace(text.find(from), from.size(), "steps=7");
  const dfg::Dfg g = workloads::chained();
  std::string err;
  const auto b = parseBindDesign(g, tinyLib(), text + "next 6 0\n", &err);
  ASSERT_TRUE(b.has_value()) << err;
  const AuditResult r = auditBound(*b);
  ASSERT_TRUE(fires(r.report, kAudUnreachable)) << r.report.renderText();
  EXPECT_EQ(r.report.byRule(kAudUnreachable).front().severity,
            Severity::Warning);
}

TEST(AuditReject, ResetBranchSkippingWritesFiresReadBeforeWrite) {
  // Besides the normal entry into state 1, reset can jump straight to
  // state 2 — every state stays reachable, but on the 0 -> 2 path t2 reads
  // t1's register before anything wrote it.
  const AuditResult r = auditBound(bindChained("next 0 1\nnext 0 2\n"));
  EXPECT_EQ(r.reach.reachableCount(), r.reach.numStates);
  EXPECT_FALSE(fires(r.report, kAudUnreachable));
  ASSERT_TRUE(fires(r.report, kAudReadBeforeWrite)) << r.report.renderText();
  const Diagnostic d = r.report.byRule(kAudReadBeforeWrite).front();
  EXPECT_EQ(d.loc.step, 2);
  bool hasWitness = false;
  for (const std::string& p : d.provenance)
    hasWitness = hasWitness || p.find("0 -> 2") != std::string::npos;
  EXPECT_TRUE(hasWitness) << d.toText();
  // The X taints the chain all the way to the primary outputs.
  EXPECT_TRUE(fires(r.report, kAudXPropagation));
}

TEST(AuditReject, DoubleIssueFiresBusContention) {
  // u1 forced onto ALU0 alongside t1: both issue in step 1 and drive the
  // ALU's output line at once.
  std::string text{kChainedBinding};
  const std::string from = "op u1 step=1 alu=1";
  text.replace(text.find(from), from.size(), "op u1 step=1 alu=0");
  const dfg::Dfg g = workloads::chained();
  std::string err;
  const auto b = parseBindDesign(g, tinyLib(), text, &err);
  ASSERT_TRUE(b.has_value()) << err;
  const AuditResult r = auditBound(*b);
  ASSERT_TRUE(fires(r.report, kAudBusContention)) << r.report.renderText();
  const Diagnostic d = r.report.byRule(kAudBusContention).front();
  EXPECT_EQ(d.loc.step, 1);
  EXPECT_NE(d.message.find("2 concurrent issues"), std::string::npos)
      << d.message;
}

TEST(AuditReject, DeadRowLeavesDeadMuxInputs) {
  // With state 3 dead, the mux inputs that only step 3 ever selected are
  // never selected on any reachable path.
  const AuditResult r = auditBound(bindChained("next 2 4\n"));
  ASSERT_TRUE(fires(r.report, kAudDeadMuxInput)) << r.report.renderText();
  EXPECT_EQ(r.report.byRule(kAudDeadMuxInput).front().severity,
            Severity::Warning);
}

TEST(AuditReject, SharedRegisterFiresWriteClobber) {
  // t1 and u1 forced into register 0: both latch at the end of step 1.
  const AuditResult r = auditBound(bindChained("reg t1 0\nreg u1 0\n"));
  ASSERT_TRUE(fires(r.report, kAudWriteClobber)) << r.report.renderText();
  const Diagnostic d = r.report.byRule(kAudWriteClobber).front();
  EXPECT_EQ(d.loc.step, 1);
  EXPECT_NE(d.message.find("2 concurrent values"), std::string::npos)
      << d.message;
}

TEST(AuditReject, UndefinedOutputFiresXPropagation) {
  const AuditResult r = auditBound(bindChained("next 0 1\nnext 0 2\n"));
  ASSERT_TRUE(fires(r.report, kAudXPropagation)) << r.report.renderText();
  // Both primary outputs of chained (y and z) sit downstream of the taint.
  EXPECT_EQ(r.report.byRule(kAudXPropagation).size(), 2u);
}

// ---------------------------------------------------------------------------
// Determinism: jobs must not change the report or the counters
// ---------------------------------------------------------------------------

TEST(AuditDeterminism, ReportAndCountersAreJobsInvariant) {
  const dfg::Dfg g = workloads::ewfLike();
  static const celllib::CellLibrary lib = celllib::ncrLike();
  const auto asap = baseline::runAsap(g, {});
  ASSERT_TRUE(asap.feasible);
  const rtl::Datapath d = rtl::buildDatapath(
      g, lib, asap.schedule, rtl::bindByColumns(g, lib, asap.schedule));

  trace::enableCounters(true);
  trace::resetCounters();
  const AuditResult one = auditDatapath(d, 1);
  const auto countersOne = trace::counterSnapshot();

  trace::resetCounters();
  const AuditResult eight = auditDatapath(d, 8);
  const auto countersEight = trace::counterSnapshot();
  trace::enableCounters(false);

  EXPECT_EQ(one.report.renderText(), eight.report.renderText());
  EXPECT_EQ(one.rbwChecks, eight.rbwChecks);
  EXPECT_EQ(countersOne, countersEight);
}

TEST(AuditDeterminism, FindingsKeepStepOrderUnderJobs) {
  const BoundDesign b = bindChained("next 2 4\n");
  const AuditResult one = auditBound(b, 1);
  const AuditResult eight = auditBound(b, 8);
  ASSERT_EQ(one.report.size(), eight.report.size());
  EXPECT_EQ(one.report.renderText(), eight.report.renderText());
}

TEST(AuditCounters, TallyReachableStatesChecksAndFindings) {
  trace::enableCounters(true);
  trace::resetCounters();
  const AuditResult r = auditBound(bindChained("next 2 4\n"));
  EXPECT_EQ(trace::counterValue(trace::Counter::AuditReachableStates),
            static_cast<std::uint64_t>(r.reach.reachableCount()));
  EXPECT_EQ(trace::counterValue(trace::Counter::AuditRbwChecks), r.rbwChecks);
  EXPECT_EQ(trace::counterValue(trace::Counter::AuditFindings),
            static_cast<std::uint64_t>(r.report.size()));
  trace::enableCounters(false);
}

// ---------------------------------------------------------------------------
// `next` statement semantics
// ---------------------------------------------------------------------------

TEST(BindNext, FirstNextReplacesLinearEdgeLaterOnesAppend) {
  const BoundDesign replaced = bindChained("next 2 4\n");
  EXPECT_EQ(replaced.fsm.successorsOf(2), (std::vector<int>{4}));
  const BoundDesign branched = bindChained("next 0 1\nnext 0 2\n");
  EXPECT_EQ(branched.fsm.successorsOf(0), (std::vector<int>{1, 2}));
}

TEST(BindNext, ZeroTargetHalts) {
  const BoundDesign b = bindChained("next 3 0\n");
  EXPECT_TRUE(b.fsm.successorsOf(3).empty());
}

TEST(BindNext, CondAnnotatesTheEdge) {
  const dfg::Dfg g = workloads::chained();
  const BoundDesign b = bindChained("next 2 3 cond=t1\n");
  bool found = false;
  for (const rtl::StepEdge& e : b.fsm.edges)
    if (e.from == 2 && e.to == 3) {
      found = true;
      EXPECT_EQ(e.cond, g.findByName("t1"));
    }
  EXPECT_TRUE(found);
}

TEST(BindNext, RejectsMalformedTransfers) {
  const dfg::Dfg g = workloads::chained();
  const std::string base{kChainedBinding};
  std::string err;
  EXPECT_FALSE(parseBindDesign(
      g, tinyLib(), base + "next 1 2\nnext 1 3\nnext 1 4\n", &err));
  EXPECT_NE(err.find("more than two successors"), std::string::npos) << err;
  EXPECT_FALSE(parseBindDesign(g, tinyLib(), base + "next 9 1\n", &err));
  EXPECT_NE(err.find("from-state out of range"), std::string::npos) << err;
  EXPECT_FALSE(parseBindDesign(g, tinyLib(), base + "next 1 9\n", &err));
  EXPECT_NE(err.find("to-state out of range"), std::string::npos) << err;
  EXPECT_FALSE(parseBindDesign(g, tinyLib(), base + "next 1 2 cond=bogus\n",
                               &err));
  EXPECT_NE(err.find("unknown condition signal 'bogus'"), std::string::npos)
      << err;
}

// ---------------------------------------------------------------------------
// Strict numeric readers: malformed values name the offending token
// ---------------------------------------------------------------------------

TEST(BindNumerics, MalformedValuesAreErrorsNotZeros) {
  const dfg::Dfg g = workloads::chained();
  const celllib::CellLibrary lib = tinyLib();
  const std::string base{kChainedBinding};
  struct Case {
    std::string text;
    std::string expect;
  };
  const Case cases[] = {
      {"bind chained steps=abc\n", "bad steps value 'abc'"},
      {"bind chained steps=6\nalu x addsub16\n", "bad ALU index value 'x'"},
      {base + "op t1 step=2q alu=0\n", "bad step value '2q'"},
      {base + "op t1 step=2 alu=zz\n", "bad alu value 'zz'"},
      {base + "reg t1 first\n", "bad register index value 'first'"},
      {base + "route t3 left one\n", "bad select value 'one'"},
      {base + "load t2 step=3.5\n", "bad load step value '3.5'"},
      {base + "next one 2\n", "bad next from-state value 'one'"},
      {base + "next 1 two\n", "bad next to-state value 'two'"},
  };
  for (const Case& c : cases) {
    std::string err;
    EXPECT_FALSE(parseBindDesign(g, lib, c.text, &err)) << c.text;
    EXPECT_NE(err.find(c.expect), std::string::npos)
        << "wanted '" << c.expect << "' in '" << err << "'";
  }
}

// ---------------------------------------------------------------------------
// Rendering and goldens
// ---------------------------------------------------------------------------

TEST(AuditRender, SummaryAndJsonCarryTheHeadline) {
  const AuditResult clean = auditBound(bindChained());
  EXPECT_EQ(renderAuditSummary(clean),
            "audit: 7/7 states reachable, " + std::to_string(clean.rbwChecks) +
                " read checks, clean");
  const dfg::Dfg g = workloads::chained();
  const std::string json = renderAuditJson(clean, g);
  EXPECT_NE(json.find("\"schema\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"design\": \"chained\""), std::string::npos);
  EXPECT_NE(json.find("\"reachableStates\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"lint\":"), std::string::npos);

  const AuditResult dirty = auditBound(bindChained("next 2 4\n"));
  const std::string summary = renderAuditSummary(dirty);
  EXPECT_NE(summary.find("6/7 states reachable"), std::string::npos)
      << summary;
  EXPECT_NE(summary.find("finding"), std::string::npos) << summary;
  // The embedded lint document round-trips through the schema-2 parser.
  const std::string dirtyJson = renderAuditJson(dirty, g);
  const std::size_t lintAt = dirtyJson.find("\"lint\": ");
  ASSERT_NE(lintAt, std::string::npos);
  std::string error;
  const auto parsed = parseDiagnosticsJson(
      dirtyJson.substr(lintAt + 8, dirtyJson.rfind('}') - (lintAt + 8)),
      &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->size(), dirty.report.size());
}

AuditResult auditForGolden(const dfg::Dfg& g) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  const auto asap = baseline::runAsap(g, {});
  EXPECT_TRUE(asap.feasible) << g.name();
  core::MfsaOptions o;
  o.constraints.timeSteps = asap.steps;
  const auto r = core::runMfsa(g, lib, o);
  EXPECT_TRUE(r.feasible) << g.name() << ": " << r.error;
  return auditDatapath(r.datapath);
}

std::string goldenPath(const std::string& name) {
  return std::string(MFRAME_TESTS_DIR) + "/golden/audit_" + name + ".json";
}

TEST(AuditGolden, JsonIsDeterministic) {
  const dfg::Dfg g = workloads::diffeq();
  const std::string a = renderAuditJson(auditForGolden(g), g);
  const std::string b = renderAuditJson(auditForGolden(g), g);
  EXPECT_EQ(a, b);
}

TEST(AuditGolden, BenchmarksMatchCommittedJson) {
  const bool update = std::getenv("MFRAME_UPDATE_GOLDEN") != nullptr;
  for (const Bench& b : auditSuite()) {
    const AuditResult r = auditForGolden(b.graph);
    EXPECT_TRUE(r.clean()) << b.name << ":\n" << r.report.renderText();
    const std::string json = renderAuditJson(r, b.graph);
    const std::string path = goldenPath(b.graph.name());
    if (update) {
      std::ofstream out(path);
      ASSERT_TRUE(out.good()) << path;
      out << json;
      continue;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing golden " << path
                           << " (regenerate with MFRAME_UPDATE_GOLDEN=1)";
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(json, ss.str()) << b.name;
  }
}

}  // namespace
}  // namespace mframe::analysis::audit
