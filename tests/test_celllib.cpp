#include "celllib/cell_library.h"

#include <gtest/gtest.h>

#include "celllib/ncr_like.h"

namespace mframe::celllib {
namespace {

using dfg::FuType;

TEST(CellLibrary, AddModuleDedupesByName) {
  CellLibrary lib;
  Module m;
  m.name = "x";
  m.caps = {FuType::Adder};
  m.areaUm2 = 10;
  const ModuleId a = lib.addModule(m);
  const ModuleId b = lib.addModule(m);
  EXPECT_EQ(a, b);
  EXPECT_EQ(lib.modules().size(), 1u);
}

TEST(CellLibrary, CapableModulesSortedByArea) {
  CellLibrary lib;
  Module big;
  big.name = "big";
  big.caps = {FuType::Adder, FuType::Subtractor};
  big.areaUm2 = 50;
  Module small;
  small.name = "small";
  small.caps = {FuType::Adder};
  small.areaUm2 = 10;
  lib.addModule(big);
  lib.addModule(small);
  const auto c = lib.capableModules(FuType::Adder);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(lib.module(c[0]).name, "small");
  EXPECT_EQ(*lib.cheapestFor(FuType::Adder), c[0]);
  EXPECT_FALSE(lib.cheapestFor(FuType::Divider).has_value());
}

TEST(CellLibrary, MuxCostTableAndExtrapolation) {
  CellLibrary lib;
  lib.setMuxCosts({0, 0, 100, 150, 190});
  EXPECT_DOUBLE_EQ(lib.muxCost(0), 0.0);
  EXPECT_DOUBLE_EQ(lib.muxCost(1), 0.0);
  EXPECT_DOUBLE_EQ(lib.muxCost(2), 100.0);
  EXPECT_DOUBLE_EQ(lib.muxCost(4), 190.0);
  // Beyond the table: grow by the last increment (40).
  EXPECT_DOUBLE_EQ(lib.muxCost(5), 230.0);
  EXPECT_DOUBLE_EQ(lib.muxCost(6), 270.0);
}

TEST(CellLibrary, MaxMuxIncrementIsTwiceTheLargestStep) {
  CellLibrary lib;
  lib.setMuxCosts({0, 0, 100, 150, 190});
  // Largest step: 0 -> 100 when the second input appears.
  EXPECT_DOUBLE_EQ(lib.maxMuxIncrement(), 200.0);
}

TEST(CellLibrary, CoverageCheck) {
  CellLibrary lib;
  Module m;
  m.name = "add";
  m.caps = {FuType::Adder};
  m.areaUm2 = 1;
  lib.addModule(m);
  EXPECT_FALSE(lib.checkCoverage({FuType::Adder}).has_value());
  const auto err = lib.checkCoverage({FuType::Adder, FuType::Multiplier});
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("multiplier"), std::string::npos);
}

TEST(CellLibrary, SignatureUsesFuSymbols) {
  Module m;
  m.caps = {FuType::Adder, FuType::Subtractor};
  EXPECT_EQ(m.signature(), "(+-)");
}

TEST(NcrLike, CoversEveryFuTypeTheIrCanProduce) {
  const CellLibrary lib = ncrLike();
  std::set<FuType> all;
  for (std::size_t t = 0; t < dfg::kNumFuTypes; ++t) {
    const auto ft = static_cast<FuType>(t);
    if (ft == FuType::LoopUnit) continue;  // pseudo-type, never allocated
    all.insert(ft);
  }
  EXPECT_FALSE(lib.checkCoverage(all).has_value());
}

TEST(NcrLike, MultiplierDwarfsAdder) {
  const CellLibrary lib = ncrLike();
  const double mul = lib.module(*lib.cheapestFor(FuType::Multiplier)).areaUm2;
  const double add = lib.module(*lib.cheapestFor(FuType::Adder)).areaUm2;
  EXPECT_GT(mul, 4 * add);
}

TEST(NcrLike, MultifunctionCheaperThanParts) {
  // (+-) must undercut (+) + (-) or merging would never pay off.
  const CellLibrary lib = ncrLike();
  double addsub = 0, add = 0, sub = 0;
  for (const Module& m : lib.modules()) {
    if (m.name == "alu_addsub") addsub = m.areaUm2;
    if (m.name == "add16") add = m.areaUm2;
    if (m.name == "sub16") sub = m.areaUm2;
  }
  ASSERT_GT(addsub, 0);
  EXPECT_LT(addsub, add + sub);
  EXPECT_GT(addsub, std::max(add, sub));
}

TEST(NcrLike, ScaleOptionScalesEverything) {
  const CellLibrary base = ncrLike();
  const CellLibrary doubled = ncrLike({.scale = 2.0});
  EXPECT_DOUBLE_EQ(doubled.regCost(), 2.0 * base.regCost());
  EXPECT_DOUBLE_EQ(doubled.muxCost(3), 2.0 * base.muxCost(3));
  EXPECT_DOUBLE_EQ(doubled.maxModuleArea(), 2.0 * base.maxModuleArea());
}

TEST(NcrLike, PipelinedMultiplierOnlyWhenRequested) {
  auto count = [](const CellLibrary& lib) {
    int n = 0;
    for (const Module& m : lib.modules())
      if (m.stages > 1) ++n;
    return n;
  };
  EXPECT_EQ(count(ncrLike()), 0);
  EXPECT_EQ(count(ncrLike({.pipelinedMultiplier = true})), 1);
}

TEST(NcrLike, NoMultifunctionOption) {
  const CellLibrary lib = ncrLike({.includeMultifunction = false});
  for (const Module& m : lib.modules()) EXPECT_EQ(m.caps.size(), 1u) << m.name;
}

}  // namespace
}  // namespace mframe::celllib
