#include "sim/vcd.h"

#include <gtest/gtest.h>

#include "celllib/ncr_like.h"
#include "core/mfsa.h"
#include "helpers.h"
#include "rtl/controller.h"
#include "sim/rtl_sim.h"

namespace mframe::sim {
namespace {

TEST(SimTrace, RecordHoldsPreviousValues) {
  SimTrace t;
  t.record("a", 0, 5);
  t.record("a", 3, 9);
  t.finalize(5);
  const auto& v = t.signals.at("a");
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v[0], 5u);
  EXPECT_EQ(v[1], 5u);  // held
  EXPECT_EQ(v[2], 5u);
  EXPECT_EQ(v[3], 9u);
  EXPECT_EQ(v[4], 9u);  // padded by finalize
}

TEST(Vcd, DocumentStructure) {
  SimTrace t;
  t.record("sig", 0, 1);
  t.record("sig", 1, 2);
  t.finalize(2);
  const std::string v = toVcd(t, 16, "unit");
  EXPECT_NE(v.find("$timescale"), std::string::npos);
  EXPECT_NE(v.find("$scope module unit $end"), std::string::npos);
  EXPECT_NE(v.find("$var wire 16"), std::string::npos);
  EXPECT_NE(v.find("#0"), std::string::npos);
  EXPECT_NE(v.find("#1"), std::string::npos);
  EXPECT_NE(v.find("b1 "), std::string::npos);
  EXPECT_NE(v.find("b10 "), std::string::npos);
}

TEST(Vcd, UnchangedValuesEmitNoEdge) {
  SimTrace t;
  t.record("sig", 0, 7);
  t.finalize(3);
  const std::string v = toVcd(t);
  // Value appears once (at #0), then no further b111 lines.
  const auto first = v.find("b111 ");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(v.find("b111 ", first + 1), std::string::npos);
}

TEST(Vcd, EndToEndFromSimulation) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  const dfg::Dfg g = test::smallDiamond();
  core::MfsaOptions o;
  o.constraints.timeSteps = 3;
  const auto r = core::runMfsa(g, lib, o);
  ASSERT_TRUE(r.feasible);
  const auto fsm = rtl::buildController(r.datapath);

  SimTrace trace;
  const auto out = simulateRtl(
      r.datapath, fsm, {{"a", 3}, {"b", 4}, {"c", 10}, {"d", 2}, {"lim", 100}},
      16, &trace);
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_EQ(trace.steps, 3);
  // Registers and operation results were traced.
  EXPECT_TRUE(trace.signals.count("R0"));
  EXPECT_TRUE(trace.signals.count("y"));
  // y's final value matches the simulation output.
  EXPECT_EQ(trace.signals.at("y").back(), 56u);
  const std::string vcd = toVcd(trace, 16, g.name());
  EXPECT_NE(vcd.find("diamond"), std::string::npos);
}

TEST(Vcd, TraceOptional) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  const dfg::Dfg g = test::smallDiamond();
  core::MfsaOptions o;
  o.constraints.timeSteps = 3;
  const auto r = core::runMfsa(g, lib, o);
  ASSERT_TRUE(r.feasible);
  const auto fsm = rtl::buildController(r.datapath);
  const auto out = simulateRtl(r.datapath, fsm, {{"a", 1}});
  EXPECT_TRUE(out.ok);  // null trace: no crash, same results
}

}  // namespace
}  // namespace mframe::sim
