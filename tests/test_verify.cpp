#include "sched/verify.h"

#include <gtest/gtest.h>

#include "dfg/builder.h"
#include "helpers.h"

namespace mframe::sched {
namespace {

using dfg::NodeId;

Schedule validDiamond(const dfg::Dfg& g) {
  Schedule s(g);
  s.setNumSteps(3);
  s.place(g.findByName("s"), 1, 1);
  s.place(g.findByName("t"), 1, 1);  // different type: subtractor column 1
  s.place(g.findByName("y"), 2, 1);
  s.place(g.findByName("f"), 3, 1);
  return s;
}

TEST(VerifySchedule, AcceptsValid) {
  const dfg::Dfg g = test::smallDiamond();
  Constraints c;
  c.timeSteps = 3;
  EXPECT_TRUE(verifySchedule(validDiamond(g), c).empty());
}

TEST(VerifySchedule, FlagsUnscheduledOp) {
  const dfg::Dfg g = test::smallDiamond();
  Schedule s(g);
  s.setNumSteps(3);
  Constraints c;
  const auto v = verifySchedule(s, c);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().find("not scheduled"), std::string::npos);
}

TEST(VerifySchedule, FlagsRangeOverflow) {
  const dfg::Dfg g = test::smallDiamond();
  Schedule s = validDiamond(g);
  s.setNumSteps(2);  // f now sits at step 3 > cs
  Constraints c;
  const auto v = verifySchedule(s, c);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().find("outside"), std::string::npos);
}

TEST(VerifySchedule, FlagsPrecedenceViolation) {
  const dfg::Dfg g = test::smallDiamond();
  Schedule s = validDiamond(g);
  s.place(g.findByName("y"), 1, 1);  // same step as its producer 's'
  Constraints c;
  c.timeSteps = 3;
  const auto v = verifySchedule(s, c);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().find("precedence"), std::string::npos);
}

TEST(VerifySchedule, FlagsOccupancyConflict) {
  const dfg::Dfg g = test::addParallel(2);
  Schedule s(g);
  s.setNumSteps(1);
  const auto ops = g.operations();
  s.place(ops[0], 1, 1);
  s.place(ops[1], 1, 1);  // same adder, same step
  Constraints c;
  c.timeSteps = 1;
  const auto v = verifySchedule(s, c);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().find("occupancy"), std::string::npos);
}

TEST(VerifySchedule, MutuallyExclusiveOpsMayShareACell) {
  const dfg::Dfg g = test::branchy();
  Schedule s(g);
  s.setNumSteps(2);
  s.place(g.findByName("t1"), 1, 1);
  s.place(g.findByName("e1"), 1, 1);  // same cell, exclusive arms: legal
  s.place(g.findByName("j"), 2, 1);
  Constraints c;
  c.timeSteps = 2;
  EXPECT_TRUE(verifySchedule(s, c).empty());
}

TEST(VerifySchedule, FlagsResourceLimitBreach) {
  const dfg::Dfg g = test::addParallel(2);
  Schedule s(g);
  s.setNumSteps(1);
  const auto ops = g.operations();
  s.place(ops[0], 1, 1);
  s.place(ops[1], 1, 2);
  Constraints c;
  c.timeSteps = 1;
  c.fuLimit[dfg::FuType::Adder] = 1;
  const auto v = verifySchedule(s, c);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().find("resource limit"), std::string::npos);
}

TEST(VerifySchedule, MulticycleOverlapDetected) {
  dfg::Builder b("mc");
  const auto x = b.input("x");
  const auto y = b.input("y");
  b.mul(x, y, "m1", 2);
  b.mul(x, y, "m2", 2);
  const dfg::Dfg g = std::move(b).build();
  Schedule s(g);
  s.setNumSteps(3);
  s.place(g.findByName("m1"), 1, 1);  // occupies 1-2
  s.place(g.findByName("m2"), 2, 1);  // occupies 2-3: clash in step 2
  Constraints c;
  c.timeSteps = 3;
  EXPECT_FALSE(verifySchedule(s, c).empty());
}

TEST(VerifySchedule, PipelinedUnitAllowsOverlapButNotSameStart) {
  dfg::Builder b("pipe");
  const auto x = b.input("x");
  const auto y = b.input("y");
  b.mul(x, y, "m1", 2);
  b.mul(x, y, "m2", 2);
  const dfg::Dfg g = std::move(b).build();
  Constraints c;
  c.timeSteps = 3;
  c.pipelinedFus.insert(dfg::FuType::Multiplier);

  Schedule ok(g);
  ok.setNumSteps(3);
  ok.place(g.findByName("m1"), 1, 1);
  ok.place(g.findByName("m2"), 2, 1);  // overlapped stages: fine
  EXPECT_TRUE(verifySchedule(ok, c).empty());

  Schedule bad(g);
  bad.setNumSteps(3);
  bad.place(g.findByName("m1"), 1, 1);
  bad.place(g.findByName("m2"), 1, 1);  // two initiations in one step
  EXPECT_FALSE(verifySchedule(bad, c).empty());
}

TEST(VerifySchedule, LatencyFoldingDetectsModuloConflicts) {
  const dfg::Dfg g = test::addParallel(2);
  Constraints c;
  c.timeSteps = 4;
  c.latency = 2;
  Schedule s(g);
  s.setNumSteps(4);
  const auto ops = g.operations();
  s.place(ops[0], 1, 1);
  s.place(ops[1], 3, 1);  // 3 == 1 (mod 2): conflicts under folding
  EXPECT_FALSE(verifySchedule(s, c).empty());

  Schedule ok(g);
  ok.setNumSteps(4);
  ok.place(ops[0], 1, 1);
  ok.place(ops[1], 2, 1);
  EXPECT_TRUE(verifySchedule(ok, c).empty());
}

TEST(VerifySchedule, ChainingLegalWithinClock) {
  const dfg::Dfg g = test::addChain(2);
  Constraints c;
  c.timeSteps = 1;
  c.allowChaining = true;
  c.clockNs = 100.0;
  Schedule s(g);
  s.setNumSteps(1);
  s.place(g.findByName("c1"), 1, 1);
  s.place(g.findByName("c2"), 1, 2);
  EXPECT_TRUE(verifySchedule(s, c).empty());
}

TEST(VerifySchedule, ChainingOverflowFlagged) {
  const dfg::Dfg g = test::addChain(3);  // 3*40 = 120ns > 100ns
  Constraints c;
  c.timeSteps = 1;
  c.allowChaining = true;
  c.clockNs = 100.0;
  Schedule s(g);
  s.setNumSteps(1);
  s.place(g.findByName("c1"), 1, 1);
  s.place(g.findByName("c2"), 1, 2);
  s.place(g.findByName("c3"), 1, 3);
  const auto v = verifySchedule(s, c);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().find("chaining"), std::string::npos);
}

TEST(VerifySchedule, SameStepDependentsIllegalWithoutChaining) {
  const dfg::Dfg g = test::addChain(2);
  Constraints c;
  c.timeSteps = 1;
  Schedule s(g);
  s.setNumSteps(1);
  s.place(g.findByName("c1"), 1, 1);
  s.place(g.findByName("c2"), 1, 2);
  EXPECT_FALSE(verifySchedule(s, c).empty());
}

}  // namespace
}  // namespace mframe::sched
