#include "sched/schedule.h"

#include <gtest/gtest.h>

#include "dfg/builder.h"
#include "helpers.h"

namespace mframe::sched {
namespace {

using dfg::NodeId;

TEST(Schedule, PlaceAndQuery) {
  const dfg::Dfg g = test::smallDiamond();
  Schedule s(g);
  s.setNumSteps(3);
  const NodeId sum = g.findByName("s");
  EXPECT_FALSE(s.isPlaced(sum));
  s.place(sum, 1, 2);
  EXPECT_TRUE(s.isPlaced(sum));
  EXPECT_EQ(s.stepOf(sum), 1);
  EXPECT_EQ(s.columnOf(sum), 2);
  EXPECT_EQ(s.placedCount(), 1u);
}

TEST(Schedule, UnplaceReverts) {
  const dfg::Dfg g = test::smallDiamond();
  Schedule s(g);
  const NodeId sum = g.findByName("s");
  s.place(sum, 1, 1);
  s.unplace(sum);
  EXPECT_FALSE(s.isPlaced(sum));
  EXPECT_EQ(s.placedCount(), 0u);
}

TEST(Schedule, FuCountIsMaxColumnPerType) {
  const dfg::Dfg g = test::addParallel(4);
  Schedule s(g);
  s.setNumSteps(2);
  const auto ops = g.operations();
  s.place(ops[0], 1, 1);
  s.place(ops[1], 1, 2);
  s.place(ops[2], 2, 1);
  s.place(ops[3], 2, 2);
  const auto fu = s.fuCount();
  EXPECT_EQ(fu.at(dfg::FuType::Adder), 2);
}

TEST(Schedule, PeakConcurrencyCountsMulticycleOccupancy) {
  dfg::Builder b("mc");
  const auto x = b.input("x");
  const auto y = b.input("y");
  b.mul(x, y, "m1", 2);
  b.mul(x, y, "m2", 2);
  const dfg::Dfg g = std::move(b).build();
  Schedule s(g);
  s.setNumSteps(3);
  // m1 occupies steps 1-2, m2 steps 2-3: overlap of 2 in step 2.
  s.place(g.findByName("m1"), 1, 1);
  s.place(g.findByName("m2"), 2, 2);
  EXPECT_EQ(s.peakConcurrency().at(dfg::FuType::Multiplier), 2);
}

TEST(Schedule, OpsInStepSpansMulticycle) {
  dfg::Builder b("mc2");
  const auto x = b.input("x");
  const auto y = b.input("y");
  b.mul(x, y, "m", 3);
  const dfg::Dfg g = std::move(b).build();
  Schedule s(g);
  s.setNumSteps(4);
  s.place(g.findByName("m"), 2, 1);
  EXPECT_TRUE(s.opsInStep(1).empty());
  EXPECT_EQ(s.opsInStep(2).size(), 1u);
  EXPECT_EQ(s.opsInStep(4).size(), 1u);
}

TEST(Schedule, StepMapCoversPlacedOpsOnly) {
  const dfg::Dfg g = test::smallDiamond();
  Schedule s(g);
  s.place(g.findByName("s"), 1, 1);
  const auto m = s.stepMap();
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.at(g.findByName("s")), 1);
}

TEST(Schedule, ToStringMentionsOpsAndSteps) {
  const dfg::Dfg g = test::smallDiamond();
  Schedule s(g);
  s.setNumSteps(2);
  s.place(g.findByName("s"), 1, 1);
  const std::string out = s.toString();
  EXPECT_NE(out.find("step  1"), std::string::npos);
  EXPECT_NE(out.find("s(+)"), std::string::npos);
}

}  // namespace
}  // namespace mframe::sched
