#include "alloc/lifetimes.h"

#include <gtest/gtest.h>

#include <map>

#include "dfg/builder.h"
#include "helpers.h"

namespace mframe::alloc {
namespace {

using dfg::NodeId;

std::map<NodeId, Lifetime> byProducer(const std::vector<Lifetime>& v) {
  std::map<NodeId, Lifetime> m;
  for (const Lifetime& lt : v) m[lt.producer] = lt;
  return m;
}

TEST(Lifetimes, ValueCrossingOneBoundaryNeedsARegister) {
  const dfg::Dfg g = test::smallDiamond();
  sched::Schedule s(g);
  s.setNumSteps(3);
  s.place(g.findByName("s"), 1, 1);
  s.place(g.findByName("t"), 1, 1);
  s.place(g.findByName("y"), 2, 1);
  s.place(g.findByName("f"), 3, 1);
  const auto m = byProducer(computeLifetimes(g, s));

  const Lifetime& ls = m.at(g.findByName("s"));
  EXPECT_EQ(ls.birth, 1);
  EXPECT_EQ(ls.death, 2);  // consumed by y at step 2
  EXPECT_TRUE(ls.needsRegister);
}

TEST(Lifetimes, PrimaryInputsBornBeforeStepOne) {
  const dfg::Dfg g = test::smallDiamond();
  sched::Schedule s(g);
  s.setNumSteps(3);
  s.place(g.findByName("s"), 1, 1);
  s.place(g.findByName("t"), 1, 1);
  s.place(g.findByName("y"), 2, 1);
  s.place(g.findByName("f"), 3, 1);
  const auto m = byProducer(computeLifetimes(g, s));
  const Lifetime& la = m.at(g.findByName("a"));
  EXPECT_EQ(la.birth, 0);
  EXPECT_EQ(la.death, 1);
  EXPECT_TRUE(la.needsRegister);
}

TEST(Lifetimes, PrimaryOutputsSurviveToTheEnd) {
  const dfg::Dfg g = test::smallDiamond();
  sched::Schedule s(g);
  s.setNumSteps(3);
  s.place(g.findByName("s"), 1, 1);
  s.place(g.findByName("t"), 1, 1);
  s.place(g.findByName("y"), 2, 1);
  s.place(g.findByName("f"), 3, 1);
  const auto m = byProducer(computeLifetimes(g, s));
  EXPECT_EQ(m.at(g.findByName("y")).death, 4);  // numSteps + 1
  EXPECT_EQ(m.at(g.findByName("f")).death, 4);
}

TEST(Lifetimes, ChainedConsumerNeedsNoStorage) {
  const dfg::Dfg g = test::addChain(2);
  sched::Schedule s(g);
  s.setNumSteps(1);
  s.place(g.findByName("c1"), 1, 1);
  s.place(g.findByName("c2"), 1, 2);  // chained: same step
  const auto m = byProducer(computeLifetimes(g, s));
  const Lifetime& l1 = m.at(g.findByName("c1"));
  EXPECT_EQ(l1.birth, l1.death);  // no cross-step consumer, no output mark
  EXPECT_FALSE(l1.needsRegister);
}

TEST(Lifetimes, MulticycleProducerBornAtItsLastStep) {
  dfg::Builder b("mc");
  const auto x = b.input("x");
  const auto y = b.input("y");
  const auto mm = b.mul(x, y, "m", 2);
  const auto a = b.add(mm, x, "a");
  b.output(a, "o");
  const dfg::Dfg g = std::move(b).build();
  sched::Schedule s(g);
  s.setNumSteps(4);
  s.place(g.findByName("m"), 1, 1);  // occupies 1-2, ready end of 2
  s.place(g.findByName("a"), 3, 1);
  const auto m = byProducer(computeLifetimes(g, s));
  EXPECT_EQ(m.at(g.findByName("m")).birth, 2);
  EXPECT_EQ(m.at(g.findByName("m")).death, 3);
}

TEST(Lifetimes, MulticycleConsumerHoldsOperandsToItsLastCycle) {
  // A 2-cycle multiplier reads its operands throughout execution: a value
  // feeding it must stay alive until the consumer's *last* cycle, not just
  // its start step.
  dfg::Builder b("mcc");
  const auto x = b.input("x");
  const auto y = b.input("y");
  const auto a = b.add(x, y, "a");
  const auto mm = b.mul(a, y, "m", 2);
  b.output(mm, "o");
  const dfg::Dfg g = std::move(b).build();
  sched::Schedule s(g);
  s.setNumSteps(4);
  s.place(g.findByName("a"), 1, 1);
  s.place(g.findByName("m"), 2, 1);  // occupies steps 2-3
  const auto m = byProducer(computeLifetimes(g, s));
  EXPECT_EQ(m.at(g.findByName("a")).birth, 1);
  EXPECT_EQ(m.at(g.findByName("a")).death, 3);  // held through the mul
  EXPECT_EQ(m.at(g.findByName("y")).death, 3);  // primary input likewise
}

TEST(Lifetimes, ConstantsNeverAppear) {
  dfg::Builder b("k");
  const auto x = b.input("x");
  const auto k = b.constant(7, "k7");
  const auto a = b.add(x, k, "a");
  b.output(a, "o");
  const dfg::Dfg g = std::move(b).build();
  sched::Schedule s(g);
  s.setNumSteps(1);
  s.place(g.findByName("a"), 1, 1);
  for (const Lifetime& lt : computeLifetimes(g, s))
    EXPECT_NE(lt.producer, g.findByName("k7"));
}

TEST(Lifetimes, OverlapSemanticsAreHalfOpen) {
  Lifetime a{.producer = 0, .birth = 1, .death = 3};
  Lifetime b{.producer = 1, .birth = 3, .death = 5};
  EXPECT_FALSE(a.overlaps(b));  // back-to-back is compatible
  EXPECT_FALSE(b.overlaps(a));
  Lifetime c{.producer = 2, .birth = 2, .death = 4};
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_TRUE(c.overlaps(b));
}

TEST(Lifetimes, UnplacedOpsSkippedOnPartialSchedules) {
  const dfg::Dfg g = test::smallDiamond();
  sched::Schedule s(g);
  s.setNumSteps(3);
  s.place(g.findByName("s"), 1, 1);
  const auto v = computeLifetimes(g, s);
  for (const Lifetime& lt : v) {
    EXPECT_NE(lt.producer, g.findByName("y"));
    EXPECT_NE(lt.producer, g.findByName("f"));
  }
}

}  // namespace
}  // namespace mframe::alloc
