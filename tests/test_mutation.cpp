// Verifier mutation tests: corrupt known-good schedules and datapaths in
// every way the verifiers claim to catch, and assert each corruption is in
// fact flagged. This guards the guards — a verifier that silently accepts
// broken results would defeat the whole test strategy.
#include <gtest/gtest.h>

#include <random>

#include "celllib/ncr_like.h"
#include "core/mfs.h"
#include "core/mfsa.h"
#include "helpers.h"
#include "rtl/verify.h"
#include "sched/verify.h"
#include "workloads/benchmarks.h"
#include "workloads/random_dfg.h"

namespace mframe {
namespace {

using dfg::NodeId;

struct GoodSchedule {
  dfg::Dfg graph;
  sched::Constraints constraints;
  sched::Schedule schedule;
};

GoodSchedule makeGood(std::uint32_t seed) {
  workloads::RandomDfgOptions o;
  o.seed = seed;
  o.numOps = 20;
  o.twoCyclePercent = 25;
  GoodSchedule gs{workloads::randomDfg(o), {}, {}};
  sched::Constraints probe;
  const auto tf = computeTimeFrames(gs.graph, probe);
  gs.constraints.timeSteps = tf->criticalSteps() + 2;
  core::MfsOptions mo;
  mo.constraints = gs.constraints;
  const auto r = core::runMfs(gs.graph, mo);
  EXPECT_TRUE(r.feasible);
  gs.schedule = r.schedule;
  return gs;
}

class MutationSeeds : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MutationSeeds, StepCorruptionIsCaught) {
  GoodSchedule gs = makeGood(GetParam());
  ASSERT_TRUE(sched::verifySchedule(gs.schedule, gs.constraints).empty());
  std::mt19937 rng(GetParam());
  const auto ops = gs.schedule.graph().operations();

  int caught = 0, mutations = 0;
  for (int trial = 0; trial < 20; ++trial) {
    sched::Schedule s = gs.schedule;
    const NodeId victim = ops[rng() % ops.size()];
    const int oldStep = s.stepOf(victim);
    const int newStep =
        1 + static_cast<int>(rng() % static_cast<unsigned>(s.numSteps()));
    if (newStep == oldStep) continue;
    s.place(victim, newStep, s.columnOf(victim));
    ++mutations;
    if (!sched::verifySchedule(s, gs.constraints).empty()) ++caught;
  }
  // Moving an op to a random different step almost always breaks precedence
  // or occupancy; a verifier catching none of them is broken.
  ASSERT_GT(mutations, 0);
  EXPECT_GT(caught, 0);
}

TEST_P(MutationSeeds, ColumnCollisionIsCaught) {
  GoodSchedule gs = makeGood(GetParam() + 50);
  const auto ops = gs.schedule.graph().operations();
  const dfg::Dfg& g = gs.schedule.graph();
  // Force two same-type, overlapping ops onto one column.
  for (NodeId a : ops) {
    for (NodeId b : ops) {
      if (a == b) continue;
      if (dfg::fuTypeOf(g.node(a).kind) != dfg::fuTypeOf(g.node(b).kind))
        continue;
      if (gs.schedule.stepOf(a) != gs.schedule.stepOf(b)) continue;
      if (gs.schedule.columnOf(a) == gs.schedule.columnOf(b)) continue;
      sched::Schedule s = gs.schedule;
      s.place(b, s.stepOf(b), s.columnOf(a));
      EXPECT_FALSE(sched::verifySchedule(s, gs.constraints).empty());
      return;
    }
  }
  GTEST_SKIP() << "no same-type same-step pair in this seed";
}

TEST_P(MutationSeeds, DroppedOpIsCaught) {
  GoodSchedule gs = makeGood(GetParam() + 100);
  std::mt19937 rng(GetParam());
  const auto ops = gs.schedule.graph().operations();
  sched::Schedule s = gs.schedule;
  s.unplace(ops[rng() % ops.size()]);
  const auto v = sched::verifySchedule(s, gs.constraints);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().find("not scheduled"), std::string::npos);
}

TEST_P(MutationSeeds, TightenedResourceLimitIsCaught) {
  GoodSchedule gs = makeGood(GetParam() + 150);
  const auto fu = gs.schedule.fuCount();
  for (const auto& [type, used] : fu) {
    if (used < 2) continue;
    sched::Constraints c = gs.constraints;
    c.fuLimit[type] = used - 1;
    EXPECT_FALSE(sched::verifySchedule(gs.schedule, c).empty());
    return;
  }
  GTEST_SKIP() << "schedule uses single instances only";
}

TEST_P(MutationSeeds, DatapathRebindIsCaught) {
  workloads::RandomDfgOptions o;
  o.seed = GetParam() + 200;
  o.numOps = 18;
  const dfg::Dfg g = workloads::randomDfg(o);
  static const celllib::CellLibrary lib = celllib::ncrLike();
  sched::Constraints probe;
  const auto tf = computeTimeFrames(g, probe);
  core::MfsaOptions ao;
  ao.constraints.timeSteps = tf->criticalSteps() + 2;
  const auto r = core::runMfsa(g, lib, ao);
  ASSERT_TRUE(r.feasible);
  ASSERT_TRUE(rtl::verifyDatapath(r.datapath, ao.constraints,
                                  rtl::DesignStyle::Unrestricted)
                  .empty());

  // Steal an op from one ALU into another that cannot perform it.
  rtl::Datapath broken = r.datapath;
  for (auto& victim : broken.alus) {
    for (NodeId op : victim.ops) {
      const dfg::FuType t = dfg::fuTypeOf(g.node(op).kind);
      for (auto& thief : broken.alus) {
        if (thief.index == victim.index) continue;
        if (broken.lib->module(thief.module).supports(t)) continue;
        victim.ops.erase(
            std::remove(victim.ops.begin(), victim.ops.end(), op),
            victim.ops.end());
        thief.ops.push_back(op);
        broken.aluOf[op] = thief.index;
        EXPECT_FALSE(rtl::verifyDatapath(broken, ao.constraints,
                                         rtl::DesignStyle::Unrestricted)
                         .empty());
        return;
      }
    }
  }
  GTEST_SKIP() << "every ALU supports every used type in this seed";
}

TEST_P(MutationSeeds, RegisterOverlapIsCaught) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  core::MfsaOptions ao;
  ao.constraints.timeSteps = 4;
  const auto r = core::runMfsa(workloads::diffeq(), lib, ao);
  ASSERT_TRUE(r.feasible);
  rtl::Datapath broken = r.datapath;
  if (broken.regs.count() < 2) GTEST_SKIP();
  // Merge two registers: the combined lifetimes overlap somewhere.
  auto& regs = broken.regs.registers;
  for (std::size_t i : regs[1]) regs[0].push_back(i);
  regs.erase(regs.begin() + 1);
  const auto v = rtl::verifyDatapath(broken, ao.constraints,
                                     rtl::DesignStyle::Unrestricted);
  bool overlapFlagged = false;
  for (const auto& msg : v)
    if (msg.find("overlapping") != std::string::npos) overlapFlagged = true;
  EXPECT_TRUE(overlapFlagged);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationSeeds,
                         ::testing::Range<std::uint32_t>(1, 9));

}  // namespace
}  // namespace mframe
