#include "alloc/interconnect.h"

#include <gtest/gtest.h>

#include <set>

#include "dfg/builder.h"
#include "helpers.h"

namespace mframe::alloc {
namespace {

using dfg::NodeId;

struct Fixture {
  dfg::Dfg g;
  sched::Schedule s;
  std::vector<Lifetime> lifetimes;
  RegAllocation regs;
  std::map<NodeId, int> aluOf;

  Fixture() : g(test::smallDiamond()), s(g) {
    s.setNumSteps(3);
    s.place(g.findByName("s"), 1, 1);
    s.place(g.findByName("t"), 1, 1);
    s.place(g.findByName("y"), 2, 1);
    s.place(g.findByName("f"), 3, 1);
    lifetimes = computeLifetimes(g, s);
    regs = allocateRegisters(lifetimes);
    aluOf[g.findByName("s")] = 0;
    aluOf[g.findByName("t")] = 1;
    aluOf[g.findByName("y")] = 2;
    aluOf[g.findByName("f")] = 3;
  }
};

TEST(Interconnect, RegisteredSignalResolvesToItsRegister) {
  Fixture fx;
  const SourceResolver r(fx.g, fx.s, fx.lifetimes, fx.regs, fx.aluOf);
  const Source src =
      r.resolve(fx.g.findByName("y"), fx.g.findByName("s"));  // s born 1, read 2
  EXPECT_EQ(src.kind, Source::Kind::Register);
}

TEST(Interconnect, ChainedReadResolvesToAluOutput) {
  dfg::Builder b("chain");
  const auto x = b.input("x");
  const auto yy = b.input("y");
  const auto c1 = b.add(x, yy, "c1");
  const auto c2 = b.add(c1, yy, "c2");
  b.output(c2, "o");
  const dfg::Dfg g = std::move(b).build();
  sched::Schedule s(g);
  s.setNumSteps(1);
  s.place(c1, 1, 1);
  s.place(c2, 1, 2);  // same step: chained
  const auto lts = computeLifetimes(g, s);
  const auto regs = allocateRegisters(lts);
  std::map<NodeId, int> aluOf{{c1, 0}, {c2, 1}};
  const SourceResolver r(g, s, lts, regs, aluOf);
  const Source src = r.resolve(c2, c1);
  EXPECT_EQ(src.kind, Source::Kind::AluOut);
  EXPECT_EQ(src.index, 0);
}

TEST(Interconnect, ConstantsAreHardwired) {
  dfg::Builder b("k");
  const auto x = b.input("x");
  const auto k = b.constant(5, "k5");
  const auto a = b.add(x, k, "a");
  b.output(a, "o");
  const dfg::Dfg g = std::move(b).build();
  sched::Schedule s(g);
  s.setNumSteps(1);
  s.place(a, 1, 1);
  const auto lts = computeLifetimes(g, s);
  const auto regs = allocateRegisters(lts);
  std::map<NodeId, int> aluOf{{a, 0}};
  const SourceResolver r(g, s, lts, regs, aluOf);
  const Source src = r.resolve(a, k);
  EXPECT_EQ(src.kind, Source::Kind::Constant);
  EXPECT_EQ(src.toString(g), "const:5");
}

TEST(Interconnect, InputsComeFromTheirRegisters) {
  Fixture fx;
  const SourceResolver r(fx.g, fx.s, fx.lifetimes, fx.regs, fx.aluOf);
  const Source src = r.resolve(fx.g.findByName("s"), fx.g.findByName("a"));
  EXPECT_EQ(src.kind, Source::Kind::Register);
}

TEST(Interconnect, WirePortDeduplicatesSharedSources) {
  // Two signals stored in the same register arrive on one wire
  // (Section 5.7 line sharing).
  Fixture fx;
  const SourceResolver r(fx.g, fx.s, fx.lifetimes, fx.regs, fx.aluOf);
  const NodeId y = fx.g.findByName("y");
  const NodeId f = fx.g.findByName("f");
  const NodeId sSig = fx.g.findByName("s");
  const NodeId tSig = fx.g.findByName("t");
  // The number of wires equals the number of *distinct* physical sources —
  // signals that share a register over time share a wire (Section 5.7).
  std::set<Source> distinct{r.resolve(y, sSig), r.resolve(y, tSig),
                            r.resolve(f, fx.g.findByName("y"))};
  const auto w = wirePort(r, {{y, sSig}, {y, tSig}, {f, fx.g.findByName("y")}});
  EXPECT_EQ(w.sources.size(), distinct.size());
  EXPECT_LT(w.sources.size(), 3u);  // s=(1,2] and y=(2,4] share a register
  EXPECT_EQ(w.selectOf.size(), 3u);
  for (const auto& [key, idx] : w.selectOf) EXPECT_LT(idx, w.sources.size());
}

TEST(Interconnect, SourceOrderingIsFirstUse) {
  Fixture fx;
  const SourceResolver r(fx.g, fx.s, fx.lifetimes, fx.regs, fx.aluOf);
  const NodeId y = fx.g.findByName("y");
  const NodeId sSig = fx.g.findByName("s");
  const auto w = wirePort(r, {{y, sSig}});
  ASSERT_EQ(w.sources.size(), 1u);
  EXPECT_EQ(w.selectOf.at({y, sSig}), 0u);
}

}  // namespace
}  // namespace mframe::alloc
